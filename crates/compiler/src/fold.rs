//! Constant folding.
//!
//! The folding *level* is the single biggest maturity difference between the
//! two front-ends (the paper's Table V analysis): after full unrolling the
//! CUDA front-end folds index arithmetic, comparisons, selects and even
//! transcendentals of constants down to immediates, while the OpenCL
//! front-end only folds trivial integer arithmetic and leaves the rest as
//! runtime instructions.

use crate::ast::{Expr, Stmt};
use gpucmp_ptx::{CmpOp, Op1, Op2};

/// How aggressively to fold.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FoldLevel {
    /// Fold everything: integer and float arithmetic, algebraic identities,
    /// comparisons, selects, casts, and math intrinsics of constants
    /// (NVOPENCC-style).
    Aggressive,
    /// Fold only integer arithmetic on two immediates (early OpenCL
    /// front-end style).
    Basic,
}

/// Fold an expression tree.
pub fn fold_expr(e: &Expr, level: FoldLevel) -> Expr {
    match e {
        Expr::ImmI(_) | Expr::ImmF(_) | Expr::Var(_) | Expr::Param(_) | Expr::Special(_) => {
            e.clone()
        }
        Expr::Un(op, a) => {
            let a = fold_expr(a, level);
            if level == FoldLevel::Aggressive {
                if let Some(v) = imm_f(&a) {
                    let r = match op {
                        Op1::Neg => -v,
                        Op1::Abs => v.abs(),
                        Op1::Sqrt => v.sqrt(),
                        Op1::Rsqrt => 1.0 / v.sqrt(),
                        Op1::Rcp => 1.0 / v,
                        Op1::Sin => v.sin(),
                        Op1::Cos => v.cos(),
                        Op1::Ex2 => v.exp2(),
                        Op1::Lg2 => v.log2(),
                        Op1::Not => {
                            return match a {
                                Expr::ImmI(i) => Expr::ImmI(!i),
                                _ => Expr::Un(Op1::Not, Box::new(a)),
                            }
                        }
                    };
                    // Keep integer immediates integral where the source was.
                    return match (&a, op) {
                        (Expr::ImmI(i), Op1::Neg) => Expr::ImmI(-i),
                        (Expr::ImmI(i), Op1::Abs) => Expr::ImmI(i.abs()),
                        _ => Expr::ImmF(round_f32(r)),
                    };
                }
            }
            Expr::Un(*op, Box::new(a))
        }
        Expr::Bin(op, a, b) => {
            let a = fold_expr(a, level);
            let b = fold_expr(b, level);
            // Integer-integer folding (both levels).
            if let (Expr::ImmI(x), Expr::ImmI(y)) = (&a, &b) {
                if let Some(v) = fold_int(*op, *x, *y) {
                    return Expr::ImmI(v);
                }
            }
            if level == FoldLevel::Aggressive {
                // Float-float folding.
                if let (Some(x), Some(y)) = (imm_f(&a), imm_f(&b)) {
                    if !matches!(op, Op2::And | Op2::Or | Op2::Xor | Op2::Shl | Op2::Shr) {
                        let v = match op {
                            Op2::Add => x + y,
                            Op2::Sub => x - y,
                            Op2::Mul => x * y,
                            Op2::Div => x / y,
                            Op2::Rem => x % y,
                            Op2::Min => x.min(y),
                            Op2::Max => x.max(y),
                            _ => unreachable!(),
                        };
                        if matches!((&a, &b), (Expr::ImmF(_), _) | (_, Expr::ImmF(_))) {
                            return Expr::ImmF(round_f32(v));
                        }
                    }
                }
                // Algebraic identities.
                match (*op, &a, &b) {
                    (Op2::Add, x, Expr::ImmI(0)) | (Op2::Sub, x, Expr::ImmI(0)) => {
                        return x.clone()
                    }
                    (Op2::Add, Expr::ImmI(0), x) => return x.clone(),
                    (Op2::Mul, x, Expr::ImmI(1)) | (Op2::Div, x, Expr::ImmI(1)) => {
                        return x.clone()
                    }
                    (Op2::Mul, Expr::ImmI(1), x) => return x.clone(),
                    (Op2::Mul, _, Expr::ImmI(0)) | (Op2::Mul, Expr::ImmI(0), _) => {
                        return Expr::ImmI(0)
                    }
                    (Op2::Shl, x, Expr::ImmI(0)) | (Op2::Shr, x, Expr::ImmI(0)) => {
                        return x.clone()
                    }
                    (Op2::And, _, Expr::ImmI(0)) | (Op2::And, Expr::ImmI(0), _) => {
                        return Expr::ImmI(0)
                    }
                    (Op2::Or, x, Expr::ImmI(0)) | (Op2::Xor, x, Expr::ImmI(0)) => return x.clone(),
                    (Op2::Or, Expr::ImmI(0), x) | (Op2::Xor, Expr::ImmI(0), x) => return x.clone(),
                    (Op2::Rem, _, Expr::ImmI(1)) => return Expr::ImmI(0),
                    // Zero elision must respect the zero's sign to stay
                    // IEEE-exact: x + (+0.0) rewrites -0.0 to +0.0, and
                    // x - (-0.0) does the same, so only the sign-preserving
                    // pairings may fold.
                    (Op2::Add, x, Expr::ImmF(f)) if *f == 0.0 && f.is_sign_negative() => {
                        return x.clone()
                    }
                    (Op2::Sub, x, Expr::ImmF(f)) if *f == 0.0 && f.is_sign_positive() => {
                        return x.clone()
                    }
                    (Op2::Mul, x, Expr::ImmF(f)) if *f == 1.0 => return x.clone(),
                    _ => {}
                }
            }
            Expr::Bin(*op, Box::new(a), Box::new(b))
        }
        Expr::Cmp(op, a, b) => {
            let a = fold_expr(a, level);
            let b = fold_expr(b, level);
            if level == FoldLevel::Aggressive {
                if let (Expr::ImmI(x), Expr::ImmI(y)) = (&a, &b) {
                    return Expr::ImmI(cmp_int(*op, *x, *y) as i64);
                }
                if let (Expr::ImmF(x), Expr::ImmF(y)) = (&a, &b) {
                    let r = match op {
                        CmpOp::Eq => x == y,
                        CmpOp::Ne => x != y,
                        CmpOp::Lt => x < y,
                        CmpOp::Le => x <= y,
                        CmpOp::Gt => x > y,
                        CmpOp::Ge => x >= y,
                    };
                    return Expr::ImmI(r as i64);
                }
            }
            Expr::Cmp(*op, Box::new(a), Box::new(b))
        }
        Expr::Select(c, a, b) => {
            let c = fold_expr(c, level);
            let a = fold_expr(a, level);
            let b = fold_expr(b, level);
            if level == FoldLevel::Aggressive {
                if let Expr::ImmI(v) = c {
                    return if v != 0 { a } else { b };
                }
            }
            Expr::Select(Box::new(c), Box::new(a), Box::new(b))
        }
        Expr::Cast(ty, a) => {
            let a = fold_expr(a, level);
            if level == FoldLevel::Aggressive {
                match (&a, ty) {
                    (Expr::ImmI(v), t) if t.is_float() => return Expr::ImmF(*v as f64),
                    (Expr::ImmI(v), _) => return Expr::ImmI(*v),
                    (Expr::ImmF(v), t) if !t.is_float() => return Expr::ImmI(*v as i64),
                    (Expr::ImmF(v), _) => return Expr::ImmF(*v),
                    _ => {}
                }
            }
            Expr::Cast(*ty, Box::new(a))
        }
        Expr::Load {
            space,
            base,
            index,
            ty,
        } => Expr::Load {
            space: *space,
            base: Box::new(fold_expr(base, level)),
            index: Box::new(fold_expr(index, level)),
            ty: *ty,
        },
        Expr::TexFetch { slot, index, ty } => Expr::TexFetch {
            slot: *slot,
            index: Box::new(fold_expr(index, level)),
            ty: *ty,
        },
    }
}

/// Fold all expressions in a statement tree; with [`FoldLevel::Aggressive`],
/// `if` statements whose condition folded to a constant are pruned to the
/// live branch.
pub fn fold_stmts(stmts: &[Stmt], level: FoldLevel) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        match s {
            Stmt::Let(v, e) => out.push(Stmt::Let(*v, fold_expr(e, level))),
            Stmt::Assign(v, e) => out.push(Stmt::Assign(*v, fold_expr(e, level))),
            Stmt::Store {
                space,
                base,
                index,
                ty,
                value,
            } => out.push(Stmt::Store {
                space: *space,
                base: fold_expr(base, level),
                index: fold_expr(index, level),
                ty: *ty,
                value: fold_expr(value, level),
            }),
            Stmt::If { cond, then_, else_ } => {
                let cond = fold_expr(cond, level);
                let then_ = fold_stmts(then_, level);
                let else_ = fold_stmts(else_, level);
                if level == FoldLevel::Aggressive {
                    if let Expr::ImmI(v) = cond {
                        out.extend(if v != 0 { then_ } else { else_ });
                        continue;
                    }
                }
                out.push(Stmt::If { cond, then_, else_ });
            }
            Stmt::For {
                var,
                start,
                end,
                step,
                unroll,
                body,
            } => out.push(Stmt::For {
                var: *var,
                start: fold_expr(start, level),
                end: fold_expr(end, level),
                step: *step,
                unroll: *unroll,
                body: fold_stmts(body, level),
            }),
            Stmt::While { cond, body } => out.push(Stmt::While {
                cond: fold_expr(cond, level),
                body: fold_stmts(body, level),
            }),
            Stmt::Barrier => out.push(Stmt::Barrier),
            Stmt::AtomicRmw {
                op,
                space,
                base,
                index,
                ty,
                value,
                old,
            } => out.push(Stmt::AtomicRmw {
                op: *op,
                space: *space,
                base: fold_expr(base, level),
                index: fold_expr(index, level),
                ty: *ty,
                value: fold_expr(value, level),
                old: *old,
            }),
        }
    }
    out
}

/// Evaluate one integer binary op; `None` for division by zero (left as a
/// runtime trap) or shift overflow.
fn fold_int(op: Op2, x: i64, y: i64) -> Option<i64> {
    Some(match op {
        Op2::Add => x.wrapping_add(y),
        Op2::Sub => x.wrapping_sub(y),
        Op2::Mul => x.wrapping_mul(y),
        Op2::Div => {
            if y == 0 {
                return None;
            }
            x.wrapping_div(y)
        }
        Op2::Rem => {
            if y == 0 {
                return None;
            }
            x.wrapping_rem(y)
        }
        Op2::Min => x.min(y),
        Op2::Max => x.max(y),
        Op2::And => x & y,
        Op2::Or => x | y,
        Op2::Xor => x ^ y,
        Op2::Shl => {
            if !(0..64).contains(&y) {
                return None;
            }
            x.wrapping_shl(y as u32)
        }
        Op2::Shr => {
            if !(0..64).contains(&y) {
                return None;
            }
            // Only fold where every runtime reading agrees: for negative
            // (or 32-bit-truncating) values, S32 shifts arithmetically and
            // U32 logically, and the result type is unknown here — leave
            // those to the runtime op.
            if !(0..=i32::MAX as i64).contains(&x) {
                return None;
            }
            x >> y
        }
    })
}

fn cmp_int(op: CmpOp, x: i64, y: i64) -> bool {
    match op {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
    }
}

fn imm_f(e: &Expr) -> Option<f64> {
    match e {
        Expr::ImmF(v) => Some(*v),
        Expr::ImmI(v) => Some(*v as f64),
        _ => None,
    }
}

/// Round a folded double to f32 precision, matching what the runtime f32
/// instruction would have produced (keeps CUDA-folded and OpenCL-computed
/// results bit-identical for f32 kernels).
fn round_f32(v: f64) -> f64 {
    v as f32 as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::select;
    use gpucmp_ptx::Ty;

    #[test]
    fn basic_folds_int_arith_only() {
        let e = Expr::from(3i32) * 4i32 + 5i32;
        assert_eq!(fold_expr(&e, FoldLevel::Basic), Expr::ImmI(17));
        let c = Expr::from(3i32).lt(4i32);
        // comparisons survive Basic folding
        assert!(matches!(fold_expr(&c, FoldLevel::Basic), Expr::Cmp(..)));
        assert_eq!(fold_expr(&c, FoldLevel::Aggressive), Expr::ImmI(1));
    }

    #[test]
    fn aggressive_folds_selects_and_math() {
        let e = select(Expr::from(1i32).lt(2i32), 10f32, 20f32);
        assert_eq!(fold_expr(&e, FoldLevel::Aggressive), Expr::ImmF(10.0));
        let s = Expr::from(9.0f32).sqrt();
        assert_eq!(fold_expr(&s, FoldLevel::Aggressive), Expr::ImmF(3.0));
        assert!(matches!(fold_expr(&s, FoldLevel::Basic), Expr::Un(..)));
    }

    #[test]
    #[allow(clippy::erasing_op)]
    fn identities() {
        let v = Expr::Var(crate::ast::Var { id: 0, ty: Ty::S32 });
        let e = v.clone() * 1i32 + 0i32;
        assert_eq!(fold_expr(&e, FoldLevel::Aggressive), v);
        let z = v.clone() * 0i32;
        assert_eq!(fold_expr(&z, FoldLevel::Aggressive), Expr::ImmI(0));
        // Basic keeps them
        assert!(matches!(fold_expr(&e, FoldLevel::Basic), Expr::Bin(..)));
    }

    #[test]
    fn division_by_zero_not_folded() {
        let e = Expr::from(1i32) / 0i32;
        assert!(matches!(
            fold_expr(&e, FoldLevel::Aggressive),
            Expr::Bin(..)
        ));
    }

    #[test]
    fn if_with_constant_condition_pruned() {
        let v = crate::ast::Var { id: 0, ty: Ty::S32 };
        let s = Stmt::If {
            cond: Expr::from(3i32).gt(5i32),
            then_: vec![Stmt::Let(v, Expr::ImmI(1))],
            else_: vec![Stmt::Let(v, Expr::ImmI(2))],
        };
        let folded = fold_stmts(std::slice::from_ref(&s), FoldLevel::Aggressive);
        assert_eq!(folded, vec![Stmt::Let(v, Expr::ImmI(2))]);
        let kept = fold_stmts(&[s], FoldLevel::Basic);
        assert!(matches!(kept[0], Stmt::If { .. }));
    }

    #[test]
    fn zero_elision_preserves_float_signs() {
        let v = Expr::Var(crate::ast::Var { id: 0, ty: Ty::F32 });
        // x + (+0.0) rewrites a negative-zero x to +0.0: must NOT fold.
        let e = v.clone() + 0.0f32;
        assert!(matches!(
            fold_expr(&e, FoldLevel::Aggressive),
            Expr::Bin(..)
        ));
        // x + (-0.0) and x - (+0.0) are exact identities: fold.
        let e = Expr::Bin(Op2::Add, Box::new(v.clone()), Box::new(Expr::ImmF(-0.0)));
        assert_eq!(fold_expr(&e, FoldLevel::Aggressive), v);
        let e = v.clone() - 0.0f32;
        assert_eq!(fold_expr(&e, FoldLevel::Aggressive), v);
        // x - (-0.0) rewrites negative zero too: must NOT fold.
        let e = Expr::Bin(Op2::Sub, Box::new(v.clone()), Box::new(Expr::ImmF(-0.0)));
        assert!(matches!(
            fold_expr(&e, FoldLevel::Aggressive),
            Expr::Bin(..)
        ));
    }

    #[test]
    fn shr_of_negative_left_to_runtime() {
        // S32 shifts arithmetically, U32 logically; the fold doesn't know
        // the result type, so a negative operand must survive folding.
        let e = Expr::Bin(Op2::Shr, Box::new(Expr::ImmI(-5)), Box::new(Expr::ImmI(3)));
        assert!(matches!(
            fold_expr(&e, FoldLevel::Aggressive),
            Expr::Bin(..)
        ));
        // A non-negative 32-bit value reads the same under every shift
        // semantics: folds.
        let e = Expr::Bin(Op2::Shr, Box::new(Expr::ImmI(40)), Box::new(Expr::ImmI(3)));
        assert_eq!(fold_expr(&e, FoldLevel::Aggressive), Expr::ImmI(5));
    }

    #[test]
    fn f32_rounding_matches_runtime() {
        // 0.1f32 + 0.2f32 in f32 arithmetic
        let e = Expr::from(0.1f32) + 0.2f32;
        match fold_expr(&e, FoldLevel::Aggressive) {
            Expr::ImmF(v) => assert_eq!(v as f32, 0.1f32 + 0.2f32),
            other => panic!("expected folded, got {other:?}"),
        }
    }
}
