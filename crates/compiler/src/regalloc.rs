//! Control-flow graph, liveness analysis and spilling.
//!
//! Used twice: by the front-ends to enforce their virtual-register budgets
//! (producing the `ld.local`/`st.local` traffic visible in the paper's
//! Table V), and by the `ptxas` backend to compute the physical register
//! footprint that drives occupancy (the paper's Fig. 7 mechanism).

use gpucmp_ptx::{Address, Inst, Kernel, Operand, Reg, Space, Ty};
use std::collections::HashMap;

/// A dense bit set over register indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// Empty set sized for `n` registers.
    pub fn new(n: usize) -> Self {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Insert `i`; returns true if newly inserted.
    pub fn insert(&mut self, i: usize) -> bool {
        let w = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        let new = *w & bit == 0;
        *w |= bit;
        new
    }

    /// Remove `i`.
    pub fn remove(&mut self, i: usize) {
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Union into `self`; returns true if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let n = *a | *b;
            changed |= n != *a;
            *a = n;
        }
        changed
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterate set bits.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| {
                if w & (1u64 << b) != 0 {
                    Some(wi * 64 + b)
                } else {
                    None
                }
            })
        })
    }
}

/// One basic block: instruction range `[start, end)` and successor blocks.
#[derive(Clone, Debug)]
pub struct Block {
    /// First instruction index.
    pub start: usize,
    /// One past the last instruction index.
    pub end: usize,
    /// Successor block indices.
    pub succs: Vec<usize>,
}

/// Control-flow graph over a kernel's flat instruction stream.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Basic blocks in program order.
    pub blocks: Vec<Block>,
}

/// Build the CFG. Leaders: instruction 0, every `Label`, and every
/// instruction following a branch or `ret`.
pub fn build_cfg(kernel: &Kernel) -> Cfg {
    let body = &kernel.body;
    let n = body.len();
    let mut is_leader = vec![false; n];
    if n > 0 {
        is_leader[0] = true;
    }
    // label -> pc
    let mut label_pc = HashMap::new();
    for (pc, inst) in body.iter().enumerate() {
        if let Inst::Label(l) = inst {
            label_pc.insert(*l, pc);
            is_leader[pc] = true;
        }
    }
    for (pc, inst) in body.iter().enumerate() {
        match inst {
            Inst::Bra { target, .. } => {
                is_leader[label_pc[target]] = true;
                if pc + 1 < n {
                    is_leader[pc + 1] = true;
                }
            }
            Inst::Ret if pc + 1 < n => {
                is_leader[pc + 1] = true;
            }
            _ => {}
        }
    }
    let leaders: Vec<usize> = (0..n).filter(|&i| is_leader[i]).collect();
    let mut block_of = vec![0usize; n];
    let mut blocks: Vec<Block> = Vec::with_capacity(leaders.len());
    for (bi, &start) in leaders.iter().enumerate() {
        let end = leaders.get(bi + 1).copied().unwrap_or(n);
        block_of[start..end].fill(bi);
        blocks.push(Block {
            start,
            end,
            succs: Vec::new(),
        });
    }
    for bi in 0..blocks.len() {
        let last = blocks[bi].end - 1;
        let mut succs = Vec::new();
        match &body[last] {
            Inst::Ret => {}
            Inst::Bra { target, pred } => {
                succs.push(block_of[label_pc[target]]);
                if pred.is_some() && bi + 1 < blocks.len() {
                    succs.push(bi + 1);
                }
            }
            _ => {
                if bi + 1 < blocks.len() {
                    succs.push(bi + 1);
                }
            }
        }
        blocks[bi].succs = succs;
    }
    Cfg { blocks }
}

/// Per-block liveness sets.
#[derive(Clone, Debug)]
pub struct Liveness {
    /// Live registers at block entry.
    pub live_in: Vec<BitSet>,
    /// Live registers at block exit.
    pub live_out: Vec<BitSet>,
}

/// Backward may-liveness over the CFG.
pub fn liveness(kernel: &Kernel, cfg: &Cfg) -> Liveness {
    let nregs = kernel.regs.len();
    let nb = cfg.blocks.len();
    // gen (upward-exposed uses) and kill (defs) per block
    let mut gen = vec![BitSet::new(nregs); nb];
    let mut kill = vec![BitSet::new(nregs); nb];
    for (bi, b) in cfg.blocks.iter().enumerate() {
        for pc in (b.start..b.end).rev() {
            let inst = &kernel.body[pc];
            if let Some(d) = inst.def() {
                gen[bi].remove(d.index());
                kill[bi].insert(d.index());
            }
            inst.for_each_use(|r| {
                gen[bi].insert(r.index());
            });
        }
    }
    let mut live_in = gen.clone();
    let mut live_out = vec![BitSet::new(nregs); nb];
    let mut changed = true;
    while changed {
        changed = false;
        for bi in (0..nb).rev() {
            let mut out = BitSet::new(nregs);
            for &s in &cfg.blocks[bi].succs {
                out.union_with(&live_in[s]);
            }
            if out != live_out[bi] {
                live_out[bi] = out.clone();
            }
            // in = gen ∪ (out - kill)
            let mut inn = gen[bi].clone();
            for r in out.iter() {
                if !kill[bi].contains(r) {
                    inn.insert(r);
                }
            }
            if inn != live_in[bi] {
                live_in[bi] = inn;
                changed = true;
            }
        }
    }
    Liveness { live_in, live_out }
}

/// Result of pressure analysis.
#[derive(Clone, Debug)]
pub struct Pressure {
    /// Maximum number of simultaneously live 32-bit register slots (wide
    /// registers count double, predicates count zero — they live in a
    /// separate predicate file).
    pub max_live_slots: u32,
    /// Instructions-live count per register (spill priority metric).
    pub live_len: Vec<u32>,
}

/// Compute register pressure.
pub fn pressure(kernel: &Kernel, cfg: &Cfg, lv: &Liveness) -> Pressure {
    let nregs = kernel.regs.len();
    let weight = |r: usize| -> u32 {
        match kernel.regs[r] {
            Ty::Pred => 0,
            t if t.is_wide() => 2,
            _ => 1,
        }
    };
    let mut live_len = vec![0u32; nregs];
    let mut max_slots = 0u32;
    let mut live = BitSet::new(nregs);
    for (bi, b) in cfg.blocks.iter().enumerate() {
        live.words.clone_from(&lv.live_out[bi].words);
        let mut slots: u32 = live.iter().map(weight).sum();
        max_slots = max_slots.max(slots);
        for pc in (b.start..b.end).rev() {
            let inst = &kernel.body[pc];
            if let Some(d) = inst.def() {
                if live.contains(d.index()) {
                    live.remove(d.index());
                    slots -= weight(d.index());
                }
            }
            inst.for_each_use(|r| {
                if live.insert(r.index()) {
                    slots += weight(r.index());
                }
            });
            max_slots = max_slots.max(slots);
            for r in live.iter() {
                live_len[r] += 1;
            }
        }
    }
    Pressure {
        max_live_slots: max_slots,
        live_len,
    }
}

/// Spill registers to `local` space until the pressure fits `budget` 32-bit
/// slots (or no further progress can be made). Returns the number of
/// registers spilled. Updates `kernel.local_bytes`.
pub fn spill_to_local(kernel: &mut Kernel, budget: u32) -> u32 {
    let mut spilled = 0u32;
    let mut no_spill: Vec<bool> = vec![false; kernel.regs.len()];
    for round in 0..64 {
        let cfg = build_cfg(kernel);
        let lv = liveness(kernel, &cfg);
        let p = pressure(kernel, &cfg, &lv);
        if p.max_live_slots <= budget {
            break;
        }
        // Spill the longest-lived non-predicate candidates this round.
        let mut cands: Vec<(u32, usize)> = (0..kernel.regs.len())
            .filter(|&r| kernel.regs[r] != Ty::Pred && !no_spill[r] && p.live_len[r] > 2)
            .map(|r| (p.live_len[r], r))
            .collect();
        cands.sort_unstable_by(|a, b| b.cmp(a));
        let take = ((p.max_live_slots - budget) as usize / 2 + 1)
            .min(cands.len())
            .max(1);
        if cands.is_empty() {
            break;
        }
        let victims: Vec<usize> = cands.iter().take(take).map(|&(_, r)| r).collect();
        for v in &victims {
            no_spill[*v] = true;
        }
        spill_regs(kernel, &victims, &mut no_spill);
        spilled += victims.len() as u32;
        let _ = round;
    }
    spilled
}

/// Rewrite the kernel spilling each register in `victims` to its own
/// 8-byte local slot: a `st.local` after every def, a `ld.local` into a
/// fresh temporary before every use.
fn spill_regs(kernel: &mut Kernel, victims: &[usize], no_spill: &mut Vec<bool>) {
    let mut slot_of: HashMap<usize, i64> = HashMap::new();
    for &v in victims {
        slot_of.insert(v, kernel.local_bytes as i64);
        kernel.local_bytes += 8;
    }
    let old_body = std::mem::take(&mut kernel.body);
    let mut new_body = Vec::with_capacity(old_body.len() * 2);
    for mut inst in old_body {
        // Reload spilled uses into fresh temps.
        let mut reloads: Vec<(Reg, Reg)> = Vec::new(); // (victim, temp)
        inst.for_each_use(|r| {
            if slot_of.contains_key(&r.index()) && !reloads.iter().any(|&(v, _)| v == r) {
                reloads.push((r, Reg(0))); // temp assigned below
            }
        });
        for (v, t) in &mut reloads {
            let ty = kernel.regs[v.index()];
            kernel.regs.push(ty);
            no_spill.push(true);
            *t = Reg(kernel.regs.len() as u32 - 1);
            new_body.push(Inst::Ld {
                space: Space::Local,
                ty: widen_for_slot(ty),
                d: *t,
                addr: Address::absolute(slot_of[&v.index()]),
            });
        }
        if !reloads.is_empty() {
            inst.map_regs(|r| {
                // only rewrite *uses*; the def (if it is a victim) keeps its
                // register and gets a store-back below. map_regs rewrites
                // defs too, so restore it afterwards.
                reloads
                    .iter()
                    .find(|&&(v, _)| v == r)
                    .map(|&(_, t)| t)
                    .unwrap_or(r)
            });
            // restore def if it was rewritten
            if let Some(d) = inst.def() {
                if let Some(&(v, _)) = reloads.iter().find(|&&(_, t)| t == d) {
                    // def collided with a reloaded use temp: put the victim
                    // back as destination (store-back follows).
                    set_def(&mut inst, v);
                }
            }
        }
        let def = inst.def();
        new_body.push(inst);
        if let Some(d) = def {
            if let Some(&slot) = slot_of.get(&d.index()) {
                let ty = kernel.regs[d.index()];
                new_body.push(Inst::St {
                    space: Space::Local,
                    ty: widen_for_slot(ty),
                    addr: Address::absolute(slot),
                    a: Operand::Reg(d),
                });
            }
        }
    }
    kernel.body = new_body;
}

/// Local slots are 8 bytes; spill/reload with the register's natural width
/// widened to a b32/b64 image so bit patterns round-trip exactly.
fn widen_for_slot(ty: Ty) -> Ty {
    if ty.is_wide() {
        Ty::B64
    } else {
        Ty::B32
    }
}

fn set_def(inst: &mut Inst, new_d: Reg) {
    match inst {
        Inst::Mov { d, .. }
        | Inst::Cvt { d, .. }
        | Inst::Un { d, .. }
        | Inst::Bin { d, .. }
        | Inst::Tern { d, .. }
        | Inst::Setp { d, .. }
        | Inst::Selp { d, .. }
        | Inst::Ld { d, .. }
        | Inst::Tex { d, .. }
        | Inst::Atom { d, .. } => *d = new_d,
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpucmp_ptx::{CmpOp, KernelBuilder, Op2};

    #[test]
    fn bitset_basics() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(0));
        assert!(s.contains(129));
        assert_eq!(s.len(), 2);
        s.remove(0);
        assert!(!s.contains(0));
        let collected: Vec<_> = s.iter().collect();
        assert_eq!(collected, vec![129]);
    }

    fn straightline_kernel(n_chain: usize) -> Kernel {
        // r0 = 1; r1 = r0+1; ... long dependency chain: pressure stays tiny.
        let mut b = KernelBuilder::new("chain");
        let mut prev = b.mov(Ty::S32, 1i32);
        for _ in 0..n_chain {
            prev = b.bin(Op2::Add, Ty::S32, prev, 1i32);
        }
        b.st(Space::Global, Ty::S32, Address::absolute(0), prev);
        b.finish()
    }

    #[test]
    fn chain_has_low_pressure() {
        let k = straightline_kernel(50);
        let cfg = build_cfg(&k);
        let lv = liveness(&k, &cfg);
        let p = pressure(&k, &cfg, &lv);
        assert!(p.max_live_slots <= 2, "chain pressure {}", p.max_live_slots);
    }

    fn wide_live_kernel(n: usize) -> Kernel {
        // define n values, then use them all at the end: pressure = n.
        let mut b = KernelBuilder::new("wide");
        let regs: Vec<_> = (0..n).map(|i| b.mov(Ty::S32, i as i32)).collect();
        let mut acc = regs[0];
        for r in &regs[1..] {
            acc = b.bin(Op2::Add, Ty::S32, acc, *r);
        }
        b.st(Space::Global, Ty::S32, Address::absolute(0), acc);
        b.finish()
    }

    #[test]
    fn parallel_values_have_high_pressure() {
        let k = wide_live_kernel(40);
        let cfg = build_cfg(&k);
        let lv = liveness(&k, &cfg);
        let p = pressure(&k, &cfg, &lv);
        assert!(p.max_live_slots >= 40, "pressure {}", p.max_live_slots);
    }

    #[test]
    fn spilling_reduces_pressure_and_allocates_local() {
        let mut k = wide_live_kernel(40);
        let spilled = spill_to_local(&mut k, 16);
        assert!(spilled > 0);
        assert_eq!(k.local_bytes, spilled * 8);
        let cfg = build_cfg(&k);
        let lv = liveness(&k, &cfg);
        let p = pressure(&k, &cfg, &lv);
        assert!(
            p.max_live_slots <= 16 + 2,
            "post-spill pressure {}",
            p.max_live_slots
        );
        // spill code present
        let lds = k
            .body
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    Inst::Ld {
                        space: Space::Local,
                        ..
                    }
                )
            })
            .count();
        let sts = k
            .body
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    Inst::St {
                        space: Space::Local,
                        ..
                    }
                )
            })
            .count();
        assert!(lds > 0 && sts > 0);
    }

    #[test]
    fn cfg_over_branches() {
        let mut b = KernelBuilder::new("br");
        let l_else = b.new_label();
        let l_end = b.new_label();
        let p = b.setp(CmpOp::Lt, Ty::S32, 1i32, 2i32);
        b.bra_if(l_else, p, false);
        let t = b.mov(Ty::S32, 1i32);
        b.st(Space::Global, Ty::S32, Address::absolute(0), t);
        b.bra(l_end);
        b.place_label(l_else);
        let e = b.mov(Ty::S32, 2i32);
        b.st(Space::Global, Ty::S32, Address::absolute(0), e);
        b.place_label(l_end);
        let k = b.finish();
        let cfg = build_cfg(&k);
        assert!(cfg.blocks.len() >= 4);
        // entry block ends with conditional branch: two successors
        let entry_succs = &cfg.blocks[0].succs;
        assert_eq!(entry_succs.len(), 2);
    }

    #[test]
    fn liveness_across_loop_backedge() {
        // acc defined before loop, updated in loop, stored after: must be
        // live around the back edge.
        let mut b = KernelBuilder::new("loop");
        let acc = b.mov(Ty::S32, 0i32);
        let i = b.mov(Ty::S32, 0i32);
        let top = b.new_label();
        let end = b.new_label();
        b.place_label(top);
        let p = b.setp(CmpOp::Ge, Ty::S32, i, 10i32);
        b.bra_if(end, p, true);
        b.bin_to(Op2::Add, Ty::S32, acc, acc, 1i32);
        b.bin_to(Op2::Add, Ty::S32, i, i, 1i32);
        b.bra(top);
        b.place_label(end);
        b.st(Space::Global, Ty::S32, Address::absolute(0), acc);
        let k = b.finish();
        let cfg = build_cfg(&k);
        let lv = liveness(&k, &cfg);
        // find the loop-header block (contains the setp)
        let header = cfg
            .blocks
            .iter()
            .position(|blk| (blk.start..blk.end).any(|pc| matches!(k.body[pc], Inst::Setp { .. })))
            .unwrap();
        assert!(lv.live_in[header].contains(acc.index()));
        assert!(lv.live_in[header].contains(i.index()));
    }
}
