//! # gpucmp-compiler — the kernel DSL and the two front-end compilers
//!
//! Implements steps 3-6 of the paper's eight-step development flow:
//!
//! - [`ast`] — the "native kernel" source form, in which each benchmark is
//!   written once;
//! - [`unroll`] — `#pragma unroll` handling (paper Figs. 6-7);
//! - [`fold`] — constant folding at two maturity levels;
//! - [`lower`] — code generation with a per-front-end [`lower::CodegenStyle`];
//! - [`frontend`] — the CUDA (`nvopencc`-style) and OpenCL front-end presets
//!   and the full `compile` pipeline (the per-knob rationale, with pointers
//!   to the paper's Table V evidence, is documented there);
//! - [`regalloc`] — liveness, register pressure and spilling;
//! - [`ptxas`] — the backend: propagation, fusion, DCE, device-cap
//!   spilling, physical register accounting.
//!
//! The same kernel definition compiled through the two front-ends produces
//! functionally identical but statically different code — the code-quality
//! gap the paper measures.

pub mod ast;
pub mod fold;
pub mod frontend;
pub mod lower;
pub mod ptxas;
pub mod regalloc;
pub mod unroll;

pub use ast::{
    global_id_x, global_id_y, global_size_x, ld_global, select, tex1d, Builtin, ConstArray,
    DslKernel, Expr, KernelDef, SharedArray, Stmt, Unroll, Var,
};
pub use fold::FoldLevel;
pub use frontend::{
    compile, compile_with_style, cuda_style, opencl_style, Api, CompileError, Compiled,
};
pub use lower::CodegenStyle;
