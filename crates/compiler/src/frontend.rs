//! The two front-ends and the full compilation pipeline.
//!
//! The knob settings encode the maturity differences the paper diagnoses in
//! Section IV-B-4 and Table V:
//!
//! | knob | CUDA (`nvopencc`) | OpenCL front-end | paper evidence |
//! |---|---|---|---|
//! | constant folding | aggressive (compares, selects, math) | basic int only | Table V: CUDA 220 vs OpenCL 521 arithmetic, 4 vs 188 flow-control |
//! | strength reduction to bit ops | no (keeps `mul`) | yes (`shl`/`shr`/`and`) | Table V: CUDA 1 vs OpenCL 163 logic+shift |
//! | immediates | materialised via `mov` | inline | Table V: CUDA 687 vs OpenCL 88 `mov` |
//! | mad/fma fusion | left to `ptxas` | at the front-end | Table V: CUDA 2 mad/0 fma vs OpenCL 22 mad/37 fma |
//! | virtual spill budget | 40 (deep unrolling spills) | 64 | Table V: CUDA 250 vs OpenCL 78 `st.local` |
//!
//! Both front-ends honour `#pragma unroll` (the paper's FDTD experiments
//! change the *source* pragmas, not the compilers).

use crate::ast::KernelDef;
use crate::fold::FoldLevel;
use crate::lower::{lower, CodegenStyle};
use crate::ptxas;
use gpucmp_ptx::{validate_kernel, InstStats, Kernel};

/// Which programming model an application build targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Api {
    /// CUDA 3.2-era toolchain.
    Cuda,
    /// OpenCL 1.1-era toolchain.
    OpenCl,
}

impl Api {
    /// The front-end style for this API.
    pub fn style(self) -> CodegenStyle {
        match self {
            Api::Cuda => cuda_style(),
            Api::OpenCl => opencl_style(),
        }
    }

    /// Display name.
    pub const fn name(self) -> &'static str {
        match self {
            Api::Cuda => "CUDA",
            Api::OpenCl => "OpenCL",
        }
    }

    /// Both APIs, CUDA first.
    pub const fn both() -> [Api; 2] {
        [Api::Cuda, Api::OpenCl]
    }
}

/// The mature NVOPENCC-style front-end.
pub fn cuda_style() -> CodegenStyle {
    CodegenStyle {
        name: "nvopencc",
        fold: FoldLevel::Aggressive,
        strength_reduce_bitops: false,
        imm_via_mov: true,
        fuse_mad: false,
        spill_budget: 40,
        hoist_unrolled_loads: false,
        demote_carried_vars: false,
        cse_addresses: true,
    }
}

/// The younger OpenCL front-end.
pub fn opencl_style() -> CodegenStyle {
    CodegenStyle {
        name: "oclc",
        fold: FoldLevel::Basic,
        strength_reduce_bitops: true,
        imm_via_mov: false,
        fuse_mad: true,
        spill_budget: 64,
        hoist_unrolled_loads: true,
        demote_carried_vars: true,
        // address CSE came with the shared NVVM infrastructure; what the
        // young front-end lacked was folding, not CSE
        cse_addresses: true,
    }
}

/// A fully compiled kernel.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// The front-end output ("PTX"): the artefact Table V tallies.
    pub ptx: Kernel,
    /// The executable kernel after the `ptxas` backend.
    pub exec: Kernel,
    /// Static statistics of the PTX form.
    pub ptx_stats: InstStats,
    /// Backend report.
    pub ptxas: ptxas::PtxasReport,
}

/// Compilation error.
#[derive(Clone, Debug, PartialEq)]
pub struct CompileError(pub String);

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "compile error: {}", self.0)
    }
}

impl std::error::Error for CompileError {}

/// Compile a kernel definition with an explicit style and device register
/// cap.
pub fn compile_with_style(
    def: &KernelDef,
    style: &CodegenStyle,
    max_regs_per_thread: u32,
) -> Result<Compiled, CompileError> {
    let ptx = lower(def, style);
    validate_kernel(&ptx).map_err(|e| CompileError(format!("front-end output invalid: {e}")))?;
    let ptx_stats = InstStats::of_kernel(&ptx);
    let mut exec = ptx.clone();
    let report = ptxas::run(&mut exec, max_regs_per_thread);
    validate_kernel(&exec).map_err(|e| CompileError(format!("ptxas output invalid: {e}")))?;
    Ok(Compiled {
        ptx,
        exec,
        ptx_stats,
        ptxas: report,
    })
}

/// Compile for an API with a device register cap.
pub fn compile(
    def: &KernelDef,
    api: Api,
    max_regs_per_thread: u32,
) -> Result<Compiled, CompileError> {
    compile_with_style(def, &api.style(), max_regs_per_thread)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{global_id_x, DslKernel, Expr, Unroll};
    use gpucmp_ptx::{InstClass, Ty};

    /// A kernel with foldable structure: unrolled loop with per-iteration
    /// conditionals and constant math — a miniature of the FFT situation.
    #[allow(clippy::approx_constant)] // deliberately a literal, like source code would have
    fn foldable_kernel() -> KernelDef {
        let mut k = DslKernel::new("mini_fft");
        let out = k.param_ptr("out");
        let gid = k.let_(Ty::S32, global_id_x());
        k.for_(0i64, 8i64, 1, Unroll::Full, |k, i| {
            // sign flip decided by a comparison on the (constant after
            // unrolling) loop index
            let sign = crate::ast::select(i.clone().lt(4i32), 1.0f32, -1.0f32);
            let angle = i.clone().cast(Ty::F32) * 0.785398f32;
            let tw = angle.cos();
            let idx = Expr::from(gid) * 8i32 + i.clone();
            // index arithmetic with power-of-two structure
            let swizzled = (idx.clone() % 8i32) * 64i32 + idx.clone() / 8i32;
            let _ = swizzled.clone();
            k.st_global(out.clone(), swizzled, Ty::F32, sign * tw);
        });
        k.finish()
    }

    #[test]
    fn cuda_folds_opencl_does_not() {
        let def = foldable_kernel();
        let c = compile(&def, Api::Cuda, 124).unwrap();
        let o = compile(&def, Api::OpenCl, 124).unwrap();
        // CUDA folded the selects/compares away; OpenCL kept flow control.
        assert!(
            c.ptx_stats.class_total(InstClass::FlowControl)
                < o.ptx_stats.class_total(InstClass::FlowControl),
            "CUDA fc={} OpenCL fc={}",
            c.ptx_stats.class_total(InstClass::FlowControl),
            o.ptx_stats.class_total(InstClass::FlowControl)
        );
        // OpenCL strength-reduced to logic/shift ops; CUDA has none.
        let o_bits =
            o.ptx_stats.class_total(InstClass::Logic) + o.ptx_stats.class_total(InstClass::Shift);
        let c_bits =
            c.ptx_stats.class_total(InstClass::Logic) + c.ptx_stats.class_total(InstClass::Shift);
        assert!(o_bits > c_bits, "OpenCL bits={o_bits} CUDA bits={c_bits}");
        // CUDA is mov-heavy in PTX form.
        assert!(
            c.ptx_stats.count("mov") > o.ptx_stats.count("mov"),
            "CUDA mov={} OpenCL mov={}",
            c.ptx_stats.count("mov"),
            o.ptx_stats.count("mov")
        );
        // identical global traffic instructions
        assert_eq!(c.ptx_stats.st_global(), o.ptx_stats.st_global());
    }

    #[test]
    fn ptxas_shrinks_cuda_ptx() {
        let def = foldable_kernel();
        let c = compile(&def, Api::Cuda, 124).unwrap();
        let exec_stats = InstStats::of_kernel(&c.exec);
        assert!(
            exec_stats.total() < c.ptx_stats.total(),
            "exec {} >= ptx {}",
            exec_stats.total(),
            c.ptx_stats.total()
        );
        // executable form keeps the stores
        assert_eq!(exec_stats.st_global(), c.ptx_stats.st_global());
    }

    #[test]
    fn compiled_kernels_have_physical_resources() {
        let def = foldable_kernel();
        for api in Api::both() {
            let k = compile(&def, api, 63).unwrap();
            assert!(k.exec.phys_regs >= 2);
            assert!(k.exec.phys_regs <= 63);
        }
    }

    #[test]
    fn api_metadata() {
        assert_eq!(Api::Cuda.name(), "CUDA");
        assert_eq!(Api::OpenCl.name(), "OpenCL");
        assert_eq!(Api::Cuda.style().name, "nvopencc");
        assert_ne!(Api::Cuda.style(), Api::OpenCl.style());
    }
}
