//! The back-end ("PTXAS" in the paper's step 6): cleans the front-end's
//! PTX into the executable form and computes the physical resource
//! footprint.
//!
//! Passes, in order:
//! 1. copy/immediate propagation (undoes the CUDA front-end's mov
//!    materialisation, exactly as the real `ptxas` removes most `mov`s),
//! 2. `mul`+`add` → `mad`/`fma` fusion,
//! 3. dead-code elimination,
//! 4. register-pressure spilling against the device's per-thread cap, and
//! 5. physical register accounting (drives the occupancy model).

use crate::regalloc;
use gpucmp_ptx::{Inst, Kernel, Op2, Op3, Operand};

/// Result of running the backend.
#[derive(Clone, Debug)]
pub struct PtxasReport {
    /// Instructions removed by propagation + DCE.
    pub removed: usize,
    /// `mul`+`add` pairs fused.
    pub fused: usize,
    /// Registers spilled against the device cap.
    pub spilled: u32,
}

/// Run the backend in place. `max_regs_per_thread` is the target device's
/// hard per-thread cap (e.g. 63 on Fermi).
pub fn run(kernel: &mut Kernel, max_regs_per_thread: u32) -> PtxasReport {
    let mut removed = 0usize;
    let mut fused = 0usize;
    for _ in 0..4 {
        let a = propagate(kernel);
        let f = fuse_mad(kernel);
        let b = dce(kernel);
        removed += a + b;
        fused += f;
        if a + b + f == 0 {
            break;
        }
    }
    let spilled = regalloc::spill_to_local(kernel, max_regs_per_thread);
    if spilled > 0 {
        // spilling introduces copies; clean again
        removed += propagate(kernel);
        removed += dce(kernel);
    }
    let cfg = regalloc::build_cfg(kernel);
    let lv = regalloc::liveness(kernel, &cfg);
    let p = regalloc::pressure(kernel, &cfg, &lv);
    kernel.phys_regs = p.max_live_slots.clamp(2, max_regs_per_thread);
    PtxasReport {
        removed,
        fused,
        spilled,
    }
}

/// Count definitions per register.
fn def_counts(kernel: &Kernel) -> Vec<u32> {
    let mut defs = vec![0u32; kernel.regs.len()];
    for inst in &kernel.body {
        if let Some(d) = inst.def() {
            defs[d.index()] += 1;
        }
    }
    defs
}

/// Propagate `mov d, src` where `d` is singly defined and `src` is an
/// immediate, special register, or singly-defined register. Returns the
/// number of operand replacements performed.
fn propagate(kernel: &mut Kernel) -> usize {
    let defs = def_counts(kernel);
    // value of singly-defined mov destinations
    let mut value: Vec<Option<Operand>> = vec![None; kernel.regs.len()];
    for inst in &kernel.body {
        if let Inst::Mov { d, a, .. } = inst {
            if defs[d.index()] == 1 {
                let ok = match a {
                    Operand::ImmI(_) | Operand::ImmF(_) | Operand::Special(_) => true,
                    Operand::Reg(s) => defs[s.index()] == 1,
                };
                if ok {
                    value[d.index()] = Some(*a);
                }
            }
        }
    }
    // Resolve chains (mov a, b; mov c, a) with path compression.
    fn resolve(value: &mut Vec<Option<Operand>>, r: usize, depth: u32) -> Option<Operand> {
        if depth > 32 {
            return value[r];
        }
        match value[r] {
            Some(Operand::Reg(s)) => {
                if let Some(v) = resolve(value, s.index(), depth + 1) {
                    value[r] = Some(v);
                }
                value[r]
            }
            other => other,
        }
    }
    for r in 0..kernel.regs.len() {
        resolve(&mut value, r, 0);
    }
    let mut replaced = 0usize;
    let replace_op = |o: &mut Operand, value: &[Option<Operand>], replaced: &mut usize| {
        if let Operand::Reg(r) = o {
            if let Some(v) = value[r.index()] {
                *o = v;
                *replaced += 1;
            }
        }
    };
    for inst in &mut kernel.body {
        match inst {
            // `d` of a mov is a def; only rewrite source positions.
            Inst::Mov { a, .. } | Inst::Cvt { a, .. } | Inst::Un { a, .. } => {
                replace_op(a, &value, &mut replaced)
            }
            Inst::Bin { a, b, .. } | Inst::Setp { a, b, .. } => {
                replace_op(a, &value, &mut replaced);
                replace_op(b, &value, &mut replaced);
            }
            Inst::Tern { a, b, c, .. } => {
                replace_op(a, &value, &mut replaced);
                replace_op(b, &value, &mut replaced);
                replace_op(c, &value, &mut replaced);
            }
            Inst::Selp { a, b, .. } => {
                // p must stay a register
                replace_op(a, &value, &mut replaced);
                replace_op(b, &value, &mut replaced);
            }
            Inst::Ld { addr, .. } => replace_op(&mut addr.base, &value, &mut replaced),
            Inst::St { addr, a, .. } => {
                replace_op(&mut addr.base, &value, &mut replaced);
                replace_op(a, &value, &mut replaced);
            }
            Inst::Tex { idx, .. } => replace_op(idx, &value, &mut replaced),
            Inst::Atom { addr, b, c, .. } => {
                replace_op(&mut addr.base, &value, &mut replaced);
                replace_op(b, &value, &mut replaced);
                replace_op(c, &value, &mut replaced);
            }
            _ => {}
        }
    }
    replaced
}

/// Fuse `mul d, a, b` immediately followed by `add e, d, c` (or `add e, c,
/// d`) into `mad`/`fma` when `d` is used nowhere else.
fn fuse_mad(kernel: &mut Kernel) -> usize {
    let mut use_counts = vec![0u32; kernel.regs.len()];
    for inst in &kernel.body {
        inst.for_each_use(|r| use_counts[r.index()] += 1);
    }
    let mut fused = 0usize;
    let mut i = 0;
    while i + 1 < kernel.body.len() {
        let (first, rest) = kernel.body.split_at_mut(i + 1);
        let cur = &first[i];
        if let Inst::Bin {
            op: Op2::Mul,
            ty,
            d,
            a,
            b,
        } = *cur
        {
            if use_counts[d.index()] == 1 {
                if let Inst::Bin {
                    op: Op2::Add,
                    ty: ty2,
                    d: e,
                    a: x,
                    b: y,
                } = rest[0]
                {
                    if ty2 == ty {
                        let c = if x == Operand::Reg(d) {
                            Some(y)
                        } else if y == Operand::Reg(d) {
                            Some(x)
                        } else {
                            None
                        };
                        if let Some(c) = c {
                            let op = if ty.is_float() { Op3::Fma } else { Op3::Mad };
                            rest[0] = Inst::Tern {
                                op,
                                ty,
                                d: e,
                                a,
                                b,
                                c,
                            };
                            first[i] = Inst::Mov {
                                ty,
                                d,
                                a: Operand::ImmI(0),
                            }; // dead, removed by DCE
                            use_counts[d.index()] = 0;
                            fused += 1;
                        }
                    }
                }
            }
        }
        i += 1;
    }
    fused
}

/// Remove instructions that define a never-used register and have no side
/// effects. Returns the number removed.
fn dce(kernel: &mut Kernel) -> usize {
    let mut removed_total = 0usize;
    loop {
        let mut used = vec![false; kernel.regs.len()];
        for inst in &kernel.body {
            inst.for_each_use(|r| used[r.index()] = true);
        }
        let before = kernel.body.len();
        kernel.body.retain(|inst| {
            if inst.has_side_effect() {
                return true;
            }
            match inst.def() {
                Some(d) => used[d.index()],
                None => true,
            }
        });
        let removed = before - kernel.body.len();
        removed_total += removed;
        if removed == 0 {
            break;
        }
    }
    removed_total
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpucmp_ptx::{Address, KernelBuilder, Space, Ty};

    #[test]
    fn propagation_removes_imm_movs() {
        let mut b = KernelBuilder::new("t");
        let r1 = b.mov(Ty::S32, 5i32);
        let r2 = b.mov(Ty::S32, r1);
        let r3 = b.bin(Op2::Add, Ty::S32, r2, 1i32);
        b.st(Space::Global, Ty::S32, Address::absolute(0), r3);
        let mut k = b.finish();
        let report = run(&mut k, 64);
        assert!(report.removed >= 2);
        // the add now consumes the immediate directly
        let add = k
            .body
            .iter()
            .find_map(|i| match i {
                Inst::Bin {
                    op: Op2::Add, a, ..
                } => Some(*a),
                _ => None,
            })
            .unwrap();
        assert_eq!(add, Operand::ImmI(5));
        // movs are gone
        assert!(!k.body.iter().any(|i| matches!(i, Inst::Mov { .. })));
    }

    #[test]
    fn multiply_defined_regs_not_propagated() {
        let mut b = KernelBuilder::new("t");
        let v = b.mov(Ty::S32, 1i32);
        b.mov_to(Ty::S32, v, 2i32); // second def
        let r = b.bin(Op2::Add, Ty::S32, v, 0i32);
        b.st(Space::Global, Ty::S32, Address::absolute(0), r);
        let mut k = b.finish();
        run(&mut k, 64);
        // v's movs must survive (it is multiply defined)
        let movs = k
            .body
            .iter()
            .filter(|i| matches!(i, Inst::Mov { .. }))
            .count();
        assert_eq!(movs, 2);
    }

    #[test]
    fn fusion_produces_mad() {
        let mut b = KernelBuilder::new("t");
        let x = b.ld(Space::Global, Ty::F32, Address::absolute(0));
        let y = b.ld(Space::Global, Ty::F32, Address::absolute(4));
        let m = b.bin(Op2::Mul, Ty::F32, x, y);
        let s = b.bin(Op2::Add, Ty::F32, m, x);
        b.st(Space::Global, Ty::F32, Address::absolute(8), s);
        let mut k = b.finish();
        let report = run(&mut k, 64);
        assert_eq!(report.fused, 1);
        assert!(k
            .body
            .iter()
            .any(|i| matches!(i, Inst::Tern { op: Op3::Fma, .. })));
        assert!(!k
            .body
            .iter()
            .any(|i| matches!(i, Inst::Bin { op: Op2::Mul, .. })));
    }

    #[test]
    fn dce_keeps_side_effects() {
        let mut b = KernelBuilder::new("t");
        let dead = b.bin(Op2::Add, Ty::S32, 1i32, 2i32);
        let _ = dead;
        let live = b.mov(Ty::S32, 3i32);
        b.st(Space::Global, Ty::S32, Address::absolute(0), live);
        b.bar();
        let mut k = b.finish();
        run(&mut k, 64);
        assert!(k.body.iter().any(|i| matches!(i, Inst::Bar)));
        assert!(k.body.iter().any(|i| matches!(i, Inst::St { .. })));
        assert!(!k
            .body
            .iter()
            .any(|i| matches!(i, Inst::Bin { op: Op2::Add, .. })));
    }

    #[test]
    fn phys_regs_respect_cap() {
        let mut b = KernelBuilder::new("t");
        let regs: Vec<_> = (0..100)
            .map(|i| b.ld(Space::Global, Ty::F32, Address::absolute(i * 4)))
            .collect();
        let mut acc = regs[0];
        for r in &regs[1..] {
            acc = b.bin(Op2::Add, Ty::F32, acc, *r);
        }
        b.st(Space::Global, Ty::F32, Address::absolute(0), acc);
        let mut k = b.finish();
        let report = run(&mut k, 32);
        assert!(report.spilled > 0);
        assert!(k.phys_regs <= 32);
        assert!(k.local_bytes > 0);
    }
}
