//! Lowering: DSL AST → virtual-ISA kernel, parameterised by the
//! [`CodegenStyle`] that distinguishes the two front-ends.

use crate::ast::{Builtin, Expr, KernelDef, Stmt, Var};
use crate::fold::{fold_expr, fold_stmts, FoldLevel};
use crate::unroll::{unroll_stmts_with, UnrollOpts};
use gpucmp_ptx::{
    Address, CmpOp, Inst, Kernel, KernelBuilder, Op2, Op3, Operand, Reg, Space, Special, Ty,
};
use std::collections::HashMap;

/// Everything that differs between the CUDA and OpenCL front-ends at
/// code-generation time. See [`crate::frontend`] for the two presets and
/// the paper-section rationale of every knob.
#[derive(Clone, Debug, PartialEq)]
pub struct CodegenStyle {
    /// Front-end name ("nvopencc" / "oclc").
    pub name: &'static str,
    /// Constant-folding aggressiveness.
    pub fold: FoldLevel,
    /// Lower power-of-two multiplies in address arithmetic to shifts
    /// (`shl`/`shr`/`and` — the OpenCL bit-twiddling of Table V).
    pub strength_reduce_bitops: bool,
    /// Materialise immediates into registers via `mov` before use
    /// (the CUDA front-end's mov-heavy style of Table V; `ptxas` propagates
    /// them back for execution).
    pub imm_via_mov: bool,
    /// Fuse `a*b + c` into `mad`/`fma` at the front-end (the OpenCL
    /// front-end does; the CUDA front-end leaves fusion to `ptxas`).
    pub fuse_mad: bool,
    /// Virtual-register budget before spilling to `local` space.
    pub spill_budget: u32,
    /// Software-pipeline partially-unrolled loops (see
    /// [`crate::unroll::UnrollOpts::hoist_unrolled_loads`]).
    pub hoist_unrolled_loads: bool,
    /// Demote loop-carried scalars of big unrolled bodies to local memory
    /// (see [`crate::unroll::UnrollOpts::demote_carried_vars`]).
    pub demote_carried_vars: bool,
    /// Common-subexpression-eliminate address computations and fold
    /// constant index offsets into the load/store offset field. This is
    /// the mature-compiler behaviour behind the paper's Table V: the CUDA
    /// FFT recomputes almost no index arithmetic, while the OpenCL
    /// front-end re-derives every address (its `add`/`mul`/`and`/`shl`
    /// excess).
    pub cse_addresses: bool,
}

/// Lower a kernel definition with the given style, producing the "PTX"
/// kernel — the artefact whose statistics the paper's Table V tallies,
/// *before* the `ptxas` backend cleans it up for execution.
pub fn lower(def: &KernelDef, style: &CodegenStyle) -> Kernel {
    let mut var_tys = def.var_tys.clone();
    let opts = UnrollOpts {
        hoist_unrolled_loads: style.hoist_unrolled_loads,
        written_params: written_params(&def.body),
        demote_carried_vars: style.demote_carried_vars,
        demote_threshold: UnrollOpts::DEFAULT_DEMOTE_THRESHOLD,
    };
    let mut dsl_local_bytes = 0u32;
    let body = unroll_stmts_with(&def.body, &mut var_tys, &opts, &mut dsl_local_bytes);
    let body = fold_stmts(&body, style.fold);
    let mut lw = Lowerer {
        b: KernelBuilder::new(def.name.clone()),
        style: style.clone(),
        def,
        _var_tys: var_tys,
        var_regs: HashMap::new(),
        param_regs: HashMap::new(),
        special_regs: HashMap::new(),
        addr_memo: vec![HashMap::new()],
        multi_def_vars: multi_def_vars(&body),
    };
    for (name, ty) in &def.params {
        lw.b.param(name.clone(), *ty);
    }
    lw.prologue(&body);
    lw.stmts(&body);
    let mut kernel = lw.b.finish();
    kernel.shared_bytes = def.shared_bytes;
    kernel.local_bytes = dsl_local_bytes;
    crate::regalloc::spill_to_local(&mut kernel, style.spill_budget);
    kernel
}

struct Lowerer<'a> {
    b: KernelBuilder,
    style: CodegenStyle,
    def: &'a KernelDef,
    /// retained for future passes that allocate DSL-level temporaries
    _var_tys: Vec<Ty>,
    var_regs: HashMap<u32, Reg>,
    param_regs: HashMap<u32, Reg>,
    special_regs: HashMap<Builtin, Reg>,
    /// Address-CSE memo stack: one scope per structured region; keys are
    /// `(space, base, core-index)` debug renderings, values the register
    /// holding the scaled base+core address. Vars assigned more than once
    /// are never memoised (their value changes).
    addr_memo: Vec<HashMap<String, Reg>>,
    multi_def_vars: std::collections::HashSet<u32>,
}

impl<'a> Lowerer<'a> {
    /// Preload every used parameter and built-in at kernel entry, so their
    /// registers are defined on all paths (real PTX does the same).
    fn prologue(&mut self, body: &[Stmt]) {
        let mut params = Vec::new();
        let mut specials = Vec::new();
        scan_stmts(body, &mut |e| match e {
            Expr::Param(i) if !params.contains(i) => {
                params.push(*i);
            }
            Expr::Special(s) if !specials.contains(s) => {
                specials.push(*s);
            }
            _ => {}
        });
        params.sort_unstable();
        for i in params {
            let ty = self.def.params[i as usize].1;
            let r = self.b.ld_param(i as usize, ty);
            self.param_regs.insert(i, r);
        }
        for s in specials {
            let r = self.b.special(builtin_special(s));
            self.special_regs.insert(s, r);
        }
    }

    fn var_reg(&mut self, v: Var) -> Reg {
        if let Some(&r) = self.var_regs.get(&v.id) {
            return r;
        }
        let r = self.b.reg(v.ty);
        self.var_regs.insert(v.id, r);
        r
    }

    fn stmts(&mut self, body: &[Stmt]) {
        for s in body {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Let(v, e) | Stmt::Assign(v, e) => {
                let d = self.var_reg(*v);
                let op = self.expr_into(e, v.ty, Some(d));
                if op != Operand::Reg(d) {
                    self.b.emit(Inst::Mov { ty: v.ty, d, a: op });
                }
            }
            Stmt::Store {
                space,
                base,
                index,
                ty,
                value,
            } => {
                let addr = self.address(*space, base, index, *ty);
                let v = self.expr(value, *ty);
                let v = self.maybe_mov(v, *ty);
                self.b.st(*space, *ty, addr, v);
            }
            Stmt::If { cond, then_, else_ } => {
                let (p, pol) = self.pred(cond);
                if else_.is_empty() {
                    let end = self.b.new_label();
                    self.b.ssy(end);
                    self.b.bra_if(end, p, !pol);
                    self.scoped(|lw| lw.stmts(then_));
                    self.b.place_label(end);
                    self.b.sync();
                } else {
                    let l_else = self.b.new_label();
                    let end = self.b.new_label();
                    self.b.ssy(end);
                    self.b.bra_if(l_else, p, !pol);
                    self.scoped(|lw| lw.stmts(then_));
                    self.b.bra(end);
                    self.b.place_label(l_else);
                    self.scoped(|lw| lw.stmts(else_));
                    self.b.place_label(end);
                    self.b.sync();
                }
            }
            Stmt::For {
                var,
                start,
                end,
                step,
                body,
                ..
            } => {
                let d = self.var_reg(*var);
                let s0 = self.expr(start, Ty::S32);
                self.b.emit(Inst::Mov {
                    ty: Ty::S32,
                    d,
                    a: s0,
                });
                let e0 = self.expr(end, Ty::S32);
                // hoist a register copy so the bound isn't re-evaluated
                let e0 = self.maybe_mov(e0, Ty::S32);
                let l_end = self.b.new_label();
                let l_top = self.b.new_label();
                self.b.ssy(l_end);
                self.b.place_label(l_top);
                let exit_cmp = if *step > 0 { CmpOp::Ge } else { CmpOp::Le };
                let p = self.b.setp(exit_cmp, Ty::S32, d, e0);
                self.b.bra_if(l_end, p, true);
                self.scoped(|lw| lw.stmts(body));
                self.b.bin_to(Op2::Add, Ty::S32, d, d, *step as i32);
                self.b.bra(l_top);
                self.b.place_label(l_end);
                self.b.sync();
            }
            Stmt::While { cond, body } => {
                let l_end = self.b.new_label();
                let l_top = self.b.new_label();
                self.b.ssy(l_end);
                self.b.place_label(l_top);
                let (p, pol) = self.pred(cond);
                self.b.bra_if(l_end, p, !pol);
                self.scoped(|lw| lw.stmts(body));
                self.b.bra(l_top);
                self.b.place_label(l_end);
                self.b.sync();
            }
            Stmt::Barrier => self.b.bar(),
            Stmt::AtomicRmw {
                op,
                space,
                base,
                index,
                ty,
                value,
                old,
            } => {
                let addr = self.address(*space, base, index, *ty);
                let v = self.expr(value, *ty);
                let d = self.b.atom(*space, *op, *ty, addr, v);
                if let Some(o) = old {
                    let dst = self.var_reg(*o);
                    self.b.emit(Inst::Mov {
                        ty: *ty,
                        d: dst,
                        a: Operand::Reg(d),
                    });
                }
            }
        }
    }

    /// Comparison operand type, fold-stable.
    ///
    /// Signedness must not depend on the front-end's fold level: plain
    /// inference on the style-folded tree would make it depend on *which*
    /// operand (or select arm) survives folding — e.g. `-6 < select(c,
    /// s32_var, u32_leaf)` infers S32 before folding but U32 after an
    /// aggressive fold collapses the select, silently turning the
    /// comparison unsigned under one front-end only. So the decision is
    /// made on the *maximally*-folded operands: re-folding aggressively is
    /// idempotent, so both front-ends land on identical trees here. The
    /// extra fold is for typing only — codegen still lowers the
    /// style-folded operands.
    ///
    /// On those trees: an explicit top-level cast pins the type (the
    /// `(x-1) u< (w-2)` interior-test idiom), an unsigned comparison
    /// requires *both* sides to infer U32 (sorting u32 keys), and any
    /// mixed or partly-constant integer comparison is signed.
    fn cmp_ty(&self, a: &Expr, b: &Expr) -> Ty {
        let fa = fold_expr(a, FoldLevel::Aggressive);
        let fb = fold_expr(b, FoldLevel::Aggressive);
        if let Expr::Cast(ty, _) = fa {
            return ty;
        }
        if let Expr::Cast(ty, _) = fb {
            return ty;
        }
        match (self.infer(&fa), self.infer(&fb)) {
            (Some(Ty::U32), Some(Ty::U32)) => Ty::U32,
            (ta, tb) => match ta.or(tb).unwrap_or(Ty::S32) {
                Ty::U32 | Ty::B32 => Ty::S32,
                other => other,
            },
        }
    }

    /// Lower a condition to a predicate register and polarity.
    fn pred(&mut self, cond: &Expr) -> (Reg, bool) {
        match cond {
            Expr::Cmp(op, a, b) => {
                let ty = self.cmp_ty(a, b);
                let va = self.expr(a, ty);
                let vb = self.expr(b, ty);
                (self.b.setp(*op, ty, va, vb), true)
            }
            other => {
                let ty = self.infer(other).unwrap_or(Ty::S32);
                let ty = if ty == Ty::Pred { Ty::S32 } else { ty };
                let v = self.expr(other, ty);
                (self.b.setp(CmpOp::Ne, ty, v, 0i32), true)
            }
        }
    }

    /// Lower an expression, result as an operand of type `want`.
    fn expr(&mut self, e: &Expr, want: Ty) -> Operand {
        self.expr_into(e, want, None)
    }

    /// Lower with an optional destination register for the top-level op.
    fn expr_into(&mut self, e: &Expr, want: Ty, dest: Option<Reg>) -> Operand {
        match e {
            Expr::ImmI(v) => self.imm_operand(Operand::ImmI(*v), want, dest),
            Expr::ImmF(v) => self.imm_operand(Operand::ImmF(*v), want, dest),
            Expr::Var(v) => Operand::Reg(self.var_reg(*v)),
            Expr::Param(i) => Operand::Reg(self.param_regs[i]),
            Expr::Special(s) => Operand::Reg(self.special_regs[s]),
            Expr::Un(op, a) => {
                let va = self.expr(a, want);
                let va = self.maybe_mov_if_style(va, want);
                let d = dest.unwrap_or_else(|| self.b.reg(want));
                self.b.emit(Inst::Un {
                    op: *op,
                    ty: want,
                    d,
                    a: va,
                });
                Operand::Reg(d)
            }
            Expr::Bin(op, a, b) => {
                // mad/fma fusion at the front-end (OpenCL style).
                if self.style.fuse_mad && *op == Op2::Add {
                    if let Expr::Bin(Op2::Mul, x, y) = &**a {
                        return self.emit_mad(x, y, b, want, dest);
                    }
                    if let Expr::Bin(Op2::Mul, x, y) = &**b {
                        return self.emit_mad(x, y, a, want, dest);
                    }
                }
                // strength reduction of power-of-two mul/div/rem (OpenCL
                // bit-twiddling style).
                if self.style.strength_reduce_bitops && !want.is_float() {
                    if let Some(r) = self.try_bitop(op, a, b, want, dest) {
                        return r;
                    }
                }
                let bty = if matches!(op, Op2::Shl | Op2::Shr) {
                    Ty::U32
                } else {
                    want
                };
                let va = self.expr(a, want);
                let va = self.maybe_mov_if_style(va, want);
                let vb = self.expr(b, bty);
                let vb = self.maybe_mov_if_style(vb, bty);
                let d = dest.unwrap_or_else(|| self.b.reg(want));
                self.b.emit(Inst::Bin {
                    op: *op,
                    ty: want,
                    d,
                    a: va,
                    b: vb,
                });
                Operand::Reg(d)
            }
            Expr::Cmp(op, a, b) => {
                // a comparison used as a value: produce 0/1 of `want`.
                let ty = self.cmp_ty(a, b);
                let va = self.expr(a, ty);
                let vb = self.expr(b, ty);
                let p = self.b.setp(*op, ty, va, vb);
                let d = dest.unwrap_or_else(|| self.b.reg(want));
                self.b.emit(Inst::Selp {
                    ty: want,
                    d,
                    a: Operand::ImmI(1),
                    b: Operand::ImmI(0),
                    p,
                });
                Operand::Reg(d)
            }
            Expr::Select(c, a, b) => {
                let (p, pol) = self.pred(c);
                let va = self.expr(a, want);
                let vb = self.expr(b, want);
                let (va, vb) = if pol { (va, vb) } else { (vb, va) };
                let d = dest.unwrap_or_else(|| self.b.reg(want));
                self.b.emit(Inst::Selp {
                    ty: want,
                    d,
                    a: va,
                    b: vb,
                    p,
                });
                Operand::Reg(d)
            }
            Expr::Cast(to, a) => {
                let from = self.infer(a).unwrap_or(Ty::S32);
                if from == *to {
                    return self.expr_into(a, *to, dest);
                }
                let va = self.expr(a, from);
                let d = dest.unwrap_or_else(|| self.b.reg(*to));
                self.b.emit(Inst::Cvt {
                    dty: *to,
                    sty: from,
                    d,
                    a: va,
                });
                Operand::Reg(d)
            }
            Expr::Load {
                space,
                base,
                index,
                ty,
            } => {
                let addr = self.address(*space, base, index, *ty);
                let d = dest.unwrap_or_else(|| self.b.reg(*ty));
                self.b.emit(Inst::Ld {
                    space: *space,
                    ty: *ty,
                    d,
                    addr,
                });
                let r = Operand::Reg(d);
                if *ty != want && want != Ty::Pred {
                    // loaded element feeding a different-typed context
                    return self.convert(r, *ty, want);
                }
                r
            }
            Expr::TexFetch { slot, index, ty } => {
                let idx = self.expr(index, Ty::S32);
                let d = dest.unwrap_or_else(|| self.b.reg(*ty));
                self.b.emit(Inst::Tex {
                    ty: *ty,
                    d,
                    tex: gpucmp_ptx::inst::TexRef(*slot),
                    idx,
                });
                Operand::Reg(d)
            }
        }
    }

    fn emit_mad(&mut self, x: &Expr, y: &Expr, c: &Expr, want: Ty, dest: Option<Reg>) -> Operand {
        let vx = self.expr(x, want);
        let vy = self.expr(y, want);
        let vc = self.expr(c, want);
        let d = dest.unwrap_or_else(|| self.b.reg(want));
        let op = if want.is_float() { Op3::Fma } else { Op3::Mad };
        self.b.emit(Inst::Tern {
            op,
            ty: want,
            d,
            a: vx,
            b: vy,
            c: vc,
        });
        Operand::Reg(d)
    }

    /// Strength-reduce `x * 2^k`, `x / 2^k`, `x % 2^k` into `shl`/`shr`/`and`.
    fn try_bitop(
        &mut self,
        op: &Op2,
        a: &Expr,
        b: &Expr,
        want: Ty,
        dest: Option<Reg>,
    ) -> Option<Operand> {
        let pow2 = |e: &Expr| match e {
            Expr::ImmI(v) if *v > 0 && (*v & (*v - 1)) == 0 => Some(v.trailing_zeros() as i64),
            _ => None,
        };
        match op {
            Op2::Mul => {
                let (x, k) = if let Some(k) = pow2(b) {
                    (a, k)
                } else if let Some(k) = pow2(a) {
                    (b, k)
                } else {
                    return None;
                };
                let vx = self.expr(x, want);
                let d = dest.unwrap_or_else(|| self.b.reg(want));
                self.b.emit(Inst::Bin {
                    op: Op2::Shl,
                    ty: want,
                    d,
                    a: vx,
                    b: Operand::ImmI(k),
                });
                Some(Operand::Reg(d))
            }
            Op2::Div => {
                let k = pow2(b)?;
                // only safe for unsigned contexts; signed division by
                // power of two needs rounding fixups, so leave it alone.
                if want.is_signed_int() {
                    return None;
                }
                let vx = self.expr(a, want);
                let d = dest.unwrap_or_else(|| self.b.reg(want));
                self.b.emit(Inst::Bin {
                    op: Op2::Shr,
                    ty: want,
                    d,
                    a: vx,
                    b: Operand::ImmI(k),
                });
                Some(Operand::Reg(d))
            }
            Op2::Rem => {
                let k = pow2(b)?;
                if want.is_signed_int() {
                    return None;
                }
                let vx = self.expr(a, want);
                let d = dest.unwrap_or_else(|| self.b.reg(want));
                self.b.emit(Inst::Bin {
                    op: Op2::And,
                    ty: want,
                    d,
                    a: vx,
                    b: Operand::ImmI((1 << k) - 1),
                });
                Some(Operand::Reg(d))
            }
            _ => None,
        }
    }

    /// Run `f` in a fresh address-CSE scope (structured control region).
    fn scoped(&mut self, f: impl FnOnce(&mut Self)) {
        self.addr_memo.push(HashMap::new());
        f(self);
        self.addr_memo.pop();
    }

    /// Look a memoised address register up across the scope stack.
    fn memo_get(&self, key: &str) -> Option<Reg> {
        self.addr_memo
            .iter()
            .rev()
            .find_map(|m| m.get(key).copied())
    }

    fn memo_put(&mut self, key: String, r: Reg) {
        self.addr_memo
            .last_mut()
            .expect("memo scope")
            .insert(key, r);
    }

    /// Whether an index expression is safe to memoise: it must not read any
    /// multiply-assigned variable (whose value changes between uses).
    fn memo_safe(&self, e: &Expr) -> bool {
        match e {
            Expr::Var(v) => !self.multi_def_vars.contains(&v.id),
            Expr::ImmI(_) | Expr::ImmF(_) | Expr::Param(_) | Expr::Special(_) => true,
            Expr::Un(_, a) | Expr::Cast(_, a) => self.memo_safe(a),
            Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => self.memo_safe(a) && self.memo_safe(b),
            Expr::Select(c, a, b) => self.memo_safe(c) && self.memo_safe(a) && self.memo_safe(b),
            // loads may read mutated memory
            Expr::Load { .. } | Expr::TexFetch { .. } => false,
        }
    }

    /// Peel constant addends off an index expression: `x + 3` → `(x, 3)`.
    fn split_const_add(index: &Expr) -> (Expr, i64) {
        match index {
            Expr::Bin(Op2::Add, a, b) => {
                if let Expr::ImmI(c) = &**b {
                    let (core, c2) = Self::split_const_add(a);
                    return (core, c + c2);
                }
                if let Expr::ImmI(c) = &**a {
                    let (core, c2) = Self::split_const_add(b);
                    return (core, c + c2);
                }
                (index.clone(), 0)
            }
            Expr::Bin(Op2::Sub, a, b) => {
                if let Expr::ImmI(c) = &**b {
                    let (core, c2) = Self::split_const_add(a);
                    return (core, c2 - c);
                }
                (index.clone(), 0)
            }
            _ => (index.clone(), 0),
        }
    }

    /// Compute the address of `base[index]` in `space` with element type
    /// `ty`.
    fn address(&mut self, space: Space, base: &Expr, index: &Expr, ty: Ty) -> Address {
        let size = ty.size_bytes() as i64;
        let log2 = size.trailing_zeros() as i64;
        // Mature-compiler path: split `core + CONST`, memoise the scaled
        // core address, and fold the constant into the offset field.
        let (core, const_off) = if self.style.cse_addresses {
            Self::split_const_add(index)
        } else {
            (index.clone(), 0)
        };
        match space {
            Space::Global => {
                if let Expr::ImmI(i) = &core {
                    let b = self.expr(base, Ty::U64);
                    return Address::with_offset(b, (i + const_off) * size);
                }
                if self.style.cse_addresses && self.memo_safe(&core) {
                    let key = format!("g|{ty:?}|{base:?}|{core:?}");
                    if let Some(r) = self.memo_get(&key) {
                        return Address::with_offset(Operand::Reg(r), const_off * size);
                    }
                    let addr = self.global_addr_reg(base, &core, size);
                    self.memo_put(key, addr);
                    return Address::with_offset(Operand::Reg(addr), const_off * size);
                }
                let addr = self.global_addr_reg(base, &core, size);
                Address::with_offset(Operand::Reg(addr), const_off * size)
            }
            Space::Shared | Space::Const | Space::Local | Space::Param => {
                // base is a compile-time byte offset (array handle).
                let off = match base {
                    Expr::ImmI(v) => *v,
                    _ => 0,
                };
                if let Expr::ImmI(i) = &core {
                    return Address::absolute(off + (i + const_off) * size);
                }
                if self.style.cse_addresses && self.memo_safe(&core) {
                    let key = format!("{space:?}|{ty:?}|{core:?}");
                    if let Some(r) = self.memo_get(&key) {
                        return Address::with_offset(Operand::Reg(r), off + const_off * size);
                    }
                    let r = self.scaled_index_u32(&core, size, log2);
                    if let Operand::Reg(reg) = r {
                        self.memo_put(key, reg);
                        return Address::with_offset(r, off + const_off * size);
                    }
                    return Address::with_offset(r, off + const_off * size);
                }
                let scaled = self.scaled_index_u32(&core, size, log2);
                Address::with_offset(scaled, off + const_off * size)
            }
        }
    }

    /// Scaled base+core address register for a global access.
    fn global_addr_reg(&mut self, base: &Expr, core: &Expr, size: i64) -> Reg {
        let b = self.expr(base, Ty::U64);
        let idx = self.expr(core, Ty::S32);
        let wide = self.b.cvt(Ty::U64, Ty::S32, idx);
        let scaled = if size == 1 {
            Operand::Reg(wide)
        } else if self.style.strength_reduce_bitops {
            Operand::Reg(
                self.b
                    .bin(Op2::Shl, Ty::U64, wide, size.trailing_zeros() as i64),
            )
        } else {
            Operand::Reg(self.b.bin(Op2::Mul, Ty::U64, wide, size))
        };
        self.b.bin(Op2::Add, Ty::U64, b, scaled)
    }

    /// Scaled u32 index for scratchpad spaces.
    fn scaled_index_u32(&mut self, core: &Expr, size: i64, log2: i64) -> Operand {
        let idx = self.expr(core, Ty::U32);
        if size == 1 {
            idx
        } else if self.style.strength_reduce_bitops {
            Operand::Reg(self.b.bin(Op2::Shl, Ty::U32, idx, log2))
        } else {
            Operand::Reg(self.b.bin(Op2::Mul, Ty::U32, idx, size))
        }
    }

    fn convert(&mut self, v: Operand, from: Ty, to: Ty) -> Operand {
        let d = self.b.reg(to);
        self.b.emit(Inst::Cvt {
            dty: to,
            sty: from,
            d,
            a: v,
        });
        Operand::Reg(d)
    }

    /// Materialise an immediate according to the front-end style.
    fn imm_operand(&mut self, imm: Operand, want: Ty, dest: Option<Reg>) -> Operand {
        if self.style.imm_via_mov {
            let d = dest.unwrap_or_else(|| self.b.reg(want));
            self.b.emit(Inst::Mov {
                ty: want,
                d,
                a: imm,
            });
            Operand::Reg(d)
        } else {
            imm
        }
    }

    /// Ensure a register operand (used where later rewriting needs one).
    fn maybe_mov(&mut self, v: Operand, ty: Ty) -> Operand {
        match v {
            Operand::Reg(_) => v,
            _ => Operand::Reg(self.b.mov(ty, v)),
        }
    }

    /// Apply `imm_via_mov` to an operand in an arithmetic position.
    fn maybe_mov_if_style(&mut self, v: Operand, ty: Ty) -> Operand {
        if self.style.imm_via_mov && !matches!(v, Operand::Reg(_)) {
            Operand::Reg(self.b.mov(ty, v))
        } else {
            v
        }
    }

    /// Infer an expression's natural type (None for bare immediates).
    fn infer(&self, e: &Expr) -> Option<Ty> {
        match e {
            Expr::ImmI(_) | Expr::ImmF(_) => None,
            Expr::Var(v) => Some(v.ty),
            Expr::Param(i) => Some(self.def.params[*i as usize].1),
            Expr::Special(_) => Some(Ty::U32),
            Expr::Un(_, a) => self.infer(a),
            Expr::Bin(_, a, b) => self.infer(a).or_else(|| self.infer(b)),
            // A comparison used as a *value* materializes as selp 0/1, so
            // its natural type in any arithmetic/conversion context is
            // S32. (Condition positions never infer the comparison itself;
            // they destructure it into setp directly.)
            Expr::Cmp(..) => Some(Ty::S32),
            Expr::Select(_, a, b) => self.infer(a).or_else(|| self.infer(b)),
            Expr::Cast(ty, _) => Some(*ty),
            Expr::Load { ty, .. } | Expr::TexFetch { ty, .. } => Some(*ty),
        }
    }
}

fn builtin_special(b: Builtin) -> Special {
    match b {
        Builtin::TidX => Special::TidX,
        Builtin::TidY => Special::TidY,
        Builtin::TidZ => Special::TidZ,
        Builtin::NtidX => Special::NtidX,
        Builtin::NtidY => Special::NtidY,
        Builtin::NtidZ => Special::NtidZ,
        Builtin::CtaidX => Special::CtaidX,
        Builtin::CtaidY => Special::CtaidY,
        Builtin::CtaidZ => Special::CtaidZ,
        Builtin::NctaidX => Special::NctaidX,
        Builtin::NctaidY => Special::NctaidY,
        Builtin::LaneId => Special::LaneId,
        Builtin::WarpId => Special::WarpId,
        Builtin::WarpSize => Special::WarpSize,
    }
}

/// Variables assigned more than once anywhere in the (post-unroll) body.
fn multi_def_vars(body: &[Stmt]) -> std::collections::HashSet<u32> {
    let mut counts: HashMap<u32, u32> = HashMap::new();
    fn walk(body: &[Stmt], counts: &mut HashMap<u32, u32>) {
        for s in body {
            match s {
                Stmt::Let(v, _) | Stmt::Assign(v, _) => *counts.entry(v.id).or_insert(0) += 1,
                Stmt::AtomicRmw { old: Some(v), .. } => *counts.entry(v.id).or_insert(0) += 1,
                Stmt::If { then_, else_, .. } => {
                    walk(then_, counts);
                    walk(else_, counts);
                }
                Stmt::For { var, body, .. } => {
                    // the loop var is reassigned every iteration
                    *counts.entry(var.id).or_insert(0) += 2;
                    walk(body, counts);
                }
                Stmt::While { body, .. } => walk(body, counts),
                _ => {}
            }
        }
    }
    walk(body, &mut counts);
    counts
        .into_iter()
        .filter(|&(_, c)| c > 1)
        .map(|(v, _)| v)
        .collect()
}

/// Kernel parameters used as a store or atomic base anywhere in the body.
fn written_params(body: &[Stmt]) -> std::collections::HashSet<u32> {
    let mut set = std::collections::HashSet::new();
    fn walk(body: &[Stmt], set: &mut std::collections::HashSet<u32>) {
        for s in body {
            match s {
                Stmt::Store { base, .. } | Stmt::AtomicRmw { base, .. } => {
                    if let Expr::Param(p) = base {
                        set.insert(*p);
                    }
                }
                Stmt::If { then_, else_, .. } => {
                    walk(then_, set);
                    walk(else_, set);
                }
                Stmt::For { body, .. } | Stmt::While { body, .. } => walk(body, set),
                _ => {}
            }
        }
    }
    walk(body, &mut set);
    set
}

/// Visit every expression in a statement tree.
fn scan_stmts(body: &[Stmt], f: &mut impl FnMut(&Expr)) {
    for s in body {
        match s {
            Stmt::Let(_, e) | Stmt::Assign(_, e) => scan_expr(e, f),
            Stmt::Store {
                base, index, value, ..
            } => {
                scan_expr(base, f);
                scan_expr(index, f);
                scan_expr(value, f);
            }
            Stmt::If { cond, then_, else_ } => {
                scan_expr(cond, f);
                scan_stmts(then_, f);
                scan_stmts(else_, f);
            }
            Stmt::For {
                start, end, body, ..
            } => {
                scan_expr(start, f);
                scan_expr(end, f);
                scan_stmts(body, f);
            }
            Stmt::While { cond, body } => {
                scan_expr(cond, f);
                scan_stmts(body, f);
            }
            Stmt::Barrier => {}
            Stmt::AtomicRmw {
                base, index, value, ..
            } => {
                scan_expr(base, f);
                scan_expr(index, f);
                scan_expr(value, f);
            }
        }
    }
}

fn scan_expr(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match e {
        Expr::Un(_, a) | Expr::Cast(_, a) => scan_expr(a, f),
        Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => {
            scan_expr(a, f);
            scan_expr(b, f);
        }
        Expr::Select(c, a, b) => {
            scan_expr(c, f);
            scan_expr(a, f);
            scan_expr(b, f);
        }
        Expr::Load { base, index, .. } => {
            scan_expr(base, f);
            scan_expr(index, f);
        }
        Expr::TexFetch { index, .. } => scan_expr(index, f),
        _ => {}
    }
}

/// Fold a standalone expression with a style's level (exposed for tests).
pub fn fold_with_style(e: &Expr, style: &CodegenStyle) -> Expr {
    fold_expr(e, style.fold)
}
