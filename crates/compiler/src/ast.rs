//! The kernel DSL: a small structured AST in which all 16 benchmarks are
//! authored exactly once, then lowered by either front-end.
//!
//! This plays the role of the "native kernel" source of the paper's
//! development flow (steps 3-4): the same algorithm text, which the two
//! front-end compilers then translate with their own styles and maturity.

use gpucmp_ptx::{AtomOp, CmpOp, Op1, Op2, Space, Ty};
use std::ops;

/// A DSL variable (mutable scalar).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Var {
    /// Index into the kernel's variable table.
    pub id: u32,
    /// Declared scalar type.
    pub ty: Ty,
}

/// An expression tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Integer immediate.
    ImmI(i64),
    /// Floating immediate.
    ImmF(f64),
    /// Variable read.
    Var(Var),
    /// Kernel parameter read (slot index); type from the kernel signature.
    Param(u32),
    /// Built-in index value.
    Special(Builtin),
    /// Unary operation.
    Un(Op1, Box<Expr>),
    /// Binary operation.
    Bin(Op2, Box<Expr>, Box<Expr>),
    /// Comparison; type `pred`.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// `cond ? a : b`.
    Select(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Type conversion.
    Cast(Ty, Box<Expr>),
    /// Typed element load: `*(ty*)(base_bytes) [index]`.
    Load {
        /// State space.
        space: Space,
        /// Byte base address (a pointer parameter for global, an immediate
        /// offset for shared/const arrays).
        base: Box<Expr>,
        /// Element index.
        index: Box<Expr>,
        /// Element type.
        ty: Ty,
    },
    /// Texture fetch of element `index` from texture `slot`.
    TexFetch {
        /// Texture slot.
        slot: u8,
        /// Element index.
        index: Box<Expr>,
        /// Element type.
        ty: Ty,
    },
}

/// Built-in work-item indices. CUDA names; the paper's Table I maps the
/// OpenCL terms (`get_local_id` etc.) onto the same values.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// `threadIdx.x` / `get_local_id(0)`.
    TidX,
    /// `threadIdx.y`.
    TidY,
    /// `threadIdx.z`.
    TidZ,
    /// `blockDim.x` / `get_local_size(0)`.
    NtidX,
    /// `blockDim.y`.
    NtidY,
    /// `blockDim.z`.
    NtidZ,
    /// `blockIdx.x` / `get_group_id(0)`.
    CtaidX,
    /// `blockIdx.y`.
    CtaidY,
    /// `blockIdx.z`.
    CtaidZ,
    /// `gridDim.x` / `get_num_groups(0)`.
    NctaidX,
    /// `gridDim.y`.
    NctaidY,
    /// Lane within the hardware warp/wavefront.
    LaneId,
    /// Hardware warp/wavefront index within the block.
    WarpId,
    /// The hardware warp width of the executing device.
    WarpSize,
}

/// Loop-unrolling hint on a `for` statement (the `#pragma unroll` of the
/// paper's FDTD analysis, Figs 6-7).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Unroll {
    /// No pragma: front-ends decide by their own policy (neither unrolls).
    None,
    /// `#pragma unroll` — fully unroll (requires constant trip count).
    Full,
    /// `#pragma unroll N` — unroll by factor N (works for runtime trip
    /// counts; a remainder loop is kept).
    By(u32),
}

/// A statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// First assignment of a variable.
    Let(Var, Expr),
    /// Reassignment.
    Assign(Var, Expr),
    /// Typed element store.
    Store {
        /// State space.
        space: Space,
        /// Byte base address.
        base: Expr,
        /// Element index.
        index: Expr,
        /// Element type.
        ty: Ty,
        /// Stored value.
        value: Expr,
    },
    /// Structured conditional.
    If {
        /// Predicate expression.
        cond: Expr,
        /// Taken branch.
        then_: Vec<Stmt>,
        /// Fallthrough branch (possibly empty).
        else_: Vec<Stmt>,
    },
    /// Counted loop: `for (var = start; var < end; var += step)`.
    /// `step` may be negative (`var > end` guard).
    For {
        /// Induction variable (S32).
        var: Var,
        /// Initial value.
        start: Expr,
        /// Exclusive bound.
        end: Expr,
        /// Signed step.
        step: i64,
        /// Unroll pragma.
        unroll: Unroll,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Condition-tested loop.
    While {
        /// Continuation predicate, re-evaluated each iteration.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `__syncthreads()` / `barrier(CLK_LOCAL_MEM_FENCE)`.
    Barrier,
    /// Atomic read-modify-write on memory.
    AtomicRmw {
        /// Operation.
        op: AtomOp,
        /// State space (global or shared).
        space: Space,
        /// Byte base address.
        base: Expr,
        /// Element index.
        index: Expr,
        /// Element type.
        ty: Ty,
        /// Operand value.
        value: Expr,
        /// Optional variable receiving the old value.
        old: Option<Var>,
    },
}

/// A shared-memory array handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SharedArray {
    /// Byte offset within the block's shared memory.
    pub offset: u32,
    /// Element type.
    pub ty: Ty,
    /// Element count.
    pub len: u32,
}

impl SharedArray {
    /// Load element `index`.
    pub fn ld(&self, index: impl Into<Expr>) -> Expr {
        Expr::Load {
            space: Space::Shared,
            base: Box::new(Expr::ImmI(self.offset as i64)),
            index: Box::new(index.into()),
            ty: self.ty,
        }
    }
}

/// A constant-memory array handle (module constant bank).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConstArray {
    /// Byte offset within the module constant bank.
    pub offset: u32,
    /// Element type.
    pub ty: Ty,
    /// Element count.
    pub len: u32,
}

impl ConstArray {
    /// Load element `index`.
    pub fn ld(&self, index: impl Into<Expr>) -> Expr {
        Expr::Load {
            space: Space::Const,
            base: Box::new(Expr::ImmI(self.offset as i64)),
            index: Box::new(index.into()),
            ty: self.ty,
        }
    }
}

/// A complete kernel definition in the DSL.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelDef {
    /// Kernel name.
    pub name: String,
    /// Parameter names and types (pointers are `U64`).
    pub params: Vec<(String, Ty)>,
    /// Variable types, indexed by [`Var::id`].
    pub var_tys: Vec<Ty>,
    /// Statically allocated shared memory in bytes.
    pub shared_bytes: u32,
    /// Packed constant-bank bytes referenced by [`ConstArray`] handles.
    pub const_data: Vec<u8>,
    /// Kernel body.
    pub body: Vec<Stmt>,
}

/// Incremental builder for [`KernelDef`] with closure-based structured
/// statements.
#[derive(Debug)]
pub struct DslKernel {
    name: String,
    params: Vec<(String, Ty)>,
    var_tys: Vec<Ty>,
    shared_bytes: u32,
    const_data: Vec<u8>,
    /// Statement sinks; innermost scope last.
    stack: Vec<Vec<Stmt>>,
}

impl DslKernel {
    /// Start a kernel named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        DslKernel {
            name: name.into(),
            params: Vec::new(),
            var_tys: Vec::new(),
            shared_bytes: 0,
            const_data: Vec::new(),
            stack: vec![Vec::new()],
        }
    }

    /// Declare a pointer parameter; returns the parameter expression.
    pub fn param_ptr(&mut self, name: impl Into<String>) -> Expr {
        self.param(name, Ty::U64)
    }

    /// Declare a scalar parameter of `ty`.
    pub fn param(&mut self, name: impl Into<String>, ty: Ty) -> Expr {
        self.params.push((name.into(), ty));
        Expr::Param(self.params.len() as u32 - 1)
    }

    /// Declare an uninitialised variable.
    pub fn var(&mut self, ty: Ty) -> Var {
        self.var_tys.push(ty);
        Var {
            id: self.var_tys.len() as u32 - 1,
            ty,
        }
    }

    /// Declare and initialise a variable.
    pub fn let_(&mut self, ty: Ty, value: impl Into<Expr>) -> Var {
        let v = self.var(ty);
        self.push(Stmt::Let(v, value.into()));
        v
    }

    /// Reassign a variable.
    pub fn assign(&mut self, v: Var, value: impl Into<Expr>) {
        self.push(Stmt::Assign(v, value.into()));
    }

    /// Allocate a shared-memory array (16-byte aligned).
    pub fn shared_array(&mut self, ty: Ty, len: u32) -> SharedArray {
        let offset = (self.shared_bytes + 15) & !15;
        self.shared_bytes = offset + len * ty.size_bytes();
        SharedArray { offset, ty, len }
    }

    /// Embed an f32 constant array in the module's constant bank.
    pub fn const_array_f32(&mut self, values: &[f32]) -> ConstArray {
        let offset = (self.const_data.len() as u32 + 15) & !15;
        self.const_data.resize(offset as usize, 0);
        for v in values {
            self.const_data.extend_from_slice(&v.to_le_bytes());
        }
        ConstArray {
            offset,
            ty: Ty::F32,
            len: values.len() as u32,
        }
    }

    /// Embed an i32 constant array in the module's constant bank.
    pub fn const_array_i32(&mut self, values: &[i32]) -> ConstArray {
        let offset = (self.const_data.len() as u32 + 15) & !15;
        self.const_data.resize(offset as usize, 0);
        for v in values {
            self.const_data.extend_from_slice(&v.to_le_bytes());
        }
        ConstArray {
            offset,
            ty: Ty::S32,
            len: values.len() as u32,
        }
    }

    /// Typed element store.
    pub fn store(
        &mut self,
        space: Space,
        base: impl Into<Expr>,
        index: impl Into<Expr>,
        ty: Ty,
        value: impl Into<Expr>,
    ) {
        self.push(Stmt::Store {
            space,
            base: base.into(),
            index: index.into(),
            ty,
            value: value.into(),
        });
    }

    /// Store into a shared array.
    pub fn st_shared(&mut self, arr: SharedArray, index: impl Into<Expr>, value: impl Into<Expr>) {
        self.store(
            Space::Shared,
            Expr::ImmI(arr.offset as i64),
            index,
            arr.ty,
            value,
        );
    }

    /// Store into global memory.
    pub fn st_global(
        &mut self,
        base: impl Into<Expr>,
        index: impl Into<Expr>,
        ty: Ty,
        value: impl Into<Expr>,
    ) {
        self.store(Space::Global, base, index, ty, value);
    }

    /// Structured `if`.
    pub fn if_(&mut self, cond: impl Into<Expr>, f: impl FnOnce(&mut Self)) {
        self.stack.push(Vec::new());
        f(self);
        let then_ = self.stack.pop().expect("scope stack");
        self.push(Stmt::If {
            cond: cond.into(),
            then_,
            else_: Vec::new(),
        });
    }

    /// Structured `if`/`else`.
    pub fn if_else(
        &mut self,
        cond: impl Into<Expr>,
        f: impl FnOnce(&mut Self),
        g: impl FnOnce(&mut Self),
    ) {
        self.stack.push(Vec::new());
        f(self);
        let then_ = self.stack.pop().expect("scope stack");
        self.stack.push(Vec::new());
        g(self);
        let else_ = self.stack.pop().expect("scope stack");
        self.push(Stmt::If {
            cond: cond.into(),
            then_,
            else_,
        });
    }

    /// Counted loop `for (i = start; i < end; i += step)` with an unroll
    /// pragma; the closure receives the induction variable expression.
    pub fn for_(
        &mut self,
        start: impl Into<Expr>,
        end: impl Into<Expr>,
        step: i64,
        unroll: Unroll,
        f: impl FnOnce(&mut Self, Expr),
    ) {
        assert!(step != 0, "zero loop step");
        let var = self.var(Ty::S32);
        self.stack.push(Vec::new());
        f(self, Expr::Var(var));
        let body = self.stack.pop().expect("scope stack");
        self.push(Stmt::For {
            var,
            start: start.into(),
            end: end.into(),
            step,
            unroll,
            body,
        });
    }

    /// Condition-tested loop.
    pub fn while_(&mut self, cond: impl Into<Expr>, f: impl FnOnce(&mut Self)) {
        self.stack.push(Vec::new());
        f(self);
        let body = self.stack.pop().expect("scope stack");
        self.push(Stmt::While {
            cond: cond.into(),
            body,
        });
    }

    /// Block-wide barrier.
    pub fn barrier(&mut self) {
        self.push(Stmt::Barrier);
    }

    /// Atomic read-modify-write; returns a variable holding the old value.
    pub fn atomic(
        &mut self,
        op: AtomOp,
        space: Space,
        base: impl Into<Expr>,
        index: impl Into<Expr>,
        ty: Ty,
        value: impl Into<Expr>,
    ) -> Var {
        let old = self.var(ty);
        self.push(Stmt::AtomicRmw {
            op,
            space,
            base: base.into(),
            index: index.into(),
            ty,
            value: value.into(),
            old: Some(old),
        });
        old
    }

    fn push(&mut self, s: Stmt) {
        self.stack.last_mut().expect("scope stack").push(s);
    }

    /// Finish the kernel definition.
    ///
    /// # Panics
    /// Panics if a structured scope was left open (builder misuse).
    pub fn finish(mut self) -> KernelDef {
        assert_eq!(self.stack.len(), 1, "unclosed scope in kernel builder");
        KernelDef {
            name: self.name,
            params: self.params,
            var_tys: self.var_tys,
            shared_bytes: self.shared_bytes,
            const_data: self.const_data,
            body: self.stack.pop().unwrap(),
        }
    }
}

// ----------------------------------------------------------------------
// Expression construction sugar
// ----------------------------------------------------------------------

impl From<Var> for Expr {
    fn from(v: Var) -> Expr {
        Expr::Var(v)
    }
}

impl From<i32> for Expr {
    fn from(v: i32) -> Expr {
        Expr::ImmI(v as i64)
    }
}

impl From<i64> for Expr {
    fn from(v: i64) -> Expr {
        Expr::ImmI(v)
    }
}

impl From<u32> for Expr {
    fn from(v: u32) -> Expr {
        Expr::ImmI(v as i64)
    }
}

impl From<f32> for Expr {
    fn from(v: f32) -> Expr {
        Expr::ImmF(v as f64)
    }
}

impl From<f64> for Expr {
    fn from(v: f64) -> Expr {
        Expr::ImmF(v)
    }
}

impl From<Builtin> for Expr {
    fn from(b: Builtin) -> Expr {
        Expr::Special(b)
    }
}

macro_rules! impl_bin_op {
    ($trait:ident, $method:ident, $op:expr) => {
        impl<R: Into<Expr>> ops::$trait<R> for Expr {
            type Output = Expr;
            fn $method(self, rhs: R) -> Expr {
                Expr::Bin($op, Box::new(self), Box::new(rhs.into()))
            }
        }
    };
}

impl_bin_op!(Add, add, Op2::Add);
impl_bin_op!(Sub, sub, Op2::Sub);
impl_bin_op!(Mul, mul, Op2::Mul);
impl_bin_op!(Div, div, Op2::Div);
impl_bin_op!(Rem, rem, Op2::Rem);
impl_bin_op!(BitAnd, bitand, Op2::And);
impl_bin_op!(BitOr, bitor, Op2::Or);
impl_bin_op!(BitXor, bitxor, Op2::Xor);
impl_bin_op!(Shl, shl, Op2::Shl);
impl_bin_op!(Shr, shr, Op2::Shr);

impl Expr {
    /// `min(self, rhs)`.
    pub fn min_(self, rhs: impl Into<Expr>) -> Expr {
        Expr::Bin(Op2::Min, Box::new(self), Box::new(rhs.into()))
    }

    /// `max(self, rhs)`.
    pub fn max_(self, rhs: impl Into<Expr>) -> Expr {
        Expr::Bin(Op2::Max, Box::new(self), Box::new(rhs.into()))
    }

    /// Comparison producing a predicate.
    pub fn cmp(self, op: CmpOp, rhs: impl Into<Expr>) -> Expr {
        Expr::Cmp(op, Box::new(self), Box::new(rhs.into()))
    }

    /// `self == rhs`.
    pub fn eq_(self, rhs: impl Into<Expr>) -> Expr {
        self.cmp(CmpOp::Eq, rhs)
    }

    /// `self != rhs`.
    pub fn ne_(self, rhs: impl Into<Expr>) -> Expr {
        self.cmp(CmpOp::Ne, rhs)
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: impl Into<Expr>) -> Expr {
        self.cmp(CmpOp::Lt, rhs)
    }

    /// `self <= rhs`.
    pub fn le(self, rhs: impl Into<Expr>) -> Expr {
        self.cmp(CmpOp::Le, rhs)
    }

    /// `self > rhs`.
    pub fn gt(self, rhs: impl Into<Expr>) -> Expr {
        self.cmp(CmpOp::Gt, rhs)
    }

    /// `self >= rhs`.
    pub fn ge(self, rhs: impl Into<Expr>) -> Expr {
        self.cmp(CmpOp::Ge, rhs)
    }

    /// Unary negation. Named like the DSL's other builders rather than
    /// going through `std::ops::Neg`.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Expr {
        Expr::Un(Op1::Neg, Box::new(self))
    }

    /// Absolute value.
    pub fn abs(self) -> Expr {
        Expr::Un(Op1::Abs, Box::new(self))
    }

    /// Square root.
    pub fn sqrt(self) -> Expr {
        Expr::Un(Op1::Sqrt, Box::new(self))
    }

    /// Reciprocal square root.
    pub fn rsqrt(self) -> Expr {
        Expr::Un(Op1::Rsqrt, Box::new(self))
    }

    /// Reciprocal.
    pub fn rcp(self) -> Expr {
        Expr::Un(Op1::Rcp, Box::new(self))
    }

    /// Sine.
    pub fn sin(self) -> Expr {
        Expr::Un(Op1::Sin, Box::new(self))
    }

    /// Cosine.
    pub fn cos(self) -> Expr {
        Expr::Un(Op1::Cos, Box::new(self))
    }

    /// Conversion to `ty`.
    pub fn cast(self, ty: Ty) -> Expr {
        Expr::Cast(ty, Box::new(self))
    }
}

/// `cond ? a : b`.
pub fn select(cond: impl Into<Expr>, a: impl Into<Expr>, b: impl Into<Expr>) -> Expr {
    Expr::Select(
        Box::new(cond.into()),
        Box::new(a.into()),
        Box::new(b.into()),
    )
}

/// Global element load.
pub fn ld_global(base: impl Into<Expr>, index: impl Into<Expr>, ty: Ty) -> Expr {
    Expr::Load {
        space: Space::Global,
        base: Box::new(base.into()),
        index: Box::new(index.into()),
        ty,
    }
}

/// Texture fetch.
pub fn tex1d(slot: u8, index: impl Into<Expr>, ty: Ty) -> Expr {
    Expr::TexFetch {
        slot,
        index: Box::new(index.into()),
        ty,
    }
}

/// `blockIdx.x * blockDim.x + threadIdx.x` (= `get_global_id(0)`).
pub fn global_id_x() -> Expr {
    Expr::from(Builtin::CtaidX) * Builtin::NtidX + Builtin::TidX
}

/// `blockIdx.y * blockDim.y + threadIdx.y` (= `get_global_id(1)`).
pub fn global_id_y() -> Expr {
    Expr::from(Builtin::CtaidY) * Builtin::NtidY + Builtin::TidY
}

/// Total work-items in dimension 0 (`get_global_size(0)`).
pub fn global_size_x() -> Expr {
    Expr::from(Builtin::NctaidX) * Builtin::NtidX
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operator_sugar_builds_trees() {
        let e = (Expr::from(1i32) + 2i32) * 3i32;
        match e {
            Expr::Bin(Op2::Mul, l, r) => {
                assert!(matches!(*l, Expr::Bin(Op2::Add, _, _)));
                assert_eq!(*r, Expr::ImmI(3));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn builder_scopes_nest() {
        let mut k = DslKernel::new("t");
        let p = k.param_ptr("out");
        let i = k.let_(Ty::S32, global_id_x());
        k.if_(Expr::from(i).lt(100i32), |k| {
            k.for_(0i32, 4i32, 1, Unroll::Full, |k, j| {
                k.st_global(p.clone(), Expr::from(i) + j, Ty::S32, 7i32);
            });
        });
        let def = k.finish();
        assert_eq!(def.body.len(), 2); // let + if
        match &def.body[1] {
            Stmt::If { then_, .. } => assert!(matches!(then_[0], Stmt::For { .. })),
            _ => panic!(),
        }
    }

    #[test]
    #[should_panic(expected = "unclosed scope")]
    fn unclosed_scope_panics() {
        let mut k = DslKernel::new("t");
        k.stack.push(Vec::new());
        let _ = k.finish();
    }

    #[test]
    fn shared_and_const_arrays_are_aligned() {
        let mut k = DslKernel::new("t");
        let a = k.shared_array(Ty::F32, 5); // 20 bytes
        let b = k.shared_array(Ty::F32, 4);
        assert_eq!(a.offset, 0);
        assert_eq!(b.offset, 32);
        let c = k.const_array_f32(&[1.0; 3]);
        let d = k.const_array_i32(&[1, 2]);
        assert_eq!(c.offset, 0);
        assert_eq!(d.offset, 16);
        let def = k.finish();
        assert_eq!(def.shared_bytes, 48);
        assert_eq!(def.const_data.len(), 24);
    }

    #[test]
    fn atomic_returns_old_value_var() {
        let mut k = DslKernel::new("t");
        let p = k.param_ptr("ctr");
        let old = k.atomic(AtomOp::Add, Space::Global, p, 0i32, Ty::U32, 1i32);
        assert_eq!(old.ty, Ty::U32);
        let def = k.finish();
        assert!(matches!(def.body[0], Stmt::AtomicRmw { old: Some(_), .. }));
    }
}
