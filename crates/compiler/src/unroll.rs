//! Loop unrolling (the `#pragma unroll` of the paper's FDTD study).
//!
//! Both front-ends honour the pragmas in the kernel source — what differs is
//! what their downstream passes make of the unrolled code (the CUDA
//! front-end's aggressive folding collapses it; the OpenCL front-end's
//! per-copy index arithmetic survives and inflates register pressure, the
//! paper's Fig. 7 effect).

use crate::ast::{Expr, Stmt, Unroll, Var};
use std::collections::HashSet;

/// Options of the unroll pass that differ between front-ends.
#[derive(Clone, Debug, Default)]
pub struct UnrollOpts {
    /// Software-pipeline partially-unrolled loops: hoist the copies' loads
    /// from read-only global buffers to the top of the unrolled body. This
    /// models the early OpenCL compilers' aggressive unroll scheduling —
    /// it buys latency overlap at the cost of `N x loads` live registers,
    /// which is what collapses the paper's Fig. 7 `OpenCL_{a,b}` FDTD
    /// configuration.
    pub hoist_unrolled_loads: bool,
    /// Kernel parameters that are ever used as a store/atomic base; loads
    /// from these are never hoisted (they may alias the stores).
    pub written_params: HashSet<u32>,
    /// Demote loop-carried scalars of *large* unrolled bodies to per-thread
    /// local memory. Models the early OpenCL compilers giving up on
    /// register allocation for oversized unrolled loops — on GT200 local
    /// memory is uncached DRAM, so this is what produces the paper's
    /// Fig. 7 collapse of `OpenCL_{a,b}` FDTD.
    pub demote_carried_vars: bool,
    /// Statement-count threshold above which demotion kicks in.
    pub demote_threshold: usize,
}

impl UnrollOpts {
    /// Default demotion threshold (statements in the unrolled body).
    pub const DEFAULT_DEMOTE_THRESHOLD: usize = 300;
}

/// Apply unroll pragmas throughout a statement list. Fresh variables needed
/// by partial unrolling are allocated from `var_tys`.
pub fn unroll_stmts(stmts: &[Stmt], var_tys: &mut Vec<gpucmp_ptx::Ty>) -> Vec<Stmt> {
    let mut local = 0;
    unroll_stmts_with(stmts, var_tys, &UnrollOpts::default(), &mut local)
}

/// [`unroll_stmts`] with front-end-specific options. `local_bytes` is the
/// per-thread local-memory allocator (grown by carried-var demotion).
pub fn unroll_stmts_with(
    stmts: &[Stmt],
    var_tys: &mut Vec<gpucmp_ptx::Ty>,
    opts: &UnrollOpts,
    local_bytes: &mut u32,
) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        match s {
            Stmt::For {
                var,
                start,
                end,
                step,
                unroll,
                body,
            } => {
                let body = unroll_stmts_with(body, var_tys, opts, local_bytes);
                match unroll {
                    Unroll::None => out.push(Stmt::For {
                        var: *var,
                        start: start.clone(),
                        end: end.clone(),
                        step: *step,
                        unroll: Unroll::None,
                        body,
                    }),
                    Unroll::Full => match (const_of(start), const_of(end)) {
                        (Some(s0), Some(e0)) => {
                            full_unroll(&mut out, *var, s0, e0, *step, &body);
                        }
                        _ => {
                            // Non-constant bounds: the pragma is ignored
                            // (both real compilers warn and keep the loop).
                            out.push(Stmt::For {
                                var: *var,
                                start: start.clone(),
                                end: end.clone(),
                                step: *step,
                                unroll: Unroll::None,
                                body,
                            });
                        }
                    },
                    Unroll::By(k) => {
                        let k = (*k).max(1);
                        if let (Some(s0), Some(e0)) = (const_of(start), const_of(end)) {
                            // Constant trip count: full unroll if the factor
                            // covers it, else strip-mine statically.
                            let trip = trip_count(s0, e0, *step);
                            if trip <= k as i64 {
                                full_unroll(&mut out, *var, s0, e0, *step, &body);
                                continue;
                            }
                        }
                        if *step < 0 {
                            // Strip-mining assumes an upward loop; for a
                            // downward one the pragma is ignored (like the
                            // non-constant Full case above).
                            out.push(Stmt::For {
                                var: *var,
                                start: start.clone(),
                                end: end.clone(),
                                step: *step,
                                unroll: Unroll::None,
                                body,
                            });
                            continue;
                        }
                        partial_unroll(
                            &mut out,
                            *var,
                            start,
                            end,
                            *step,
                            k,
                            &body,
                            var_tys,
                            opts,
                            local_bytes,
                        );
                    }
                }
            }
            Stmt::If { cond, then_, else_ } => out.push(Stmt::If {
                cond: cond.clone(),
                then_: unroll_stmts_with(then_, var_tys, opts, local_bytes),
                else_: unroll_stmts_with(else_, var_tys, opts, local_bytes),
            }),
            Stmt::While { cond, body } => out.push(Stmt::While {
                cond: cond.clone(),
                body: unroll_stmts_with(body, var_tys, opts, local_bytes),
            }),
            other => out.push(other.clone()),
        }
    }
    out
}

/// Trip count of `for (i = s0; i < e0; i += step)` (or `>` for negative
/// step).
fn trip_count(s0: i64, e0: i64, step: i64) -> i64 {
    if step > 0 {
        ((e0 - s0).max(0) + step - 1) / step
    } else {
        ((s0 - e0).max(0) + (-step) - 1) / (-step)
    }
}

fn full_unroll(out: &mut Vec<Stmt>, var: Var, s0: i64, e0: i64, step: i64, body: &[Stmt]) {
    let trip = trip_count(s0, e0, step);
    let mut i = s0;
    for _ in 0..trip {
        for s in body {
            out.push(subst_stmt(s, var, &Expr::ImmI(i)));
        }
        i += step;
    }
    // The induction variable keeps its final value (it may be read after
    // the loop).
    out.push(Stmt::Let(var, Expr::ImmI(i)));
}

/// Strip-mine a (possibly runtime-bound) loop by factor `k`:
///
/// ```text
/// for (i = start; i < main_end; i += k*step) { body(i) body(i+step) ... }
/// while (i < end) { body(i); i += step; }     // remainder
/// ```
#[allow(clippy::too_many_arguments)]
fn partial_unroll(
    out: &mut Vec<Stmt>,
    var: Var,
    start: &Expr,
    end: &Expr,
    step: i64,
    k: u32,
    body: &[Stmt],
    var_tys: &mut Vec<gpucmp_ptx::Ty>,
    opts: &UnrollOpts,
    local_bytes: &mut u32,
) {
    assert!(step > 0, "partial unroll requires a positive step");
    let k = k as i64;
    // main_end = end - (end - start) % (k*step)
    let chunk = k * step;
    let span = end.clone() - start.clone();
    let main_end_var = Var {
        id: var_tys.len() as u32,
        ty: gpucmp_ptx::Ty::S32,
    };
    var_tys.push(gpucmp_ptx::Ty::S32);
    out.push(Stmt::Let(
        main_end_var,
        end.clone() - (span % Expr::ImmI(chunk)),
    ));
    // Main unrolled loop.
    let mut main_body = Vec::with_capacity(body.len() * k as usize);
    for j in 0..k {
        let iv = if j == 0 {
            Expr::Var(var)
        } else {
            Expr::Var(var) + Expr::ImmI(j * step)
        };
        for s in body {
            main_body.push(subst_stmt(s, var, &iv));
        }
    }
    if opts.hoist_unrolled_loads {
        hoist_loads(&mut main_body, var_tys, opts);
    }
    let mut epilogue: Vec<Stmt> = Vec::new();
    if opts.demote_carried_vars && stmt_count(&main_body) > opts.demote_threshold {
        epilogue = demote_carried(&mut main_body, body, local_bytes);
    }
    out.push(Stmt::For {
        var,
        start: start.clone(),
        end: Expr::Var(main_end_var),
        step: chunk,
        unroll: Unroll::None,
        body: main_body,
    });
    out.extend(epilogue);
    // Remainder loop. The induction variable holds `main_end` after the
    // main loop (For lowering leaves it at its exit value).
    let mut rem_body: Vec<Stmt> = body.to_vec();
    rem_body.push(Stmt::Assign(var, Expr::Var(var) + Expr::ImmI(step)));
    out.push(Stmt::While {
        cond: Expr::Var(var).lt(end.clone()),
        body: rem_body,
    });
}

/// Recursive statement count.
fn stmt_count(stmts: &[Stmt]) -> usize {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::If { then_, else_, .. } => 1 + stmt_count(then_) + stmt_count(else_),
            Stmt::For { body, .. } | Stmt::While { body, .. } => 1 + stmt_count(body),
            _ => 1,
        })
        .sum()
}

/// Demote the loop-carried scalars of an oversized unrolled body to
/// per-thread local-memory slots: a prologue stores the incoming values,
/// every read/write in the body goes through `local` space, and the
/// returned epilogue (placed after the main loop) restores the variables
/// for the remainder loop and any post-loop uses.
///
/// "Loop-carried" = read before first written at the top level of the
/// *original* body (upward-exposed) and also written by it.
fn demote_carried(
    main_body: &mut Vec<Stmt>,
    original_body: &[Stmt],
    local_bytes: &mut u32,
) -> Vec<Stmt> {
    // upward-exposed reads at any depth, writes at any depth
    let mut written: HashSet<u32> = HashSet::new();
    let mut upward: HashSet<u32> = HashSet::new();
    fn note_reads(e: &Expr, written: &HashSet<u32>, upward: &mut HashSet<u32>) {
        match e {
            Expr::Var(v) if !written.contains(&v.id) => {
                upward.insert(v.id);
            }
            Expr::Un(_, a) | Expr::Cast(_, a) => note_reads(a, written, upward),
            Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => {
                note_reads(a, written, upward);
                note_reads(b, written, upward);
            }
            Expr::Select(c, a, b) => {
                note_reads(c, written, upward);
                note_reads(a, written, upward);
                note_reads(b, written, upward);
            }
            Expr::Load { base, index, .. } => {
                note_reads(base, written, upward);
                note_reads(index, written, upward);
            }
            Expr::TexFetch { index, .. } => note_reads(index, written, upward),
            _ => {}
        }
    }
    fn scan(stmts: &[Stmt], written: &mut HashSet<u32>, upward: &mut HashSet<u32>) {
        for s in stmts {
            match s {
                Stmt::Let(v, e) | Stmt::Assign(v, e) => {
                    note_reads(e, written, upward);
                    written.insert(v.id);
                }
                Stmt::Store {
                    base, index, value, ..
                } => {
                    note_reads(base, written, upward);
                    note_reads(index, written, upward);
                    note_reads(value, written, upward);
                }
                Stmt::If { cond, then_, else_ } => {
                    note_reads(cond, written, upward);
                    scan(then_, written, upward);
                    scan(else_, written, upward);
                }
                Stmt::For {
                    start,
                    end,
                    body,
                    var,
                    ..
                } => {
                    note_reads(start, written, upward);
                    note_reads(end, written, upward);
                    written.insert(var.id);
                    scan(body, written, upward);
                }
                Stmt::While { cond, body } => {
                    note_reads(cond, written, upward);
                    scan(body, written, upward);
                }
                Stmt::Barrier => {}
                Stmt::AtomicRmw {
                    base,
                    index,
                    value,
                    old,
                    ..
                } => {
                    note_reads(base, written, upward);
                    note_reads(index, written, upward);
                    note_reads(value, written, upward);
                    if let Some(v) = old {
                        written.insert(v.id);
                    }
                }
            }
        }
    }
    scan(original_body, &mut written, &mut upward);
    let mut carried: Vec<Var> = Vec::new();
    collect_carried(original_body, &written, &upward, &mut carried);
    if carried.is_empty() {
        return Vec::new();
    }
    // assign slots
    let mut slot_of: Vec<(Var, i64)> = Vec::new();
    for v in &carried {
        let sz = v.ty.size_bytes().max(4);
        let off = (*local_bytes).next_multiple_of(sz) as i64;
        *local_bytes = off as u32 + sz;
        slot_of.push((*v, off));
    }
    // rewrite body
    let rewritten: Vec<Stmt> = main_body.iter().map(|s| demote_stmt(s, &slot_of)).collect();
    let mut new_body: Vec<Stmt> = Vec::with_capacity(rewritten.len() + carried.len());
    for (v, off) in &slot_of {
        new_body.push(Stmt::Store {
            space: gpucmp_ptx::Space::Local,
            base: Expr::ImmI(*off),
            index: Expr::ImmI(0),
            ty: v.ty,
            value: Expr::Var(*v),
        });
    }
    new_body.extend(rewritten);
    *main_body = new_body;
    // epilogue restores registers
    slot_of
        .iter()
        .map(|(v, off)| {
            Stmt::Assign(
                *v,
                Expr::Load {
                    space: gpucmp_ptx::Space::Local,
                    base: Box::new(Expr::ImmI(*off)),
                    index: Box::new(Expr::ImmI(0)),
                    ty: v.ty,
                },
            )
        })
        .collect()
}

/// Deterministic-order collection of carried variables.
fn collect_carried(
    stmts: &[Stmt],
    written: &HashSet<u32>,
    upward: &HashSet<u32>,
    out: &mut Vec<Var>,
) {
    for s in stmts {
        if let Stmt::Let(v, _) | Stmt::Assign(v, _) = s {
            if written.contains(&v.id)
                && upward.contains(&v.id)
                && !out.iter().any(|c| c.id == v.id)
            {
                out.push(*v);
            }
        }
        match s {
            Stmt::If { then_, else_, .. } => {
                collect_carried(then_, written, upward, out);
                collect_carried(else_, written, upward, out);
            }
            Stmt::For { body, .. } | Stmt::While { body, .. } => {
                collect_carried(body, written, upward, out)
            }
            _ => {}
        }
    }
}

fn demote_expr(e: &Expr, slots: &[(Var, i64)]) -> Expr {
    match e {
        Expr::Var(v) => {
            if let Some((cv, off)) = slots.iter().find(|(cv, _)| cv.id == v.id) {
                Expr::Load {
                    space: gpucmp_ptx::Space::Local,
                    base: Box::new(Expr::ImmI(*off)),
                    index: Box::new(Expr::ImmI(0)),
                    ty: cv.ty,
                }
            } else {
                e.clone()
            }
        }
        Expr::ImmI(_) | Expr::ImmF(_) | Expr::Param(_) | Expr::Special(_) => e.clone(),
        Expr::Un(op, a) => Expr::Un(*op, Box::new(demote_expr(a, slots))),
        Expr::Cast(t, a) => Expr::Cast(*t, Box::new(demote_expr(a, slots))),
        Expr::Bin(op, a, b) => Expr::Bin(
            *op,
            Box::new(demote_expr(a, slots)),
            Box::new(demote_expr(b, slots)),
        ),
        Expr::Cmp(op, a, b) => Expr::Cmp(
            *op,
            Box::new(demote_expr(a, slots)),
            Box::new(demote_expr(b, slots)),
        ),
        Expr::Select(c, a, b) => Expr::Select(
            Box::new(demote_expr(c, slots)),
            Box::new(demote_expr(a, slots)),
            Box::new(demote_expr(b, slots)),
        ),
        Expr::Load {
            space,
            base,
            index,
            ty,
        } => Expr::Load {
            space: *space,
            base: Box::new(demote_expr(base, slots)),
            index: Box::new(demote_expr(index, slots)),
            ty: *ty,
        },
        Expr::TexFetch { slot, index, ty } => Expr::TexFetch {
            slot: *slot,
            index: Box::new(demote_expr(index, slots)),
            ty: *ty,
        },
    }
}

fn demote_stmt(s: &Stmt, slots: &[(Var, i64)]) -> Stmt {
    let slot_for = |v: &Var| slots.iter().find(|(cv, _)| cv.id == v.id).map(|(_, o)| *o);
    match s {
        Stmt::Let(v, e) | Stmt::Assign(v, e) => {
            let e = demote_expr(e, slots);
            match slot_for(v) {
                Some(off) => Stmt::Store {
                    space: gpucmp_ptx::Space::Local,
                    base: Expr::ImmI(off),
                    index: Expr::ImmI(0),
                    ty: v.ty,
                    value: e,
                },
                None => Stmt::Assign(*v, e),
            }
        }
        Stmt::Store {
            space,
            base,
            index,
            ty,
            value,
        } => Stmt::Store {
            space: *space,
            base: demote_expr(base, slots),
            index: demote_expr(index, slots),
            ty: *ty,
            value: demote_expr(value, slots),
        },
        Stmt::If { cond, then_, else_ } => Stmt::If {
            cond: demote_expr(cond, slots),
            then_: then_.iter().map(|x| demote_stmt(x, slots)).collect(),
            else_: else_.iter().map(|x| demote_stmt(x, slots)).collect(),
        },
        Stmt::For {
            var,
            start,
            end,
            step,
            unroll,
            body,
        } => Stmt::For {
            var: *var,
            start: demote_expr(start, slots),
            end: demote_expr(end, slots),
            step: *step,
            unroll: *unroll,
            body: body.iter().map(|x| demote_stmt(x, slots)).collect(),
        },
        Stmt::While { cond, body } => Stmt::While {
            cond: demote_expr(cond, slots),
            body: body.iter().map(|x| demote_stmt(x, slots)).collect(),
        },
        Stmt::Barrier => Stmt::Barrier,
        Stmt::AtomicRmw {
            op,
            space,
            base,
            index,
            ty,
            value,
            old,
        } => Stmt::AtomicRmw {
            op: *op,
            space: *space,
            base: demote_expr(base, slots),
            index: demote_expr(index, slots),
            ty: *ty,
            value: demote_expr(value, slots),
            old: *old,
        },
    }
}

/// Software-pipelining hoist: pull loads from read-only global buffers out
/// of the top-level statements of an unrolled body to the body's start.
/// Only loads whose index expressions do not read variables *defined inside
/// the body* are moved (their operands are loop-invariant or the induction
/// variable, both available at the body top).
fn hoist_loads(body: &mut Vec<Stmt>, var_tys: &mut Vec<gpucmp_ptx::Ty>, opts: &UnrollOpts) {
    // Variables defined anywhere in the body (incl. nested blocks).
    let mut defined: HashSet<u32> = HashSet::new();
    fn collect_defs(stmts: &[Stmt], defined: &mut HashSet<u32>) {
        for s in stmts {
            match s {
                Stmt::Let(v, _) | Stmt::Assign(v, _) => {
                    defined.insert(v.id);
                }
                Stmt::AtomicRmw { old: Some(v), .. } => {
                    defined.insert(v.id);
                }
                Stmt::If { then_, else_, .. } => {
                    collect_defs(then_, defined);
                    collect_defs(else_, defined);
                }
                Stmt::For { var, body, .. } => {
                    defined.insert(var.id);
                    collect_defs(body, defined);
                }
                Stmt::While { body, .. } => collect_defs(body, defined),
                _ => {}
            }
        }
    }
    collect_defs(body, &mut defined);

    let mut hoisted: Vec<Stmt> = Vec::new();
    for s in body.iter_mut() {
        // top-level statements only; guarded/nested loads stay put
        match s {
            Stmt::Let(_, e) | Stmt::Assign(_, e) => {
                hoist_in_expr(e, &defined, var_tys, opts, &mut hoisted)
            }
            Stmt::Store {
                base, index, value, ..
            } => {
                hoist_in_expr(base, &defined, var_tys, opts, &mut hoisted);
                hoist_in_expr(index, &defined, var_tys, opts, &mut hoisted);
                hoist_in_expr(value, &defined, var_tys, opts, &mut hoisted);
            }
            _ => {}
        }
    }
    if !hoisted.is_empty() {
        body.splice(0..0, hoisted);
    }
}

fn hoist_in_expr(
    e: &mut Expr,
    defined: &HashSet<u32>,
    var_tys: &mut Vec<gpucmp_ptx::Ty>,
    opts: &UnrollOpts,
    hoisted: &mut Vec<Stmt>,
) {
    // bottom-up
    match e {
        Expr::Un(_, a) | Expr::Cast(_, a) => hoist_in_expr(a, defined, var_tys, opts, hoisted),
        Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => {
            hoist_in_expr(a, defined, var_tys, opts, hoisted);
            hoist_in_expr(b, defined, var_tys, opts, hoisted);
        }
        Expr::Select(c, a, b) => {
            hoist_in_expr(c, defined, var_tys, opts, hoisted);
            hoist_in_expr(a, defined, var_tys, opts, hoisted);
            hoist_in_expr(b, defined, var_tys, opts, hoisted);
        }
        Expr::TexFetch { index, .. } => hoist_in_expr(index, defined, var_tys, opts, hoisted),
        Expr::Load {
            space,
            base,
            index,
            ty,
        } => {
            hoist_in_expr(index, defined, var_tys, opts, hoisted);
            let read_only_param = match &**base {
                Expr::Param(p) => !opts.written_params.contains(p),
                _ => false,
            };
            if *space == gpucmp_ptx::Space::Global
                && read_only_param
                && !expr_reads_defined(index, defined)
            {
                let v = Var {
                    id: var_tys.len() as u32,
                    ty: *ty,
                };
                var_tys.push(*ty);
                let load = Expr::Load {
                    space: *space,
                    base: base.clone(),
                    index: index.clone(),
                    ty: *ty,
                };
                hoisted.push(Stmt::Let(v, load));
                *e = Expr::Var(v);
            }
        }
        _ => {}
    }
}

fn expr_reads_defined(e: &Expr, defined: &HashSet<u32>) -> bool {
    match e {
        Expr::Var(v) => defined.contains(&v.id),
        Expr::Un(_, a) | Expr::Cast(_, a) => expr_reads_defined(a, defined),
        Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => {
            expr_reads_defined(a, defined) || expr_reads_defined(b, defined)
        }
        Expr::Select(c, a, b) => {
            expr_reads_defined(c, defined)
                || expr_reads_defined(a, defined)
                || expr_reads_defined(b, defined)
        }
        Expr::Load { base, index, .. } => {
            expr_reads_defined(base, defined) || expr_reads_defined(index, defined)
        }
        Expr::TexFetch { index, .. } => expr_reads_defined(index, defined),
        _ => false,
    }
}

fn const_of(e: &Expr) -> Option<i64> {
    match e {
        Expr::ImmI(v) => Some(*v),
        _ => None,
    }
}

/// Substitute `var` with `with` in an expression.
pub fn subst_expr(e: &Expr, var: Var, with: &Expr) -> Expr {
    match e {
        Expr::Var(v) if v.id == var.id => with.clone(),
        Expr::ImmI(_) | Expr::ImmF(_) | Expr::Var(_) | Expr::Param(_) | Expr::Special(_) => {
            e.clone()
        }
        Expr::Un(op, a) => Expr::Un(*op, Box::new(subst_expr(a, var, with))),
        Expr::Bin(op, a, b) => Expr::Bin(
            *op,
            Box::new(subst_expr(a, var, with)),
            Box::new(subst_expr(b, var, with)),
        ),
        Expr::Cmp(op, a, b) => Expr::Cmp(
            *op,
            Box::new(subst_expr(a, var, with)),
            Box::new(subst_expr(b, var, with)),
        ),
        Expr::Select(c, a, b) => Expr::Select(
            Box::new(subst_expr(c, var, with)),
            Box::new(subst_expr(a, var, with)),
            Box::new(subst_expr(b, var, with)),
        ),
        Expr::Cast(ty, a) => Expr::Cast(*ty, Box::new(subst_expr(a, var, with))),
        Expr::Load {
            space,
            base,
            index,
            ty,
        } => Expr::Load {
            space: *space,
            base: Box::new(subst_expr(base, var, with)),
            index: Box::new(subst_expr(index, var, with)),
            ty: *ty,
        },
        Expr::TexFetch { slot, index, ty } => Expr::TexFetch {
            slot: *slot,
            index: Box::new(subst_expr(index, var, with)),
            ty: *ty,
        },
    }
}

/// Substitute `var` with `with` in a statement (including nested bodies).
/// Writes to `var` inside the body would invalidate the substitution; the
/// DSL's `for_` owns its induction variable, so no body ever assigns it.
pub fn subst_stmt(s: &Stmt, var: Var, with: &Expr) -> Stmt {
    match s {
        Stmt::Let(v, e) => {
            debug_assert_ne!(v.id, var.id, "loop body writes its induction variable");
            Stmt::Let(*v, subst_expr(e, var, with))
        }
        Stmt::Assign(v, e) => {
            debug_assert_ne!(v.id, var.id, "loop body writes its induction variable");
            Stmt::Assign(*v, subst_expr(e, var, with))
        }
        Stmt::Store {
            space,
            base,
            index,
            ty,
            value,
        } => Stmt::Store {
            space: *space,
            base: subst_expr(base, var, with),
            index: subst_expr(index, var, with),
            ty: *ty,
            value: subst_expr(value, var, with),
        },
        Stmt::If { cond, then_, else_ } => Stmt::If {
            cond: subst_expr(cond, var, with),
            then_: then_.iter().map(|s| subst_stmt(s, var, with)).collect(),
            else_: else_.iter().map(|s| subst_stmt(s, var, with)).collect(),
        },
        Stmt::For {
            var: v,
            start,
            end,
            step,
            unroll,
            body,
        } => Stmt::For {
            var: *v,
            start: subst_expr(start, var, with),
            end: subst_expr(end, var, with),
            step: *step,
            unroll: *unroll,
            body: body.iter().map(|s| subst_stmt(s, var, with)).collect(),
        },
        Stmt::While { cond, body } => Stmt::While {
            cond: subst_expr(cond, var, with),
            body: body.iter().map(|s| subst_stmt(s, var, with)).collect(),
        },
        Stmt::Barrier => Stmt::Barrier,
        Stmt::AtomicRmw {
            op,
            space,
            base,
            index,
            ty,
            value,
            old,
        } => Stmt::AtomicRmw {
            op: *op,
            space: *space,
            base: subst_expr(base, var, with),
            index: subst_expr(index, var, with),
            ty: *ty,
            value: subst_expr(value, var, with),
            old: *old,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{DslKernel, Unroll};
    use gpucmp_ptx::{Space, Ty};

    fn loop_kernel(unroll: Unroll, end: i64) -> (Vec<Stmt>, Vec<Ty>) {
        let mut k = DslKernel::new("t");
        let out = k.param_ptr("out");
        k.for_(0i64, end, 1, unroll, |k, i| {
            k.st_global(out.clone(), i, Ty::S32, 1i32);
        });
        let def = k.finish();
        (def.body, def.var_tys)
    }

    #[test]
    fn full_unroll_expands_constant_trip() {
        let (body, mut tys) = loop_kernel(Unroll::Full, 4);
        let u = unroll_stmts(&body, &mut tys);
        // 4 stores + final induction assignment, no For left
        let stores = u.iter().filter(|s| matches!(s, Stmt::Store { .. })).count();
        assert_eq!(stores, 4);
        assert!(!u.iter().any(|s| matches!(s, Stmt::For { .. })));
        // indices are substituted constants
        match &u[1] {
            Stmt::Store { index, .. } => assert_eq!(*index, Expr::ImmI(1)),
            _ => panic!(),
        }
    }

    #[test]
    fn unroll_none_keeps_loop() {
        let (body, mut tys) = loop_kernel(Unroll::None, 4);
        let u = unroll_stmts(&body, &mut tys);
        assert!(u.iter().any(|s| matches!(s, Stmt::For { .. })));
    }

    #[test]
    fn by_factor_covers_small_constant_loop() {
        let (body, mut tys) = loop_kernel(Unroll::By(8), 4);
        let u = unroll_stmts(&body, &mut tys);
        assert!(!u.iter().any(|s| matches!(s, Stmt::For { .. })));
    }

    #[test]
    fn partial_unroll_emits_main_and_remainder() {
        let mut k = DslKernel::new("t");
        let out = k.param_ptr("out");
        let n = k.param("n", Ty::S32);
        k.for_(0i64, n, 1, Unroll::By(4), |k, i| {
            k.st_global(out.clone(), i, Ty::S32, 1i32);
        });
        let def = k.finish();
        let mut tys = def.var_tys.clone();
        let u = unroll_stmts(&def.body, &mut tys);
        // let main_end; For (unrolled x4); While remainder
        assert!(matches!(u[0], Stmt::Let(..)));
        match &u[1] {
            Stmt::For { step, body, .. } => {
                assert_eq!(*step, 4);
                assert_eq!(
                    body.iter()
                        .filter(|s| matches!(s, Stmt::Store { .. }))
                        .count(),
                    4
                );
            }
            other => panic!("expected main loop, got {other:?}"),
        }
        assert!(matches!(u[2], Stmt::While { .. }));
        assert_eq!(tys.len(), def.var_tys.len() + 1);
    }

    #[test]
    fn full_unroll_with_runtime_bound_is_ignored() {
        let mut k = DslKernel::new("t");
        let out = k.param_ptr("out");
        let n = k.param("n", Ty::S32);
        k.for_(0i64, n, 1, Unroll::Full, |k, i| {
            k.st_global(out.clone(), i, Ty::S32, 1i32);
        });
        let def = k.finish();
        let mut tys = def.var_tys.clone();
        let u = unroll_stmts(&def.body, &mut tys);
        assert!(matches!(
            u[0],
            Stmt::For {
                unroll: Unroll::None,
                ..
            }
        ));
    }

    #[test]
    fn negative_step_full_unroll() {
        let mut k = DslKernel::new("t");
        let out = k.param_ptr("out");
        k.for_(3i64, 0i64, -1, Unroll::Full, |k, i| {
            k.store(Space::Global, out.clone(), i, Ty::S32, 1i32);
        });
        let def = k.finish();
        let mut tys = def.var_tys.clone();
        let u = unroll_stmts(&def.body, &mut tys);
        let indices: Vec<_> = u
            .iter()
            .filter_map(|s| match s {
                Stmt::Store { index, .. } => Some(index.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(indices, vec![Expr::ImmI(3), Expr::ImmI(2), Expr::ImmI(1)]);
    }

    #[test]
    fn nested_loops_unroll_inner_first() {
        let mut k = DslKernel::new("t");
        let out = k.param_ptr("out");
        let n = k.param("n", Ty::S32);
        k.for_(0i64, n, 1, Unroll::None, |k, i| {
            k.for_(0i64, 2i64, 1, Unroll::Full, |k, j| {
                k.st_global(out.clone(), i.clone() * 2i32 + j, Ty::S32, 1i32);
            });
        });
        let def = k.finish();
        let mut tys = def.var_tys.clone();
        let u = unroll_stmts(&def.body, &mut tys);
        match &u[0] {
            Stmt::For { body, .. } => {
                let stores = body
                    .iter()
                    .filter(|s| matches!(s, Stmt::Store { .. }))
                    .count();
                assert_eq!(stores, 2);
            }
            _ => panic!(),
        }
    }
}
