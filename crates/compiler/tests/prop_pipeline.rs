//! Differential property test of the full compilation pipeline: a random
//! straight-line kernel compiled through BOTH front-ends (and random
//! register caps that force `ptxas` spilling) must produce identical
//! device memory contents when executed — the paper's ground truth that
//! the programming models are *functionally* equivalent.

use gpucmp_compiler::{compile, global_id_x, Api, DslKernel, Expr, KernelDef, Var};
use gpucmp_ptx::{CmpOp, Op2, Ty};
use gpucmp_sim::{launch, DeviceSpec, GlobalMemory, LaunchConfig};
use proptest::prelude::*;

/// One generated statement of the random kernel: `v[dst] = v[a] op v[b]`
/// or a select/comparison mix, always over previously-defined slots.
#[derive(Clone, Debug)]
enum GenOp {
    Bin(Op2, usize, usize),
    CmpSel(CmpOp, usize, usize, usize),
}

fn arb_ops(len: usize, vars: usize) -> impl Strategy<Value = Vec<GenOp>> {
    let op = prop_oneof![
        (
            prop_oneof![
                Just(Op2::Add),
                Just(Op2::Sub),
                Just(Op2::Mul),
                Just(Op2::Min),
                Just(Op2::Max),
                Just(Op2::And),
                Just(Op2::Or),
                Just(Op2::Xor),
            ],
            0..vars,
            0..vars
        )
            .prop_map(|(o, a, b)| GenOp::Bin(o, a, b)),
        (
            prop_oneof![Just(CmpOp::Lt), Just(CmpOp::Eq), Just(CmpOp::Ge)],
            0..vars,
            0..vars,
            0..vars
        )
            .prop_map(|(c, a, b, s)| GenOp::CmpSel(c, a, b, s)),
    ];
    prop::collection::vec(op, 1..len)
}

/// Build a kernel: load `vars` seeded values, apply the op sequence into a
/// rolling window of variables, store all of them back.
fn build_kernel(ops: &[GenOp], vars: usize) -> KernelDef {
    let mut k = DslKernel::new("fuzz");
    let input = k.param_ptr("input");
    let output = k.param_ptr("output");
    let gid = k.let_(Ty::S32, global_id_x());
    let slots: Vec<Var> = (0..vars)
        .map(|i| {
            k.let_(
                Ty::S32,
                gpucmp_compiler::ld_global(
                    input.clone(),
                    Expr::from(gid) * vars as i32 + i as i32,
                    Ty::S32,
                ),
            )
        })
        .collect();
    for (i, op) in ops.iter().enumerate() {
        let dst = slots[i % vars];
        match op {
            GenOp::Bin(o, a, b) => k.assign(
                dst,
                Expr::Bin(
                    *o,
                    Box::new(Expr::Var(slots[*a])),
                    Box::new(Expr::Var(slots[*b])),
                ),
            ),
            GenOp::CmpSel(c, a, b, s) => {
                let cond = Expr::Var(slots[*a]).cmp(*c, Expr::Var(slots[*b]));
                k.assign(dst, gpucmp_compiler::select(cond, slots[*s], dst));
            }
        }
    }
    for (i, v) in slots.iter().enumerate() {
        k.st_global(
            output.clone(),
            Expr::from(gid) * vars as i32 + i as i32,
            Ty::S32,
            *v,
        );
    }
    k.finish()
}

/// Compile and execute on the simulator, returning the output buffer.
fn run(def: &KernelDef, api: Api, cap: u32, inputs: &[i32], threads: u32, vars: usize) -> Vec<i32> {
    let compiled = compile(def, api, cap).expect("compile");
    let resolved = compiled.exec.resolve().expect("resolve");
    let device = DeviceSpec::gtx480();
    let mut gmem = GlobalMemory::new(1 << 20);
    let d_in = gmem.alloc((inputs.len() * 4) as u64).unwrap();
    let d_out = gmem.alloc((inputs.len() * 4) as u64).unwrap();
    gmem.write_i32_slice(d_in, inputs).unwrap();
    let cfg = LaunchConfig::new(threads.div_ceil(32), 32u32)
        .arg_ptr(d_in)
        .arg_ptr(d_out);
    launch(&device, &resolved, &mut gmem, &[], &cfg).expect("launch");
    gmem.read_i32_slice(d_out, threads as usize * vars).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn both_frontends_agree_under_any_register_cap(
        ops in arb_ops(24, 6),
        seed_vals in prop::collection::vec(-1000i32..1000, 6 * 32),
        cap in 8u32..64,
    ) {
        let vars = 6usize;
        let threads = 32u32;
        let def = build_kernel(&ops, vars);
        let cuda = run(&def, Api::Cuda, 124, &seed_vals, threads, vars);
        let cuda_capped = run(&def, Api::Cuda, cap, &seed_vals, threads, vars);
        let opencl = run(&def, Api::OpenCl, 124, &seed_vals, threads, vars);
        let opencl_capped = run(&def, Api::OpenCl, cap, &seed_vals, threads, vars);
        prop_assert_eq!(&cuda, &opencl, "front-ends disagree");
        prop_assert_eq!(&cuda, &cuda_capped, "CUDA spilling changed results");
        prop_assert_eq!(&opencl, &opencl_capped, "OpenCL spilling changed results");
    }
}
