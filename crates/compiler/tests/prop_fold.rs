//! Property test: constant folding preserves the semantics of integer
//! expression trees at both maturity levels.

use gpucmp_compiler::fold::{fold_expr, FoldLevel};
use gpucmp_compiler::{Expr, Var};
use gpucmp_ptx::{CmpOp, Op2, Ty};
use proptest::prelude::*;

/// Reference evaluator over the folder's own integer domain (wrapping
/// i64, the image PTX front-ends fold in; the final 32-bit truncation
/// happens at the store and is congruent for +,-,x and the bitwise ops).
fn eval(e: &Expr, env: &[i64]) -> Option<i64> {
    Some(match e {
        Expr::ImmI(v) => *v,
        Expr::Var(v) => env[v.id as usize],
        Expr::Bin(op, a, b) => {
            let (x, y) = (eval(a, env)?, eval(b, env)?);
            match op {
                Op2::Add => x.wrapping_add(y),
                Op2::Sub => x.wrapping_sub(y),
                Op2::Mul => x.wrapping_mul(y),
                Op2::Div => {
                    if y == 0 {
                        return None;
                    }
                    x.wrapping_div(y)
                }
                Op2::Rem => {
                    if y == 0 {
                        return None;
                    }
                    x.wrapping_rem(y)
                }
                Op2::Min => x.min(y),
                Op2::Max => x.max(y),
                Op2::And => x & y,
                Op2::Or => x | y,
                Op2::Xor => x ^ y,
                Op2::Shl | Op2::Shr => return None, // not generated
            }
        }
        Expr::Cmp(op, a, b) => {
            let (x, y) = (eval(a, env)?, eval(b, env)?);
            let r = match op {
                CmpOp::Eq => x == y,
                CmpOp::Ne => x != y,
                CmpOp::Lt => x < y,
                CmpOp::Le => x <= y,
                CmpOp::Gt => x > y,
                CmpOp::Ge => x >= y,
            };
            r as i64
        }
        Expr::Select(c, a, b) => {
            if eval(c, env)? != 0 {
                eval(a, env)?
            } else {
                eval(b, env)?
            }
        }
        _ => return None,
    })
}

const NVARS: usize = 4;

/// Random S32 expression trees. Immediates stay small so that wrapping
/// behaviour in the 64-bit folder and the 32-bit evaluator coincide.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-64i64..64).prop_map(Expr::ImmI),
        (0u32..NVARS as u32).prop_map(|id| Expr::Var(Var { id, ty: Ty::S32 })),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(Op2::Add),
                    Just(Op2::Sub),
                    Just(Op2::Mul),
                    Just(Op2::Div),
                    Just(Op2::Rem),
                    Just(Op2::Min),
                    Just(Op2::Max),
                    Just(Op2::And),
                    Just(Op2::Or),
                    Just(Op2::Xor),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, a, b)| Expr::Bin(op, Box::new(a), Box::new(b))),
            (
                prop_oneof![Just(CmpOp::Eq), Just(CmpOp::Lt), Just(CmpOp::Ge),],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, a, b)| Expr::Cmp(op, Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, a, b)| Expr::Select(
                Box::new(c),
                Box::new(a),
                Box::new(b)
            )),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn folding_preserves_semantics(e in arb_expr(), env in prop::array::uniform4(-100i64..100)) {
        let env = env.to_vec();
        if let Some(want) = eval(&e, &env) {
            for level in [FoldLevel::Basic, FoldLevel::Aggressive] {
                let folded = fold_expr(&e, level);
                let got = eval(&folded, &env);
                prop_assert_eq!(
                    got, Some(want),
                    "level {:?}: {:?} -> {:?}", level, e, folded
                );
            }
        }
    }

    #[test]
    fn aggressive_folds_closed_expressions_to_immediates(e in arb_expr()) {
        // an expression with no variables either folds to an immediate or
        // contains a trapping division the folder correctly refuses
        let closed = gpucmp_compiler::unroll::subst_stmt(
            &gpucmp_compiler::Stmt::Let(Var { id: NVARS as u32, ty: Ty::S32 }, e),
            Var { id: 0, ty: Ty::S32 },
            &Expr::ImmI(3),
        );
        let closed = gpucmp_compiler::unroll::subst_stmt(&closed, Var { id: 1, ty: Ty::S32 }, &Expr::ImmI(-5));
        let closed = gpucmp_compiler::unroll::subst_stmt(&closed, Var { id: 2, ty: Ty::S32 }, &Expr::ImmI(7));
        let closed = gpucmp_compiler::unroll::subst_stmt(&closed, Var { id: 3, ty: Ty::S32 }, &Expr::ImmI(0));
        let gpucmp_compiler::Stmt::Let(_, inner) = &closed else { unreachable!() };
        let env = vec![3, -5, 7, 0];
        if eval(inner, &env).is_some() {
            let folded = fold_expr(inner, FoldLevel::Aggressive);
            prop_assert!(
                matches!(folded, Expr::ImmI(_)),
                "closed expr did not fold: {:?} -> {:?}", inner, folded
            );
        }
    }

    #[test]
    fn folding_is_idempotent(e in arb_expr()) {
        for level in [FoldLevel::Basic, FoldLevel::Aggressive] {
            let once = fold_expr(&e, level);
            let twice = fold_expr(&once, level);
            prop_assert_eq!(&once, &twice);
        }
    }
}
