//! The decode tier: a flat, pre-decoded dispatch IR compiled once per
//! kernel.
//!
//! [`decode_kernel`] translates a lowered, resolved kernel into a
//! [`DecodedKernel`]: a dense instruction array with no `Label`
//! pseudo-instructions, branch targets pre-resolved into *decoded*
//! instruction indices, register operands pre-resolved to flat slot
//! indices, immediates pre-converted to the raw register bits the
//! interpreter's `eval` would produce (`float_bits` applied at decode
//! time), and the per-instruction issue cost pre-computed for the session's
//! device. The warp loop in `crate::dispatch` then runs without
//! per-instruction operand matching, label skipping, or cost-table lookups.
//!
//! On top of the flat stream, decode performs a *superinstruction* analysis
//! for the fused tier: every instruction records the length of the maximal
//! straight-line run of infallible pure scalar operations starting at it,
//! together with that run's summed issue cost and per-lane flop increments.
//! The fused dispatch loop retires such a run as a single step, bumping the
//! counters by the precomputed aggregates — producing bit-identical
//! [`crate::ExecStats`] to stepping the run one instruction at a time.
//! Fallible operations (memory, integer div/rem, control flow) are never
//! fused, so fault ordering and fault sites are unchanged by construction.
//!
//! Execution tiers are selected with [`ExecTier`] (env var
//! `GPUCMP_SIM_TIER={interp,decoded,fused}`); the interpreter in
//! [`crate::exec`] remains the reference tier.

use crate::alu::float_bits;
use crate::device::{Arch, DeviceSpec};
use gpucmp_ptx::{CmpOp, Inst, Op1, Op2, Op3, Operand, ResolvedKernel, Special, Ty};

/// Which execution engine simulates warp instructions.
///
/// All tiers are bit-identical by contract: same [`crate::ExecStats`], same
/// faults (kind, site, and order), same memcheck records, same memory
/// results. The tiers differ only in host wall-clock.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecTier {
    /// The reference per-instruction interpreter over the original
    /// instruction stream (labels skipped at run time).
    Interp,
    /// The pre-decoded dispatch IR, stepped one instruction at a time.
    Decoded,
    /// The pre-decoded IR with straight-line runs of pure scalar
    /// instructions retired as single superinstruction steps (the default).
    #[default]
    Fused,
}

impl ExecTier {
    /// Parse a tier name (case-insensitive). `None` for unknown names.
    pub fn parse(s: &str) -> Option<ExecTier> {
        match s.trim().to_ascii_lowercase().as_str() {
            "interp" | "interpreter" => Some(ExecTier::Interp),
            "decoded" | "decode" => Some(ExecTier::Decoded),
            "fused" | "fuse" => Some(ExecTier::Fused),
            _ => None,
        }
    }

    /// Read `GPUCMP_SIM_TIER`; unset or unrecognised values fall back to
    /// the default tier ([`ExecTier::Fused`]).
    pub fn from_env() -> ExecTier {
        std::env::var("GPUCMP_SIM_TIER")
            .ok()
            .and_then(|v| ExecTier::parse(&v))
            .unwrap_or_default()
    }

    /// Canonical lowercase name (the `GPUCMP_SIM_TIER` value).
    pub const fn name(self) -> &'static str {
        match self {
            ExecTier::Interp => "interp",
            ExecTier::Decoded => "decoded",
            ExecTier::Fused => "fused",
        }
    }
}

/// A pre-resolved scalar source operand. Immediates carry the exact raw
/// register bits the interpreter's `eval` would produce for the operand in
/// its use-type context.
#[derive(Clone, Copy, Debug)]
pub(crate) enum DSrc {
    /// Register slot index (`Reg::index()`).
    Reg(u32),
    /// Pre-converted immediate bits.
    Imm(u64),
    /// Special register, still evaluated per lane (depends on tid/ctaid).
    Special(Special),
}

fn decode_src(op: Operand, ty: Ty) -> DSrc {
    match op {
        Operand::Reg(r) => DSrc::Reg(r.0),
        Operand::ImmI(v) => DSrc::Imm(if ty.is_float() {
            float_bits(ty, v as f64)
        } else {
            v as u64
        }),
        Operand::ImmF(v) => DSrc::Imm(float_bits(ty, v)),
        Operand::Special(s) => DSrc::Special(s),
    }
}

/// A decoded operation. Scalar ALU ops and control flow are fully
/// pre-resolved; memory operations keep their original [`Inst`] and
/// delegate to the interpreter's warp-wide handlers, so the transaction,
/// cache, bank-conflict, and memcheck modelling is shared between tiers by
/// construction.
#[derive(Clone, Copy, Debug)]
pub(crate) enum DOp {
    /// `mov.ty d, a`
    Mov { ty: Ty, d: u32, a: DSrc },
    /// `cvt.dty.sty d, a`
    Cvt { dty: Ty, sty: Ty, d: u32, a: DSrc },
    /// Unary op.
    Un { op: Op1, ty: Ty, d: u32, a: DSrc },
    /// Binary op.
    Bin {
        op: Op2,
        ty: Ty,
        d: u32,
        a: DSrc,
        b: DSrc,
    },
    /// Ternary op (mad/fma).
    Tern {
        op: Op3,
        ty: Ty,
        d: u32,
        a: DSrc,
        b: DSrc,
        c: DSrc,
    },
    /// `setp.cmp.ty p, a, b`
    Setp {
        cmp: CmpOp,
        ty: Ty,
        d: u32,
        a: DSrc,
        b: DSrc,
    },
    /// `selp.ty d, a, b, p`
    Selp {
        ty: Ty,
        d: u32,
        a: DSrc,
        b: DSrc,
        p: u32,
    },
    /// Push a reconvergence frame.
    Ssy,
    /// Reconvergence point.
    Sync,
    /// Branch: `target` is a *decoded* instruction index; the predicate is
    /// a pre-resolved register slot plus polarity.
    Bra {
        target: u32,
        pred: Option<(u32, bool)>,
    },
    /// Block-wide barrier.
    Bar,
    /// Kernel return.
    Ret,
    /// Memory op (ld/st/tex/atom), delegated to the interpreter's warp
    /// handlers.
    Mem(Inst),
}

/// One pre-decoded instruction plus its fusion metadata.
#[derive(Clone, Copy, Debug)]
pub(crate) struct DecodedInst {
    pub(crate) op: DOp,
    /// Index in the *original* instruction stream (fault attribution:
    /// `FaultSite.pc` must match the interpreter's).
    pub(crate) orig_pc: u32,
    /// Issue cost in millicycles, pre-computed for the session device.
    pub(crate) cost: u64,
    /// Length of the maximal fusible straight-line run starting here
    /// (0 if this instruction is not fusible).
    pub(crate) fuse: u32,
    /// Summed issue cost of that run (0 if not fusible).
    pub(crate) run_cost: u64,
    /// Summed per-lane flop increments of that run (0 if not fusible).
    pub(crate) run_flops: u64,
}

/// A kernel compiled to the pre-decoded dispatch IR for one device.
///
/// Plain data (`Send + Sync`): one decode is shared by all block workers of
/// a launch, and the session code cache shares one across launches via
/// `Arc`. Decoding is device-dependent (issue costs are baked in), which is
/// sound for the per-session cache because a session's device never
/// changes.
#[derive(Clone, Debug)]
pub struct DecodedKernel {
    pub(crate) body: Vec<DecodedInst>,
    /// `(taken_branch_cycles * 1000)`, pre-computed.
    pub(crate) branch_refill_millicycles: u64,
    /// `(barrier_cost_cycles * 1000)`, pre-computed.
    pub(crate) barrier_cost_millicycles: u64,
}

impl DecodedKernel {
    /// Number of decoded (real, non-label) instructions.
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// Whether the decoded body is empty.
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }

    /// Number of instructions covered by fusible runs of length >= 2
    /// (diagnostic; used by tests and the sim-speed report).
    pub fn fused_coverage(&self) -> usize {
        let mut covered = 0usize;
        let mut i = 0usize;
        while i < self.body.len() {
            let l = self.body[i].fuse as usize;
            if l >= 2 {
                covered += l;
                i += l;
            } else {
                i += 1;
            }
        }
        covered
    }
}

/// Issue-cost table, in millicycles per warp instruction. Shared by the
/// reference interpreter (per-instruction lookup) and the decoder (baked
/// into [`DecodedInst::cost`]), so tier cost parity holds by construction.
pub(crate) fn issue_cost_millicycles(d: &DeviceSpec, inst: &Inst) -> u64 {
    let float_scale = d.arith_cycle_scale;
    let f64_penalty = match d.arch {
        Arch::Gt200 => 8.0,
        Arch::Fermi => 4.0,
        _ => 4.0,
    };
    let cost_f = |c: f64| (c * 1000.0) as u64;
    match inst {
        Inst::Label(_) | Inst::Ssy { .. } | Inst::SyncPoint => 0,
        Inst::Mov { .. } | Inst::Cvt { .. } => 1000,
        Inst::Setp { .. } | Inst::Selp { .. } | Inst::Bra { .. } => 1000,
        Inst::Un { op, ty, .. } => {
            if op.is_sfu() {
                cost_f(4.0)
            } else if ty.is_float() {
                let base = if ty.is_wide() { f64_penalty } else { 1.0 };
                cost_f(base * float_scale)
            } else {
                1000
            }
        }
        Inst::Bin { op, ty, .. } => match op {
            Op2::Div | Op2::Rem => {
                if ty.is_float() {
                    cost_f(8.0)
                } else {
                    cost_f(16.0)
                }
            }
            Op2::Mul => {
                if ty.is_float() {
                    let base = if ty.is_wide() { f64_penalty } else { 1.0 };
                    cost_f(base * float_scale)
                } else if d.arch == Arch::Gt200 {
                    cost_f(4.0) // 32-bit integer mul is slow on GT200
                } else {
                    1000
                }
            }
            _ => {
                if ty.is_float() {
                    let base = if ty.is_wide() { f64_penalty } else { 1.0 };
                    cost_f(base * float_scale)
                } else {
                    1000
                }
            }
        },
        Inst::Tern { ty, .. } => {
            if ty.is_float() {
                let base = if ty.is_wide() { f64_penalty } else { 1.0 };
                cost_f(base * float_scale)
            } else if d.arch == Arch::Gt200 {
                cost_f(4.0)
            } else {
                1000
            }
        }
        Inst::Ld { .. } | Inst::St { .. } | Inst::Tex { .. } => 1000,
        Inst::Atom { .. } => cost_f(4.0),
        Inst::Bar => 1000, // barrier_cost added separately
        Inst::Ret => 1000,
    }
}

/// Whether a decoded op may join a fused superinstruction run. Only
/// *infallible* pure scalar register ops qualify: integer div/rem (the one
/// fallible ALU case, `DivByZero`) and everything touching memory or
/// control flow are excluded, so a fused run can never fault and fault
/// ordering is identical to single-stepping.
fn fusible(op: &DOp) -> bool {
    match op {
        DOp::Mov { .. }
        | DOp::Cvt { .. }
        | DOp::Un { .. }
        | DOp::Tern { .. }
        | DOp::Setp { .. }
        | DOp::Selp { .. } => true,
        DOp::Bin { op, ty, .. } => ty.is_float() || !matches!(op, Op2::Div | Op2::Rem),
        _ => false,
    }
}

/// Per-lane `ExecStats::flops` increment of a scalar op (must mirror the
/// interpreter's `exec_scalar` exactly).
fn flop_inc(op: &DOp) -> u64 {
    match op {
        DOp::Un { op, .. } => matches!(op, Op1::Sqrt | Op1::Rsqrt | Op1::Rcp) as u64,
        DOp::Bin { op, ty, .. } => (ty.is_float() && !op.is_logic() && !op.is_shift()) as u64,
        DOp::Tern { ty, .. } if ty.is_float() => 2,
        _ => 0,
    }
}

/// Compile a resolved kernel into the pre-decoded dispatch IR for `device`.
pub fn decode_kernel(kernel: &ResolvedKernel, device: &DeviceSpec) -> DecodedKernel {
    let src = &kernel.kernel.body;
    let n = src.len();
    let total = src.iter().filter(|i| !matches!(i, Inst::Label(_))).count() as u32;
    // first_at[i] = decoded index of the first non-label instruction at
    // original index >= i (what the interpreter's label-skipping loop would
    // land on when branching to i).
    let mut first_at = vec![total; n + 1];
    let mut remaining = total;
    let mut next = total;
    for i in (0..n).rev() {
        if !matches!(src[i], Inst::Label(_)) {
            remaining -= 1;
            next = remaining;
        }
        first_at[i] = next;
    }

    let mut body: Vec<DecodedInst> = Vec::with_capacity(total as usize);
    for (pc, inst) in src.iter().enumerate() {
        let op = match *inst {
            Inst::Label(_) => continue,
            Inst::Mov { ty, d, a } => DOp::Mov {
                ty,
                d: d.0,
                a: decode_src(a, ty),
            },
            Inst::Cvt { dty, sty, d, a } => DOp::Cvt {
                dty,
                sty,
                d: d.0,
                a: decode_src(a, sty),
            },
            Inst::Un { op, ty, d, a } => DOp::Un {
                op,
                ty,
                d: d.0,
                a: decode_src(a, ty),
            },
            Inst::Bin { op, ty, d, a, b } => DOp::Bin {
                op,
                ty,
                d: d.0,
                a: decode_src(a, ty),
                b: decode_src(b, ty),
            },
            Inst::Tern { op, ty, d, a, b, c } => DOp::Tern {
                op,
                ty,
                d: d.0,
                a: decode_src(a, ty),
                b: decode_src(b, ty),
                c: decode_src(c, ty),
            },
            Inst::Setp { cmp, ty, d, a, b } => DOp::Setp {
                cmp,
                ty,
                d: d.0,
                a: decode_src(a, ty),
                b: decode_src(b, ty),
            },
            Inst::Selp { ty, d, a, b, p } => DOp::Selp {
                ty,
                d: d.0,
                a: decode_src(a, ty),
                b: decode_src(b, ty),
                p: p.0,
            },
            Inst::Ssy { .. } => DOp::Ssy,
            Inst::SyncPoint => DOp::Sync,
            Inst::Bra { pred, .. } => DOp::Bra {
                target: first_at[kernel.target(pc)],
                pred: pred.map(|(p, pol)| (p.0, pol)),
            },
            Inst::Bar => DOp::Bar,
            Inst::Ret => DOp::Ret,
            Inst::Ld { .. } | Inst::St { .. } | Inst::Tex { .. } | Inst::Atom { .. } => {
                DOp::Mem(*inst)
            }
        };
        body.push(DecodedInst {
            op,
            orig_pc: pc as u32,
            cost: issue_cost_millicycles(device, inst),
            fuse: 0,
            run_cost: 0,
            run_flops: 0,
        });
    }
    debug_assert_eq!(body.len(), total as usize);

    // Backward superinstruction analysis: a branch into the middle of a run
    // sees the correct remaining length/cost/flops by construction, because
    // every instruction records the aggregates of the run *starting at it*.
    let m = body.len();
    for i in (0..m).rev() {
        if fusible(&body[i].op) {
            let (nf, nc, nfl) = if i + 1 < m {
                (
                    body[i + 1].fuse,
                    body[i + 1].run_cost,
                    body[i + 1].run_flops,
                )
            } else {
                (0, 0, 0)
            };
            body[i].fuse = nf + 1;
            body[i].run_cost = body[i].cost + nc;
            body[i].run_flops = flop_inc(&body[i].op) + nfl;
        }
    }

    DecodedKernel {
        body,
        branch_refill_millicycles: (device.taken_branch_cycles * 1000.0) as u64,
        barrier_cost_millicycles: (device.barrier_cost_cycles * 1000.0) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpucmp_ptx::{Address, Kernel, LabelId, Reg, Space};

    fn decode(k: &Kernel) -> DecodedKernel {
        decode_kernel(&k.resolve().unwrap(), &DeviceSpec::gtx480())
    }

    #[test]
    fn labels_are_stripped_and_targets_remapped() {
        let mut k = Kernel::new("t");
        k.regs = vec![Ty::Pred];
        k.body = vec![
            Inst::Ssy { target: LabelId(0) },
            Inst::Bra {
                target: LabelId(0),
                pred: Some((Reg(0), true)),
            },
            Inst::Label(LabelId(1)),
            Inst::Bar,
            Inst::Label(LabelId(0)),
            Inst::SyncPoint,
            Inst::Ret,
        ];
        let d = decode(&k);
        assert_eq!(d.len(), 5); // two labels stripped
        match d.body[1].op {
            // Label(0) sits at original pc 4; the first real instruction at
            // or after it is SyncPoint, decoded index 3.
            DOp::Bra { target, pred } => {
                assert_eq!(target, 3);
                assert_eq!(pred, Some((0, true)));
            }
            ref other => panic!("expected Bra, got {other:?}"),
        }
        // orig_pc survives for fault attribution.
        assert_eq!(d.body[3].orig_pc, 5);
    }

    #[test]
    fn float_immediates_are_preconverted() {
        let mut k = Kernel::new("t");
        k.regs = vec![Ty::F32];
        k.body = vec![
            Inst::Mov {
                ty: Ty::F32,
                d: Reg(0),
                a: Operand::ImmI(2),
            },
            Inst::Ret,
        ];
        let d = decode(&k);
        match d.body[0].op {
            DOp::Mov {
                a: DSrc::Imm(bits), ..
            } => assert_eq!(bits, 2.0f32.to_bits() as u64),
            ref other => panic!("expected Mov imm, got {other:?}"),
        }
    }

    #[test]
    fn fusion_covers_scalar_runs_but_not_memory_or_int_div() {
        let mut k = Kernel::new("t");
        k.regs = vec![Ty::F32, Ty::F32, Ty::S32];
        k.body = vec![
            Inst::Mov {
                ty: Ty::F32,
                d: Reg(0),
                a: Operand::ImmF(1.0),
            },
            Inst::Bin {
                op: Op2::Add,
                ty: Ty::F32,
                d: Reg(1),
                a: Operand::Reg(Reg(0)),
                b: Operand::ImmF(2.0),
            },
            Inst::Bin {
                op: Op2::Div,
                ty: Ty::S32,
                d: Reg(2),
                a: Operand::Reg(Reg(2)),
                b: Operand::ImmI(2),
            },
            Inst::St {
                space: Space::Global,
                ty: Ty::F32,
                addr: Address::base(Operand::ImmI(0)),
                a: Operand::Reg(Reg(1)),
            },
            Inst::Ret,
        ];
        let d = decode(&k);
        // mov + fadd fuse; integer div (fallible) and the store do not.
        assert_eq!(d.body[0].fuse, 2);
        assert_eq!(d.body[1].fuse, 1);
        assert_eq!(d.body[2].fuse, 0);
        assert_eq!(d.body[3].fuse, 0);
        assert_eq!(d.body[0].run_cost, d.body[0].cost + d.body[1].cost);
        // fadd contributes one flop per lane, mov none.
        assert_eq!(d.body[0].run_flops, 1);
        assert_eq!(d.fused_coverage(), 2);
    }

    #[test]
    fn tier_parsing() {
        assert_eq!(ExecTier::parse("interp"), Some(ExecTier::Interp));
        assert_eq!(ExecTier::parse("DECODED"), Some(ExecTier::Decoded));
        assert_eq!(ExecTier::parse(" fused "), Some(ExecTier::Fused));
        assert_eq!(ExecTier::parse("jit"), None);
        assert_eq!(ExecTier::default(), ExecTier::Fused);
        assert_eq!(ExecTier::Fused.name(), "fused");
    }
}
