//! # gpucmp-sim — a deterministic SIMT architecture simulator
//!
//! This crate stands in for the physical hardware of the paper's three
//! testbeds (Saturn/GTX480, Dutijc/GTX280, Jupiter/HD5870, plus the
//! Intel i7-920 and Cell/BE OpenCL devices). It executes kernels expressed
//! in the [`gpucmp_ptx`] virtual ISA both *functionally* (every thread's
//! arithmetic and memory effects are interpreted, so benchmark outputs can
//! be verified against CPU references) and *temporally* (an analytic timing
//! model turns the observed execution trace into virtual nanoseconds).
//!
//! ## Architecture model
//!
//! - [`device`] — the device catalogue with datasheet-derived specifications
//!   (paper Table IV) and the occupancy calculator.
//! - [`exec`] — the lockstep SIMT interpreter and block scheduler: warps
//!   execute in lockstep with a divergence stack (`ssy`/`sync`
//!   reconvergence), barriers synchronize warps within a block, and
//!   independent blocks are simulated in parallel across host threads
//!   ([`ExecOptions`]) with per-block write overlays and stat buffers
//!   merged in ascending block order — bit-identical at every thread
//!   count.
//! - [`mem`] and [`cache`] — flat global memory with a bump allocator, plus
//!   the per-launch memory-system models: coalescing into DRAM transactions,
//!   set-associative L1/L2/texture/constant caches, shared-memory bank
//!   conflicts.
//! - [`timing`] — the roofline-style cost model: compute cycles vs. DRAM
//!   bytes vs. latency-hiding limits, modulated by occupancy.
//!
//! Determinism: there is no wall-clock or host-machine dependence anywhere;
//! identical inputs produce bit-identical memory contents, statistics, and
//! virtual times on every run.

mod alu;
pub mod cache;
pub mod decode;
pub mod device;
mod dispatch;
pub mod error;
pub mod exec;
pub mod launch;
pub mod mem;
pub mod stats;
pub mod timing;

pub use cache::Cache;
pub use decode::{decode_kernel, DecodedKernel, ExecTier};
pub use device::{Arch, DeviceKind, DeviceSpec};
pub use error::{DeviceFault, FaultKind, FaultSite, SimError};
pub use exec::{ExecOptions, ExecProfile};
pub use launch::{
    launch, launch_with, launch_with_code, Dim3, LaunchConfig, LaunchConfigBuilder, LaunchReport,
    TexBinding,
};
pub use mem::{DevPtr, GlobalMemory, WriteOverlay};
pub use stats::{CounterSet, ExecStats};
pub use timing::{kernel_time_ns, ScheduledOp, TimelineOp, TimelineResource, TimelineState};
