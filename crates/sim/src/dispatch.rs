//! The dispatch loop over the pre-decoded IR: the decoded and fused tiers.
//!
//! [`BlockExec::run_warp_decoded`] mirrors the reference interpreter's
//! `run_warp` step for step, but over a [`DecodedKernel`]: no label
//! skipping (labels are stripped at decode), no per-instruction cost-table
//! lookup (costs are baked into the IR), no operand matching (register
//! slots and immediates are pre-resolved), and branch targets land directly
//! on decoded indices. Warp `pc` values are *decoded* indices here; fault
//! sites report the original `pc` via [`DecodedInst::orig_pc`], so
//! [`crate::error::FaultSite`]s are identical across tiers.
//!
//! With `fused == true`, a maximal straight-line run of infallible pure
//! scalar instructions (precomputed at decode as [`DecodedInst::fuse`])
//! retires as one superinstruction: the counters bump by the run's
//! precomputed aggregates and the lanes execute the run register-file-hot,
//! lane-major. Because fused ops are infallible and touch only per-lane
//! registers, lane-major order is bit-identical to the interpreter's
//! instruction-major order, and no fault can occur mid-run. If the
//! remaining watchdog budget is smaller than the run, the warp falls back
//! to single-stepping so the budget exhausts at exactly the same
//! instruction as the interpreter.

use crate::alu::{alu1, alu2, alu3, compare, convert, load_extend};
use crate::decode::{DOp, DSrc, DecodedInst, DecodedKernel};
use crate::error::FaultKind;
use crate::exec::{BlockExec, Frame, WarpStatus};
use crate::launch::Dim3;
use gpucmp_ptx::Op1;

impl<'a> BlockExec<'a> {
    /// Run one warp of the decoded (or fused) tier until it blocks on a
    /// barrier or returns. Mirrors `run_warp` exactly; see module docs.
    pub(crate) fn run_warp_decoded(
        &mut self,
        w: usize,
        ctaid: Dim3,
        code: &DecodedKernel,
        fused: bool,
    ) -> Result<(), FaultKind> {
        loop {
            let pc = self.warps[w].pc;
            // Borrow, never copy: `DecodedInst` embeds the full `Inst` for
            // memory ops, and this is the hottest load in the simulator.
            let di: &DecodedInst = &code.body[pc];
            self.cur_pc = di.orig_pc as usize;
            self.cur_tid = self.warps[w].base_tid;

            // Superinstruction step: retire the whole straight-line run at
            // once. Requires enough budget for every instruction of the run
            // so the watchdog cannot fire mid-run (the fallback below
            // single-steps to the exact interpreter exhaustion point).
            let run = di.fuse as u64;
            if fused && di.fuse >= 2 && self.budget >= run {
                self.budget -= run;
                let active = self.warps[w].active;
                let lanes = active.count_ones() as u64;
                self.stats.warp_instructions += run;
                self.stats.lane_instructions += run * lanes;
                self.stats.issue_millicycles += di.run_cost;
                self.stats.flops += di.run_flops * lanes;
                let base = self.warps[w].base_tid;
                let ww = self.device.warp_width;
                let end = pc + di.fuse as usize;
                let ops = &code.body[pc..end];
                for lane in 0..ww {
                    if active & (1u64 << lane) == 0 {
                        continue;
                    }
                    let tid = base + lane;
                    self.cur_tid = tid;
                    for d in ops {
                        self.exec_scalar_d::<false>(tid, ctaid, &d.op)?;
                    }
                }
                self.warps[w].pc = end;
                continue;
            }

            if self.budget == 0 {
                return Err(FaultKind::Watchdog {
                    budget: self.budget_limit,
                });
            }
            self.budget -= 1;
            self.stats.warp_instructions += 1;
            self.stats.lane_instructions += self.warps[w].active.count_ones() as u64;
            self.stats.issue_millicycles += di.cost;

            match di.op {
                DOp::Ssy => {
                    let active = self.warps[w].active;
                    self.warps[w].stack.push(Frame {
                        restore_mask: active,
                        pending: None,
                    });
                    self.warps[w].pc += 1;
                }
                DOp::Sync => {
                    let warp = &mut self.warps[w];
                    let frame = warp
                        .stack
                        .last_mut()
                        .ok_or(FaultKind::Divergence("sync without ssy frame"))?;
                    if let Some((ppc, pmask)) = frame.pending.take() {
                        warp.active = pmask;
                        warp.pc = ppc;
                    } else {
                        warp.active = frame.restore_mask;
                        warp.stack.pop();
                        warp.pc += 1;
                    }
                }
                DOp::Bra { target, pred } => {
                    let t = target as usize;
                    let refill = code.branch_refill_millicycles;
                    match pred {
                        None => {
                            self.warps[w].pc = t;
                            self.stats.issue_millicycles += refill;
                        }
                        Some((p, polarity)) => {
                            let taken = self.pred_mask_slot(w, p, polarity);
                            let warp = &mut self.warps[w];
                            let active = warp.active;
                            if taken == active {
                                warp.pc = t;
                                self.stats.issue_millicycles += refill;
                            } else if taken == 0 {
                                warp.pc += 1;
                            } else {
                                self.stats.divergent_branches += 1;
                                let frame = warp
                                    .stack
                                    .last_mut()
                                    .ok_or(FaultKind::Divergence("divergent branch without ssy"))?;
                                self.stats.issue_millicycles += refill;
                                match &mut frame.pending {
                                    None => frame.pending = Some((t, taken)),
                                    Some((ppc, pmask)) if *ppc == t => {
                                        *pmask |= taken;
                                    }
                                    Some(_) => {
                                        return Err(FaultKind::Divergence(
                                            "conflicting divergence targets in one region",
                                        ))
                                    }
                                }
                                warp.active = active & !taken;
                                warp.pc += 1;
                            }
                        }
                    }
                }
                DOp::Bar => {
                    let warp = &mut self.warps[w];
                    if warp.active != warp.full {
                        return Err(FaultKind::Divergence("barrier reached by divergent warp"));
                    }
                    self.stats.barriers += 1;
                    self.stats.issue_millicycles += code.barrier_cost_millicycles;
                    warp.status = WarpStatus::AtBarrier;
                    return Ok(()); // pc advanced at release
                }
                DOp::Ret => {
                    let warp = &mut self.warps[w];
                    if !warp.stack.is_empty() {
                        return Err(FaultKind::Divergence("ret inside ssy region"));
                    }
                    warp.status = WarpStatus::Done;
                    return Ok(());
                }
                DOp::Mem(ref inst) => {
                    self.exec_lanes(w, ctaid, inst)?;
                    self.warps[w].pc += 1;
                }
                ref op => {
                    let active = self.warps[w].active;
                    let base = self.warps[w].base_tid;
                    let ww = self.device.warp_width;
                    for lane in 0..ww {
                        if active & (1u64 << lane) == 0 {
                            continue;
                        }
                        let tid = base + lane;
                        self.cur_tid = tid;
                        self.exec_scalar_d::<true>(tid, ctaid, op)?;
                    }
                    self.warps[w].pc += 1;
                }
            }
        }
    }

    /// Pure register-to-register execution of a decoded op for one thread.
    /// Must mirror `exec_scalar` exactly; with `STATS == false` the per-op
    /// flop increments are skipped (the fused caller bumps the precomputed
    /// run aggregate instead).
    fn exec_scalar_d<const STATS: bool>(
        &mut self,
        tid: u32,
        ctaid: Dim3,
        op: &DOp,
    ) -> Result<(), FaultKind> {
        match *op {
            DOp::Mov { ty, d, a } => {
                let v = load_extend(self.eval_d(tid, ctaid, a), ty);
                self.set_reg_slot(tid, d, v);
            }
            DOp::Cvt { dty, sty, d, a } => {
                let v = self.eval_d(tid, ctaid, a);
                self.set_reg_slot(tid, d, convert(v, sty, dty));
            }
            DOp::Un { op, ty, d, a } => {
                let v = self.eval_d(tid, ctaid, a);
                let r = alu1(op, ty, v);
                if STATS && (op == Op1::Sqrt || op == Op1::Rsqrt || op == Op1::Rcp) {
                    self.stats.flops += 1;
                }
                self.set_reg_slot(tid, d, r);
            }
            DOp::Bin { op, ty, d, a, b } => {
                let va = self.eval_d(tid, ctaid, a);
                let vb = self.eval_d(tid, ctaid, b);
                let r = alu2(op, ty, va, vb)?;
                if STATS && ty.is_float() && !op.is_logic() && !op.is_shift() {
                    self.stats.flops += 1;
                }
                self.set_reg_slot(tid, d, r);
            }
            DOp::Tern { op, ty, d, a, b, c } => {
                let va = self.eval_d(tid, ctaid, a);
                let vb = self.eval_d(tid, ctaid, b);
                let vc = self.eval_d(tid, ctaid, c);
                let r = alu3(op, ty, va, vb, vc);
                if STATS && ty.is_float() {
                    self.stats.flops += 2;
                }
                self.set_reg_slot(tid, d, r);
            }
            DOp::Setp { cmp, ty, d, a, b } => {
                let va = self.eval_d(tid, ctaid, a);
                let vb = self.eval_d(tid, ctaid, b);
                let r = compare(cmp, ty, va, vb) as u64;
                self.set_reg_slot(tid, d, r);
            }
            DOp::Selp { ty, d, a, b, p } => {
                let va = self.eval_d(tid, ctaid, a);
                let vb = self.eval_d(tid, ctaid, b);
                let vp = self.get_reg_slot(tid, p);
                self.set_reg_slot(tid, d, load_extend(if vp != 0 { va } else { vb }, ty));
            }
            _ => unreachable!("exec_scalar_d on non-scalar op"),
        }
        Ok(())
    }

    /// Evaluate a pre-resolved source operand (immediates carry final bits).
    #[inline]
    fn eval_d(&self, tid: u32, ctaid: Dim3, s: DSrc) -> u64 {
        match s {
            DSrc::Reg(slot) => self.get_reg_slot(tid, slot),
            DSrc::Imm(bits) => bits,
            DSrc::Special(sp) => self.special(tid, ctaid, sp),
        }
    }

    #[inline]
    fn get_reg_slot(&self, tid: u32, slot: u32) -> u64 {
        self.regs[(tid as usize) * self.reg_stride + slot as usize]
    }

    #[inline]
    fn set_reg_slot(&mut self, tid: u32, slot: u32, v: u64) {
        self.regs[(tid as usize) * self.reg_stride + slot as usize] = v;
    }

    /// Mask of active lanes whose predicate register slot equals `polarity`.
    fn pred_mask_slot(&self, w: usize, slot: u32, polarity: bool) -> u64 {
        let warp = &self.warps[w];
        let ww = self.device.warp_width;
        let mut mask = 0u64;
        for lane in 0..ww {
            let bit = 1u64 << lane;
            if warp.active & bit == 0 {
                continue;
            }
            let v = self.get_reg_slot(warp.base_tid + lane, slot) != 0;
            if v == polarity {
                mask |= bit;
            }
        }
        mask
    }
}
