//! Simulator errors: the device-fault model.
//!
//! Real GPUs would produce `unspecified launch failure` or silently corrupt
//! memory for most of these; the simulator traps them precisely to keep the
//! benchmark implementations honest. The model splits three ways:
//!
//! - [`FaultKind`] — *what* went wrong while a kernel executed (the
//!   analogue of a hardware exception class: out-of-bounds, misaligned
//!   access, watchdog timeout, …).
//! - [`FaultSite`] — *where*: the offending program counter plus the grid
//!   coordinates of the faulting thread, captured by the interpreter the
//!   moment the fault is raised. Sites are bit-identical for every host
//!   thread count simulating the launch.
//! - [`DeviceFault`] — a kind plus (when one exists) a site; what a launch
//!   returns and what the runtime layer turns into a sticky context error.
//!
//! [`SimError`] is the top-level launch error: either a [`DeviceFault`]
//! or one of the launch-setup failures (bad configuration, allocation
//! failure) that never reach the interpreter.

use gpucmp_ptx::Space;
use std::fmt;

/// An execution-time fault class raised by the interpreter or the memory
/// system while a kernel runs.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultKind {
    /// Out-of-bounds access in some state space.
    OutOfBounds {
        /// State space of the faulting access.
        space: Space,
        /// Faulting byte address.
        addr: u64,
        /// Access size in bytes.
        size: u32,
        /// Size of the addressed space (or allocation, under memcheck).
        limit: u64,
    },
    /// Access not aligned to its natural size (real GPUs require natural
    /// alignment for every 2/4/8-byte access).
    Misaligned {
        /// State space of the faulting access.
        space: Space,
        /// Faulting byte address.
        addr: u64,
        /// Access size in bytes (the required alignment).
        size: u32,
    },
    /// Integer division or remainder by zero.
    DivByZero,
    /// A texture fetch referenced an unbound texture slot.
    UnboundTexture(u8),
    /// A texture fetch indexed outside the bound buffer.
    TextureOutOfRange {
        /// Texture slot.
        slot: u8,
        /// Element index requested.
        index: i64,
        /// Number of elements bound.
        len: u64,
    },
    /// Barrier deadlock: some warps exited while others wait at `bar.sync`.
    BarrierDeadlock,
    /// Divergence-stack misuse (e.g. divergent branch without `ssy`).
    Divergence(&'static str),
    /// The launch exceeded its dynamic cycle/instruction budget — the
    /// simulator's watchdog timeout (runaway loop).
    Watchdog {
        /// The warp-instruction budget that was exhausted.
        budget: u64,
    },
    /// A store to a read-only state space (const / param).
    ReadOnly(Space),
}

impl FaultKind {
    /// Whether this fault is a memory-access fault the memcheck sanitizer
    /// records and suppresses (reads return zero, writes are dropped)
    /// instead of aborting the launch.
    pub fn is_access_fault(&self) -> bool {
        matches!(
            self,
            FaultKind::OutOfBounds { .. }
                | FaultKind::Misaligned { .. }
                | FaultKind::TextureOutOfRange { .. }
        )
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::OutOfBounds {
                space,
                addr,
                size,
                limit,
            } => write!(
                f,
                "out-of-bounds {space} access of {size} bytes at {addr:#x} (limit {limit:#x})"
            ),
            FaultKind::Misaligned { space, addr, size } => {
                write!(f, "misaligned {space} access of {size} bytes at {addr:#x}")
            }
            FaultKind::DivByZero => write!(f, "integer division by zero"),
            FaultKind::UnboundTexture(slot) => write!(f, "texture slot {slot} not bound"),
            FaultKind::TextureOutOfRange { slot, index, len } => {
                write!(f, "texture {slot} fetch at index {index} of {len} elements")
            }
            FaultKind::BarrierDeadlock => write!(f, "barrier deadlock"),
            FaultKind::Divergence(msg) => write!(f, "divergence error: {msg}"),
            FaultKind::Watchdog { budget } => {
                write!(
                    f,
                    "watchdog: dynamic instruction budget of {budget} exceeded"
                )
            }
            FaultKind::ReadOnly(space) => write!(f, "store to read-only {space} space"),
        }
    }
}

/// Where a fault happened: the offending instruction plus the faulting
/// thread's grid coordinates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSite {
    /// Index of the offending instruction in the resolved kernel body.
    pub pc: u32,
    /// Block (CTA) coordinates of the faulting thread.
    pub block: [u32; 3],
    /// Thread coordinates within the block.
    pub thread: [u32; 3],
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pc {} block ({},{},{}) thread ({},{},{})",
            self.pc,
            self.block[0],
            self.block[1],
            self.block[2],
            self.thread[0],
            self.thread[1],
            self.thread[2]
        )
    }
}

/// A fault raised while executing a kernel, with the diagnostics the
/// interpreter captured at the faulting instruction.
///
/// Block-scoped faults (barrier deadlock, watchdog) carry no single
/// faulting thread; their `site` is `None` or holds only the block.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceFault {
    /// What went wrong.
    pub kind: FaultKind,
    /// Where, when the interpreter could attribute it to one instruction.
    pub site: Option<FaultSite>,
}

impl DeviceFault {
    /// A fault with no attributable site.
    pub fn unsited(kind: FaultKind) -> Self {
        DeviceFault { kind, site: None }
    }

    /// Linear block index of the faulting block given the grid extents,
    /// used to map the fault onto the CU the block was scheduled on.
    pub fn linear_block(&self, grid_x: u32, grid_y: u32) -> Option<u64> {
        self.site.map(|s| {
            s.block[0] as u64
                + s.block[1] as u64 * grid_x as u64
                + s.block[2] as u64 * grid_x as u64 * grid_y as u64
        })
    }
}

impl fmt::Display for DeviceFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.site {
            Some(site) => write!(f, "device fault: {} at {site}", self.kind),
            None => write!(f, "device fault: {}", self.kind),
        }
    }
}

impl std::error::Error for DeviceFault {}

/// A launch error: either a device fault with diagnostics, or a setup
/// failure detected before (or outside) kernel execution.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// The kernel faulted while executing.
    Fault(DeviceFault),
    /// Kernel failed label resolution or validation.
    InvalidKernel(String),
    /// Launch configuration invalid for the device (block too large, etc.).
    InvalidLaunch(String),
    /// Device memory allocation failed.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes available.
        available: u64,
    },
    /// Parameter slot count mismatch at launch.
    BadParamCount {
        /// Parameters the kernel declares.
        expected: usize,
        /// Parameters supplied.
        got: usize,
    },
}

impl SimError {
    /// The device fault, when this error is one.
    pub fn fault(&self) -> Option<&DeviceFault> {
        match self {
            SimError::Fault(f) => Some(f),
            _ => None,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Fault(fault) => write!(f, "{fault}"),
            SimError::InvalidKernel(msg) => write!(f, "invalid kernel: {msg}"),
            SimError::InvalidLaunch(msg) => write!(f, "invalid launch: {msg}"),
            SimError::OutOfMemory {
                requested,
                available,
            } => {
                write!(
                    f,
                    "device out of memory: requested {requested}, available {available}"
                )
            }
            SimError::BadParamCount { expected, got } => {
                write!(f, "kernel expects {expected} params, got {got}")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<DeviceFault> for SimError {
    fn from(f: DeviceFault) -> Self {
        SimError::Fault(f)
    }
}

impl From<FaultKind> for SimError {
    fn from(k: FaultKind) -> Self {
        SimError::Fault(DeviceFault::unsited(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::Fault(DeviceFault {
            kind: FaultKind::OutOfBounds {
                space: Space::Global,
                addr: 0x100,
                size: 4,
                limit: 0x80,
            },
            site: Some(FaultSite {
                pc: 12,
                block: [3, 0, 0],
                thread: [7, 1, 0],
            }),
        });
        let s = e.to_string();
        assert!(s.contains("global"));
        assert!(s.contains("0x100"));
        assert!(s.contains("pc 12"));
        assert!(s.contains("block (3,0,0)"));
        assert!(s.contains("thread (7,1,0)"));
        assert!(FaultKind::DivByZero.to_string().contains("division"));
        assert!(FaultKind::Watchdog { budget: 10 }
            .to_string()
            .contains("watchdog"));
    }

    #[test]
    fn access_fault_classification() {
        assert!(FaultKind::Misaligned {
            space: Space::Shared,
            addr: 2,
            size: 4
        }
        .is_access_fault());
        assert!(!FaultKind::BarrierDeadlock.is_access_fault());
        assert!(!FaultKind::Watchdog { budget: 1 }.is_access_fault());
    }
}
