//! Simulator errors.

use gpucmp_ptx::Space;
use std::fmt;

/// A fault raised while executing a kernel.
///
/// Real GPUs would produce `unspecified launch failure` or silently corrupt
/// memory for most of these; the simulator traps them precisely to keep the
/// benchmark implementations honest.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// Out-of-bounds access in some state space.
    OutOfBounds {
        /// State space of the faulting access.
        space: Space,
        /// Faulting byte address.
        addr: u64,
        /// Access size in bytes.
        size: u32,
        /// Size of the addressed space.
        limit: u64,
    },
    /// Integer division or remainder by zero.
    DivByZero,
    /// A texture fetch referenced an unbound texture slot.
    UnboundTexture(u8),
    /// A texture fetch indexed outside the bound buffer.
    TextureOutOfRange {
        /// Texture slot.
        slot: u8,
        /// Element index requested.
        index: i64,
        /// Number of elements bound.
        len: u64,
    },
    /// Barrier deadlock: some warps exited while others wait at `bar.sync`.
    BarrierDeadlock,
    /// Divergence-stack misuse (e.g. divergent branch without `ssy`).
    DivergenceError(&'static str),
    /// The launch exceeded the dynamic instruction budget (runaway loop).
    InstructionBudgetExceeded(u64),
    /// Kernel failed label resolution or validation.
    InvalidKernel(String),
    /// Launch configuration invalid for the device (block too large, etc.).
    InvalidLaunch(String),
    /// Device memory allocation failed.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes available.
        available: u64,
    },
    /// Parameter slot count mismatch at launch.
    BadParamCount {
        /// Parameters the kernel declares.
        expected: usize,
        /// Parameters supplied.
        got: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfBounds {
                space,
                addr,
                size,
                limit,
            } => write!(
                f,
                "out-of-bounds {space} access of {size} bytes at {addr:#x} (limit {limit:#x})"
            ),
            SimError::DivByZero => write!(f, "integer division by zero"),
            SimError::UnboundTexture(slot) => write!(f, "texture slot {slot} not bound"),
            SimError::TextureOutOfRange { slot, index, len } => {
                write!(f, "texture {slot} fetch at index {index} of {len} elements")
            }
            SimError::BarrierDeadlock => write!(f, "barrier deadlock"),
            SimError::DivergenceError(msg) => write!(f, "divergence error: {msg}"),
            SimError::InstructionBudgetExceeded(n) => {
                write!(f, "dynamic instruction budget of {n} exceeded")
            }
            SimError::InvalidKernel(msg) => write!(f, "invalid kernel: {msg}"),
            SimError::InvalidLaunch(msg) => write!(f, "invalid launch: {msg}"),
            SimError::OutOfMemory {
                requested,
                available,
            } => {
                write!(
                    f,
                    "device out of memory: requested {requested}, available {available}"
                )
            }
            SimError::BadParamCount { expected, got } => {
                write!(f, "kernel expects {expected} params, got {got}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::OutOfBounds {
            space: Space::Global,
            addr: 0x100,
            size: 4,
            limit: 0x80,
        };
        let s = e.to_string();
        assert!(s.contains("global"));
        assert!(s.contains("0x100"));
        assert!(SimError::DivByZero.to_string().contains("division"));
    }
}
