//! The analytic timing model.
//!
//! Converts the exact execution trace statistics of a launch into virtual
//! nanoseconds with a roofline-style model:
//!
//! - a **compute term**: weighted issue cycles distributed over the compute
//!   units actually occupied;
//! - a **memory term**: post-cache DRAM traffic over the device's effective
//!   bandwidth;
//! - a **latency term**: un-hidden memory latency when occupancy is too low
//!   to cover the round trip (this is what collapses the paper's Fig. 7
//!   OpenCL FDTD variant whose outer unroll explodes register pressure);
//!
//! plus a small non-overlap leak between the terms. The model is
//! deliberately simple and fully documented; its two per-device calibration
//! constants live in [`crate::device::DeviceSpec`].

use crate::device::DeviceSpec;
use crate::stats::ExecStats;
use serde::{Deserialize, Serialize};

/// Fraction of the non-dominant terms that does *not* overlap with the
/// dominant one.
pub const NON_OVERLAP: f64 = 0.15;

/// Fixed per-launch pipeline fill/drain time in ns (kernel-side, excluding
/// the host API's launch overhead which the runtime adds separately).
pub const PIPELINE_NS: f64 = 1_000.0;

/// Assumed memory-level parallelism within one warp (independent loads in
/// flight) for the latency term.
pub const WARP_MLP: f64 = 2.0;

/// Timing breakdown of one kernel launch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Timing {
    /// Compute-issue term in ns.
    pub compute_ns: f64,
    /// DRAM-bandwidth term in ns.
    pub memory_ns: f64,
    /// Exposed-latency term in ns.
    pub latency_ns: f64,
    /// Total kernel time in ns.
    pub total_ns: f64,
    /// Occupancy (fraction of warp slots) used for the latency term.
    pub occupancy: f64,
    /// Blocks resident per CU.
    pub blocks_per_cu: u32,
    /// What limited occupancy.
    pub limiter: &'static str,
}

impl Timing {
    /// Which roofline term dominated the launch: `"compute"`, `"memory"`
    /// or `"latency"`. Ties resolve in that order (compute first), so the
    /// answer is deterministic.
    pub fn dominant(&self) -> &'static str {
        let terms = self.stall_shares();
        let mut best = terms[0];
        for t in &terms[1..] {
            if t.1 > best.1 {
                best = *t;
            }
        }
        best.0
    }

    /// Warp-issue stall breakdown: each roofline term's share of the term
    /// sum, in `[0, 1]`. The shares describe *where cycles would go* if
    /// nothing overlapped; the dominant entry is the launch's bottleneck.
    pub fn stall_shares(&self) -> [(&'static str, f64); 3] {
        let sum = self.compute_ns + self.memory_ns + self.latency_ns;
        if sum <= 0.0 {
            return [("compute", 0.0), ("memory", 0.0), ("latency", 0.0)];
        }
        [
            ("compute", self.compute_ns / sum),
            ("memory", self.memory_ns / sum),
            ("latency", self.latency_ns / sum),
        ]
    }
}

/// Compute the virtual duration of a launch.
///
/// `threads_per_block` and `blocks` describe the launch shape;
/// `regs_per_thread` and `smem_per_block` are the kernel's resource needs
/// (post-`ptxas`).
pub fn kernel_time(
    device: &DeviceSpec,
    stats: &ExecStats,
    threads_per_block: u32,
    blocks: u64,
    regs_per_thread: u32,
    smem_per_block: u32,
) -> Timing {
    let occ = device.occupancy(threads_per_block, regs_per_thread, smem_per_block);
    let clock = device.clock_hz();

    // How many CUs have work: blocks spread round-robin over the CUs, so
    // every CU is busy once there are at least as many blocks as CUs.
    let cus_busy = (blocks as f64).min(device.compute_units as f64).max(1.0);

    // ---- compute term ----
    // issue_millicycles are warp-instruction weights; a warp instruction
    // occupies warp_width / cores_per_cu CU cycles.
    let warp_cycle_scale = device.warp_width as f64 / device.cores_per_cu as f64;
    let issue_cycles = stats.issue_millicycles as f64 / 1000.0 * warp_cycle_scale;
    let aux_cycles = stats.shared_cycles as f64 + stats.const_serializations as f64;
    let compute_ns = (issue_cycles + aux_cycles) / cus_busy / clock * 1e9;

    // ---- memory term ----
    let bw = device.mem_bandwidth_gbs * 1e9 * device.dram_efficiency;
    let balanced_ns = stats.dram_bytes() as f64 / bw * 1e9;
    // The hottest DRAM partition bounds throughput (partition camping on
    // non-hashed devices; on hashed devices traffic is near-uniform and
    // this term coincides with the balanced one).
    let parts = device.dram_partitions.max(1) as f64;
    let camped_ns = stats.max_partition_bytes() as f64 * parts / bw * 1e9;
    // Every L1/texture miss crosses the L2 even when it hits there.
    let l2_ns = if device.l2_bandwidth_gbs > 0.0 {
        stats.l2_touched_bytes as f64 / (device.l2_bandwidth_gbs * 1e9) * 1e9
    } else {
        0.0
    };
    let memory_ns = balanced_ns.max(camped_ns).max(l2_ns);

    // ---- latency term ----
    // Each warp's chain of memory instructions exposes round-trip latency
    // unless enough other warps are resident to overlap it.
    let total_warps = (stats.threads.max(1) as f64 / device.warp_width as f64).ceil();
    let mem_insts_per_warp = if total_warps > 0.0 {
        (stats.gmem_instructions + stats.tex_misses + stats.const_misses) as f64 / total_warps
    } else {
        0.0
    };
    let concurrent_warps = (occ.warps_per_cu as f64 * cus_busy).max(1.0);
    let waves = (total_warps / concurrent_warps).max(1.0);
    let hiding = (occ.warps_per_cu as f64 / device.latency_hiding_warps).min(1.0);
    let latency_ns =
        waves * mem_insts_per_warp * device.mem_latency_ns / WARP_MLP * (1.0 - 0.85 * hiding);

    let dominant = compute_ns.max(memory_ns).max(latency_ns);
    let total_ns =
        dominant + NON_OVERLAP * (compute_ns + memory_ns + latency_ns - dominant) + PIPELINE_NS;

    Timing {
        compute_ns,
        memory_ns,
        latency_ns,
        total_ns,
        occupancy: occ.occupancy,
        blocks_per_cu: occ.blocks_per_cu,
        limiter: occ.limiter,
    }
}

/// Convenience wrapper returning only nanoseconds.
pub fn kernel_time_ns(
    device: &DeviceSpec,
    stats: &ExecStats,
    threads_per_block: u32,
    blocks: u64,
    regs_per_thread: u32,
    smem_per_block: u32,
) -> f64 {
    kernel_time(
        device,
        stats,
        threads_per_block,
        blocks,
        regs_per_thread,
        smem_per_block,
    )
    .total_ns
}

#[cfg(test)]
mod tests {
    use super::*;

    fn streaming_stats(bytes: u64, insts_per_warp_elem: u64) -> ExecStats {
        let elems = bytes / 4;
        let warps = elems / 32;
        ExecStats {
            blocks: warps / 8,
            threads: elems,
            warp_instructions: warps * insts_per_warp_elem,
            lane_instructions: elems * insts_per_warp_elem,
            issue_millicycles: warps * insts_per_warp_elem * 1000,
            dram_read_bytes: bytes,
            gmem_transactions: bytes / 64,
            gmem_instructions: warps,
            ..Default::default()
        }
    }

    #[test]
    fn bandwidth_bound_kernel_tracks_dram_efficiency() {
        let d = DeviceSpec::gtx480();
        let bytes = 256 << 20; // 256 MiB
        let stats = streaming_stats(bytes, 4);
        let t = kernel_time(&d, &stats, 256, stats.blocks, 16, 0);
        let achieved = bytes as f64 / t.total_ns * 1e9 / 1e9; // GB/s
        let frac = achieved / d.mem_bandwidth_gbs;
        // Should land near (but below) the calibrated DRAM efficiency.
        assert!(frac > 0.75 && frac < d.dram_efficiency, "frac={frac}");
        assert!(t.memory_ns > t.compute_ns);
    }

    #[test]
    fn compute_bound_kernel_tracks_peak_flops() {
        let d = DeviceSpec::gtx480();
        // Pure mad chain: 1M warps x 1000 mads.
        let warps = 1_000_000u64;
        let insts = warps * 1000;
        let stats = ExecStats {
            blocks: warps / 8,
            threads: warps * 32,
            warp_instructions: insts,
            lane_instructions: insts * 32,
            issue_millicycles: (insts as f64 * d.arith_cycle_scale * 1000.0) as u64,
            flops: insts * 32 * 2,
            ..Default::default()
        };
        let t = kernel_time(&d, &stats, 256, stats.blocks, 20, 0);
        let gflops = stats.flops as f64 / t.total_ns;
        let frac = gflops / d.theoretical_peak_gflops();
        // the idealised mad-only stream may nominally exceed "peak" by the
        // calibration margin; real kernels carry overhead instructions
        assert!(frac > 0.93 && frac < 1.02, "frac={frac}");
    }

    #[test]
    fn low_occupancy_exposes_latency() {
        let d = DeviceSpec::gtx480();
        let stats = ExecStats {
            blocks: 1000,
            threads: 256_000,
            warp_instructions: 80_000,
            lane_instructions: 2_560_000,
            issue_millicycles: 80_000_000,
            dram_read_bytes: 10 << 20,
            gmem_instructions: 40_000,
            gmem_transactions: 80_000,
            ..Default::default()
        };
        let high_occ = kernel_time(&d, &stats, 256, 1000, 16, 0);
        let low_occ = kernel_time(&d, &stats, 256, 1000, 63, 32 * 1024);
        assert!(low_occ.occupancy < high_occ.occupancy);
        assert!(low_occ.total_ns > high_occ.total_ns);
        assert!(low_occ.latency_ns > high_occ.latency_ns);
    }

    #[test]
    fn few_blocks_underutilise_device() {
        let d = DeviceSpec::gtx280();
        let stats = ExecStats {
            blocks: 1,
            threads: 256,
            warp_instructions: 8_000,
            lane_instructions: 256_000,
            issue_millicycles: 8_000_000,
            ..Default::default()
        };
        let one_block = kernel_time(&d, &stats, 256, 1, 16, 0);
        let many = kernel_time(&d, &stats, 256, 240, 16, 0);
        assert!(one_block.compute_ns > many.compute_ns * 10.0);
    }

    #[test]
    fn total_includes_pipeline_floor() {
        let d = DeviceSpec::gtx480();
        let t = kernel_time(&d, &ExecStats::default(), 32, 1, 8, 0);
        assert!(t.total_ns >= PIPELINE_NS);
    }
}
