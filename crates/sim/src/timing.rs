//! The analytic timing model.
//!
//! Converts the exact execution trace statistics of a launch into virtual
//! nanoseconds with a roofline-style model:
//!
//! - a **compute term**: weighted issue cycles distributed over the compute
//!   units actually occupied;
//! - a **memory term**: post-cache DRAM traffic over the device's effective
//!   bandwidth;
//! - a **latency term**: un-hidden memory latency when occupancy is too low
//!   to cover the round trip (this is what collapses the paper's Fig. 7
//!   OpenCL FDTD variant whose outer unroll explodes register pressure);
//!
//! plus a small non-overlap leak between the terms. The model is
//! deliberately simple and fully documented; its two per-device calibration
//! constants live in [`crate::device::DeviceSpec`].

use crate::device::DeviceSpec;
use crate::stats::ExecStats;
use serde::{Deserialize, Serialize};

/// Fraction of the non-dominant terms that does *not* overlap with the
/// dominant one.
pub const NON_OVERLAP: f64 = 0.15;

/// Fixed per-launch pipeline fill/drain time in ns (kernel-side, excluding
/// the host API's launch overhead which the runtime adds separately).
pub const PIPELINE_NS: f64 = 1_000.0;

/// Assumed memory-level parallelism within one warp (independent loads in
/// flight) for the latency term.
pub const WARP_MLP: f64 = 2.0;

/// Timing breakdown of one kernel launch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Timing {
    /// Compute-issue term in ns.
    pub compute_ns: f64,
    /// DRAM-bandwidth term in ns.
    pub memory_ns: f64,
    /// Exposed-latency term in ns.
    pub latency_ns: f64,
    /// Total kernel time in ns.
    pub total_ns: f64,
    /// Occupancy (fraction of warp slots) used for the latency term.
    pub occupancy: f64,
    /// Blocks resident per CU.
    pub blocks_per_cu: u32,
    /// What limited occupancy.
    pub limiter: &'static str,
}

impl Timing {
    /// Which roofline term dominated the launch: `"compute"`, `"memory"`
    /// or `"latency"`. Ties resolve in that order (compute first), so the
    /// answer is deterministic.
    pub fn dominant(&self) -> &'static str {
        let terms = self.stall_shares();
        let mut best = terms[0];
        for t in &terms[1..] {
            if t.1 > best.1 {
                best = *t;
            }
        }
        best.0
    }

    /// Warp-issue stall breakdown: each roofline term's share of the term
    /// sum, in `[0, 1]`. The shares describe *where cycles would go* if
    /// nothing overlapped; the dominant entry is the launch's bottleneck.
    pub fn stall_shares(&self) -> [(&'static str, f64); 3] {
        let sum = self.compute_ns + self.memory_ns + self.latency_ns;
        if sum <= 0.0 {
            return [("compute", 0.0), ("memory", 0.0), ("latency", 0.0)];
        }
        [
            ("compute", self.compute_ns / sum),
            ("memory", self.memory_ns / sum),
            ("latency", self.latency_ns / sum),
        ]
    }
}

/// Compute the virtual duration of a launch.
///
/// `threads_per_block` and `blocks` describe the launch shape;
/// `regs_per_thread` and `smem_per_block` are the kernel's resource needs
/// (post-`ptxas`).
pub fn kernel_time(
    device: &DeviceSpec,
    stats: &ExecStats,
    threads_per_block: u32,
    blocks: u64,
    regs_per_thread: u32,
    smem_per_block: u32,
) -> Timing {
    let occ = device.occupancy(threads_per_block, regs_per_thread, smem_per_block);
    let clock = device.clock_hz();

    // How many CUs have work: blocks spread round-robin over the CUs, so
    // every CU is busy once there are at least as many blocks as CUs.
    let cus_busy = (blocks as f64).min(device.compute_units as f64).max(1.0);

    // ---- compute term ----
    // issue_millicycles are warp-instruction weights; a warp instruction
    // occupies warp_width / cores_per_cu CU cycles.
    let warp_cycle_scale = device.warp_width as f64 / device.cores_per_cu as f64;
    let issue_cycles = stats.issue_millicycles as f64 / 1000.0 * warp_cycle_scale;
    let aux_cycles = stats.shared_cycles as f64 + stats.const_serializations as f64;
    let compute_ns = (issue_cycles + aux_cycles) / cus_busy / clock * 1e9;

    // ---- memory term ----
    let bw = device.mem_bandwidth_gbs * 1e9 * device.dram_efficiency;
    let balanced_ns = stats.dram_bytes() as f64 / bw * 1e9;
    // The hottest DRAM partition bounds throughput (partition camping on
    // non-hashed devices; on hashed devices traffic is near-uniform and
    // this term coincides with the balanced one).
    let parts = device.dram_partitions.max(1) as f64;
    let camped_ns = stats.max_partition_bytes() as f64 * parts / bw * 1e9;
    // Every L1/texture miss crosses the L2 even when it hits there.
    let l2_ns = if device.l2_bandwidth_gbs > 0.0 {
        stats.l2_touched_bytes as f64 / (device.l2_bandwidth_gbs * 1e9) * 1e9
    } else {
        0.0
    };
    let memory_ns = balanced_ns.max(camped_ns).max(l2_ns);

    // ---- latency term ----
    // Each warp's chain of memory instructions exposes round-trip latency
    // unless enough other warps are resident to overlap it.
    let total_warps = (stats.threads.max(1) as f64 / device.warp_width as f64).ceil();
    let mem_insts_per_warp = if total_warps > 0.0 {
        (stats.gmem_instructions + stats.tex_misses + stats.const_misses) as f64 / total_warps
    } else {
        0.0
    };
    let concurrent_warps = (occ.warps_per_cu as f64 * cus_busy).max(1.0);
    let waves = (total_warps / concurrent_warps).max(1.0);
    let hiding = (occ.warps_per_cu as f64 / device.latency_hiding_warps).min(1.0);
    let latency_ns =
        waves * mem_insts_per_warp * device.mem_latency_ns / WARP_MLP * (1.0 - 0.85 * hiding);

    let dominant = compute_ns.max(memory_ns).max(latency_ns);
    let total_ns =
        dominant + NON_OVERLAP * (compute_ns + memory_ns + latency_ns - dominant) + PIPELINE_NS;

    Timing {
        compute_ns,
        memory_ns,
        latency_ns,
        total_ns,
        occupancy: occ.occupancy,
        blocks_per_cu: occ.blocks_per_cu,
        limiter: occ.limiter,
    }
}

// ---------------------------------------------------------------------------
// The stream timeline scheduler.
// ---------------------------------------------------------------------------

/// A hardware engine of the virtual device timeline. Transfers and kernels
/// enqueued on different streams overlap exactly when they occupy different
/// engines: the model has one DMA engine per direction (the Fermi-era dual
/// copy engines) and one compute engine that serialises kernel launches,
/// which is the paper-era concurrency model (no concurrent kernels).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TimelineResource {
    /// Host→device DMA engine.
    H2dEngine,
    /// Device→host DMA engine.
    D2hEngine,
    /// The compute engine (kernel launches).
    Compute,
}

impl TimelineResource {
    /// Number of distinct resources.
    pub const COUNT: usize = 3;

    /// Dense index for per-resource tables.
    pub fn index(self) -> usize {
        match self {
            TimelineResource::H2dEngine => 0,
            TimelineResource::D2hEngine => 1,
            TimelineResource::Compute => 2,
        }
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            TimelineResource::H2dEngine => "H2D engine",
            TimelineResource::D2hEngine => "D2H engine",
            TimelineResource::Compute => "compute",
        }
    }
}

/// One enqueued operation awaiting placement on the timeline.
///
/// Ops are identified by `(stream, seq)` where `seq` is the dense per-stream
/// enqueue counter; that pair is also what completion events reference, so a
/// schedule depends only on the *op set and its dependencies*, never on the
/// host-side interleaving that produced it.
#[derive(Clone, Debug)]
pub struct TimelineOp {
    /// Owning stream id.
    pub stream: u32,
    /// Dense per-stream sequence number (enqueue order within the stream).
    pub seq: u64,
    /// Engine this op occupies.
    pub resource: TimelineResource,
    /// Occupancy duration in virtual ns.
    pub dur_ns: f64,
    /// Earliest possible start (the host clock when the op was enqueued).
    pub ready_ns: f64,
    /// Cross-stream waits: `(stream, seq)` ops that must complete first.
    pub deps: Vec<(u32, u64)>,
}

/// Placement of one op on the timeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScheduledOp {
    /// Owning stream id.
    pub stream: u32,
    /// Per-stream sequence number.
    pub seq: u64,
    /// Engine the op ran on.
    pub resource: TimelineResource,
    /// Scheduled start, ns.
    pub start_ns: f64,
    /// Scheduled end, ns.
    pub end_ns: f64,
}

/// Persistent scheduler state: per-engine availability and completion times
/// of every committed op, carried across synchronisation points.
///
/// [`TimelineState::schedule`] is deterministic **list scheduling**: among
/// the ops whose in-stream predecessor and declared dependencies are
/// committed, it repeatedly commits the one with the earliest feasible start
/// (ties broken by stream id, then sequence number). The result is a pure
/// function of the op set — bit-identical for any host thread count and any
/// dependency-equivalent enqueue interleaving.
#[derive(Clone, Debug, Default)]
pub struct TimelineState {
    resource_free: [f64; TimelineResource::COUNT],
    stream_tail: std::collections::BTreeMap<u32, f64>,
    committed_seq: std::collections::BTreeMap<u32, u64>,
    op_end: std::collections::BTreeMap<(u32, u64), f64>,
}

impl TimelineState {
    /// Fresh, empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// When `resource` is next free.
    pub fn resource_free_ns(&self, resource: TimelineResource) -> f64 {
        self.resource_free[resource.index()]
    }

    /// End of the last committed op on `stream` (0.0 if none).
    pub fn stream_tail_ns(&self, stream: u32) -> f64 {
        self.stream_tail.get(&stream).copied().unwrap_or(0.0)
    }

    /// Completion time of a committed op, if committed.
    pub fn op_end_ns(&self, stream: u32, seq: u64) -> Option<f64> {
        self.op_end.get(&(stream, seq)).copied()
    }

    /// Latest committed completion time across all engines.
    pub fn horizon_ns(&self) -> f64 {
        self.resource_free
            .iter()
            .copied()
            .fold(0.0f64, |a, b| a.max(b))
    }

    /// Place `ops` on the timeline and commit them, returning the placements
    /// in commit order.
    ///
    /// Panics if a dependency refers to an op that is neither committed nor
    /// part of `ops` (a runtime-layer bug: event handles only exist for
    /// enqueued ops).
    pub fn schedule(&mut self, ops: &[TimelineOp]) -> Vec<ScheduledOp> {
        // Canonical working order: (stream, seq). This makes the selection
        // below independent of the order `ops` arrived in.
        let mut pending: Vec<&TimelineOp> = ops.iter().collect();
        pending.sort_by_key(|o| (o.stream, o.seq));
        let mut out = Vec::with_capacity(ops.len());
        while !pending.is_empty() {
            // (start, stream, seq, index-into-pending) of the best candidate.
            let mut best: Option<(f64, u32, u64, usize)> = None;
            for (i, op) in pending.iter().enumerate() {
                // In-stream program order: only the next uncommitted seq of
                // each stream is eligible.
                let next = self.committed_seq.get(&op.stream).copied().unwrap_or(0);
                if op.seq != next {
                    continue;
                }
                // Declared cross-stream dependencies must be committed.
                let mut ready = op.ready_ns.max(self.stream_tail_ns(op.stream));
                let mut deps_met = true;
                for &(ds, dq) in &op.deps {
                    match self.op_end.get(&(ds, dq)) {
                        Some(&end) => ready = ready.max(end),
                        None => {
                            deps_met = false;
                            break;
                        }
                    }
                }
                if !deps_met {
                    continue;
                }
                let start = ready.max(self.resource_free[op.resource.index()]);
                let key = (start, op.stream, op.seq);
                if best.is_none_or(|(s, st, sq, _)| key < (s, st, sq)) {
                    best = Some((start, op.stream, op.seq, i));
                }
            }
            let (start, _, _, idx) = best
                .expect("timeline deadlock: a pending op depends on an op that was never enqueued");
            let op = pending.remove(idx);
            let end = start + op.dur_ns;
            self.resource_free[op.resource.index()] = end;
            self.stream_tail.insert(op.stream, end);
            self.committed_seq.insert(op.stream, op.seq + 1);
            self.op_end.insert((op.stream, op.seq), end);
            out.push(ScheduledOp {
                stream: op.stream,
                seq: op.seq,
                resource: op.resource,
                start_ns: start,
                end_ns: end,
            });
        }
        out
    }
}

/// Convenience wrapper returning only nanoseconds.
pub fn kernel_time_ns(
    device: &DeviceSpec,
    stats: &ExecStats,
    threads_per_block: u32,
    blocks: u64,
    regs_per_thread: u32,
    smem_per_block: u32,
) -> f64 {
    kernel_time(
        device,
        stats,
        threads_per_block,
        blocks,
        regs_per_thread,
        smem_per_block,
    )
    .total_ns
}

#[cfg(test)]
mod tests {
    use super::*;

    fn streaming_stats(bytes: u64, insts_per_warp_elem: u64) -> ExecStats {
        let elems = bytes / 4;
        let warps = elems / 32;
        ExecStats {
            blocks: warps / 8,
            threads: elems,
            warp_instructions: warps * insts_per_warp_elem,
            lane_instructions: elems * insts_per_warp_elem,
            issue_millicycles: warps * insts_per_warp_elem * 1000,
            dram_read_bytes: bytes,
            gmem_transactions: bytes / 64,
            gmem_instructions: warps,
            ..Default::default()
        }
    }

    #[test]
    fn bandwidth_bound_kernel_tracks_dram_efficiency() {
        let d = DeviceSpec::gtx480();
        let bytes = 256 << 20; // 256 MiB
        let stats = streaming_stats(bytes, 4);
        let t = kernel_time(&d, &stats, 256, stats.blocks, 16, 0);
        let achieved = bytes as f64 / t.total_ns * 1e9 / 1e9; // GB/s
        let frac = achieved / d.mem_bandwidth_gbs;
        // Should land near (but below) the calibrated DRAM efficiency.
        assert!(frac > 0.75 && frac < d.dram_efficiency, "frac={frac}");
        assert!(t.memory_ns > t.compute_ns);
    }

    #[test]
    fn compute_bound_kernel_tracks_peak_flops() {
        let d = DeviceSpec::gtx480();
        // Pure mad chain: 1M warps x 1000 mads.
        let warps = 1_000_000u64;
        let insts = warps * 1000;
        let stats = ExecStats {
            blocks: warps / 8,
            threads: warps * 32,
            warp_instructions: insts,
            lane_instructions: insts * 32,
            issue_millicycles: (insts as f64 * d.arith_cycle_scale * 1000.0) as u64,
            flops: insts * 32 * 2,
            ..Default::default()
        };
        let t = kernel_time(&d, &stats, 256, stats.blocks, 20, 0);
        let gflops = stats.flops as f64 / t.total_ns;
        let frac = gflops / d.theoretical_peak_gflops();
        // the idealised mad-only stream may nominally exceed "peak" by the
        // calibration margin; real kernels carry overhead instructions
        assert!(frac > 0.93 && frac < 1.02, "frac={frac}");
    }

    #[test]
    fn low_occupancy_exposes_latency() {
        let d = DeviceSpec::gtx480();
        let stats = ExecStats {
            blocks: 1000,
            threads: 256_000,
            warp_instructions: 80_000,
            lane_instructions: 2_560_000,
            issue_millicycles: 80_000_000,
            dram_read_bytes: 10 << 20,
            gmem_instructions: 40_000,
            gmem_transactions: 80_000,
            ..Default::default()
        };
        let high_occ = kernel_time(&d, &stats, 256, 1000, 16, 0);
        let low_occ = kernel_time(&d, &stats, 256, 1000, 63, 32 * 1024);
        assert!(low_occ.occupancy < high_occ.occupancy);
        assert!(low_occ.total_ns > high_occ.total_ns);
        assert!(low_occ.latency_ns > high_occ.latency_ns);
    }

    #[test]
    fn few_blocks_underutilise_device() {
        let d = DeviceSpec::gtx280();
        let stats = ExecStats {
            blocks: 1,
            threads: 256,
            warp_instructions: 8_000,
            lane_instructions: 256_000,
            issue_millicycles: 8_000_000,
            ..Default::default()
        };
        let one_block = kernel_time(&d, &stats, 256, 1, 16, 0);
        let many = kernel_time(&d, &stats, 256, 240, 16, 0);
        assert!(one_block.compute_ns > many.compute_ns * 10.0);
    }

    #[test]
    fn total_includes_pipeline_floor() {
        let d = DeviceSpec::gtx480();
        let t = kernel_time(&d, &ExecStats::default(), 32, 1, 8, 0);
        assert!(t.total_ns >= PIPELINE_NS);
    }

    fn op(
        stream: u32,
        seq: u64,
        resource: TimelineResource,
        dur_ns: f64,
        deps: &[(u32, u64)],
    ) -> TimelineOp {
        TimelineOp {
            stream,
            seq,
            resource,
            dur_ns,
            ready_ns: 0.0,
            deps: deps.to_vec(),
        }
    }

    #[test]
    fn two_streams_overlap_transfers_with_compute() {
        use TimelineResource::*;
        // One stream: h2d(100) -> launch(200) -> h2d(100) -> launch(200)
        let mut serial = TimelineState::new();
        let s = serial.schedule(&[
            op(0, 0, H2dEngine, 100.0, &[]),
            op(0, 1, Compute, 200.0, &[]),
            op(0, 2, H2dEngine, 100.0, &[]),
            op(0, 3, Compute, 200.0, &[]),
        ]);
        assert_eq!(s.last().unwrap().end_ns, 600.0);

        // Two streams: the second chunk's upload overlaps the first chunk's
        // kernel, so the pipeline finishes one transfer earlier.
        let mut piped = TimelineState::new();
        let p = piped.schedule(&[
            op(1, 0, H2dEngine, 100.0, &[]),
            op(1, 1, Compute, 200.0, &[]),
            op(2, 0, H2dEngine, 100.0, &[]),
            op(2, 1, Compute, 200.0, &[]),
        ]);
        let end = p.iter().map(|o| o.end_ns).fold(0.0f64, f64::max);
        assert_eq!(end, 500.0, "upload of chunk 2 hides behind kernel 1");
        // The overlap is real: stream 2's upload starts before stream 1's
        // kernel ends.
        let k1_end = piped.op_end_ns(1, 1).unwrap();
        let u2 = p.iter().find(|o| o.stream == 2 && o.seq == 0).unwrap();
        assert!(u2.start_ns < k1_end);
    }

    #[test]
    fn same_resource_never_overlaps() {
        use TimelineResource::*;
        let mut t = TimelineState::new();
        let p = t.schedule(&[op(1, 0, Compute, 300.0, &[]), op(2, 0, Compute, 300.0, &[])]);
        assert_eq!(p[0].end_ns, 300.0);
        assert_eq!(
            p[1].start_ns, 300.0,
            "one compute engine serialises kernels"
        );
    }

    #[test]
    fn schedule_is_invariant_to_enqueue_interleaving() {
        use TimelineResource::*;
        let ops = [
            op(1, 0, H2dEngine, 123.0, &[]),
            op(1, 1, Compute, 456.0, &[]),
            op(1, 2, D2hEngine, 78.0, &[]),
            op(2, 0, H2dEngine, 200.0, &[]),
            op(2, 1, Compute, 100.0, &[(1, 1)]),
            op(2, 2, D2hEngine, 90.0, &[]),
        ];
        let mut a = TimelineState::new();
        let mut fwd = a.schedule(&ops);
        // A dependency-equivalent interleaving: streams swapped in arrival
        // order, in-stream order preserved.
        let shuffled = [
            ops[3].clone(),
            ops[0].clone(),
            ops[4].clone(),
            ops[5].clone(),
            ops[1].clone(),
            ops[2].clone(),
        ];
        let mut b = TimelineState::new();
        let mut rev = b.schedule(&shuffled);
        fwd.sort_by_key(|o| (o.stream, o.seq));
        rev.sort_by_key(|o| (o.stream, o.seq));
        assert_eq!(fwd, rev, "placement must be bit-identical");
    }

    #[test]
    fn cross_stream_wait_orders_consumer_after_producer() {
        use TimelineResource::*;
        let mut t = TimelineState::new();
        let p = t.schedule(&[
            op(1, 0, H2dEngine, 500.0, &[]),
            op(2, 0, Compute, 100.0, &[(1, 0)]),
        ]);
        let producer = p.iter().find(|o| o.stream == 1).unwrap();
        let consumer = p.iter().find(|o| o.stream == 2).unwrap();
        assert!(consumer.start_ns >= producer.end_ns);
    }

    #[test]
    fn state_persists_across_sync_points() {
        use TimelineResource::*;
        let mut t = TimelineState::new();
        t.schedule(&[op(1, 0, Compute, 400.0, &[])]);
        // A later batch on another stream still queues behind the engine.
        let p = t.schedule(&[op(2, 0, Compute, 100.0, &[])]);
        assert_eq!(p[0].start_ns, 400.0);
        assert_eq!(t.horizon_ns(), 500.0);
        assert_eq!(t.stream_tail_ns(1), 400.0);
    }

    #[test]
    #[should_panic(expected = "timeline deadlock")]
    fn dangling_dependency_panics() {
        use TimelineResource::*;
        let mut t = TimelineState::new();
        t.schedule(&[op(1, 0, Compute, 1.0, &[(9, 9)])]);
    }
}
