//! Kernel launch: configuration, execution and the launch report.

use crate::decode::DecodedKernel;
use crate::device::DeviceSpec;
use crate::error::{DeviceFault, SimError};
use crate::exec::{run_launch_with_code, ExecOptions, ExecProfile, DEFAULT_INST_BUDGET};
use crate::mem::{DevPtr, GlobalMemory};
use crate::stats::ExecStats;
use crate::timing::{kernel_time, Timing};
use gpucmp_ptx::ResolvedKernel;
use serde::{Deserialize, Serialize};

/// Three-dimensional launch extent (grid or block).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dim3 {
    /// X extent.
    pub x: u32,
    /// Y extent.
    pub y: u32,
    /// Z extent.
    pub z: u32,
}

impl Dim3 {
    /// A 3-D extent.
    pub const fn new(x: u32, y: u32, z: u32) -> Self {
        Dim3 { x, y, z }
    }

    /// A 1-D extent.
    pub const fn x(x: u32) -> Self {
        Dim3 { x, y: 1, z: 1 }
    }

    /// A 2-D extent.
    pub const fn xy(x: u32, y: u32) -> Self {
        Dim3 { x, y, z: 1 }
    }

    /// Total element count.
    pub const fn count(self) -> u64 {
        self.x as u64 * self.y as u64 * self.z as u64
    }
}

impl From<u32> for Dim3 {
    fn from(x: u32) -> Self {
        Dim3::x(x)
    }
}

impl From<(u32, u32)> for Dim3 {
    fn from((x, y): (u32, u32)) -> Self {
        Dim3::xy(x, y)
    }
}

/// A buffer bound to a texture slot (the runtime's `cudaBindTexture`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TexBinding {
    /// Base device pointer of the bound buffer.
    pub ptr: DevPtr,
    /// Number of elements bound (element size comes from the fetch type).
    pub elems: u64,
}

/// Configuration for one kernel launch.
#[derive(Clone, Debug)]
pub struct LaunchConfig {
    /// Grid dimensions in blocks.
    pub grid: Dim3,
    /// Block dimensions in threads.
    pub block: Dim3,
    /// Kernel parameters as raw 64-bit slot images (device pointers are
    /// `DevPtr::0`, scalars zero/sign-extended, f32 in the low 32 bits).
    pub params: Vec<u64>,
    /// Texture bindings by slot.
    pub textures: Vec<TexBinding>,
    /// Dynamic warp-instruction budget (runaway guard).
    pub inst_budget: u64,
}

impl LaunchConfig {
    /// A 1-D launch of `grid` blocks of `block` threads.
    pub fn new(grid: impl Into<Dim3>, block: impl Into<Dim3>) -> Self {
        LaunchConfig {
            grid: grid.into(),
            block: block.into(),
            params: Vec::new(),
            textures: Vec::new(),
            inst_budget: DEFAULT_INST_BUDGET,
        }
    }

    /// Start a [`LaunchConfigBuilder`]; finish with [`LaunchConfigBuilder::build`]
    /// or pass the builder straight to a launch (it is `Into<LaunchConfig>`).
    pub fn builder() -> LaunchConfigBuilder {
        LaunchConfigBuilder::default()
    }

    /// Append a device-pointer parameter (accepts anything convertible to
    /// a [`DevPtr`], e.g. a typed runtime buffer).
    pub fn arg_ptr(mut self, p: impl Into<DevPtr>) -> Self {
        self.params.push(p.into().0);
        self
    }

    /// Append a 32-bit integer parameter.
    pub fn arg_i32(mut self, v: i32) -> Self {
        self.params.push(v as u32 as u64);
        self
    }

    /// Append an f32 parameter.
    pub fn arg_f32(mut self, v: f32) -> Self {
        self.params.push(v.to_bits() as u64);
        self
    }

    /// Bind a texture slot (slots bind in call order: first call = slot 0).
    pub fn bind_texture(mut self, ptr: DevPtr, elems: u64) -> Self {
        self.textures.push(TexBinding { ptr, elems });
        self
    }

    /// Override the dynamic warp-instruction budget (runaway guard). The
    /// session may clamp this further (e.g. a per-tenant quota cap).
    pub fn with_inst_budget(mut self, budget: u64) -> Self {
        self.inst_budget = budget;
        self
    }
}

/// Chainable builder for [`LaunchConfig`]; converts into the config via
/// [`LaunchConfigBuilder::build`] or `Into<LaunchConfig>`, so it can be
/// handed directly to any launch entry point that takes
/// `impl Into<LaunchConfig>`.
#[derive(Clone, Debug)]
pub struct LaunchConfigBuilder {
    cfg: LaunchConfig,
}

impl Default for LaunchConfigBuilder {
    fn default() -> Self {
        LaunchConfigBuilder {
            cfg: LaunchConfig::new(1u32, 1u32),
        }
    }
}

impl LaunchConfigBuilder {
    /// Grid dimensions in blocks (default 1×1×1).
    pub fn grid(mut self, g: impl Into<Dim3>) -> Self {
        self.cfg.grid = g.into();
        self
    }

    /// Block dimensions in threads (default 1×1×1).
    pub fn block(mut self, b: impl Into<Dim3>) -> Self {
        self.cfg.block = b.into();
        self
    }

    /// Append a device-pointer parameter.
    pub fn arg_ptr(mut self, p: impl Into<DevPtr>) -> Self {
        self.cfg = self.cfg.arg_ptr(p);
        self
    }

    /// Append a 32-bit integer parameter.
    pub fn arg_i32(mut self, v: i32) -> Self {
        self.cfg = self.cfg.arg_i32(v);
        self
    }

    /// Append an f32 parameter.
    pub fn arg_f32(mut self, v: f32) -> Self {
        self.cfg = self.cfg.arg_f32(v);
        self
    }

    /// Append a raw 64-bit parameter slot image.
    pub fn arg_raw(mut self, v: u64) -> Self {
        self.cfg.params.push(v);
        self
    }

    /// Bind a texture slot (slots bind in call order: first call = slot 0).
    pub fn texture(mut self, ptr: DevPtr, elems: u64) -> Self {
        self.cfg = self.cfg.bind_texture(ptr, elems);
        self
    }

    /// Override the dynamic warp-instruction budget (runaway guard).
    pub fn inst_budget(mut self, budget: u64) -> Self {
        self.cfg.inst_budget = budget;
        self
    }

    /// Finish building.
    pub fn build(self) -> LaunchConfig {
        self.cfg
    }
}

impl From<LaunchConfigBuilder> for LaunchConfig {
    fn from(b: LaunchConfigBuilder) -> Self {
        b.cfg
    }
}

impl From<&LaunchConfig> for LaunchConfig {
    fn from(cfg: &LaunchConfig) -> Self {
        cfg.clone()
    }
}

/// Result of a launch: exact statistics plus modelled timing.
#[derive(Clone, Debug)]
pub struct LaunchReport {
    /// Execution statistics (exact).
    pub stats: ExecStats,
    /// Timing breakdown (modelled).
    pub timing: Timing,
    /// Host-side (wall-clock) profiling of the simulator itself. Not part
    /// of the deterministic result — compare `stats`/`timing` instead.
    pub profile: ExecProfile,
    /// Memcheck sanitizer findings: access faults recorded (and
    /// suppressed) during the launch. Always empty unless the launch ran
    /// with [`ExecOptions::memcheck`] enabled; capped and deterministic
    /// for every host thread count.
    pub faults: Vec<DeviceFault>,
}

impl LaunchReport {
    /// Kernel duration in virtual nanoseconds.
    pub fn kernel_ns(&self) -> f64 {
        self.timing.total_ns
    }

    /// Flatten this launch's exact counters *and* modelled timing into one
    /// [`crate::stats::CounterSet`] — the per-launch profile the runtime
    /// attaches to every `Gpu::launch` and the trace exporter serialises.
    pub fn counters(&self, device: &DeviceSpec) -> crate::stats::CounterSet {
        let mut c = self.stats.counter_set(device.warp_width);
        c.push("kernel_ns", self.timing.total_ns);
        c.push("compute_ns", self.timing.compute_ns);
        c.push("memory_ns", self.timing.memory_ns);
        c.push("latency_ns", self.timing.latency_ns);
        c.push("achieved_occupancy", self.timing.occupancy);
        c.push("blocks_per_cu", self.timing.blocks_per_cu as f64);
        for (name, share) in self.timing.stall_shares() {
            // e.g. stall_compute_share / stall_memory_share / stall_latency_share
            match name {
                "compute" => c.push("stall_compute_share", share),
                "memory" => c.push("stall_memory_share", share),
                _ => c.push("stall_latency_share", share),
            }
        }
        c
    }
}

/// Execute a kernel launch on `device`, mutating `gmem`, and return the
/// report. `const_bank` is the module's packed constant bank image.
/// Serial execution; use [`launch_with`] to choose a thread count.
pub fn launch(
    device: &DeviceSpec,
    kernel: &ResolvedKernel,
    gmem: &mut GlobalMemory,
    const_bank: &[u8],
    cfg: &LaunchConfig,
) -> Result<LaunchReport, SimError> {
    launch_with(
        device,
        kernel,
        gmem,
        const_bank,
        cfg,
        &ExecOptions::default(),
    )
}

/// [`launch`] with explicit [`ExecOptions`] — in particular the number of
/// host threads simulating blocks. The report's `stats` and `timing` are
/// bit-identical for every thread count.
pub fn launch_with(
    device: &DeviceSpec,
    kernel: &ResolvedKernel,
    gmem: &mut GlobalMemory,
    const_bank: &[u8],
    cfg: &LaunchConfig,
    opts: &ExecOptions,
) -> Result<LaunchReport, SimError> {
    launch_with_code(device, kernel, gmem, const_bank, cfg, opts, None)
}

/// [`launch_with`] with an optional pre-decoded kernel. On the decoded and
/// fused tiers ([`ExecOptions::tier`]), passing `Some` reuses an existing
/// [`DecodedKernel`] (e.g. from the runtime's per-session code cache)
/// instead of decoding on every launch; `None` decodes on the fly. The
/// decoded kernel must come from this `kernel` and `device` — the runtime
/// cache guarantees this by keying on the kernel's content hash within a
/// fixed-device session.
#[allow(clippy::too_many_arguments)]
pub fn launch_with_code(
    device: &DeviceSpec,
    kernel: &ResolvedKernel,
    gmem: &mut GlobalMemory,
    const_bank: &[u8],
    cfg: &LaunchConfig,
    opts: &ExecOptions,
    code: Option<&DecodedKernel>,
) -> Result<LaunchReport, SimError> {
    let (stats, profile, faults) =
        run_launch_with_code(device, kernel, gmem, cfg, const_bank, opts, code)?;
    let k = &kernel.kernel;
    // Pre-ptxas kernels (phys_regs == 0) get a rough estimate so occupancy
    // remains meaningful in unit tests.
    let regs = if k.phys_regs > 0 {
        k.phys_regs
    } else {
        (k.regs.len() as u32).clamp(8, 64)
    };
    let timing = kernel_time(
        device,
        &stats,
        cfg.block.count() as u32,
        cfg.grid.count(),
        regs,
        k.shared_bytes,
    );
    Ok(LaunchReport {
        stats,
        timing,
        profile,
        faults,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpucmp_ptx::{Address, CmpOp, KernelBuilder, Op2, Op3, Operand, Space, Special, Ty};

    /// Build a SAXPY-like kernel: y[i] = a*x[i] + y[i] for i < n.
    fn saxpy_kernel() -> gpucmp_ptx::Kernel {
        let mut b = KernelBuilder::new("saxpy");
        b.param("x", Ty::U64);
        b.param("y", Ty::U64);
        b.param("a", Ty::F32);
        b.param("n", Ty::S32);
        let tid = b.special(Special::TidX);
        let ntid = b.special(Special::NtidX);
        let ctaid = b.special(Special::CtaidX);
        let base = b.tern(Op3::Mad, Ty::U32, ctaid, ntid, tid);
        let n = b.ld_param(3, Ty::S32);
        let p = b.setp(CmpOp::Ge, Ty::S32, base, n);
        let end = b.new_label();
        b.ssy(end);
        b.bra_if(end, p, true);
        // body
        let xptr = b.ld_param(0, Ty::U64);
        let yptr = b.ld_param(1, Ty::U64);
        let a = b.ld_param(2, Ty::F32);
        let off64 = b.cvt(Ty::U64, Ty::U32, base);
        let off = b.bin(Op2::Shl, Ty::U64, off64, 2i32);
        let xa = b.bin(Op2::Add, Ty::U64, xptr, off);
        let ya = b.bin(Op2::Add, Ty::U64, yptr, off);
        let xv = b.ld(Space::Global, Ty::F32, Address::base(Operand::Reg(xa)));
        let yv = b.ld(Space::Global, Ty::F32, Address::base(Operand::Reg(ya)));
        let r = b.tern(Op3::Fma, Ty::F32, a, xv, yv);
        b.st(Space::Global, Ty::F32, Address::base(Operand::Reg(ya)), r);
        b.place_label(end);
        b.sync();
        b.finish()
    }

    #[test]
    fn saxpy_functional_and_counted() {
        let device = DeviceSpec::gtx480();
        let kernel = saxpy_kernel();
        gpucmp_ptx::validate_kernel(&kernel).unwrap();
        let resolved = kernel.resolve().unwrap();
        let mut gmem = GlobalMemory::new(1 << 20);
        let n = 1000usize; // not a multiple of the block size: tests the guard
        let x = gmem.alloc((n * 4) as u64).unwrap();
        let y = gmem.alloc((n * 4) as u64).unwrap();
        let xs: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let ys: Vec<f32> = (0..n).map(|i| (n - i) as f32).collect();
        gmem.write_f32_slice(x, &xs).unwrap();
        gmem.write_f32_slice(y, &ys).unwrap();
        let cfg = LaunchConfig::new(8u32, 128u32)
            .arg_ptr(x)
            .arg_ptr(y)
            .arg_f32(2.0)
            .arg_i32(n as i32);
        let report = launch(&device, &resolved, &mut gmem, &[], &cfg).unwrap();
        let out = gmem.read_f32_slice(y, n).unwrap();
        for i in 0..n {
            assert_eq!(out[i], 2.0 * xs[i] + ys[i], "element {i}");
        }
        assert_eq!(report.stats.blocks, 8);
        assert_eq!(report.stats.threads, 1024);
        // 1000 of 1024 threads did the body: there must be divergence in
        // the tail warp only.
        assert!(report.stats.divergent_branches >= 1);
        assert!(report.stats.flops >= 2 * n as u64);
        assert!(report.timing.total_ns > 0.0);
        // Both arrays must be fetched from DRAM at least once; the write of
        // y hits in L2 on Fermi (the line was just read), so only the two
        // read streams are guaranteed to reach DRAM.
        assert!(report.stats.dram_bytes() >= 2 * 4 * 1000);
    }

    #[test]
    fn saxpy_is_deterministic() {
        let device = DeviceSpec::gtx280();
        let kernel = saxpy_kernel().resolve().unwrap();
        let run = || {
            let mut gmem = GlobalMemory::new(1 << 20);
            let x = gmem.alloc(4096).unwrap();
            let y = gmem.alloc(4096).unwrap();
            let xs: Vec<f32> = (0..1024).map(|i| (i % 97) as f32 * 0.5).collect();
            gmem.write_f32_slice(x, &xs).unwrap();
            gmem.write_f32_slice(y, &xs).unwrap();
            let cfg = LaunchConfig::new(4u32, 256u32)
                .arg_ptr(x)
                .arg_ptr(y)
                .arg_f32(1.5)
                .arg_i32(1024);
            let r = launch(&device, &kernel, &mut gmem, &[], &cfg).unwrap();
            (
                gmem.read_f32_slice(y, 1024).unwrap(),
                r.stats,
                r.timing.total_ns,
            )
        };
        let (o1, s1, t1) = run();
        let (o2, s2, t2) = run();
        assert_eq!(o1, o2);
        assert_eq!(s1, s2);
        assert_eq!(t1, t2);
    }

    #[test]
    fn bad_param_count_rejected() {
        let device = DeviceSpec::gtx480();
        let kernel = saxpy_kernel().resolve().unwrap();
        let mut gmem = GlobalMemory::new(1 << 16);
        let cfg = LaunchConfig::new(1u32, 32u32); // zero params
        let e = launch(&device, &kernel, &mut gmem, &[], &cfg).unwrap_err();
        assert!(matches!(
            e,
            SimError::BadParamCount {
                expected: 4,
                got: 0
            }
        ));
    }

    #[test]
    fn oversized_block_rejected() {
        let device = DeviceSpec::gtx280(); // max work-group 512
        let kernel = saxpy_kernel().resolve().unwrap();
        let mut gmem = GlobalMemory::new(1 << 16);
        let cfg = LaunchConfig::new(1u32, 1024u32)
            .arg_ptr(DevPtr::NULL)
            .arg_ptr(DevPtr::NULL)
            .arg_f32(0.0)
            .arg_i32(0);
        let e = launch(&device, &kernel, &mut gmem, &[], &cfg).unwrap_err();
        assert!(matches!(e, SimError::InvalidLaunch(_)));
    }

    #[test]
    fn out_of_bounds_access_trapped() {
        let device = DeviceSpec::gtx480();
        let kernel = saxpy_kernel().resolve().unwrap();
        let mut gmem = GlobalMemory::new(1 << 12);
        // n says 10000 elements but the buffers are tiny
        let x = gmem.alloc(64).unwrap();
        let y = gmem.alloc(64).unwrap();
        let cfg = LaunchConfig::new(64u32, 256u32)
            .arg_ptr(x)
            .arg_ptr(y)
            .arg_f32(1.0)
            .arg_i32(10_000);
        let e = launch(&device, &kernel, &mut gmem, &[], &cfg).unwrap_err();
        let fault = e.fault().expect("OOB must surface as a device fault");
        assert!(matches!(
            fault.kind,
            crate::error::FaultKind::OutOfBounds { .. }
        ));
        let site = fault.site.expect("access faults carry a site");
        // The lowest faulting access: the y buffer (higher base address)
        // runs out at element 896 = block 3, thread 128 — warps execute
        // round-robin, so warp 4's lane-0 load faults first.
        assert_eq!(site.block, [3, 0, 0]);
        assert_eq!(site.thread, [128, 0, 0]);
    }

    #[test]
    fn wavefront_width_changes_warp_special_registers() {
        // kernel writes %warpid of each thread
        let mut b = KernelBuilder::new("warpids");
        b.param("out", Ty::U64);
        let tid = b.special(Special::TidX);
        let wid = b.special(Special::WarpId);
        let out = b.ld_param(0, Ty::U64);
        let o64 = b.cvt(Ty::U64, Ty::U32, tid);
        let off = b.bin(Op2::Shl, Ty::U64, o64, 2i32);
        let addr = b.bin(Op2::Add, Ty::U64, out, off);
        b.st(
            Space::Global,
            Ty::U32,
            Address::base(Operand::Reg(addr)),
            wid,
        );
        let kernel = b.finish().resolve().unwrap();

        let run = |device: &DeviceSpec| {
            let mut gmem = GlobalMemory::new(1 << 16);
            let out = gmem.alloc(256 * 4).unwrap();
            let cfg = LaunchConfig::new(1u32, 256u32).arg_ptr(out);
            launch(device, &kernel, &mut gmem, &[], &cfg).unwrap();
            gmem.read_u32_slice(out, 256).unwrap()
        };
        let nv = run(&DeviceSpec::gtx280());
        let ati = run(&DeviceSpec::hd5870());
        assert_eq!(nv[31], 0);
        assert_eq!(nv[32], 1); // warp 32-wide
        assert_eq!(ati[32], 0); // wavefront 64-wide
        assert_eq!(ati[64], 1);
    }
}
