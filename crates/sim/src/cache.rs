//! Set-associative LRU cache model.
//!
//! Used for the Fermi L1/L2 hierarchy, the texture caches, and the constant
//! caches. Only hit/miss behaviour is modelled (no data is stored — the
//! functional data path always reads [`crate::mem::GlobalMemory`] directly);
//! the hit/miss stream is what the timing model consumes.

/// Result of a cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheAccess {
    /// Line was present.
    Hit,
    /// Line was filled (evicting an LRU victim if the set was full).
    Miss,
}

/// A set-associative LRU cache (tag store only).
#[derive(Clone, Debug)]
pub struct Cache {
    /// Line size in bytes (power of two).
    line: u64,
    /// Number of sets (power of two).
    sets: u64,
    /// Ways per set.
    assoc: usize,
    /// `tags[set * assoc + way]`; `u64::MAX` = invalid. Most recently used
    /// first within each set (simple move-to-front LRU).
    tags: Vec<u64>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Build a cache of `size` bytes with `line`-byte lines, `assoc` ways.
    ///
    /// # Panics
    /// Panics if the geometry is degenerate (zero size/line/assoc, or size
    /// not divisible into at least one set).
    pub fn new(size: u64, line: u64, assoc: u32) -> Self {
        assert!(
            size > 0 && line > 0 && assoc > 0,
            "degenerate cache geometry"
        );
        assert!(line.is_power_of_two(), "line size must be a power of two");
        let lines = (size / line).max(1);
        let assoc = (assoc as u64).min(lines) as usize;
        let sets = (lines / assoc as u64).max(1).next_power_of_two();
        Cache {
            line,
            sets,
            assoc,
            tags: vec![u64::MAX; (sets as usize) * assoc],
            hits: 0,
            misses: 0,
        }
    }

    /// Build from a [`crate::device::CacheGeom`].
    pub fn from_geom(g: crate::device::CacheGeom) -> Self {
        Cache::new(g.size as u64, g.line as u64, g.assoc)
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line
    }

    /// Probe + fill for the line containing `addr`.
    pub fn access(&mut self, addr: u64) -> CacheAccess {
        let line_addr = addr / self.line;
        let set = (line_addr & (self.sets - 1)) as usize;
        let base = set * self.assoc;
        let ways = &mut self.tags[base..base + self.assoc];
        if let Some(pos) = ways.iter().position(|&t| t == line_addr) {
            // move-to-front
            ways[..=pos].rotate_right(1);
            self.hits += 1;
            CacheAccess::Hit
        } else {
            ways.rotate_right(1);
            ways[0] = line_addr;
            self.misses += 1;
            CacheAccess::Miss
        }
    }

    /// Hits since construction or the last [`Cache::reset_counters`].
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses since construction or the last [`Cache::reset_counters`].
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `[0, 1]`; zero when no accesses occurred.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Invalidate all lines (e.g. between kernel launches for non-coherent
    /// texture caches).
    pub fn invalidate(&mut self) {
        self.tags.fill(u64::MAX);
    }

    /// Zero the hit/miss counters.
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(1024, 64, 4);
        assert_eq!(c.access(0), CacheAccess::Miss);
        assert_eq!(c.access(4), CacheAccess::Hit); // same line
        assert_eq!(c.access(63), CacheAccess::Hit);
        assert_eq!(c.access(64), CacheAccess::Miss); // next line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 2-way, line 64, 2 sets (256 bytes total).
        let mut c = Cache::new(256, 64, 2);
        // Set 0 holds lines with (line_addr % 2 == 0): addresses 0, 128, 256...
        assert_eq!(c.access(0), CacheAccess::Miss);
        assert_eq!(c.access(128), CacheAccess::Miss);
        assert_eq!(c.access(0), CacheAccess::Hit); // 0 now MRU
        assert_eq!(c.access(256), CacheAccess::Miss); // evicts 128
        assert_eq!(c.access(0), CacheAccess::Hit);
        assert_eq!(c.access(128), CacheAccess::Miss); // was evicted
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = Cache::new(1024, 64, 4); // 16 lines
                                             // stream over 64 lines twice: second pass still misses (LRU thrash)
        for _pass in 0..2 {
            for i in 0..64u64 {
                c.access(i * 64);
            }
        }
        assert_eq!(c.misses(), 128);
        assert_eq!(c.hits(), 0);
    }

    #[test]
    fn small_working_set_fits() {
        let mut c = Cache::new(8 * 1024, 64, 8);
        for _pass in 0..10 {
            for i in 0..16u64 {
                c.access(i * 64);
            }
        }
        assert_eq!(c.misses(), 16);
        assert_eq!(c.hits(), 16 * 9);
    }

    #[test]
    fn invalidate_clears_lines() {
        let mut c = Cache::new(1024, 64, 4);
        c.access(0);
        c.invalidate();
        assert_eq!(c.access(0), CacheAccess::Miss);
    }

    #[test]
    fn odd_geometry_does_not_panic() {
        // size not a power of two multiple: sets round to a power of two.
        let mut c = Cache::new(12 * 1024, 32, 8);
        for i in 0..1000u64 {
            c.access(i * 32);
        }
        assert_eq!(c.hits() + c.misses(), 1000);
    }
}
