//! Scalar ALU semantics and raw byte-level memory helpers.
//!
//! These are pure free functions shared by every execution tier — the
//! reference interpreter in [`crate::exec`] and the pre-decoded dispatch
//! loops in [`crate::dispatch`] — so tier parity of scalar arithmetic holds
//! by construction. [`dram_traffic`] also lives here because both block
//! interpreters and the merge-time L2 replay charge traffic through it;
//! every counter it touches is a commutative sum, so per-block accounting
//! merges exactly.

use crate::device::DeviceSpec;
use crate::error::FaultKind;
use crate::stats::ExecStats;
use gpucmp_ptx::{CmpOp, Op1, Op2, Op3, Space, Ty};

/// Account DRAM traffic, including the per-partition striping that
/// produces GT200's partition-camping behaviour.
pub(crate) fn dram_traffic(
    device: &DeviceSpec,
    stats: &mut ExecStats,
    addr: u64,
    bytes: u64,
    is_store: bool,
) {
    if is_store {
        stats.dram_write_bytes += bytes;
    } else {
        stats.dram_read_bytes += bytes;
    }
    let parts = device.dram_partitions.max(1) as u64;
    let stripe = addr / 256;
    // Local (spill) space lives in the reserved high range; hardware
    // interleaves it per-lane, which spreads partitions like a hash.
    let p = if device.partition_hashed || addr >= (1u64 << 40) {
        // Fermi-style address hash spreads any pattern evenly.
        (stripe.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % parts
    } else {
        stripe % parts
    };
    stats.partition_bytes[p as usize] += bytes;
}

#[inline]
pub(crate) fn f32b(v: u64) -> f32 {
    f32::from_bits(v as u32)
}

#[inline]
pub(crate) fn f64b(v: u64) -> f64 {
    f64::from_bits(v)
}

#[inline]
pub(crate) fn bf32(v: f32) -> u64 {
    v.to_bits() as u64
}

#[inline]
pub(crate) fn bf64(v: f64) -> u64 {
    v.to_bits()
}

pub(crate) fn float_bits(ty: Ty, v: f64) -> u64 {
    match ty {
        Ty::F32 => bf32(v as f32),
        Ty::F64 => bf64(v),
        // Integer context: immediate numeric value.
        _ => v as i64 as u64,
    }
}

/// Zero/sign-extend a freshly loaded value of type `ty` into a register.
pub(crate) fn load_extend(v: u64, ty: Ty) -> u64 {
    match ty {
        Ty::B8 => v & 0xff,
        Ty::B16 => v & 0xffff,
        Ty::S32 => v as u32 as i32 as i64 as u64,
        Ty::U32 | Ty::B32 | Ty::F32 => v & 0xffff_ffff,
        _ => v,
    }
}

pub(crate) fn alu1(op: Op1, ty: Ty, v: u64) -> u64 {
    match ty {
        Ty::F32 => {
            let x = f32b(v);
            bf32(match op {
                Op1::Neg => -x,
                Op1::Abs => x.abs(),
                Op1::Sqrt => x.sqrt(),
                Op1::Rsqrt => 1.0 / x.sqrt(),
                Op1::Rcp => 1.0 / x,
                Op1::Sin => x.sin(),
                Op1::Cos => x.cos(),
                Op1::Ex2 => x.exp2(),
                Op1::Lg2 => x.log2(),
                Op1::Not => return !v & 0xffff_ffff,
            })
        }
        Ty::F64 => {
            let x = f64b(v);
            bf64(match op {
                Op1::Neg => -x,
                Op1::Abs => x.abs(),
                Op1::Sqrt => x.sqrt(),
                Op1::Rsqrt => 1.0 / x.sqrt(),
                Op1::Rcp => 1.0 / x,
                Op1::Sin => x.sin(),
                Op1::Cos => x.cos(),
                Op1::Ex2 => x.exp2(),
                Op1::Lg2 => x.log2(),
                Op1::Not => return !v,
            })
        }
        Ty::S32 | Ty::U32 | Ty::B32 => {
            let x = v as u32;
            (match op {
                Op1::Neg => (x as i32).wrapping_neg() as u32,
                Op1::Abs => (x as i32).wrapping_abs() as u32,
                Op1::Not => !x,
                _ => unreachable!("SFU op on integer type"),
            }) as u64
        }
        _ => match op {
            Op1::Neg => (v as i64).wrapping_neg() as u64,
            Op1::Abs => (v as i64).wrapping_abs() as u64,
            Op1::Not => !v,
            _ => unreachable!("SFU op on integer type"),
        },
    }
}

pub(crate) fn alu2(op: Op2, ty: Ty, a: u64, b: u64) -> Result<u64, FaultKind> {
    Ok(match ty {
        Ty::F32 => {
            let (x, y) = (f32b(a), f32b(b));
            bf32(match op {
                Op2::Add => x + y,
                Op2::Sub => x - y,
                Op2::Mul => x * y,
                Op2::Div => x / y,
                Op2::Rem => x % y,
                Op2::Min => x.min(y),
                Op2::Max => x.max(y),
                _ => return int_logic(op, a & 0xffff_ffff, b, 32),
            })
        }
        Ty::F64 => {
            let (x, y) = (f64b(a), f64b(b));
            bf64(match op {
                Op2::Add => x + y,
                Op2::Sub => x - y,
                Op2::Mul => x * y,
                Op2::Div => x / y,
                Op2::Rem => x % y,
                Op2::Min => x.min(y),
                Op2::Max => x.max(y),
                _ => return int_logic(op, a, b, 64),
            })
        }
        Ty::S32 => {
            let (x, y) = (a as u32 as i32, b as u32 as i32);
            (match op {
                Op2::Add => x.wrapping_add(y),
                Op2::Sub => x.wrapping_sub(y),
                Op2::Mul => x.wrapping_mul(y),
                Op2::Div => {
                    if y == 0 {
                        return Err(FaultKind::DivByZero);
                    }
                    x.wrapping_div(y)
                }
                Op2::Rem => {
                    if y == 0 {
                        return Err(FaultKind::DivByZero);
                    }
                    x.wrapping_rem(y)
                }
                Op2::Min => x.min(y),
                Op2::Max => x.max(y),
                Op2::Shr => {
                    let sh = (b as u32).min(63);
                    if sh >= 32 {
                        x >> 31
                    } else {
                        x >> sh
                    }
                }
                _ => return int_logic(op, a & 0xffff_ffff, b, 32),
            }) as u32 as u64
        }
        Ty::U32 | Ty::B32 => {
            let (x, y) = (a as u32, b as u32);
            (match op {
                Op2::Add => x.wrapping_add(y),
                Op2::Sub => x.wrapping_sub(y),
                Op2::Mul => x.wrapping_mul(y),
                Op2::Div => {
                    if y == 0 {
                        return Err(FaultKind::DivByZero);
                    }
                    x / y
                }
                Op2::Rem => {
                    if y == 0 {
                        return Err(FaultKind::DivByZero);
                    }
                    x % y
                }
                Op2::Min => x.min(y),
                Op2::Max => x.max(y),
                _ => return int_logic(op, a & 0xffff_ffff, b, 32),
            }) as u64
        }
        Ty::S64 => {
            let (x, y) = (a as i64, b as i64);
            (match op {
                Op2::Add => x.wrapping_add(y),
                Op2::Sub => x.wrapping_sub(y),
                Op2::Mul => x.wrapping_mul(y),
                Op2::Div => {
                    if y == 0 {
                        return Err(FaultKind::DivByZero);
                    }
                    x.wrapping_div(y)
                }
                Op2::Rem => {
                    if y == 0 {
                        return Err(FaultKind::DivByZero);
                    }
                    x.wrapping_rem(y)
                }
                Op2::Min => x.min(y),
                Op2::Max => x.max(y),
                Op2::Shr => {
                    let sh = (b as u32).min(127);
                    if sh >= 64 {
                        x >> 63
                    } else {
                        x >> sh
                    }
                }
                _ => return int_logic(op, a, b, 64),
            }) as u64
        }
        Ty::U64 | Ty::B64 => {
            let (x, y) = (a, b);
            match op {
                Op2::Add => x.wrapping_add(y),
                Op2::Sub => x.wrapping_sub(y),
                Op2::Mul => x.wrapping_mul(y),
                Op2::Div => {
                    if y == 0 {
                        return Err(FaultKind::DivByZero);
                    }
                    x / y
                }
                Op2::Rem => {
                    if y == 0 {
                        return Err(FaultKind::DivByZero);
                    }
                    x % y
                }
                Op2::Min => x.min(y),
                Op2::Max => x.max(y),
                _ => return int_logic(op, a, b, 64),
            }
        }
        Ty::Pred | Ty::B8 | Ty::B16 => {
            return int_logic(op, a, b, 64);
        }
    })
}

/// and/or/xor/shl/shr on raw bits of the given width.
pub(crate) fn int_logic(op: Op2, a: u64, b: u64, width: u32) -> Result<u64, FaultKind> {
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let r = match op {
        Op2::And => a & b,
        Op2::Or => a | b,
        Op2::Xor => a ^ b,
        Op2::Shl => {
            let sh = (b as u32).min(127);
            if sh >= width {
                0
            } else {
                a << sh
            }
        }
        Op2::Shr => {
            let sh = (b as u32).min(127);
            if sh >= width {
                0
            } else {
                (a & mask) >> sh
            }
        }
        _ => unreachable!("int_logic on {op:?}"),
    };
    Ok(r & mask)
}

pub(crate) fn alu3(op: Op3, ty: Ty, a: u64, b: u64, c: u64) -> u64 {
    match ty {
        Ty::F32 => {
            let (x, y, z) = (f32b(a), f32b(b), f32b(c));
            match op {
                // GT200-era mad rounds the intermediate product; the paper's
                // kernels tolerate either, and we use fused for both so the
                // two front-ends produce bit-identical results.
                Op3::Mad | Op3::Fma => bf32(x.mul_add(y, z)),
            }
        }
        Ty::F64 => {
            let (x, y, z) = (f64b(a), f64b(b), f64b(c));
            bf64(x.mul_add(y, z))
        }
        Ty::S32 | Ty::U32 | Ty::B32 => {
            let r = (a as u32).wrapping_mul(b as u32).wrapping_add(c as u32);
            r as u64
        }
        _ => a.wrapping_mul(b).wrapping_add(c),
    }
}

pub(crate) fn compare(cmp: CmpOp, ty: Ty, a: u64, b: u64) -> bool {
    match ty {
        Ty::F32 => {
            let (x, y) = (f32b(a), f32b(b));
            match cmp {
                CmpOp::Eq => x == y,
                CmpOp::Ne => x != y,
                CmpOp::Lt => x < y,
                CmpOp::Le => x <= y,
                CmpOp::Gt => x > y,
                CmpOp::Ge => x >= y,
            }
        }
        Ty::F64 => {
            let (x, y) = (f64b(a), f64b(b));
            match cmp {
                CmpOp::Eq => x == y,
                CmpOp::Ne => x != y,
                CmpOp::Lt => x < y,
                CmpOp::Le => x <= y,
                CmpOp::Gt => x > y,
                CmpOp::Ge => x >= y,
            }
        }
        Ty::S32 => {
            let (x, y) = (a as u32 as i32, b as u32 as i32);
            int_cmp(cmp, x as i64, y as i64)
        }
        Ty::S64 => int_cmp(cmp, a as i64, b as i64),
        Ty::U32 | Ty::B32 => {
            let (x, y) = (a as u32 as u64, b as u32 as u64);
            uint_cmp(cmp, x, y)
        }
        _ => uint_cmp(cmp, a, b),
    }
}

pub(crate) fn int_cmp(cmp: CmpOp, x: i64, y: i64) -> bool {
    match cmp {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
    }
}

pub(crate) fn uint_cmp(cmp: CmpOp, x: u64, y: u64) -> bool {
    match cmp {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
    }
}

/// Convert raw bits between scalar types with numeric semantics.
pub(crate) fn convert(v: u64, sty: Ty, dty: Ty) -> u64 {
    // Decode source to a numeric domain.
    enum Num {
        I(i64),
        U(u64),
        F(f64),
    }
    let n = match sty {
        Ty::F32 => Num::F(f32b(v) as f64),
        Ty::F64 => Num::F(f64b(v)),
        Ty::S32 => Num::I(v as u32 as i32 as i64),
        Ty::S64 => Num::I(v as i64),
        _ => Num::U(v),
    };
    match dty {
        Ty::F32 => bf32(match n {
            Num::I(x) => x as f32,
            Num::U(x) => x as f32,
            Num::F(x) => x as f32,
        }),
        Ty::F64 => bf64(match n {
            Num::I(x) => x as f64,
            Num::U(x) => x as f64,
            Num::F(x) => x,
        }),
        Ty::S32 => {
            (match n {
                Num::I(x) => x as i32,
                Num::U(x) => x as i32,
                Num::F(x) => x as i32,
            }) as u32 as u64
        }
        Ty::S64 => {
            (match n {
                Num::I(x) => x,
                Num::U(x) => x as i64,
                Num::F(x) => x as i64,
            }) as u64
        }
        Ty::U32 | Ty::B32 => {
            (match n {
                Num::I(x) => x as u32,
                Num::U(x) => x as u32,
                Num::F(x) => x as u32,
            }) as u64
        }
        Ty::B8 => {
            (match n {
                Num::I(x) => x as u8,
                Num::U(x) => x as u8,
                Num::F(x) => x as u8,
            }) as u64
        }
        Ty::B16 => {
            (match n {
                Num::I(x) => x as u16,
                Num::U(x) => x as u16,
                Num::F(x) => x as u16,
            }) as u64
        }
        _ => match n {
            Num::I(x) => x as u64,
            Num::U(x) => x,
            Num::F(x) => x as u64,
        },
    }
}

pub(crate) fn read_bytes(buf: &[u8], addr: u64, size: u32, space: Space) -> Result<u64, FaultKind> {
    crate::mem::check_aligned(space, addr, size)?;
    let a = addr as usize;
    if addr
        .checked_add(size as u64)
        .is_none_or(|e| e > buf.len() as u64)
    {
        return Err(FaultKind::OutOfBounds {
            space,
            addr,
            size,
            limit: buf.len() as u64,
        });
    }
    Ok(match size {
        1 => buf[a] as u64,
        2 => u16::from_le_bytes(buf[a..a + 2].try_into().unwrap()) as u64,
        4 => u32::from_le_bytes(buf[a..a + 4].try_into().unwrap()) as u64,
        8 => u64::from_le_bytes(buf[a..a + 8].try_into().unwrap()),
        _ => unreachable!(),
    })
}

pub(crate) fn write_bytes(
    buf: &mut [u8],
    addr: u64,
    size: u32,
    value: u64,
    space: Space,
) -> Result<(), FaultKind> {
    crate::mem::check_aligned(space, addr, size)?;
    let a = addr as usize;
    if addr
        .checked_add(size as u64)
        .is_none_or(|e| e > buf.len() as u64)
    {
        return Err(FaultKind::OutOfBounds {
            space,
            addr,
            size,
            limit: buf.len() as u64,
        });
    }
    match size {
        1 => buf[a] = value as u8,
        2 => buf[a..a + 2].copy_from_slice(&(value as u16).to_le_bytes()),
        4 => buf[a..a + 4].copy_from_slice(&(value as u32).to_le_bytes()),
        8 => buf[a..a + 8].copy_from_slice(&value.to_le_bytes()),
        _ => unreachable!(),
    }
    Ok(())
}

#[cfg(test)]
mod alu_tests {
    use super::*;

    #[test]
    fn f32_arithmetic() {
        let a = bf32(3.0);
        let b = bf32(4.0);
        assert_eq!(f32b(alu2(Op2::Add, Ty::F32, a, b).unwrap()), 7.0);
        assert_eq!(f32b(alu2(Op2::Mul, Ty::F32, a, b).unwrap()), 12.0);
        assert_eq!(f32b(alu2(Op2::Max, Ty::F32, a, b).unwrap()), 4.0);
        assert_eq!(f32b(alu3(Op3::Mad, Ty::F32, a, b, bf32(1.0))), 13.0);
    }

    #[test]
    fn s32_wrapping_and_division() {
        let a = i32::MAX as u32 as u64;
        assert_eq!(
            alu2(Op2::Add, Ty::S32, a, 1).unwrap() as u32 as i32,
            i32::MIN
        );
        assert_eq!(
            alu2(Op2::Div, Ty::S32, (-7i32) as u32 as u64, 2).unwrap() as u32 as i32,
            -3
        );
        assert!(matches!(
            alu2(Op2::Div, Ty::S32, 1, 0),
            Err(FaultKind::DivByZero)
        ));
    }

    #[test]
    fn shifts_clamp() {
        assert_eq!(int_logic(Op2::Shl, 1, 40, 32).unwrap(), 0);
        assert_eq!(int_logic(Op2::Shl, 1, 4, 32).unwrap(), 16);
        assert_eq!(int_logic(Op2::Shr, 0x8000_0000, 31, 32).unwrap(), 1);
        // arithmetic shift for s32
        assert_eq!(
            alu2(Op2::Shr, Ty::S32, (-8i32) as u32 as u64, 1).unwrap() as u32 as i32,
            -4
        );
    }

    #[test]
    fn unsigned_compare_differs_from_signed() {
        let a = 0xffff_ffffu64; // -1 as i32, max as u32
        assert!(compare(CmpOp::Lt, Ty::S32, a, 1));
        assert!(!compare(CmpOp::Lt, Ty::U32, a, 1));
    }

    #[test]
    fn conversions() {
        assert_eq!(f32b(convert(bf32(2.75), Ty::F32, Ty::F32)), 2.75);
        assert_eq!(convert(bf32(2.75), Ty::F32, Ty::S32), 2);
        assert_eq!(convert((-3i32) as u32 as u64, Ty::S32, Ty::S64) as i64, -3);
        assert_eq!(f32b(convert(7, Ty::U32, Ty::F32)), 7.0);
        assert_eq!(f64b(convert(bf32(1.5), Ty::F32, Ty::F64)), 1.5);
        // negative float to signed int truncates toward zero
        assert_eq!(convert(bf32(-2.9), Ty::F32, Ty::S32) as u32 as i32, -2);
    }

    #[test]
    fn load_extension() {
        assert_eq!(load_extend(0xffff_ffff_ffff_ffff, Ty::B8), 0xff);
        assert_eq!(
            load_extend(0x0000_0000_8000_0000, Ty::S32),
            0xffff_ffff_8000_0000
        );
        assert_eq!(load_extend(0xdead_beef_0000_0001, Ty::U32), 1);
    }

    #[test]
    fn sfu_ops() {
        assert_eq!(f32b(alu1(Op1::Sqrt, Ty::F32, bf32(9.0))), 3.0);
        assert!((f32b(alu1(Op1::Rsqrt, Ty::F32, bf32(4.0))) - 0.5).abs() < 1e-6);
        assert_eq!(f32b(alu1(Op1::Neg, Ty::F32, bf32(2.0))), -2.0);
        assert_eq!(alu1(Op1::Not, Ty::B32, 0) & 0xffff_ffff, 0xffff_ffff);
    }
}
