//! The lockstep SIMT interpreter.
//!
//! Warps execute in lockstep over the hardware wavefront width of the
//! device; divergence is handled with an explicit reconvergence stack driven
//! by the `ssy`/`sync` markers the compiler emits for structured control
//! flow (see `gpucmp-ptx` docs). Blocks execute serially in grid order and
//! warps within a block execute round-robin between barriers, so execution
//! is fully deterministic — including the memory corruption produced by
//! warp-size-dependent kernels on 64-wide devices (the paper's Table VI
//! "FL" rows).

use crate::cache::{Cache, CacheAccess};
use crate::device::{Arch, DeviceSpec};
use crate::error::SimError;
use crate::launch::{Dim3, LaunchConfig, TexBinding};
use crate::mem::GlobalMemory;
use crate::stats::ExecStats;
use gpucmp_ptx::{
    Address, AtomOp, CmpOp, Inst, Op1, Op2, Op3, Operand, Reg, ResolvedKernel, Space, Special, Ty,
};

/// Default dynamic warp-instruction budget per launch (runaway-loop guard).
pub const DEFAULT_INST_BUDGET: u64 = 4_000_000_000;

/// Divergence-stack frame (one per `ssy` region).
#[derive(Clone, Debug)]
struct Frame {
    /// Mask to restore when the region fully reconverges.
    restore_mask: u64,
    /// A parked path: (target pc, mask), waiting to run when the current
    /// path reaches the `sync`.
    pending: Option<(usize, u64)>,
}

/// Warp scheduling status.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum WarpStatus {
    Running,
    AtBarrier,
    Done,
}

/// Per-warp execution state.
#[derive(Clone, Debug)]
struct WarpState {
    pc: usize,
    /// Currently active lanes.
    active: u64,
    /// Lanes that exist in this warp (partial last warp of a block).
    full: u64,
    stack: Vec<Frame>,
    status: WarpStatus,
    /// Linear tid of lane 0 of this warp within the block.
    base_tid: u32,
}

/// The interpreter for one kernel launch.
///
/// Borrows the device, kernel and global memory; owns all per-launch cache
/// state and statistics. Use [`crate::launch::launch`] for the one-call
/// wrapper that also produces timing.
pub struct Interpreter<'a> {
    device: &'a DeviceSpec,
    kernel: &'a ResolvedKernel,
    gmem: &'a mut GlobalMemory,
    const_bank: &'a [u8],
    textures: &'a [TexBinding],
    /// Parameter slots as raw 64-bit images.
    param_bytes: Vec<u8>,
    grid: Dim3,
    block: Dim3,
    /// Statistics accumulated across all blocks.
    pub stats: ExecStats,
    /// L2 is device-wide: persistent across blocks within the launch.
    l2: Option<Cache>,
    budget: u64,
    // ---- per-block state (reused across blocks to avoid reallocation) ----
    regs: Vec<u64>,
    shared: Vec<u8>,
    local: Vec<u8>,
    warps: Vec<WarpState>,
    l1: Option<Cache>,
    texc: Option<Cache>,
    constc: Option<Cache>,
    /// Scratch: per-lane addresses of the current memory instruction.
    lane_addr: Vec<(u32, u64)>,
    /// Linear id of the block currently executing (for the local-memory
    /// address model).
    cur_block: u64,
}

impl<'a> Interpreter<'a> {
    /// Build an interpreter for one launch.
    pub fn new(
        device: &'a DeviceSpec,
        kernel: &'a ResolvedKernel,
        gmem: &'a mut GlobalMemory,
        cfg: &'a LaunchConfig,
        const_bank: &'a [u8],
    ) -> Result<Self, SimError> {
        let k = &kernel.kernel;
        if cfg.params.len() != k.params.len() {
            return Err(SimError::BadParamCount {
                expected: k.params.len(),
                got: cfg.params.len(),
            });
        }
        let threads = cfg.block.count();
        if threads == 0 || cfg.grid.count() == 0 {
            return Err(SimError::InvalidLaunch("empty grid or block".into()));
        }
        if threads > device.max_workgroup_size as u64 {
            return Err(SimError::InvalidLaunch(format!(
                "block of {threads} threads exceeds device max work-group size {}",
                device.max_workgroup_size
            )));
        }
        if k.shared_bytes > device.shared_mem_per_cu {
            return Err(SimError::InvalidLaunch(format!(
                "kernel needs {} bytes of shared memory, device CU has {}",
                k.shared_bytes, device.shared_mem_per_cu
            )));
        }
        let mut param_bytes = Vec::with_capacity(cfg.params.len() * 8);
        for p in &cfg.params {
            param_bytes.extend_from_slice(&p.to_le_bytes());
        }
        Ok(Interpreter {
            device,
            kernel,
            gmem,
            const_bank,
            textures: &cfg.textures,
            param_bytes,
            grid: cfg.grid,
            block: cfg.block,
            stats: ExecStats::default(),
            l2: device.l2.map(Cache::from_geom),
            budget: cfg.inst_budget,
            regs: Vec::new(),
            shared: Vec::new(),
            local: Vec::new(),
            warps: Vec::new(),
            l1: None,
            texc: None,
            constc: None,
            lane_addr: Vec::new(),
            cur_block: 0,
        })
    }

    /// Execute every block of the grid. On success the statistics are in
    /// [`Interpreter::stats`].
    pub fn run(&mut self) -> Result<(), SimError> {
        let blocks = self.grid.count();
        let threads = self.block.count() as u32;
        self.stats.blocks = blocks;
        self.stats.threads = blocks * threads as u64;
        // Per-work-item scheduling overhead (CPU/Cell OpenCL runtimes).
        if self.device.wi_overhead_cycles > 0.0 {
            self.stats.issue_millicycles +=
                (self.stats.threads as f64 * self.device.wi_overhead_cycles * 1000.0) as u64;
        }
        let mut linear = 0u64;
        for bz in 0..self.grid.z {
            for by in 0..self.grid.y {
                for bx in 0..self.grid.x {
                    self.cur_block = linear;
                    linear += 1;
                    self.run_block(Dim3::new(bx, by, bz))?;
                }
            }
        }
        Ok(())
    }

    fn run_block(&mut self, ctaid: Dim3) -> Result<(), SimError> {
        let k = &self.kernel.kernel;
        let threads = self.block.count() as u32;
        let num_regs = k.regs.len() as u32;
        let ww = self.device.warp_width;
        // (Re)initialise per-block state.
        self.regs.clear();
        self.regs.resize((threads * num_regs.max(1)) as usize, 0);
        self.shared.clear();
        self.shared.resize(k.shared_bytes as usize, 0);
        self.local.clear();
        self.local.resize((threads * k.local_bytes) as usize, 0);
        // Fresh per-CU caches each block (blocks land on arbitrary CUs; the
        // conservative model gives each block a cold private cache).
        self.l1 = self.device.l1.map(Cache::from_geom);
        self.texc = self.device.tex_cache.map(Cache::from_geom);
        self.constc = self.device.const_cache.map(Cache::from_geom);

        let num_warps = threads.div_ceil(ww);
        self.warps.clear();
        for w in 0..num_warps {
            let base_tid = w * ww;
            let lanes = (threads - base_tid).min(ww);
            let full = if lanes == 64 { u64::MAX } else { (1u64 << lanes) - 1 };
            self.warps.push(WarpState {
                pc: 0,
                active: full,
                full,
                stack: Vec::new(),
                status: WarpStatus::Running,
                base_tid,
            });
        }

        loop {
            let mut progressed = false;
            for w in 0..self.warps.len() {
                if self.warps[w].status == WarpStatus::Running {
                    self.run_warp(w, ctaid)?;
                    progressed = true;
                }
            }
            let all_done = self.warps.iter().all(|w| w.status == WarpStatus::Done);
            if all_done {
                break;
            }
            let none_running = self
                .warps
                .iter()
                .all(|w| w.status != WarpStatus::Running);
            if none_running {
                // Everyone left is at a barrier; release if no warp already
                // finished (CUDA requires all threads to reach the barrier).
                if self.warps.iter().any(|w| w.status == WarpStatus::Done) {
                    return Err(SimError::BarrierDeadlock);
                }
                for w in &mut self.warps {
                    w.status = WarpStatus::Running;
                    w.pc += 1; // step past the bar
                }
                continue;
            }
            if !progressed {
                return Err(SimError::BarrierDeadlock);
            }
        }
        Ok(())
    }

    /// Run one warp until it blocks on a barrier or returns.
    fn run_warp(&mut self, w: usize, ctaid: Dim3) -> Result<(), SimError> {
        loop {
            let pc = self.warps[w].pc;
            let inst = self.kernel.kernel.body[pc];
            if let Inst::Label(_) = inst {
                self.warps[w].pc += 1;
                continue;
            }
            if self.budget == 0 {
                return Err(SimError::InstructionBudgetExceeded(0));
            }
            self.budget -= 1;
            self.stats.warp_instructions += 1;
            self.stats.lane_instructions += self.warps[w].active.count_ones() as u64;
            self.stats.issue_millicycles += self.issue_cost_millicycles(&inst);

            match inst {
                Inst::Label(_) => unreachable!(),
                Inst::Ssy { .. } => {
                    let active = self.warps[w].active;
                    self.warps[w].stack.push(Frame {
                        restore_mask: active,
                        pending: None,
                    });
                    self.warps[w].pc += 1;
                }
                Inst::SyncPoint => {
                    let warp = &mut self.warps[w];
                    let frame = warp
                        .stack
                        .last_mut()
                        .ok_or(SimError::DivergenceError("sync without ssy frame"))?;
                    if let Some((ppc, pmask)) = frame.pending.take() {
                        warp.active = pmask;
                        warp.pc = ppc;
                    } else {
                        warp.active = frame.restore_mask;
                        warp.stack.pop();
                        warp.pc += 1;
                    }
                }
                Inst::Bra { target: _, pred } => {
                    let t = self.kernel.target(pc);
                    let refill = (self.device.taken_branch_cycles * 1000.0) as u64;
                    match pred {
                        None => {
                            self.warps[w].pc = t;
                            self.stats.issue_millicycles += refill;
                        }
                        Some((p, polarity)) => {
                            let taken = self.pred_mask(w, p, polarity);
                            let warp = &mut self.warps[w];
                            let active = warp.active;
                            if taken == active {
                                warp.pc = t;
                                self.stats.issue_millicycles += refill;
                            } else if taken == 0 {
                                warp.pc += 1;
                            } else {
                                self.stats.divergent_branches += 1;
                                let frame = warp.stack.last_mut().ok_or(
                                    SimError::DivergenceError("divergent branch without ssy"),
                                )?;
                                self.stats.issue_millicycles += refill;
                                match &mut frame.pending {
                                    None => frame.pending = Some((t, taken)),
                                    Some((ppc, pmask)) if *ppc == t => {
                                        *pmask |= taken;
                                    }
                                    Some(_) => {
                                        return Err(SimError::DivergenceError(
                                            "conflicting divergence targets in one region",
                                        ))
                                    }
                                }
                                warp.active = active & !taken;
                                warp.pc += 1;
                            }
                        }
                    }
                }
                Inst::Bar => {
                    let warp = &mut self.warps[w];
                    if warp.active != warp.full {
                        return Err(SimError::DivergenceError(
                            "barrier reached by divergent warp",
                        ));
                    }
                    self.stats.barriers += 1;
                    self.stats.issue_millicycles +=
                        (self.device.barrier_cost_cycles * 1000.0) as u64;
                    warp.status = WarpStatus::AtBarrier;
                    return Ok(()); // pc advanced at release
                }
                Inst::Ret => {
                    let warp = &mut self.warps[w];
                    if !warp.stack.is_empty() {
                        return Err(SimError::DivergenceError("ret inside ssy region"));
                    }
                    warp.status = WarpStatus::Done;
                    return Ok(());
                }
                _ => {
                    self.exec_lanes(w, ctaid, &inst)?;
                    self.warps[w].pc += 1;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Lane-level execution
    // ------------------------------------------------------------------

    /// Execute a data instruction for every active lane of warp `w`.
    fn exec_lanes(&mut self, w: usize, ctaid: Dim3, inst: &Inst) -> Result<(), SimError> {
        // Memory instructions need transaction modelling over the whole
        // warp; everything else is a pure per-lane register update.
        match inst {
            Inst::Ld { space, ty, d, addr } => self.exec_ld(w, ctaid, *space, *ty, *d, *addr),
            Inst::St { space, ty, addr, a } => self.exec_st(w, ctaid, *space, *ty, *addr, *a),
            Inst::Tex { ty, d, tex, idx } => self.exec_tex(w, ctaid, *ty, *d, *tex, *idx),
            Inst::Atom {
                space,
                op,
                ty,
                d,
                addr,
                b,
                c,
            } => self.exec_atom(w, ctaid, *space, *op, *ty, *d, *addr, *b, *c),
            _ => {
                let active = self.warps[w].active;
                let base = self.warps[w].base_tid;
                let ww = self.device.warp_width;
                for lane in 0..ww {
                    if active & (1u64 << lane) == 0 {
                        continue;
                    }
                    let tid = base + lane;
                    self.exec_scalar(tid, ctaid, inst)?;
                }
                Ok(())
            }
        }
    }

    /// Pure register-to-register execution for one thread.
    fn exec_scalar(&mut self, tid: u32, ctaid: Dim3, inst: &Inst) -> Result<(), SimError> {
        match *inst {
            Inst::Mov { ty, d, a } => {
                let v = load_extend(self.eval(tid, ctaid, a, ty), ty);
                self.set_reg(tid, d, v);
            }
            Inst::Cvt { dty, sty, d, a } => {
                let v = self.eval(tid, ctaid, a, sty);
                self.set_reg(tid, d, convert(v, sty, dty));
            }
            Inst::Un { op, ty, d, a } => {
                let v = self.eval(tid, ctaid, a, ty);
                let r = alu1(op, ty, v);
                if op == Op1::Sqrt || op == Op1::Rsqrt || op == Op1::Rcp {
                    self.stats.flops += 1;
                }
                self.set_reg(tid, d, r);
            }
            Inst::Bin { op, ty, d, a, b } => {
                let va = self.eval(tid, ctaid, a, ty);
                let vb = self.eval(tid, ctaid, b, ty);
                let r = alu2(op, ty, va, vb)?;
                if ty.is_float() && !op.is_logic() && !op.is_shift() {
                    self.stats.flops += 1;
                }
                self.set_reg(tid, d, r);
            }
            Inst::Tern { op, ty, d, a, b, c } => {
                let va = self.eval(tid, ctaid, a, ty);
                let vb = self.eval(tid, ctaid, b, ty);
                let vc = self.eval(tid, ctaid, c, ty);
                let r = alu3(op, ty, va, vb, vc);
                if ty.is_float() {
                    self.stats.flops += 2;
                }
                self.set_reg(tid, d, r);
            }
            Inst::Setp { cmp, ty, d, a, b } => {
                let va = self.eval(tid, ctaid, a, ty);
                let vb = self.eval(tid, ctaid, b, ty);
                let r = compare(cmp, ty, va, vb) as u64;
                self.set_reg(tid, d, r);
            }
            Inst::Selp { ty, d, a, b, p } => {
                let va = self.eval(tid, ctaid, a, ty);
                let vb = self.eval(tid, ctaid, b, ty);
                let vp = self.get_reg(tid, p);
                self.set_reg(tid, d, load_extend(if vp != 0 { va } else { vb }, ty));
            }
            _ => unreachable!("exec_scalar on non-scalar instruction"),
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Memory instructions
    // ------------------------------------------------------------------

    /// Gather the (lane, byte-address) pairs of the current warp memory op
    /// into `self.lane_addr`.
    fn gather_addresses(&mut self, w: usize, ctaid: Dim3, addr: Address) {
        let active = self.warps[w].active;
        let base = self.warps[w].base_tid;
        let ww = self.device.warp_width;
        self.lane_addr.clear();
        for lane in 0..ww {
            if active & (1u64 << lane) == 0 {
                continue;
            }
            let tid = base + lane;
            let b = self.eval(tid, ctaid, addr.base, Ty::U64);
            self.lane_addr
                .push((tid, b.wrapping_add(addr.offset as u64)));
        }
    }

    fn exec_ld(
        &mut self,
        w: usize,
        ctaid: Dim3,
        space: Space,
        ty: Ty,
        d: Reg,
        addr: Address,
    ) -> Result<(), SimError> {
        self.gather_addresses(w, ctaid, addr);
        let size = ty.size_bytes();
        // Cost model first (needs the address vector), then functional reads.
        self.account_memory(space, size, false);
        let threads = self.block.count() as u32;
        for i in 0..self.lane_addr.len() {
            let (tid, a) = self.lane_addr[i];
            let v = self.space_read(space, tid, threads, a, size)?;
            let v = load_extend(v, ty);
            self.set_reg(tid, d, v);
        }
        Ok(())
    }

    fn exec_st(
        &mut self,
        w: usize,
        ctaid: Dim3,
        space: Space,
        ty: Ty,
        addr: Address,
        a: Operand,
    ) -> Result<(), SimError> {
        self.gather_addresses(w, ctaid, addr);
        let size = ty.size_bytes();
        self.account_memory(space, size, true);
        let threads = self.block.count() as u32;
        for i in 0..self.lane_addr.len() {
            let (tid, ad) = self.lane_addr[i];
            let v = self.eval(tid, ctaid, a, ty);
            self.space_write(space, tid, threads, ad, size, v)?;
        }
        Ok(())
    }

    fn exec_tex(
        &mut self,
        w: usize,
        ctaid: Dim3,
        ty: Ty,
        d: Reg,
        tex: gpucmp_ptx::TexRef,
        idx: Operand,
    ) -> Result<(), SimError> {
        let binding = self
            .textures
            .get(tex.0 as usize)
            .copied()
            .ok_or(SimError::UnboundTexture(tex.0))?;
        let size = ty.size_bytes();
        let active = self.warps[w].active;
        let base = self.warps[w].base_tid;
        let ww = self.device.warp_width;
        self.lane_addr.clear();
        for lane in 0..ww {
            if active & (1u64 << lane) == 0 {
                continue;
            }
            let tid = base + lane;
            let i = self.eval(tid, ctaid, idx, Ty::S32) as u32 as i64;
            if i < 0 || i as u64 >= binding.elems {
                return Err(SimError::TextureOutOfRange {
                    slot: tex.0,
                    index: i,
                    len: binding.elems,
                });
            }
            self.lane_addr
                .push((tid, binding.ptr.0 + i as u64 * size as u64));
        }
        // Texture path: distinct lines through the texture cache; misses go
        // to L2 (Fermi) or DRAM (GT200/Cypress).
        let line = self
            .texc
            .as_ref()
            .map(|c| c.line_bytes())
            .unwrap_or(self.device.segment_bytes as u64);
        let mut lines: Vec<u64> = self.lane_addr.iter().map(|&(_, a)| a / line).collect();
        lines.sort_unstable();
        lines.dedup();
        for l in lines {
            match &mut self.texc {
                Some(c) => match c.access(l * line) {
                    CacheAccess::Hit => self.stats.tex_hits += 1,
                    CacheAccess::Miss => {
                        self.stats.tex_misses += 1;
                        self.fill_from_l2_or_dram(l * line, line, false);
                    }
                },
                None => {
                    // No texture cache on this device: straight to DRAM.
                    self.stats.tex_misses += 1;
                    self.stats.gmem_transactions += 1;
                    self.dram_traffic(l * line, line, false);
                }
            }
        }
        for i in 0..self.lane_addr.len() {
            let (tid, a) = self.lane_addr[i];
            let v = self.gmem.read(a, size)?;
            self.set_reg(tid, d, load_extend(v, ty));
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_atom(
        &mut self,
        w: usize,
        ctaid: Dim3,
        space: Space,
        op: AtomOp,
        ty: Ty,
        d: Reg,
        addr: Address,
        b: Operand,
        c: Operand,
    ) -> Result<(), SimError> {
        self.gather_addresses(w, ctaid, addr);
        let size = ty.size_bytes();
        // Atomics serialise per lane: cost one transaction per lane.
        self.stats.atomics += self.lane_addr.len() as u64;
        if space == Space::Global {
            self.stats.gmem_transactions += self.lane_addr.len() as u64;
            for i in 0..self.lane_addr.len() {
                let (_, a) = self.lane_addr[i];
                self.dram_traffic(a, size as u64, false);
                self.dram_traffic(a, size as u64, true);
            }
        } else {
            self.stats.shared_cycles += self.lane_addr.len() as u64;
        }
        let threads = self.block.count() as u32;
        for i in 0..self.lane_addr.len() {
            let (tid, a) = self.lane_addr[i];
            let old = self.space_read(space, tid, threads, a, size)?;
            let old = load_extend(old, ty);
            let vb = self.eval(tid, ctaid, b, ty);
            let vc = self.eval(tid, ctaid, c, ty);
            let new = match op {
                AtomOp::Add => alu2(Op2::Add, ty, old, vb)?,
                AtomOp::Min => alu2(Op2::Min, ty, old, vb)?,
                AtomOp::Max => alu2(Op2::Max, ty, old, vb)?,
                AtomOp::Exch => vb,
                AtomOp::Cas => {
                    if old == vc {
                        vb
                    } else {
                        old
                    }
                }
            };
            self.space_write(space, tid, threads, a, size, new)?;
            self.set_reg(tid, d, old);
        }
        Ok(())
    }

    /// Transaction/cache/bank accounting for a warp-wide global, shared,
    /// local, const or param access whose addresses are in `self.lane_addr`.
    fn account_memory(&mut self, space: Space, size: u32, is_store: bool) {
        match space {
            Space::Global => {
                self.stats.gmem_instructions += 1;
                let group = self.device.coalesce_group.max(1) as usize;
                let seg = self.device.segment_bytes.max(32) as u64;
                // For each coalesce group of lanes, count distinct segments.
                let mut i = 0;
                let mut segs: Vec<u64> = Vec::with_capacity(8);
                while i < self.lane_addr.len() {
                    let end = (i + group).min(self.lane_addr.len());
                    segs.clear();
                    for &(_, a) in &self.lane_addr[i..end] {
                        // every byte the access touches (may straddle)
                        let first = a / seg;
                        let last = (a + size as u64 - 1) / seg;
                        for s in first..=last {
                            segs.push(s);
                        }
                    }
                    segs.sort_unstable();
                    segs.dedup();
                    for &s in segs.iter() {
                        self.stats.gmem_transactions += 1;
                        self.global_transaction(s * seg, seg, is_store);
                    }
                    i = end;
                }
            }
            Space::Shared => {
                // Bank-conflict model: within each banking group (half-warp
                // on GT200, warp on Fermi), the access takes as many cycles
                // as the most-contended bank has distinct words.
                let banks = self.device.shared_banks.max(1) as u64;
                let group = self.device.coalesce_group.max(1) as usize;
                let scale = self.device.shared_access_scale;
                let mut i = 0;
                while i < self.lane_addr.len() {
                    let end = (i + group).min(self.lane_addr.len());
                    let mut degree = 1u64;
                    if banks > 1 {
                        // words per bank
                        let mut words: Vec<(u64, u64)> = self.lane_addr[i..end]
                            .iter()
                            .map(|&(_, a)| {
                                let word = a / 4;
                                (word % banks, word)
                            })
                            .collect();
                        words.sort_unstable();
                        words.dedup();
                        let mut run = 0u64;
                        let mut prev_bank = u64::MAX;
                        for (bank, _) in words {
                            if bank == prev_bank {
                                run += 1;
                            } else {
                                run = 1;
                                prev_bank = bank;
                            }
                            degree = degree.max(run);
                        }
                    }
                    let cycles = (degree as f64 * scale).ceil() as u64;
                    self.stats.shared_cycles += cycles;
                    if degree > 1 {
                        self.stats.shared_conflict_cycles += cycles - 1;
                    }
                    i = end;
                }
            }
            Space::Local => {
                // Local memory is physically lane-interleaved in device
                // memory, so a warp's access to one per-thread slot is a
                // fully coalesced burst. Synthesise stable per-(block,
                // slot) addresses in a reserved high range: re-touching a
                // slot hits the Fermi L1, while cacheless devices pay DRAM
                // each time — the asymmetry behind the paper's Fig. 7.
                let bytes = self.lane_addr.len() as u64 * size as u64;
                let seg = self.device.segment_bytes.max(32) as u64;
                let txns = bytes.div_ceil(seg);
                let slot = self.lane_addr.first().map(|&(_, a)| a).unwrap_or(0);
                let block_span = (self.kernel.kernel.local_bytes as u64 + 8)
                    * self.block.count().max(1);
                let base = (1u64 << 40)
                    + self.cur_block * block_span.next_multiple_of(seg)
                    + slot * self.block.count().max(1);
                for t in 0..txns {
                    self.stats.gmem_transactions += 1;
                    self.global_transaction(base + t * seg, seg, is_store);
                }
            }
            Space::Const => {
                // Distinct addresses serialise; same-address is broadcast.
                let mut addrs: Vec<u64> = self.lane_addr.iter().map(|&(_, a)| a).collect();
                addrs.sort_unstable();
                addrs.dedup();
                self.stats.const_serializations += addrs.len() as u64 - 1;
                let line = self
                    .constc
                    .as_ref()
                    .map(|cc| cc.line_bytes())
                    .unwrap_or(64);
                let mut lines: Vec<u64> = addrs.iter().map(|a| a / line).collect();
                lines.dedup();
                for l in lines {
                    match &mut self.constc {
                        Some(cc) => {
                            if cc.access(l * line) == CacheAccess::Miss {
                                self.stats.const_misses += 1;
                                self.dram_traffic(l * line, line, false);
                            }
                        }
                        None => {
                            self.stats.const_misses += 1;
                            self.dram_traffic(l * line, line, false);
                        }
                    }
                }
            }
            Space::Param => {
                // Parameter loads hit a tiny dedicated buffer: free beyond
                // the issue cost.
            }
        }
    }

    /// One DRAM-side transaction of `bytes` at `addr` through the cache
    /// hierarchy (L1 for loads on Fermi, then L2, then DRAM).
    fn global_transaction(&mut self, addr: u64, bytes: u64, is_store: bool) {
        if !is_store {
            if let Some(l1) = &mut self.l1 {
                match l1.access(addr) {
                    CacheAccess::Hit => {
                        self.stats.l1_hits += 1;
                        return;
                    }
                    CacheAccess::Miss => {
                        self.stats.l1_misses += 1;
                    }
                }
            }
        }
        self.fill_from_l2_or_dram(addr, bytes, is_store);
    }

    fn fill_from_l2_or_dram(&mut self, addr: u64, bytes: u64, is_store: bool) {
        if let Some(l2) = &mut self.l2 {
            self.stats.l2_touched_bytes += bytes;
            match l2.access(addr) {
                CacheAccess::Hit => {
                    self.stats.l2_hits += 1;
                    return;
                }
                CacheAccess::Miss => {
                    self.stats.l2_misses += 1;
                }
            }
        }
        self.dram_traffic(addr, bytes, is_store);
    }

    /// Account DRAM traffic, including the per-partition striping that
    /// produces GT200's partition-camping behaviour.
    fn dram_traffic(&mut self, addr: u64, bytes: u64, is_store: bool) {
        if is_store {
            self.stats.dram_write_bytes += bytes;
        } else {
            self.stats.dram_read_bytes += bytes;
        }
        let parts = self.device.dram_partitions.max(1) as u64;
        let stripe = addr / 256;
        // Local (spill) space lives in the reserved high range; hardware
        // interleaves it per-lane, which spreads partitions like a hash.
        let p = if self.device.partition_hashed || addr >= (1u64 << 40) {
            // Fermi-style address hash spreads any pattern evenly.
            (stripe.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % parts
        } else {
            stripe % parts
        };
        self.stats.partition_bytes[p as usize] += bytes;
    }

    // ------------------------------------------------------------------
    // State-space functional access
    // ------------------------------------------------------------------

    fn space_read(
        &self,
        space: Space,
        tid: u32,
        _threads: u32,
        addr: u64,
        size: u32,
    ) -> Result<u64, SimError> {
        match space {
            Space::Global => self.gmem.read(addr, size),
            Space::Shared => read_bytes(&self.shared, addr, size, Space::Shared),
            Space::Local => {
                let lb = self.kernel.kernel.local_bytes as u64;
                let base = tid as u64 * lb;
                if addr + size as u64 > lb {
                    return Err(SimError::OutOfBounds {
                        space: Space::Local,
                        addr,
                        size,
                        limit: lb,
                    });
                }
                read_bytes(&self.local, base + addr, size, Space::Local)
            }
            Space::Const => read_bytes(self.const_bank, addr, size, Space::Const),
            Space::Param => read_bytes(&self.param_bytes, addr, size, Space::Param),
        }
    }

    fn space_write(
        &mut self,
        space: Space,
        tid: u32,
        _threads: u32,
        addr: u64,
        size: u32,
        value: u64,
    ) -> Result<(), SimError> {
        match space {
            Space::Global => self.gmem.write(addr, size, value),
            Space::Shared => write_bytes(&mut self.shared, addr, size, value, Space::Shared),
            Space::Local => {
                let lb = self.kernel.kernel.local_bytes as u64;
                let base = tid as u64 * lb;
                if addr + size as u64 > lb {
                    return Err(SimError::OutOfBounds {
                        space: Space::Local,
                        addr,
                        size,
                        limit: lb,
                    });
                }
                write_bytes(&mut self.local, base + addr, size, value, Space::Local)
            }
            Space::Const => Err(SimError::InvalidKernel("store to const space".into())),
            Space::Param => Err(SimError::InvalidKernel("store to param space".into())),
        }
    }

    // ------------------------------------------------------------------
    // Operand / register plumbing
    // ------------------------------------------------------------------

    #[inline]
    fn get_reg(&self, tid: u32, r: Reg) -> u64 {
        self.regs[(tid as usize) * self.kernel.kernel.regs.len() + r.index()]
    }

    #[inline]
    fn set_reg(&mut self, tid: u32, r: Reg, v: u64) {
        let n = self.kernel.kernel.regs.len();
        self.regs[(tid as usize) * n + r.index()] = v;
    }

    /// Evaluate an operand in the context of type `ty`, returning raw bits.
    fn eval(&self, tid: u32, ctaid: Dim3, op: Operand, ty: Ty) -> u64 {
        match op {
            Operand::Reg(r) => self.get_reg(tid, r),
            Operand::ImmI(v) => {
                if ty.is_float() {
                    float_bits(ty, v as f64)
                } else {
                    v as u64
                }
            }
            Operand::ImmF(v) => float_bits(ty, v),
            Operand::Special(s) => self.special(tid, ctaid, s),
        }
    }

    fn special(&self, tid: u32, ctaid: Dim3, s: Special) -> u64 {
        let b = self.block;
        let tz = tid / (b.x * b.y);
        let rem = tid % (b.x * b.y);
        let ty_ = rem / b.x;
        let tx = rem % b.x;
        let ww = self.device.warp_width;
        (match s {
            Special::TidX => tx,
            Special::TidY => ty_,
            Special::TidZ => tz,
            Special::NtidX => b.x,
            Special::NtidY => b.y,
            Special::NtidZ => b.z,
            Special::CtaidX => ctaid.x,
            Special::CtaidY => ctaid.y,
            Special::CtaidZ => ctaid.z,
            Special::NctaidX => self.grid.x,
            Special::NctaidY => self.grid.y,
            Special::NctaidZ => self.grid.z,
            Special::LaneId => tid % ww,
            Special::WarpId => tid / ww,
            Special::WarpSize => ww,
        }) as u64
    }

    /// Mask of active lanes whose predicate register `p` equals `polarity`.
    fn pred_mask(&self, w: usize, p: Reg, polarity: bool) -> u64 {
        let warp = &self.warps[w];
        let ww = self.device.warp_width;
        let mut mask = 0u64;
        for lane in 0..ww {
            let bit = 1u64 << lane;
            if warp.active & bit == 0 {
                continue;
            }
            let v = self.get_reg(warp.base_tid + lane, p) != 0;
            if v == polarity {
                mask |= bit;
            }
        }
        mask
    }

    /// Issue-cost table, in millicycles per warp instruction.
    fn issue_cost_millicycles(&self, inst: &Inst) -> u64 {
        let d = self.device;
        let float_scale = d.arith_cycle_scale;
        let f64_penalty = match d.arch {
            Arch::Gt200 => 8.0,
            Arch::Fermi => 4.0,
            _ => 4.0,
        };
        let cost_f = |c: f64| (c * 1000.0) as u64;
        match inst {
            Inst::Label(_) | Inst::Ssy { .. } | Inst::SyncPoint => 0,
            Inst::Mov { .. } | Inst::Cvt { .. } => 1000,
            Inst::Setp { .. } | Inst::Selp { .. } | Inst::Bra { .. } => 1000,
            Inst::Un { op, ty, .. } => {
                if op.is_sfu() {
                    cost_f(4.0)
                } else if ty.is_float() {
                    let base = if ty.is_wide() { f64_penalty } else { 1.0 };
                    cost_f(base * float_scale)
                } else {
                    1000
                }
            }
            Inst::Bin { op, ty, .. } => match op {
                Op2::Div | Op2::Rem => {
                    if ty.is_float() {
                        cost_f(8.0)
                    } else {
                        cost_f(16.0)
                    }
                }
                Op2::Mul => {
                    if ty.is_float() {
                        let base = if ty.is_wide() { f64_penalty } else { 1.0 };
                        cost_f(base * float_scale)
                    } else if d.arch == Arch::Gt200 {
                        cost_f(4.0) // 32-bit integer mul is slow on GT200
                    } else {
                        1000
                    }
                }
                _ => {
                    if ty.is_float() {
                        let base = if ty.is_wide() { f64_penalty } else { 1.0 };
                        cost_f(base * float_scale)
                    } else {
                        1000
                    }
                }
            },
            Inst::Tern { ty, .. } => {
                if ty.is_float() {
                    let base = if ty.is_wide() { f64_penalty } else { 1.0 };
                    cost_f(base * float_scale)
                } else if d.arch == Arch::Gt200 {
                    cost_f(4.0)
                } else {
                    1000
                }
            }
            Inst::Ld { .. } | Inst::St { .. } | Inst::Tex { .. } => 1000,
            Inst::Atom { .. } => cost_f(4.0),
            Inst::Bar => 1000, // barrier_cost added separately
            Inst::Ret => 1000,
        }
    }
}

// ----------------------------------------------------------------------
// Scalar ALU semantics
// ----------------------------------------------------------------------

#[inline]
fn f32b(v: u64) -> f32 {
    f32::from_bits(v as u32)
}

#[inline]
fn f64b(v: u64) -> f64 {
    f64::from_bits(v)
}

#[inline]
fn bf32(v: f32) -> u64 {
    v.to_bits() as u64
}

#[inline]
fn bf64(v: f64) -> u64 {
    v.to_bits()
}

fn float_bits(ty: Ty, v: f64) -> u64 {
    match ty {
        Ty::F32 => bf32(v as f32),
        Ty::F64 => bf64(v),
        // Integer context: immediate numeric value.
        _ => v as i64 as u64,
    }
}

/// Zero/sign-extend a freshly loaded value of type `ty` into a register.
fn load_extend(v: u64, ty: Ty) -> u64 {
    match ty {
        Ty::B8 => v & 0xff,
        Ty::B16 => v & 0xffff,
        Ty::S32 => v as u32 as i32 as i64 as u64,
        Ty::U32 | Ty::B32 | Ty::F32 => v & 0xffff_ffff,
        _ => v,
    }
}

fn alu1(op: Op1, ty: Ty, v: u64) -> u64 {
    match ty {
        Ty::F32 => {
            let x = f32b(v);
            bf32(match op {
                Op1::Neg => -x,
                Op1::Abs => x.abs(),
                Op1::Sqrt => x.sqrt(),
                Op1::Rsqrt => 1.0 / x.sqrt(),
                Op1::Rcp => 1.0 / x,
                Op1::Sin => x.sin(),
                Op1::Cos => x.cos(),
                Op1::Ex2 => x.exp2(),
                Op1::Lg2 => x.log2(),
                Op1::Not => return !v & 0xffff_ffff,
            })
        }
        Ty::F64 => {
            let x = f64b(v);
            bf64(match op {
                Op1::Neg => -x,
                Op1::Abs => x.abs(),
                Op1::Sqrt => x.sqrt(),
                Op1::Rsqrt => 1.0 / x.sqrt(),
                Op1::Rcp => 1.0 / x,
                Op1::Sin => x.sin(),
                Op1::Cos => x.cos(),
                Op1::Ex2 => x.exp2(),
                Op1::Lg2 => x.log2(),
                Op1::Not => return !v,
            })
        }
        Ty::S32 | Ty::U32 | Ty::B32 => {
            let x = v as u32;
            (match op {
                Op1::Neg => (x as i32).wrapping_neg() as u32,
                Op1::Abs => (x as i32).wrapping_abs() as u32,
                Op1::Not => !x,
                _ => unreachable!("SFU op on integer type"),
            }) as u64
        }
        _ => match op {
            Op1::Neg => (v as i64).wrapping_neg() as u64,
            Op1::Abs => (v as i64).wrapping_abs() as u64,
            Op1::Not => !v,
            _ => unreachable!("SFU op on integer type"),
        },
    }
}

fn alu2(op: Op2, ty: Ty, a: u64, b: u64) -> Result<u64, SimError> {
    Ok(match ty {
        Ty::F32 => {
            let (x, y) = (f32b(a), f32b(b));
            bf32(match op {
                Op2::Add => x + y,
                Op2::Sub => x - y,
                Op2::Mul => x * y,
                Op2::Div => x / y,
                Op2::Rem => x % y,
                Op2::Min => x.min(y),
                Op2::Max => x.max(y),
                _ => return int_logic(op, a & 0xffff_ffff, b, 32),
            })
        }
        Ty::F64 => {
            let (x, y) = (f64b(a), f64b(b));
            bf64(match op {
                Op2::Add => x + y,
                Op2::Sub => x - y,
                Op2::Mul => x * y,
                Op2::Div => x / y,
                Op2::Rem => x % y,
                Op2::Min => x.min(y),
                Op2::Max => x.max(y),
                _ => return int_logic(op, a, b, 64),
            })
        }
        Ty::S32 => {
            let (x, y) = (a as u32 as i32, b as u32 as i32);
            (match op {
                Op2::Add => x.wrapping_add(y),
                Op2::Sub => x.wrapping_sub(y),
                Op2::Mul => x.wrapping_mul(y),
                Op2::Div => {
                    if y == 0 {
                        return Err(SimError::DivByZero);
                    }
                    x.wrapping_div(y)
                }
                Op2::Rem => {
                    if y == 0 {
                        return Err(SimError::DivByZero);
                    }
                    x.wrapping_rem(y)
                }
                Op2::Min => x.min(y),
                Op2::Max => x.max(y),
                Op2::Shr => {
                    let sh = (b as u32).min(63);
                    if sh >= 32 {
                        x >> 31
                    } else {
                        x >> sh
                    }
                }
                _ => return int_logic(op, a & 0xffff_ffff, b, 32),
            }) as u32 as u64
        }
        Ty::U32 | Ty::B32 => {
            let (x, y) = (a as u32, b as u32);
            (match op {
                Op2::Add => x.wrapping_add(y),
                Op2::Sub => x.wrapping_sub(y),
                Op2::Mul => x.wrapping_mul(y),
                Op2::Div => {
                    if y == 0 {
                        return Err(SimError::DivByZero);
                    }
                    x / y
                }
                Op2::Rem => {
                    if y == 0 {
                        return Err(SimError::DivByZero);
                    }
                    x % y
                }
                Op2::Min => x.min(y),
                Op2::Max => x.max(y),
                _ => return int_logic(op, a & 0xffff_ffff, b, 32),
            }) as u64
        }
        Ty::S64 => {
            let (x, y) = (a as i64, b as i64);
            (match op {
                Op2::Add => x.wrapping_add(y),
                Op2::Sub => x.wrapping_sub(y),
                Op2::Mul => x.wrapping_mul(y),
                Op2::Div => {
                    if y == 0 {
                        return Err(SimError::DivByZero);
                    }
                    x.wrapping_div(y)
                }
                Op2::Rem => {
                    if y == 0 {
                        return Err(SimError::DivByZero);
                    }
                    x.wrapping_rem(y)
                }
                Op2::Min => x.min(y),
                Op2::Max => x.max(y),
                Op2::Shr => {
                    let sh = (b as u32).min(127);
                    if sh >= 64 {
                        x >> 63
                    } else {
                        x >> sh
                    }
                }
                _ => return int_logic(op, a, b, 64),
            }) as u64
        }
        Ty::U64 | Ty::B64 => {
            let (x, y) = (a, b);
            match op {
                Op2::Add => x.wrapping_add(y),
                Op2::Sub => x.wrapping_sub(y),
                Op2::Mul => x.wrapping_mul(y),
                Op2::Div => {
                    if y == 0 {
                        return Err(SimError::DivByZero);
                    }
                    x / y
                }
                Op2::Rem => {
                    if y == 0 {
                        return Err(SimError::DivByZero);
                    }
                    x % y
                }
                Op2::Min => x.min(y),
                Op2::Max => x.max(y),
                _ => return int_logic(op, a, b, 64),
            }
        }
        Ty::Pred | Ty::B8 | Ty::B16 => {
            return int_logic(op, a, b, 64);
        }
    })
}

/// and/or/xor/shl/shr on raw bits of the given width.
fn int_logic(op: Op2, a: u64, b: u64, width: u32) -> Result<u64, SimError> {
    let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
    let r = match op {
        Op2::And => a & b,
        Op2::Or => a | b,
        Op2::Xor => a ^ b,
        Op2::Shl => {
            let sh = (b as u32).min(127);
            if sh >= width {
                0
            } else {
                a << sh
            }
        }
        Op2::Shr => {
            let sh = (b as u32).min(127);
            if sh >= width {
                0
            } else {
                (a & mask) >> sh
            }
        }
        _ => unreachable!("int_logic on {op:?}"),
    };
    Ok(r & mask)
}

fn alu3(op: Op3, ty: Ty, a: u64, b: u64, c: u64) -> u64 {
    match ty {
        Ty::F32 => {
            let (x, y, z) = (f32b(a), f32b(b), f32b(c));
            match op {
                // GT200-era mad rounds the intermediate product; the paper's
                // kernels tolerate either, and we use fused for both so the
                // two front-ends produce bit-identical results.
                Op3::Mad | Op3::Fma => bf32(x.mul_add(y, z)),
            }
        }
        Ty::F64 => {
            let (x, y, z) = (f64b(a), f64b(b), f64b(c));
            bf64(x.mul_add(y, z))
        }
        Ty::S32 | Ty::U32 | Ty::B32 => {
            let r = (a as u32).wrapping_mul(b as u32).wrapping_add(c as u32);
            r as u64
        }
        _ => a.wrapping_mul(b).wrapping_add(c),
    }
}

fn compare(cmp: CmpOp, ty: Ty, a: u64, b: u64) -> bool {
    match ty {
        Ty::F32 => {
            let (x, y) = (f32b(a), f32b(b));
            match cmp {
                CmpOp::Eq => x == y,
                CmpOp::Ne => x != y,
                CmpOp::Lt => x < y,
                CmpOp::Le => x <= y,
                CmpOp::Gt => x > y,
                CmpOp::Ge => x >= y,
            }
        }
        Ty::F64 => {
            let (x, y) = (f64b(a), f64b(b));
            match cmp {
                CmpOp::Eq => x == y,
                CmpOp::Ne => x != y,
                CmpOp::Lt => x < y,
                CmpOp::Le => x <= y,
                CmpOp::Gt => x > y,
                CmpOp::Ge => x >= y,
            }
        }
        Ty::S32 => {
            let (x, y) = (a as u32 as i32, b as u32 as i32);
            int_cmp(cmp, x as i64, y as i64)
        }
        Ty::S64 => int_cmp(cmp, a as i64, b as i64),
        Ty::U32 | Ty::B32 => {
            let (x, y) = (a as u32 as u64, b as u32 as u64);
            uint_cmp(cmp, x, y)
        }
        _ => uint_cmp(cmp, a, b),
    }
}

fn int_cmp(cmp: CmpOp, x: i64, y: i64) -> bool {
    match cmp {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
    }
}

fn uint_cmp(cmp: CmpOp, x: u64, y: u64) -> bool {
    match cmp {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
    }
}

/// Convert raw bits between scalar types with numeric semantics.
fn convert(v: u64, sty: Ty, dty: Ty) -> u64 {
    // Decode source to a numeric domain.
    enum Num {
        I(i64),
        U(u64),
        F(f64),
    }
    let n = match sty {
        Ty::F32 => Num::F(f32b(v) as f64),
        Ty::F64 => Num::F(f64b(v)),
        Ty::S32 => Num::I(v as u32 as i32 as i64),
        Ty::S64 => Num::I(v as i64),
        _ => Num::U(v),
    };
    match dty {
        Ty::F32 => bf32(match n {
            Num::I(x) => x as f32,
            Num::U(x) => x as f32,
            Num::F(x) => x as f32,
        }),
        Ty::F64 => bf64(match n {
            Num::I(x) => x as f64,
            Num::U(x) => x as f64,
            Num::F(x) => x,
        }),
        Ty::S32 => (match n {
            Num::I(x) => x as i32,
            Num::U(x) => x as i32,
            Num::F(x) => x as i32,
        }) as u32 as u64,
        Ty::S64 => (match n {
            Num::I(x) => x,
            Num::U(x) => x as i64,
            Num::F(x) => x as i64,
        }) as u64,
        Ty::U32 | Ty::B32 => (match n {
            Num::I(x) => x as u32,
            Num::U(x) => x as u32,
            Num::F(x) => x as u32,
        }) as u64,
        Ty::B8 => (match n {
            Num::I(x) => x as u8,
            Num::U(x) => x as u8,
            Num::F(x) => x as u8,
        }) as u64,
        Ty::B16 => (match n {
            Num::I(x) => x as u16,
            Num::U(x) => x as u16,
            Num::F(x) => x as u16,
        }) as u64,
        _ => match n {
            Num::I(x) => x as u64,
            Num::U(x) => x,
            Num::F(x) => x as u64,
        },
    }
}

fn read_bytes(buf: &[u8], addr: u64, size: u32, space: Space) -> Result<u64, SimError> {
    let a = addr as usize;
    if addr.checked_add(size as u64).map_or(true, |e| e > buf.len() as u64) {
        return Err(SimError::OutOfBounds {
            space,
            addr,
            size,
            limit: buf.len() as u64,
        });
    }
    Ok(match size {
        1 => buf[a] as u64,
        2 => u16::from_le_bytes(buf[a..a + 2].try_into().unwrap()) as u64,
        4 => u32::from_le_bytes(buf[a..a + 4].try_into().unwrap()) as u64,
        8 => u64::from_le_bytes(buf[a..a + 8].try_into().unwrap()),
        _ => unreachable!(),
    })
}

fn write_bytes(buf: &mut [u8], addr: u64, size: u32, value: u64, space: Space) -> Result<(), SimError> {
    let a = addr as usize;
    if addr.checked_add(size as u64).map_or(true, |e| e > buf.len() as u64) {
        return Err(SimError::OutOfBounds {
            space,
            addr,
            size,
            limit: buf.len() as u64,
        });
    }
    match size {
        1 => buf[a] = value as u8,
        2 => buf[a..a + 2].copy_from_slice(&(value as u16).to_le_bytes()),
        4 => buf[a..a + 4].copy_from_slice(&(value as u32).to_le_bytes()),
        8 => buf[a..a + 8].copy_from_slice(&value.to_le_bytes()),
        _ => unreachable!(),
    }
    Ok(())
}

#[cfg(test)]
mod alu_tests {
    use super::*;

    #[test]
    fn f32_arithmetic() {
        let a = bf32(3.0);
        let b = bf32(4.0);
        assert_eq!(f32b(alu2(Op2::Add, Ty::F32, a, b).unwrap()), 7.0);
        assert_eq!(f32b(alu2(Op2::Mul, Ty::F32, a, b).unwrap()), 12.0);
        assert_eq!(f32b(alu2(Op2::Max, Ty::F32, a, b).unwrap()), 4.0);
        assert_eq!(f32b(alu3(Op3::Mad, Ty::F32, a, b, bf32(1.0))), 13.0);
    }

    #[test]
    fn s32_wrapping_and_division() {
        let a = i32::MAX as u32 as u64;
        assert_eq!(
            alu2(Op2::Add, Ty::S32, a, 1).unwrap() as u32 as i32,
            i32::MIN
        );
        assert_eq!(alu2(Op2::Div, Ty::S32, (-7i32) as u32 as u64, 2).unwrap() as u32 as i32, -3);
        assert!(matches!(
            alu2(Op2::Div, Ty::S32, 1, 0),
            Err(SimError::DivByZero)
        ));
    }

    #[test]
    fn shifts_clamp() {
        assert_eq!(int_logic(Op2::Shl, 1, 40, 32).unwrap(), 0);
        assert_eq!(int_logic(Op2::Shl, 1, 4, 32).unwrap(), 16);
        assert_eq!(int_logic(Op2::Shr, 0x8000_0000, 31, 32).unwrap(), 1);
        // arithmetic shift for s32
        assert_eq!(
            alu2(Op2::Shr, Ty::S32, (-8i32) as u32 as u64, 1).unwrap() as u32 as i32,
            -4
        );
    }

    #[test]
    fn unsigned_compare_differs_from_signed() {
        let a = 0xffff_ffffu64; // -1 as i32, max as u32
        assert!(compare(CmpOp::Lt, Ty::S32, a, 1));
        assert!(!compare(CmpOp::Lt, Ty::U32, a, 1));
    }

    #[test]
    fn conversions() {
        assert_eq!(f32b(convert(bf32(2.75), Ty::F32, Ty::F32)), 2.75);
        assert_eq!(convert(bf32(2.75), Ty::F32, Ty::S32), 2);
        assert_eq!(convert((-3i32) as u32 as u64, Ty::S32, Ty::S64) as i64, -3);
        assert_eq!(f32b(convert(7, Ty::U32, Ty::F32)), 7.0);
        assert_eq!(f64b(convert(bf32(1.5), Ty::F32, Ty::F64)), 1.5);
        // negative float to signed int truncates toward zero
        assert_eq!(convert(bf32(-2.9), Ty::F32, Ty::S32) as u32 as i32, -2);
    }

    #[test]
    fn load_extension() {
        assert_eq!(load_extend(0xffff_ffff_ffff_ffff, Ty::B8), 0xff);
        assert_eq!(
            load_extend(0x0000_0000_8000_0000, Ty::S32),
            0xffff_ffff_8000_0000
        );
        assert_eq!(load_extend(0xdead_beef_0000_0001, Ty::U32), 1);
    }

    #[test]
    fn sfu_ops() {
        assert_eq!(f32b(alu1(Op1::Sqrt, Ty::F32, bf32(9.0))), 3.0);
        assert!((f32b(alu1(Op1::Rsqrt, Ty::F32, bf32(4.0))) - 0.5).abs() < 1e-6);
        assert_eq!(f32b(alu1(Op1::Neg, Ty::F32, bf32(2.0))), -2.0);
        assert_eq!(alu1(Op1::Not, Ty::B32, 0) & 0xffff_ffff, 0xffff_ffff);
    }
}
