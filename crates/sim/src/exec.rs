//! The lockstep SIMT interpreter and the parallel block scheduler.
//!
//! Warps execute in lockstep over the hardware wavefront width of the
//! device; divergence is handled with an explicit reconvergence stack driven
//! by the `ssy`/`sync` markers the compiler emits for structured control
//! flow (see `gpucmp-ptx` docs). Warps within a block execute round-robin
//! between barriers, so execution is fully deterministic — including the
//! memory corruption produced by warp-size-dependent kernels on 64-wide
//! devices (the paper's Table VI "FL" rows).
//!
//! Thread blocks are independent (they synchronize only via `bar.sync`
//! *within* a block), so [`run_launch`] simulates them across a host thread
//! pool: every block interprets against the launch-entry global-memory
//! image through a private copy-on-write [`WriteOverlay`], accumulates its
//! own [`ExecStats`], and records its L2-bound traffic as an event stream.
//! After the join, per-block results are merged in ascending block index —
//! stats add, L2 events replay through the device-wide L2 model, overlays
//! commit to global memory — which makes the result a pure function of the
//! launch inputs: `threads = 1` and `threads = N` are bit-identical by
//! construction. Kernels that perform *global* atomics (cross-block
//! read-modify-writes) take a coherent serial fallback so atomics resolve
//! in deterministic block order.

use crate::alu::{
    alu1, alu2, alu3, compare, convert, dram_traffic, float_bits, load_extend, read_bytes,
    write_bytes,
};
use crate::cache::{Cache, CacheAccess};
use crate::decode::{decode_kernel, issue_cost_millicycles, DecodedKernel, ExecTier};
use crate::device::DeviceSpec;
use crate::error::{DeviceFault, FaultKind, FaultSite, SimError};
use crate::launch::{Dim3, LaunchConfig, TexBinding};
use crate::mem::{GlobalMemory, WriteOverlay};
use crate::stats::ExecStats;
use gpucmp_ptx::{
    Address, AtomOp, Inst, Op1, Op2, Operand, Reg, ResolvedKernel, Space, Special, Ty,
};
use std::time::Instant;

/// Default dynamic warp-instruction budget per launch (runaway-loop guard).
pub const DEFAULT_INST_BUDGET: u64 = 4_000_000_000;

/// Divergence-stack frame (one per `ssy` region).
#[derive(Clone, Debug)]
pub(crate) struct Frame {
    /// Mask to restore when the region fully reconverges.
    pub(crate) restore_mask: u64,
    /// A parked path: (target pc, mask), waiting to run when the current
    /// path reaches the `sync`. The pc lives in the instruction space of
    /// the executing tier (original stream for interp, decoded stream for
    /// decoded/fused) — warps are rebuilt per block and one launch runs one
    /// tier, so the spaces never mix.
    pub(crate) pending: Option<(usize, u64)>,
}

/// Warp scheduling status.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum WarpStatus {
    Running,
    AtBarrier,
    Done,
}

/// Per-warp execution state.
#[derive(Clone, Debug)]
pub(crate) struct WarpState {
    pub(crate) pc: usize,
    /// Currently active lanes.
    pub(crate) active: u64,
    /// Lanes that exist in this warp (partial last warp of a block).
    pub(crate) full: u64,
    pub(crate) stack: Vec<Frame>,
    pub(crate) status: WarpStatus,
    /// Linear tid of lane 0 of this warp within the block.
    pub(crate) base_tid: u32,
}

/// Host-side execution options for one launch: *how* to simulate, never
/// *what* to compute — results are bit-identical for every setting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecOptions {
    /// Number of host threads used to simulate thread blocks. `1` runs
    /// serially on the calling thread; `0` means one per available CPU core.
    pub threads: usize,
    /// Memcheck sanitizer mode: memory-access faults (out-of-bounds,
    /// misaligned, texture range) are recorded instead of aborting the
    /// launch — faulting reads return zero, faulting writes are dropped —
    /// and global accesses are additionally checked at allocation
    /// granularity, like `cuda-memcheck`. Control-flow faults (barrier
    /// deadlock, divergence misuse, watchdog) still abort.
    pub memcheck: bool,
    /// Which execution engine steps warp instructions (interp / decoded /
    /// fused). Bit-identical results by contract; see [`ExecTier`].
    /// `Default` does *not* consult the environment — callers that want
    /// `GPUCMP_SIM_TIER` respected use [`ExecTier::from_env`].
    pub tier: ExecTier,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            threads: 1,
            memcheck: false,
            tier: ExecTier::default(),
        }
    }
}

impl ExecOptions {
    /// Serial execution on the calling thread (the default).
    pub fn serial() -> Self {
        ExecOptions::default()
    }

    /// Execute blocks across `threads` host threads (`0` = auto).
    pub fn with_threads(threads: usize) -> Self {
        ExecOptions {
            threads,
            ..ExecOptions::default()
        }
    }

    /// Enable or disable the memcheck sanitizer.
    pub fn memcheck(mut self, on: bool) -> Self {
        self.memcheck = on;
        self
    }

    /// Select the execution tier.
    pub fn tier(mut self, tier: ExecTier) -> Self {
        self.tier = tier;
        self
    }

    /// Resolve `threads == 0` to the host's available parallelism.
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

/// Host-side profiling counters for one launch. These measure the
/// *simulator* (wall-clock), not the simulated device, and are excluded
/// from determinism guarantees.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ExecProfile {
    /// Thread blocks simulated.
    pub blocks_simulated: u64,
    /// Host worker threads actually used (after clamping to the grid).
    pub host_threads: usize,
    /// Host wall-clock spent interpreting blocks, including worker join.
    pub host_exec_ns: u64,
    /// Host wall-clock spent merging per-block results (stats, L2 replay,
    /// overlay commit).
    pub host_merge_ns: u64,
    /// Bytes of global memory committed from per-block write overlays
    /// (zero on the coherent serial path, which writes through).
    pub overlay_bytes: u64,
}

impl ExecProfile {
    /// Fold another launch's counters into this one (session totals).
    /// Counts and times add; `host_threads` keeps the latest value.
    pub fn accumulate(&mut self, other: &ExecProfile) {
        self.blocks_simulated += other.blocks_simulated;
        self.host_threads = other.host_threads;
        self.host_exec_ns += other.host_exec_ns;
        self.host_merge_ns += other.host_merge_ns;
        self.overlay_bytes += other.overlay_bytes;
    }
}

/// One L2-bound memory transaction recorded during snapshot execution and
/// replayed through the device-wide L2 at merge time.
#[derive(Clone, Copy, Debug)]
struct L2Event {
    addr: u64,
    bytes: u64,
    store: bool,
}

/// How a block's global-memory traffic reaches memory.
enum GmemPath<'a> {
    /// Direct mutable access with the device-wide L2 inline — the serial
    /// fallback used when a kernel performs global atomics, whose
    /// cross-block read-modify-writes must resolve in deterministic
    /// (ascending) block order.
    Coherent {
        gmem: &'a mut GlobalMemory,
        l2: Option<Cache>,
    },
    /// Per-block snapshot: reads see the launch-entry image plus this
    /// block's own writes; writes land in a private overlay; L2-bound
    /// traffic is recorded for ascending-order replay at merge time.
    Snapshot {
        base: &'a GlobalMemory,
        overlay: WriteOverlay,
        events: Vec<L2Event>,
        record_l2: bool,
    },
}

/// Everything a block produces under snapshot execution.
struct BlockOutcome {
    stats: ExecStats,
    overlay: WriteOverlay,
    events: Vec<L2Event>,
    faults: Vec<DeviceFault>,
}

/// Cap on memcheck faults recorded per block (deterministic truncation —
/// blocks execute their warps round-robin, so the first `N` faults of a
/// block are the same for every host thread count).
const MEMCHECK_BLOCK_CAP: usize = 64;
/// Cap on memcheck faults reported per launch, applied in ascending block
/// index order at merge time.
const MEMCHECK_LAUNCH_CAP: usize = 256;

/// Validate a launch configuration against the device and kernel.
fn validate_launch(
    device: &DeviceSpec,
    kernel: &ResolvedKernel,
    cfg: &LaunchConfig,
) -> Result<(), SimError> {
    let k = &kernel.kernel;
    if cfg.params.len() != k.params.len() {
        return Err(SimError::BadParamCount {
            expected: k.params.len(),
            got: cfg.params.len(),
        });
    }
    let threads = cfg.block.count();
    if threads == 0 || cfg.grid.count() == 0 {
        return Err(SimError::InvalidLaunch("empty grid or block".into()));
    }
    if threads > device.max_workgroup_size as u64 {
        return Err(SimError::InvalidLaunch(format!(
            "block of {threads} threads exceeds device max work-group size {}",
            device.max_workgroup_size
        )));
    }
    if k.shared_bytes > device.shared_mem_per_cu {
        return Err(SimError::InvalidLaunch(format!(
            "kernel needs {} bytes of shared memory, device CU has {}",
            k.shared_bytes, device.shared_mem_per_cu
        )));
    }
    Ok(())
}

/// Replay one block's recorded L2-bound traffic through the device-wide L2.
/// Replaying blocks in ascending index order reproduces exactly the L2
/// state evolution (hits, misses, DRAM traffic) of serial block execution.
fn replay_l2(device: &DeviceSpec, l2: &mut Cache, stats: &mut ExecStats, events: &[L2Event]) {
    for e in events {
        stats.l2_touched_bytes += e.bytes;
        match l2.access(e.addr) {
            CacheAccess::Hit => stats.l2_hits += 1,
            CacheAccess::Miss => {
                stats.l2_misses += 1;
                dram_traffic(device, stats, e.addr, e.bytes, e.store);
            }
        }
    }
}

/// Execute every block of a launch, in parallel across `opts.threads` host
/// threads, and return the merged statistics, host-side profiling, and the
/// memcheck fault log (empty unless `opts.memcheck` found violations).
///
/// Results are bit-identical for every thread count: blocks run against
/// private snapshots and merge in ascending block index. Kernels with
/// global atomics run serially on a coherent path at any thread count.
pub fn run_launch(
    device: &DeviceSpec,
    kernel: &ResolvedKernel,
    gmem: &mut GlobalMemory,
    cfg: &LaunchConfig,
    const_bank: &[u8],
    opts: &ExecOptions,
) -> Result<(ExecStats, ExecProfile, Vec<DeviceFault>), SimError> {
    run_launch_with_code(device, kernel, gmem, cfg, const_bank, opts, None)
}

/// [`run_launch`] with an optional pre-decoded kernel.
///
/// When `opts.tier` is a decoded tier and `code` is `Some`, the launch
/// executes that pre-decoded body (the session code cache path — one
/// decode per distinct kernel). With `code == None` the kernel is decoded
/// here, once per launch. On [`ExecTier::Interp`] any provided `code` is
/// ignored and the reference interpreter runs.
pub fn run_launch_with_code(
    device: &DeviceSpec,
    kernel: &ResolvedKernel,
    gmem: &mut GlobalMemory,
    cfg: &LaunchConfig,
    const_bank: &[u8],
    opts: &ExecOptions,
    code: Option<&DecodedKernel>,
) -> Result<(ExecStats, ExecProfile, Vec<DeviceFault>), SimError> {
    validate_launch(device, kernel, cfg)?;
    let decoded_here;
    let code: Option<&DecodedKernel> = match opts.tier {
        ExecTier::Interp => None,
        ExecTier::Decoded | ExecTier::Fused => Some(match code {
            Some(c) => c,
            None => {
                decoded_here = decode_kernel(kernel, device);
                &decoded_here
            }
        }),
    };
    let fused = opts.tier == ExecTier::Fused;
    let blocks = cfg.grid.count();
    let block_threads = cfg.block.count() as u32;

    let mut stats = ExecStats {
        blocks,
        threads: blocks * block_threads as u64,
        ..ExecStats::default()
    };
    // Per-work-item scheduling overhead (CPU/Cell OpenCL runtimes).
    if device.wi_overhead_cycles > 0.0 {
        stats.issue_millicycles +=
            (stats.threads as f64 * device.wi_overhead_cycles * 1000.0) as u64;
    }
    let mut profile = ExecProfile {
        blocks_simulated: blocks,
        ..ExecProfile::default()
    };

    let has_global_atomics = kernel.kernel.body.iter().any(|i| {
        matches!(
            i,
            Inst::Atom {
                space: Space::Global,
                ..
            }
        )
    });

    let t_exec = Instant::now();
    if has_global_atomics {
        profile.host_threads = 1;
        let path = GmemPath::Coherent {
            gmem,
            l2: device.l2.map(Cache::from_geom),
        };
        let mut exec = BlockExec::new(
            device,
            kernel,
            cfg,
            const_bank,
            opts.memcheck,
            code,
            fused,
            path,
        );
        let mut result = Ok(());
        for b in 0..blocks {
            result = exec.run_linear_block(b);
            if result.is_err() {
                break;
            }
        }
        stats.merge(&exec.stats);
        let mut faults = std::mem::take(&mut exec.faults);
        faults.truncate(MEMCHECK_LAUNCH_CAP);
        profile.host_exec_ns = t_exec.elapsed().as_nanos() as u64;
        result.map_err(SimError::Fault)?;
        return Ok((stats, profile, faults));
    }

    let workers = opts.resolved_threads().clamp(1, blocks as usize);
    profile.host_threads = workers;
    let base: &GlobalMemory = &*gmem;
    // Blocks are assigned round-robin (block i -> worker i % workers); each
    // worker reuses one interpreter, resets the per-block instruction
    // budget, and stops its span at the first error.
    let run_span = |worker: usize| -> Vec<(u64, Result<BlockOutcome, DeviceFault>)> {
        let mut out = Vec::new();
        let path = GmemPath::Snapshot {
            base,
            overlay: WriteOverlay::new(),
            events: Vec::new(),
            record_l2: device.l2.is_some(),
        };
        let mut exec = BlockExec::new(
            device,
            kernel,
            cfg,
            const_bank,
            opts.memcheck,
            code,
            fused,
            path,
        );
        let mut b = worker as u64;
        while b < blocks {
            exec.budget = cfg.inst_budget;
            match exec.run_linear_block(b) {
                Ok(()) => out.push((b, Ok(exec.take_snapshot_outcome()))),
                Err(e) => {
                    out.push((b, Err(e)));
                    break;
                }
            }
            b += workers as u64;
        }
        out
    };

    let mut results: Vec<Option<Result<BlockOutcome, DeviceFault>>> = Vec::new();
    results.resize_with(blocks as usize, || None);
    if workers == 1 {
        for (b, r) in run_span(0) {
            results[b as usize] = Some(r);
        }
    } else {
        let run_span = &run_span;
        let spans = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers).map(|w| s.spawn(move || run_span(w))).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("simulation worker panicked"))
                .collect::<Vec<_>>()
        });
        for span in spans {
            for (b, r) in span {
                results[b as usize] = Some(r);
            }
        }
    }
    profile.host_exec_ns = t_exec.elapsed().as_nanos() as u64;

    // Merge in ascending block order: stats add, L2 events replay through
    // the device-wide L2, overlays commit to global memory. On error the
    // blocks below the first failing index are committed first — exactly
    // the memory state serial execution leaves behind.
    let t_merge = Instant::now();
    let mut l2 = device.l2.map(Cache::from_geom);
    let mut faults: Vec<DeviceFault> = Vec::new();
    for slot in results {
        let Some(r) = slot else {
            // Only reachable past a worker's error entry, which returns
            // first in this ascending scan.
            break;
        };
        match r {
            Ok(outcome) => {
                stats.merge(&outcome.stats);
                if let Some(l2) = &mut l2 {
                    replay_l2(device, l2, &mut stats, &outcome.events);
                }
                profile.overlay_bytes += outcome.overlay.commit(gmem);
                if faults.len() < MEMCHECK_LAUNCH_CAP {
                    let room = MEMCHECK_LAUNCH_CAP - faults.len();
                    faults.extend(outcome.faults.into_iter().take(room));
                }
            }
            Err(e) => return Err(SimError::Fault(e)),
        }
    }
    profile.host_merge_ns = t_merge.elapsed().as_nanos() as u64;
    Ok((stats, profile, faults))
}

/// The interpreter for one thread block at a time.
///
/// Owns all per-block cache state and statistics; global memory is reached
/// through a [`GmemPath`]. Use [`crate::launch::launch_with`] for the
/// one-call wrapper that also produces timing.
pub(crate) struct BlockExec<'a> {
    pub(crate) device: &'a DeviceSpec,
    pub(crate) kernel: &'a ResolvedKernel,
    path: GmemPath<'a>,
    const_bank: &'a [u8],
    textures: &'a [TexBinding],
    /// Parameter slots as raw 64-bit images.
    param_bytes: Vec<u8>,
    grid: Dim3,
    block: Dim3,
    /// Statistics for the block(s) run so far (snapshot workers drain this
    /// after every block; the coherent path accumulates across the launch).
    pub(crate) stats: ExecStats,
    /// Remaining warp-instruction budget (per block under snapshot
    /// execution, per launch on the coherent path).
    pub(crate) budget: u64,
    /// Pre-decoded dispatch IR (`None` on the interp reference tier).
    code: Option<&'a DecodedKernel>,
    /// Whether the decoded tier retires fused superinstruction runs.
    fused: bool,
    /// Register-file stride (`kernel.regs.len()`), cached so the decoded
    /// tier's slot arithmetic skips the double pointer chase per access.
    pub(crate) reg_stride: usize,
    // ---- per-block state (reused across blocks to avoid reallocation) ----
    pub(crate) regs: Vec<u64>,
    shared: Vec<u8>,
    local: Vec<u8>,
    pub(crate) warps: Vec<WarpState>,
    l1: Option<Cache>,
    texc: Option<Cache>,
    constc: Option<Cache>,
    /// Scratch: per-lane addresses of the current memory instruction.
    lane_addr: Vec<(u32, u64)>,
    /// Scratch: distinct memory segments of one coalesce group.
    seg_scratch: Vec<u64>,
    /// Scratch: (bank, word) pairs of one shared-memory banking group.
    word_scratch: Vec<(u64, u64)>,
    /// Scratch: distinct constant-space addresses of one warp access.
    addr_scratch: Vec<u64>,
    /// Scratch: distinct cache lines of one warp access.
    line_scratch: Vec<u64>,
    /// Linear id of the block currently executing (for the local-memory
    /// address model).
    cur_block: u64,
    /// Launch-configured warp-instruction budget (reported in Watchdog
    /// faults; `budget` below counts down from it).
    pub(crate) budget_limit: u64,
    /// pc of the instruction currently executing, always in the *original*
    /// instruction stream regardless of tier (fault attribution).
    pub(crate) cur_pc: usize,
    /// Linear tid of the lane currently executing (fault attribution;
    /// warp-scoped faults attribute to lane 0 of the warp).
    pub(crate) cur_tid: u32,
    /// Memcheck sanitizer: record access faults instead of aborting.
    memcheck: bool,
    /// Access faults recorded under memcheck (drained per block on the
    /// snapshot path, accumulated per launch on the coherent path).
    faults: Vec<DeviceFault>,
}

impl<'a> BlockExec<'a> {
    /// Build a block interpreter (the launch must already be validated).
    #[allow(clippy::too_many_arguments)]
    fn new(
        device: &'a DeviceSpec,
        kernel: &'a ResolvedKernel,
        cfg: &'a LaunchConfig,
        const_bank: &'a [u8],
        memcheck: bool,
        code: Option<&'a DecodedKernel>,
        fused: bool,
        path: GmemPath<'a>,
    ) -> Self {
        let mut param_bytes = Vec::with_capacity(cfg.params.len() * 8);
        for p in &cfg.params {
            param_bytes.extend_from_slice(&p.to_le_bytes());
        }
        BlockExec {
            device,
            kernel,
            path,
            const_bank,
            textures: &cfg.textures,
            param_bytes,
            grid: cfg.grid,
            block: cfg.block,
            stats: ExecStats::default(),
            budget: cfg.inst_budget,
            code,
            fused,
            reg_stride: kernel.kernel.regs.len(),
            regs: Vec::new(),
            shared: Vec::new(),
            local: Vec::new(),
            warps: Vec::new(),
            l1: None,
            texc: None,
            constc: None,
            lane_addr: Vec::new(),
            seg_scratch: Vec::new(),
            word_scratch: Vec::new(),
            addr_scratch: Vec::new(),
            line_scratch: Vec::new(),
            cur_block: 0,
            budget_limit: cfg.inst_budget,
            cur_pc: 0,
            cur_tid: 0,
            memcheck,
            faults: Vec::new(),
        }
    }

    /// Attach the current fault site (pc, block, faulting thread) to a
    /// fault kind. The site is a pure function of deterministic
    /// interpreter state, so it is identical for every host thread count.
    fn site_fault(&self, kind: FaultKind, ctaid: Dim3) -> DeviceFault {
        let b = self.block;
        let tid = self.cur_tid;
        let tz = tid / (b.x * b.y);
        let rem = tid % (b.x * b.y);
        DeviceFault {
            kind,
            site: Some(FaultSite {
                pc: self.cur_pc as u32,
                block: [ctaid.x, ctaid.y, ctaid.z],
                thread: [rem % b.x, rem / b.x, tz],
            }),
        }
    }

    /// Record an access fault under memcheck (capped: per block on the
    /// snapshot path, per launch on the coherent path).
    fn record_fault(&mut self, kind: FaultKind, ctaid: Dim3) {
        let cap = match self.path {
            GmemPath::Coherent { .. } => MEMCHECK_LAUNCH_CAP,
            GmemPath::Snapshot { .. } => MEMCHECK_BLOCK_CAP,
        };
        if self.faults.len() < cap {
            let f = self.site_fault(kind, ctaid);
            self.faults.push(f);
        }
    }

    /// Simulate the block with linear grid index `linear`. Per-block
    /// statistics accumulate in `self.stats`; the launch-level `blocks` /
    /// `threads` totals are set by the driver, not here.
    fn run_linear_block(&mut self, linear: u64) -> Result<(), DeviceFault> {
        self.cur_block = linear;
        let gx = self.grid.x as u64;
        let gy = self.grid.y as u64;
        let bx = (linear % gx) as u32;
        let by = ((linear / gx) % gy) as u32;
        let bz = (linear / (gx * gy)) as u32;
        self.run_block(Dim3::new(bx, by, bz))
    }

    /// Drain this block's results (snapshot path only), leaving the
    /// interpreter ready for its next block.
    fn take_snapshot_outcome(&mut self) -> BlockOutcome {
        let stats = std::mem::take(&mut self.stats);
        match &mut self.path {
            GmemPath::Snapshot {
                overlay, events, ..
            } => BlockOutcome {
                stats,
                overlay: std::mem::take(overlay),
                events: std::mem::take(events),
                faults: std::mem::take(&mut self.faults),
            },
            GmemPath::Coherent { .. } => unreachable!("snapshot outcome on coherent path"),
        }
    }

    /// Functional global-memory read through the active path.
    fn gmem_read(&self, addr: u64, size: u32) -> Result<u64, FaultKind> {
        match &self.path {
            GmemPath::Coherent { gmem, .. } => gmem.read(addr, size),
            GmemPath::Snapshot { base, overlay, .. } => overlay.read(base, addr, size),
        }
    }

    /// Functional global-memory write through the active path.
    fn gmem_write(&mut self, addr: u64, size: u32, value: u64) -> Result<(), FaultKind> {
        match &mut self.path {
            GmemPath::Coherent { gmem, .. } => gmem.write(addr, size, value),
            GmemPath::Snapshot { base, overlay, .. } => overlay.write(base, addr, size, value),
        }
    }

    /// Allocation-granular global check (memcheck only).
    fn gmem_check_alloc(&self, addr: u64, size: u64) -> Result<(), FaultKind> {
        match &self.path {
            GmemPath::Coherent { gmem, .. } => gmem.check_alloc(addr, size),
            GmemPath::Snapshot { base, .. } => base.check_alloc(addr, size),
        }
    }

    fn run_block(&mut self, ctaid: Dim3) -> Result<(), DeviceFault> {
        let k = &self.kernel.kernel;
        let threads = self.block.count() as u32;
        let num_regs = k.regs.len() as u32;
        let ww = self.device.warp_width;
        // (Re)initialise per-block state.
        self.regs.clear();
        self.regs.resize((threads * num_regs.max(1)) as usize, 0);
        self.shared.clear();
        self.shared.resize(k.shared_bytes as usize, 0);
        self.local.clear();
        self.local.resize((threads * k.local_bytes) as usize, 0);
        // Fresh per-CU caches each block (blocks land on arbitrary CUs; the
        // conservative model gives each block a cold private cache).
        self.l1 = self.device.l1.map(Cache::from_geom);
        self.texc = self.device.tex_cache.map(Cache::from_geom);
        self.constc = self.device.const_cache.map(Cache::from_geom);

        let num_warps = threads.div_ceil(ww);
        self.warps.clear();
        for w in 0..num_warps {
            let base_tid = w * ww;
            let lanes = (threads - base_tid).min(ww);
            let full = if lanes == 64 {
                u64::MAX
            } else {
                (1u64 << lanes) - 1
            };
            self.warps.push(WarpState {
                pc: 0,
                active: full,
                full,
                stack: Vec::new(),
                status: WarpStatus::Running,
                base_tid,
            });
        }

        loop {
            let mut progressed = false;
            for w in 0..self.warps.len() {
                if self.warps[w].status == WarpStatus::Running {
                    match self.code {
                        None => self.run_warp(w, ctaid),
                        Some(code) => self.run_warp_decoded(w, ctaid, code, self.fused),
                    }
                    .map_err(|k| self.site_fault(k, ctaid))?;
                    progressed = true;
                }
            }
            let all_done = self.warps.iter().all(|w| w.status == WarpStatus::Done);
            if all_done {
                break;
            }
            let none_running = self.warps.iter().all(|w| w.status != WarpStatus::Running);
            if none_running {
                // Everyone left is at a barrier; release if no warp already
                // finished (CUDA requires all threads to reach the barrier).
                if self.warps.iter().any(|w| w.status == WarpStatus::Done) {
                    return Err(DeviceFault::unsited(FaultKind::BarrierDeadlock));
                }
                for w in &mut self.warps {
                    w.status = WarpStatus::Running;
                    w.pc += 1; // step past the bar
                }
                continue;
            }
            if !progressed {
                return Err(DeviceFault::unsited(FaultKind::BarrierDeadlock));
            }
        }
        Ok(())
    }

    /// Run one warp until it blocks on a barrier or returns.
    fn run_warp(&mut self, w: usize, ctaid: Dim3) -> Result<(), FaultKind> {
        loop {
            let pc = self.warps[w].pc;
            let inst = self.kernel.kernel.body[pc];
            if let Inst::Label(_) = inst {
                self.warps[w].pc += 1;
                continue;
            }
            self.cur_pc = pc;
            self.cur_tid = self.warps[w].base_tid;
            if self.budget == 0 {
                return Err(FaultKind::Watchdog {
                    budget: self.budget_limit,
                });
            }
            self.budget -= 1;
            self.stats.warp_instructions += 1;
            self.stats.lane_instructions += self.warps[w].active.count_ones() as u64;
            self.stats.issue_millicycles += issue_cost_millicycles(self.device, &inst);

            match inst {
                Inst::Label(_) => unreachable!(),
                Inst::Ssy { .. } => {
                    let active = self.warps[w].active;
                    self.warps[w].stack.push(Frame {
                        restore_mask: active,
                        pending: None,
                    });
                    self.warps[w].pc += 1;
                }
                Inst::SyncPoint => {
                    let warp = &mut self.warps[w];
                    let frame = warp
                        .stack
                        .last_mut()
                        .ok_or(FaultKind::Divergence("sync without ssy frame"))?;
                    if let Some((ppc, pmask)) = frame.pending.take() {
                        warp.active = pmask;
                        warp.pc = ppc;
                    } else {
                        warp.active = frame.restore_mask;
                        warp.stack.pop();
                        warp.pc += 1;
                    }
                }
                Inst::Bra { target: _, pred } => {
                    let t = self.kernel.target(pc);
                    let refill = (self.device.taken_branch_cycles * 1000.0) as u64;
                    match pred {
                        None => {
                            self.warps[w].pc = t;
                            self.stats.issue_millicycles += refill;
                        }
                        Some((p, polarity)) => {
                            let taken = self.pred_mask(w, p, polarity);
                            let warp = &mut self.warps[w];
                            let active = warp.active;
                            if taken == active {
                                warp.pc = t;
                                self.stats.issue_millicycles += refill;
                            } else if taken == 0 {
                                warp.pc += 1;
                            } else {
                                self.stats.divergent_branches += 1;
                                let frame = warp
                                    .stack
                                    .last_mut()
                                    .ok_or(FaultKind::Divergence("divergent branch without ssy"))?;
                                self.stats.issue_millicycles += refill;
                                match &mut frame.pending {
                                    None => frame.pending = Some((t, taken)),
                                    Some((ppc, pmask)) if *ppc == t => {
                                        *pmask |= taken;
                                    }
                                    Some(_) => {
                                        return Err(FaultKind::Divergence(
                                            "conflicting divergence targets in one region",
                                        ))
                                    }
                                }
                                warp.active = active & !taken;
                                warp.pc += 1;
                            }
                        }
                    }
                }
                Inst::Bar => {
                    let warp = &mut self.warps[w];
                    if warp.active != warp.full {
                        return Err(FaultKind::Divergence("barrier reached by divergent warp"));
                    }
                    self.stats.barriers += 1;
                    self.stats.issue_millicycles +=
                        (self.device.barrier_cost_cycles * 1000.0) as u64;
                    warp.status = WarpStatus::AtBarrier;
                    return Ok(()); // pc advanced at release
                }
                Inst::Ret => {
                    let warp = &mut self.warps[w];
                    if !warp.stack.is_empty() {
                        return Err(FaultKind::Divergence("ret inside ssy region"));
                    }
                    warp.status = WarpStatus::Done;
                    return Ok(());
                }
                _ => {
                    self.exec_lanes(w, ctaid, &inst)?;
                    self.warps[w].pc += 1;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Lane-level execution
    // ------------------------------------------------------------------

    /// Execute a data instruction for every active lane of warp `w`.
    pub(crate) fn exec_lanes(
        &mut self,
        w: usize,
        ctaid: Dim3,
        inst: &Inst,
    ) -> Result<(), FaultKind> {
        // Memory instructions need transaction modelling over the whole
        // warp; everything else is a pure per-lane register update.
        match inst {
            Inst::Ld { space, ty, d, addr } => self.exec_ld(w, ctaid, *space, *ty, *d, *addr),
            Inst::St { space, ty, addr, a } => self.exec_st(w, ctaid, *space, *ty, *addr, *a),
            Inst::Tex { ty, d, tex, idx } => self.exec_tex(w, ctaid, *ty, *d, *tex, *idx),
            Inst::Atom {
                space,
                op,
                ty,
                d,
                addr,
                b,
                c,
            } => self.exec_atom(w, ctaid, *space, *op, *ty, *d, *addr, *b, *c),
            _ => {
                let active = self.warps[w].active;
                let base = self.warps[w].base_tid;
                let ww = self.device.warp_width;
                for lane in 0..ww {
                    if active & (1u64 << lane) == 0 {
                        continue;
                    }
                    let tid = base + lane;
                    self.cur_tid = tid;
                    self.exec_scalar(tid, ctaid, inst)?;
                }
                Ok(())
            }
        }
    }

    /// Pure register-to-register execution for one thread.
    fn exec_scalar(&mut self, tid: u32, ctaid: Dim3, inst: &Inst) -> Result<(), FaultKind> {
        match *inst {
            Inst::Mov { ty, d, a } => {
                let v = load_extend(self.eval(tid, ctaid, a, ty), ty);
                self.set_reg(tid, d, v);
            }
            Inst::Cvt { dty, sty, d, a } => {
                let v = self.eval(tid, ctaid, a, sty);
                self.set_reg(tid, d, convert(v, sty, dty));
            }
            Inst::Un { op, ty, d, a } => {
                let v = self.eval(tid, ctaid, a, ty);
                let r = alu1(op, ty, v);
                if op == Op1::Sqrt || op == Op1::Rsqrt || op == Op1::Rcp {
                    self.stats.flops += 1;
                }
                self.set_reg(tid, d, r);
            }
            Inst::Bin { op, ty, d, a, b } => {
                let va = self.eval(tid, ctaid, a, ty);
                let vb = self.eval(tid, ctaid, b, ty);
                let r = alu2(op, ty, va, vb)?;
                if ty.is_float() && !op.is_logic() && !op.is_shift() {
                    self.stats.flops += 1;
                }
                self.set_reg(tid, d, r);
            }
            Inst::Tern { op, ty, d, a, b, c } => {
                let va = self.eval(tid, ctaid, a, ty);
                let vb = self.eval(tid, ctaid, b, ty);
                let vc = self.eval(tid, ctaid, c, ty);
                let r = alu3(op, ty, va, vb, vc);
                if ty.is_float() {
                    self.stats.flops += 2;
                }
                self.set_reg(tid, d, r);
            }
            Inst::Setp { cmp, ty, d, a, b } => {
                let va = self.eval(tid, ctaid, a, ty);
                let vb = self.eval(tid, ctaid, b, ty);
                let r = compare(cmp, ty, va, vb) as u64;
                self.set_reg(tid, d, r);
            }
            Inst::Selp { ty, d, a, b, p } => {
                let va = self.eval(tid, ctaid, a, ty);
                let vb = self.eval(tid, ctaid, b, ty);
                let vp = self.get_reg(tid, p);
                self.set_reg(tid, d, load_extend(if vp != 0 { va } else { vb }, ty));
            }
            _ => unreachable!("exec_scalar on non-scalar instruction"),
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Memory instructions
    // ------------------------------------------------------------------

    /// Gather the (lane, byte-address) pairs of the current warp memory op
    /// into `self.lane_addr`.
    fn gather_addresses(&mut self, w: usize, ctaid: Dim3, addr: Address) {
        let active = self.warps[w].active;
        let base = self.warps[w].base_tid;
        let ww = self.device.warp_width;
        self.lane_addr.clear();
        for lane in 0..ww {
            if active & (1u64 << lane) == 0 {
                continue;
            }
            let tid = base + lane;
            let b = self.eval(tid, ctaid, addr.base, Ty::U64);
            self.lane_addr
                .push((tid, b.wrapping_add(addr.offset as u64)));
        }
    }

    fn exec_ld(
        &mut self,
        w: usize,
        ctaid: Dim3,
        space: Space,
        ty: Ty,
        d: Reg,
        addr: Address,
    ) -> Result<(), FaultKind> {
        self.gather_addresses(w, ctaid, addr);
        let size = ty.size_bytes();
        // Cost model first (needs the address vector), then functional reads.
        self.account_memory(space, size, false);
        let threads = self.block.count() as u32;
        for i in 0..self.lane_addr.len() {
            let (tid, a) = self.lane_addr[i];
            self.cur_tid = tid;
            let v = match self.space_read_checked(space, tid, threads, a, size) {
                Ok(v) => v,
                Err(k) if self.memcheck && k.is_access_fault() => {
                    // Sanitizer semantics: report, read zero, keep going.
                    self.record_fault(k, ctaid);
                    0
                }
                Err(k) => return Err(k),
            };
            let v = load_extend(v, ty);
            self.set_reg(tid, d, v);
        }
        Ok(())
    }

    fn exec_st(
        &mut self,
        w: usize,
        ctaid: Dim3,
        space: Space,
        ty: Ty,
        addr: Address,
        a: Operand,
    ) -> Result<(), FaultKind> {
        self.gather_addresses(w, ctaid, addr);
        let size = ty.size_bytes();
        self.account_memory(space, size, true);
        let threads = self.block.count() as u32;
        for i in 0..self.lane_addr.len() {
            let (tid, ad) = self.lane_addr[i];
            self.cur_tid = tid;
            let v = self.eval(tid, ctaid, a, ty);
            match self.space_write_checked(space, tid, threads, ad, size, v) {
                Ok(()) => {}
                Err(k) if self.memcheck && k.is_access_fault() => {
                    // Sanitizer semantics: report and drop the store.
                    self.record_fault(k, ctaid);
                }
                Err(k) => return Err(k),
            }
        }
        Ok(())
    }

    fn exec_tex(
        &mut self,
        w: usize,
        ctaid: Dim3,
        ty: Ty,
        d: Reg,
        tex: gpucmp_ptx::TexRef,
        idx: Operand,
    ) -> Result<(), FaultKind> {
        let binding = self
            .textures
            .get(tex.0 as usize)
            .copied()
            .ok_or(FaultKind::UnboundTexture(tex.0))?;
        let size = ty.size_bytes();
        let active = self.warps[w].active;
        let base = self.warps[w].base_tid;
        let ww = self.device.warp_width;
        self.lane_addr.clear();
        for lane in 0..ww {
            if active & (1u64 << lane) == 0 {
                continue;
            }
            let tid = base + lane;
            self.cur_tid = tid;
            let i = self.eval(tid, ctaid, idx, Ty::S32) as u32 as i64;
            if i < 0 || i as u64 >= binding.elems {
                let k = FaultKind::TextureOutOfRange {
                    slot: tex.0,
                    index: i,
                    len: binding.elems,
                };
                if self.memcheck {
                    // Report and give the lane a zero fetch (register is
                    // zeroed below by skipping its address).
                    self.record_fault(k, ctaid);
                    self.set_reg(tid, d, 0);
                    continue;
                }
                return Err(k);
            }
            self.lane_addr
                .push((tid, binding.ptr.0 + i as u64 * size as u64));
        }
        // Texture path: distinct lines through the texture cache; misses go
        // to L2 (Fermi) or DRAM (GT200/Cypress).
        let line = self
            .texc
            .as_ref()
            .map(|c| c.line_bytes())
            .unwrap_or(self.device.segment_bytes as u64);
        self.line_scratch.clear();
        self.line_scratch
            .extend(self.lane_addr.iter().map(|&(_, a)| a / line));
        self.line_scratch.sort_unstable();
        self.line_scratch.dedup();
        for i in 0..self.line_scratch.len() {
            let l = self.line_scratch[i];
            match &mut self.texc {
                Some(c) => match c.access(l * line) {
                    CacheAccess::Hit => self.stats.tex_hits += 1,
                    CacheAccess::Miss => {
                        self.stats.tex_misses += 1;
                        self.fill_from_l2_or_dram(l * line, line, false);
                    }
                },
                None => {
                    // No texture cache on this device: straight to DRAM.
                    // Per-line fetches are their own coalesced floor.
                    self.stats.tex_misses += 1;
                    self.stats.gmem_transactions += 1;
                    self.stats.gmem_ideal_transactions += 1;
                    dram_traffic(self.device, &mut self.stats, l * line, line, false);
                }
            }
        }
        for i in 0..self.lane_addr.len() {
            let (tid, a) = self.lane_addr[i];
            self.cur_tid = tid;
            let v = match self.gmem_read(a, size) {
                Ok(v) => v,
                Err(k) if self.memcheck && k.is_access_fault() => {
                    self.record_fault(k, ctaid);
                    0
                }
                Err(k) => return Err(k),
            };
            self.set_reg(tid, d, load_extend(v, ty));
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_atom(
        &mut self,
        w: usize,
        ctaid: Dim3,
        space: Space,
        op: AtomOp,
        ty: Ty,
        d: Reg,
        addr: Address,
        b: Operand,
        c: Operand,
    ) -> Result<(), FaultKind> {
        self.gather_addresses(w, ctaid, addr);
        let size = ty.size_bytes();
        // Atomics serialise per lane: cost one transaction per lane.
        self.stats.atomics += self.lane_addr.len() as u64;
        if space == Space::Global {
            self.stats.gmem_transactions += self.lane_addr.len() as u64;
            // Atomics serialise by definition; their per-lane transactions
            // are their own floor, so they don't skew coalescing metrics.
            self.stats.gmem_ideal_transactions += self.lane_addr.len() as u64;
            for i in 0..self.lane_addr.len() {
                let (_, a) = self.lane_addr[i];
                dram_traffic(self.device, &mut self.stats, a, size as u64, false);
                dram_traffic(self.device, &mut self.stats, a, size as u64, true);
            }
        } else {
            self.stats.shared_cycles += self.lane_addr.len() as u64;
        }
        let threads = self.block.count() as u32;
        for i in 0..self.lane_addr.len() {
            let (tid, a) = self.lane_addr[i];
            self.cur_tid = tid;
            let old = match self.space_read_checked(space, tid, threads, a, size) {
                Ok(v) => v,
                Err(k) if self.memcheck && k.is_access_fault() => {
                    // Report and skip the whole read-modify-write.
                    self.record_fault(k, ctaid);
                    self.set_reg(tid, d, 0);
                    continue;
                }
                Err(k) => return Err(k),
            };
            let old = load_extend(old, ty);
            let vb = self.eval(tid, ctaid, b, ty);
            let vc = self.eval(tid, ctaid, c, ty);
            let new = match op {
                AtomOp::Add => alu2(Op2::Add, ty, old, vb)?,
                AtomOp::Min => alu2(Op2::Min, ty, old, vb)?,
                AtomOp::Max => alu2(Op2::Max, ty, old, vb)?,
                AtomOp::Exch => vb,
                AtomOp::Cas => {
                    if old == vc {
                        vb
                    } else {
                        old
                    }
                }
            };
            self.space_write_checked(space, tid, threads, a, size, new)?;
            self.set_reg(tid, d, old);
        }
        Ok(())
    }

    /// Transaction/cache/bank accounting for a warp-wide global, shared,
    /// local, const or param access whose addresses are in `self.lane_addr`.
    fn account_memory(&mut self, space: Space, size: u32, is_store: bool) {
        match space {
            Space::Global => {
                self.stats.gmem_instructions += 1;
                let group = self.device.coalesce_group.max(1) as usize;
                let seg = self.device.segment_bytes.max(32) as u64;
                // For each coalesce group of lanes, count distinct segments.
                let mut i = 0;
                while i < self.lane_addr.len() {
                    let end = (i + group).min(self.lane_addr.len());
                    self.seg_scratch.clear();
                    for j in i..end {
                        let (_, a) = self.lane_addr[j];
                        // every byte the access touches (may straddle)
                        let first = a / seg;
                        let last = (a + size as u64 - 1) / seg;
                        for s in first..=last {
                            self.seg_scratch.push(s);
                        }
                    }
                    self.seg_scratch.sort_unstable();
                    self.seg_scratch.dedup();
                    // Fully-coalesced floor: the same lanes touching
                    // contiguous addresses would have needed this many
                    // segments. The gap to the distinct-segment count is
                    // serialisation.
                    self.stats.gmem_ideal_transactions +=
                        ((end - i) as u64 * size as u64).div_ceil(seg).max(1);
                    for j in 0..self.seg_scratch.len() {
                        let s = self.seg_scratch[j];
                        self.stats.gmem_transactions += 1;
                        self.global_transaction(s * seg, seg, is_store);
                    }
                    i = end;
                }
            }
            Space::Shared => {
                // Bank-conflict model: within each banking group (half-warp
                // on GT200, warp on Fermi), the access takes as many cycles
                // as the most-contended bank has distinct words.
                let banks = self.device.shared_banks.max(1) as u64;
                let group = self.device.coalesce_group.max(1) as usize;
                let scale = self.device.shared_access_scale;
                let mut i = 0;
                while i < self.lane_addr.len() {
                    let end = (i + group).min(self.lane_addr.len());
                    self.stats.shared_accesses += 1;
                    let mut degree = 1u64;
                    if banks > 1 {
                        // words per bank
                        self.word_scratch.clear();
                        self.word_scratch
                            .extend(self.lane_addr[i..end].iter().map(|&(_, a)| {
                                let word = a / 4;
                                (word % banks, word)
                            }));
                        self.word_scratch.sort_unstable();
                        self.word_scratch.dedup();
                        let mut run = 0u64;
                        let mut prev_bank = u64::MAX;
                        for &(bank, _) in &self.word_scratch {
                            if bank == prev_bank {
                                run += 1;
                            } else {
                                run = 1;
                                prev_bank = bank;
                            }
                            degree = degree.max(run);
                        }
                    }
                    let cycles = (degree as f64 * scale).ceil() as u64;
                    self.stats.shared_cycles += cycles;
                    if degree > 1 {
                        self.stats.shared_conflict_cycles += cycles - 1;
                    }
                    i = end;
                }
            }
            Space::Local => {
                // Local memory is physically lane-interleaved in device
                // memory, so a warp's access to one per-thread slot is a
                // fully coalesced burst. Synthesise stable per-(block,
                // slot) addresses in a reserved high range: re-touching a
                // slot hits the Fermi L1, while cacheless devices pay DRAM
                // each time — the asymmetry behind the paper's Fig. 7.
                let bytes = self.lane_addr.len() as u64 * size as u64;
                let seg = self.device.segment_bytes.max(32) as u64;
                let txns = bytes.div_ceil(seg);
                let slot = self.lane_addr.first().map(|&(_, a)| a).unwrap_or(0);
                let block_span =
                    (self.kernel.kernel.local_bytes as u64 + 8) * self.block.count().max(1);
                let base = (1u64 << 40)
                    + self.cur_block * block_span.next_multiple_of(seg)
                    + slot * self.block.count().max(1);
                // Lane-interleaved local slots are contiguous by
                // construction: the burst is its own coalesced floor.
                self.stats.gmem_ideal_transactions += txns;
                for t in 0..txns {
                    self.stats.gmem_transactions += 1;
                    self.global_transaction(base + t * seg, seg, is_store);
                }
            }
            Space::Const => {
                // Distinct addresses serialise; same-address is broadcast.
                self.addr_scratch.clear();
                self.addr_scratch
                    .extend(self.lane_addr.iter().map(|&(_, a)| a));
                self.addr_scratch.sort_unstable();
                self.addr_scratch.dedup();
                self.stats.const_serializations += self.addr_scratch.len() as u64 - 1;
                let line = self.constc.as_ref().map(|cc| cc.line_bytes()).unwrap_or(64);
                self.line_scratch.clear();
                self.line_scratch
                    .extend(self.addr_scratch.iter().map(|a| a / line));
                self.line_scratch.dedup();
                self.stats.const_line_accesses += self.line_scratch.len() as u64;
                for i in 0..self.line_scratch.len() {
                    let l = self.line_scratch[i];
                    match &mut self.constc {
                        Some(cc) => {
                            if cc.access(l * line) == CacheAccess::Miss {
                                self.stats.const_misses += 1;
                                dram_traffic(self.device, &mut self.stats, l * line, line, false);
                            }
                        }
                        None => {
                            self.stats.const_misses += 1;
                            dram_traffic(self.device, &mut self.stats, l * line, line, false);
                        }
                    }
                }
            }
            Space::Param => {
                // Parameter loads hit a tiny dedicated buffer: free beyond
                // the issue cost.
            }
        }
    }

    /// One DRAM-side transaction of `bytes` at `addr` through the cache
    /// hierarchy (L1 for loads on Fermi, then L2, then DRAM).
    fn global_transaction(&mut self, addr: u64, bytes: u64, is_store: bool) {
        if !is_store {
            if let Some(l1) = &mut self.l1 {
                match l1.access(addr) {
                    CacheAccess::Hit => {
                        self.stats.l1_hits += 1;
                        return;
                    }
                    CacheAccess::Miss => {
                        self.stats.l1_misses += 1;
                    }
                }
            }
        }
        self.fill_from_l2_or_dram(addr, bytes, is_store);
    }

    /// Route an L1-missing (or uncached) transaction toward L2/DRAM. On the
    /// coherent path the device-wide L2 is consulted inline; under snapshot
    /// execution the transaction is recorded for ascending-order replay at
    /// merge time (L2 state is the only cross-block cache state), or sent
    /// straight to DRAM on devices without an L2.
    fn fill_from_l2_or_dram(&mut self, addr: u64, bytes: u64, is_store: bool) {
        match &mut self.path {
            GmemPath::Coherent { l2: Some(l2), .. } => {
                self.stats.l2_touched_bytes += bytes;
                match l2.access(addr) {
                    CacheAccess::Hit => self.stats.l2_hits += 1,
                    CacheAccess::Miss => {
                        self.stats.l2_misses += 1;
                        dram_traffic(self.device, &mut self.stats, addr, bytes, is_store);
                    }
                }
            }
            GmemPath::Coherent { l2: None, .. } => {
                dram_traffic(self.device, &mut self.stats, addr, bytes, is_store);
            }
            GmemPath::Snapshot {
                events,
                record_l2: true,
                ..
            } => events.push(L2Event {
                addr,
                bytes,
                store: is_store,
            }),
            GmemPath::Snapshot {
                record_l2: false, ..
            } => {
                dram_traffic(self.device, &mut self.stats, addr, bytes, is_store);
            }
        }
    }

    // ------------------------------------------------------------------
    // State-space functional access
    // ------------------------------------------------------------------

    /// [`space_read`] plus the allocation-granular global check that
    /// memcheck adds on top of the physical bounds check.
    ///
    /// [`space_read`]: BlockExec::space_read
    fn space_read_checked(
        &self,
        space: Space,
        tid: u32,
        threads: u32,
        addr: u64,
        size: u32,
    ) -> Result<u64, FaultKind> {
        if self.memcheck && space == Space::Global {
            self.gmem_check_alloc(addr, size as u64)?;
        }
        self.space_read(space, tid, threads, addr, size)
    }

    fn space_write_checked(
        &mut self,
        space: Space,
        tid: u32,
        threads: u32,
        addr: u64,
        size: u32,
        value: u64,
    ) -> Result<(), FaultKind> {
        if self.memcheck && space == Space::Global {
            self.gmem_check_alloc(addr, size as u64)?;
        }
        self.space_write(space, tid, threads, addr, size, value)
    }

    fn space_read(
        &self,
        space: Space,
        tid: u32,
        _threads: u32,
        addr: u64,
        size: u32,
    ) -> Result<u64, FaultKind> {
        match space {
            Space::Global => self.gmem_read(addr, size),
            Space::Shared => read_bytes(&self.shared, addr, size, Space::Shared),
            Space::Local => {
                let lb = self.kernel.kernel.local_bytes as u64;
                let base = tid as u64 * lb;
                if addr + size as u64 > lb {
                    return Err(FaultKind::OutOfBounds {
                        space: Space::Local,
                        addr,
                        size,
                        limit: lb,
                    });
                }
                read_bytes(&self.local, base + addr, size, Space::Local)
            }
            Space::Const => read_bytes(self.const_bank, addr, size, Space::Const),
            Space::Param => read_bytes(&self.param_bytes, addr, size, Space::Param),
        }
    }

    fn space_write(
        &mut self,
        space: Space,
        tid: u32,
        _threads: u32,
        addr: u64,
        size: u32,
        value: u64,
    ) -> Result<(), FaultKind> {
        match space {
            Space::Global => self.gmem_write(addr, size, value),
            Space::Shared => write_bytes(&mut self.shared, addr, size, value, Space::Shared),
            Space::Local => {
                let lb = self.kernel.kernel.local_bytes as u64;
                let base = tid as u64 * lb;
                if addr + size as u64 > lb {
                    return Err(FaultKind::OutOfBounds {
                        space: Space::Local,
                        addr,
                        size,
                        limit: lb,
                    });
                }
                write_bytes(&mut self.local, base + addr, size, value, Space::Local)
            }
            Space::Const => Err(FaultKind::ReadOnly(Space::Const)),
            Space::Param => Err(FaultKind::ReadOnly(Space::Param)),
        }
    }

    // ------------------------------------------------------------------
    // Operand / register plumbing
    // ------------------------------------------------------------------

    #[inline]
    fn get_reg(&self, tid: u32, r: Reg) -> u64 {
        self.regs[(tid as usize) * self.kernel.kernel.regs.len() + r.index()]
    }

    #[inline]
    fn set_reg(&mut self, tid: u32, r: Reg, v: u64) {
        let n = self.kernel.kernel.regs.len();
        self.regs[(tid as usize) * n + r.index()] = v;
    }

    /// Evaluate an operand in the context of type `ty`, returning raw bits.
    fn eval(&self, tid: u32, ctaid: Dim3, op: Operand, ty: Ty) -> u64 {
        match op {
            Operand::Reg(r) => self.get_reg(tid, r),
            Operand::ImmI(v) => {
                if ty.is_float() {
                    float_bits(ty, v as f64)
                } else {
                    v as u64
                }
            }
            Operand::ImmF(v) => float_bits(ty, v),
            Operand::Special(s) => self.special(tid, ctaid, s),
        }
    }

    pub(crate) fn special(&self, tid: u32, ctaid: Dim3, s: Special) -> u64 {
        let b = self.block;
        let tz = tid / (b.x * b.y);
        let rem = tid % (b.x * b.y);
        let ty_ = rem / b.x;
        let tx = rem % b.x;
        let ww = self.device.warp_width;
        (match s {
            Special::TidX => tx,
            Special::TidY => ty_,
            Special::TidZ => tz,
            Special::NtidX => b.x,
            Special::NtidY => b.y,
            Special::NtidZ => b.z,
            Special::CtaidX => ctaid.x,
            Special::CtaidY => ctaid.y,
            Special::CtaidZ => ctaid.z,
            Special::NctaidX => self.grid.x,
            Special::NctaidY => self.grid.y,
            Special::NctaidZ => self.grid.z,
            Special::LaneId => tid % ww,
            Special::WarpId => tid / ww,
            Special::WarpSize => ww,
        }) as u64
    }

    /// Mask of active lanes whose predicate register `p` equals `polarity`.
    fn pred_mask(&self, w: usize, p: Reg, polarity: bool) -> u64 {
        let warp = &self.warps[w];
        let ww = self.device.warp_width;
        let mut mask = 0u64;
        for lane in 0..ww {
            let bit = 1u64 << lane;
            if warp.active & bit == 0 {
                continue;
            }
            let v = self.get_reg(warp.base_tid + lane, p) != 0;
            if v == polarity {
                mask |= bit;
            }
        }
        mask
    }
}
