//! The device catalogue (paper Tables III & IV) and the occupancy model.

use serde::{Deserialize, Serialize};

/// Microarchitecture family. Selects coalescing rules, cache presence and
/// the cost table of the timing model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Arch {
    /// NVIDIA GT200 (GTX280): no global-memory cache, 16 shared banks,
    /// half-warp coalescing, dual-issue mul+mad.
    Gt200,
    /// NVIDIA Fermi (GTX480): L1/L2 cache hierarchy, 32 shared banks,
    /// full-warp coalescing.
    Fermi,
    /// ATI Cypress (HD5870): VLIW5, 64-wide wavefronts.
    Cypress,
    /// x86 multi-core CPU exposed as an OpenCL device (Intel i7-920 via
    /// AMD APP in the paper).
    X86Cpu,
    /// Cell Broadband Engine SPEs via IBM's OpenCL.
    CellSpe,
}

/// OpenCL device kind, for `CL_DEVICE_TYPE_*` filtering (the "minor
/// modifications" of Section V of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// `CL_DEVICE_TYPE_GPU`.
    Gpu,
    /// `CL_DEVICE_TYPE_CPU`.
    Cpu,
    /// `CL_DEVICE_TYPE_ACCELERATOR`.
    Accelerator,
}

/// Geometry of one cache model instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheGeom {
    /// Total capacity in bytes.
    pub size: u32,
    /// Line size in bytes.
    pub line: u32,
    /// Associativity (ways).
    pub assoc: u32,
}

/// Full specification of one simulated device.
///
/// Datasheet fields come from the paper's Table IV; the two calibration
/// fields (`dram_efficiency`, `arith_cycle_scale`) are set so the *synthetic
/// peak* benchmarks land near the paper's achieved-peak fractions (Figs 1-2)
/// and are documented inline. Everything else about benchmark behaviour is
/// emergent from the execution trace.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Marketing name, e.g. `"GTX480"`.
    pub name: &'static str,
    /// Microarchitecture family.
    pub arch: Arch,
    /// OpenCL device kind.
    pub kind: DeviceKind,
    /// Number of compute units (SMs / SIMD engines / cores / SPEs).
    pub compute_units: u32,
    /// Scalar ALU lanes per compute unit.
    pub cores_per_cu: u32,
    /// Core (shader) clock in MHz.
    pub core_clock_mhz: u32,
    /// Theoretical peak DRAM bandwidth in GB/s (Eq. 2 of the paper for the
    /// NVIDIA cards: `MC * MIW/8 * 2e-9`).
    pub mem_bandwidth_gbs: f64,
    /// Device memory capacity in MiB.
    pub mem_capacity_mib: u32,
    /// Hardware warp/wavefront width (32 NVIDIA, 64 ATI wavefront & APP).
    pub warp_width: u32,
    /// Max resident threads per CU.
    pub max_threads_per_cu: u32,
    /// Max resident warps per CU.
    pub max_warps_per_cu: u32,
    /// Max resident blocks per CU.
    pub max_blocks_per_cu: u32,
    /// 32-bit registers per CU.
    pub regs_per_cu: u32,
    /// Hard per-thread register cap (drives `CL_OUT_OF_RESOURCES` on
    /// resource-starved devices like the Cell/BE).
    pub max_regs_per_thread: u32,
    /// Shared (local) memory per CU in bytes.
    pub shared_mem_per_cu: u32,
    /// Maximum work-group size.
    pub max_workgroup_size: u32,
    /// Shared-memory banks.
    pub shared_banks: u32,
    /// L1 data cache (Fermi), if present. Global loads are cached here.
    pub l1: Option<CacheGeom>,
    /// L2 cache, if present (device-wide).
    pub l2: Option<CacheGeom>,
    /// Texture cache, if present (per CU).
    pub tex_cache: Option<CacheGeom>,
    /// Constant cache, if present (per CU).
    pub const_cache: Option<CacheGeom>,
    /// Coalescing: memory segment size in bytes (DRAM transaction unit).
    pub segment_bytes: u32,
    /// Coalescing: number of lanes considered together (half-warp of 16 on
    /// GT200, full warp on Fermi, full wavefront on Cypress).
    pub coalesce_group: u32,
    /// CALIBRATION: fraction of peak DRAM bandwidth attainable by a fully
    /// coalesced stream (row-activation and refresh overheads).
    pub dram_efficiency: f64,
    /// CALIBRATION: issue cycles per simple f32 ALU warp-instruction.
    /// GT200's mul+mad dual issue makes this < 1; Fermi's scheduler
    /// overhead makes it slightly > 1.
    pub arith_cycle_scale: f64,
    /// Global-memory round-trip latency in nanoseconds.
    pub mem_latency_ns: f64,
    /// Resident warps per CU needed to fully hide `mem_latency_ns`.
    pub latency_hiding_warps: f64,
    /// Peak flops per scalar core per clock (the paper's `R` in Eq. 3).
    pub flops_per_core_per_clock: f64,
    /// Per work-item fixed scheduling overhead in core cycles. ~0 on GPUs;
    /// large on CPU/Cell OpenCL implementations where each work-item is a
    /// loop iteration or function call.
    pub wi_overhead_cycles: f64,
    /// Cost of one block-wide barrier in core cycles.
    pub barrier_cost_cycles: f64,
    /// Multiplier on shared-memory access cycles. 1.0 on GPUs with real
    /// scratchpads; > 1 on CPUs where "local memory" is an emulated copy in
    /// cache (the paper's TranP-on-Intel920 observation).
    pub shared_access_scale: f64,
    /// Launch overhead floor in ns that no API can go below (hardware
    /// command processor).
    pub hw_launch_ns: f64,
    /// Number of DRAM partitions (memory controllers).
    pub dram_partitions: u32,
    /// Whether addresses are hashed across partitions (Fermi and later) —
    /// hashing eliminates GT200's "partition camping" on hot segments or
    /// power-of-two strides.
    pub partition_hashed: bool,
    /// L2 bandwidth in GB/s (only meaningful when `l2` is present): every
    /// L1/texture miss moves a full line through the L2, which bounds
    /// irregular-gather throughput even when the lines hit in L2.
    pub l2_bandwidth_gbs: f64,
    /// Pipeline-refill cost of a taken branch, in core cycles (what loop
    /// unrolling amortises — the paper's Fig. 6).
    pub taken_branch_cycles: f64,
}

impl DeviceSpec {
    /// Theoretical peak bandwidth in GB/s (paper Eq. 2 for NVIDIA parts).
    pub fn theoretical_peak_bandwidth_gbs(&self) -> f64 {
        self.mem_bandwidth_gbs
    }

    /// Theoretical peak single-precision GFlops/s (paper Eq. 3:
    /// `CC * #Cores * R * 1e-9` with MHz clock).
    pub fn theoretical_peak_gflops(&self) -> f64 {
        self.core_clock_mhz as f64
            * 1e6
            * (self.compute_units * self.cores_per_cu) as f64
            * self.flops_per_core_per_clock
            * 1e-9
    }

    /// Total scalar cores.
    pub fn total_cores(&self) -> u32 {
        self.compute_units * self.cores_per_cu
    }

    /// Core clock in Hz.
    pub fn clock_hz(&self) -> f64 {
        self.core_clock_mhz as f64 * 1e6
    }

    /// Number of warps a block of `threads` threads occupies.
    pub fn warps_per_block(&self, threads: u32) -> u32 {
        threads.div_ceil(self.warp_width)
    }

    /// Occupancy calculation: how many blocks of the given shape fit on one
    /// compute unit simultaneously, and what fraction of the warp slots
    /// that fills. This is the standard CUDA occupancy computation and is
    /// what turns register pressure (e.g. the OpenCL FDTD outer unroll of
    /// the paper's Fig. 7) into a performance effect.
    pub fn occupancy(
        &self,
        threads_per_block: u32,
        regs_per_thread: u32,
        smem_per_block: u32,
    ) -> Occupancy {
        assert!(threads_per_block > 0, "empty block");
        let warps = self.warps_per_block(threads_per_block);
        let by_threads = self.max_threads_per_cu / threads_per_block;
        let by_warps = self.max_warps_per_cu / warps;
        let by_blocks = self.max_blocks_per_cu;
        // Register allocation granularity: per-warp, rounded to 4 regs/lane.
        let regs_per_warp = (regs_per_thread.max(1).next_multiple_of(4)) * self.warp_width;
        let by_regs = self.regs_per_cu / (regs_per_warp * warps).max(1);
        let by_smem = self
            .shared_mem_per_cu
            .checked_div(smem_per_block)
            .unwrap_or(u32::MAX);
        let mut blocks = by_threads
            .min(by_warps)
            .min(by_blocks)
            .min(by_regs)
            .min(by_smem);
        let limiter = if blocks == by_regs
            && by_regs <= by_smem
            && by_regs <= by_blocks
            && by_regs <= by_warps
        {
            "registers"
        } else if blocks == by_smem && by_smem <= by_blocks && by_smem <= by_warps {
            "shared memory"
        } else if blocks == by_blocks && by_blocks <= by_warps {
            "block slots"
        } else {
            "warp slots"
        };
        blocks = blocks.max(1); // a single block always "fits" (may be the whole CU)
        let warps_per_cu = (blocks * warps)
            .min(self.max_warps_per_cu)
            .max(warps.min(self.max_warps_per_cu))
            .max(1);
        Occupancy {
            blocks_per_cu: blocks,
            warps_per_cu,
            occupancy: warps_per_cu as f64 / self.max_warps_per_cu as f64,
            limiter,
        }
    }

    // ------------------------------------------------------------------
    // The catalogue
    // ------------------------------------------------------------------

    /// NVIDIA GTX280 ("Dutijc" testbed). GT200: 30 SMs of 8 cores,
    /// 1296 MHz, 141.7 GB/s, R = 3 (dual-issue mul+mad), no global-memory
    /// cache, 16 KiB shared memory, half-warp coalescing.
    pub fn gtx280() -> Self {
        DeviceSpec {
            name: "GTX280",
            arch: Arch::Gt200,
            kind: DeviceKind::Gpu,
            compute_units: 30,
            cores_per_cu: 8,
            core_clock_mhz: 1296,
            // Eq. 2: 1107 MHz * (512/8) * 2 * 1e-9 = 141.7 GB/s
            mem_bandwidth_gbs: 141.7,
            mem_capacity_mib: 1024,
            warp_width: 32,
            max_threads_per_cu: 1024,
            max_warps_per_cu: 32,
            max_blocks_per_cu: 8,
            regs_per_cu: 16384,
            max_regs_per_thread: 128,
            shared_mem_per_cu: 16 * 1024,
            max_workgroup_size: 512,
            shared_banks: 16,
            l1: None,
            l2: None,
            tex_cache: Some(CacheGeom {
                size: 8 * 1024,
                line: 64,
                assoc: 8,
            }),
            const_cache: Some(CacheGeom {
                size: 8 * 1024,
                line: 64,
                assoc: 4,
            }),
            segment_bytes: 64,
            coalesce_group: 16,
            // Achieved peak fractions in the paper: 68.6% of bandwidth,
            // 71.5% of FLOPS (Figs 1-2).
            dram_efficiency: 0.75,
            arith_cycle_scale: 0.664,
            mem_latency_ns: 420.0,
            latency_hiding_warps: 18.0,
            flops_per_core_per_clock: 3.0,
            wi_overhead_cycles: 0.0,
            barrier_cost_cycles: 8.0,
            shared_access_scale: 1.0,
            hw_launch_ns: 3_000.0,
            dram_partitions: 8,
            partition_hashed: false,
            l2_bandwidth_gbs: 0.0,
            taken_branch_cycles: 10.0,
        }
    }

    /// NVIDIA GTX480 ("Saturn" testbed). Fermi: 15 SMs of 32 cores,
    /// 1401 MHz, 177.4 GB/s, R = 2 (mad), true L1/L2 cache hierarchy,
    /// 48 KiB shared memory, full-warp coalescing.
    ///
    /// The paper's Table IV lists "60 compute units"; the device reports 15
    /// SMs (the 60 counts the four-wide schedulers). The simulator uses the
    /// 15 x 32 organisation; peak figures match the paper's Eq. 2/3 values
    /// (1344.96 GFlops, 177.4 GB/s) either way.
    pub fn gtx480() -> Self {
        DeviceSpec {
            name: "GTX480",
            arch: Arch::Fermi,
            kind: DeviceKind::Gpu,
            compute_units: 15,
            cores_per_cu: 32,
            core_clock_mhz: 1401,
            // Eq. 2: 1848 MHz * (384/8) * 2 * 1e-9 = 177.4 GB/s
            mem_bandwidth_gbs: 177.4,
            mem_capacity_mib: 1536,
            warp_width: 32,
            max_threads_per_cu: 1536,
            max_warps_per_cu: 48,
            max_blocks_per_cu: 8,
            regs_per_cu: 32768,
            max_regs_per_thread: 63,
            shared_mem_per_cu: 48 * 1024,
            max_workgroup_size: 1024,
            shared_banks: 32,
            l1: Some(CacheGeom {
                size: 16 * 1024,
                line: 128,
                assoc: 4,
            }),
            l2: Some(CacheGeom {
                size: 768 * 1024,
                line: 128,
                assoc: 16,
            }),
            tex_cache: Some(CacheGeom {
                size: 12 * 1024,
                line: 64,
                assoc: 8,
            }),
            const_cache: Some(CacheGeom {
                size: 8 * 1024,
                line: 64,
                assoc: 4,
            }),
            segment_bytes: 128,
            coalesce_group: 32,
            // Achieved peak fractions in the paper: 87.7% of bandwidth,
            // 97.7% of FLOPS (Figs 1-2).
            dram_efficiency: 0.93,
            arith_cycle_scale: 0.995,
            mem_latency_ns: 380.0,
            latency_hiding_warps: 22.0,
            flops_per_core_per_clock: 2.0,
            wi_overhead_cycles: 0.0,
            barrier_cost_cycles: 6.0,
            shared_access_scale: 1.0,
            hw_launch_ns: 3_000.0,
            dram_partitions: 6,
            partition_hashed: true,
            l2_bandwidth_gbs: 230.0,
            taken_branch_cycles: 6.0,
        }
    }

    /// ATI Radeon HD5870 ("Jupiter" testbed). Cypress: 20 SIMD engines,
    /// 16 thread processors x 5 VLIW lanes, 850 MHz, 153.6 GB/s GDDR5,
    /// 64-wide wavefronts.
    ///
    /// The VLIW5 packing of scalar kernels is imperfect; the
    /// `arith_cycle_scale` of 2.4 reflects a typical ~2.1 of 5 slots filled
    /// for the scalar (non-vectorised) OpenCL kernels the paper ports.
    pub fn hd5870() -> Self {
        DeviceSpec {
            name: "HD5870",
            arch: Arch::Cypress,
            kind: DeviceKind::Gpu,
            compute_units: 20,
            cores_per_cu: 80, // 16 thread processors x 5 VLIW lanes
            core_clock_mhz: 850,
            mem_bandwidth_gbs: 153.6,
            mem_capacity_mib: 1024,
            warp_width: 64,
            max_threads_per_cu: 1536,
            max_warps_per_cu: 24, // wavefronts
            max_blocks_per_cu: 8,
            regs_per_cu: 16384 * 4, // 256 KiB vector GPRs expressed as 32-bit regs
            max_regs_per_thread: 128,
            shared_mem_per_cu: 32 * 1024,
            max_workgroup_size: 256,
            shared_banks: 32,
            l1: None,
            l2: None,
            tex_cache: Some(CacheGeom {
                size: 8 * 1024,
                line: 64,
                assoc: 8,
            }),
            const_cache: Some(CacheGeom {
                size: 8 * 1024,
                line: 64,
                assoc: 4,
            }),
            segment_bytes: 128,
            coalesce_group: 64,
            dram_efficiency: 0.72,
            arith_cycle_scale: 2.4,
            mem_latency_ns: 450.0,
            latency_hiding_warps: 14.0,
            flops_per_core_per_clock: 2.0, // 2.72 TFlops peak
            wi_overhead_cycles: 0.0,
            barrier_cost_cycles: 10.0,
            shared_access_scale: 1.0,
            hw_launch_ns: 5_000.0,
            dram_partitions: 8,
            partition_hashed: true,
            l2_bandwidth_gbs: 0.0,
            taken_branch_cycles: 10.0,
        }
    }

    /// Intel Core i7-920 as an OpenCL device (AMD APP v2.2 in the paper).
    /// 4 cores at 2.67 GHz, SSE 4-wide; APP uses 64-wide logical wavefronts
    /// executed as loops, every work-item paying scheduling overhead, and
    /// "local memory" being an emulated copy through the cache hierarchy.
    pub fn intel920() -> Self {
        DeviceSpec {
            name: "Intel920",
            arch: Arch::X86Cpu,
            kind: DeviceKind::Cpu,
            compute_units: 4,
            cores_per_cu: 4, // SSE lanes
            core_clock_mhz: 2670,
            mem_bandwidth_gbs: 25.6, // triple-channel DDR3-1066
            mem_capacity_mib: 6144,
            warp_width: 64, // APP wavefront, the Table VI "FL" trigger
            max_threads_per_cu: 1024,
            max_warps_per_cu: 16,
            max_blocks_per_cu: 1,
            regs_per_cu: 1 << 20, // effectively unlimited (stack spill)
            max_regs_per_thread: 4096,
            shared_mem_per_cu: 32 * 1024,
            max_workgroup_size: 1024,
            shared_banks: 1,
            l1: Some(CacheGeom {
                size: 32 * 1024,
                line: 64,
                assoc: 8,
            }),
            l2: Some(CacheGeom {
                size: 8 * 1024 * 1024,
                line: 64,
                assoc: 16,
            }),
            tex_cache: None,
            const_cache: None,
            segment_bytes: 64,
            coalesce_group: 1,
            dram_efficiency: 0.60,
            arith_cycle_scale: 1.0,
            mem_latency_ns: 90.0,
            latency_hiding_warps: 1.0,
            flops_per_core_per_clock: 2.0, // SSE mul+add per lane
            wi_overhead_cycles: 14.0,
            barrier_cost_cycles: 1500.0,
            shared_access_scale: 6.0,
            hw_launch_ns: 20_000.0,
            dram_partitions: 1,
            partition_hashed: true,
            l2_bandwidth_gbs: 80.0,
            taken_branch_cycles: 3.0,
        }
    }

    /// Cell Broadband Engine SPEs via IBM's (then-immature) OpenCL.
    /// 8 SPEs at 3.2 GHz; each SPE owns a 256 KiB local store that must
    /// hold code, stack, work-group state and "local memory" — the origin
    /// of the paper's `CL_OUT_OF_RESOURCES` aborts (Table VI "ABT").
    pub fn cellbe() -> Self {
        DeviceSpec {
            name: "Cell/BE",
            arch: Arch::CellSpe,
            kind: DeviceKind::Accelerator,
            compute_units: 8,
            cores_per_cu: 4, // SPE SIMD lanes
            core_clock_mhz: 3200,
            mem_bandwidth_gbs: 25.6,
            mem_capacity_mib: 1024,
            warp_width: 4,
            max_threads_per_cu: 256,
            max_warps_per_cu: 64,
            max_blocks_per_cu: 1,
            regs_per_cu: 128 * 256,
            // The SPE ABI + IBM OpenCL runtime leave few usable registers;
            // kernels above this bound abort with CL_OUT_OF_RESOURCES.
            max_regs_per_thread: 40,
            // Usable fraction of the 256 KiB local store after code+stack.
            shared_mem_per_cu: 8 * 1024,
            max_workgroup_size: 256,
            shared_banks: 1,
            l1: None,
            l2: None,
            tex_cache: None,
            const_cache: None,
            segment_bytes: 128,
            coalesce_group: 1,
            dram_efficiency: 0.50,
            arith_cycle_scale: 1.0,
            mem_latency_ns: 600.0, // DMA into local store
            latency_hiding_warps: 2.0,
            flops_per_core_per_clock: 2.0,
            wi_overhead_cycles: 60.0,
            barrier_cost_cycles: 2000.0,
            shared_access_scale: 2.0,
            hw_launch_ns: 120_000.0,
            dram_partitions: 1,
            partition_hashed: true,
            l2_bandwidth_gbs: 0.0,
            taken_branch_cycles: 4.0,
        }
    }

    /// All devices of the paper's testbeds, NVIDIA GPUs first.
    pub fn all() -> Vec<DeviceSpec> {
        vec![
            Self::gtx280(),
            Self::gtx480(),
            Self::hd5870(),
            Self::intel920(),
            Self::cellbe(),
        ]
    }

    /// Look up a device by name (case-insensitive).
    pub fn by_name(name: &str) -> Option<DeviceSpec> {
        Self::all()
            .into_iter()
            .find(|d| d.name.eq_ignore_ascii_case(name))
    }
}

/// Result of the occupancy calculation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Occupancy {
    /// Blocks resident per compute unit.
    pub blocks_per_cu: u32,
    /// Warps resident per compute unit.
    pub warps_per_cu: u32,
    /// Fraction of the CU's warp slots filled.
    pub occupancy: f64,
    /// Which resource limited residency.
    pub limiter: &'static str,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theoretical_peaks_match_paper_equations() {
        // Paper Section IV-A: 933.12 and 1344.96 GFlops; 141.7 / 177.4 GB/s.
        let g280 = DeviceSpec::gtx280();
        let g480 = DeviceSpec::gtx480();
        assert!((g280.theoretical_peak_gflops() - 933.12).abs() < 0.01);
        assert!((g480.theoretical_peak_gflops() - 1344.96).abs() < 0.01);
        assert!((g280.theoretical_peak_bandwidth_gbs() - 141.7).abs() < 1e-9);
        assert!((g480.theoretical_peak_bandwidth_gbs() - 177.4).abs() < 1e-9);
    }

    #[test]
    fn occupancy_full_for_light_kernels() {
        let d = DeviceSpec::gtx480();
        let o = d.occupancy(256, 16, 0);
        assert_eq!(o.warps_per_cu, 48);
        assert!((o.occupancy - 1.0).abs() < 1e-9);
    }

    #[test]
    fn occupancy_limited_by_registers() {
        let d = DeviceSpec::gtx480();
        // 63 regs/thread * 256 threads = 16k regs per block; 32k regfile
        // fits only 2 blocks = 16 warps of 48.
        let o = d.occupancy(256, 63, 0);
        assert_eq!(o.blocks_per_cu, 2);
        assert_eq!(o.warps_per_cu, 16);
        assert_eq!(o.limiter, "registers");
        assert!(o.occupancy < 0.5);
    }

    #[test]
    fn occupancy_limited_by_shared_memory() {
        let d = DeviceSpec::gtx280();
        let o = d.occupancy(64, 8, 9 * 1024); // 9 KiB of 16 KiB -> 1 block
        assert_eq!(o.blocks_per_cu, 1);
        assert_eq!(o.limiter, "shared memory");
    }

    #[test]
    fn occupancy_single_block_always_fits() {
        let d = DeviceSpec::cellbe();
        let o = d.occupancy(256, 64, 0);
        assert!(o.blocks_per_cu >= 1);
        assert!(o.warps_per_cu >= 1);
    }

    #[test]
    fn warp_counting() {
        let d = DeviceSpec::gtx280();
        assert_eq!(d.warps_per_block(32), 1);
        assert_eq!(d.warps_per_block(33), 2);
        assert_eq!(d.warps_per_block(256), 8);
        let h = DeviceSpec::hd5870();
        assert_eq!(h.warps_per_block(256), 4); // 64-wide wavefronts
    }

    #[test]
    fn catalogue_lookup() {
        assert_eq!(DeviceSpec::by_name("gtx280").unwrap().name, "GTX280");
        assert_eq!(DeviceSpec::by_name("HD5870").unwrap().arch, Arch::Cypress);
        assert!(DeviceSpec::by_name("nope").is_none());
        assert_eq!(DeviceSpec::all().len(), 5);
    }

    #[test]
    fn wavefront_width_distinguishes_vendors() {
        assert_eq!(DeviceSpec::gtx280().warp_width, 32);
        assert_eq!(DeviceSpec::gtx480().warp_width, 32);
        assert_eq!(DeviceSpec::hd5870().warp_width, 64);
        assert_eq!(DeviceSpec::intel920().warp_width, 64);
    }
}
