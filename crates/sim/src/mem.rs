//! Device global memory: a flat byte array with a bump allocator, plus the
//! copy-on-write page overlay that gives each thread block a private view
//! of global memory during parallel block execution.

use crate::error::{FaultKind, SimError};
use gpucmp_ptx::Space;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Natural-alignment check for a device access: every 2/4/8-byte access
/// must be aligned to its own size, as on real GPU hardware.
#[inline]
pub(crate) fn check_aligned(space: Space, addr: u64, size: u32) -> Result<(), FaultKind> {
    if size > 1 && addr % size as u64 != 0 {
        Err(FaultKind::Misaligned { space, addr, size })
    } else {
        Ok(())
    }
}

/// A device pointer: a byte offset into the device's global memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DevPtr(pub u64);

impl DevPtr {
    /// Null device pointer.
    pub const NULL: DevPtr = DevPtr(0);

    /// Byte offset `n` past this pointer.
    pub fn offset(self, n: u64) -> DevPtr {
        DevPtr(self.0 + n)
    }
}

/// Simulated device global memory.
///
/// Allocation is a bump allocator with 256-byte alignment (matching the
/// alignment guarantees of `cudaMalloc`/`clCreateBuffer`); `free` is a
/// no-op except for accounting, which is all the benchmarks need.
/// Address 0 is reserved so that `DevPtr::NULL` never aliases a live
/// allocation.
#[derive(Clone, Debug)]
pub struct GlobalMemory {
    data: Vec<u8>,
    bump: u64,
    live_bytes: u64,
    /// Every allocation ever made, as `(start, bytes)` in ascending start
    /// order (the bump allocator never reuses addresses). Backs the
    /// allocation-granular checks of the memcheck sanitizer and host
    /// transfer-length validation.
    allocs: Vec<(u64, u64)>,
}

impl GlobalMemory {
    /// Alignment of every allocation.
    pub const ALIGN: u64 = 256;

    /// Create a memory of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        GlobalMemory {
            data: vec![0u8; capacity as usize],
            bump: Self::ALIGN, // reserve page 0 for NULL
            live_bytes: 0,
            allocs: Vec::new(),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.data.len() as u64
    }

    /// Bytes currently allocated (live).
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Allocate `bytes` bytes; contents are zeroed.
    pub fn alloc(&mut self, bytes: u64) -> Result<DevPtr, SimError> {
        let start = self.bump;
        let end = start.checked_add(bytes).ok_or(SimError::OutOfMemory {
            requested: bytes,
            available: self.capacity().saturating_sub(self.bump),
        })?;
        if end > self.capacity() {
            return Err(SimError::OutOfMemory {
                requested: bytes,
                available: self.capacity() - self.bump,
            });
        }
        self.data[start as usize..end as usize].fill(0);
        self.bump = end.next_multiple_of(Self::ALIGN);
        self.live_bytes += bytes;
        self.allocs.push((start, bytes));
        Ok(DevPtr(start))
    }

    /// The allocation containing `addr`, as `(start, bytes)`.
    pub fn alloc_containing(&self, addr: u64) -> Option<(u64, u64)> {
        let i = self.allocs.partition_point(|&(start, _)| start <= addr);
        let (start, bytes) = *self.allocs.get(i.checked_sub(1)?)?;
        (addr < start + bytes).then_some((start, bytes))
    }

    /// Allocation-granular check: the whole `size`-byte access at `addr`
    /// must lie inside a single allocation. This is the memcheck analogue
    /// of cuda-memcheck's precise OOB detection — stricter than [`check`],
    /// which only guards the device's physical capacity.
    ///
    /// [`check`]: GlobalMemory::check
    pub fn check_alloc(&self, addr: u64, size: u64) -> Result<(), FaultKind> {
        if let Some((start, bytes)) = self.alloc_containing(addr) {
            if addr
                .checked_add(size)
                .is_some_and(|end| end <= start + bytes)
            {
                return Ok(());
            }
        }
        // The limit reported is the end of the nearest allocation at or
        // below `addr` (the "N bytes past the end of allocation X"
        // diagnostic), or 0 when the address precedes every allocation.
        let i = self.allocs.partition_point(|&(start, _)| start <= addr);
        let limit = i
            .checked_sub(1)
            .and_then(|i| self.allocs.get(i))
            .map_or(0, |&(start, bytes)| start + bytes);
        Err(FaultKind::OutOfBounds {
            space: Space::Global,
            addr,
            size: size.min(u32::MAX as u64) as u32,
            limit,
        })
    }

    /// Release an allocation (accounting only; the bump pointer does not
    /// move backwards).
    pub fn free(&mut self, _ptr: DevPtr, bytes: u64) {
        self.live_bytes = self.live_bytes.saturating_sub(bytes);
    }

    /// Bounds-check an access of `size` bytes at `addr`.
    #[inline]
    pub fn check(&self, addr: u64, size: u32) -> Result<(), FaultKind> {
        if addr
            .checked_add(size as u64)
            .is_none_or(|end| end > self.capacity())
        {
            Err(FaultKind::OutOfBounds {
                space: Space::Global,
                addr,
                size,
                limit: self.capacity(),
            })
        } else {
            Ok(())
        }
    }

    /// Read `size` (1/2/4/8) bytes little-endian into a u64.
    #[inline]
    pub fn read(&self, addr: u64, size: u32) -> Result<u64, FaultKind> {
        check_aligned(Space::Global, addr, size)?;
        self.check(addr, size)?;
        let a = addr as usize;
        Ok(match size {
            1 => self.data[a] as u64,
            2 => u16::from_le_bytes(self.data[a..a + 2].try_into().unwrap()) as u64,
            4 => u32::from_le_bytes(self.data[a..a + 4].try_into().unwrap()) as u64,
            8 => u64::from_le_bytes(self.data[a..a + 8].try_into().unwrap()),
            _ => unreachable!("unsupported access size {size}"),
        })
    }

    /// Write the low `size` (1/2/4/8) bytes of `value` little-endian.
    #[inline]
    pub fn write(&mut self, addr: u64, size: u32, value: u64) -> Result<(), FaultKind> {
        check_aligned(Space::Global, addr, size)?;
        self.check(addr, size)?;
        let a = addr as usize;
        match size {
            1 => self.data[a] = value as u8,
            2 => self.data[a..a + 2].copy_from_slice(&(value as u16).to_le_bytes()),
            4 => self.data[a..a + 4].copy_from_slice(&(value as u32).to_le_bytes()),
            8 => self.data[a..a + 8].copy_from_slice(&value.to_le_bytes()),
            _ => unreachable!("unsupported access size {size}"),
        }
        Ok(())
    }

    /// Host-to-device copy (`cudaMemcpy` / `clEnqueueWriteBuffer` backing).
    pub fn copy_in(&mut self, ptr: DevPtr, bytes: &[u8]) -> Result<(), SimError> {
        self.check(ptr.0, bytes.len() as u32)
            .map_err(SimError::from)?;
        let a = ptr.0 as usize;
        self.data[a..a + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Device-to-host copy.
    pub fn copy_out(&self, ptr: DevPtr, bytes: &mut [u8]) -> Result<(), SimError> {
        self.check(ptr.0, bytes.len() as u32)
            .map_err(SimError::from)?;
        let a = ptr.0 as usize;
        bytes.copy_from_slice(&self.data[a..a + bytes.len()]);
        Ok(())
    }

    /// Typed helper: write a `&[f32]` slice at `ptr`.
    pub fn write_f32_slice(&mut self, ptr: DevPtr, values: &[f32]) -> Result<(), SimError> {
        let mut bytes = Vec::with_capacity(values.len() * 4);
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.copy_in(ptr, &bytes)
    }

    /// Typed helper: read `len` f32 values at `ptr`.
    pub fn read_f32_slice(&self, ptr: DevPtr, len: usize) -> Result<Vec<f32>, SimError> {
        let mut bytes = vec![0u8; len * 4];
        self.copy_out(ptr, &mut bytes)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Typed helper: write a `&[i32]` slice at `ptr`.
    pub fn write_i32_slice(&mut self, ptr: DevPtr, values: &[i32]) -> Result<(), SimError> {
        let mut bytes = Vec::with_capacity(values.len() * 4);
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.copy_in(ptr, &bytes)
    }

    /// Typed helper: read `len` i32 values at `ptr`.
    pub fn read_i32_slice(&self, ptr: DevPtr, len: usize) -> Result<Vec<i32>, SimError> {
        let mut bytes = vec![0u8; len * 4];
        self.copy_out(ptr, &mut bytes)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Typed helper: write a `&[u32]` slice at `ptr`.
    pub fn write_u32_slice(&mut self, ptr: DevPtr, values: &[u32]) -> Result<(), SimError> {
        let mut bytes = Vec::with_capacity(values.len() * 4);
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.copy_in(ptr, &bytes)
    }

    /// Typed helper: read `len` u32 values at `ptr`.
    pub fn read_u32_slice(&self, ptr: DevPtr, len: usize) -> Result<Vec<u32>, SimError> {
        let mut bytes = vec![0u8; len * 4];
        self.copy_out(ptr, &mut bytes)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

/// Bytes per overlay page.
const PAGE_BYTES: usize = 4096;
const PAGE_SHIFT: u32 = PAGE_BYTES.trailing_zeros();
const PAGE_MASK: u64 = PAGE_BYTES as u64 - 1;
const DIRTY_WORDS: usize = PAGE_BYTES / 64;

/// One copy-on-write page: a snapshot copy of the base page plus a byte
/// dirty bitmap recording exactly which bytes the owning block wrote.
struct OverlayPage {
    data: Box<[u8; PAGE_BYTES]>,
    dirty: Box<[u64; DIRTY_WORDS]>,
}

/// A per-block write overlay over a read-only [`GlobalMemory`] snapshot.
///
/// During parallel block execution every block reads the launch-entry
/// global memory through its overlay and writes only into the overlay;
/// after all blocks join, overlays are committed in ascending block index
/// order, which makes the final memory image a pure function of the launch
/// inputs — identical for serial and parallel execution. A block sees its
/// own writes (copied pages carry them) but never another block's, which
/// matches the CUDA/OpenCL memory model: global writes of concurrent
/// blocks are not ordered until the kernel completes.
#[derive(Default)]
pub struct WriteOverlay {
    pages: HashMap<u64, OverlayPage>,
}

impl WriteOverlay {
    /// An empty overlay.
    pub fn new() -> Self {
        WriteOverlay::default()
    }

    /// Number of copied (written-to) pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    #[inline]
    fn byte_at(&self, base: &GlobalMemory, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(p) => p.data[(addr & PAGE_MASK) as usize],
            None => base.data[addr as usize],
        }
    }

    /// Read `size` (1/2/4/8) bytes little-endian through the overlay.
    #[inline]
    pub fn read(&self, base: &GlobalMemory, addr: u64, size: u32) -> Result<u64, FaultKind> {
        if self.pages.is_empty() {
            return base.read(addr, size);
        }
        check_aligned(Space::Global, addr, size)?;
        base.check(addr, size)?;
        let first = addr >> PAGE_SHIFT;
        let last = (addr + size as u64 - 1) >> PAGE_SHIFT;
        if first == last {
            let a = (addr & PAGE_MASK) as usize;
            let buf: &[u8] = match self.pages.get(&first) {
                Some(p) => &p.data[..],
                None => {
                    let b = (addr as usize) & !(PAGE_BYTES - 1);
                    &base.data[b..(b + PAGE_BYTES).min(base.data.len())]
                }
            };
            Ok(match size {
                1 => buf[a] as u64,
                2 => u16::from_le_bytes(buf[a..a + 2].try_into().unwrap()) as u64,
                4 => u32::from_le_bytes(buf[a..a + 4].try_into().unwrap()) as u64,
                8 => u64::from_le_bytes(buf[a..a + 8].try_into().unwrap()),
                _ => unreachable!("unsupported access size {size}"),
            })
        } else {
            let mut v = 0u64;
            for i in 0..size as u64 {
                v |= (self.byte_at(base, addr + i) as u64) << (8 * i);
            }
            Ok(v)
        }
    }

    fn page_mut(&mut self, base: &GlobalMemory, page: u64) -> &mut OverlayPage {
        self.pages.entry(page).or_insert_with(|| {
            let start = (page << PAGE_SHIFT) as usize;
            let end = (start + PAGE_BYTES).min(base.data.len());
            let mut data = Box::new([0u8; PAGE_BYTES]);
            data[..end - start].copy_from_slice(&base.data[start..end]);
            OverlayPage {
                data,
                dirty: Box::new([0u64; DIRTY_WORDS]),
            }
        })
    }

    /// Write the low `size` (1/2/4/8) bytes of `value` little-endian into
    /// the overlay (bounds-checked against the base capacity).
    #[inline]
    pub fn write(
        &mut self,
        base: &GlobalMemory,
        addr: u64,
        size: u32,
        value: u64,
    ) -> Result<(), FaultKind> {
        check_aligned(Space::Global, addr, size)?;
        base.check(addr, size)?;
        let bytes = value.to_le_bytes();
        let first = addr >> PAGE_SHIFT;
        let last = (addr + size as u64 - 1) >> PAGE_SHIFT;
        if first == last {
            let p = self.page_mut(base, first);
            let a = (addr & PAGE_MASK) as usize;
            p.data[a..a + size as usize].copy_from_slice(&bytes[..size as usize]);
            for i in a..a + size as usize {
                p.dirty[i >> 6] |= 1u64 << (i & 63);
            }
        } else {
            for (i, &b) in bytes[..size as usize].iter().enumerate() {
                let a = addr + i as u64;
                let p = self.page_mut(base, a >> PAGE_SHIFT);
                let o = (a & PAGE_MASK) as usize;
                p.data[o] = b;
                p.dirty[o >> 6] |= 1u64 << (o & 63);
            }
        }
        Ok(())
    }

    /// Commit every dirty byte into `target`, in ascending page order, and
    /// return the number of bytes written. Committing overlays in ascending
    /// block index order reproduces the write-after-write resolution of
    /// serial block execution (the highest-index writer wins).
    pub fn commit(self, target: &mut GlobalMemory) -> u64 {
        let mut pages: Vec<(u64, OverlayPage)> = self.pages.into_iter().collect();
        pages.sort_unstable_by_key(|(p, _)| *p);
        let mut written = 0u64;
        for (page, op) in pages {
            let base_addr = (page << PAGE_SHIFT) as usize;
            for (w, &mask) in op.dirty.iter().enumerate() {
                if mask == 0 {
                    continue;
                }
                if mask == u64::MAX {
                    let s = base_addr + w * 64;
                    target.data[s..s + 64].copy_from_slice(&op.data[w * 64..w * 64 + 64]);
                    written += 64;
                } else {
                    let mut m = mask;
                    while m != 0 {
                        let bit = m.trailing_zeros() as usize;
                        m &= m - 1;
                        let off = w * 64 + bit;
                        target.data[base_addr + off] = op.data[off];
                        written += 1;
                    }
                }
            }
        }
        written
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_nonnull() {
        let mut m = GlobalMemory::new(1 << 16);
        let a = m.alloc(10).unwrap();
        let b = m.alloc(10).unwrap();
        assert_ne!(a, DevPtr::NULL);
        assert_eq!(a.0 % GlobalMemory::ALIGN, 0);
        assert_eq!(b.0 % GlobalMemory::ALIGN, 0);
        assert!(b.0 >= a.0 + 10);
        assert_eq!(m.live_bytes(), 20);
        m.free(a, 10);
        assert_eq!(m.live_bytes(), 10);
    }

    #[test]
    fn alloc_zeroes_memory() {
        let mut m = GlobalMemory::new(1 << 12);
        let p = m.alloc(8).unwrap();
        m.write(p.0, 8, u64::MAX).unwrap();
        // bump allocator never reuses, but contents must still be zeroed on
        // fresh allocations
        let q = m.alloc(8).unwrap();
        assert_eq!(m.read(q.0, 8).unwrap(), 0);
    }

    #[test]
    fn out_of_memory_reported() {
        let mut m = GlobalMemory::new(1024);
        let e = m.alloc(4096).unwrap_err();
        assert!(matches!(e, SimError::OutOfMemory { .. }));
    }

    #[test]
    fn read_write_round_trip_all_sizes() {
        let mut m = GlobalMemory::new(4096);
        let p = m.alloc(64).unwrap();
        for (size, value) in [
            (1u32, 0xAAu64),
            (2, 0xBBCC),
            (4, 0xDEADBEEF),
            (8, 0x0123456789ABCDEF),
        ] {
            m.write(p.0, size, value).unwrap();
            assert_eq!(m.read(p.0, size).unwrap(), value);
        }
    }

    #[test]
    fn bounds_checked() {
        let m = GlobalMemory::new(64);
        assert!(m.read(60, 8).is_err());
        assert!(m.read(64, 1).is_err());
        assert!(m.read(u64::MAX, 8).is_err());
        assert!(m.read(56, 8).is_ok());
    }

    #[test]
    fn misaligned_access_trapped() {
        let mut m = GlobalMemory::new(4096);
        let p = m.alloc(64).unwrap();
        let e = m.read(p.0 + 2, 4).unwrap_err();
        assert!(matches!(e, FaultKind::Misaligned { size: 4, .. }));
        let e = m.write(p.0 + 1, 2, 7).unwrap_err();
        assert!(matches!(e, FaultKind::Misaligned { size: 2, .. }));
        // byte accesses are always aligned
        assert!(m.read(p.0 + 3, 1).is_ok());
    }

    #[test]
    fn alloc_granular_checks() {
        let mut m = GlobalMemory::new(1 << 16);
        let a = m.alloc(100).unwrap();
        let b = m.alloc(100).unwrap();
        assert_eq!(m.alloc_containing(a.0 + 50), Some((a.0, 100)));
        assert_eq!(m.alloc_containing(b.0), Some((b.0, 100)));
        // padding between allocations belongs to no allocation
        assert_eq!(m.alloc_containing(a.0 + 100), None);
        assert_eq!(m.alloc_containing(0), None);
        assert!(m.check_alloc(a.0, 100).is_ok());
        assert!(m.check_alloc(a.0 + 96, 4).is_ok());
        // crossing the end of the allocation is OOB even though the device
        // capacity check would pass
        let e = m.check_alloc(a.0 + 96, 8).unwrap_err();
        assert!(matches!(e, FaultKind::OutOfBounds { .. }));
        assert!(m.check_alloc(a.0 + 100, 1).is_err());
    }

    #[test]
    fn typed_slices_round_trip() {
        let mut m = GlobalMemory::new(4096);
        let p = m.alloc(64).unwrap();
        m.write_f32_slice(p, &[1.5, -2.5, 3.25]).unwrap();
        assert_eq!(m.read_f32_slice(p, 3).unwrap(), vec![1.5, -2.5, 3.25]);
        m.write_i32_slice(p, &[-7, 8]).unwrap();
        assert_eq!(m.read_i32_slice(p, 2).unwrap(), vec![-7, 8]);
        m.write_u32_slice(p, &[0xffff_ffff]).unwrap();
        assert_eq!(m.read_u32_slice(p, 1).unwrap(), vec![0xffff_ffff]);
    }
}
