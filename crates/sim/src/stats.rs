//! Execution statistics gathered by the interpreter and consumed by the
//! timing model.

use serde::{Deserialize, Serialize};

/// Dynamic statistics of one kernel launch.
///
/// All counts are exact (the interpreter executes every thread); the
/// timing model in [`crate::timing`] converts them to virtual nanoseconds.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecStats {
    /// Thread blocks executed.
    pub blocks: u64,
    /// Total threads launched.
    pub threads: u64,
    /// Warp-level instructions issued (each costs issue cycles regardless
    /// of how many lanes are active — the SIMT lockstep cost).
    pub warp_instructions: u64,
    /// Lane-level instructions executed (sum of active lanes over all
    /// warp-instructions).
    pub lane_instructions: u64,
    /// Weighted issue cycles, in milli-cycles (scaled by 1000 so the
    /// sub-cycle costs of dual-issue architectures stay integral). One
    /// simple warp ALU op on a 1.0-scale device contributes 1000.
    pub issue_millicycles: u64,
    /// Floating-point operations executed (mad/fma count 2).
    pub flops: u64,
    /// DRAM traffic after all caches, in bytes, reads.
    pub dram_read_bytes: u64,
    /// DRAM traffic after all caches, in bytes, writes.
    pub dram_write_bytes: u64,
    /// Global-memory transactions issued by warps (before cache filtering).
    pub gmem_transactions: u64,
    /// Minimum transactions the same accesses would have cost had every
    /// coalesce group been perfectly contiguous — the fully-coalesced
    /// floor. `gmem_transactions - gmem_ideal_transactions` is the
    /// serialisation overhead the paper attributes PR deviations to.
    pub gmem_ideal_transactions: u64,
    /// Global-memory access instructions (warp-level).
    pub gmem_instructions: u64,
    /// L1 hits / misses (Fermi-style global cache).
    pub l1_hits: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Bytes moved through the L2 (hits and misses alike).
    pub l2_touched_bytes: u64,
    /// Texture cache hits.
    pub tex_hits: u64,
    /// Texture cache misses.
    pub tex_misses: u64,
    /// Constant cache serialisation events (distinct addresses within one
    /// warp constant load beyond the first).
    pub const_serializations: u64,
    /// Constant cache line lookups (after the warp-broadcast dedup).
    pub const_line_accesses: u64,
    /// Constant cache misses (line fills from DRAM).
    pub const_misses: u64,
    /// Shared-memory access cycles including bank-conflict serialisation.
    pub shared_cycles: u64,
    /// Shared-memory warp access groups (bank-conflict denominators).
    pub shared_accesses: u64,
    /// Shared-memory accesses that conflicted (extra cycles beyond 1).
    pub shared_conflict_cycles: u64,
    /// Block-wide barriers executed (per warp arrival).
    pub barriers: u64,
    /// Divergent branches (warp split into two paths).
    pub divergent_branches: u64,
    /// Atomic operations executed (lane level).
    pub atomics: u64,
    /// Post-cache DRAM traffic per memory partition (GT200-era GPUs stripe
    /// DRAM across partitions at 256-byte granularity with *no* address
    /// hashing, so hot segments — e.g. a filter kernel re-reading the same
    /// few words from global memory — serialise on one partition: the
    /// "partition camping" effect).
    pub partition_bytes: [u64; 8],
}

impl ExecStats {
    /// Merge another launch's stats into this one (used when a benchmark
    /// aggregates several launches).
    pub fn merge(&mut self, other: &ExecStats) {
        self.blocks += other.blocks;
        self.threads += other.threads;
        self.warp_instructions += other.warp_instructions;
        self.lane_instructions += other.lane_instructions;
        self.issue_millicycles += other.issue_millicycles;
        self.flops += other.flops;
        self.dram_read_bytes += other.dram_read_bytes;
        self.dram_write_bytes += other.dram_write_bytes;
        self.gmem_transactions += other.gmem_transactions;
        self.gmem_ideal_transactions += other.gmem_ideal_transactions;
        self.gmem_instructions += other.gmem_instructions;
        self.l1_hits += other.l1_hits;
        self.l1_misses += other.l1_misses;
        self.l2_hits += other.l2_hits;
        self.l2_misses += other.l2_misses;
        self.l2_touched_bytes += other.l2_touched_bytes;
        self.tex_hits += other.tex_hits;
        self.tex_misses += other.tex_misses;
        self.const_serializations += other.const_serializations;
        self.const_line_accesses += other.const_line_accesses;
        self.const_misses += other.const_misses;
        self.shared_cycles += other.shared_cycles;
        self.shared_accesses += other.shared_accesses;
        self.shared_conflict_cycles += other.shared_conflict_cycles;
        self.barriers += other.barriers;
        self.divergent_branches += other.divergent_branches;
        self.atomics += other.atomics;
        for (a, b) in self.partition_bytes.iter_mut().zip(&other.partition_bytes) {
            *a += b;
        }
    }

    /// Traffic of the hottest DRAM partition.
    pub fn max_partition_bytes(&self) -> u64 {
        self.partition_bytes.iter().copied().max().unwrap_or(0)
    }

    /// Total DRAM traffic in bytes.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }

    /// Average active lanes per warp-instruction (SIMD efficiency).
    pub fn simd_efficiency(&self, warp_width: u32) -> f64 {
        if self.warp_instructions == 0 {
            return 0.0;
        }
        self.lane_instructions as f64 / (self.warp_instructions as f64 * warp_width as f64)
    }

    /// L1 hit rate in `[0, 1]`; zero when the L1 saw no traffic.
    pub fn l1_hit_rate(&self) -> f64 {
        ratio(self.l1_hits, self.l1_hits + self.l1_misses)
    }

    /// L2 hit rate in `[0, 1]`.
    pub fn l2_hit_rate(&self) -> f64 {
        ratio(self.l2_hits, self.l2_hits + self.l2_misses)
    }

    /// Texture cache hit rate in `[0, 1]`.
    pub fn tex_hit_rate(&self) -> f64 {
        ratio(self.tex_hits, self.tex_hits + self.tex_misses)
    }

    /// Constant cache hit rate in `[0, 1]` (line lookups that did not
    /// fill from DRAM). 1.0 for broadcast reads of a resident line.
    pub fn const_hit_rate(&self) -> f64 {
        ratio(
            self.const_line_accesses.saturating_sub(self.const_misses),
            self.const_line_accesses,
        )
    }

    /// Coalescing efficiency in `(0, 1]`: the fully-coalesced transaction
    /// floor over the transactions actually issued. 1.0 means every warp
    /// access was perfectly contiguous; small values mean serialisation.
    pub fn coalescing_efficiency(&self) -> f64 {
        if self.gmem_transactions == 0 {
            return 1.0;
        }
        self.gmem_ideal_transactions as f64 / self.gmem_transactions as f64
    }

    /// Fraction of shared-memory access cycles lost to bank-conflict
    /// serialisation.
    pub fn bank_conflict_share(&self) -> f64 {
        ratio(self.shared_conflict_cycles, self.shared_cycles)
    }

    /// Flatten every raw counter plus the derived rates into an ordered
    /// [`CounterSet`] — the machine-readable form consumed by the trace
    /// exporter, the bench report, and the CI gate.
    pub fn counter_set(&self, warp_width: u32) -> CounterSet {
        let mut c = CounterSet::new();
        c.push("blocks", self.blocks as f64);
        c.push("threads", self.threads as f64);
        c.push("warp_instructions", self.warp_instructions as f64);
        c.push("lane_instructions", self.lane_instructions as f64);
        c.push("issue_cycles", self.issue_millicycles as f64 / 1000.0);
        c.push("flops", self.flops as f64);
        c.push("dram_read_bytes", self.dram_read_bytes as f64);
        c.push("dram_write_bytes", self.dram_write_bytes as f64);
        c.push("gmem_instructions", self.gmem_instructions as f64);
        c.push("gmem_transactions", self.gmem_transactions as f64);
        c.push(
            "gmem_ideal_transactions",
            self.gmem_ideal_transactions as f64,
        );
        c.push("l1_hits", self.l1_hits as f64);
        c.push("l1_misses", self.l1_misses as f64);
        c.push("l2_hits", self.l2_hits as f64);
        c.push("l2_misses", self.l2_misses as f64);
        c.push("l2_touched_bytes", self.l2_touched_bytes as f64);
        c.push("tex_hits", self.tex_hits as f64);
        c.push("tex_misses", self.tex_misses as f64);
        c.push("const_line_accesses", self.const_line_accesses as f64);
        c.push("const_misses", self.const_misses as f64);
        c.push("const_serializations", self.const_serializations as f64);
        c.push("shared_accesses", self.shared_accesses as f64);
        c.push("shared_cycles", self.shared_cycles as f64);
        c.push("shared_conflict_cycles", self.shared_conflict_cycles as f64);
        c.push("barriers", self.barriers as f64);
        c.push("divergent_branches", self.divergent_branches as f64);
        c.push("atomics", self.atomics as f64);
        c.push("max_partition_bytes", self.max_partition_bytes() as f64);
        // Derived rates (the paper's attribution vocabulary).
        c.push("simd_efficiency", self.simd_efficiency(warp_width));
        c.push("coalescing_efficiency", self.coalescing_efficiency());
        c.push("l1_hit_rate", self.l1_hit_rate());
        c.push("l2_hit_rate", self.l2_hit_rate());
        c.push("tex_hit_rate", self.tex_hit_rate());
        c.push("const_hit_rate", self.const_hit_rate());
        c.push("bank_conflict_share", self.bank_conflict_share());
        c
    }
}

#[inline]
fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// A flat, ordered `name -> value` counter map — the machine-readable
/// currency of the observability layer. Names are stable identifiers
/// (they appear in `BENCH_*.json` and chrome traces, and the CI gate
/// keys on them), so treat renames as breaking.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CounterSet {
    entries: Vec<(String, f64)>,
}

impl CounterSet {
    /// An empty set.
    pub fn new() -> Self {
        CounterSet::default()
    }

    /// Append a counter (last write wins on lookup collisions).
    pub fn push(&mut self, name: impl Into<String>, value: f64) {
        self.entries.push((name.into(), value));
    }

    /// Look a counter up by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.entries
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Iterate `(name, value)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no counters have been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = ExecStats {
            blocks: 1,
            flops: 10,
            dram_read_bytes: 100,
            ..Default::default()
        };
        let b = ExecStats {
            blocks: 2,
            flops: 5,
            dram_write_bytes: 50,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.blocks, 3);
        assert_eq!(a.flops, 15);
        assert_eq!(a.dram_bytes(), 150);
    }

    #[test]
    fn simd_efficiency_bounds() {
        let s = ExecStats {
            warp_instructions: 10,
            lane_instructions: 160,
            ..Default::default()
        };
        assert!((s.simd_efficiency(32) - 0.5).abs() < 1e-12);
        assert_eq!(ExecStats::default().simd_efficiency(32), 0.0);
    }
}
