//! Execution statistics gathered by the interpreter and consumed by the
//! timing model.

use serde::{Deserialize, Serialize};

/// Dynamic statistics of one kernel launch.
///
/// All counts are exact (the interpreter executes every thread); the
/// timing model in [`crate::timing`] converts them to virtual nanoseconds.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecStats {
    /// Thread blocks executed.
    pub blocks: u64,
    /// Total threads launched.
    pub threads: u64,
    /// Warp-level instructions issued (each costs issue cycles regardless
    /// of how many lanes are active — the SIMT lockstep cost).
    pub warp_instructions: u64,
    /// Lane-level instructions executed (sum of active lanes over all
    /// warp-instructions).
    pub lane_instructions: u64,
    /// Weighted issue cycles, in milli-cycles (scaled by 1000 so the
    /// sub-cycle costs of dual-issue architectures stay integral). One
    /// simple warp ALU op on a 1.0-scale device contributes 1000.
    pub issue_millicycles: u64,
    /// Floating-point operations executed (mad/fma count 2).
    pub flops: u64,
    /// DRAM traffic after all caches, in bytes, reads.
    pub dram_read_bytes: u64,
    /// DRAM traffic after all caches, in bytes, writes.
    pub dram_write_bytes: u64,
    /// Global-memory transactions issued by warps (before cache filtering).
    pub gmem_transactions: u64,
    /// Global-memory access instructions (warp-level).
    pub gmem_instructions: u64,
    /// L1 hits / misses (Fermi-style global cache).
    pub l1_hits: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Bytes moved through the L2 (hits and misses alike).
    pub l2_touched_bytes: u64,
    /// Texture cache hits.
    pub tex_hits: u64,
    /// Texture cache misses.
    pub tex_misses: u64,
    /// Constant cache serialisation events (distinct addresses within one
    /// warp constant load beyond the first).
    pub const_serializations: u64,
    /// Constant cache misses (line fills from DRAM).
    pub const_misses: u64,
    /// Shared-memory access cycles including bank-conflict serialisation.
    pub shared_cycles: u64,
    /// Shared-memory accesses that conflicted (extra cycles beyond 1).
    pub shared_conflict_cycles: u64,
    /// Block-wide barriers executed (per warp arrival).
    pub barriers: u64,
    /// Divergent branches (warp split into two paths).
    pub divergent_branches: u64,
    /// Atomic operations executed (lane level).
    pub atomics: u64,
    /// Post-cache DRAM traffic per memory partition (GT200-era GPUs stripe
    /// DRAM across partitions at 256-byte granularity with *no* address
    /// hashing, so hot segments — e.g. a filter kernel re-reading the same
    /// few words from global memory — serialise on one partition: the
    /// "partition camping" effect).
    pub partition_bytes: [u64; 8],
}

impl ExecStats {
    /// Merge another launch's stats into this one (used when a benchmark
    /// aggregates several launches).
    pub fn merge(&mut self, other: &ExecStats) {
        self.blocks += other.blocks;
        self.threads += other.threads;
        self.warp_instructions += other.warp_instructions;
        self.lane_instructions += other.lane_instructions;
        self.issue_millicycles += other.issue_millicycles;
        self.flops += other.flops;
        self.dram_read_bytes += other.dram_read_bytes;
        self.dram_write_bytes += other.dram_write_bytes;
        self.gmem_transactions += other.gmem_transactions;
        self.gmem_instructions += other.gmem_instructions;
        self.l1_hits += other.l1_hits;
        self.l1_misses += other.l1_misses;
        self.l2_hits += other.l2_hits;
        self.l2_misses += other.l2_misses;
        self.l2_touched_bytes += other.l2_touched_bytes;
        self.tex_hits += other.tex_hits;
        self.tex_misses += other.tex_misses;
        self.const_serializations += other.const_serializations;
        self.const_misses += other.const_misses;
        self.shared_cycles += other.shared_cycles;
        self.shared_conflict_cycles += other.shared_conflict_cycles;
        self.barriers += other.barriers;
        self.divergent_branches += other.divergent_branches;
        self.atomics += other.atomics;
        for (a, b) in self.partition_bytes.iter_mut().zip(&other.partition_bytes) {
            *a += b;
        }
    }

    /// Traffic of the hottest DRAM partition.
    pub fn max_partition_bytes(&self) -> u64 {
        self.partition_bytes.iter().copied().max().unwrap_or(0)
    }

    /// Total DRAM traffic in bytes.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }

    /// Average active lanes per warp-instruction (SIMD efficiency).
    pub fn simd_efficiency(&self, warp_width: u32) -> f64 {
        if self.warp_instructions == 0 {
            return 0.0;
        }
        self.lane_instructions as f64 / (self.warp_instructions as f64 * warp_width as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = ExecStats {
            blocks: 1,
            flops: 10,
            dram_read_bytes: 100,
            ..Default::default()
        };
        let b = ExecStats {
            blocks: 2,
            flops: 5,
            dram_write_bytes: 50,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.blocks, 3);
        assert_eq!(a.flops, 15);
        assert_eq!(a.dram_bytes(), 150);
    }

    #[test]
    fn simd_efficiency_bounds() {
        let s = ExecStats {
            warp_instructions: 10,
            lane_instructions: 160,
            ..Default::default()
        };
        assert!((s.simd_efficiency(32) - 0.5).abs() < 1e-12);
        assert_eq!(ExecStats::default().simd_efficiency(32), 0.0);
    }
}
