//! Device-fault model tests: every fault class raised by hand-written
//! kernels, with exact PC/thread diagnostics, bit-identical across host
//! thread counts.

use gpucmp_ptx::{Address, KernelBuilder, Op2, Op3, Operand, ResolvedKernel, Space, Special, Ty};
use gpucmp_sim::{
    launch_with, DeviceSpec, ExecOptions, FaultKind, GlobalMemory, LaunchConfig, SimError,
};

/// Thread counts every fault must be invariant over.
const THREADS: [usize; 3] = [1, 2, 8];

/// out[gid] = gid, with no bounds guard.
fn unguarded_store_kernel() -> ResolvedKernel {
    let mut b = KernelBuilder::new("store_all");
    b.param("out", Ty::U64);
    let tid = b.special(Special::TidX);
    let ntid = b.special(Special::NtidX);
    let ctaid = b.special(Special::CtaidX);
    let gid = b.tern(Op3::Mad, Ty::U32, ctaid, ntid, tid);
    let out = b.ld_param(0, Ty::U64);
    let o64 = b.cvt(Ty::U64, Ty::U32, gid);
    let off = b.bin(Op2::Shl, Ty::U64, o64, 2i32);
    let addr = b.bin(Op2::Add, Ty::U64, out, off);
    b.st(
        Space::Global,
        Ty::U32,
        Address::base(Operand::Reg(addr)),
        gid,
    );
    b.finish().resolve().unwrap()
}

#[test]
fn oob_global_store_faults_with_site_across_thread_counts() {
    let device = DeviceSpec::gtx480();
    let kernel = unguarded_store_kernel();
    let run = |threads: usize| {
        // 256 threads store 4 bytes each from offset 256: the store of
        // gid 192 (block 3, thread 0) is the first past the 1 KiB device.
        let mut gmem = GlobalMemory::new(1024);
        let out = gmem.alloc(512).unwrap();
        let cfg = LaunchConfig::new(4u32, 64u32).arg_ptr(out);
        launch_with(
            &device,
            &kernel,
            &mut gmem,
            &[],
            &cfg,
            &ExecOptions::with_threads(threads),
        )
        .unwrap_err()
    };
    let errs: Vec<SimError> = THREADS.iter().map(|&t| run(t)).collect();
    let fault = errs[0].fault().expect("device fault");
    assert!(
        matches!(
            fault.kind,
            FaultKind::OutOfBounds {
                space: Space::Global,
                size: 4,
                limit: 1024,
                ..
            }
        ),
        "{fault}"
    );
    let site = fault.site.expect("access faults carry a site");
    assert_eq!(site.block, [3, 0, 0]);
    assert_eq!(site.thread, [0, 0, 0]);
    for e in &errs[1..] {
        assert_eq!(e, &errs[0], "fault must not depend on host thread count");
    }
}

#[test]
fn oob_shared_store_faults_with_thread_coordinates() {
    // 16 bytes of shared memory, 32 threads each storing shared[tid*4]:
    // lane 4 is the first out of bounds.
    let mut b = KernelBuilder::new("smem_oob");
    let shared_off = b.shared_alloc(16);
    let tid = b.special(Special::TidX);
    let off = b.bin(Op2::Shl, Ty::U32, tid, 2i32);
    let base = b.mov(Ty::U32, shared_off as i32);
    let addr = b.bin(Op2::Add, Ty::U32, base, off);
    let a64 = b.cvt(Ty::U64, Ty::U32, addr);
    b.st(
        Space::Shared,
        Ty::U32,
        Address::base(Operand::Reg(a64)),
        tid,
    );
    let kernel = b.finish().resolve().unwrap();

    let device = DeviceSpec::gtx280();
    let mut gmem = GlobalMemory::new(1 << 12);
    let cfg = LaunchConfig::new(1u32, 32u32);
    let e = launch_with(
        &device,
        &kernel,
        &mut gmem,
        &[],
        &cfg,
        &ExecOptions::serial(),
    )
    .unwrap_err();
    let fault = e.fault().expect("device fault");
    assert!(
        matches!(
            fault.kind,
            FaultKind::OutOfBounds {
                space: Space::Shared,
                addr: 16,
                size: 4,
                limit: 16,
            }
        ),
        "{fault}"
    );
    assert_eq!(fault.site.unwrap().thread, [4, 0, 0]);
}

#[test]
fn misaligned_global_load_faults() {
    // ld.global.u32 at out+2: naturally misaligned.
    let mut b = KernelBuilder::new("misaligned");
    b.param("out", Ty::U64);
    let out = b.ld_param(0, Ty::U64);
    let addr = b.bin(Op2::Add, Ty::U64, out, 2i32);
    let v = b.ld(Space::Global, Ty::U32, Address::base(Operand::Reg(addr)));
    b.st(Space::Global, Ty::U32, Address::base(Operand::Reg(out)), v);
    let kernel = b.finish().resolve().unwrap();

    let device = DeviceSpec::gtx480();
    let mut gmem = GlobalMemory::new(1 << 12);
    let out = gmem.alloc(64).unwrap();
    let cfg = LaunchConfig::new(1u32, 1u32).arg_ptr(out);
    let e = launch_with(
        &device,
        &kernel,
        &mut gmem,
        &[],
        &cfg,
        &ExecOptions::serial(),
    )
    .unwrap_err();
    let fault = e.fault().expect("device fault");
    match fault.kind {
        FaultKind::Misaligned { space, addr, size } => {
            assert_eq!(space, Space::Global);
            assert_eq!(addr, out.0 + 2);
            assert_eq!(size, 4);
        }
        ref k => panic!("expected Misaligned, got {k}"),
    }
    assert_eq!(fault.site.unwrap().thread, [0, 0, 0]);
}

#[test]
fn watchdog_timeout_reports_budget_and_site() {
    let mut b = KernelBuilder::new("spin");
    let top = b.new_label();
    b.place_label(top);
    let x = b.mov(Ty::S32, 1i32);
    b.bin_to(Op2::Add, Ty::S32, x, x, 1i32);
    b.bra(top);
    let kernel = b.finish().resolve().unwrap();

    let device = DeviceSpec::gtx480();
    let run = |threads: usize| {
        let mut gmem = GlobalMemory::new(1 << 12);
        let mut cfg = LaunchConfig::new(2u32, 32u32);
        cfg.inst_budget = 5_000;
        launch_with(
            &device,
            &kernel,
            &mut gmem,
            &[],
            &cfg,
            &ExecOptions::with_threads(threads),
        )
        .unwrap_err()
    };
    let errs: Vec<SimError> = THREADS.iter().map(|&t| run(t)).collect();
    let fault = errs[0].fault().expect("device fault");
    assert!(
        matches!(fault.kind, FaultKind::Watchdog { budget: 5_000 }),
        "{fault}"
    );
    assert!(fault.site.is_some(), "watchdog pins the spinning pc");
    for e in &errs[1..] {
        assert_eq!(e, &errs[0]);
    }
}

#[test]
fn store_to_const_space_is_a_fault() {
    let mut b = KernelBuilder::new("const_store");
    let z = b.mov(Ty::U64, 0i32);
    b.st(Space::Const, Ty::U32, Address::base(Operand::Reg(z)), 7i32);
    let kernel = b.finish().resolve().unwrap();
    let device = DeviceSpec::gtx480();
    let mut gmem = GlobalMemory::new(1 << 12);
    let cfg = LaunchConfig::new(1u32, 1u32);
    let e = launch_with(
        &device,
        &kernel,
        &mut gmem,
        &[],
        &cfg,
        &ExecOptions::serial(),
    )
    .unwrap_err();
    let fault = e.fault().expect("device fault");
    assert!(
        matches!(fault.kind, FaultKind::ReadOnly(Space::Const)),
        "{fault}"
    );
}

#[test]
fn memcheck_records_allocation_oob_and_completes() {
    let device = DeviceSpec::gtx480();
    let kernel = unguarded_store_kernel();
    let run = |threads: usize| {
        // Capacity is ample: without memcheck every store lands silently.
        // With memcheck, stores by gid >= 128 fall outside the 512-byte
        // allocation and are reported + dropped.
        let mut gmem = GlobalMemory::new(1 << 16);
        let out = gmem.alloc(512).unwrap();
        let cfg = LaunchConfig::new(4u32, 64u32).arg_ptr(out);
        let report = launch_with(
            &device,
            &kernel,
            &mut gmem,
            &[],
            &cfg,
            &ExecOptions::with_threads(threads).memcheck(true),
        )
        .expect("memcheck suppresses access faults");
        let data = gmem.read_u32_slice(out, 128).unwrap();
        (report.faults, data, out)
    };
    let (faults, data, out) = run(1);
    // 256 threads, 128 in-bounds: blocks 2 and 3 fault entirely.
    assert_eq!(faults.len(), 128);
    let first = &faults[0];
    assert!(
        matches!(
            first.kind,
            FaultKind::OutOfBounds {
                space: Space::Global,
                size: 4,
                ..
            }
        ),
        "{first}"
    );
    if let FaultKind::OutOfBounds { addr, limit, .. } = first.kind {
        assert_eq!(addr, out.0 + 128 * 4, "first OOB store is gid 128");
        assert_eq!(limit, out.0 + 512, "limit is the allocation end");
    }
    let site = first.site.unwrap();
    assert_eq!(site.block, [2, 0, 0]);
    assert_eq!(site.thread, [0, 0, 0]);
    // In-bounds stores landed despite the suppressed faults.
    for (i, &v) in data.iter().enumerate() {
        assert_eq!(v as usize, i);
    }
    // And the whole fault log is thread-count invariant.
    for &t in &THREADS[1..] {
        let (f2, d2, _) = run(t);
        assert_eq!(f2, faults);
        assert_eq!(d2, data);
    }
}

#[test]
fn memcheck_does_not_suppress_watchdog() {
    let mut b = KernelBuilder::new("spin");
    let top = b.new_label();
    b.place_label(top);
    let x = b.mov(Ty::S32, 1i32);
    b.bin_to(Op2::Add, Ty::S32, x, x, 1i32);
    b.bra(top);
    let kernel = b.finish().resolve().unwrap();
    let device = DeviceSpec::gtx480();
    let mut gmem = GlobalMemory::new(1 << 12);
    let mut cfg = LaunchConfig::new(1u32, 32u32);
    cfg.inst_budget = 1_000;
    let e = launch_with(
        &device,
        &kernel,
        &mut gmem,
        &[],
        &cfg,
        &ExecOptions::serial().memcheck(true),
    )
    .unwrap_err();
    assert!(
        matches!(e.fault().map(|f| &f.kind), Some(FaultKind::Watchdog { .. })),
        "{e}"
    );
}

#[test]
fn device_oom_is_a_launch_setup_error_not_a_fault() {
    let mut gmem = GlobalMemory::new(1024);
    let e = gmem.alloc(1 << 20).unwrap_err();
    assert!(matches!(e, SimError::OutOfMemory { .. }));
    assert!(e.fault().is_none());
}
