//! Property tests for the simulator's building blocks: the cache model,
//! the memory system, the occupancy calculator, and ALU semantics checked
//! differentially against Rust through tiny kernels.

use gpucmp_ptx::{Address, CmpOp, KernelBuilder, Op2, Operand, Space, Ty};
use gpucmp_sim::{launch, Cache, DeviceSpec, GlobalMemory, LaunchConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cache_counters_always_balance(
        addrs in prop::collection::vec(0u64..1_000_000, 1..500),
        size_kb in 1u64..64,
        line_log in 5u32..8,
        assoc in 1u32..16,
    ) {
        let line = 1u64 << line_log;
        let mut c = Cache::new(size_kb * 1024, line, assoc);
        for &a in &addrs {
            c.access(a);
        }
        prop_assert_eq!(c.hits() + c.misses(), addrs.len() as u64);
        prop_assert!(c.hit_rate() >= 0.0 && c.hit_rate() <= 1.0);
    }

    #[test]
    fn cache_second_pass_over_small_set_hits(
        base in 0u64..1_000_000u64,
        lines in 1u64..8,
    ) {
        // a working set smaller than associativity x sets always fits
        let mut c = Cache::new(64 * 1024, 64, 8);
        for pass in 0..2 {
            for i in 0..lines {
                let r = c.access(base + i * 64);
                if pass == 1 {
                    prop_assert_eq!(r, gpucmp_sim::cache::CacheAccess::Hit);
                }
            }
        }
    }

    #[test]
    fn global_memory_round_trips(
        values in prop::collection::vec(any::<u32>(), 1..256),
        offset_blocks in 0u64..4,
    ) {
        let mut m = GlobalMemory::new(1 << 20);
        let _pad = m.alloc(offset_blocks * 64 + 1).unwrap();
        let p = m.alloc((values.len() * 4) as u64).unwrap();
        m.write_u32_slice(p, &values).unwrap();
        prop_assert_eq!(m.read_u32_slice(p, values.len()).unwrap(), values);
    }

    #[test]
    fn occupancy_is_monotone_in_register_pressure(
        threads_pow in 5u32..9, // 32..256
        r1 in 4u32..60,
        r2 in 4u32..60,
    ) {
        let d = DeviceSpec::gtx480();
        let threads = 1 << threads_pow;
        let (lo, hi) = (r1.min(r2), r1.max(r2));
        let o_lo = d.occupancy(threads, lo, 0);
        let o_hi = d.occupancy(threads, hi, 0);
        prop_assert!(o_hi.warps_per_cu <= o_lo.warps_per_cu,
            "more registers cannot raise occupancy: {lo} regs -> {}, {hi} regs -> {}",
            o_lo.warps_per_cu, o_hi.warps_per_cu);
        prop_assert!(o_lo.occupancy <= 1.0 && o_lo.occupancy > 0.0);
    }

    #[test]
    fn occupancy_is_monotone_in_shared_memory(
        smem1 in 0u32..40_000,
        smem2 in 0u32..40_000,
    ) {
        let d = DeviceSpec::gtx480();
        let (lo, hi) = (smem1.min(smem2), smem1.max(smem2));
        let o_lo = d.occupancy(256, 16, lo);
        let o_hi = d.occupancy(256, 16, hi);
        prop_assert!(o_hi.blocks_per_cu <= o_lo.blocks_per_cu);
    }
}

/// Build a kernel computing `out[i] = a[i] OP b[i]` for a given op/type.
fn binop_kernel(op: Op2, ty: Ty) -> gpucmp_ptx::ResolvedKernel {
    let mut b = KernelBuilder::new("binop");
    b.param("a", Ty::U64);
    b.param("b", Ty::U64);
    b.param("out", Ty::U64);
    let tid = b.special(gpucmp_ptx::Special::TidX);
    let off64 = b.cvt(Ty::U64, Ty::U32, tid);
    let off = b.bin(Op2::Shl, Ty::U64, off64, 2i32);
    let pa = b.ld_param(0, Ty::U64);
    let pb = b.ld_param(1, Ty::U64);
    let po = b.ld_param(2, Ty::U64);
    let aa = b.bin(Op2::Add, Ty::U64, pa, off);
    let ab = b.bin(Op2::Add, Ty::U64, pb, off);
    let ao = b.bin(Op2::Add, Ty::U64, po, off);
    let va = b.ld(Space::Global, ty, Address::base(Operand::Reg(aa)));
    let vb = b.ld(Space::Global, ty, Address::base(Operand::Reg(ab)));
    let r = b.bin(op, ty, va, vb);
    b.st(Space::Global, ty, Address::base(Operand::Reg(ao)), r);
    b.finish().resolve().unwrap()
}

fn run_binop(kernel: &gpucmp_ptx::ResolvedKernel, a: &[u32], b: &[u32]) -> Vec<u32> {
    let device = DeviceSpec::gtx280();
    let mut gmem = GlobalMemory::new(1 << 16);
    let n = a.len();
    let da = gmem.alloc((n * 4) as u64).unwrap();
    let db = gmem.alloc((n * 4) as u64).unwrap();
    let d_o = gmem.alloc((n * 4) as u64).unwrap();
    gmem.write_u32_slice(da, a).unwrap();
    gmem.write_u32_slice(db, b).unwrap();
    let cfg = LaunchConfig::new(1u32, n as u32)
        .arg_ptr(da)
        .arg_ptr(db)
        .arg_ptr(d_o);
    launch(&device, kernel, &mut gmem, &[], &cfg).unwrap();
    gmem.read_u32_slice(d_o, n).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn interpreter_integer_alu_matches_rust(
        a in prop::collection::vec(any::<u32>(), 32),
        b in prop::collection::vec(any::<u32>(), 32),
    ) {
        for (op, f) in [
            (Op2::Add, u32::wrapping_add as fn(u32, u32) -> u32),
            (Op2::Sub, u32::wrapping_sub),
            (Op2::Mul, u32::wrapping_mul),
            (Op2::Min, |x: u32, y: u32| x.min(y)),
            (Op2::Max, |x: u32, y: u32| x.max(y)),
            (Op2::And, |x: u32, y: u32| x & y),
            (Op2::Or, |x: u32, y: u32| x | y),
            (Op2::Xor, |x: u32, y: u32| x ^ y),
        ] {
            let kernel = binop_kernel(op, Ty::U32);
            let got = run_binop(&kernel, &a, &b);
            let want: Vec<u32> = a.iter().zip(&b).map(|(&x, &y)| f(x, y)).collect();
            prop_assert_eq!(&got, &want, "op {:?}", op);
        }
    }

    #[test]
    fn interpreter_f32_alu_matches_rust(
        a in prop::collection::vec(-1e6f32..1e6, 32),
        b in prop::collection::vec(-1e6f32..1e6, 32),
    ) {
        for (op, f) in [
            (Op2::Add, (|x: f32, y: f32| x + y) as fn(f32, f32) -> f32),
            (Op2::Sub, |x: f32, y: f32| x - y),
            (Op2::Mul, |x: f32, y: f32| x * y),
            (Op2::Div, |x: f32, y: f32| x / y),
            (Op2::Min, |x: f32, y: f32| x.min(y)),
            (Op2::Max, |x: f32, y: f32| x.max(y)),
        ] {
            let kernel = binop_kernel(op, Ty::F32);
            let ab: Vec<u32> = a.iter().map(|v| v.to_bits()).collect();
            let bb: Vec<u32> = b.iter().map(|v| v.to_bits()).collect();
            let got = run_binop(&kernel, &ab, &bb);
            let want: Vec<u32> = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| f(x, y).to_bits())
                .collect();
            prop_assert_eq!(&got, &want, "op {:?}", op);
        }
    }

    #[test]
    fn signed_comparisons_match_rust(
        a in prop::collection::vec(any::<i32>(), 32),
        b in prop::collection::vec(any::<i32>(), 32),
    ) {
        // via setp+selp: out = (a < b) ? 1 : 0
        let mut kb = KernelBuilder::new("cmp");
        kb.param("a", Ty::U64);
        kb.param("b", Ty::U64);
        kb.param("out", Ty::U64);
        let tid = kb.special(gpucmp_ptx::Special::TidX);
        let off64 = kb.cvt(Ty::U64, Ty::U32, tid);
        let off = kb.bin(Op2::Shl, Ty::U64, off64, 2i32);
        let pa = kb.ld_param(0, Ty::U64);
        let pb = kb.ld_param(1, Ty::U64);
        let po = kb.ld_param(2, Ty::U64);
        let aa = kb.bin(Op2::Add, Ty::U64, pa, off);
        let ab = kb.bin(Op2::Add, Ty::U64, pb, off);
        let ao = kb.bin(Op2::Add, Ty::U64, po, off);
        let va = kb.ld(Space::Global, Ty::S32, Address::base(Operand::Reg(aa)));
        let vb = kb.ld(Space::Global, Ty::S32, Address::base(Operand::Reg(ab)));
        let p = kb.setp(CmpOp::Lt, Ty::S32, va, vb);
        let sel = kb.selp(Ty::S32, 1i32, 0i32, p);
        kb.st(Space::Global, Ty::S32, Address::base(Operand::Reg(ao)), sel);
        let kernel = kb.finish().resolve().unwrap();
        let ab_: Vec<u32> = a.iter().map(|&v| v as u32).collect();
        let bb_: Vec<u32> = b.iter().map(|&v| v as u32).collect();
        let got = run_binop(&kernel, &ab_, &bb_);
        let want: Vec<u32> = a.iter().zip(&b).map(|(&x, &y)| (x < y) as u32).collect();
        prop_assert_eq!(&got, &want);
    }
}
