//! Focused tests of the SIMT divergence machinery: nested conditionals,
//! data-dependent loop exits, barrier semantics and failure detection.

use gpucmp_compiler::{compile, global_id_x, Api, DslKernel, Expr, KernelDef, Unroll};
use gpucmp_ptx::{KernelBuilder, Op2, Ty};
use gpucmp_sim::{launch, DeviceSpec, GlobalMemory, LaunchConfig};

fn run_i32(def: &KernelDef, n: usize, input: &[i32]) -> (Vec<i32>, gpucmp_sim::ExecStats) {
    let compiled = compile(def, Api::Cuda, 124).unwrap();
    let resolved = compiled.exec.resolve().unwrap();
    let device = DeviceSpec::gtx280();
    let mut gmem = GlobalMemory::new(1 << 20);
    let d_in = gmem.alloc((n * 4) as u64).unwrap();
    let d_out = gmem.alloc((n * 4) as u64).unwrap();
    gmem.write_i32_slice(d_in, input).unwrap();
    let cfg = LaunchConfig::new((n as u32).div_ceil(64), 64u32)
        .arg_ptr(d_in)
        .arg_ptr(d_out)
        .arg_i32(n as i32);
    let report = launch(&device, &resolved, &mut gmem, &[], &cfg).unwrap();
    (gmem.read_i32_slice(d_out, n).unwrap(), report.stats)
}

/// Every thread classifies its input through nested, data-dependent
/// conditionals — four distinct paths inside one warp.
#[test]
fn nested_divergence_executes_all_four_paths() {
    let mut k = DslKernel::new("classify");
    let input = k.param_ptr("in");
    let out = k.param_ptr("out");
    let n = k.param("n", Ty::S32);
    let gid = k.let_(Ty::S32, global_id_x());
    k.if_(Expr::from(gid).lt(n), |k| {
        let v = k.let_(
            Ty::S32,
            gpucmp_compiler::ld_global(input.clone(), gid, Ty::S32),
        );
        let r = k.var(Ty::S32);
        k.if_else(
            Expr::from(v).lt(0i32),
            |k| {
                k.if_else(
                    Expr::from(v).lt(-100i32),
                    |k| k.assign(r, 1i32),
                    |k| k.assign(r, 2i32),
                );
            },
            |k| {
                k.if_else(
                    Expr::from(v).gt(100i32),
                    |k| k.assign(r, 3i32),
                    |k| k.assign(r, 4i32),
                );
            },
        );
        k.st_global(out.clone(), gid, Ty::S32, r);
    });
    let def = k.finish();
    let input: Vec<i32> = (0..256)
        .map(|i| match i % 4 {
            0 => -500,
            1 => -5,
            2 => 500,
            _ => 5,
        })
        .collect();
    let (got, stats) = run_i32(&def, 256, &input);
    for (i, &v) in got.iter().enumerate() {
        let want = match i % 4 {
            0 => 1,
            1 => 2,
            2 => 3,
            _ => 4,
        };
        assert_eq!(v, want, "thread {i}");
    }
    assert!(stats.divergent_branches > 0, "paths must actually diverge");
}

/// Data-dependent loop trip counts: lanes exit a while-loop at different
/// iterations and reconverge afterwards (the repeated-exit merge case of
/// the divergence stack).
#[test]
fn divergent_loop_exits_reconverge() {
    let mut k = DslKernel::new("collatz_steps");
    let input = k.param_ptr("in");
    let out = k.param_ptr("out");
    let n = k.param("n", Ty::S32);
    let gid = k.let_(Ty::S32, global_id_x());
    k.if_(Expr::from(gid).lt(n), |k| {
        let v = k.let_(
            Ty::S32,
            gpucmp_compiler::ld_global(input.clone(), gid, Ty::S32),
        );
        let steps = k.let_(Ty::S32, 0i32);
        k.while_(Expr::from(v).gt(1i32), |k| {
            // v = even ? v/2 : 3v+1 (selects keep the loop body uniform)
            let even = (Expr::from(v) & 1i32).eq_(0i32);
            let half = Expr::from(v) >> 1i32;
            let tri = Expr::from(v) * 3i32 + 1i32;
            k.assign(v, gpucmp_compiler::select(even, half, tri));
            k.assign(steps, Expr::from(steps) + 1i32);
        });
        // after reconvergence every lane writes its own step count
        k.st_global(out.clone(), gid, Ty::S32, Expr::from(steps) * 10i32 + 7i32);
    });
    let def = k.finish();
    let input: Vec<i32> = (0..128).map(|i| 1 + (i % 27)).collect();
    let (got, stats) = run_i32(&def, 128, &input);
    let collatz = |mut v: i32| {
        let mut s = 0;
        while v > 1 {
            v = if v % 2 == 0 { v / 2 } else { 3 * v + 1 };
            s += 1;
        }
        s
    };
    for (i, &g) in got.iter().enumerate() {
        assert_eq!(g, collatz(input[i]) * 10 + 7, "thread {i}");
    }
    assert!(stats.divergent_branches > 0);
}

/// A barrier reached by a divergent warp is a trapped error, not silent
/// corruption.
#[test]
fn barrier_inside_divergent_branch_is_trapped() {
    let mut b = KernelBuilder::new("bad_bar");
    let tid = b.special(gpucmp_ptx::Special::TidX);
    let p = b.setp(gpucmp_ptx::CmpOp::Lt, Ty::S32, tid, 16i32);
    let end = b.new_label();
    b.ssy(end);
    b.bra_if(end, p, false);
    b.bar(); // only half the warp arrives
    b.place_label(end);
    b.sync();
    let kernel = b.finish().resolve().unwrap();
    let device = DeviceSpec::gtx280();
    let mut gmem = GlobalMemory::new(1 << 12);
    let cfg = LaunchConfig::new(1u32, 32u32);
    let err = launch(&device, &kernel, &mut gmem, &[], &cfg).unwrap_err();
    assert!(
        matches!(
            err.fault().map(|f| &f.kind),
            Some(gpucmp_sim::FaultKind::Divergence(_))
        ),
        "{err}"
    );
}

/// A kernel where one warp skips the barrier entirely deadlocks and is
/// reported as such.
#[test]
fn asymmetric_barrier_arrival_is_a_deadlock() {
    let mut b = KernelBuilder::new("deadlock");
    // warp 0 returns immediately; warp 1 waits at a barrier
    let tid = b.special(gpucmp_ptx::Special::TidX);
    let p = b.setp(gpucmp_ptx::CmpOp::Lt, Ty::S32, tid, 32i32);
    let skip = b.new_label();
    b.bra_if(skip, p, true); // warp 0 (uniform) jumps over the barrier
    b.bar();
    b.place_label(skip);
    let kernel = b.finish().resolve().unwrap();
    let device = DeviceSpec::gtx280();
    let mut gmem = GlobalMemory::new(1 << 12);
    let cfg = LaunchConfig::new(1u32, 64u32);
    let err = launch(&device, &kernel, &mut gmem, &[], &cfg).unwrap_err();
    assert!(
        matches!(
            err.fault().map(|f| &f.kind),
            Some(gpucmp_sim::FaultKind::BarrierDeadlock)
        ),
        "{err}"
    );
}

/// The instruction budget stops runaway loops.
#[test]
fn infinite_loop_hits_the_instruction_budget() {
    let mut b = KernelBuilder::new("spin");
    let top = b.new_label();
    b.place_label(top);
    let x = b.mov(Ty::S32, 1i32);
    b.bin_to(Op2::Add, Ty::S32, x, x, 1i32);
    b.bra(top);
    let kernel = b.finish().resolve().unwrap();
    let device = DeviceSpec::gtx480();
    let mut gmem = GlobalMemory::new(1 << 12);
    let mut cfg = LaunchConfig::new(1u32, 32u32);
    cfg.inst_budget = 10_000;
    let err = launch(&device, &kernel, &mut gmem, &[], &cfg).unwrap_err();
    assert!(
        matches!(
            err.fault().map(|f| &f.kind),
            Some(gpucmp_sim::FaultKind::Watchdog { budget: 10_000 })
        ),
        "{err}"
    );
}

/// SIMD efficiency reflects masked-off lanes: a kernel where only a
/// quarter of each warp does the heavy work reports low efficiency.
#[test]
fn simd_efficiency_tracks_divergence() {
    let mut k = DslKernel::new("sparse_work");
    let _input = k.param_ptr("in"); // keeps the shared runner's signature
    let out = k.param_ptr("out");
    let n = k.param("n", Ty::S32);
    let gid = k.let_(Ty::S32, global_id_x());
    k.if_(Expr::from(gid).lt(n), |k| {
        k.if_((Expr::from(gid) & 3i32).eq_(0i32), |k| {
            let acc = k.let_(Ty::S32, 0i32);
            k.for_(0i32, 64i32, 1, Unroll::None, |k, i| {
                k.assign(acc, Expr::from(acc) + i);
            });
            k.st_global(out.clone(), gid, Ty::S32, acc);
        });
    });
    let def = k.finish();
    let (got, stats) = run_i32(&def, 256, &vec![0; 256]);
    for (i, &v) in got.iter().enumerate() {
        assert_eq!(v, if i % 4 == 0 { (0..64).sum::<i32>() } else { 0 });
    }
    let eff = stats.simd_efficiency(32);
    assert!(eff < 0.5, "sparse work must show masked lanes: {eff}");
}

/// The `Inst::Ret` inside an open `ssy` region is rejected (compiler
/// discipline enforced at run time).
#[test]
fn ret_inside_divergence_region_is_an_error() {
    let mut b = KernelBuilder::new("bad_ret");
    let l = b.new_label();
    b.ssy(l);
    b.ret();
    // unreachable but keeps the label/sync balanced for the validator
    b.place_label(l);
    b.sync();
    let kernel = b.finish().resolve().unwrap();
    let device = DeviceSpec::gtx480();
    let mut gmem = GlobalMemory::new(1 << 12);
    let cfg = LaunchConfig::new(1u32, 32u32);
    let err = launch(&device, &kernel, &mut gmem, &[], &cfg).unwrap_err();
    assert!(
        matches!(
            err.fault().map(|f| &f.kind),
            Some(gpucmp_sim::FaultKind::Divergence(_))
        ),
        "{err}"
    );
}

/// Partial final warps (block size not a multiple of the warp width) are
/// masked correctly on every device width.
#[test]
fn partial_warps_mask_correctly_across_widths() {
    let mut k = DslKernel::new("mark");
    let out = k.param_ptr("out");
    let n = k.param("n", Ty::S32);
    let gid = k.let_(Ty::S32, global_id_x());
    k.if_(Expr::from(gid).lt(n), |k| {
        k.st_global(out.clone(), gid, Ty::S32, Expr::from(gid) + 1i32);
    });
    let def = k.finish();
    let compiled = compile(&def, Api::OpenCl, 124).unwrap();
    let resolved = compiled.exec.resolve().unwrap();
    for device in [
        DeviceSpec::gtx280(),
        DeviceSpec::hd5870(),
        DeviceSpec::cellbe(),
    ] {
        let mut gmem = GlobalMemory::new(1 << 16);
        let n = 100usize; // 100 threads in one block: partial warp everywhere
        let d_out = gmem.alloc(4 * n as u64).unwrap();
        let cfg = LaunchConfig::new(1u32, n as u32)
            .arg_ptr(d_out)
            .arg_i32(n as i32);
        launch(&device, &resolved, &mut gmem, &[], &cfg).unwrap();
        let got = gmem.read_i32_slice(d_out, n).unwrap();
        for (i, &v) in got.iter().enumerate() {
            assert_eq!(v, i as i32 + 1, "{} thread {i}", device.name);
        }
    }
}
