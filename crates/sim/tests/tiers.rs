//! Differential tests for the execution tiers: interp vs decoded vs fused
//! must produce bit-identical launch results — statistics, virtual timing,
//! fault kinds and sites, and memcheck records.

use gpucmp_ptx::{Address, CmpOp, KernelBuilder, Op1, Op2, Op3, Operand, Space, Special, Ty};
use gpucmp_sim::{
    decode_kernel, launch_with, launch_with_code, DeviceSpec, ExecOptions, ExecTier, FaultKind,
    GlobalMemory, LaunchConfig, SimError,
};

/// A kernel exercising every tier-relevant construct: scalar runs (fusible),
/// integer division (fallible, unfusible), divergence with reconvergence,
/// shared memory with a barrier, and global loads/stores.
fn mixed_kernel() -> gpucmp_ptx::Kernel {
    let mut b = KernelBuilder::new("mixed");
    b.param("x", Ty::U64);
    b.param("y", Ty::U64);
    b.param("n", Ty::S32);
    b.shared_alloc(4 * 256);
    let tid = b.special(Special::TidX);
    let ntid = b.special(Special::NtidX);
    let ctaid = b.special(Special::CtaidX);
    let gid = b.tern(Op3::Mad, Ty::U32, ctaid, ntid, tid);
    let n = b.ld_param(2, Ty::S32);
    let p = b.setp(CmpOp::Ge, Ty::S32, gid, n);
    let end = b.new_label();
    b.ssy(end);
    b.bra_if(end, p, true);
    // Fusible scalar run: cvt, shifts, float math.
    let xptr = b.ld_param(0, Ty::U64);
    let yptr = b.ld_param(1, Ty::U64);
    let off64 = b.cvt(Ty::U64, Ty::U32, gid);
    let off = b.bin(Op2::Shl, Ty::U64, off64, 2i32);
    let xa = b.bin(Op2::Add, Ty::U64, xptr, off);
    let _ya = b.bin(Op2::Add, Ty::U64, yptr, off); // extends the scalar run
    let xv = b.ld(Space::Global, Ty::F32, Address::base(Operand::Reg(xa)));
    // Unfusible integer division in the middle of scalar code.
    let three = b.mov(Ty::S32, 3i32);
    let q = b.bin(Op2::Div, Ty::S32, gid, three);
    let qf = b.cvt(Ty::F32, Ty::S32, q);
    let s = b.un(Op1::Sqrt, Ty::F32, xv);
    let r = b.tern(Op3::Fma, Ty::F32, s, qf, xv);
    // Shared-memory round trip with a barrier.
    let toff = b.cvt(Ty::U64, Ty::U32, tid);
    let soff = b.bin(Op2::Shl, Ty::U64, toff, 2i32);
    b.st(Space::Shared, Ty::F32, Address::base(Operand::Reg(soff)), r);
    b.place_label(end);
    b.sync();
    b.bar();
    let p2 = b.setp(CmpOp::Ge, Ty::S32, gid, n);
    let end2 = b.new_label();
    b.ssy(end2);
    b.bra_if(end2, p2, true);
    let soff2 = {
        let t = b.cvt(Ty::U64, Ty::U32, tid);
        b.bin(Op2::Shl, Ty::U64, t, 2i32)
    };
    let back = b.ld(Space::Shared, Ty::F32, Address::base(Operand::Reg(soff2)));
    let ya2 = {
        let yptr = b.ld_param(1, Ty::U64);
        let o64 = b.cvt(Ty::U64, Ty::U32, gid);
        let o = b.bin(Op2::Shl, Ty::U64, o64, 2i32);
        b.bin(Op2::Add, Ty::U64, yptr, o)
    };
    b.st(
        Space::Global,
        Ty::F32,
        Address::base(Operand::Reg(ya2)),
        back,
    );
    b.place_label(end2);
    b.sync();
    b.finish()
}

struct Outcome {
    out: Vec<f32>,
    report: gpucmp_sim::LaunchReport,
}

fn run_tier(tier: ExecTier, threads: usize, memcheck: bool, n: usize) -> Outcome {
    let device = DeviceSpec::gtx480();
    let kernel = mixed_kernel().resolve().unwrap();
    let mut gmem = GlobalMemory::new(1 << 20);
    let x = gmem.alloc((n * 4) as u64).unwrap();
    let y = gmem.alloc((n * 4) as u64).unwrap();
    let xs: Vec<f32> = (0..n).map(|i| (i % 131) as f32 * 0.25 + 1.0).collect();
    gmem.write_f32_slice(x, &xs).unwrap();
    let cfg = LaunchConfig::new(8u32, 256u32)
        .arg_ptr(x)
        .arg_ptr(y)
        .arg_i32(n as i32);
    let opts = ExecOptions::with_threads(threads)
        .memcheck(memcheck)
        .tier(tier);
    let report = launch_with(&device, &kernel, &mut gmem, &[], &cfg, &opts).unwrap();
    Outcome {
        out: gmem.read_f32_slice(y, n).unwrap(),
        report,
    }
}

#[test]
fn tiers_produce_bit_identical_reports() {
    for &threads in &[1usize, 8] {
        let base = run_tier(ExecTier::Interp, threads, false, 1900);
        for tier in [ExecTier::Decoded, ExecTier::Fused] {
            let got = run_tier(tier, threads, false, 1900);
            assert_eq!(got.out, base.out, "{tier:?} memory @ {threads} threads");
            assert_eq!(
                got.report.stats, base.report.stats,
                "{tier:?} stats @ {threads} threads"
            );
            assert_eq!(
                got.report.kernel_ns(),
                base.report.kernel_ns(),
                "{tier:?} timing @ {threads} threads"
            );
        }
    }
}

#[test]
fn tiers_record_identical_memcheck_faults() {
    // Undersized buffers: every tier must log the same access faults in the
    // same order and still complete the launch.
    let device = DeviceSpec::gtx480();
    let kernel = mixed_kernel().resolve().unwrap();
    let run = |tier: ExecTier| {
        let mut gmem = GlobalMemory::new(1 << 16);
        let x = gmem.alloc(256).unwrap();
        let y = gmem.alloc(256).unwrap();
        let cfg = LaunchConfig::new(4u32, 128u32)
            .arg_ptr(x)
            .arg_ptr(y)
            .arg_i32(512);
        let opts = ExecOptions::serial().memcheck(true).tier(tier);
        launch_with(&device, &kernel, &mut gmem, &[], &cfg, &opts).unwrap()
    };
    let base = run(ExecTier::Interp);
    assert!(!base.faults.is_empty(), "test must exercise memcheck");
    for tier in [ExecTier::Decoded, ExecTier::Fused] {
        let got = run(tier);
        assert_eq!(got.faults, base.faults, "{tier:?} memcheck records");
        assert_eq!(got.stats, base.stats, "{tier:?} stats under memcheck");
    }
}

#[test]
fn tiers_report_identical_fault_sites() {
    // Aborting faults must carry the same kind and the same (pc, block,
    // thread) site on every tier — orig_pc attribution through the IR.
    let device = DeviceSpec::gtx480();
    let kernel = mixed_kernel().resolve().unwrap();
    let run = |tier: ExecTier| {
        let mut gmem = GlobalMemory::new(1 << 12);
        let x = gmem.alloc(64).unwrap();
        let y = gmem.alloc(64).unwrap();
        let cfg = LaunchConfig::new(8u32, 128u32)
            .arg_ptr(x)
            .arg_ptr(y)
            .arg_i32(4096);
        let opts = ExecOptions::serial().tier(tier);
        launch_with(&device, &kernel, &mut gmem, &[], &cfg, &opts).unwrap_err()
    };
    let base = match run(ExecTier::Interp) {
        SimError::Fault(f) => f,
        other => panic!("expected fault, got {other:?}"),
    };
    assert!(matches!(base.kind, FaultKind::OutOfBounds { .. }));
    for tier in [ExecTier::Decoded, ExecTier::Fused] {
        match run(tier) {
            SimError::Fault(f) => assert_eq!(f, base, "{tier:?} fault"),
            other => panic!("{tier:?}: expected fault, got {other:?}"),
        }
    }
}

#[test]
fn watchdog_fires_at_the_same_instruction_on_every_tier() {
    // An infinite loop with a tiny budget: the fused tier must degrade to
    // single-stepping and exhaust the budget at the interp-identical pc.
    let mut b = KernelBuilder::new("spin");
    let one = b.mov(Ty::S32, 1i32);
    let top = b.new_label();
    b.place_label(top);
    let acc = b.bin(Op2::Add, Ty::S32, one, one);
    let _ = b.bin(Op2::Mul, Ty::S32, acc, one);
    b.bra(top);
    let kernel = b.finish().resolve().unwrap();
    let device = DeviceSpec::gtx480();
    let run = |tier: ExecTier| {
        let mut gmem = GlobalMemory::new(1 << 12);
        let cfg = LaunchConfig::builder()
            .grid(1u32)
            .block(32u32)
            .inst_budget(100)
            .build();
        let opts = ExecOptions::serial().tier(tier);
        launch_with(&device, &kernel, &mut gmem, &[], &cfg, &opts).unwrap_err()
    };
    let base = match run(ExecTier::Interp) {
        SimError::Fault(f) => f,
        other => panic!("expected watchdog, got {other:?}"),
    };
    assert!(matches!(base.kind, FaultKind::Watchdog { budget: 100 }));
    assert!(base.site.is_some());
    for tier in [ExecTier::Decoded, ExecTier::Fused] {
        match run(tier) {
            SimError::Fault(f) => assert_eq!(f, base, "{tier:?} watchdog"),
            other => panic!("{tier:?}: expected watchdog, got {other:?}"),
        }
    }
}

#[test]
fn precompiled_code_matches_on_the_fly_decode() {
    // launch_with_code(Some(..)) — the session code-cache path — must be
    // indistinguishable from decoding at launch.
    let device = DeviceSpec::gtx480();
    let kernel = mixed_kernel().resolve().unwrap();
    let code = decode_kernel(&kernel, &device);
    assert!(code.fused_coverage() > 0, "kernel must have fusible runs");
    let run = |code: Option<&gpucmp_sim::DecodedKernel>| {
        let mut gmem = GlobalMemory::new(1 << 20);
        let x = gmem.alloc(4096).unwrap();
        let y = gmem.alloc(4096).unwrap();
        let xs: Vec<f32> = (0..1024).map(|i| i as f32).collect();
        gmem.write_f32_slice(x, &xs).unwrap();
        let cfg = LaunchConfig::new(4u32, 256u32)
            .arg_ptr(x)
            .arg_ptr(y)
            .arg_i32(1024);
        let opts = ExecOptions::serial().tier(ExecTier::Fused);
        let r = launch_with_code(&device, &kernel, &mut gmem, &[], &cfg, &opts, code).unwrap();
        (gmem.read_f32_slice(y, 1024).unwrap(), r.stats)
    };
    let (o1, s1) = run(Some(&code));
    let (o2, s2) = run(None);
    assert_eq!(o1, o2);
    assert_eq!(s1, s2);
}

#[test]
fn divide_by_zero_faults_identically_across_tiers() {
    // Integer division is the one fallible scalar op — excluded from
    // fusion, so its fault site must match the interpreter exactly.
    let mut b = KernelBuilder::new("divz");
    b.param("n", Ty::S32);
    let tid = b.special(Special::TidX);
    let n = b.ld_param(0, Ty::S32);
    let d = b.bin(Op2::Sub, Ty::S32, n, tid);
    // faults when tid == n (lane n divides by zero)
    let _ = b.bin(Op2::Div, Ty::S32, tid, d);
    let kernel = b.finish().resolve().unwrap();
    let device = DeviceSpec::gtx480();
    let run = |tier: ExecTier| {
        let mut gmem = GlobalMemory::new(1 << 12);
        let cfg = LaunchConfig::new(1u32, 64u32).arg_i32(17);
        let opts = ExecOptions::serial().tier(tier);
        launch_with(&device, &kernel, &mut gmem, &[], &cfg, &opts).unwrap_err()
    };
    let base = match run(ExecTier::Interp) {
        SimError::Fault(f) => f,
        other => panic!("expected fault, got {other:?}"),
    };
    assert!(matches!(base.kind, FaultKind::DivByZero));
    assert_eq!(base.site.unwrap().thread, [17, 0, 0]);
    for tier in [ExecTier::Decoded, ExecTier::Fused] {
        match run(tier) {
            SimError::Fault(f) => assert_eq!(f, base, "{tier:?} div-by-zero"),
            other => panic!("{tier:?}: expected fault, got {other:?}"),
        }
    }
}
