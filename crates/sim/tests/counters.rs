//! Counter-correctness tests on hand-computable kernels: each test
//! derives the expected transaction/conflict/hit counts from the device
//! parameters and asserts the profiler reports exactly those numbers.

use gpucmp_compiler::{compile, global_id_x, ld_global, Api, DslKernel, Expr, Unroll};
use gpucmp_ptx::Ty;
use gpucmp_sim::{launch, DeviceSpec, ExecStats, GlobalMemory, LaunchConfig};

/// Compile and launch `def` with an f32 input and output buffer.
fn run(
    def: &gpucmp_compiler::KernelDef,
    device: &DeviceSpec,
    grid: u32,
    block: u32,
    in_f32: usize,
    out_f32: usize,
) -> ExecStats {
    let compiled = compile(def, Api::Cuda, device.max_regs_per_thread).unwrap();
    let resolved = compiled.exec.resolve().unwrap();
    let mut const_bank = def.const_data.clone();
    const_bank.resize(const_bank.len().next_multiple_of(16), 0);
    let mut gmem = GlobalMemory::new(1 << 24);
    let d_in = gmem.alloc((in_f32.max(1) * 4) as u64).unwrap();
    let d_out = gmem.alloc((out_f32.max(1) * 4) as u64).unwrap();
    let input: Vec<f32> = (0..in_f32).map(|i| i as f32).collect();
    gmem.write_f32_slice(d_in, &input).unwrap();
    let cfg = LaunchConfig::new(grid, block).arg_ptr(d_in).arg_ptr(d_out);
    let report = launch(device, &resolved, &mut gmem, &const_bank, &cfg).unwrap();
    report.stats
}

/// `out[gid] = in[gid]`, the fully coalesced copy.
fn copy_kernel() -> gpucmp_compiler::KernelDef {
    let mut k = DslKernel::new("copy");
    let inp = k.param_ptr("in");
    let out = k.param_ptr("out");
    let gid = k.let_(Ty::S32, global_id_x());
    let v = k.let_(Ty::F32, ld_global(inp, gid, Ty::F32));
    k.st_global(out, gid, Ty::F32, v);
    k.finish()
}

#[test]
fn coalesced_copy_is_one_transaction_per_group() {
    let n = 1024u32;
    // On both devices a full coalesce group covers exactly one segment
    // (GTX480: 32 lanes x 4 B = 128 B; GTX280: 16 x 4 = 64 B), so the
    // copy needs one transaction per group per access — the floor.
    for device in [DeviceSpec::gtx280(), DeviceSpec::gtx480()] {
        let stats = run(
            &copy_kernel(),
            &device,
            n / 128,
            128,
            n as usize,
            n as usize,
        );
        let expected = 2 * (n as u64 * 4) / device.segment_bytes as u64; // load + store
        assert_eq!(
            stats.gmem_transactions, expected,
            "{}: copy transactions",
            device.name
        );
        assert_eq!(
            stats.gmem_ideal_transactions, expected,
            "{}: copy floor",
            device.name
        );
        assert_eq!(
            stats.coalescing_efficiency(),
            1.0,
            "{}: a unit-stride copy is perfectly coalesced",
            device.name
        );
    }
}

#[test]
fn stride_32_read_serialises_into_one_transaction_per_lane() {
    // `out[gid] = in[gid * 32]`: consecutive lanes are 128 B apart, so on
    // the GTX480 every lane of a warp lands in its own 128 B segment.
    let mut k = DslKernel::new("strided");
    let inp = k.param_ptr("in");
    let out = k.param_ptr("out");
    let gid = k.let_(Ty::S32, global_id_x());
    let idx = k.let_(Ty::S32, Expr::from(gid) * 32i32);
    let v = k.let_(Ty::F32, ld_global(inp, idx, Ty::F32));
    k.st_global(out, gid, Ty::F32, v);
    let def = k.finish();

    let device = DeviceSpec::gtx480();
    let n = 1024u32;
    let warps = (n / device.warp_width) as u64; // 32
    let stats = run(&def, &device, n / 128, 128, n as usize * 32, n as usize);
    // Loads: 32 segments per warp; stores: 1 per warp.
    assert_eq!(stats.gmem_transactions, warps * 32 + warps);
    // Floor: 1 segment per warp for each access.
    assert_eq!(stats.gmem_ideal_transactions, warps + warps);
    let eff = stats.coalescing_efficiency();
    assert!(
        (eff - 2.0 / 33.0).abs() < 1e-12,
        "strided efficiency {eff} != 2/33"
    );
}

#[test]
fn stride_32_shared_access_is_a_full_bank_conflict() {
    // One warp; lane `tid` stores to and reloads shared word `tid * 32`.
    // All 32 words map to bank 0 on the GTX480 (32 banks), so each access
    // serialises 32-way: 32 cycles, 31 of them conflict.
    let mut k = DslKernel::new("bankconflict");
    let _inp = k.param_ptr("in");
    let out = k.param_ptr("out");
    let arr = k.shared_array(Ty::F32, 32 * 32);
    let gid = k.let_(Ty::S32, global_id_x());
    let idx = k.let_(Ty::S32, Expr::from(gid) * 32i32);
    k.st_shared(arr, idx, Expr::from(gid).cast(Ty::F32));
    k.barrier();
    let v = k.let_(Ty::F32, arr.ld(idx));
    k.st_global(out, gid, Ty::F32, v);
    let def = k.finish();

    let device = DeviceSpec::gtx480();
    assert_eq!((device.shared_banks, device.coalesce_group), (32, 32));
    let stats = run(&def, &device, 1, 32, 1, 32);
    assert_eq!(stats.shared_accesses, 2, "one store + one load group");
    assert_eq!(stats.shared_cycles, 2 * 32, "32-way serialisation each");
    assert_eq!(stats.shared_conflict_cycles, 2 * 31);
    assert_eq!(stats.bank_conflict_share(), 62.0 / 64.0);

    // GT200 banks per half-warp: same pattern degrades 16-way, twice per
    // 32-lane warp (the half-warp groups).
    let device = DeviceSpec::gtx280();
    assert_eq!((device.shared_banks, device.coalesce_group), (16, 16));
    let stats = run(&def, &device, 1, 32, 1, 32);
    assert_eq!(stats.shared_accesses, 4, "two half-warp groups per access");
    assert_eq!(stats.shared_cycles, 4 * 16);
    assert_eq!(stats.shared_conflict_cycles, 4 * 15);
}

#[test]
fn unit_stride_shared_access_is_conflict_free() {
    let mut k = DslKernel::new("nobankconflict");
    let _inp = k.param_ptr("in");
    let out = k.param_ptr("out");
    let arr = k.shared_array(Ty::F32, 32);
    let gid = k.let_(Ty::S32, global_id_x());
    k.st_shared(arr, gid, Expr::from(gid).cast(Ty::F32));
    k.barrier();
    let v = k.let_(Ty::F32, arr.ld(gid));
    k.st_global(out, gid, Ty::F32, v);
    let def = k.finish();

    let stats = run(&def, &DeviceSpec::gtx480(), 1, 32, 1, 32);
    assert_eq!(stats.shared_accesses, 2);
    assert_eq!(stats.shared_cycles, 2, "one cycle per conflict-free access");
    assert_eq!(stats.shared_conflict_cycles, 0);
    assert_eq!(stats.bank_conflict_share(), 0.0);
}

#[test]
fn const_broadcast_reads_hit_after_the_cold_fill() {
    // All lanes read the same constant element 64 times: one compulsory
    // line fill, everything else hits, and a broadcast never serialises.
    let reps = 64i32;
    let mut k = DslKernel::new("constbcast");
    let _inp = k.param_ptr("in");
    let out = k.param_ptr("out");
    let carr = k.const_array_f32(&[1.5f32; 16]); // 64 B = one cache line
    let gid = k.let_(Ty::S32, global_id_x());
    let acc = k.var(Ty::F32);
    k.assign(acc, 0.0f32);
    k.for_(0i32, reps, 1, Unroll::None, |k, r| {
        // `r & 15` stays inside the one line and is warp-uniform.
        let idx = k.let_(Ty::S32, r & 15i32);
        let v = k.let_(Ty::F32, carr.ld(idx));
        k.assign(acc, Expr::from(acc) + v);
    });
    k.st_global(out, gid, Ty::F32, acc);
    let def = k.finish();

    let device = DeviceSpec::gtx480();
    let block = 64u32; // two warps sharing one block's constant cache
    let stats = run(&def, &device, 1, block, 1, block as usize);
    let warps = (block / device.warp_width) as u64;
    assert_eq!(stats.const_line_accesses, warps * reps as u64);
    assert_eq!(stats.const_misses, 1, "exactly the compulsory fill");
    assert_eq!(stats.const_serializations, 0, "broadcasts never serialise");
    let rate = stats.const_hit_rate();
    assert!(rate > 0.99, "broadcast hit rate {rate} (expected ~100%)");

    // Contrast: lane-dependent indices serialise (16 distinct addresses
    // per warp -> 15 extra cycles per access) even though they still hit.
    let mut k = DslKernel::new("constscatter");
    let _inp = k.param_ptr("in");
    let out = k.param_ptr("out");
    let carr = k.const_array_f32(&[2.5f32; 16]);
    let gid = k.let_(Ty::S32, global_id_x());
    let idx = k.let_(Ty::S32, Expr::from(gid) & 15i32);
    let v = k.let_(Ty::F32, carr.ld(idx));
    k.st_global(out, gid, Ty::F32, v);
    let def = k.finish();
    let stats = run(&def, &device, 1, 32, 1, 32);
    assert_eq!(stats.const_serializations, 15);
}
