//! Tier-1 regression corpus: every `.kdsl` file under `crates/fuzz/corpus/`
//! — minimized reproducers from past campaigns plus the hand-written edge
//! cases — must replay clean through the full differential oracle.

use gpucmp_fuzz::oracle::Oracle;
use gpucmp_fuzz::runner::{corpus_files, replay_file};
use gpucmp_sim::FaultKind;
use std::path::{Path, PathBuf};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

#[test]
fn every_corpus_case_replays_clean() {
    let files = corpus_files(&corpus_dir());
    assert!(
        files.len() >= 8,
        "corpus shrank to {} file(s) — the hand-written edge cases are missing",
        files.len()
    );
    let oracle = Oracle::new();
    for f in &files {
        match replay_file(&oracle, f) {
            Ok(None) => {}
            Ok(Some(d)) => panic!("{}: DIVERGENCE on {}\n{}", f.display(), d.axis, d.detail),
            Err(e) => panic!("{}: broken case: {e}", f.display()),
        }
    }
}

/// The fault-model corpus cases must actually *fault* (identically on
/// every path — `every_corpus_case_replays_clean` checks the agreement;
/// this checks they don't silently degenerate into no-op kernels), and
/// the clean cases must actually complete.
#[test]
fn corpus_cases_have_their_documented_outcomes() {
    type OutcomeCheck = fn(&Result<(), gpucmp_sim::DeviceFault>) -> bool;
    let oracle = Oracle::new();
    let expect: &[(&str, OutcomeCheck)] = &[
        (
            "barrier-divergence.kdsl",
            |o| matches!(o, Err(f) if f.kind == FaultKind::BarrierDeadlock),
        ),
        (
            "watchdog-boundary.kdsl",
            |o| matches!(o, Err(f) if matches!(f.kind, FaultKind::Watchdog { budget: 64 })),
        ),
        (
            "oob-store.kdsl",
            |o| matches!(o, Err(f) if matches!(f.kind, FaultKind::OutOfBounds { .. })),
        ),
        ("fl-corruption.kdsl", |o| o.is_ok()),
        ("shared-rotate.kdsl", |o| o.is_ok()),
        ("atomic-histogram.kdsl", |o| o.is_ok()),
        ("downward-unroll.kdsl", |o| o.is_ok()),
        ("select-shr-signed.kdsl", |o| o.is_ok()),
    ];
    for (file, outcome_ok) in expect {
        let path = corpus_dir().join(file);
        let src =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let case =
            gpucmp_fuzz::load_case(&src).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let snap = oracle
            .reference_snapshot(&case)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(
            outcome_ok(&snap.outcome),
            "{file}: unexpected reference outcome {:?}",
            snap.outcome
        );
    }
}

/// The clean shared-memory and regression cases must compute their
/// documented values, not merely agree on *something*.
#[test]
fn corpus_reference_values_are_right() {
    let oracle = Oracle::new();

    // downward-unroll: every slot holds 3 * (7+6+...+1) = 84.
    let case = load("downward-unroll.kdsl");
    let snap = oracle.reference_snapshot(&case).unwrap();
    let words = as_i32(&snap.mems[0]);
    assert!(words.iter().all(|&w| w == 84), "{words:?}");

    // select-shr-signed: shr(-5, 3) is arithmetic, so the comparison
    // picks the 111 arm in every slot.
    let case = load("select-shr-signed.kdsl");
    let snap = oracle.reference_snapshot(&case).unwrap();
    let words = as_i32(&snap.mems[0]);
    assert!(words.iter().all(|&w| w == 111), "{words:?}");

    // atomic-histogram: 64 threads over 4 bins — 16 increments each on
    // top of the seeded initial contents.
    let case = load("atomic-histogram.kdsl");
    let snap = oracle.reference_snapshot(&case).unwrap();
    let bins = as_i32(&snap.mems[1]);
    let initial = as_i32(&case.bufs[1].data());
    let expect: Vec<i32> = initial.iter().map(|v| v + 16).collect();
    assert_eq!(bins, expect);
}

fn load(file: &str) -> gpucmp_fuzz::FuzzCase {
    let path = corpus_dir().join(file);
    let src = std::fs::read_to_string(&path).unwrap();
    gpucmp_fuzz::load_case(&src).unwrap()
}

fn as_i32(bytes: &[u8]) -> Vec<i32> {
    bytes
        .chunks_exact(4)
        .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}
