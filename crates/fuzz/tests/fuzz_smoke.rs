//! Tier-1 smoke campaign: a small deterministic slice of the fuzzer runs
//! on every `cargo test`, so a semantics regression in either front-end,
//! any execution tier, or any device model fails CI even before the
//! dedicated fuzz jobs run. The full campaigns (200 per-PR, 20k nightly)
//! live in the workflow files.

use gpucmp_fuzz::kdsl;
use gpucmp_fuzz::oracle::{MutateMode, Oracle};
use gpucmp_fuzz::runner::{campaign, CampaignOutcome};

#[test]
fn deterministic_smoke_campaign_is_clean() {
    // Seed 8 is the acceptance seed; 50 cases keep the debug-build run
    // in the low seconds.
    let outcome = campaign(&Oracle::new(), 8, 50, None, |_, _| {});
    match outcome {
        CampaignOutcome::Clean { cases } => assert_eq!(cases, 50),
        CampaignOutcome::Diverged {
            index,
            case_seed,
            divergence,
            ..
        } => panic!(
            "case {index} (seed {case_seed:#018x}) diverged on {}:\n{}",
            divergence.axis, divergence.detail
        ),
        CampaignOutcome::Broken {
            index,
            case_seed,
            error,
        } => panic!("case {index} (seed {case_seed:#018x}) broke the harness: {error}"),
    }
}

/// End-to-end mutation acceptance: an injected fused-tier bit flip is
/// caught, minimized to a handful of statements, and the minimized case
/// round-trips through the `.kdsl` serializer to the same divergence.
#[test]
fn injected_tier_divergence_is_caught_minimized_and_replayable() {
    let oracle = Oracle::with_mutation(MutateMode::TierXor);
    let outcome = campaign(&oracle, 21, 3, None, |_, _| {});
    let CampaignOutcome::Diverged {
        divergence,
        minimized,
        ..
    } = outcome
    else {
        panic!("mutated oracle failed to flag a divergence: {outcome:?}");
    };
    assert_eq!(divergence.axis, "tier:cuda/fused/8t");
    assert!(
        minimized.stmt_count() <= 10,
        "reducer left {} statements",
        minimized.stmt_count()
    );

    // Serialize, re-parse, re-check: the corpus format preserves the bug.
    let text = kdsl::write_case(&minimized);
    let back = kdsl::load_case(&text).expect("minimized case parses");
    let replayed = oracle
        .check(&back)
        .expect("replay runs")
        .expect("replay still diverges");
    assert_eq!(replayed.axis, divergence.axis);
}
