//! The differential oracle: run one case across every pair of paths the
//! reproduction claims are equivalent, and report the first divergence.
//!
//! The comparison matrix (REF = CUDA front-end, interp tier, 1 sim thread,
//! GTX 480):
//!
//! | axis        | runs compared against REF                   | equality |
//! |-------------|---------------------------------------------|----------|
//! | sim threads | cuda/interp/8 threads                       | full     |
//! | exec tier   | cuda/decoded/1t, cuda/fused/1t, cuda/fused/8t | full   |
//! | front-end   | ocl/interp/1t (OREF)                        | memory bit-equal when both complete; fault *kind* when both fault |
//! | front-end×tier | ocl/fused/8t vs OREF                     | full     |
//! | memcheck    | cuda/interp/1t+mc vs cuda/fused/8t+mc       | full + recorded fault list |
//! | device      | gtx280/hd5870/intel920/cellbe, cuda/interp/1t | memory when Ok; fault kind when faulting |
//!
//! "Full" equality = bit-equal buffer contents, `ExecStats` equal, and
//! fault kind + site equal. The front-end axis is looser by design: the
//! two compilers emit different instruction schedules, so `ExecStats`
//! and fault sites legitimately differ — but completed results must be
//! bit-equal (the generator's guard rails exclude the documented
//! fold/fuse asymmetries; see `gen`).
//!
//! The device axis only runs for [`FuzzCase::device_portable`] cases:
//! kernels reading warp-layout builtins or running under an instruction
//! budget legitimately differ across warp widths — the documented
//! FL-corruption exemption (paper Table VI).
//!
//! On a hard fault the simulator aborts mid-launch, so partially-mutated
//! memory is schedule-dependent; faulting runs compare the fault only,
//! never memory.

use crate::gen::{FuzzCase, ScalarSpec};
use gpucmp_compiler::{compile_with_style, cuda_style, opencl_style, CodegenStyle, Compiled};
use gpucmp_ptx::kernel::ResolvedKernel;
use gpucmp_sim::{
    launch_with, DeviceFault, DeviceSpec, ExecOptions, ExecStats, ExecTier, GlobalMemory,
    LaunchConfig, SimError,
};

/// Extra slack behind the buffers so in-bounds accesses never trip the
/// capacity check while the deliberate-OOB index (~4 MiB past the end)
/// always does.
const GMEM_SLACK: u64 = 64 * 1024;

/// A deliberate result perturbation for mutation-testing the oracle
/// itself: proves an injected divergence is caught, minimized and
/// replayed (the acceptance criterion's "injected tier-divergence").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MutateMode {
    /// Flip the low bit of byte 0 of buffer 0 in the cuda/fused/8-thread
    /// snapshot — a synthetic fused-tier miscompile.
    TierXor,
}

/// One divergence between two runs that must agree.
#[derive(Clone, Debug, PartialEq)]
pub struct Divergence {
    /// Which comparison failed, e.g. `tier:cuda/fused/8t`. The reducer's
    /// predicate keys on this string staying the same while shrinking.
    pub axis: String,
    /// Human-readable detail of the first difference.
    pub detail: String,
}

/// The observable outcome of one run.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// `Ok` for a completed launch, `Err` with the fault that aborted it.
    pub outcome: Result<(), DeviceFault>,
    /// Final buffer contents (only meaningful when `outcome` is `Ok`).
    pub mems: Vec<Vec<u8>>,
    /// Execution statistics (only when `outcome` is `Ok`).
    pub stats: Option<ExecStats>,
    /// Memcheck-recorded faults (empty when memcheck was off).
    pub recorded: Vec<DeviceFault>,
}

/// The differential oracle.
#[derive(Clone, Copy, Debug, Default)]
pub struct Oracle {
    /// Optional result perturbation (mutation testing).
    pub mutate: Option<MutateMode>,
}

/// One run configuration on the matrix.
#[derive(Clone, Copy)]
struct RunCfg {
    tier: ExecTier,
    threads: usize,
    memcheck: bool,
}

impl RunCfg {
    const fn new(tier: ExecTier, threads: usize) -> Self {
        RunCfg {
            tier,
            threads,
            memcheck: false,
        }
    }

    const fn mc(mut self) -> Self {
        self.memcheck = true;
        self
    }
}

impl Oracle {
    /// Oracle with no perturbation.
    pub fn new() -> Self {
        Oracle::default()
    }

    /// Oracle that injects `mode` (mutation testing).
    pub fn with_mutation(mode: MutateMode) -> Self {
        Oracle { mutate: Some(mode) }
    }

    /// Run `case` across the full matrix. `Ok(None)` = all paths agree;
    /// `Ok(Some(d))` = a divergence; `Err` = the case itself is broken
    /// (compile or launch-setup error — a generator bug, not a sim bug).
    pub fn check(&self, case: &FuzzCase) -> Result<Option<Divergence>, String> {
        let gtx480 = DeviceSpec::gtx480();
        let cuda = compile(case, &cuda_style(), &gtx480)?;
        let ocl = compile(case, &opencl_style(), &gtx480)?;

        // REF: the fixed point everything on the CUDA side compares to.
        let reference = run(case, &cuda, &gtx480, RunCfg::new(ExecTier::Interp, 1))?;

        // --- sim-thread and tier axes (full equality) -------------------
        let full_axes: [(&str, RunCfg); 4] = [
            ("threads:cuda/interp/8t", RunCfg::new(ExecTier::Interp, 8)),
            ("tier:cuda/decoded/1t", RunCfg::new(ExecTier::Decoded, 1)),
            ("tier:cuda/fused/1t", RunCfg::new(ExecTier::Fused, 1)),
            ("tier:cuda/fused/8t", RunCfg::new(ExecTier::Fused, 8)),
        ];
        for (axis, cfg) in full_axes {
            let mut snap = run(case, &cuda, &gtx480, cfg)?;
            if self.mutate == Some(MutateMode::TierXor) && axis == "tier:cuda/fused/8t" {
                if let Some(b) = snap.mems.first_mut().and_then(|m| m.first_mut()) {
                    *b ^= 1;
                }
            }
            if let Some(d) = compare_full(axis, &reference, &snap) {
                return Ok(Some(d));
            }
        }

        // --- front-end axis (loose: schedules differ by design) ---------
        let oref = run(case, &ocl, &gtx480, RunCfg::new(ExecTier::Interp, 1))?;
        if let Some(d) = compare_frontend("frontend:ocl/interp/1t", &reference, &oref) {
            return Ok(Some(d));
        }
        // The OpenCL build must itself be tier/thread-stable (full equality
        // against its own reference).
        let osnap = run(case, &ocl, &gtx480, RunCfg::new(ExecTier::Fused, 8))?;
        if let Some(d) = compare_full("tier:ocl/fused/8t", &oref, &osnap) {
            return Ok(Some(d));
        }

        // --- memcheck axis ----------------------------------------------
        let mc_ref = run(case, &cuda, &gtx480, RunCfg::new(ExecTier::Interp, 1).mc())?;
        let mc_fused = run(case, &cuda, &gtx480, RunCfg::new(ExecTier::Fused, 8).mc())?;
        if let Some(d) = compare_full("memcheck:cuda/fused/8t", &mc_ref, &mc_fused) {
            return Ok(Some(d));
        }

        // --- device axis (portable cases only) --------------------------
        if case.device_portable() {
            for dev in [
                DeviceSpec::gtx280(),
                DeviceSpec::hd5870(),
                DeviceSpec::intel920(),
                DeviceSpec::cellbe(),
            ] {
                // Recompile at the device's own register cap: spilling
                // differs, results must not.
                let built = compile(case, &cuda_style(), &dev)?;
                let snap = run(case, &built, &dev, RunCfg::new(ExecTier::Interp, 1))?;
                let axis = format!("device:{}", dev.name);
                if let Some(d) = compare_frontend(&axis, &reference, &snap) {
                    return Ok(Some(d));
                }
            }
        }

        Ok(None)
    }

    /// The REF run (cuda/interp/1t on the GTX 480) on its own — lets a
    /// corpus test assert *what* a case does (completes, or faults with
    /// a specific kind) on top of `check`'s all-paths-agree verdict.
    pub fn reference_snapshot(&self, case: &FuzzCase) -> Result<Snapshot, String> {
        let gtx480 = DeviceSpec::gtx480();
        let cuda = compile(case, &cuda_style(), &gtx480)?;
        run(case, &cuda, &gtx480, RunCfg::new(ExecTier::Interp, 1))
    }
}

/// Compile `case` for `device` with `style` — through the full front-end
/// pipeline, which validates both the PTX and the post-ptxas executable
/// form of every generated kernel.
fn compile(case: &FuzzCase, style: &CodegenStyle, device: &DeviceSpec) -> Result<Compiled, String> {
    compile_with_style(&case.def, style, device.max_regs_per_thread)
        .map_err(|e| format!("{} compile failed: {}", style.name, e.0))
}

/// Execute one run and snapshot everything observable.
fn run(
    case: &FuzzCase,
    built: &Compiled,
    device: &DeviceSpec,
    rc: RunCfg,
) -> Result<Snapshot, String> {
    let resolved: ResolvedKernel = built
        .exec
        .resolve()
        .map_err(|e| format!("kernel failed to resolve: {e}"))?;

    let total: u64 = case.bufs.iter().map(|b| b.bytes()).sum();
    let mut gmem = GlobalMemory::new(total + GMEM_SLACK);
    let mut ptrs = Vec::new();
    for b in &case.bufs {
        let p = gmem
            .alloc(b.bytes())
            .map_err(|e| format!("alloc failed: {e:?}"))?;
        gmem.copy_in(p, &b.data())
            .map_err(|e| format!("copy_in failed: {e:?}"))?;
        ptrs.push(p);
    }

    let mut cfg = LaunchConfig::new(case.grid, case.block);
    for p in &ptrs {
        cfg = cfg.arg_ptr(*p);
    }
    for s in &case.scalars {
        cfg = match s {
            ScalarSpec::I32(v) => cfg.arg_i32(*v),
            ScalarSpec::F32(v) => cfg.arg_f32(*v),
        };
    }
    if let Some(b) = case.inst_budget {
        cfg.inst_budget = b;
    }

    let opts = ExecOptions::with_threads(rc.threads)
        .tier(rc.tier)
        .memcheck(rc.memcheck);

    match launch_with(
        device,
        &resolved,
        &mut gmem,
        &case.def.const_data,
        &cfg,
        &opts,
    ) {
        Ok(report) => {
            let mut mems = Vec::new();
            for (b, p) in case.bufs.iter().zip(&ptrs) {
                let mut out = vec![0u8; b.bytes() as usize];
                gmem.copy_out(*p, &mut out)
                    .map_err(|e| format!("copy_out failed: {e:?}"))?;
                mems.push(out);
            }
            Ok(Snapshot {
                outcome: Ok(()),
                mems,
                stats: Some(report.stats),
                recorded: report.faults,
            })
        }
        Err(SimError::Fault(f)) => Ok(Snapshot {
            outcome: Err(f),
            mems: Vec::new(),
            stats: None,
            recorded: Vec::new(),
        }),
        Err(e) => Err(format!("launch setup failed: {e:?}")),
    }
}

/// Full equality: outcome (incl. fault site), memory, stats, and the
/// memcheck-recorded fault list.
fn compare_full(axis: &str, a: &Snapshot, b: &Snapshot) -> Option<Divergence> {
    let diverge = |detail: String| {
        Some(Divergence {
            axis: axis.to_string(),
            detail,
        })
    };
    match (&a.outcome, &b.outcome) {
        (Ok(()), Ok(())) => {
            if let Some(d) = first_mem_diff(a, b) {
                return diverge(d);
            }
            if a.stats != b.stats {
                return diverge(format!(
                    "ExecStats differ:\n  ref: {:?}\n  got: {:?}",
                    a.stats, b.stats
                ));
            }
            if a.recorded != b.recorded {
                return diverge(format!(
                    "memcheck fault lists differ: ref {:?} vs got {:?}",
                    a.recorded, b.recorded
                ));
            }
            None
        }
        (Err(fa), Err(fb)) => {
            // On abort, memory is partially mutated in schedule order —
            // only the fault itself is comparable, but it must match
            // exactly (kind + site).
            if fa != fb {
                return diverge(format!("faults differ: ref {fa:?} vs got {fb:?}"));
            }
            None
        }
        (Ok(()), Err(f)) => diverge(format!("ref completed but run faulted: {f:?}")),
        (Err(f), Ok(())) => diverge(format!("ref faulted ({f:?}) but run completed")),
    }
}

/// Front-end / device equality: bit-equal memory when both complete, same
/// fault *kind* when both fault. Stats, sites and recorded lists
/// legitimately differ (different instruction schedules).
fn compare_frontend(axis: &str, a: &Snapshot, b: &Snapshot) -> Option<Divergence> {
    let diverge = |detail: String| {
        Some(Divergence {
            axis: axis.to_string(),
            detail,
        })
    };
    match (&a.outcome, &b.outcome) {
        (Ok(()), Ok(())) => first_mem_diff(a, b).and_then(diverge),
        (Err(fa), Err(fb)) => {
            if std::mem::discriminant(&fa.kind) != std::mem::discriminant(&fb.kind) {
                return diverge(format!(
                    "fault kinds differ: ref {:?} vs got {:?}",
                    fa.kind, fb.kind
                ));
            }
            None
        }
        (Ok(()), Err(f)) => diverge(format!("ref completed but run faulted: {f:?}")),
        (Err(f), Ok(())) => diverge(format!("ref faulted ({f:?}) but run completed")),
    }
}

/// First byte-level difference between two completed snapshots.
fn first_mem_diff(a: &Snapshot, b: &Snapshot) -> Option<String> {
    for (bi, (ma, mb)) in a.mems.iter().zip(&b.mems).enumerate() {
        if ma != mb {
            let off = ma.iter().zip(mb).position(|(x, y)| x != y).unwrap_or(0);
            return Some(format!(
                "buffer {bi} differs at byte {off}: ref {:02x?} vs got {:02x?}",
                &ma[off..(off + 4).min(ma.len())],
                &mb[off..(off + 4).min(mb.len())],
            ));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use crate::rng::case_seed;

    #[test]
    fn small_generated_batch_is_clean() {
        let oracle = Oracle::new();
        for i in 0..8 {
            let case = generate(case_seed(8, i));
            let verdict = oracle.check(&case).unwrap_or_else(|e| {
                panic!("case {i} broke the oracle: {e}");
            });
            assert!(verdict.is_none(), "case {i} diverged: {verdict:?}");
        }
    }

    #[test]
    fn mutation_is_caught_on_the_tier_axis() {
        let oracle = Oracle::with_mutation(MutateMode::TierXor);
        // Any case that completes will do; seed 8 case 0 completes.
        let case = generate(case_seed(8, 0));
        let verdict = oracle.check(&case).expect("oracle should run");
        let d = verdict.expect("mutation must be detected");
        assert_eq!(d.axis, "tier:cuda/fused/8t");
    }
}
