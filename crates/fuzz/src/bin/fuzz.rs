//! The `fuzz` binary: differential kernel fuzzing campaigns and corpus
//! replay.
//!
//! ```text
//! fuzz --cases 1000 --seed 8             # campaign
//! fuzz --replay crates/fuzz/corpus/x.kdsl  # replay one reproducer
//! fuzz --cases 50 --seed 8 --mutate tier-xor   # prove the oracle bites
//! ```
//!
//! Exit codes: 0 = clean, 1 = divergence (or a broken case), 2 = usage.

use gpucmp_fuzz::oracle::{MutateMode, Oracle};
use gpucmp_fuzz::runner::{campaign, replay_file, CampaignOutcome};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    cases: u64,
    seed: u64,
    replay: Option<PathBuf>,
    mutate: Option<MutateMode>,
    out: PathBuf,
}

fn usage() -> ! {
    eprintln!(
        "usage: fuzz [--cases N] [--seed S] [--replay FILE] [--mutate tier-xor] [--out DIR]

  --cases N        number of generated cases to run (default 1000)
  --seed S         campaign seed; case i uses a seed derived from (S, i) (default 0)
  --replay FILE    replay one .kdsl case through the full oracle instead of generating
  --mutate MODE    inject a deliberate divergence (oracle self-test); MODE: tier-xor
  --out DIR        where minimized reproducers are written (default: crates/fuzz/corpus)"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        cases: 1000,
        seed: 0,
        replay: None,
        mutate: None,
        out: PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/corpus")),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match a.as_str() {
            "--cases" => {
                args.cases = val("--cases").parse().unwrap_or_else(|_| usage());
            }
            "--seed" => {
                args.seed = val("--seed").parse().unwrap_or_else(|_| usage());
            }
            "--replay" => args.replay = Some(PathBuf::from(val("--replay"))),
            "--mutate" => match val("--mutate").as_str() {
                "tier-xor" => args.mutate = Some(MutateMode::TierXor),
                other => {
                    eprintln!("unknown mutation mode {other:?}");
                    usage();
                }
            },
            "--out" => args.out = PathBuf::from(val("--out")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let oracle = match args.mutate {
        Some(m) => Oracle::with_mutation(m),
        None => Oracle::new(),
    };

    if let Some(path) = &args.replay {
        return match replay_file(&oracle, path) {
            Ok(None) => {
                println!("replay {}: clean on every axis", path.display());
                ExitCode::SUCCESS
            }
            Ok(Some(d)) => {
                eprintln!("replay {}: DIVERGENCE on {}", path.display(), d.axis);
                eprintln!("{}", d.detail);
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("replay {}: error: {e}", path.display());
                ExitCode::FAILURE
            }
        };
    }

    println!(
        "fuzzing {} cases from seed {} (reproducers -> {})",
        args.cases,
        args.seed,
        args.out.display()
    );
    let outcome = campaign(
        &oracle,
        args.seed,
        args.cases,
        Some(&args.out),
        |done, total| {
            if done > 0 {
                println!("  {done}/{total}");
            }
        },
    );
    match outcome {
        CampaignOutcome::Clean { cases } => {
            println!("{cases} cases: all execution paths agree");
            ExitCode::SUCCESS
        }
        CampaignOutcome::Diverged {
            index,
            case_seed,
            minimized,
            divergence,
            written,
        } => {
            eprintln!(
                "case {index} (seed {case_seed:#018x}): DIVERGENCE on {}",
                divergence.axis
            );
            eprintln!("{}", divergence.detail);
            eprintln!("minimized to {} statement(s)", minimized.stmt_count());
            if let Some(p) = written {
                eprintln!("reproducer written to {}", p.display());
                eprintln!("replay with: fuzz --replay {}", p.display());
            }
            ExitCode::FAILURE
        }
        CampaignOutcome::Broken {
            index,
            case_seed,
            error,
        } => {
            eprintln!("case {index} (seed {case_seed:#018x}): harness error: {error}");
            eprintln!(
                "this is a generator/harness bug — reproduce by re-running with the same seed"
            );
            ExitCode::FAILURE
        }
    }
}
