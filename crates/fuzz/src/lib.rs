//! # gpucmp-fuzz — differential kernel fuzzing
//!
//! The confidence harness behind the reproduction's central claim: that the
//! CUDA-style and OpenCL-style paths through the system compute the *same
//! thing*, differing only in performance. A seeded generator ([`gen`])
//! emits random-but-well-formed kernels over the `gpucmp-compiler` AST;
//! the differential oracle ([`oracle`]) lowers each through both
//! front-ends and runs the result across execution tiers, simulator thread
//! counts, memcheck modes and device models, asserting bit-equal memory,
//! consistent `ExecStats`, and identical fault kind/site. On a mismatch
//! the reducer ([`reduce`]) shrinks the case to a minimal reproducer and
//! the runner ([`runner`]) writes it to `corpus/` as a replayable
//! [`kdsl`] file.
//!
//! Entry points: the `fuzz` binary (`--cases N --seed S --replay <file>`),
//! [`runner::campaign`] and [`runner::replay_file`].

pub mod gen;
pub mod kdsl;
pub mod oracle;
pub mod reduce;
pub mod rng;
pub mod runner;

pub use gen::{generate, BufferSpec, FuzzCase, ScalarSpec};
pub use kdsl::{load_case, write_case};
pub use oracle::{Divergence, MutateMode, Oracle};
pub use reduce::reduce;
pub use rng::{case_seed, Rng};
