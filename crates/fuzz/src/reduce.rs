//! The minimizing reducer: shrink a diverging case to a minimal
//! reproducer that still diverges on the *same axis*.
//!
//! Classic greedy delta-debugging with first-improvement restarts: each
//! round proposes candidate edits in decreasing order of expected payoff
//! (launch-geometry shrinks, statement deletion, control-structure
//! hoisting, loop-bound collapse, expression child-substitution); the
//! first candidate that (a) still compiles through both front-ends and
//! (b) still reports a divergence with the same axis string replaces the
//! case and restarts the round. Rounds repeat until a fixpoint or the
//! oracle-check budget runs out.
//!
//! Keying the predicate on the axis string (e.g. `tier:cuda/fused/8t`)
//! keeps the reducer from "wandering": a shrink that trades the original
//! mismatch for a different one is rejected.

use crate::gen::FuzzCase;
use crate::oracle::{Divergence, Oracle};
use gpucmp_compiler::ast::{Expr, Stmt};

/// Upper bound on oracle invocations per reduction (each invocation runs
/// the full matrix, so this caps wall-clock on adversarial cases).
const CHECK_BUDGET: usize = 500;

/// Outcome of a reduction.
#[derive(Clone, Debug)]
pub struct Reduced {
    /// The minimized case.
    pub case: FuzzCase,
    /// The divergence it still reproduces.
    pub divergence: Divergence,
    /// Oracle invocations spent.
    pub checks: usize,
}

/// Shrink `case` (known to diverge as `original`) to a minimal
/// reproducer with the same divergence axis.
pub fn reduce(oracle: &Oracle, case: &FuzzCase, original: &Divergence) -> Reduced {
    let mut best = case.clone();
    let mut best_div = original.clone();
    let target_axis = original.axis.clone();
    let mut checks = 0usize;

    // Does `candidate` still show the same failure? Compile errors and
    // clean runs both reject it; so does a divergence on a different axis
    // (the reducer must not wander to an unrelated bug), and so does a
    // use-before-def candidate (deleting a `let` whose variable is still
    // read leaves a register whose content is an allocation artifact —
    // such a case "diverges" for a reason unrelated to the original bug).
    let still_fails = |cand: &FuzzCase, checks: &mut usize| -> Option<Divergence> {
        if *checks >= CHECK_BUDGET || uses_undefined_vars(&cand.def.body) {
            return None;
        }
        *checks += 1;
        match oracle.check(cand) {
            Ok(Some(d)) if d.axis == target_axis => Some(d),
            _ => None,
        }
    };

    loop {
        let mut improved = false;
        for cand in candidates(&best) {
            if cand.stmt_count() == 0 {
                continue;
            }
            if let Some(d) = still_fails(&cand, &mut checks) {
                best = cand;
                best_div = d;
                improved = true;
                break;
            }
        }
        if !improved || checks >= CHECK_BUDGET {
            break;
        }
    }

    best.name = format!("min-{:016x}", best.seed);
    Reduced {
        case: best,
        divergence: best_div,
        checks,
    }
}

/// Whether any variable is read before it is definitely assigned.
/// Standard definite-assignment dataflow: a branch's definitions escape
/// only if both branches make them, loop-body definitions don't escape at
/// all (zero-trip loops), and a `for` defines its induction variable from
/// the loop onward.
fn uses_undefined_vars(body: &[Stmt]) -> bool {
    use std::collections::HashSet;

    fn expr_ok(e: &Expr, defined: &HashSet<u32>) -> bool {
        match e {
            Expr::ImmI(_) | Expr::ImmF(_) | Expr::Param(_) | Expr::Special(_) => true,
            Expr::Var(v) => defined.contains(&v.id),
            Expr::Un(_, a) | Expr::Cast(_, a) => expr_ok(a, defined),
            Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => expr_ok(a, defined) && expr_ok(b, defined),
            Expr::Select(c, a, b) => {
                expr_ok(c, defined) && expr_ok(a, defined) && expr_ok(b, defined)
            }
            Expr::Load { base, index, .. } => expr_ok(base, defined) && expr_ok(index, defined),
            Expr::TexFetch { index, .. } => expr_ok(index, defined),
        }
    }

    fn walk(body: &[Stmt], defined: &mut HashSet<u32>) -> bool {
        for s in body {
            match s {
                Stmt::Let(v, e) | Stmt::Assign(v, e) => {
                    if !expr_ok(e, defined) {
                        return false;
                    }
                    defined.insert(v.id);
                }
                Stmt::Store {
                    base, index, value, ..
                } => {
                    if !(expr_ok(base, defined)
                        && expr_ok(index, defined)
                        && expr_ok(value, defined))
                    {
                        return false;
                    }
                }
                Stmt::If { cond, then_, else_ } => {
                    if !expr_ok(cond, defined) {
                        return false;
                    }
                    let mut dt = defined.clone();
                    let mut de = defined.clone();
                    if !walk(then_, &mut dt) || !walk(else_, &mut de) {
                        return false;
                    }
                    for id in dt.intersection(&de) {
                        defined.insert(*id);
                    }
                }
                Stmt::For {
                    var,
                    start,
                    end,
                    body,
                    ..
                } => {
                    if !(expr_ok(start, defined) && expr_ok(end, defined)) {
                        return false;
                    }
                    let mut db = defined.clone();
                    db.insert(var.id);
                    if !walk(body, &mut db) {
                        return false;
                    }
                    // The induction variable keeps its final value.
                    defined.insert(var.id);
                }
                Stmt::While { cond, body } => {
                    if !expr_ok(cond, defined) {
                        return false;
                    }
                    let mut db = defined.clone();
                    if !walk(body, &mut db) {
                        return false;
                    }
                }
                Stmt::Barrier => {}
                Stmt::AtomicRmw {
                    base,
                    index,
                    value,
                    old,
                    ..
                } => {
                    if !(expr_ok(base, defined)
                        && expr_ok(index, defined)
                        && expr_ok(value, defined))
                    {
                        return false;
                    }
                    if let Some(o) = old {
                        defined.insert(o.id);
                    }
                }
            }
        }
        true
    }

    let mut defined = HashSet::new();
    !walk(body, &mut defined)
}

/// Candidate edits for one round, best-payoff first.
fn candidates(case: &FuzzCase) -> Vec<FuzzCase> {
    let mut out = Vec::new();

    // Launch-geometry shrinks: most bugs survive them and they make every
    // later oracle check cheaper.
    if case.grid > 1 {
        let mut c = case.clone();
        c.grid = 1;
        out.push(c);
    }
    if case.block > 32 {
        let mut c = case.clone();
        c.block = 32;
        out.push(c);
    }
    if case.block > 1 && case.block <= 32 {
        let mut c = case.clone();
        c.block = 1;
        out.push(c);
    }
    if case.inst_budget.is_some() {
        let mut c = case.clone();
        c.inst_budget = None;
        out.push(c);
    }

    // Statement deletion, last-to-first (later statements are more often
    // dead weight for an earlier divergence).
    let paths = stmt_paths(&case.def.body);
    for path in paths.iter().rev() {
        let mut c = case.clone();
        if delete_at(&mut c.def.body, path) {
            out.push(c);
        }
    }

    // Hoist the body of an if/for in place of the structure itself, and
    // collapse loop bounds to a single iteration.
    for path in paths.iter().rev() {
        if let Some(stmt) = stmt_at(&case.def.body, path) {
            match stmt {
                Stmt::If { then_, .. } if !then_.is_empty() => {
                    let body = then_.clone();
                    let mut c = case.clone();
                    if replace_at(&mut c.def.body, path, body) {
                        out.push(c);
                    }
                }
                Stmt::For {
                    var,
                    start,
                    end,
                    step,
                    unroll,
                    body,
                } => {
                    // One-iteration loop.
                    let collapsed = Stmt::For {
                        var: *var,
                        start: Expr::ImmI(0),
                        end: Expr::ImmI(1),
                        step: 1,
                        unroll: *unroll,
                        body: body.clone(),
                    };
                    if !matches!((start, end, step), (Expr::ImmI(0), Expr::ImmI(1), 1)) {
                        let mut c = case.clone();
                        if replace_at(&mut c.def.body, path, vec![collapsed]) {
                            out.push(c);
                        }
                    }
                }
                _ => {}
            }
        }
    }

    // Expression simplification: replace a statement's expressions by one
    // of their children (type-preserving hoists only).
    for path in paths.iter().rev() {
        if let Some(stmt) = stmt_at(&case.def.body, path) {
            for simplified in simplify_stmt(stmt) {
                let mut c = case.clone();
                if replace_at(&mut c.def.body, path, vec![simplified]) {
                    out.push(c);
                }
            }
        }
    }

    out
}

/// Paths (index chains) to every statement, preorder.
fn stmt_paths(body: &[Stmt]) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    fn walk(body: &[Stmt], prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        for (i, s) in body.iter().enumerate() {
            prefix.push(i);
            out.push(prefix.clone());
            match s {
                Stmt::If { then_, else_, .. } => {
                    // then-branch = child space 0.., else-branch shifted by
                    // then_.len() — encoded by flattening both into one
                    // child list for path purposes.
                    walk(then_, prefix, out);
                    let mark = prefix.len();
                    prefix.push(usize::MAX); // sentinel: else-branch
                    walk(else_, prefix, out);
                    prefix.truncate(mark);
                }
                Stmt::For { body, .. } | Stmt::While { body, .. } => walk(body, prefix, out),
                _ => {}
            }
            prefix.pop();
        }
    }
    let mut prefix = Vec::new();
    walk(body, &mut prefix, &mut out);
    out
}

/// Resolve a path to a statement.
fn stmt_at<'a>(body: &'a [Stmt], path: &[usize]) -> Option<&'a Stmt> {
    let (&idx, rest) = path.split_first()?;
    if idx == usize::MAX {
        // else-branch sentinel is never first in a valid path segment.
        return None;
    }
    let s = body.get(idx)?;
    if rest.is_empty() {
        return Some(s);
    }
    match s {
        Stmt::If { then_, else_, .. } => {
            if rest[0] == usize::MAX {
                stmt_at(else_, &rest[1..])
            } else {
                stmt_at(then_, rest)
            }
        }
        Stmt::For { body, .. } | Stmt::While { body, .. } => stmt_at(body, rest),
        _ => None,
    }
}

/// Delete the statement at `path`; false if the path no longer resolves.
fn delete_at(body: &mut Vec<Stmt>, path: &[usize]) -> bool {
    edit_at(body, path, |parent, idx| {
        parent.remove(idx);
        true
    })
}

/// Replace the statement at `path` with `with` (possibly several
/// statements — used for body hoists).
fn replace_at(body: &mut Vec<Stmt>, path: &[usize], with: Vec<Stmt>) -> bool {
    edit_at(body, path, move |parent, idx| {
        parent.splice(idx..idx + 1, with);
        true
    })
}

fn edit_at(
    body: &mut Vec<Stmt>,
    path: &[usize],
    edit: impl FnOnce(&mut Vec<Stmt>, usize) -> bool,
) -> bool {
    let Some((&idx, rest)) = path.split_first() else {
        return false;
    };
    if idx == usize::MAX {
        return false;
    }
    if rest.is_empty() {
        if idx >= body.len() {
            return false;
        }
        return edit(body, idx);
    }
    let Some(s) = body.get_mut(idx) else {
        return false;
    };
    match s {
        Stmt::If { then_, else_, .. } => {
            if rest[0] == usize::MAX {
                edit_at(else_, &rest[1..], edit)
            } else {
                edit_at(then_, rest, edit)
            }
        }
        Stmt::For { body, .. } | Stmt::While { body, .. } => edit_at(body, rest, edit),
        _ => false,
    }
}

/// Type-preserving expression shrinks of one statement (each result is a
/// full replacement statement).
fn simplify_stmt(stmt: &Stmt) -> Vec<Stmt> {
    let mut out = Vec::new();
    match stmt {
        Stmt::Let(v, e) => {
            for e2 in shrink_expr(e) {
                out.push(Stmt::Let(*v, e2));
            }
        }
        Stmt::Assign(v, e) => {
            for e2 in shrink_expr(e) {
                out.push(Stmt::Assign(*v, e2));
            }
        }
        Stmt::Store {
            space,
            base,
            index,
            ty,
            value,
        } => {
            for v2 in shrink_expr(value) {
                out.push(Stmt::Store {
                    space: *space,
                    base: base.clone(),
                    index: index.clone(),
                    ty: *ty,
                    value: v2,
                });
            }
            for i2 in shrink_expr(index) {
                out.push(Stmt::Store {
                    space: *space,
                    base: base.clone(),
                    index: i2,
                    ty: *ty,
                    value: value.clone(),
                });
            }
        }
        Stmt::If { cond, then_, else_ } => {
            for c2 in shrink_expr(cond) {
                out.push(Stmt::If {
                    cond: c2,
                    then_: then_.clone(),
                    else_: else_.clone(),
                });
            }
        }
        _ => {}
    }
    out
}

/// Candidate replacements for an expression: its like-typed children.
/// (Like-typed is approximated structurally: `Bin`/`Select` children share
/// the parent's type class; a `Cmp` or `Cast` child does not.)
fn shrink_expr(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::Bin(_, a, b) => vec![(**a).clone(), (**b).clone()],
        Expr::Select(_, a, b) => vec![(**a).clone(), (**b).clone()],
        Expr::Un(_, a) => vec![(**a).clone()],
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use crate::oracle::MutateMode;
    use crate::rng::case_seed;

    #[test]
    fn paths_cover_nested_structures() {
        let case = generate(case_seed(8, 3));
        let paths = stmt_paths(&case.def.body);
        assert_eq!(paths.len(), case.stmt_count());
        for p in &paths {
            assert!(stmt_at(&case.def.body, p).is_some(), "unresolvable {p:?}");
        }
    }

    #[test]
    fn deletion_reduces_count() {
        let case = generate(case_seed(8, 1));
        let n = case.stmt_count();
        let paths = stmt_paths(&case.def.body);
        let mut c = case.clone();
        assert!(delete_at(&mut c.def.body, paths.last().unwrap()));
        assert!(c.stmt_count() < n);
    }

    #[test]
    fn injected_divergence_minimizes_small() {
        let oracle = Oracle::with_mutation(MutateMode::TierXor);
        let case = generate(case_seed(8, 0));
        let d = oracle
            .check(&case)
            .expect("oracle runs")
            .expect("mutation detected");
        let red = reduce(&oracle, &case, &d);
        assert_eq!(red.divergence.axis, d.axis);
        // Acceptance bound: a pure result-perturbation shrinks to almost
        // nothing (the kernel still needs one observable statement).
        assert!(
            red.case.stmt_count() <= 10,
            "reduced to {} statements",
            red.case.stmt_count()
        );
    }
}
