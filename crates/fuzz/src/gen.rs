//! The seeded kernel generator: random-but-well-formed kernels over the
//! `gpucmp-compiler` AST, plus the case metadata (launch geometry, buffer
//! contents, scalars) needed to run them.
//!
//! Shaped on cranelift's `fuzzgen`: a budgeted recursive generator with
//! type-directed expression synthesis and semantic guard rails. The guard
//! rails exist to rule out *by-design* divergences between the two
//! front-ends, so that every divergence the oracle reports is a real bug:
//!
//! - memory indices are guarded (`(e & 0x3fff) % len`) so accesses stay in
//!   bounds — except the occasional deliberate out-of-bounds store emitted
//!   as a top-level statement for fault-equivalence coverage;
//! - integer division/remainder denominators are clamped to `1..=16` and
//!   shift amounts masked to `0..=7` (the ALU would fault / clamp anyway,
//!   but a conditional fault inside a `select` arm would legitimately
//!   diverge: the CUDA front-end folds constant selects while the runtime
//!   `selp` evaluates both arms);
//! - transcendental float ops (`sin`, `cos`, `rsqrt`, `rcp`, `ex2`, `lg2`)
//!   always receive an operand containing a dynamic leaf, because constant
//!   folding computes them in f64 and rounds, which is bit-exact for
//!   `+ - * / sqrt` (the 2p+2 double-rounding theorem) but not for
//!   transcendentals;
//! - `sqrt` operands are wrapped in `abs` (NaN payloads of `sqrt(-x)`
//!   differ between a folded f64 NaN and a native f32 NaN on some targets);
//! - a float multiply feeding the generator never has two constant
//!   operands, so the OpenCL front-end's `fma` fusion and the CUDA
//!   backend's `mad` fusion see the same shape (a folded constant multiply
//!   on one side but a fused `fma` on the other would round differently);
//! - a float `add` never takes a `mul`-rooted operand: the OpenCL
//!   front-end contracts `a*b + c` to a single-rounding `mad` while the
//!   CUDA front-end keeps the two-rounding `mul`+`add` — a documented
//!   1-ulp asymmetry, so `a*b - c` shapes stand in for fused arithmetic;
//! - assignments never target the thread-id variable (own-slot stores
//!   index by it — mutating it would reintroduce write races) or a live
//!   loop induction variable (the constant trip bound is what keeps
//!   generated loops finite);
//! - barriers are emitted only where every thread reaches them (top level
//!   and constant-trip-count top-level loops, never under an `if`);
//! - atomics are integer, commutative (`add`/`min`/`max`) and never
//!   capture the old value, so results are schedule-independent;
//! - warp-layout builtins (`laneid`, `warpid`, `warpsize`) are never
//!   generated: they are the documented FL-corruption surface (paper
//!   Table VI) and would legitimately differ across device models.
//!   Hand-written corpus cases cover them with `device-exempt` set.

use crate::rng::Rng;
use gpucmp_compiler::ast::{Builtin, Expr, KernelDef, Stmt, Unroll, Var};
use gpucmp_ptx::{AtomOp, CmpOp, Op1, Op2, Space, Ty};

/// A device buffer backing one pointer parameter.
#[derive(Clone, Debug, PartialEq)]
pub struct BufferSpec {
    /// Element type (`S32`, `U32` or `F32`).
    pub ty: Ty,
    /// Element count.
    pub len: u32,
    /// Seed for the deterministic initial contents.
    pub init: u64,
}

impl BufferSpec {
    /// Byte size of the buffer.
    pub fn bytes(&self) -> u64 {
        self.len as u64 * self.ty.size_bytes() as u64
    }

    /// The deterministic initial contents as raw little-endian bytes.
    pub fn data(&self) -> Vec<u8> {
        let mut rng = Rng::new(self.init);
        let mut bytes = Vec::with_capacity(self.bytes() as usize);
        for _ in 0..self.len {
            let raw = rng.next_u64();
            match self.ty {
                Ty::F32 => {
                    // Finite, smallish magnitudes: plenty of signal without
                    // overflow to inf in short arithmetic chains.
                    let v = ((raw % 2048) as f32 - 1024.0) / 128.0;
                    bytes.extend_from_slice(&v.to_le_bytes());
                }
                _ => {
                    let v = ((raw % 512) as i32) - 256;
                    bytes.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        bytes
    }
}

/// A scalar kernel parameter.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ScalarSpec {
    /// 32-bit signed integer.
    I32(i32),
    /// 32-bit float.
    F32(f32),
}

/// One complete fuzz case: a kernel plus everything needed to launch it.
#[derive(Clone, Debug, PartialEq)]
pub struct FuzzCase {
    /// Case name (diagnostic only).
    pub name: String,
    /// The seed that generated the case (0 for hand-written corpus cases).
    pub seed: u64,
    /// Grid extent in blocks (1-D).
    pub grid: u32,
    /// Block extent in threads (1-D).
    pub block: u32,
    /// Pointer parameters, in parameter-slot order (slots `0..bufs.len()`).
    pub bufs: Vec<BufferSpec>,
    /// Scalar parameters, in slot order after the pointers.
    pub scalars: Vec<ScalarSpec>,
    /// Dynamic warp-instruction budget override (watchdog cases). A set
    /// budget exempts the case from the device axis: the budget counts
    /// *warp* instructions, which scale with the device's warp width.
    pub inst_budget: Option<u64>,
    /// Explicit exemption from the device-comparison axis (hand-written
    /// warp-sensitive corpus cases; the documented Table VI FL surface).
    pub device_exempt: bool,
    /// The kernel.
    pub def: KernelDef,
}

impl FuzzCase {
    /// Total statement count (nested bodies included) — the reducer's
    /// minimality metric.
    pub fn stmt_count(&self) -> usize {
        fn count(body: &[Stmt]) -> usize {
            body.iter()
                .map(|s| match s {
                    Stmt::If { then_, else_, .. } => 1 + count(then_) + count(else_),
                    Stmt::For { body, .. } | Stmt::While { body, .. } => 1 + count(body),
                    _ => 1,
                })
                .sum()
        }
        count(&self.def.body)
    }

    /// Whether the case participates in the device-comparison axis.
    /// Kernels whose results depend on the warp layout (warp builtins) or
    /// on the warp-instruction budget are exempt — the documented
    /// FL-corruption exemption.
    pub fn device_portable(&self) -> bool {
        !self.device_exempt && self.inst_budget.is_none() && !uses_warp_builtins(&self.def)
    }
}

/// Whether the kernel reads any warp-layout builtin.
fn uses_warp_builtins(def: &KernelDef) -> bool {
    fn expr(e: &Expr) -> bool {
        match e {
            Expr::Special(Builtin::LaneId | Builtin::WarpId | Builtin::WarpSize) => true,
            Expr::ImmI(_) | Expr::ImmF(_) | Expr::Var(_) | Expr::Param(_) | Expr::Special(_) => {
                false
            }
            Expr::Un(_, a) | Expr::Cast(_, a) => expr(a),
            Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => expr(a) || expr(b),
            Expr::Select(c, a, b) => expr(c) || expr(a) || expr(b),
            Expr::Load { base, index, .. } => expr(base) || expr(index),
            Expr::TexFetch { index, .. } => expr(index),
        }
    }
    fn stmts(body: &[Stmt]) -> bool {
        body.iter().any(|s| match s {
            Stmt::Let(_, e) | Stmt::Assign(_, e) => expr(e),
            Stmt::Store {
                base, index, value, ..
            } => expr(base) || expr(index) || expr(value),
            Stmt::If { cond, then_, else_ } => expr(cond) || stmts(then_) || stmts(else_),
            Stmt::For {
                start, end, body, ..
            } => expr(start) || expr(end) || stmts(body),
            Stmt::While { cond, body } => expr(cond) || stmts(body),
            Stmt::Barrier => false,
            Stmt::AtomicRmw {
                base, index, value, ..
            } => expr(base) || expr(index) || expr(value),
        })
    }
    stmts(&def.body)
}

/// Whether an expression contains no dynamic leaf (fully constant-foldable).
fn is_const(e: &Expr) -> bool {
    match e {
        Expr::ImmI(_) | Expr::ImmF(_) => true,
        Expr::Var(_) | Expr::Param(_) | Expr::Special(_) => false,
        Expr::Un(_, a) | Expr::Cast(_, a) => is_const(a),
        Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => is_const(a) && is_const(b),
        Expr::Select(c, a, b) => is_const(c) && is_const(a) && is_const(b),
        Expr::Load { .. } | Expr::TexFetch { .. } => false,
    }
}

/// How generated code may touch one buffer. The roles make every case
/// race-free by construction: results must not depend on the order in
/// which warps execute, because that order legitimately differs across
/// device models (warp width 4/32/64 partitions the block differently).
#[derive(Clone, Copy, Debug, PartialEq)]
enum Role {
    /// Read-only: loads with arbitrary (guarded) indices; never written.
    In,
    /// Written only at each thread's own `global_id` slot (injective
    /// across the whole grid), never read. Conflict-free.
    Out,
    /// Touched only by atomic RMW with this single commutative-associative
    /// op, so the final value is independent of execution order. Never
    /// loaded or plainly stored.
    Atomic(AtomOp),
}

/// Generator state for one case.
struct Gen {
    rng: Rng,
    block: u32,
    bufs: Vec<BufferSpec>,
    roles: Vec<Role>,
    scalars: Vec<ScalarSpec>,
    /// The `global_id` variable (always var 0, bound first).
    gid: Var,
    var_tys: Vec<Ty>,
    /// In-scope integer variables (S32/U32).
    int_vars: Vec<Var>,
    /// In-scope float variables.
    float_vars: Vec<Var>,
    /// Induction variables of the loops currently being generated.
    /// Readable like any other int var, but never an `Assign` target —
    /// mutating one can defeat the loop bound and hang the kernel.
    loop_vars: Vec<Var>,
    /// Shared-memory array, if allocated: (element type, element count).
    shared: Option<(Ty, u32)>,
    /// Constant-bank array, if embedded: (element type, element count).
    const_arr: Option<(Ty, u32)>,
    const_data: Vec<u8>,
}

/// Block sizes ≤ 256 so every case fits the smallest `max_workgroup_size`
/// in the device catalogue; odd sizes exercise partial warps on every
/// warp width.
const BLOCKS: [u32; 7] = [1, 4, 32, 33, 64, 128, 256];
const BUF_LENS: [u32; 6] = [8, 16, 33, 64, 100, 256];
const IMM_F: [f64; 8] = [0.0, 0.5, 1.0, -1.5, 2.0, -2.25, 3.25, 0.125];

/// Generate the case for `seed`.
pub fn generate(seed: u64) -> FuzzCase {
    let mut rng = Rng::new(seed);
    let grid = rng.range(1, 5) as u32;
    let block = *rng.pick(&BLOCKS);

    let nbufs = rng.range(1, 4) as usize;
    let mut bufs = Vec::new();
    let mut roles = Vec::new();
    for i in 0..nbufs {
        let ty = *rng.pick(&[Ty::F32, Ty::S32, Ty::U32]);
        let len = *rng.pick(&BUF_LENS);
        bufs.push(BufferSpec {
            ty,
            len,
            init: seed ^ (0x5151_0000 + i as u64),
        });
        // Buffer 0 is always writable (the mandatory observable store);
        // the rest split between inputs, outputs and atomic accumulators.
        let role = if i == 0 {
            Role::Out
        } else if rng.chance(2, 5) {
            Role::In
        } else if ty != Ty::F32 && rng.chance(2, 5) {
            Role::Atomic(*rng.pick(&[AtomOp::Add, AtomOp::Min, AtomOp::Max]))
        } else {
            Role::Out
        };
        roles.push(role);
    }
    let nscalars = rng.range(0, 3) as usize;
    let mut scalars = Vec::new();
    for _ in 0..nscalars {
        if rng.chance(1, 2) {
            scalars.push(ScalarSpec::I32(rng.range(-8, 65) as i32));
        } else {
            scalars.push(ScalarSpec::F32(*rng.pick(&IMM_F) as f32 + 0.5));
        }
    }

    let mut g = Gen {
        rng,
        block,
        bufs,
        roles,
        scalars,
        // Placeholder; rebound to the real first var below.
        gid: Var { id: 0, ty: Ty::S32 },
        var_tys: Vec::new(),
        int_vars: Vec::new(),
        float_vars: Vec::new(),
        loop_vars: Vec::new(),
        shared: None,
        const_arr: None,
        const_data: Vec::new(),
    };

    // Optional shared scratchpad: one element per thread (race-free by
    // construction: each thread writes only its own slot).
    if g.block > 1 && g.rng.chance(1, 2) {
        let ty = *g.rng.pick(&[Ty::F32, Ty::S32]);
        g.shared = Some((ty, g.block));
    }
    // Optional constant-bank table.
    if g.rng.chance(1, 4) {
        let ty = *g.rng.pick(&[Ty::F32, Ty::S32]);
        let len = g.rng.range(4, 17) as u32;
        let mut data = Vec::new();
        for _ in 0..len {
            match ty {
                Ty::F32 => {
                    let v = ((g.rng.next_u64() % 256) as f32 - 128.0) / 16.0;
                    data.extend_from_slice(&v.to_le_bytes());
                }
                _ => {
                    let v = ((g.rng.next_u64() % 64) as i32) - 32;
                    data.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        g.const_arr = Some((ty, len));
        g.const_data = data;
    }

    let mut body = Vec::new();
    // Seed the scope with the global thread id: it guarantees a dynamic
    // int leaf exists from the start, and it is the injective per-thread
    // slot index that makes output stores conflict-free.
    let gid = g.fresh_var(Ty::S32);
    g.gid = gid;
    body.push(Stmt::Let(
        gid,
        Expr::Bin(
            Op2::Add,
            Box::new(Expr::Bin(
                Op2::Mul,
                Box::new(Expr::Special(Builtin::CtaidX)),
                Box::new(Expr::Special(Builtin::NtidX)),
            )),
            Box::new(Expr::Special(Builtin::TidX)),
        ),
    ));
    g.int_vars.push(gid);

    let n = g.rng.range(3, 10);
    for _ in 0..n {
        g.stmt(&mut body, 0, true);
    }
    // Make sure something observable happened: always end with an
    // own-slot store of a fresh expression to buffer 0.
    let st = g.own_slot_store(0);
    body.push(st);

    // Occasional deliberate out-of-bounds store (fault-equivalence case),
    // guarded to a single thread, indexed far past every allocation so it
    // faults hard outside memcheck and is recorded under memcheck.
    if g.rng.chance(1, 16) {
        let buf = 0usize;
        let ty = g.bufs[buf].ty;
        body.push(Stmt::If {
            cond: Expr::Cmp(CmpOp::Eq, Box::new(Expr::Var(gid)), Box::new(Expr::ImmI(0))),
            then_: vec![Stmt::Store {
                space: Space::Global,
                base: Expr::Param(buf as u32),
                index: Expr::ImmI(g.bufs[buf].len as i64 + 1_000_000),
                ty,
                value: match ty {
                    Ty::F32 => Expr::ImmF(1.0),
                    _ => Expr::ImmI(1),
                },
            }],
            else_: Vec::new(),
        });
    }

    let mut params: Vec<(String, Ty)> = g
        .bufs
        .iter()
        .enumerate()
        .map(|(i, _)| (format!("buf{i}"), Ty::U64))
        .collect();
    for (i, s) in g.scalars.iter().enumerate() {
        let ty = match s {
            ScalarSpec::I32(_) => Ty::S32,
            ScalarSpec::F32(_) => Ty::F32,
        };
        params.push((format!("scl{i}"), ty));
    }
    let shared_bytes = g.shared.map(|(ty, len)| len * ty.size_bytes()).unwrap_or(0);

    let def = KernelDef {
        name: format!("fuzz_{seed:016x}"),
        params,
        var_tys: g.var_tys.clone(),
        shared_bytes,
        const_data: g.const_data.clone(),
        body,
    };
    FuzzCase {
        name: format!("gen-{seed:016x}"),
        seed,
        grid,
        block: g.block,
        bufs: g.bufs.clone(),
        scalars: g.scalars.clone(),
        inst_budget: None,
        device_exempt: false,
        def,
    }
}

impl Gen {
    fn fresh_var(&mut self, ty: Ty) -> Var {
        self.var_tys.push(ty);
        Var {
            id: self.var_tys.len() as u32 - 1,
            ty,
        }
    }

    /// Parameter-slot index of the `i`-th scalar.
    fn scalar_slot(&self, i: usize) -> u32 {
        (self.bufs.len() + i) as u32
    }

    /// A dynamic (never constant-foldable) integer leaf.
    fn dyn_int_leaf(&mut self) -> Expr {
        if !self.int_vars.is_empty() && self.rng.chance(2, 3) {
            Expr::Var(*self.rng.pick(&self.int_vars))
        } else {
            let b = *self.rng.pick(&[
                Builtin::TidX,
                Builtin::CtaidX,
                Builtin::NtidX,
                Builtin::NctaidX,
            ]);
            Expr::Special(b)
        }
    }

    /// A dynamic float leaf.
    fn dyn_float_leaf(&mut self) -> Expr {
        if !self.float_vars.is_empty() && self.rng.chance(2, 3) {
            Expr::Var(*self.rng.pick(&self.float_vars))
        } else {
            let l = self.dyn_int_leaf();
            Expr::Cast(Ty::F32, Box::new(l))
        }
    }

    /// Keep a `Mul`-rooted expression out of a float `Add` operand slot:
    /// `a*b + c` is contracted to a one-rounding mad by the OpenCL
    /// front-end but kept as two-rounding mul+add by the CUDA one, so the
    /// shape is not differential-testable. (Basic folding never *creates*
    /// a `Mul` root, so enforcing this at generation time is enough.)
    fn defused(&mut self, e: Expr) -> Expr {
        if matches!(e, Expr::Bin(Op2::Mul, _, _)) {
            self.dyn_float_leaf()
        } else {
            e
        }
    }

    /// A guarded in-bounds element index for a table of `len` elements:
    /// `(e & 0x3fff) % len` — non-negative and `< len` for any `e`.
    fn guarded_index(&mut self, len: u32, depth: u32) -> Expr {
        let e = self.int_expr(depth + 1);
        Expr::Bin(
            Op2::Rem,
            Box::new(Expr::Bin(
                Op2::And,
                Box::new(e),
                Box::new(Expr::ImmI(0x3fff)),
            )),
            Box::new(Expr::ImmI(len as i64)),
        )
    }

    /// A guarded load from a random *read-only* source (an `In`-role
    /// global buffer or the constant table — never a written buffer or
    /// shared memory, whose cross-thread visibility is schedule-dependent
    /// outside the barrier-fenced pattern); `None` if no source of the
    /// wanted class exists.
    fn guarded_load(&mut self, want_float: bool, depth: u32) -> Option<Expr> {
        let mut sources: Vec<(Space, u32, Ty, u32)> = Vec::new(); // (space, base-slot/offset, ty, len)
        for (i, b) in self.bufs.iter().enumerate() {
            if self.roles[i] == Role::In && (b.ty == Ty::F32) == want_float {
                sources.push((Space::Global, i as u32, b.ty, b.len));
            }
        }
        if let Some((ty, len)) = self.const_arr {
            if (ty == Ty::F32) == want_float {
                sources.push((Space::Const, 0, ty, len));
            }
        }
        if sources.is_empty() {
            return None;
        }
        let (space, base, ty, len) = *self.rng.pick(&sources);
        let index = self.guarded_index(len, depth);
        let base = match space {
            Space::Global => Expr::Param(base),
            _ => Expr::ImmI(base as i64),
        };
        Some(Expr::Load {
            space,
            base: Box::new(base),
            index: Box::new(index),
            ty,
        })
    }

    /// A random integer-valued expression.
    fn int_expr(&mut self, depth: u32) -> Expr {
        if depth >= 4 || self.rng.chance(1, 3) {
            // Leaves.
            let mut choices = 3u64;
            let has_iscalar = self.scalars.iter().any(|s| matches!(s, ScalarSpec::I32(_)));
            if has_iscalar {
                choices += 1;
            }
            return match self.rng.below(choices) {
                0 => Expr::ImmI(self.rng.range(-16, 65)),
                1 | 2 => self.dyn_int_leaf(),
                _ => {
                    let idx = self
                        .scalars
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| matches!(s, ScalarSpec::I32(_)))
                        .map(|(i, _)| i)
                        .collect::<Vec<_>>();
                    let i = *self.rng.pick(&idx);
                    Expr::Param(self.scalar_slot(i))
                }
            };
        }
        match self.rng.below(10) {
            0..=3 => {
                let op =
                    *self
                        .rng
                        .pick(&[Op2::Add, Op2::Sub, Op2::Mul, Op2::And, Op2::Or, Op2::Xor]);
                let a = self.int_expr(depth + 1);
                let b = self.int_expr(depth + 1);
                Expr::Bin(op, Box::new(a), Box::new(b))
            }
            4 => {
                let op = *self.rng.pick(&[Op2::Min, Op2::Max]);
                let a = self.int_expr(depth + 1);
                let b = self.int_expr(depth + 1);
                Expr::Bin(op, Box::new(a), Box::new(b))
            }
            5 => {
                // Guarded division/remainder: denominator in 1..=16.
                let op = *self.rng.pick(&[Op2::Div, Op2::Rem]);
                let a = self.int_expr(depth + 1);
                let d = self.int_expr(depth + 1);
                let denom = Expr::Bin(
                    Op2::Add,
                    Box::new(Expr::Bin(Op2::And, Box::new(d), Box::new(Expr::ImmI(15)))),
                    Box::new(Expr::ImmI(1)),
                );
                Expr::Bin(op, Box::new(a), Box::new(denom))
            }
            6 => {
                // Guarded shift: amount in 0..=7.
                let op = *self.rng.pick(&[Op2::Shl, Op2::Shr]);
                let a = self.int_expr(depth + 1);
                let s = self.int_expr(depth + 1);
                let amount = Expr::Bin(Op2::And, Box::new(s), Box::new(Expr::ImmI(7)));
                Expr::Bin(op, Box::new(a), Box::new(amount))
            }
            7 => {
                let c = self.cmp_expr(depth + 1);
                let a = self.int_expr(depth + 1);
                let b = self.int_expr(depth + 1);
                Expr::Select(Box::new(c), Box::new(a), Box::new(b))
            }
            8 => self
                .guarded_load(false, depth)
                .unwrap_or_else(|| self.dyn_int_leaf()),
            _ => {
                // A comparison used as a 0/1 value.
                self.cmp_expr(depth + 1)
            }
        }
    }

    /// A random comparison (predicate-valued) expression.
    fn cmp_expr(&mut self, depth: u32) -> Expr {
        let op = *self.rng.pick(&[
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ]);
        let a = self.int_expr(depth + 1);
        let b = self.int_expr(depth + 1);
        Expr::Cmp(op, Box::new(a), Box::new(b))
    }

    /// A random float-valued expression.
    fn float_expr(&mut self, depth: u32) -> Expr {
        if depth >= 4 || self.rng.chance(1, 3) {
            let has_fscalar = self.scalars.iter().any(|s| matches!(s, ScalarSpec::F32(_)));
            let mut choices = 3u64;
            if has_fscalar {
                choices += 1;
            }
            return match self.rng.below(choices) {
                0 => Expr::ImmF(*self.rng.pick(&IMM_F)),
                1 | 2 => self.dyn_float_leaf(),
                _ => {
                    let idx = self
                        .scalars
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| matches!(s, ScalarSpec::F32(_)))
                        .map(|(i, _)| i)
                        .collect::<Vec<_>>();
                    let i = *self.rng.pick(&idx);
                    Expr::Param(self.scalar_slot(i))
                }
            };
        }
        match self.rng.below(10) {
            0..=2 => {
                let op = *self
                    .rng
                    .pick(&[Op2::Add, Op2::Sub, Op2::Min, Op2::Max, Op2::Div]);
                let mut a = self.float_expr(depth + 1);
                let mut b = self.float_expr(depth + 1);
                if op == Op2::Div && is_const(&b) {
                    // Keep division runtime-only: a folded 0/0 produces a
                    // differently-signed NaN than the hardware op.
                    b = Expr::Bin(Op2::Add, Box::new(self.dyn_float_leaf()), Box::new(b));
                }
                if op == Op2::Add {
                    a = self.defused(a);
                    b = self.defused(b);
                }
                Expr::Bin(op, Box::new(a), Box::new(b))
            }
            3 | 4 => {
                // Multiply with at least one dynamic operand (a const
                // product would fold away under one front-end only).
                let a = self.float_expr(depth + 1);
                let b = if is_const(&a) {
                    self.dyn_float_leaf()
                } else {
                    self.float_expr(depth + 1)
                };
                Expr::Bin(Op2::Mul, Box::new(a), Box::new(b))
            }
            5 => {
                // a*b - c: a product feeding non-fusing arithmetic. (The
                // a*b + c shape is off-limits for generated kernels: the
                // OpenCL front-end contracts it to one-rounding mad while
                // the CUDA front-end keeps mul+add, so the two results
                // legitimately differ in the last ulp.)
                let a = self.dyn_float_leaf();
                let b = self.float_expr(depth + 1);
                let c = self.float_expr(depth + 1);
                Expr::Bin(
                    Op2::Sub,
                    Box::new(Expr::Bin(Op2::Mul, Box::new(a), Box::new(b))),
                    Box::new(c),
                )
            }
            6 => {
                let op = *self.rng.pick(&[Op1::Neg, Op1::Abs]);
                let a = self.float_expr(depth + 1);
                Expr::Un(op, Box::new(a))
            }
            7 => {
                // sqrt(abs(dynamic + e)) — fold-safe and NaN-free.
                let d = self.dyn_float_leaf();
                let e = self.float_expr(depth + 1);
                let e = self.defused(e);
                Expr::Un(
                    Op1::Sqrt,
                    Box::new(Expr::Un(
                        Op1::Abs,
                        Box::new(Expr::Bin(Op2::Add, Box::new(d), Box::new(e))),
                    )),
                )
            }
            8 => {
                // Transcendental with a guaranteed-dynamic operand so it is
                // never constant-folded.
                let op = *self.rng.pick(&[Op1::Sin, Op1::Cos, Op1::Rcp, Op1::Rsqrt]);
                let d = self.dyn_float_leaf();
                let e = self.float_expr(depth + 1);
                let e = self.defused(e);
                Expr::Un(op, Box::new(Expr::Bin(Op2::Add, Box::new(d), Box::new(e))))
            }
            _ => {
                let c = self.cmp_expr(depth + 1);
                let a = self.float_expr(depth + 1);
                let b = self.float_expr(depth + 1);
                Expr::Select(Box::new(c), Box::new(a), Box::new(b))
            }
        }
    }

    /// A conflict-free output store: each thread writes only its own
    /// `global_id` slot (`if (gid < len) buf[gid] = value`). Injective
    /// across the grid, so the result is independent of warp scheduling —
    /// which differs legitimately across device models.
    fn own_slot_store(&mut self, buf: usize) -> Stmt {
        let ty = self.bufs[buf].ty;
        let len = self.bufs[buf].len;
        let value = match ty {
            Ty::F32 => self.float_expr(1),
            _ => self.int_expr(1),
        };
        let gid = self.gid;
        Stmt::If {
            cond: Expr::Cmp(
                CmpOp::Lt,
                Box::new(Expr::Var(gid)),
                Box::new(Expr::ImmI(len as i64)),
            ),
            then_: vec![Stmt::Store {
                space: Space::Global,
                base: Expr::Param(buf as u32),
                index: Expr::Var(gid),
                ty,
                value,
            }],
            else_: Vec::new(),
        }
    }

    /// Indices of buffers with the given role.
    fn buffers_with(&self, want: impl Fn(Role) -> bool) -> Vec<usize> {
        self.roles
            .iter()
            .enumerate()
            .filter(|(_, r)| want(**r))
            .map(|(i, _)| i)
            .collect()
    }

    /// Emit one statement into `out`. `allow_barrier` is true only where
    /// every thread of the block is guaranteed to execute the statement.
    fn stmt(&mut self, out: &mut Vec<Stmt>, depth: u32, allow_barrier: bool) {
        let roll = self.rng.below(100);
        match roll {
            // Let (int).
            0..=17 => {
                let e = self.int_expr(1);
                let v = self.fresh_var(Ty::S32);
                out.push(Stmt::Let(v, e));
                self.int_vars.push(v);
            }
            // Let (float).
            18..=35 => {
                let e = self.float_expr(1);
                let v = self.fresh_var(Ty::F32);
                out.push(Stmt::Let(v, e));
                self.float_vars.push(v);
            }
            // Reassign an existing variable. Two vars are off-limits:
            // `gid` (own-slot stores index by it, so mutating it would
            // reintroduce cross-thread write races) and any live loop
            // induction variable (mutating one can defeat the constant
            // bound and hang the kernel).
            36..=45 => {
                let pick_float = self.rng.chance(1, 2);
                if pick_float && !self.float_vars.is_empty() {
                    let v = *self.rng.pick(&self.float_vars);
                    let e = self.float_expr(1);
                    out.push(Stmt::Assign(v, e));
                } else {
                    let targets: Vec<Var> = self
                        .int_vars
                        .iter()
                        .copied()
                        .filter(|v| v.id != self.gid.id && !self.loop_vars.contains(v))
                        .collect();
                    if !targets.is_empty() {
                        let v = *self.rng.pick(&targets);
                        let e = self.int_expr(1);
                        out.push(Stmt::Assign(v, e));
                    }
                }
            }
            // Own-slot output store.
            46..=60 => {
                let outs = self.buffers_with(|r| r == Role::Out);
                let buf = *self.rng.pick(&outs); // buffer 0 is always Out
                let st = self.own_slot_store(buf);
                out.push(st);
            }
            // Shared-memory stage + (optional) barrier + readback.
            61..=70 => {
                if let Some((ty, len)) = self.shared {
                    // Each thread writes its own slot: race-free.
                    let value = match ty {
                        Ty::F32 => self.float_expr(1),
                        _ => self.int_expr(1),
                    };
                    out.push(Stmt::Store {
                        space: Space::Shared,
                        base: Expr::ImmI(0),
                        index: Expr::Bin(
                            Op2::Rem,
                            Box::new(Expr::Special(Builtin::TidX)),
                            Box::new(Expr::ImmI(len as i64)),
                        ),
                        ty,
                        value,
                    });
                    if allow_barrier {
                        out.push(Stmt::Barrier);
                        // Read a rotated neighbour's slot — only meaningful
                        // (and deterministic) after the barrier.
                        let shift = self.rng.range(1, len.max(2) as i64);
                        let load = Expr::Load {
                            space: Space::Shared,
                            base: Box::new(Expr::ImmI(0)),
                            index: Box::new(Expr::Bin(
                                Op2::Rem,
                                Box::new(Expr::Bin(
                                    Op2::Add,
                                    Box::new(Expr::Special(Builtin::TidX)),
                                    Box::new(Expr::ImmI(shift)),
                                )),
                                Box::new(Expr::ImmI(len as i64)),
                            )),
                            ty,
                        };
                        let v = self.fresh_var(ty);
                        out.push(Stmt::Let(v, load));
                        // Close the read epoch: later own-slot stores must
                        // not race with these cross-slot loads.
                        out.push(Stmt::Barrier);
                        if ty == Ty::F32 {
                            self.float_vars.push(v);
                        } else {
                            self.int_vars.push(v);
                        }
                    }
                }
            }
            // Structured if (barriers disallowed inside: divergent).
            71..=80 => {
                if depth >= 2 {
                    return self.stmt(out, depth, allow_barrier);
                }
                let cond = self.cmp_expr(1);
                let (then_, else_) = self.nested_bodies(depth);
                out.push(Stmt::If { cond, then_, else_ });
            }
            // Constant-bound for loop.
            81..=90 => {
                if depth >= 2 {
                    return self.stmt(out, depth, allow_barrier);
                }
                let var = self.fresh_var(Ty::S32);
                let (start, end, step) = if self.rng.chance(1, 4) {
                    // Downward loop.
                    let hi = self.rng.range(2, 9);
                    (hi, self.rng.range(0, hi), -1i64)
                } else {
                    let lo = self.rng.range(0, 3);
                    let step = if self.rng.chance(1, 4) { 2 } else { 1 };
                    (lo, lo + self.rng.range(1, 8), step)
                };
                let unroll = match self.rng.below(5) {
                    0 => Unroll::Full,
                    1 => Unroll::By(2),
                    _ => Unroll::None,
                };
                let int_mark = self.int_vars.len();
                let float_mark = self.float_vars.len();
                self.int_vars.push(var);
                self.loop_vars.push(var);
                let mut body = Vec::new();
                let n = self.rng.range(1, 4);
                // A constant-trip-count loop is uniform across the block,
                // so barriers inherited from the top level stay legal.
                for _ in 0..n {
                    self.stmt(&mut body, depth + 1, allow_barrier && depth == 0);
                }
                self.loop_vars.pop();
                self.int_vars.truncate(int_mark);
                self.float_vars.truncate(float_mark);
                out.push(Stmt::For {
                    var,
                    start: Expr::ImmI(start),
                    end: Expr::ImmI(end),
                    step,
                    unroll,
                    body,
                });
            }
            // Atomic RMW. Only on dedicated accumulator buffers, each with
            // one fixed commutative-associative op, and never capturing
            // the old value — so the final memory is execution-order
            // independent even across warp widths.
            91..=95 => {
                let accs = self.buffers_with(|r| matches!(r, Role::Atomic(_)));
                if !accs.is_empty() {
                    let buf = *self.rng.pick(&accs);
                    let Role::Atomic(op) = self.roles[buf] else {
                        unreachable!()
                    };
                    let ty = self.bufs[buf].ty;
                    let len = self.bufs[buf].len;
                    let index = self.guarded_index(len.min(8), 0);
                    let value = self.int_expr(1);
                    out.push(Stmt::AtomicRmw {
                        op,
                        space: Space::Global,
                        base: Expr::Param(buf as u32),
                        index,
                        ty,
                        value,
                        old: None,
                    });
                }
            }
            // Barrier (only where uniform).
            _ => {
                if allow_barrier {
                    out.push(Stmt::Barrier);
                }
            }
        }
    }

    /// Generate the two bodies of an `if` in fresh variable scopes.
    fn nested_bodies(&mut self, depth: u32) -> (Vec<Stmt>, Vec<Stmt>) {
        let int_mark = self.int_vars.len();
        let float_mark = self.float_vars.len();
        let mut then_ = Vec::new();
        let n = self.rng.range(1, 4);
        for _ in 0..n {
            self.stmt(&mut then_, depth + 1, false);
        }
        self.int_vars.truncate(int_mark);
        self.float_vars.truncate(float_mark);
        let mut else_ = Vec::new();
        if self.rng.chance(1, 2) {
            let n = self.rng.range(1, 3);
            for _ in 0..n {
                self.stmt(&mut else_, depth + 1, false);
            }
            self.int_vars.truncate(int_mark);
            self.float_vars.truncate(float_mark);
        }
        (then_, else_)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 8, 0xdead_beef] {
            assert_eq!(generate(seed), generate(seed));
        }
    }

    #[test]
    fn generated_cases_are_well_formed() {
        for i in 0..50 {
            let case = generate(crate::rng::case_seed(12345, i));
            assert!(!case.bufs.is_empty());
            assert!(case.block >= 1 && case.block <= 256);
            assert!(case.grid >= 1);
            assert!(case.stmt_count() >= 2);
            assert_eq!(case.def.params.len(), case.bufs.len() + case.scalars.len());
            // The generator never emits warp builtins — portability is
            // decided by the budget only.
            assert!(case.device_portable());
        }
    }
}
