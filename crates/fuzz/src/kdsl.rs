//! `.kdsl` — the replayable corpus format.
//!
//! An s-expression text form of a [`FuzzCase`]: the launch geometry, the
//! buffer/scalar parameters, and the full kernel AST. Every reduced
//! reproducer and every hand-written regression case is checked in as a
//! `.kdsl` file under `crates/fuzz/corpus/` and replayed by the
//! `corpus_replay` test and `fuzz --replay <file>`.
//!
//! Grammar (`;` starts a comment to end of line):
//!
//! ```text
//! (case
//!   (name "string") (seed N) (grid N) (block N)
//!   (buf TY LEN SEED)*            ; pointer params, slot order
//!   (scalar-i32 N | scalar-f32 F)*  ; scalar params, slot order
//!   (inst-budget N)?              ; watchdog override
//!   (device-exempt)?              ; skip the device-comparison axis
//!   (kernel "name"
//!     (vars TY*) (shared-bytes N) (const-data HEXBYTES)?
//!     (body STMT*)))
//!
//! STMT := (let ID E) | (assign ID E)
//!       | (store SPACE E E TY E)            ; base index ty value
//!       | (if E (STMT*) (STMT*))
//!       | (for ID E E STEP UNROLL (STMT*))  ; var start end step unroll
//!       | (while E (STMT*)) | (barrier)
//!       | (atomic AOP SPACE E E TY E OLD)   ; base index ty value old|none
//! E    := (i N) | (f F) | (var ID) | (param N) | (sp BUILTIN)
//!       | (un OP1 E) | (bin OP2 E E) | (cmp COP E E) | (sel E E E)
//!       | (cast TY E) | (ld SPACE E E TY) | (tex SLOT E TY)
//! ```
//!
//! Floats are written as `#<hex>` — the exact IEEE bit pattern (f64 bits
//! for `(f ...)` immediates, f32 bits for `scalar-f32`) — so a minimized
//! reproducer replays bit-identically. Hand-written files may use plain
//! decimal instead; the parser accepts both.

use crate::gen::{BufferSpec, FuzzCase, ScalarSpec};
use gpucmp_compiler::ast::{Builtin, Expr, KernelDef, Stmt, Unroll, Var};
use gpucmp_ptx::{AtomOp, CmpOp, Op1, Op2, Space, Ty};
use std::fmt::Write as _;

// ----------------------------------------------------------------------
// Writer
// ----------------------------------------------------------------------

/// Serialize a case to `.kdsl` text.
pub fn write_case(case: &FuzzCase) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "; minimized reproducer — replay with:");
    let _ = writeln!(
        s,
        ";   cargo run --release -p gpucmp-fuzz --bin fuzz -- --replay <this file>"
    );
    let _ = writeln!(s, "(case");
    let _ = writeln!(s, "  (name \"{}\")", case.name);
    let _ = writeln!(s, "  (seed {})", case.seed);
    let _ = writeln!(s, "  (grid {})", case.grid);
    let _ = writeln!(s, "  (block {})", case.block);
    for b in &case.bufs {
        let _ = writeln!(s, "  (buf {} {} {})", ty_name(b.ty), b.len, b.init);
    }
    for sc in &case.scalars {
        match sc {
            ScalarSpec::I32(v) => {
                let _ = writeln!(s, "  (scalar-i32 {v})");
            }
            ScalarSpec::F32(v) => {
                let _ = writeln!(s, "  (scalar-f32 #{:08x})", v.to_bits());
            }
        }
    }
    if let Some(b) = case.inst_budget {
        let _ = writeln!(s, "  (inst-budget {b})");
    }
    if case.device_exempt {
        let _ = writeln!(s, "  (device-exempt)");
    }
    let _ = writeln!(s, "  (kernel \"{}\"", case.def.name);
    let mut vars = String::new();
    for ty in &case.def.var_tys {
        let _ = write!(vars, " {}", ty_name(*ty));
    }
    let _ = writeln!(s, "    (vars{vars})");
    let _ = writeln!(s, "    (shared-bytes {})", case.def.shared_bytes);
    if !case.def.const_data.is_empty() {
        let hex: String = case
            .def
            .const_data
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect();
        let _ = writeln!(s, "    (const-data {hex})");
    }
    let _ = writeln!(s, "    (body");
    for st in &case.def.body {
        write_stmt(&mut s, st, 6);
    }
    let _ = writeln!(s, "    )))");
    s
}

fn indent(s: &mut String, n: usize) {
    for _ in 0..n {
        s.push(' ');
    }
}

fn write_body(s: &mut String, body: &[Stmt], ind: usize) {
    if body.is_empty() {
        s.push_str("()");
        return;
    }
    s.push_str("(\n");
    for st in body {
        write_stmt(s, st, ind + 2);
    }
    indent(s, ind);
    s.push(')');
}

fn write_stmt(s: &mut String, st: &Stmt, ind: usize) {
    indent(s, ind);
    match st {
        Stmt::Let(v, e) => {
            let _ = write!(s, "(let {} {})", v.id, expr(e));
        }
        Stmt::Assign(v, e) => {
            let _ = write!(s, "(assign {} {})", v.id, expr(e));
        }
        Stmt::Store {
            space,
            base,
            index,
            ty,
            value,
        } => {
            let _ = write!(
                s,
                "(store {} {} {} {} {})",
                space.suffix(),
                expr(base),
                expr(index),
                ty_name(*ty),
                expr(value)
            );
        }
        Stmt::If { cond, then_, else_ } => {
            let _ = write!(s, "(if {} ", expr(cond));
            write_body(s, then_, ind);
            s.push(' ');
            write_body(s, else_, ind);
            s.push(')');
        }
        Stmt::For {
            var,
            start,
            end,
            step,
            unroll,
            body,
        } => {
            let u = match unroll {
                Unroll::None => "none".to_string(),
                Unroll::Full => "full".to_string(),
                Unroll::By(n) => n.to_string(),
            };
            let _ = write!(
                s,
                "(for {} {} {} {} {} ",
                var.id,
                expr(start),
                expr(end),
                step,
                u
            );
            write_body(s, body, ind);
            s.push(')');
        }
        Stmt::While { cond, body } => {
            let _ = write!(s, "(while {} ", expr(cond));
            write_body(s, body, ind);
            s.push(')');
        }
        Stmt::Barrier => s.push_str("(barrier)"),
        Stmt::AtomicRmw {
            op,
            space,
            base,
            index,
            ty,
            value,
            old,
        } => {
            let o = match old {
                Some(v) => v.id.to_string(),
                None => "none".to_string(),
            };
            let _ = write!(
                s,
                "(atomic {} {} {} {} {} {} {})",
                op.mnemonic(),
                space.suffix(),
                expr(base),
                expr(index),
                ty_name(*ty),
                expr(value),
                o
            );
        }
    }
    s.push('\n');
}

fn expr(e: &Expr) -> String {
    match e {
        Expr::ImmI(v) => format!("(i {v})"),
        Expr::ImmF(v) => format!("(f #{:016x})", v.to_bits()),
        Expr::Var(v) => format!("(var {})", v.id),
        Expr::Param(p) => format!("(param {p})"),
        Expr::Special(b) => format!("(sp {})", builtin_name(*b)),
        Expr::Un(op, a) => format!("(un {} {})", op.mnemonic(), expr(a)),
        Expr::Bin(op, a, b) => format!("(bin {} {} {})", op.mnemonic(), expr(a), expr(b)),
        Expr::Cmp(op, a, b) => format!("(cmp {} {} {})", op.mnemonic(), expr(a), expr(b)),
        Expr::Select(c, a, b) => format!("(sel {} {} {})", expr(c), expr(a), expr(b)),
        Expr::Cast(ty, a) => format!("(cast {} {})", ty_name(*ty), expr(a)),
        Expr::Load {
            space,
            base,
            index,
            ty,
        } => format!(
            "(ld {} {} {} {})",
            space.suffix(),
            expr(base),
            expr(index),
            ty_name(*ty)
        ),
        Expr::TexFetch { slot, index, ty } => {
            format!("(tex {} {} {})", slot, expr(index), ty_name(*ty))
        }
    }
}

fn ty_name(ty: Ty) -> &'static str {
    ty.suffix()
}

fn builtin_name(b: Builtin) -> &'static str {
    match b {
        Builtin::TidX => "tid-x",
        Builtin::TidY => "tid-y",
        Builtin::TidZ => "tid-z",
        Builtin::NtidX => "ntid-x",
        Builtin::NtidY => "ntid-y",
        Builtin::NtidZ => "ntid-z",
        Builtin::CtaidX => "ctaid-x",
        Builtin::CtaidY => "ctaid-y",
        Builtin::CtaidZ => "ctaid-z",
        Builtin::NctaidX => "nctaid-x",
        Builtin::NctaidY => "nctaid-y",
        Builtin::LaneId => "lane-id",
        Builtin::WarpId => "warp-id",
        Builtin::WarpSize => "warp-size",
    }
}

// ----------------------------------------------------------------------
// Parser
// ----------------------------------------------------------------------

/// A parsed s-expression node.
#[derive(Clone, Debug, PartialEq)]
enum Sexp {
    /// Bare atom (symbol, number, `#hex`).
    Atom(String),
    /// Quoted string.
    Str(String),
    /// Parenthesised list.
    List(Vec<Sexp>),
}

fn tokenize(src: &str) -> Result<Vec<String>, String> {
    let mut toks = Vec::new();
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ';' => {
                for c in chars.by_ref() {
                    if c == '\n' {
                        break;
                    }
                }
            }
            '(' | ')' => {
                toks.push(c.to_string());
                chars.next();
            }
            '"' => {
                chars.next();
                let mut s = String::from("\"");
                let mut closed = false;
                for c in chars.by_ref() {
                    if c == '"' {
                        closed = true;
                        break;
                    }
                    s.push(c);
                }
                if !closed {
                    return Err("unterminated string".into());
                }
                toks.push(s);
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            _ => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_whitespace() || c == '(' || c == ')' || c == ';' || c == '"' {
                        break;
                    }
                    s.push(c);
                    chars.next();
                }
                toks.push(s);
            }
        }
    }
    Ok(toks)
}

fn parse_sexp(toks: &[String], pos: &mut usize) -> Result<Sexp, String> {
    let t = toks.get(*pos).ok_or("unexpected end of input")?;
    *pos += 1;
    match t.as_str() {
        "(" => {
            let mut items = Vec::new();
            loop {
                match toks.get(*pos).map(String::as_str) {
                    Some(")") => {
                        *pos += 1;
                        return Ok(Sexp::List(items));
                    }
                    Some(_) => items.push(parse_sexp(toks, pos)?),
                    None => return Err("unclosed list".into()),
                }
            }
        }
        ")" => Err("unexpected ')'".into()),
        s if s.starts_with('"') => Ok(Sexp::Str(s[1..].to_string())),
        _ => Ok(Sexp::Atom(t.clone())),
    }
}

impl Sexp {
    fn list(&self) -> Result<&[Sexp], String> {
        match self {
            Sexp::List(items) => Ok(items),
            _ => Err(format!("expected list, got {self:?}")),
        }
    }

    fn atom(&self) -> Result<&str, String> {
        match self {
            Sexp::Atom(s) => Ok(s),
            _ => Err(format!("expected atom, got {self:?}")),
        }
    }

    fn string(&self) -> Result<&str, String> {
        match self {
            Sexp::Str(s) => Ok(s),
            _ => Err(format!("expected string, got {self:?}")),
        }
    }

    /// Head symbol of a list form.
    fn head(&self) -> Result<&str, String> {
        self.list()?.first().ok_or("empty form".to_string())?.atom()
    }

    fn int(&self) -> Result<i64, String> {
        self.atom()?
            .parse::<i64>()
            .map_err(|e| format!("bad integer {:?}: {e}", self))
    }

    fn uint(&self) -> Result<u64, String> {
        self.atom()?
            .parse::<u64>()
            .map_err(|e| format!("bad unsigned {:?}: {e}", self))
    }

    /// f64: `#<hex-bits>` (exact) or plain decimal.
    fn float64(&self) -> Result<f64, String> {
        let s = self.atom()?;
        if let Some(hex) = s.strip_prefix('#') {
            let bits = u64::from_str_radix(hex, 16).map_err(|e| format!("bad f64 bits: {e}"))?;
            Ok(f64::from_bits(bits))
        } else {
            s.parse::<f64>()
                .map_err(|e| format!("bad float {s:?}: {e}"))
        }
    }

    /// f32: `#<hex-bits>` (exact, never widened — an f32→f64→f32 round
    /// trip would quieten signalling NaNs) or plain decimal.
    fn float32(&self) -> Result<f32, String> {
        let s = self.atom()?;
        if let Some(hex) = s.strip_prefix('#') {
            let bits = u32::from_str_radix(hex, 16).map_err(|e| format!("bad f32 bits: {e}"))?;
            Ok(f32::from_bits(bits))
        } else {
            s.parse::<f32>()
                .map_err(|e| format!("bad float {s:?}: {e}"))
        }
    }
}

fn parse_ty(s: &Sexp) -> Result<Ty, String> {
    Ok(match s.atom()? {
        "pred" => Ty::Pred,
        "b8" => Ty::B8,
        "b16" => Ty::B16,
        "b32" => Ty::B32,
        "b64" => Ty::B64,
        "s32" => Ty::S32,
        "s64" => Ty::S64,
        "u32" => Ty::U32,
        "u64" => Ty::U64,
        "f32" => Ty::F32,
        "f64" => Ty::F64,
        other => return Err(format!("unknown type {other:?}")),
    })
}

fn parse_space(s: &Sexp) -> Result<Space, String> {
    Ok(match s.atom()? {
        "global" => Space::Global,
        "shared" => Space::Shared,
        "local" => Space::Local,
        "const" => Space::Const,
        "param" => Space::Param,
        other => return Err(format!("unknown space {other:?}")),
    })
}

fn parse_builtin(s: &Sexp) -> Result<Builtin, String> {
    Ok(match s.atom()? {
        "tid-x" => Builtin::TidX,
        "tid-y" => Builtin::TidY,
        "tid-z" => Builtin::TidZ,
        "ntid-x" => Builtin::NtidX,
        "ntid-y" => Builtin::NtidY,
        "ntid-z" => Builtin::NtidZ,
        "ctaid-x" => Builtin::CtaidX,
        "ctaid-y" => Builtin::CtaidY,
        "ctaid-z" => Builtin::CtaidZ,
        "nctaid-x" => Builtin::NctaidX,
        "nctaid-y" => Builtin::NctaidY,
        "lane-id" => Builtin::LaneId,
        "warp-id" => Builtin::WarpId,
        "warp-size" => Builtin::WarpSize,
        other => return Err(format!("unknown builtin {other:?}")),
    })
}

fn parse_op1(s: &Sexp) -> Result<Op1, String> {
    Ok(match s.atom()? {
        "neg" => Op1::Neg,
        "abs" => Op1::Abs,
        "not" => Op1::Not,
        "sqrt" => Op1::Sqrt,
        "rsqrt" => Op1::Rsqrt,
        "rcp" => Op1::Rcp,
        "sin" => Op1::Sin,
        "cos" => Op1::Cos,
        "ex2" => Op1::Ex2,
        "lg2" => Op1::Lg2,
        other => return Err(format!("unknown unary op {other:?}")),
    })
}

fn parse_op2(s: &Sexp) -> Result<Op2, String> {
    Ok(match s.atom()? {
        "add" => Op2::Add,
        "sub" => Op2::Sub,
        "mul" => Op2::Mul,
        "div" => Op2::Div,
        "rem" => Op2::Rem,
        "min" => Op2::Min,
        "max" => Op2::Max,
        "and" => Op2::And,
        "or" => Op2::Or,
        "xor" => Op2::Xor,
        "shl" => Op2::Shl,
        "shr" => Op2::Shr,
        other => return Err(format!("unknown binary op {other:?}")),
    })
}

fn parse_cmp_op(s: &Sexp) -> Result<CmpOp, String> {
    Ok(match s.atom()? {
        "eq" => CmpOp::Eq,
        "ne" => CmpOp::Ne,
        "lt" => CmpOp::Lt,
        "le" => CmpOp::Le,
        "gt" => CmpOp::Gt,
        "ge" => CmpOp::Ge,
        other => return Err(format!("unknown comparison {other:?}")),
    })
}

fn parse_atom_op(s: &Sexp) -> Result<AtomOp, String> {
    Ok(match s.atom()? {
        "add" => AtomOp::Add,
        "min" => AtomOp::Min,
        "max" => AtomOp::Max,
        "exch" => AtomOp::Exch,
        "cas" => AtomOp::Cas,
        other => return Err(format!("unknown atomic op {other:?}")),
    })
}

/// Parser context: the variable table, so `(var ID)` and `(let ID ...)`
/// resolve to a typed [`Var`].
struct Ctx {
    var_tys: Vec<Ty>,
}

impl Ctx {
    fn var(&self, s: &Sexp) -> Result<Var, String> {
        let id = s.uint()? as u32;
        let ty = *self
            .var_tys
            .get(id as usize)
            .ok_or_else(|| format!("variable {id} not in vars table"))?;
        Ok(Var { id, ty })
    }

    fn expr(&self, s: &Sexp) -> Result<Expr, String> {
        let items = s.list()?;
        let head = s.head()?;
        let need = |n: usize| -> Result<(), String> {
            if items.len() != n + 1 {
                Err(format!(
                    "({head} ...) expects {n} operands, got {}",
                    items.len() - 1
                ))
            } else {
                Ok(())
            }
        };
        Ok(match head {
            "i" => {
                need(1)?;
                Expr::ImmI(items[1].int()?)
            }
            "f" => {
                need(1)?;
                Expr::ImmF(items[1].float64()?)
            }
            "var" => {
                need(1)?;
                Expr::Var(self.var(&items[1])?)
            }
            "param" => {
                need(1)?;
                Expr::Param(items[1].uint()? as u32)
            }
            "sp" => {
                need(1)?;
                Expr::Special(parse_builtin(&items[1])?)
            }
            "un" => {
                need(2)?;
                Expr::Un(parse_op1(&items[1])?, Box::new(self.expr(&items[2])?))
            }
            "bin" => {
                need(3)?;
                Expr::Bin(
                    parse_op2(&items[1])?,
                    Box::new(self.expr(&items[2])?),
                    Box::new(self.expr(&items[3])?),
                )
            }
            "cmp" => {
                need(3)?;
                Expr::Cmp(
                    parse_cmp_op(&items[1])?,
                    Box::new(self.expr(&items[2])?),
                    Box::new(self.expr(&items[3])?),
                )
            }
            "sel" => {
                need(3)?;
                Expr::Select(
                    Box::new(self.expr(&items[1])?),
                    Box::new(self.expr(&items[2])?),
                    Box::new(self.expr(&items[3])?),
                )
            }
            "cast" => {
                need(2)?;
                Expr::Cast(parse_ty(&items[1])?, Box::new(self.expr(&items[2])?))
            }
            "ld" => {
                need(4)?;
                Expr::Load {
                    space: parse_space(&items[1])?,
                    base: Box::new(self.expr(&items[2])?),
                    index: Box::new(self.expr(&items[3])?),
                    ty: parse_ty(&items[4])?,
                }
            }
            "tex" => {
                need(3)?;
                Expr::TexFetch {
                    slot: items[1].uint()? as u8,
                    index: Box::new(self.expr(&items[2])?),
                    ty: parse_ty(&items[3])?,
                }
            }
            other => return Err(format!("unknown expression form {other:?}")),
        })
    }

    fn body(&self, s: &Sexp) -> Result<Vec<Stmt>, String> {
        s.list()?.iter().map(|st| self.stmt(st)).collect()
    }

    fn stmt(&self, s: &Sexp) -> Result<Stmt, String> {
        let items = s.list()?;
        let head = s.head()?;
        let arity = match head {
            "let" | "assign" | "while" => 2,
            "store" => 5,
            "if" => 3,
            "for" => 6,
            "barrier" => 0,
            "atomic" => 7,
            other => return Err(format!("unknown statement form {other:?}")),
        };
        if items.len() != arity + 1 {
            return Err(format!(
                "({head} ...) expects {arity} operands, got {}",
                items.len() - 1
            ));
        }
        Ok(match head {
            "let" => Stmt::Let(self.var(&items[1])?, self.expr(&items[2])?),
            "assign" => Stmt::Assign(self.var(&items[1])?, self.expr(&items[2])?),
            "store" => Stmt::Store {
                space: parse_space(&items[1])?,
                base: self.expr(&items[2])?,
                index: self.expr(&items[3])?,
                ty: parse_ty(&items[4])?,
                value: self.expr(&items[5])?,
            },
            "if" => Stmt::If {
                cond: self.expr(&items[1])?,
                then_: self.body(&items[2])?,
                else_: self.body(&items[3])?,
            },
            "for" => Stmt::For {
                var: self.var(&items[1])?,
                start: self.expr(&items[2])?,
                end: self.expr(&items[3])?,
                step: items[4].int()?,
                unroll: match items[5].atom()? {
                    "none" => Unroll::None,
                    "full" => Unroll::Full,
                    n => Unroll::By(
                        n.parse::<u32>()
                            .map_err(|e| format!("bad unroll factor {n:?}: {e}"))?,
                    ),
                },
                body: self.body(&items[6])?,
            },
            "while" => Stmt::While {
                cond: self.expr(&items[1])?,
                body: self.body(&items[2])?,
            },
            "barrier" => Stmt::Barrier,
            "atomic" => Stmt::AtomicRmw {
                op: parse_atom_op(&items[1])?,
                space: parse_space(&items[2])?,
                base: self.expr(&items[3])?,
                index: self.expr(&items[4])?,
                ty: parse_ty(&items[5])?,
                value: self.expr(&items[6])?,
                old: match items[7].atom()? {
                    "none" => None,
                    _ => Some(self.var(&items[7])?),
                },
            },
            _ => unreachable!("arity table covers every head"),
        })
    }
}

/// Parse `.kdsl` text into a [`FuzzCase`].
pub fn parse_case(src: &str) -> Result<FuzzCase, String> {
    let toks = tokenize(src)?;
    let mut pos = 0;
    let top = parse_sexp(&toks, &mut pos)?;
    if pos != toks.len() {
        return Err("trailing tokens after (case ...)".into());
    }
    let items = top.list()?;
    if top.head()? != "case" {
        return Err("top-level form must be (case ...)".into());
    }

    let mut name = None;
    let mut seed = 0u64;
    let mut grid = None;
    let mut block = None;
    let mut bufs = Vec::new();
    let mut scalars = Vec::new();
    let mut inst_budget = None;
    let mut device_exempt = false;
    let mut kernel = None;

    for form in &items[1..] {
        let f = form.list()?;
        let head = form.head()?;
        if f.len() < 2 && !matches!(head, "device-exempt" | "kernel") {
            return Err(format!("({head} ...) needs an operand"));
        }
        match head {
            "name" => name = Some(f[1].string()?.to_string()),
            "seed" => seed = f[1].uint()?,
            "grid" => grid = Some(f[1].uint()? as u32),
            "block" => block = Some(f[1].uint()? as u32),
            "buf" => {
                if f.len() != 4 {
                    return Err("(buf TY LEN SEED) needs 3 operands".into());
                }
                bufs.push(BufferSpec {
                    ty: parse_ty(&f[1])?,
                    len: f[2].uint()? as u32,
                    init: f[3].uint()?,
                });
            }
            "scalar-i32" => scalars.push(ScalarSpec::I32(f[1].int()? as i32)),
            "scalar-f32" => scalars.push(ScalarSpec::F32(f[1].float32()?)),
            "inst-budget" => inst_budget = Some(f[1].uint()?),
            "device-exempt" => device_exempt = true,
            "kernel" => kernel = Some(parse_kernel(form)?),
            other => return Err(format!("unknown case field {other:?}")),
        }
    }

    let def = kernel.ok_or("missing (kernel ...)")?;
    Ok(FuzzCase {
        name: name.ok_or("missing (name ...)")?,
        seed,
        grid: grid.ok_or("missing (grid ...)")?,
        block: block.ok_or("missing (block ...)")?,
        bufs,
        scalars,
        inst_budget,
        device_exempt,
        def,
    })
}

fn parse_kernel(form: &Sexp) -> Result<KernelDef, String> {
    let items = form.list()?;
    let name = items
        .get(1)
        .ok_or("kernel needs a name")?
        .string()?
        .to_string();
    let mut var_tys = Vec::new();
    let mut shared_bytes = 0u32;
    let mut const_data = Vec::new();
    let mut body_form = None;
    for f in &items[2..] {
        let fl = f.list()?;
        let head = f.head()?;
        if fl.len() < 2 && matches!(head, "shared-bytes" | "const-data") {
            return Err(format!("({head} ...) needs an operand"));
        }
        match head {
            "vars" => {
                for t in &fl[1..] {
                    var_tys.push(parse_ty(t)?);
                }
            }
            "shared-bytes" => shared_bytes = fl[1].uint()? as u32,
            "const-data" => {
                let hex = fl[1].atom()?;
                if hex.len() % 2 != 0 {
                    return Err("const-data hex must have even length".into());
                }
                for i in (0..hex.len()).step_by(2) {
                    const_data.push(
                        u8::from_str_radix(&hex[i..i + 2], 16)
                            .map_err(|e| format!("bad const-data hex: {e}"))?,
                    );
                }
            }
            "body" => body_form = Some(f.clone()),
            other => return Err(format!("unknown kernel field {other:?}")),
        }
    }
    let ctx = Ctx {
        var_tys: var_tys.clone(),
    };
    let body_form = body_form.ok_or("missing (body ...)")?;
    let body = body_form.list()?[1..]
        .iter()
        .map(|st| ctx.stmt(st))
        .collect::<Result<Vec<_>, _>>()?;

    // Params are not serialized: they are fully derived from the buffer and
    // scalar lists, which the caller re-derives. Leave a placeholder here;
    // `parse_case` patches it below via `derive_params`.
    Ok(KernelDef {
        name,
        params: Vec::new(),
        var_tys,
        shared_bytes,
        const_data,
        body,
    })
}

/// Recompute the parameter list of a parsed case from its buffer/scalar
/// specs (pointers first, then scalars, matching the generator's layout).
pub fn derive_params(case: &mut FuzzCase) {
    let mut params: Vec<(String, Ty)> = case
        .bufs
        .iter()
        .enumerate()
        .map(|(i, _)| (format!("buf{i}"), Ty::U64))
        .collect();
    for (i, s) in case.scalars.iter().enumerate() {
        let ty = match s {
            ScalarSpec::I32(_) => Ty::S32,
            ScalarSpec::F32(_) => Ty::F32,
        };
        params.push((format!("scl{i}"), ty));
    }
    case.def.params = params;
}

/// Parse and finalize: `parse_case` + `derive_params`.
pub fn load_case(src: &str) -> Result<FuzzCase, String> {
    let mut case = parse_case(src)?;
    derive_params(&mut case);
    Ok(case)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use crate::rng::case_seed;

    #[test]
    fn round_trip_generated_cases() {
        for i in 0..25 {
            let case = generate(case_seed(77, i));
            let text = write_case(&case);
            let back = load_case(&text).unwrap_or_else(|e| panic!("case {i}: {e}\n{text}"));
            assert_eq!(case, back, "round-trip mismatch for case {i}");
        }
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        let mut case = generate(case_seed(3, 0));
        case.scalars = vec![ScalarSpec::F32(f32::from_bits(0x7f80_0001))]; // sNaN
        case.def.body.insert(
            0,
            Stmt::Let(
                Var {
                    id: case.def.var_tys.len() as u32,
                    ty: Ty::F32,
                },
                Expr::ImmF(f64::from_bits(0x7ff0_dead_beef_0001)),
            ),
        );
        case.def.var_tys.push(Ty::F32);
        derive_params(&mut case);
        let text = write_case(&case);
        let back = load_case(&text).unwrap();
        // Struct equality would reject NaN == NaN, so compare the bit
        // patterns directly and then the re-serialized text (which is
        // bit-exact by construction).
        match (&case.scalars[0], &back.scalars[0]) {
            (ScalarSpec::F32(a), ScalarSpec::F32(b)) => assert_eq!(a.to_bits(), b.to_bits()),
            other => panic!("scalar shape changed: {other:?}"),
        }
        match (&case.def.body[0], &back.def.body[0]) {
            (Stmt::Let(_, Expr::ImmF(a)), Stmt::Let(_, Expr::ImmF(b))) => {
                assert_eq!(a.to_bits(), b.to_bits())
            }
            other => panic!("stmt shape changed: {other:?}"),
        }
        assert_eq!(write_case(&back), text);
    }

    #[test]
    fn comments_and_decimal_floats_parse() {
        let src = r#"
; a hand-written case
(case
  (name "mini") (seed 0) (grid 1) (block 4)
  (buf f32 8 1)
  (scalar-f32 1.5)
  (kernel "mini"
    (vars s32)
    (shared-bytes 0)
    (body
      (let 0 (sp tid-x))
      (store global (param 0) (var 0) f32 (f 2.5)))))
"#;
        let case = load_case(src).unwrap();
        assert_eq!(case.block, 4);
        assert_eq!(case.scalars, vec![ScalarSpec::F32(1.5)]);
        assert_eq!(case.def.body.len(), 2);
        assert_eq!(case.def.params.len(), 2);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(load_case("(case (name \"x\"))").is_err());
        assert!(load_case("(case (bogus 1))").is_err());
        assert!(load_case("(case").is_err());
    }
}
