//! Seeded deterministic randomness for the generator and case derivation.
//!
//! SplitMix64: tiny, fast, and good enough for fuzzing. Using our own
//! generator (rather than a `rand` RNG) pins the byte-exact case stream to
//! the seed forever — a corpus file's `(seed N)` must regenerate the same
//! kernel on every toolchain and every future version of this crate's
//! dependencies.

/// A SplitMix64 stream.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        self.next_u64() % n
    }

    /// Uniform value in `lo..hi` (exclusive upper bound; `lo` if empty).
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        if hi <= lo {
            return lo;
        }
        lo + self.below((hi - lo) as u64) as i64
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Uniformly pick an element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

/// Derive the per-case seed for case `index` of a campaign seeded with
/// `seed` (one SplitMix64 mixing step, so neighbouring cases share no
/// low-bit structure).
pub fn case_seed(seed: u64, index: u64) -> u64 {
    let mut r = Rng::new(seed ^ index.wrapping_mul(0xA076_1D64_78BD_642F));
    r.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn case_seeds_are_distinct() {
        let s: Vec<u64> = (0..64).map(|i| case_seed(8, i)).collect();
        let mut uniq = s.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), s.len());
    }
}
