//! Campaign driver: generate → check → (on divergence) reduce → write the
//! reproducer, plus single-file replay for `--replay` and the
//! `corpus_replay` test.

use crate::gen::{generate, FuzzCase};
use crate::kdsl;
use crate::oracle::{Divergence, Oracle};
use crate::reduce::reduce;
use crate::rng::case_seed;
use std::path::{Path, PathBuf};

/// Result of a campaign.
#[derive(Clone, Debug)]
pub enum CampaignOutcome {
    /// All cases agreed on every axis.
    Clean {
        /// Number of cases run.
        cases: u64,
    },
    /// A case diverged; it was minimized and (when `out_dir` was given)
    /// written to disk.
    Diverged {
        /// Index of the failing case within the campaign.
        index: u64,
        /// The per-case seed (regenerates the unreduced kernel).
        case_seed: u64,
        /// The minimized reproducer (boxed: it dwarfs the other variants).
        minimized: Box<FuzzCase>,
        /// The divergence it reproduces.
        divergence: Divergence,
        /// Where the `.kdsl` reproducer was written, if anywhere.
        written: Option<PathBuf>,
    },
    /// A case broke the harness itself (compile/setup error): a generator
    /// bug, reported with its seed so it is reproducible too.
    Broken {
        /// Index of the failing case.
        index: u64,
        /// The per-case seed.
        case_seed: u64,
        /// The harness error.
        error: String,
    },
}

/// Run `cases` generated cases derived from `seed`. On the first
/// divergence, minimize and (if `out_dir` is set) write the reproducer as
/// `repro-<case_seed>.kdsl`. `progress` is called every few hundred cases
/// with (done, total).
pub fn campaign(
    oracle: &Oracle,
    seed: u64,
    cases: u64,
    out_dir: Option<&Path>,
    mut progress: impl FnMut(u64, u64),
) -> CampaignOutcome {
    for i in 0..cases {
        if i % 250 == 0 {
            progress(i, cases);
        }
        let cs = case_seed(seed, i);
        let case = generate(cs);
        match oracle.check(&case) {
            Ok(None) => {}
            Ok(Some(d)) => {
                let red = reduce(oracle, &case, &d);
                let written = out_dir.map(|dir| {
                    let path = dir.join(format!("repro-{cs:016x}.kdsl"));
                    let text = kdsl::write_case(&red.case);
                    // Best-effort: failing to persist must not mask the
                    // divergence itself.
                    let _ = std::fs::create_dir_all(dir);
                    let _ = std::fs::write(&path, text);
                    path
                });
                return CampaignOutcome::Diverged {
                    index: i,
                    case_seed: cs,
                    minimized: Box::new(red.case),
                    divergence: red.divergence,
                    written,
                };
            }
            Err(e) => {
                return CampaignOutcome::Broken {
                    index: i,
                    case_seed: cs,
                    error: e,
                };
            }
        }
    }
    progress(cases, cases);
    CampaignOutcome::Clean { cases }
}

/// Replay one `.kdsl` file through the full oracle. `Ok(None)` = clean.
pub fn replay_file(oracle: &Oracle, path: &Path) -> Result<Option<Divergence>, String> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let case = kdsl::load_case(&src).map_err(|e| format!("{}: {e}", path.display()))?;
    oracle.check(&case)
}

/// All `.kdsl` files under a directory, sorted for stable ordering.
pub fn corpus_files(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "kdsl"))
        .collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::MutateMode;

    #[test]
    fn small_campaign_is_clean() {
        let outcome = campaign(&Oracle::new(), 8, 4, None, |_, _| {});
        assert!(matches!(outcome, CampaignOutcome::Clean { cases: 4 }));
    }

    #[test]
    fn mutated_campaign_diverges_and_writes_repro() {
        let dir = std::env::temp_dir().join(format!("gpucmp-fuzz-test-{}", std::process::id()));
        let oracle = Oracle::with_mutation(MutateMode::TierXor);
        let outcome = campaign(&oracle, 8, 4, Some(&dir), |_, _| {});
        match outcome {
            CampaignOutcome::Diverged {
                divergence,
                written,
                minimized,
                ..
            } => {
                assert_eq!(divergence.axis, "tier:cuda/fused/8t");
                let path = written.expect("repro written");
                // The written reproducer replays to the same axis.
                let replayed = replay_file(&oracle, &path)
                    .expect("replay runs")
                    .expect("replay diverges");
                assert_eq!(replayed.axis, divergence.axis);
                assert!(minimized.stmt_count() <= 10);
                let _ = std::fs::remove_dir_all(&dir);
            }
            other => panic!("expected divergence, got {other:?}"),
        }
    }
}
