//! Regenerates the paper's Fig. 1 (peak device-memory bandwidth) and
//! times one DeviceMemory run.

use criterion::{criterion_group, criterion_main, Criterion};
use gpucmp_benchmarks::devicemem::DeviceMemory;
use gpucmp_benchmarks::Scale;
use gpucmp_core::experiments::fig1_peak_bandwidth;
use gpucmp_sim::DeviceSpec;

fn bench(c: &mut Criterion) {
    println!("{}", fig1_peak_bandwidth(Scale::Quick));
    let b = DeviceMemory::new(Scale::Quick);
    let dev = DeviceSpec::gtx480();
    c.bench_function("fig1/devicemem_cuda_gtx480", |bn| {
        bn.iter(|| gpucmp_bench::cuda_once(&b, &dev))
    });
    c.bench_function("fig1/devicemem_opencl_gtx480", |bn| {
        bn.iter(|| gpucmp_bench::opencl_once(&b, &dev))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
