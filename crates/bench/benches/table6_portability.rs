//! Regenerates the paper's Table VI (OpenCL portability across HD5870,
//! Intel920 and Cell/BE) and times one portable benchmark per device.

use criterion::{criterion_group, criterion_main, Criterion};
use gpucmp_benchmarks::{reduce::Reduce, Scale};
use gpucmp_core::experiments::table6_portability;
use gpucmp_sim::DeviceSpec;

fn bench(c: &mut Criterion) {
    println!("{}", table6_portability(Scale::Quick));
    let b = Reduce::new(Scale::Quick);
    for dev in [
        DeviceSpec::hd5870(),
        DeviceSpec::intel920(),
        DeviceSpec::cellbe(),
    ] {
        let name = dev.name.replace('/', "_");
        c.bench_function(&format!("table6/reduce_opencl_{name}"), |bn| {
            bn.iter(|| gpucmp_bench::opencl_once(&b, &dev))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
