//! Regenerates the paper's Fig. 2 (peak FLOPS) and times one MaxFlops run.

use criterion::{criterion_group, criterion_main, Criterion};
use gpucmp_benchmarks::maxflops::MaxFlops;
use gpucmp_benchmarks::Scale;
use gpucmp_core::experiments::fig2_peak_flops;
use gpucmp_sim::DeviceSpec;

fn bench(c: &mut Criterion) {
    println!("{}", fig2_peak_flops(Scale::Quick));
    let b = MaxFlops::new(Scale::Quick);
    for dev in [DeviceSpec::gtx280(), DeviceSpec::gtx480()] {
        c.bench_function(&format!("fig2/maxflops_cuda_{}", dev.name), |bn| {
            bn.iter(|| gpucmp_bench::cuda_once(&b, &dev))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
