//! Regenerates the paper's Fig. 3 (the PR of every real-world benchmark on
//! both NVIDIA GPUs) and times three representative benchmark pairs.

use criterion::{criterion_group, criterion_main, Criterion};
use gpucmp_benchmarks::{mxm::MxM, sobel::Sobel, Scale};
use gpucmp_core::experiments::fig3_performance_ratio;
use gpucmp_sim::DeviceSpec;

fn bench(c: &mut Criterion) {
    println!("{}", fig3_performance_ratio(Scale::Quick));
    let dev = DeviceSpec::gtx280();
    let sobel = Sobel::new(Scale::Quick);
    c.bench_function("fig3/sobel_pair_gtx280", |bn| {
        bn.iter(|| {
            (
                gpucmp_bench::cuda_once(&sobel, &dev),
                gpucmp_bench::opencl_once(&sobel, &dev),
            )
        })
    });
    let mxm = MxM::new(Scale::Quick);
    c.bench_function("fig3/mxm_pair_gtx280", |bn| {
        bn.iter(|| {
            (
                gpucmp_bench::cuda_once(&mxm, &dev),
                gpucmp_bench::opencl_once(&mxm, &dev),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
