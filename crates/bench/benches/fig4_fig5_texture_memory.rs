//! Regenerates the paper's Figs 4-5 (texture-memory ablation on MD and
//! SPMV) and times the MD pair.

use criterion::{criterion_group, criterion_main, Criterion};
use gpucmp_benchmarks::{md::Md, Scale};
use gpucmp_core::experiments::fig4_fig5_texture;
use gpucmp_sim::DeviceSpec;

fn bench(c: &mut Criterion) {
    println!("{}", fig4_fig5_texture(Scale::Quick));
    let dev = DeviceSpec::gtx280();
    for tex in [true, false] {
        let b = Md::new(Scale::Quick).with_texture(tex);
        c.bench_function(&format!("fig4/md_texture_{tex}_gtx280"), |bn| {
            bn.iter(|| gpucmp_bench::cuda_once(&b, &dev))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
