//! Regenerates the paper's Fig. 8 (Sobel with/without constant memory) and
//! times both variants on the GTX280.

use criterion::{criterion_group, criterion_main, Criterion};
use gpucmp_benchmarks::{sobel::Sobel, Scale};
use gpucmp_core::experiments::fig8_sobel_constant;
use gpucmp_sim::DeviceSpec;

fn bench(c: &mut Criterion) {
    println!("{}", fig8_sobel_constant(Scale::Quick));
    let dev = DeviceSpec::gtx280();
    for use_const in [true, false] {
        let b = Sobel::new(Scale::Quick).with_const_filter(use_const);
        c.bench_function(&format!("fig8/sobel_const_{use_const}_gtx280"), |bn| {
            bn.iter(|| gpucmp_bench::cuda_once(&b, &dev))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
