//! Regenerates the kernel-launch-time comparison of the paper's Section
//! IV-B-4 (why OpenCL loses on BFS) and times BFS on both APIs.

use criterion::{criterion_group, criterion_main, Criterion};
use gpucmp_benchmarks::{bfs::Bfs, Scale};
use gpucmp_core::experiments::launch_latency;
use gpucmp_sim::DeviceSpec;

fn bench(c: &mut Criterion) {
    println!("{}", launch_latency());
    let b = Bfs::new(Scale::Quick);
    let dev = DeviceSpec::gtx280();
    c.bench_function("launch/bfs_cuda_gtx280", |bn| {
        bn.iter(|| gpucmp_bench::cuda_once(&b, &dev))
    });
    c.bench_function("launch/bfs_opencl_gtx280", |bn| {
        bn.iter(|| gpucmp_bench::opencl_once(&b, &dev))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
