//! Regenerates the paper's Table V (static PTX statistics of the FFT
//! forward kernel under both front-ends) and times the two compilations.

use criterion::{criterion_group, criterion_main, Criterion};
use gpucmp_benchmarks::{fft::Fft, Scale};
use gpucmp_compiler::{compile, Api};
use gpucmp_core::experiments::table5_ptx_stats;

fn bench(c: &mut Criterion) {
    println!("{}", table5_ptx_stats());
    let def = Fft::new(Scale::Quick).kernel();
    c.bench_function("table5/compile_fft_cuda", |bn| {
        bn.iter(|| compile(&def, Api::Cuda, 124).unwrap().exec.len_real())
    });
    c.bench_function("table5/compile_fft_opencl", |bn| {
        bn.iter(|| compile(&def, Api::OpenCl, 124).unwrap().exec.len_real())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
