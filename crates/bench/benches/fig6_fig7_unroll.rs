//! Regenerates the paper's Figs 6-7 (the FDTD loop-unrolling matrix) and
//! times the four build configurations on the GTX280.

use criterion::{criterion_group, criterion_main, Criterion};
use gpucmp_benchmarks::{fdtd::Fdtd, Scale};
use gpucmp_core::experiments::fig6_fig7_unroll;
use gpucmp_sim::DeviceSpec;

fn bench(c: &mut Criterion) {
    println!("{}", fig6_fig7_unroll(Scale::Quick));
    let dev = DeviceSpec::gtx280();
    for a in [true, false] {
        let b = Fdtd::new(Scale::Quick).with_unroll_a(a);
        c.bench_function(&format!("fig6/fdtd_cuda_unroll_a_{a}"), |bn| {
            bn.iter(|| gpucmp_bench::cuda_once(&b, &dev))
        });
        c.bench_function(&format!("fig7/fdtd_opencl_unroll_a_{a}"), |bn| {
            bn.iter(|| gpucmp_bench::opencl_once(&b, &dev))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
