//! Multi-tenant soak harness for `gpucmp-server`.
//!
//! ```text
//! cargo run --release -p gpucmp-bench --bin serve_bench -- \
//!     [--tenants N] [--iters N] [--slots N] [--seed S] [--trace out.json]
//! ```
//!
//! Spins up an in-process server, drives it with N concurrent tenant
//! threads over real TCP, and reports request-latency percentiles plus
//! the fault-isolation counters. When a chaos seed is set (`--seed` or
//! the `GPUCMP_FAULT_SEED` env var, matching the campaign's fault
//! convention), one extra *chaos tenant* repeatedly faults its own
//! context (out-of-bounds stores, watchdog-tripping spins) and resets
//! it, while the harness asserts the well-behaved tenants' results stay
//! bit-identical to a fault-free reference run.
//!
//! Exit protocol (the CI gate's convention):
//!
//! | exit | meaning                                                     |
//! |------|-------------------------------------------------------------|
//! | 0    | clean soak: no chaos seed, every invariant held             |
//! | 2    | partial: chaos ran under a *declared* seed, faults were     |
//! |      | injected and contained, every surviving invariant held      |
//! | 1    | an invariant broke (cross-tenant corruption, slot growth,   |
//! |      | untyped failure, server hang/crash)                         |

use gpucmp_server::protocol::ErrorKind;
use gpucmp_server::{serve_local, Client, RetryPolicy, ServerConfig, TenantQuota};
use std::process::ExitCode;
use std::time::{Duration, Instant};

const N_ELEMS: u32 = 512;
const BYTES: u64 = N_ELEMS as u64 * 4;

fn retry(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 200,
        base_delay: Duration::from_micros(200),
        max_delay: Duration::from_millis(20),
        deadline: Duration::from_secs(30),
        seed,
    }
}

fn fill_params(ptr: u64, n: u32, v: f32) -> Vec<u64> {
    vec![ptr, n as u64, f32::to_bits(v) as u64]
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One well-behaved tenant: open → alloc → iterate fill/read → close,
/// recording per-request latencies and the final readback.
fn good_tenant(
    addr: std::net::SocketAddr,
    name: String,
    iters: u32,
    seed: u64,
) -> Result<(Vec<f64>, Vec<u8>), String> {
    let mut c = Client::connect(addr).map_err(|e| format!("{name}: connect: {e}"))?;
    let policy = retry(seed);
    let s = c
        .open(&name, &policy)
        .map_err(|e| format!("{name}: open: {e}"))?;
    let ptr = c
        .alloc(s, BYTES)
        .map_err(|e| format!("{name}: alloc: {e}"))?;
    let mut latencies_ms = Vec::with_capacity(iters as usize);
    let mut data = Vec::new();
    for i in 0..iters {
        let v = (i % 7) as f32 + 0.5;
        let t0 = Instant::now();
        c.launch(s, "fill", N_ELEMS / 128, 128, fill_params(ptr, N_ELEMS, v))
            .map_err(|e| format!("{name}: launch {i}: {e}"))?;
        data = c
            .read(s, ptr, BYTES)
            .map_err(|e| format!("{name}: read {i}: {e}"))?;
        latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        for chunk in data.chunks_exact(4) {
            let got = f32::from_le_bytes(chunk.try_into().unwrap());
            if got != v {
                return Err(format!("{name}: iter {i}: read {got}, expected {v}"));
            }
        }
    }
    c.close(s).map_err(|e| format!("{name}: close: {e}"))?;
    Ok((latencies_ms, data))
}

/// The chaos tenant: alternate out-of-bounds faults and watchdog spins,
/// verify each poisons only its own session (sticky `ContextLost` until
/// `Reset`), seeded so a run replays exactly.
fn chaos_tenant(addr: std::net::SocketAddr, rounds: u32, seed: u64) -> Result<u64, String> {
    let mut c = Client::connect(addr).map_err(|e| format!("chaos: connect: {e}"))?;
    let policy = retry(seed ^ 0xC4A0);
    let s = c
        .open("chaos", &policy)
        .map_err(|e| format!("chaos: open: {e}"))?;
    let ptr = c.alloc(s, 1024).map_err(|e| format!("chaos: alloc: {e}"))?;
    let mut rng = seed;
    let mut faults = 0u64;
    for round in 0..rounds {
        let (kernel, params): (&str, Vec<u64>) = if splitmix64(&mut rng) % 2 == 0 {
            ("oob", vec![ptr])
        } else {
            ("spin", vec![ptr, 100_000_000])
        };
        match c.launch(s, kernel, 1, 32, params) {
            Err(e) if e.kind() == Some(ErrorKind::DeviceFault) => faults += 1,
            Err(e) => return Err(format!("chaos: round {round}: untyped failure: {e}")),
            Ok(_) => return Err(format!("chaos: round {round}: {kernel} did not fault")),
        }
        // Sticky until reset: the next request must bounce, typed.
        match c.alloc(s, 64) {
            Err(e) if e.kind() == Some(ErrorKind::ContextLost) => {}
            other => {
                return Err(format!(
                    "chaos: round {round}: expected ContextLost, got {other:?}"
                ))
            }
        }
        let had_fault = c
            .reset_session(s)
            .map_err(|e| format!("chaos: round {round}: reset: {e}"))?;
        if !had_fault {
            return Err(format!("chaos: round {round}: reset saw no fault"));
        }
        let _ = c
            .alloc(s, 1024)
            .map_err(|e| format!("chaos: round {round}: realloc: {e}"))?;
    }
    c.close(s).map_err(|e| format!("chaos: close: {e}"))?;
    Ok(faults)
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx]
}

fn main() -> ExitCode {
    let mut tenants: u32 = 4;
    let mut iters: u32 = 50;
    let mut slots: usize = 3;
    let mut seed: Option<u64> = std::env::var("GPUCMP_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok());
    let mut trace_out: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut grab = || it.next().cloned().unwrap_or_default();
        match a.as_str() {
            "--tenants" => tenants = grab().parse().unwrap_or(tenants),
            "--iters" => iters = grab().parse().unwrap_or(iters),
            "--slots" => slots = grab().parse().unwrap_or(slots),
            "--seed" => seed = grab().parse().ok(),
            "--trace" => trace_out = Some(grab()),
            other => {
                eprintln!("serve_bench: unknown argument '{other}'");
                eprintln!(
                    "usage: serve_bench [--tenants N] [--iters N] [--slots N] \
                     [--seed S] [--trace out.json]"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let chaos_rounds = 5u32;
    let device = gpucmp_sim::DeviceSpec::gtx480();

    // Fault-free reference: what every well-behaved tenant must read
    // back bit-for-bit, chaos or not.
    let reference = {
        let mut server = serve_local(ServerConfig {
            device: device.clone(),
            slots: 1,
            arena_bytes: 4 << 20,
            quota: TenantQuota::default(),
            trace: false,
        })
        .expect("reference server");
        let r = good_tenant(server.addr(), "reference".into(), iters, 0);
        server.shutdown();
        match r {
            Ok((_, data)) => data,
            Err(e) => {
                eprintln!("serve_bench: FAIL — reference run: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let mut server = serve_local(ServerConfig {
        device,
        slots,
        arena_bytes: 4 << 20,
        // A tight watchdog keeps the chaos tenant's runaway `spin`
        // launches cheap: the point is the typed fault, not the burn.
        quota: TenantQuota {
            inst_budget: Some(200_000),
            ..TenantQuota::default()
        },
        trace: trace_out.is_some(),
    })
    .expect("soak server");
    let addr = server.addr();

    // Typed-backpressure probe: an allocation over the resident-byte
    // quota must come back QuotaExceeded — a response, not a hang.
    let quota_probe = {
        let mut c = Client::connect(addr).expect("probe connect");
        let s = c.open("probe", &retry(0xBEEF)).expect("probe open");
        let over = TenantQuota::default().max_resident_bytes + 1;
        let r = match c.alloc(s, over) {
            Err(e) if e.kind() == Some(ErrorKind::QuotaExceeded) => Ok(()),
            other => Err(format!("over-quota alloc returned {other:?}")),
        };
        c.close(s).expect("probe close");
        r
    };

    let start = Instant::now();
    let mut joins = Vec::new();
    for t in 0..tenants {
        let name = format!("tenant-{t}");
        joins.push(std::thread::spawn(move || {
            good_tenant(addr, name, iters, 0x5EED + t as u64)
        }));
    }
    let chaos_join = seed.map(|s| std::thread::spawn(move || chaos_tenant(addr, chaos_rounds, s)));

    let mut errors: Vec<String> = Vec::new();
    if let Err(e) = quota_probe {
        errors.push(e);
    }
    let mut latencies: Vec<f64> = Vec::new();
    for j in joins {
        match j.join().expect("tenant thread") {
            Ok((lat, data)) => {
                latencies.extend(lat);
                if data != reference {
                    errors.push("tenant readback diverged from the fault-free reference".into());
                }
            }
            Err(e) => errors.push(e),
        }
    }
    let mut injected_faults = 0u64;
    if let Some(j) = chaos_join {
        match j.join().expect("chaos thread") {
            Ok(n) => injected_faults = n,
            Err(e) => errors.push(e),
        }
    }
    let wall = start.elapsed();

    // The server must still answer, and the pool must show no growth
    // and no leaked slots.
    let stats = match Client::connect(addr)
        .and_then(|mut c| c.stats().map_err(|e| std::io::Error::other(e.to_string())))
    {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve_bench: FAIL — server unreachable after soak: {e}");
            return ExitCode::FAILURE;
        }
    };
    if stats.slots as usize != slots {
        errors.push(format!(
            "pool grew: {} slots, configured {slots}",
            stats.slots
        ));
    }
    if stats.slots_free != stats.slots {
        errors.push(format!(
            "slot leak: {} of {} slots free after all sessions closed",
            stats.slots_free, stats.slots
        ));
    }
    if stats.opens != stats.closes {
        errors.push(format!(
            "session leak: {} opens vs {} closes",
            stats.opens, stats.closes
        ));
    }
    if stats.device_faults != injected_faults {
        errors.push(format!(
            "fault containment: {} device faults recorded, {injected_faults} injected",
            stats.device_faults
        ));
    }
    if stats.quota_rejections == 0 {
        errors.push("quota probe left no typed rejection in the counters".into());
    }

    if let Some(path) = &trace_out {
        let streams: Vec<(String, Vec<gpucmp_runtime::SessionEvent>)> = server
            .service()
            .take_traces()
            .into_iter()
            .map(|t| (format!("{} / session {}", t.tenant, t.session), t.events))
            .collect();
        let doc = gpucmp_trace::chrome_trace_multi(&gpucmp_sim::DeviceSpec::gtx480(), &streams);
        if let Err(e) = std::fs::write(path, doc.to_text()) {
            errors.push(format!("trace export to {path}: {e}"));
        } else {
            println!(
                "serve_bench: wrote {} tenant streams to {path}",
                streams.len()
            );
        }
    }
    server.shutdown();

    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let total_requests = stats.launches + stats.opens + stats.closes + stats.resets;
    println!(
        "serve_bench: {} tenants x {} iters over {} slots in {:.2}s ({} launches)",
        tenants,
        iters,
        slots,
        wall.as_secs_f64(),
        stats.launches
    );
    println!(
        "serve_bench: launch+read latency p50 {:.3} ms, p99 {:.3} ms ({} samples)",
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.99),
        latencies.len()
    );
    println!(
        "serve_bench: counters — busy {} quota {} faults {} context_lost {} resets {} \
         ({} requests total)",
        stats.busy_rejections,
        stats.quota_rejections,
        stats.device_faults,
        stats.context_lost,
        stats.resets,
        total_requests,
    );

    if !errors.is_empty() {
        for e in &errors {
            eprintln!("serve_bench: FAIL — {e}");
        }
        return ExitCode::FAILURE;
    }
    match seed {
        Some(s) => {
            println!(
                "serve_bench: PARTIAL — {injected_faults} faults injected under seed {s}, \
                 all contained; neighbours bit-identical to the fault-free reference"
            );
            ExitCode::from(2)
        }
        None => {
            println!("serve_bench: PASS — clean soak, every invariant held");
            ExitCode::SUCCESS
        }
    }
}
