//! Host-side tier speed micro-benchmark.
//!
//! ```text
//! cargo run --release -p gpucmp-bench --bin sim_speed -- \
//!     [--augment BENCH_*.json] [--out sim_speed.json]
//! ```
//!
//! Times every campaign benchmark (GTX480, CUDA, quick scale) under each
//! simulator execution tier — interpreter, pre-decoded, fused — and
//! prints the speedup matrix. With `--augment`, the matrix is written
//! into an existing `BENCH_*.json` report's `sim_speed` field (schema
//! v4) so the CI gate checks it; with `--out`, a standalone JSON file
//! with just the matrix is written.
//!
//! Exits non-zero if the fused tier is slower than the interpreter on
//! any benchmark — a compiled hot path that loses to instruction-at-a-
//! time interpretation is a regression, not a measurement.

use gpucmp_benchmarks::Scale;
use gpucmp_core::sim_speed::{measure_sim_speed, sim_speed_table};
use gpucmp_trace::{BenchReport, Json, SimSpeed};
use std::process::ExitCode;

fn matrix_json(rows: &[SimSpeed]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|s| {
                Json::obj([
                    ("bench", s.bench.as_str().into()),
                    ("interp_ns", s.interp_ns.into()),
                    ("decoded_ns", s.decoded_ns.into()),
                    ("fused_ns", s.fused_ns.into()),
                ])
            })
            .collect(),
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut augment = None;
    let mut out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--augment" => augment = it.next().cloned(),
            "--out" => out = it.next().cloned(),
            other => {
                eprintln!("sim_speed: unknown argument '{other}'");
                eprintln!("usage: sim_speed [--augment BENCH_*.json] [--out sim_speed.json]");
                return ExitCode::FAILURE;
            }
        }
    }

    let rows = measure_sim_speed(Scale::Quick);
    print!("{}", sim_speed_table(&rows));

    if let Some(path) = out {
        let doc = Json::obj([("sim_speed", matrix_json(&rows))]);
        if let Err(e) = std::fs::write(&path, doc.to_text()) {
            eprintln!("sim_speed: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("sim_speed: wrote {path}");
    }
    if let Some(path) = augment {
        let report = std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|text| BenchReport::from_text(&text).map_err(|e| e.msg));
        match report {
            Ok(mut report) => {
                report.sim_speed = rows.clone();
                if let Err(e) = std::fs::write(&path, report.to_text()) {
                    eprintln!("sim_speed: cannot rewrite {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("sim_speed: augmented {path} (schema v4 sim_speed matrix)");
            }
            Err(e) => {
                eprintln!("sim_speed: cannot augment {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let slow: Vec<&SimSpeed> = rows.iter().filter(|s| s.fused_ns > s.interp_ns).collect();
    if slow.is_empty() {
        println!(
            "sim_speed: PASS — fused tier no slower than the interpreter on all {} benchmarks",
            rows.len()
        );
        ExitCode::SUCCESS
    } else {
        for s in &slow {
            eprintln!(
                "sim_speed: FAIL — {}: fused {:.3} ms > interp {:.3} ms",
                s.bench,
                s.fused_ns as f64 / 1e6,
                s.interp_ns as f64 / 1e6
            );
        }
        ExitCode::FAILURE
    }
}
