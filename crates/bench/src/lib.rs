//! # gpucmp-bench — Criterion benches regenerating the paper's evaluation
//!
//! One bench target per figure/table. Each target first prints the
//! regenerated rows/series (at `Scale::Quick` so a full `cargo bench`
//! stays tractable; run `examples/reproduce_paper` for paper-scale
//! numbers), then times a representative unit of the experiment with
//! Criterion.

use gpucmp_benchmarks::common::Benchmark;
use gpucmp_runtime::{Cuda, OpenCl};
use gpucmp_sim::DeviceSpec;

/// Run `bench` once through the CUDA runtime on `device` (panics on error).
pub fn cuda_once(bench: &dyn Benchmark, device: &DeviceSpec) -> f64 {
    let mut gpu = Cuda::new(device.clone()).expect("NVIDIA device");
    bench.run(&mut gpu).expect("run").value
}

/// Run `bench` once through the OpenCL runtime on `device`.
pub fn opencl_once(bench: &dyn Benchmark, device: &DeviceSpec) -> f64 {
    let mut gpu = OpenCl::create_any(device.clone());
    bench.run(&mut gpu).expect("run").value
}
