//! CI gate over a `BENCH_<timestamp>.json` report.
//!
//! ```text
//! cargo run -p gpucmp-bench --bin gate -- BENCH_1700000000.json
//! ```
//!
//! Parses the report emitted by `examples/reproduce_paper` and fails
//! (exit 1) if any *paper-shape invariant* regressed — the qualitative
//! results of Fang et al. that must survive any simulator or benchmark
//! change, at either problem scale:
//!
//! - the full 16 x {GTX280, GTX480} x {CUDA, OpenCL} matrix ran and
//!   every run verified against its CPU reference;
//! - Sobel on the GTX280 has PR > 1 (the unmodified OpenCL version uses
//!   constant memory, the CUDA one does not — Fig. 8);
//! - BFS has PR < 1 on both devices (OpenCL's higher kernel-launch
//!   overhead, Section IV-B-4);
//! - MD and SPMV have PR < 1 on both devices (the CUDA dialects read
//!   via texture memory — Figs. 4/5);
//! - the synthetic peak benchmarks are API-neutral (PR within 15 % of
//!   1 — Figs. 1/2);
//! - every run carries a populated hardware-counter set.

use gpucmp_trace::BenchReport;
use std::process::ExitCode;

/// Expected campaign shape.
const BENCHES: usize = 16;
const DEVICES: [&str; 2] = ["GTX280", "GTX480"];
const APIS: [&str; 2] = ["CUDA", "OpenCL"];

fn check(report: &BenchReport) -> Vec<String> {
    let mut errors = Vec::new();
    let mut err = |msg: String| errors.push(msg);

    let want_runs = BENCHES * DEVICES.len() * APIS.len();
    if report.runs.len() != want_runs {
        err(format!(
            "expected {want_runs} runs (16 benchmarks x 2 devices x 2 APIs), found {}",
            report.runs.len()
        ));
    }
    if report.prs.len() != BENCHES * DEVICES.len() {
        err(format!(
            "expected {} PR entries, found {}",
            BENCHES * DEVICES.len(),
            report.prs.len()
        ));
    }

    for r in &report.runs {
        let id = format!("{}/{}/{}", r.bench, r.device, r.api);
        if !r.verified {
            err(format!("{id}: failed output verification"));
        }
        if !(r.value.is_finite() && r.value > 0.0) {
            err(format!("{id}: non-positive metric value {}", r.value));
        }
        if r.counters.is_empty() || r.counters.get("warp_instructions").unwrap_or(0.0) <= 0.0 {
            err(format!("{id}: empty or zeroed counter set"));
        }
        if r.launches == 0 {
            err(format!("{id}: no kernel launches recorded"));
        }
    }

    for p in &report.prs {
        if !(p.pr.is_finite() && p.pr > 0.0) {
            err(format!("{}/{}: degenerate PR {}", p.bench, p.device, p.pr));
        }
    }
    let pr_of =
        |bench: &str, device: &str| -> Option<f64> { report.pr(bench, device).map(|p| p.pr) };

    // Fig. 8 shape: unmodified Sobel favours OpenCL on the GT200 because
    // only the OpenCL dialect places the filter in constant memory.
    match pr_of("Sobel", "GTX280") {
        Some(pr) if pr > 1.0 => {}
        Some(pr) => err(format!(
            "Sobel/GTX280: PR {pr:.3} <= 1 (const-mem win lost)"
        )),
        None => err("Sobel/GTX280: PR entry missing".into()),
    }

    // Section IV-B-4 shape: BFS's many tiny launches make OpenCL slower.
    // Figs. 4/5 shape: the CUDA texture path keeps MD and SPMV ahead.
    for bench in ["BFS", "MD", "SPMV"] {
        for device in DEVICES {
            match pr_of(bench, device) {
                Some(pr) if pr < 1.0 => {}
                Some(pr) => err(format!(
                    "{bench}/{device}: PR {pr:.3} >= 1 (CUDA advantage lost)"
                )),
                None => err(format!("{bench}/{device}: PR entry missing")),
            }
        }
    }

    // Figs. 1/2 shape: the synthetic peaks are API-neutral.
    for bench in ["MaxFlops", "DeviceMemory"] {
        for device in DEVICES {
            match pr_of(bench, device) {
                Some(pr) if (pr - 1.0).abs() <= 0.15 => {}
                Some(pr) => err(format!(
                    "{bench}/{device}: PR {pr:.3} outside the 15 % peak band"
                )),
                None => err(format!("{bench}/{device}: PR entry missing")),
            }
        }
    }

    errors
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: gate <BENCH_*.json>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("gate: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match BenchReport::from_text(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("gate: {path} is not a valid bench report: {e:?}");
            return ExitCode::FAILURE;
        }
    };
    let errors = check(&report);
    if errors.is_empty() {
        println!(
            "gate: PASS — {} runs at scale '{}', all paper-shape invariants hold",
            report.runs.len(),
            report.scale
        );
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("gate: FAIL — {e}");
        }
        eprintln!("gate: {} invariant(s) regressed in {path}", errors.len());
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpucmp_trace::{BenchRun, PrEntry};

    fn passing_report() -> BenchReport {
        let benches = [
            "BFS",
            "Sobel",
            "TranP",
            "Reduce",
            "FFT",
            "MD",
            "SPMV",
            "St2D",
            "DXTC",
            "RdxS",
            "Scan",
            "STNW",
            "MxM",
            "FDTD",
            "MaxFlops",
            "DeviceMemory",
        ];
        let mut report = BenchReport {
            scale: "quick".into(),
            ..Default::default()
        };
        for bench in benches {
            for device in DEVICES {
                for api in APIS {
                    let mut counters = gpucmp_sim::CounterSet::new();
                    counters.push("warp_instructions", 1000.0);
                    report.runs.push(BenchRun {
                        bench: bench.into(),
                        device: device.into(),
                        api: api.into(),
                        value: 1.0,
                        unit: "sec".into(),
                        verified: true,
                        wall_ns: 1e6,
                        kernel_ns: 9e5,
                        launches: 3,
                        sim_cycles: 1e5,
                        counters,
                    });
                }
                let pr = match bench {
                    "BFS" | "MD" | "SPMV" => 0.8,
                    "Sobel" => {
                        if device == "GTX280" {
                            4.0
                        } else {
                            1.0
                        }
                    }
                    _ => 0.95,
                };
                report.prs.push(PrEntry {
                    bench: bench.into(),
                    device: device.into(),
                    pr,
                    dominant_counter: "comparable".into(),
                });
            }
        }
        report
    }

    #[test]
    fn well_shaped_report_passes() {
        assert!(check(&passing_report()).is_empty());
    }

    #[test]
    fn regressions_are_caught() {
        // Sobel const-mem win lost
        let mut r = passing_report();
        r.prs
            .iter_mut()
            .find(|p| p.bench == "Sobel" && p.device == "GTX280")
            .unwrap()
            .pr = 0.9;
        assert!(check(&r).iter().any(|e| e.contains("Sobel/GTX280")));

        // BFS faster under OpenCL would contradict the launch-overhead model
        let mut r = passing_report();
        r.prs
            .iter_mut()
            .find(|p| p.bench == "BFS" && p.device == "GTX480")
            .unwrap()
            .pr = 1.2;
        assert!(check(&r).iter().any(|e| e.contains("BFS/GTX480")));

        // a verification failure anywhere fails the gate
        let mut r = passing_report();
        r.runs[5].verified = false;
        assert!(check(&r).iter().any(|e| e.contains("verification")));

        // an incomplete matrix fails the gate
        let mut r = passing_report();
        r.runs.pop();
        assert!(check(&r).iter().any(|e| e.contains("expected 64 runs")));
    }
}
