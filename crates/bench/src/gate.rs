//! CI gate over a `BENCH_<timestamp>.json` report.
//!
//! ```text
//! cargo run -p gpucmp-bench --bin gate -- BENCH_1700000000.json
//! ```
//!
//! Parses the report emitted by `examples/reproduce_paper` and fails
//! (exit 1) if any *paper-shape invariant* regressed — the qualitative
//! results of Fang et al. that must survive any simulator or benchmark
//! change, at either problem scale:
//!
//! - the full 21 x {GTX280, GTX480} x {CUDA, OpenCL} matrix (the 16
//!   paper benchmarks plus the three explicit-stream variants and the
//!   two fuzz-corpus micro-workloads) ran and every run verified against
//!   its CPU reference;
//! - Sobel on the GTX280 has PR > 1 (the unmodified OpenCL version uses
//!   constant memory, the CUDA one does not — Fig. 8);
//! - BFS has PR < 1 on both devices (OpenCL's higher kernel-launch
//!   overhead, Section IV-B-4);
//! - MD and SPMV have PR < 1 on both devices (the CUDA dialects read
//!   via texture memory — Figs. 4/5);
//! - the synthetic peak benchmarks are API-neutral (PR within 15 % of
//!   1 — Figs. 1/2);
//! - every run carries a populated hardware-counter set;
//! - when the report carries a tier speed matrix (`sim_speed`, schema
//!   v4), the fused execution tier is no slower than the interpreter on
//!   every benchmark.
//!
//! # Fault-skipped runs vs regressions
//!
//! A report produced under a seeded fault-injection campaign (its
//! `fault_seed` field is set) may contain `fault-skipped` runs: triples
//! whose injected fault survived the retry budget. Those are *not*
//! regressions — the campaign degraded gracefully and said so. The gate
//! distinguishes the three outcomes by exit code:
//!
//! | exit | meaning                                                    |
//! |------|------------------------------------------------------------|
//! | 0    | complete report, all invariants hold                       |
//! | 2    | partial report: fault-skips only, every surviving run and  |
//! |      | every checkable invariant holds                            |
//! | 1    | a real regression (bad value, lost invariant, skip without |
//! |      | a declared injection campaign, malformed matrix)           |
//!
//! A PR invariant whose constituent run was fault-skipped is downgraded
//! to a skip note; the same invariant missing with both runs healthy is
//! a regression.

use gpucmp_trace::BenchReport;
use std::process::ExitCode;

/// Expected campaign shape: the 16 paper benchmarks plus the three
/// explicit-stream variants (BFS, MxM, FDTD) and the two fuzz-corpus
/// micro-workloads (AtomHist, SharedRot).
const BENCHES: usize = 21;
const DEVICES: [&str; 2] = ["GTX280", "GTX480"];
const APIS: [&str; 2] = ["CUDA", "OpenCL"];

/// What the gate concluded about a report: hard regressions and
/// acceptable fault-skips, separately.
#[derive(Debug, Default)]
pub struct GateResult {
    /// Paper-shape regressions; any entry fails the gate (exit 1).
    pub errors: Vec<String>,
    /// Runs/invariants missing because of a declared injected fault;
    /// acceptable, but the report is partial (exit 2).
    pub skips: Vec<String>,
}

impl GateResult {
    /// Exit code under the gate's protocol: 0 clean, 2 partial, 1
    /// regressed.
    pub fn exit_code(&self) -> u8 {
        if !self.errors.is_empty() {
            1
        } else if !self.skips.is_empty() {
            2
        } else {
            0
        }
    }
}

/// Whether `bench`/`device`/`api` is recorded as fault-skipped.
fn is_fault_skip(report: &BenchReport, bench: &str, device: &str, api: &str) -> bool {
    report.run(bench, device, api).is_some_and(|r| !r.is_ok())
}

/// Whether either side of the (bench, device) pair was fault-skipped,
/// which excuses a missing PR entry.
fn pair_has_skip(report: &BenchReport, bench: &str, device: &str) -> bool {
    APIS.iter()
        .any(|api| is_fault_skip(report, bench, device, api))
}

/// Check every paper-shape invariant of `report`, splitting failures
/// into regressions and acceptable fault-skips.
pub fn check(report: &BenchReport) -> GateResult {
    check_with_cache_floor(report, None)
}

/// Like [`check`], but additionally require at least `min` cache hits
/// when `min_cache_hits` is set — the incremental-campaign CI job's
/// assertion that a warm rerun actually reused its previous report.
pub fn check_with_cache_floor(report: &BenchReport, min_cache_hits: Option<usize>) -> GateResult {
    let mut res = GateResult::default();

    if let Some(min) = min_cache_hits {
        let hits = report.cache_hits();
        if hits < min {
            res.errors.push(format!(
                "expected at least {min} cached runs, found {hits} — \
                 the incremental campaign re-executed unchanged cells"
            ));
        }
    }

    let want_runs = BENCHES * DEVICES.len() * APIS.len();
    if report.runs.len() != want_runs {
        res.errors.push(format!(
            "expected {want_runs} runs (21 benchmarks x 2 devices x 2 APIs), found {}",
            report.runs.len()
        ));
    }

    for r in &report.runs {
        let id = format!("{}/{}/{}", r.bench, r.device, r.api);
        if !r.is_ok() {
            // A fault-skip is only acceptable when the report declares
            // the injection campaign that caused it; a skip appearing in
            // a fault-free campaign is a real failure.
            let why = r.fault.as_deref().unwrap_or("<no fault recorded>");
            if report.fault_seed.is_some() {
                res.skips.push(format!(
                    "{id}: skipped after {} attempt(s): {why}",
                    r.attempts
                ));
            } else {
                res.errors.push(format!(
                    "{id}: fault-skipped without a declared fault-injection campaign: {why}"
                ));
            }
            continue;
        }
        if !r.verified {
            res.errors.push(format!("{id}: failed output verification"));
        }
        if !(r.value.is_finite() && r.value > 0.0) {
            res.errors
                .push(format!("{id}: non-positive metric value {}", r.value));
        }
        if r.counters.is_empty() || r.counters.get("warp_instructions").unwrap_or(0.0) <= 0.0 {
            res.errors
                .push(format!("{id}: empty or zeroed counter set"));
        }
        if r.launches == 0 {
            res.errors
                .push(format!("{id}: no kernel launches recorded"));
        }
        // Schema-v3 consistency: a cached row is a verbatim reuse of a
        // healthy fingerprinted row — a cached skip or a cached row
        // without its fingerprint is a campaign bug.
        if r.cached && r.input_hash.is_empty() {
            res.errors
                .push(format!("{id}: cached run without an input_hash"));
        }
    }

    // Every healthy (bench, device) pair must have its PR entry; pairs
    // with a skipped side are allowed to miss it.
    let want_prs = BENCHES * DEVICES.len();
    let excused = report
        .runs
        .iter()
        .filter(|r| r.api == "CUDA")
        .filter(|r| pair_has_skip(report, &r.bench, &r.device))
        .count();
    if report.prs.len() + excused < want_prs {
        res.errors.push(format!(
            "expected {} PR entries ({} excused by fault-skips), found {}",
            want_prs,
            excused,
            report.prs.len()
        ));
    }

    for p in &report.prs {
        if !(p.pr.is_finite() && p.pr > 0.0) {
            res.errors
                .push(format!("{}/{}: degenerate PR {}", p.bench, p.device, p.pr));
        }
    }
    let pr_of =
        |bench: &str, device: &str| -> Option<f64> { report.pr(bench, device).map(|p| p.pr) };
    // A missing PR is a skip iff one of the pair's runs was
    // fault-skipped under a declared campaign; otherwise a regression.
    let missing_pr = |res: &mut GateResult, bench: &str, device: &str| {
        if report.fault_seed.is_some() && pair_has_skip(report, bench, device) {
            res.skips.push(format!(
                "{bench}/{device}: PR unchecked (run fault-skipped)"
            ));
        } else {
            res.errors
                .push(format!("{bench}/{device}: PR entry missing"));
        }
    };

    // Fig. 8 shape: unmodified Sobel favours OpenCL on the GT200 because
    // only the OpenCL dialect places the filter in constant memory.
    match pr_of("Sobel", "GTX280") {
        Some(pr) if pr > 1.0 => {}
        Some(pr) => res.errors.push(format!(
            "Sobel/GTX280: PR {pr:.3} <= 1 (const-mem win lost)"
        )),
        None => missing_pr(&mut res, "Sobel", "GTX280"),
    }

    // Section IV-B-4 shape: BFS's many tiny launches make OpenCL slower.
    // Figs. 4/5 shape: the CUDA texture path keeps MD and SPMV ahead.
    for bench in ["BFS", "MD", "SPMV"] {
        for device in DEVICES {
            match pr_of(bench, device) {
                Some(pr) if pr < 1.0 => {}
                Some(pr) => res.errors.push(format!(
                    "{bench}/{device}: PR {pr:.3} >= 1 (CUDA advantage lost)"
                )),
                None => missing_pr(&mut res, bench, device),
            }
        }
    }

    // Figs. 1/2 shape: the synthetic peaks are API-neutral.
    for bench in ["MaxFlops", "DeviceMemory"] {
        for device in DEVICES {
            match pr_of(bench, device) {
                Some(pr) if (pr - 1.0).abs() <= 0.15 => {}
                Some(pr) => res.errors.push(format!(
                    "{bench}/{device}: PR {pr:.3} outside the 15 % peak band"
                )),
                None => missing_pr(&mut res, bench, device),
            }
        }
    }

    // Schema v4: when the report carries a tier speed matrix, the fused
    // tier must not lose to the interpreter anywhere — that would mean
    // the compiled hot path regressed into pure overhead.
    for s in &report.sim_speed {
        if s.fused_ns > s.interp_ns {
            res.errors.push(format!(
                "{}: fused tier slower than interpreter ({:.3} ms vs {:.3} ms)",
                s.bench,
                s.fused_ns as f64 / 1e6,
                s.interp_ns as f64 / 1e6
            ));
        }
    }

    res
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut min_cache_hits = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--expect-cache-hits" {
            min_cache_hits = it.next().and_then(|v| v.parse::<usize>().ok());
            if min_cache_hits.is_none() {
                eprintln!("gate: --expect-cache-hits needs a number");
                return ExitCode::FAILURE;
            }
        } else {
            path = Some(a.clone());
        }
    }
    let Some(path) = path else {
        eprintln!("usage: gate <BENCH_*.json> [--expect-cache-hits <n>]");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("gate: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match BenchReport::from_text(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("gate: {path} is not a valid bench report: {e:?}");
            return ExitCode::FAILURE;
        }
    };
    let res = check_with_cache_floor(&report, min_cache_hits);
    for s in &res.skips {
        eprintln!("gate: SKIP — {s}");
    }
    match res.exit_code() {
        0 => {
            println!(
                "gate: PASS — {} runs at scale '{}' ({} cached), all paper-shape invariants hold",
                report.runs.len(),
                report.scale,
                report.cache_hits()
            );
            ExitCode::SUCCESS
        }
        2 => {
            let skipped_runs = report.runs.iter().filter(|r| !r.is_ok()).count();
            println!(
                "gate: PARTIAL — {skipped_runs} of {} runs fault-skipped under seed {}; \
                 every surviving invariant holds",
                report.runs.len(),
                report.fault_seed.unwrap_or(0)
            );
            ExitCode::from(2)
        }
        _ => {
            for e in &res.errors {
                eprintln!("gate: FAIL — {e}");
            }
            eprintln!(
                "gate: {} invariant(s) regressed in {path}",
                res.errors.len()
            );
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpucmp_trace::{BenchRun, PrEntry, RUN_FAULT_SKIPPED, RUN_OK};

    fn passing_report() -> BenchReport {
        let benches = [
            "BFS",
            "Sobel",
            "TranP",
            "Reduce",
            "FFT",
            "MD",
            "SPMV",
            "St2D",
            "DXTC",
            "RdxS",
            "Scan",
            "STNW",
            "MxM",
            "FDTD",
            "MaxFlops",
            "DeviceMemory",
            "BFS+streams",
            "MxM+streams",
            "FDTD+streams",
            "AtomHist",
            "SharedRot",
        ];
        let mut report = BenchReport {
            scale: "quick".into(),
            ..Default::default()
        };
        for bench in benches {
            for device in DEVICES {
                for api in APIS {
                    let mut counters = gpucmp_sim::CounterSet::new();
                    counters.push("warp_instructions", 1000.0);
                    report.runs.push(BenchRun {
                        bench: bench.into(),
                        device: device.into(),
                        api: api.into(),
                        value: 1.0,
                        unit: "sec".into(),
                        verified: true,
                        wall_ns: 1e6,
                        kernel_ns: 9e5,
                        launches: 3,
                        sim_cycles: 1e5,
                        counters,
                        status: RUN_OK.into(),
                        fault: None,
                        attempts: 1,
                        input_hash: "0123456789abcdef".into(),
                        cached: false,
                    });
                }
                let pr = match bench {
                    "BFS" | "MD" | "SPMV" => 0.8,
                    "Sobel" => {
                        if device == "GTX280" {
                            4.0
                        } else {
                            1.0
                        }
                    }
                    _ => 0.95,
                };
                report.prs.push(PrEntry {
                    bench: bench.into(),
                    device: device.into(),
                    pr,
                    dominant_counter: "comparable".into(),
                });
            }
        }
        report
    }

    /// Turn one run into a fault-skip and drop the now-unpaired PR, the
    /// way `bench_report_with` records an unrecoverable injected fault.
    fn skip_run(report: &mut BenchReport, bench: &str, device: &str, api: &str) {
        let r = report
            .runs
            .iter_mut()
            .find(|r| r.bench == bench && r.device == device && r.api == api)
            .unwrap();
        r.status = RUN_FAULT_SKIPPED.into();
        r.fault = Some("injected failure of malloc #1".into());
        r.verified = false;
        r.value = 0.0;
        r.launches = 0;
        r.counters = gpucmp_sim::CounterSet::new();
        r.attempts = 1;
        report
            .prs
            .retain(|p| !(p.bench == bench && p.device == device));
    }

    #[test]
    fn well_shaped_report_passes() {
        let res = check(&passing_report());
        assert!(res.errors.is_empty(), "{:?}", res.errors);
        assert!(res.skips.is_empty());
        assert_eq!(res.exit_code(), 0);
    }

    #[test]
    fn regressions_are_caught() {
        // Sobel const-mem win lost
        let mut r = passing_report();
        r.prs
            .iter_mut()
            .find(|p| p.bench == "Sobel" && p.device == "GTX280")
            .unwrap()
            .pr = 0.9;
        assert!(check(&r).errors.iter().any(|e| e.contains("Sobel/GTX280")));

        // BFS faster under OpenCL would contradict the launch-overhead model
        let mut r = passing_report();
        r.prs
            .iter_mut()
            .find(|p| p.bench == "BFS" && p.device == "GTX480")
            .unwrap()
            .pr = 1.2;
        assert!(check(&r).errors.iter().any(|e| e.contains("BFS/GTX480")));

        // a verification failure anywhere fails the gate
        let mut r = passing_report();
        r.runs[5].verified = false;
        assert!(check(&r).errors.iter().any(|e| e.contains("verification")));

        // an incomplete matrix fails the gate
        let mut r = passing_report();
        r.runs.pop();
        assert!(check(&r)
            .errors
            .iter()
            .any(|e| e.contains("expected 84 runs")));
    }

    #[test]
    fn a_slow_fused_tier_fails_the_gate() {
        let mut r = passing_report();
        r.sim_speed = vec![
            gpucmp_trace::SimSpeed {
                bench: "MxM".into(),
                interp_ns: 9_000_000,
                decoded_ns: 6_000_000,
                fused_ns: 3_000_000,
            },
            gpucmp_trace::SimSpeed {
                bench: "BFS".into(),
                interp_ns: 1_000_000,
                decoded_ns: 900_000,
                fused_ns: 1_500_000,
            },
        ];
        let res = check(&r);
        assert_eq!(res.exit_code(), 1);
        assert!(res
            .errors
            .iter()
            .any(|e| e.contains("BFS: fused tier slower")));
        // Fix the slow row and the gate passes again.
        r.sim_speed[1].fused_ns = 800_000;
        assert_eq!(check(&r).exit_code(), 0);
    }

    #[test]
    fn cache_floor_is_enforced_when_requested() {
        let mut r = passing_report();
        // No floor: a cache-less report is fine.
        assert_eq!(check_with_cache_floor(&r, None).exit_code(), 0);
        // A floor over an uncached report regresses.
        let res = check_with_cache_floor(&r, Some(69));
        assert_eq!(res.exit_code(), 1);
        assert!(res.errors.iter().any(|e| e.contains("cached runs")));
        // Mark enough rows cached and the same floor passes.
        for run in r.runs.iter_mut().take(72) {
            run.cached = true;
        }
        assert_eq!(check_with_cache_floor(&r, Some(69)).exit_code(), 0);
        // A cached row that lost its fingerprint is a campaign bug.
        r.runs[0].input_hash.clear();
        let res = check_with_cache_floor(&r, Some(69));
        assert_eq!(res.exit_code(), 1);
        assert!(res
            .errors
            .iter()
            .any(|e| e.contains("without an input_hash")));
    }

    #[test]
    fn declared_fault_skips_are_partial_not_regressed() {
        let mut r = passing_report();
        r.fault_seed = Some(42);
        // Skip an invariant-bearing run and an ordinary one.
        skip_run(&mut r, "BFS", "GTX480", "OpenCL");
        skip_run(&mut r, "Scan", "GTX280", "CUDA");
        let res = check(&r);
        assert!(res.errors.is_empty(), "{:?}", res.errors);
        assert_eq!(
            res.skips.len(),
            3,
            "2 runs + 1 unchecked invariant: {:?}",
            res.skips
        );
        assert!(res
            .skips
            .iter()
            .any(|s| s.contains("BFS/GTX480: PR unchecked")));
        assert_eq!(res.exit_code(), 2);
    }

    #[test]
    fn skips_without_a_declared_campaign_are_regressions() {
        let mut r = passing_report();
        assert_eq!(r.fault_seed, None);
        skip_run(&mut r, "MxM", "GTX480", "CUDA");
        let res = check(&r);
        assert_eq!(res.exit_code(), 1);
        assert!(res
            .errors
            .iter()
            .any(|e| e.contains("without a declared fault-injection campaign")));
    }

    #[test]
    fn a_missing_pr_with_healthy_runs_is_still_a_regression() {
        let mut r = passing_report();
        r.fault_seed = Some(42); // campaign declared, but the runs are fine
        r.prs.retain(|p| !(p.bench == "MD" && p.device == "GTX280"));
        let res = check(&r);
        assert_eq!(res.exit_code(), 1);
        assert!(res
            .errors
            .iter()
            .any(|e| e.contains("MD/GTX280: PR entry missing")));
    }
}
