//! Property tests for the virtual ISA containers: builder/label
//! resolution, statistics consistency and constant-bank packing.

use gpucmp_ptx::{
    ConstSegment, Inst, InstClass, InstStats, KernelBuilder, LabelId, Module, Op2, Ty,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn stats_class_totals_sum_to_total(ops in prop::collection::vec(0usize..6, 1..200)) {
        // build a kernel from an opcode soup
        let mut b = KernelBuilder::new("soup");
        let x = b.mov(Ty::S32, 1i32);
        for &o in &ops {
            match o {
                0 => { b.bin(Op2::Add, Ty::S32, x, 1i32); }
                1 => { b.bin(Op2::And, Ty::B32, x, 3i32); }
                2 => { b.bin(Op2::Shl, Ty::B32, x, 1i32); }
                3 => { b.mov(Ty::S32, x); }
                4 => { b.setp(gpucmp_ptx::CmpOp::Lt, Ty::S32, x, 5i32); }
                _ => { b.bar(); }
            }
        }
        let k = b.finish();
        let stats = InstStats::of_kernel(&k);
        let class_sum: u64 = [
            InstClass::Arithmetic,
            InstClass::Logic,
            InstClass::Shift,
            InstClass::DataMovement,
            InstClass::FlowControl,
            InstClass::Synchronization,
            InstClass::Other,
        ]
        .iter()
        .map(|&c| stats.class_total(c))
        .sum();
        prop_assert_eq!(class_sum, stats.total());
        prop_assert_eq!(stats.total(), k.len_real() as u64);
    }

    #[test]
    fn labels_resolve_iff_placed(n_labels in 1usize..20, place_all in any::<bool>()) {
        let mut b = KernelBuilder::new("labels");
        let labels: Vec<LabelId> = (0..n_labels).map(|_| b.new_label()).collect();
        for l in &labels {
            b.bra(*l);
        }
        let placed = if place_all { n_labels } else { n_labels - 1 };
        for l in &labels[..placed] {
            b.place_label(*l);
        }
        let k = b.finish();
        prop_assert_eq!(k.resolve().is_ok(), place_all);
    }

    #[test]
    fn resolved_branch_targets_point_at_their_labels(n in 1usize..30) {
        let mut b = KernelBuilder::new("targets");
        let labels: Vec<LabelId> = (0..n).map(|_| b.new_label()).collect();
        for l in &labels {
            b.bra(*l);
        }
        for l in &labels {
            b.place_label(*l);
        }
        let k = b.finish();
        let r = k.resolve().unwrap();
        for (pc, &label) in labels.iter().enumerate() {
            let t = r.target(pc);
            prop_assert!(matches!(r.kernel.body[t], Inst::Label(l) if l == label));
        }
    }

    #[test]
    fn const_bank_packing_preserves_every_segment(
        segs in prop::collection::vec(prop::collection::vec(any::<f32>(), 1..20), 1..10)
    ) {
        let mut m = Module::new();
        let mut offsets = Vec::new();
        for (i, s) in segs.iter().enumerate() {
            offsets.push(m.push_const_segment(ConstSegment::from_f32(format!("s{i}"), s)));
        }
        let image = m.const_bank_image();
        for (seg, off) in segs.iter().zip(&offsets) {
            prop_assert_eq!(*off % 16, 0, "segments are 16-byte aligned");
            for (j, v) in seg.iter().enumerate() {
                let at = *off as usize + j * 4;
                let got = f32::from_le_bytes(image[at..at + 4].try_into().unwrap());
                prop_assert_eq!(got.to_bits(), v.to_bits());
            }
        }
    }

    #[test]
    fn display_mentions_every_real_instruction_count(extra_adds in 0usize..50) {
        let mut b = KernelBuilder::new("disp");
        let x = b.mov(Ty::S32, 7i32);
        for _ in 0..extra_adds {
            b.bin(Op2::Add, Ty::S32, x, 1i32);
        }
        let k = b.finish();
        let text = k.to_string();
        prop_assert_eq!(text.matches("add.s32").count(), extra_adds);
        prop_assert!(text.contains(".entry disp"));
    }
}
