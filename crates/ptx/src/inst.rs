//! The instruction set.

use crate::kernel::LabelId;
use crate::reg::{Operand, Reg};
use crate::ty::{Space, Ty};
use serde::{Deserialize, Serialize};

/// Unary operations (`neg`, `abs`, `not`, and the special-function-unit
/// transcendentals PTX exposes as `sqrt.approx`, `rsqrt.approx`, `sin.approx`
/// and so on).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op1 {
    /// Arithmetic negation.
    Neg,
    /// Absolute value.
    Abs,
    /// Bitwise complement (logic class in Table V).
    Not,
    /// Square root (SFU).
    Sqrt,
    /// Reciprocal square root (SFU).
    Rsqrt,
    /// Reciprocal (SFU).
    Rcp,
    /// Sine (SFU).
    Sin,
    /// Cosine (SFU).
    Cos,
    /// Base-2 exponential (SFU).
    Ex2,
    /// Base-2 logarithm (SFU).
    Lg2,
}

impl Op1 {
    /// PTX mnemonic.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            Op1::Neg => "neg",
            Op1::Abs => "abs",
            Op1::Not => "not",
            Op1::Sqrt => "sqrt",
            Op1::Rsqrt => "rsqrt",
            Op1::Rcp => "rcp",
            Op1::Sin => "sin",
            Op1::Cos => "cos",
            Op1::Ex2 => "ex2",
            Op1::Lg2 => "lg2",
        }
    }

    /// Whether this op executes on the special-function unit.
    pub const fn is_sfu(self) -> bool {
        matches!(
            self,
            Op1::Sqrt | Op1::Rsqrt | Op1::Rcp | Op1::Sin | Op1::Cos | Op1::Ex2 | Op1::Lg2
        )
    }
}

/// Binary operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op2 {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication (low half for integers, as `mul.lo`).
    Mul,
    /// Division (the paper notes `div` is expensive; the CUDA front-end
    /// strength-reduces power-of-two divisions to shifts).
    Div,
    /// Remainder / modulo.
    Rem,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Bitwise and (logic class).
    And,
    /// Bitwise or (logic class).
    Or,
    /// Bitwise xor (logic class).
    Xor,
    /// Shift left (shift class).
    Shl,
    /// Shift right — logical for unsigned/bit types, arithmetic for signed.
    Shr,
}

impl Op2 {
    /// PTX mnemonic.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            Op2::Add => "add",
            Op2::Sub => "sub",
            Op2::Mul => "mul",
            Op2::Div => "div",
            Op2::Rem => "rem",
            Op2::Min => "min",
            Op2::Max => "max",
            Op2::And => "and",
            Op2::Or => "or",
            Op2::Xor => "xor",
            Op2::Shl => "shl",
            Op2::Shr => "shr",
        }
    }

    /// Whether the op belongs to the logic class of Table V.
    pub const fn is_logic(self) -> bool {
        matches!(self, Op2::And | Op2::Or | Op2::Xor)
    }

    /// Whether the op belongs to the shift class of Table V.
    pub const fn is_shift(self) -> bool {
        matches!(self, Op2::Shl | Op2::Shr)
    }
}

/// Ternary (three-input) operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op3 {
    /// Multiply-add, `d = a*b + c`. Integer `mad.lo` or float `mad.f32`
    /// (the GT200-era non-fused multiply-add).
    Mad,
    /// Fused multiply-add (float only). The paper's Table V shows the
    /// OpenCL front-end emitting `fma` where CUDA emits separate ops.
    Fma,
}

impl Op3 {
    /// PTX mnemonic.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            Op3::Mad => "mad",
            Op3::Fma => "fma",
        }
    }
}

/// Comparison operators for `setp`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// PTX mnemonic, e.g. `lt`.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }

    /// The comparison with operands swapped (`a < b` ⇔ `b > a`).
    pub const fn swapped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The negated comparison (`!(a < b)` ⇔ `a >= b`).
    pub const fn negated(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

/// Atomic read-modify-write operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AtomOp {
    /// Atomic add.
    Add,
    /// Atomic minimum.
    Min,
    /// Atomic maximum.
    Max,
    /// Atomic exchange.
    Exch,
    /// Atomic compare-and-swap (`b` is the compare value carried in the
    /// instruction's extra operand).
    Cas,
}

impl AtomOp {
    /// PTX mnemonic.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            AtomOp::Add => "add",
            AtomOp::Min => "min",
            AtomOp::Max => "max",
            AtomOp::Exch => "exch",
            AtomOp::Cas => "cas",
        }
    }
}

/// A memory address: `base + offset` bytes.
///
/// `base` is a register holding a byte address (or an immediate for
/// absolute addressing into `shared`/`const`/`param` space).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Address {
    /// Base address operand (byte address in the target state space).
    pub base: Operand,
    /// Constant byte offset added to the base.
    pub offset: i64,
}

impl Address {
    /// Address with zero offset.
    pub const fn base(base: Operand) -> Self {
        Address { base, offset: 0 }
    }

    /// Address with a constant byte offset.
    pub const fn with_offset(base: Operand, offset: i64) -> Self {
        Address { base, offset }
    }

    /// An absolute address (base immediate 0 + offset).
    pub const fn absolute(offset: i64) -> Self {
        Address {
            base: Operand::ImmI(0),
            offset,
        }
    }
}

/// A texture reference index.
///
/// The host runtime binds device buffers to texture slots
/// (CUDA `cudaBindTexture`); a [`Inst::Tex`] fetch reads element `idx`
/// of the bound buffer through the texture cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TexRef(pub u8);

/// One instruction of the virtual ISA.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Inst {
    /// Pseudo-instruction marking a branch target. Free at execution time.
    Label(LabelId),
    /// `mov.ty d, a`
    Mov {
        /// Operand type.
        ty: Ty,
        /// Destination register.
        d: Reg,
        /// Source operand.
        a: Operand,
    },
    /// `cvt.dty.sty d, a` — convert between scalar types.
    Cvt {
        /// Destination type.
        dty: Ty,
        /// Source type.
        sty: Ty,
        /// Destination register.
        d: Reg,
        /// Source operand.
        a: Operand,
    },
    /// Unary operation `op.ty d, a`.
    Un {
        /// Operation.
        op: Op1,
        /// Operand type.
        ty: Ty,
        /// Destination register.
        d: Reg,
        /// Source operand.
        a: Operand,
    },
    /// Binary operation `op.ty d, a, b`.
    Bin {
        /// Operation.
        op: Op2,
        /// Operand type.
        ty: Ty,
        /// Destination register.
        d: Reg,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// Ternary operation `op.ty d, a, b, c` (mad/fma).
    Tern {
        /// Operation.
        op: Op3,
        /// Operand type.
        ty: Ty,
        /// Destination register.
        d: Reg,
        /// Multiplicand.
        a: Operand,
        /// Multiplier.
        b: Operand,
        /// Addend.
        c: Operand,
    },
    /// `setp.cmp.ty p, a, b` — set predicate from comparison.
    Setp {
        /// Comparison operator.
        cmp: CmpOp,
        /// Operand type compared.
        ty: Ty,
        /// Destination predicate register.
        d: Reg,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `selp.ty d, a, b, p` — select `a` if `p` else `b`.
    Selp {
        /// Operand type.
        ty: Ty,
        /// Destination register.
        d: Reg,
        /// Value when predicate is true.
        a: Operand,
        /// Value when predicate is false.
        b: Operand,
        /// Predicate register.
        p: Reg,
    },
    /// `ld.space.ty d, [addr]`
    Ld {
        /// State space.
        space: Space,
        /// Access type.
        ty: Ty,
        /// Destination register.
        d: Reg,
        /// Address.
        addr: Address,
    },
    /// `st.space.ty [addr], a`
    St {
        /// State space.
        space: Space,
        /// Access type.
        ty: Ty,
        /// Address.
        addr: Address,
        /// Stored operand.
        a: Operand,
    },
    /// `tex.1d.f32 d, [texref, idx]` — fetch element `idx` (element index,
    /// not byte address) of the buffer bound to `tex` through the texture
    /// cache.
    Tex {
        /// Fetched element type.
        ty: Ty,
        /// Destination register.
        d: Reg,
        /// Texture slot.
        tex: TexRef,
        /// Element index operand.
        idx: Operand,
    },
    /// `atom.space.op.ty d, [addr], b` — atomic read-modify-write; `d`
    /// receives the old value.
    Atom {
        /// State space (global or shared).
        space: Space,
        /// Read-modify-write operation.
        op: AtomOp,
        /// Operand type.
        ty: Ty,
        /// Destination register (old value).
        d: Reg,
        /// Address.
        addr: Address,
        /// Operand value.
        b: Operand,
        /// Compare value for [`AtomOp::Cas`]; ignored otherwise.
        c: Operand,
    },
    /// `bra target` (optionally predicated `@p bra` / `@!p bra`).
    Bra {
        /// Branch target label.
        target: LabelId,
        /// Predicate register and expected polarity (`true` = branch when
        /// predicate set). `None` = unconditional.
        pred: Option<(Reg, bool)>,
    },
    /// Push a reconvergence point (structured-divergence marker, SASS `SSY`).
    Ssy {
        /// The label at which divergent paths reconverge.
        target: LabelId,
    },
    /// Reconvergence point matching the innermost [`Inst::Ssy`].
    SyncPoint,
    /// `bar.sync 0` — block-wide barrier.
    Bar,
    /// Kernel return.
    Ret,
}

impl Inst {
    /// The destination register this instruction writes, if any.
    pub fn def(self) -> Option<Reg> {
        match self {
            Inst::Mov { d, .. }
            | Inst::Cvt { d, .. }
            | Inst::Un { d, .. }
            | Inst::Bin { d, .. }
            | Inst::Tern { d, .. }
            | Inst::Setp { d, .. }
            | Inst::Selp { d, .. }
            | Inst::Ld { d, .. }
            | Inst::Tex { d, .. }
            | Inst::Atom { d, .. } => Some(d),
            _ => None,
        }
    }

    /// Visit every register this instruction *reads*.
    pub fn for_each_use(&self, mut f: impl FnMut(Reg)) {
        let mut op = |o: &Operand| {
            if let Operand::Reg(r) = o {
                f(*r);
            }
        };
        match self {
            Inst::Label(_) | Inst::Bar | Inst::Ret | Inst::SyncPoint | Inst::Ssy { .. } => {}
            Inst::Mov { a, .. } | Inst::Cvt { a, .. } | Inst::Un { a, .. } => op(a),
            Inst::Bin { a, b, .. } | Inst::Setp { a, b, .. } => {
                op(a);
                op(b);
            }
            Inst::Tern { a, b, c, .. } => {
                op(a);
                op(b);
                op(c);
            }
            Inst::Selp { a, b, p, .. } => {
                op(a);
                op(b);
                f(*p);
            }
            Inst::Ld { addr, .. } => op(&addr.base),
            Inst::St { addr, a, .. } => {
                op(&addr.base);
                op(a);
            }
            Inst::Tex { idx, .. } => op(idx),
            Inst::Atom { addr, b, c, .. } => {
                op(&addr.base);
                op(b);
                op(c);
            }
            Inst::Bra { pred, .. } => {
                if let Some((p, _)) = pred {
                    f(*p);
                }
            }
        }
    }

    /// Rewrite every register reference (both defs and uses) through `f`.
    pub fn map_regs(&mut self, mut f: impl FnMut(Reg) -> Reg) {
        let map_op = |o: &mut Operand, f: &mut dyn FnMut(Reg) -> Reg| {
            if let Operand::Reg(r) = o {
                *r = f(*r);
            }
        };
        match self {
            Inst::Label(_) | Inst::Bar | Inst::Ret | Inst::SyncPoint | Inst::Ssy { .. } => {}
            Inst::Mov { d, a, .. } | Inst::Cvt { d, a, .. } | Inst::Un { d, a, .. } => {
                *d = f(*d);
                map_op(a, &mut f);
            }
            Inst::Bin { d, a, b, .. } | Inst::Setp { d, a, b, .. } => {
                *d = f(*d);
                map_op(a, &mut f);
                map_op(b, &mut f);
            }
            Inst::Tern { d, a, b, c, .. } => {
                *d = f(*d);
                map_op(a, &mut f);
                map_op(b, &mut f);
                map_op(c, &mut f);
            }
            Inst::Selp { d, a, b, p, .. } => {
                *d = f(*d);
                map_op(a, &mut f);
                map_op(b, &mut f);
                *p = f(*p);
            }
            Inst::Ld { d, addr, .. } => {
                *d = f(*d);
                map_op(&mut addr.base, &mut f);
            }
            Inst::St { addr, a, .. } => {
                map_op(&mut addr.base, &mut f);
                map_op(a, &mut f);
            }
            Inst::Tex { d, idx, .. } => {
                *d = f(*d);
                map_op(idx, &mut f);
            }
            Inst::Atom { d, addr, b, c, .. } => {
                *d = f(*d);
                map_op(&mut addr.base, &mut f);
                map_op(b, &mut f);
                map_op(c, &mut f);
            }
            Inst::Bra { pred, .. } => {
                if let Some((p, _)) = pred {
                    *p = f(*p);
                }
            }
        }
    }

    /// Whether the instruction has an architectural side effect (memory
    /// write, atomic, barrier, control flow) and therefore must never be
    /// removed by dead-code elimination.
    pub const fn has_side_effect(&self) -> bool {
        matches!(
            self,
            Inst::St { .. }
                | Inst::Atom { .. }
                | Inst::Bar
                | Inst::Ret
                | Inst::Bra { .. }
                | Inst::Ssy { .. }
                | Inst::SyncPoint
                | Inst::Label(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn def_and_uses() {
        let i = Inst::Bin {
            op: Op2::Add,
            ty: Ty::S32,
            d: Reg(0),
            a: Operand::Reg(Reg(1)),
            b: Operand::ImmI(4),
        };
        assert_eq!(i.def(), Some(Reg(0)));
        let mut uses = Vec::new();
        i.for_each_use(|r| uses.push(r));
        assert_eq!(uses, vec![Reg(1)]);
    }

    #[test]
    fn store_has_no_def_but_uses_both() {
        let i = Inst::St {
            space: Space::Global,
            ty: Ty::F32,
            addr: Address::base(Operand::Reg(Reg(2))),
            a: Operand::Reg(Reg(3)),
        };
        assert_eq!(i.def(), None);
        assert!(i.has_side_effect());
        let mut uses = Vec::new();
        i.for_each_use(|r| uses.push(r));
        assert_eq!(uses, vec![Reg(2), Reg(3)]);
    }

    #[test]
    fn map_regs_rewrites_everything() {
        let mut i = Inst::Tern {
            op: Op3::Mad,
            ty: Ty::F32,
            d: Reg(0),
            a: Operand::Reg(Reg(1)),
            b: Operand::Reg(Reg(2)),
            c: Operand::Reg(Reg(3)),
        };
        i.map_regs(|r| Reg(r.0 + 10));
        match i {
            Inst::Tern { d, a, b, c, .. } => {
                assert_eq!(d, Reg(10));
                assert_eq!(a, Operand::Reg(Reg(11)));
                assert_eq!(b, Operand::Reg(Reg(12)));
                assert_eq!(c, Operand::Reg(Reg(13)));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn cmp_op_algebra() {
        assert_eq!(CmpOp::Lt.negated(), CmpOp::Ge);
        assert_eq!(CmpOp::Lt.swapped(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.negated(), CmpOp::Ne);
        for c in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(c.negated().negated(), c);
            assert_eq!(c.swapped().swapped(), c);
        }
    }

    #[test]
    fn sfu_classification() {
        assert!(Op1::Rsqrt.is_sfu());
        assert!(!Op1::Neg.is_sfu());
        assert!(Op2::And.is_logic());
        assert!(Op2::Shl.is_shift());
        assert!(!Op2::Add.is_logic());
    }
}
