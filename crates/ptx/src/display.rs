//! Pretty-printing of kernels in a PTX-flavoured textual form.

use crate::inst::Inst;
use crate::kernel::Kernel;
use std::fmt;

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Label(l) => write!(f, "L{}:", l.0),
            Inst::Mov { ty, d, a } => write!(f, "\tmov.{ty} {d}, {a};"),
            Inst::Cvt { dty, sty, d, a } => write!(f, "\tcvt.{dty}.{sty} {d}, {a};"),
            Inst::Un { op, ty, d, a } => write!(f, "\t{}.{ty} {d}, {a};", op.mnemonic()),
            Inst::Bin { op, ty, d, a, b } => {
                write!(f, "\t{}.{ty} {d}, {a}, {b};", op.mnemonic())
            }
            Inst::Tern { op, ty, d, a, b, c } => {
                write!(f, "\t{}.{ty} {d}, {a}, {b}, {c};", op.mnemonic())
            }
            Inst::Setp { cmp, ty, d, a, b } => {
                write!(f, "\tsetp.{}.{ty} {d}, {a}, {b};", cmp.mnemonic())
            }
            Inst::Selp { ty, d, a, b, p } => write!(f, "\tselp.{ty} {d}, {a}, {b}, {p};"),
            Inst::Ld { space, ty, d, addr } => {
                write!(f, "\tld.{space}.{ty} {d}, [{}+{}];", addr.base, addr.offset)
            }
            Inst::St { space, ty, addr, a } => {
                write!(f, "\tst.{space}.{ty} [{}+{}], {a};", addr.base, addr.offset)
            }
            Inst::Tex { ty, d, tex, idx } => {
                write!(f, "\ttex.1d.{ty} {d}, [tex{}, {idx}];", tex.0)
            }
            Inst::Atom {
                space,
                op,
                ty,
                d,
                addr,
                b,
                ..
            } => write!(
                f,
                "\tatom.{space}.{}.{ty} {d}, [{}+{}], {b};",
                op.mnemonic(),
                addr.base,
                addr.offset
            ),
            Inst::Bra { target, pred } => match pred {
                None => write!(f, "\tbra L{};", target.0),
                Some((p, true)) => write!(f, "\t@{p} bra L{};", target.0),
                Some((p, false)) => write!(f, "\t@!{p} bra L{};", target.0),
            },
            Inst::Ssy { target } => write!(f, "\tssy L{};", target.0),
            Inst::SyncPoint => write!(f, "\tsync;"),
            Inst::Bar => write!(f, "\tbar.sync 0;"),
            Inst::Ret => write!(f, "\tret;"),
        }
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ".entry {} (", self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, ".param .{} {}", p.ty, p.name)?;
        }
        writeln!(f, ")")?;
        writeln!(f, "{{")?;
        writeln!(f, "\t.reg {} registers;", self.regs.len())?;
        if self.shared_bytes > 0 {
            writeln!(f, "\t.shared .align 16 .b8 smem[{}];", self.shared_bytes)?;
        }
        if self.local_bytes > 0 {
            writeln!(f, "\t.local .align 8 .b8 lmem[{}];", self.local_bytes)?;
        }
        for inst in &self.body {
            writeln!(f, "{inst}")?;
        }
        writeln!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::KernelBuilder;
    use crate::inst::{Address, Op2};
    use crate::reg::Operand;
    use crate::ty::{Space, Ty};

    #[test]
    fn kernel_renders_ptx_like_text() {
        let mut b = KernelBuilder::new("saxpy");
        b.param("x", Ty::U64);
        let r = b.bin(Op2::Add, Ty::S32, 1i32, 2i32);
        b.st(Space::Global, Ty::S32, Address::base(Operand::ImmI(0)), r);
        let k = b.finish();
        let text = k.to_string();
        assert!(text.contains(".entry saxpy"));
        assert!(text.contains("add.s32 %r0, 1, 2;"));
        assert!(text.contains("st.global.s32"));
        assert!(text.contains("ret;"));
    }

    #[test]
    fn predicated_branch_renders_polarity() {
        let mut b = KernelBuilder::new("k");
        let l = b.new_label();
        let p = b.reg(Ty::Pred);
        b.bra_if(l, p, false);
        b.place_label(l);
        let k = b.finish();
        let text = k.to_string();
        assert!(text.contains("@!%r0 bra L0;"));
        assert!(text.contains("L0:"));
    }
}
