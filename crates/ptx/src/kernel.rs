//! Kernels and modules.

use crate::inst::Inst;
use crate::ty::Ty;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A branch-target label. Labels are kernel-local.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LabelId(pub u32);

/// A kernel parameter.
///
/// Each parameter occupies one 8-byte slot in `param` space (pointers are
/// 64-bit byte addresses into the device's global memory; scalars are
/// zero-extended). `ld.param` reads slot `i` at byte offset `8 * i`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Parameter name (for diagnostics and pretty-printing).
    pub name: String,
    /// Declared scalar type.
    pub ty: Ty,
}

impl Param {
    /// Byte size of one parameter slot.
    pub const SLOT_BYTES: u32 = 8;
}

/// A compiled kernel in the virtual ISA.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    /// Kernel entry name.
    pub name: String,
    /// Parameter declarations, in slot order.
    pub params: Vec<Param>,
    /// Virtual register declarations; `Reg(i)` has type `regs[i]`.
    pub regs: Vec<Ty>,
    /// Flat instruction stream with `Label` pseudo-instructions.
    pub body: Vec<Inst>,
    /// Statically-allocated shared memory per block, in bytes.
    pub shared_bytes: u32,
    /// Per-thread local (spill) memory, in bytes. Set by the backend.
    pub local_bytes: u32,
    /// Physical registers per thread after allocation. Zero means the
    /// kernel is still in virtual-register form (pre-`ptxas`).
    pub phys_regs: u32,
}

impl Kernel {
    /// Create an empty kernel shell.
    pub fn new(name: impl Into<String>) -> Self {
        Kernel {
            name: name.into(),
            params: Vec::new(),
            regs: Vec::new(),
            body: Vec::new(),
            shared_bytes: 0,
            local_bytes: 0,
            phys_regs: 0,
        }
    }

    /// Number of virtual registers declared.
    pub fn num_regs(&self) -> usize {
        self.regs.len()
    }

    /// Resolve labels to instruction indices, producing an executable form.
    ///
    /// Returns an error message if a branch or `ssy` targets an undefined
    /// label, or a label is defined twice.
    pub fn resolve(&self) -> Result<ResolvedKernel, String> {
        let mut label_pc: HashMap<LabelId, usize> = HashMap::new();
        for (pc, inst) in self.body.iter().enumerate() {
            if let Inst::Label(l) = inst {
                if label_pc.insert(*l, pc).is_some() {
                    return Err(format!(
                        "kernel {}: label L{} defined twice",
                        self.name, l.0
                    ));
                }
            }
        }
        let lookup = |l: LabelId| -> Result<usize, String> {
            label_pc
                .get(&l)
                .copied()
                .ok_or_else(|| format!("kernel {}: undefined label L{}", self.name, l.0))
        };
        let mut targets = vec![usize::MAX; self.body.len()];
        for (pc, inst) in self.body.iter().enumerate() {
            match inst {
                Inst::Bra { target, .. } | Inst::Ssy { target } => {
                    targets[pc] = lookup(*target)?;
                }
                _ => {}
            }
        }
        Ok(ResolvedKernel {
            kernel: self.clone(),
            targets,
        })
    }

    /// Count of real (non-label) instructions.
    pub fn len_real(&self) -> usize {
        self.body
            .iter()
            .filter(|i| !matches!(i, Inst::Label(_)))
            .count()
    }
}

/// A kernel whose branch targets have been resolved to instruction indices.
#[derive(Clone, Debug)]
pub struct ResolvedKernel {
    /// The underlying kernel.
    pub kernel: Kernel,
    /// For each pc holding a `Bra`/`Ssy`, the target instruction index
    /// (the `Label` pseudo-instruction's position); `usize::MAX` otherwise.
    pub targets: Vec<usize>,
}

impl ResolvedKernel {
    /// The resolved branch target of the instruction at `pc`.
    ///
    /// # Panics
    /// Panics if `pc` does not hold a branch or `ssy`.
    #[inline]
    pub fn target(&self, pc: usize) -> usize {
        let t = self.targets[pc];
        debug_assert_ne!(t, usize::MAX, "instruction at {pc} has no branch target");
        t
    }
}

/// A constant-memory segment embedded in a module.
///
/// The Sobel OpenCL variant stores its filter here; `ld.const` reads from
/// the segment bound at kernel build time.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConstSegment {
    /// Segment name.
    pub name: String,
    /// Raw little-endian bytes.
    pub data: Vec<u8>,
}

impl ConstSegment {
    /// Build a segment from `f32` values.
    pub fn from_f32(name: impl Into<String>, values: &[f32]) -> Self {
        let mut data = Vec::with_capacity(values.len() * 4);
        for v in values {
            data.extend_from_slice(&v.to_le_bits().to_le_bytes());
        }
        ConstSegment {
            name: name.into(),
            data,
        }
    }

    /// Build a segment from `i32` values.
    pub fn from_i32(name: impl Into<String>, values: &[i32]) -> Self {
        let mut data = Vec::with_capacity(values.len() * 4);
        for v in values {
            data.extend_from_slice(&v.to_le_bytes());
        }
        ConstSegment {
            name: name.into(),
            data,
        }
    }
}

/// Extension trait used by [`ConstSegment::from_f32`].
trait F32Bits {
    fn to_le_bits(self) -> u32;
}

impl F32Bits for f32 {
    fn to_le_bits(self) -> u32 {
        self.to_bits()
    }
}

/// A module: a set of kernels plus module-level constant segments, the unit
/// `clBuildProgram` / the CUDA fat binary would carry.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Module {
    /// Kernels by definition order.
    pub kernels: Vec<Kernel>,
    /// Constant-memory segments; segment `i` starts at the byte offset
    /// recorded in [`Module::const_offsets`].
    pub const_segments: Vec<ConstSegment>,
}

impl Module {
    /// Empty module.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a kernel, returning its index.
    pub fn push_kernel(&mut self, k: Kernel) -> usize {
        self.kernels.push(k);
        self.kernels.len() - 1
    }

    /// Look a kernel up by name.
    pub fn kernel(&self, name: &str) -> Option<&Kernel> {
        self.kernels.iter().find(|k| k.name == name)
    }

    /// Add a constant segment, returning its byte offset in the module's
    /// constant bank (segments are packed in order, 16-byte aligned).
    pub fn push_const_segment(&mut self, seg: ConstSegment) -> u32 {
        let offset = self.const_bank_size();
        self.const_segments.push(seg);
        offset
    }

    /// Byte offsets of each constant segment in the packed constant bank.
    pub fn const_offsets(&self) -> Vec<u32> {
        let mut offsets = Vec::with_capacity(self.const_segments.len());
        let mut off = 0u32;
        for seg in &self.const_segments {
            offsets.push(off);
            off += (seg.data.len() as u32 + 15) & !15;
        }
        offsets
    }

    /// Total size of the packed constant bank in bytes.
    pub fn const_bank_size(&self) -> u32 {
        self.const_segments
            .iter()
            .fold(0u32, |acc, s| acc + ((s.data.len() as u32 + 15) & !15))
    }

    /// Flatten the constant segments into one packed bank image.
    pub fn const_bank_image(&self) -> Vec<u8> {
        let mut image = vec![0u8; self.const_bank_size() as usize];
        for (seg, off) in self.const_segments.iter().zip(self.const_offsets()) {
            image[off as usize..off as usize + seg.data.len()].copy_from_slice(&seg.data);
        }
        image
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;

    #[test]
    fn resolve_finds_labels() {
        let mut k = Kernel::new("t");
        k.body = vec![
            Inst::Bra {
                target: LabelId(0),
                pred: None,
            },
            Inst::Label(LabelId(0)),
            Inst::Ret,
        ];
        let r = k.resolve().unwrap();
        assert_eq!(r.target(0), 1);
    }

    #[test]
    fn resolve_rejects_undefined_label() {
        let mut k = Kernel::new("t");
        k.body = vec![Inst::Bra {
            target: LabelId(9),
            pred: None,
        }];
        assert!(k.resolve().is_err());
    }

    #[test]
    fn resolve_rejects_duplicate_label() {
        let mut k = Kernel::new("t");
        k.body = vec![Inst::Label(LabelId(1)), Inst::Label(LabelId(1)), Inst::Ret];
        assert!(k.resolve().is_err());
    }

    #[test]
    fn const_segments_pack_aligned() {
        let mut m = Module::new();
        let o1 = m.push_const_segment(ConstSegment::from_f32("a", &[1.0, 2.0, 3.0]));
        let o2 = m.push_const_segment(ConstSegment::from_i32("b", &[7]));
        assert_eq!(o1, 0);
        assert_eq!(o2, 16); // 12 bytes rounded up to 16
        let image = m.const_bank_image();
        assert_eq!(image.len(), 32);
        assert_eq!(f32::from_le_bytes(image[4..8].try_into().unwrap()), 2.0);
        assert_eq!(i32::from_le_bytes(image[16..20].try_into().unwrap()), 7);
    }

    #[test]
    fn len_real_skips_labels() {
        let mut k = Kernel::new("t");
        k.body = vec![Inst::Label(LabelId(0)), Inst::Bar, Inst::Ret];
        assert_eq!(k.len_real(), 2);
    }
}
