//! Convenience builder for emitting kernels.

use crate::inst::{Address, AtomOp, CmpOp, Inst, Op1, Op2, Op3, TexRef};
use crate::kernel::{Kernel, LabelId, Param};
use crate::reg::{Operand, Reg, Special};
use crate::ty::{Space, Ty};

/// Incremental kernel builder used by the compiler back-ends (and directly
/// by tests that need hand-written kernels).
///
/// The builder hands out fresh virtual registers and labels and appends
/// instructions; [`KernelBuilder::finish`] yields the [`Kernel`].
#[derive(Debug)]
pub struct KernelBuilder {
    kernel: Kernel,
    next_label: u32,
}

impl KernelBuilder {
    /// Start building a kernel named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            kernel: Kernel::new(name),
            next_label: 0,
        }
    }

    /// Declare a parameter, returning its slot index.
    pub fn param(&mut self, name: impl Into<String>, ty: Ty) -> usize {
        self.kernel.params.push(Param {
            name: name.into(),
            ty,
        });
        self.kernel.params.len() - 1
    }

    /// Allocate a fresh virtual register of type `ty`.
    pub fn reg(&mut self, ty: Ty) -> Reg {
        self.kernel.regs.push(ty);
        Reg(self.kernel.regs.len() as u32 - 1)
    }

    /// Allocate a fresh label (not yet placed).
    pub fn new_label(&mut self) -> LabelId {
        let l = LabelId(self.next_label);
        self.next_label += 1;
        l
    }

    /// Place a label at the current position.
    pub fn place_label(&mut self, l: LabelId) {
        self.kernel.body.push(Inst::Label(l));
    }

    /// Append a raw instruction.
    pub fn emit(&mut self, inst: Inst) {
        self.kernel.body.push(inst);
    }

    /// Reserve `bytes` of static shared memory, returning the byte offset of
    /// the reservation (16-byte aligned).
    pub fn shared_alloc(&mut self, bytes: u32) -> u32 {
        let off = (self.kernel.shared_bytes + 15) & !15;
        self.kernel.shared_bytes = off + bytes;
        off
    }

    // ---- typed emission helpers -------------------------------------------------

    /// `mov.ty d, a` into a fresh register.
    pub fn mov(&mut self, ty: Ty, a: impl Into<Operand>) -> Reg {
        let d = self.reg(ty);
        self.emit(Inst::Mov { ty, d, a: a.into() });
        d
    }

    /// `mov.ty d, a` into an existing register.
    pub fn mov_to(&mut self, ty: Ty, d: Reg, a: impl Into<Operand>) {
        self.emit(Inst::Mov { ty, d, a: a.into() });
    }

    /// Read a special register into a fresh `u32` register.
    pub fn special(&mut self, s: Special) -> Reg {
        self.mov(Ty::U32, Operand::Special(s))
    }

    /// `cvt.dty.sty d, a` into a fresh register.
    pub fn cvt(&mut self, dty: Ty, sty: Ty, a: impl Into<Operand>) -> Reg {
        let d = self.reg(dty);
        self.emit(Inst::Cvt {
            dty,
            sty,
            d,
            a: a.into(),
        });
        d
    }

    /// Unary op into a fresh register.
    pub fn un(&mut self, op: Op1, ty: Ty, a: impl Into<Operand>) -> Reg {
        let d = self.reg(ty);
        self.emit(Inst::Un {
            op,
            ty,
            d,
            a: a.into(),
        });
        d
    }

    /// Binary op into a fresh register.
    pub fn bin(&mut self, op: Op2, ty: Ty, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let d = self.reg(ty);
        self.emit(Inst::Bin {
            op,
            ty,
            d,
            a: a.into(),
            b: b.into(),
        });
        d
    }

    /// Binary op into an existing register.
    pub fn bin_to(
        &mut self,
        op: Op2,
        ty: Ty,
        d: Reg,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) {
        self.emit(Inst::Bin {
            op,
            ty,
            d,
            a: a.into(),
            b: b.into(),
        });
    }

    /// Ternary op (mad/fma) into a fresh register.
    pub fn tern(
        &mut self,
        op: Op3,
        ty: Ty,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        c: impl Into<Operand>,
    ) -> Reg {
        let d = self.reg(ty);
        self.emit(Inst::Tern {
            op,
            ty,
            d,
            a: a.into(),
            b: b.into(),
            c: c.into(),
        });
        d
    }

    /// Ternary op into an existing register.
    pub fn tern_to(
        &mut self,
        op: Op3,
        ty: Ty,
        d: Reg,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        c: impl Into<Operand>,
    ) {
        self.emit(Inst::Tern {
            op,
            ty,
            d,
            a: a.into(),
            b: b.into(),
            c: c.into(),
        });
    }

    /// `setp` into a fresh predicate register.
    pub fn setp(
        &mut self,
        cmp: CmpOp,
        ty: Ty,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> Reg {
        let d = self.reg(Ty::Pred);
        self.emit(Inst::Setp {
            cmp,
            ty,
            d,
            a: a.into(),
            b: b.into(),
        });
        d
    }

    /// `selp` into a fresh register.
    pub fn selp(&mut self, ty: Ty, a: impl Into<Operand>, b: impl Into<Operand>, p: Reg) -> Reg {
        let d = self.reg(ty);
        self.emit(Inst::Selp {
            ty,
            d,
            a: a.into(),
            b: b.into(),
            p,
        });
        d
    }

    /// Load into a fresh register.
    pub fn ld(&mut self, space: Space, ty: Ty, addr: Address) -> Reg {
        let d = self.reg(ty);
        self.emit(Inst::Ld { space, ty, d, addr });
        d
    }

    /// Load parameter slot `i` (as a 64-bit value) into a fresh register.
    pub fn ld_param(&mut self, i: usize, ty: Ty) -> Reg {
        self.ld(
            Space::Param,
            ty,
            Address::absolute((i as i64) * Param::SLOT_BYTES as i64),
        )
    }

    /// Store.
    pub fn st(&mut self, space: Space, ty: Ty, addr: Address, a: impl Into<Operand>) {
        self.emit(Inst::St {
            space,
            ty,
            addr,
            a: a.into(),
        });
    }

    /// Texture fetch into a fresh register.
    pub fn tex(&mut self, ty: Ty, tex: TexRef, idx: impl Into<Operand>) -> Reg {
        let d = self.reg(ty);
        self.emit(Inst::Tex {
            ty,
            d,
            tex,
            idx: idx.into(),
        });
        d
    }

    /// Atomic op; returns the register receiving the old value.
    pub fn atom(
        &mut self,
        space: Space,
        op: AtomOp,
        ty: Ty,
        addr: Address,
        b: impl Into<Operand>,
    ) -> Reg {
        let d = self.reg(ty);
        self.emit(Inst::Atom {
            space,
            op,
            ty,
            d,
            addr,
            b: b.into(),
            c: Operand::ImmI(0),
        });
        d
    }

    /// Unconditional branch.
    pub fn bra(&mut self, target: LabelId) {
        self.emit(Inst::Bra { target, pred: None });
    }

    /// Branch when `p` is `polarity`.
    pub fn bra_if(&mut self, target: LabelId, p: Reg, polarity: bool) {
        self.emit(Inst::Bra {
            target,
            pred: Some((p, polarity)),
        });
    }

    /// Push a reconvergence point.
    pub fn ssy(&mut self, target: LabelId) {
        self.emit(Inst::Ssy { target });
    }

    /// Reconverge (must be placed at the label passed to the matching
    /// [`KernelBuilder::ssy`]).
    pub fn sync(&mut self) {
        self.emit(Inst::SyncPoint);
    }

    /// Block-wide barrier.
    pub fn bar(&mut self) {
        self.emit(Inst::Bar);
    }

    /// Kernel return.
    pub fn ret(&mut self) {
        self.emit(Inst::Ret);
    }

    /// Finish the kernel (appends `ret` if the body doesn't end with one).
    pub fn finish(mut self) -> Kernel {
        if !matches!(self.kernel.body.last(), Some(Inst::Ret)) {
            self.kernel.body.push(Inst::Ret);
        }
        self.kernel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_allocates_sequential_regs() {
        let mut b = KernelBuilder::new("k");
        let r0 = b.reg(Ty::S32);
        let r1 = b.reg(Ty::F32);
        assert_eq!(r0, Reg(0));
        assert_eq!(r1, Reg(1));
        let k = b.finish();
        assert_eq!(k.regs, vec![Ty::S32, Ty::F32]);
    }

    #[test]
    fn finish_appends_ret() {
        let mut b = KernelBuilder::new("k");
        b.bar();
        let k = b.finish();
        assert!(matches!(k.body.last(), Some(Inst::Ret)));
        assert_eq!(k.body.len(), 2);
    }

    #[test]
    fn finish_keeps_existing_ret() {
        let mut b = KernelBuilder::new("k");
        b.ret();
        let k = b.finish();
        assert_eq!(k.body.len(), 1);
    }

    #[test]
    fn shared_alloc_aligns() {
        let mut b = KernelBuilder::new("k");
        let o1 = b.shared_alloc(20);
        let o2 = b.shared_alloc(4);
        assert_eq!(o1, 0);
        assert_eq!(o2, 32); // 20 rounded up to 32
        assert_eq!(b.finish().shared_bytes, 36);
    }

    #[test]
    fn ld_param_uses_slot_offsets() {
        let mut b = KernelBuilder::new("k");
        b.param("a", Ty::U64);
        b.param("n", Ty::S32);
        let _ = b.ld_param(1, Ty::S32);
        let k = b.finish();
        match k.body[0] {
            Inst::Ld { addr, .. } => assert_eq!(addr.offset, 8),
            _ => panic!("expected ld.param"),
        }
    }
}
