//! Stable content hashing for kernels.
//!
//! [`kernel_hash`] produces a 64-bit FNV-1a digest over *every* field of a
//! [`Kernel`] — name, parameters, register declarations, instruction stream
//! (including immediates, bit-exact for floats), and the shared/local/
//! physical-register footprint. Two kernels hash equal iff they are
//! structurally identical, so the digest is a sound key for the simulator's
//! per-session code cache: a campaign that builds the same kernel twice
//! decodes it once.
//!
//! The hash is hand-rolled rather than derived from a serialized form:
//! text encodings are not stable for floats (`NaN`, `-0.0`, shortest-repr
//! formatting), while hashing `f64::to_bits` is. Enum variants hash as
//! fixed one-byte tags, so the digest is independent of host endianness
//! quirks in discriminant representation (all multi-byte scalars are fed
//! in little-endian order).

use crate::inst::{Address, AtomOp, CmpOp, Inst, Op1, Op2, Op3, TexRef};
use crate::kernel::Kernel;
use crate::reg::{Operand, Reg, Special};
use crate::ty::{Space, Ty};

/// 64-bit FNV-1a accumulator.
#[derive(Clone, Copy, Debug)]
struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    #[inline]
    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(Self::PRIME);
    }

    fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }

    fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Length-prefixed string (prefix-free against field concatenation).
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }
}

const fn ty_tag(t: Ty) -> u8 {
    match t {
        Ty::Pred => 0,
        Ty::B8 => 1,
        Ty::B16 => 2,
        Ty::B32 => 3,
        Ty::B64 => 4,
        Ty::S32 => 5,
        Ty::S64 => 6,
        Ty::U32 => 7,
        Ty::U64 => 8,
        Ty::F32 => 9,
        Ty::F64 => 10,
    }
}

const fn space_tag(s: Space) -> u8 {
    match s {
        Space::Global => 0,
        Space::Shared => 1,
        Space::Local => 2,
        Space::Const => 3,
        Space::Param => 4,
    }
}

const fn op1_tag(o: Op1) -> u8 {
    match o {
        Op1::Neg => 0,
        Op1::Abs => 1,
        Op1::Not => 2,
        Op1::Sqrt => 3,
        Op1::Rsqrt => 4,
        Op1::Rcp => 5,
        Op1::Sin => 6,
        Op1::Cos => 7,
        Op1::Ex2 => 8,
        Op1::Lg2 => 9,
    }
}

const fn op2_tag(o: Op2) -> u8 {
    match o {
        Op2::Add => 0,
        Op2::Sub => 1,
        Op2::Mul => 2,
        Op2::Div => 3,
        Op2::Rem => 4,
        Op2::Min => 5,
        Op2::Max => 6,
        Op2::And => 7,
        Op2::Or => 8,
        Op2::Xor => 9,
        Op2::Shl => 10,
        Op2::Shr => 11,
    }
}

const fn op3_tag(o: Op3) -> u8 {
    match o {
        Op3::Mad => 0,
        Op3::Fma => 1,
    }
}

const fn cmp_tag(c: CmpOp) -> u8 {
    match c {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

const fn atom_tag(a: AtomOp) -> u8 {
    match a {
        AtomOp::Add => 0,
        AtomOp::Min => 1,
        AtomOp::Max => 2,
        AtomOp::Exch => 3,
        AtomOp::Cas => 4,
    }
}

const fn special_tag(s: Special) -> u8 {
    match s {
        Special::TidX => 0,
        Special::TidY => 1,
        Special::TidZ => 2,
        Special::NtidX => 3,
        Special::NtidY => 4,
        Special::NtidZ => 5,
        Special::CtaidX => 6,
        Special::CtaidY => 7,
        Special::CtaidZ => 8,
        Special::NctaidX => 9,
        Special::NctaidY => 10,
        Special::NctaidZ => 11,
        Special::LaneId => 12,
        Special::WarpId => 13,
        Special::WarpSize => 14,
    }
}

fn hash_reg(h: &mut Fnv, r: Reg) {
    h.u32(r.0);
}

fn hash_operand(h: &mut Fnv, o: Operand) {
    match o {
        Operand::Reg(r) => {
            h.byte(0);
            hash_reg(h, r);
        }
        Operand::ImmI(v) => {
            h.byte(1);
            h.i64(v);
        }
        Operand::ImmF(v) => {
            h.byte(2);
            h.u64(v.to_bits());
        }
        Operand::Special(s) => {
            h.byte(3);
            h.byte(special_tag(s));
        }
    }
}

fn hash_addr(h: &mut Fnv, a: Address) {
    hash_operand(h, a.base);
    h.i64(a.offset);
}

fn hash_inst(h: &mut Fnv, inst: &Inst) {
    match *inst {
        Inst::Label(l) => {
            h.byte(0);
            h.u32(l.0);
        }
        Inst::Mov { ty, d, a } => {
            h.byte(1);
            h.byte(ty_tag(ty));
            hash_reg(h, d);
            hash_operand(h, a);
        }
        Inst::Cvt { dty, sty, d, a } => {
            h.byte(2);
            h.byte(ty_tag(dty));
            h.byte(ty_tag(sty));
            hash_reg(h, d);
            hash_operand(h, a);
        }
        Inst::Un { op, ty, d, a } => {
            h.byte(3);
            h.byte(op1_tag(op));
            h.byte(ty_tag(ty));
            hash_reg(h, d);
            hash_operand(h, a);
        }
        Inst::Bin { op, ty, d, a, b } => {
            h.byte(4);
            h.byte(op2_tag(op));
            h.byte(ty_tag(ty));
            hash_reg(h, d);
            hash_operand(h, a);
            hash_operand(h, b);
        }
        Inst::Tern { op, ty, d, a, b, c } => {
            h.byte(5);
            h.byte(op3_tag(op));
            h.byte(ty_tag(ty));
            hash_reg(h, d);
            hash_operand(h, a);
            hash_operand(h, b);
            hash_operand(h, c);
        }
        Inst::Setp { cmp, ty, d, a, b } => {
            h.byte(6);
            h.byte(cmp_tag(cmp));
            h.byte(ty_tag(ty));
            hash_reg(h, d);
            hash_operand(h, a);
            hash_operand(h, b);
        }
        Inst::Selp { ty, d, a, b, p } => {
            h.byte(7);
            h.byte(ty_tag(ty));
            hash_reg(h, d);
            hash_operand(h, a);
            hash_operand(h, b);
            hash_reg(h, p);
        }
        Inst::Ld { space, ty, d, addr } => {
            h.byte(8);
            h.byte(space_tag(space));
            h.byte(ty_tag(ty));
            hash_reg(h, d);
            hash_addr(h, addr);
        }
        Inst::St { space, ty, addr, a } => {
            h.byte(9);
            h.byte(space_tag(space));
            h.byte(ty_tag(ty));
            hash_addr(h, addr);
            hash_operand(h, a);
        }
        Inst::Tex { ty, d, tex, idx } => {
            h.byte(10);
            h.byte(ty_tag(ty));
            hash_reg(h, d);
            let TexRef(slot) = tex;
            h.byte(slot);
            hash_operand(h, idx);
        }
        Inst::Atom {
            space,
            op,
            ty,
            d,
            addr,
            b,
            c,
        } => {
            h.byte(11);
            h.byte(space_tag(space));
            h.byte(atom_tag(op));
            h.byte(ty_tag(ty));
            hash_reg(h, d);
            hash_addr(h, addr);
            hash_operand(h, b);
            hash_operand(h, c);
        }
        Inst::Bra { target, pred } => {
            h.byte(12);
            h.u32(target.0);
            match pred {
                None => h.byte(0),
                Some((p, pol)) => {
                    h.byte(1);
                    hash_reg(h, p);
                    h.byte(pol as u8);
                }
            }
        }
        Inst::Ssy { target } => {
            h.byte(13);
            h.u32(target.0);
        }
        Inst::SyncPoint => h.byte(14),
        Inst::Bar => h.byte(15),
        Inst::Ret => h.byte(16),
    }
}

/// Stable 64-bit content hash of a kernel (see the module docs).
pub fn kernel_hash(k: &Kernel) -> u64 {
    let mut h = Fnv::new();
    h.str(&k.name);
    h.u64(k.params.len() as u64);
    for p in &k.params {
        h.str(&p.name);
        h.byte(ty_tag(p.ty));
    }
    h.u64(k.regs.len() as u64);
    for &r in &k.regs {
        h.byte(ty_tag(r));
    }
    h.u64(k.body.len() as u64);
    for inst in &k.body {
        hash_inst(&mut h, inst);
    }
    h.u32(k.shared_bytes);
    h.u32(k.local_bytes);
    h.u32(k.phys_regs);
    h.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::LabelId;

    fn sample() -> Kernel {
        let mut k = Kernel::new("k");
        k.regs = vec![Ty::F32, Ty::S32, Ty::Pred];
        k.body = vec![
            Inst::Mov {
                ty: Ty::F32,
                d: Reg(0),
                a: Operand::ImmF(1.5),
            },
            Inst::Setp {
                cmp: CmpOp::Lt,
                ty: Ty::S32,
                d: Reg(2),
                a: Operand::Reg(Reg(1)),
                b: Operand::ImmI(4),
            },
            Inst::Bra {
                target: LabelId(0),
                pred: Some((Reg(2), true)),
            },
            Inst::Label(LabelId(0)),
            Inst::Ret,
        ];
        k
    }

    #[test]
    fn identical_kernels_hash_equal() {
        assert_eq!(kernel_hash(&sample()), kernel_hash(&sample()));
    }

    #[test]
    fn any_field_change_changes_the_hash() {
        let base = kernel_hash(&sample());
        let mut k = sample();
        k.name = "k2".into();
        assert_ne!(kernel_hash(&k), base);
        let mut k = sample();
        k.shared_bytes = 64;
        assert_ne!(kernel_hash(&k), base);
        let mut k = sample();
        k.body[1] = Inst::Setp {
            cmp: CmpOp::Le,
            ty: Ty::S32,
            d: Reg(2),
            a: Operand::Reg(Reg(1)),
            b: Operand::ImmI(4),
        };
        assert_ne!(kernel_hash(&k), base);
        // Immediates are hashed bit-exactly, including float payloads.
        let mut k = sample();
        k.body[0] = Inst::Mov {
            ty: Ty::F32,
            d: Reg(0),
            a: Operand::ImmF(-1.5),
        };
        assert_ne!(kernel_hash(&k), base);
    }

    #[test]
    fn float_immediates_distinguish_zero_signs() {
        let mut a = sample();
        a.body[0] = Inst::Mov {
            ty: Ty::F32,
            d: Reg(0),
            a: Operand::ImmF(0.0),
        };
        let mut b = sample();
        b.body[0] = Inst::Mov {
            ty: Ty::F32,
            d: Reg(0),
            a: Operand::ImmF(-0.0),
        };
        assert_ne!(kernel_hash(&a), kernel_hash(&b));
    }
}
