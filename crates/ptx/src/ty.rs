//! Scalar types of the virtual ISA.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Scalar type of a register or memory access.
///
/// The untyped bit types (`B32`/`B64`) are used by `mov` and the logic
/// instructions; the signed/unsigned/float types select the semantics of
/// arithmetic instructions, exactly as PTX type suffixes do.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Ty {
    /// One-bit predicate register type.
    Pred,
    /// Untyped 8-bit value (byte loads/stores).
    B8,
    /// Untyped 16-bit value.
    B16,
    /// Untyped 32-bit value.
    B32,
    /// Untyped 64-bit value.
    B64,
    /// Signed 32-bit integer.
    S32,
    /// Signed 64-bit integer.
    S64,
    /// Unsigned 32-bit integer.
    U32,
    /// Unsigned 64-bit integer.
    U64,
    /// IEEE-754 single precision.
    F32,
    /// IEEE-754 double precision.
    F64,
}

impl Ty {
    /// Size of a value of this type in memory, in bytes.
    ///
    /// Predicates live only in registers and have no memory size; they are
    /// reported as 1 byte for bookkeeping purposes.
    pub const fn size_bytes(self) -> u32 {
        match self {
            Ty::Pred | Ty::B8 => 1,
            Ty::B16 => 2,
            Ty::B32 | Ty::S32 | Ty::U32 | Ty::F32 => 4,
            Ty::B64 | Ty::S64 | Ty::U64 | Ty::F64 => 8,
        }
    }

    /// Whether this is one of the floating-point types.
    pub const fn is_float(self) -> bool {
        matches!(self, Ty::F32 | Ty::F64)
    }

    /// Whether this is a signed integer type.
    pub const fn is_signed_int(self) -> bool {
        matches!(self, Ty::S32 | Ty::S64)
    }

    /// Whether this is an unsigned integer or untyped bit type.
    pub const fn is_unsigned_or_bits(self) -> bool {
        matches!(
            self,
            Ty::U32 | Ty::U64 | Ty::B8 | Ty::B16 | Ty::B32 | Ty::B64
        )
    }

    /// Whether this type occupies a 64-bit register.
    pub const fn is_wide(self) -> bool {
        matches!(self, Ty::B64 | Ty::S64 | Ty::U64 | Ty::F64)
    }

    /// The PTX type suffix, e.g. `f32` for [`Ty::F32`].
    pub const fn suffix(self) -> &'static str {
        match self {
            Ty::Pred => "pred",
            Ty::B8 => "b8",
            Ty::B16 => "b16",
            Ty::B32 => "b32",
            Ty::B64 => "b64",
            Ty::S32 => "s32",
            Ty::S64 => "s64",
            Ty::U32 => "u32",
            Ty::U64 => "u64",
            Ty::F32 => "f32",
            Ty::F64 => "f64",
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

/// Memory state spaces, as in PTX.
///
/// The paper's Table V groups loads/stores by state space (`ld.param`,
/// `ld.local`, `ld.shared`, `ld.const`, `ld.global`, ...); the simulator
/// gives each space its own cost model (coalescing for `global`, bank
/// conflicts for `shared`, broadcast for `const`, spill traffic for `local`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Space {
    /// Device memory, visible to all threads; coalescing applies.
    Global,
    /// Per-block scratchpad ("shared memory" in CUDA, "local memory" in
    /// OpenCL terminology — see the paper's Table I term mapping).
    Shared,
    /// Per-thread spill space, physically in device memory.
    Local,
    /// Read-only constant memory, served by the constant cache.
    Const,
    /// Kernel parameter space.
    Param,
}

impl Space {
    /// The PTX state-space suffix, e.g. `global`.
    pub const fn suffix(self) -> &'static str {
        match self {
            Space::Global => "global",
            Space::Shared => "shared",
            Space::Local => "local",
            Space::Const => "const",
            Space::Param => "param",
        }
    }
}

impl fmt::Display for Space {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_ptx() {
        assert_eq!(Ty::F32.size_bytes(), 4);
        assert_eq!(Ty::F64.size_bytes(), 8);
        assert_eq!(Ty::S32.size_bytes(), 4);
        assert_eq!(Ty::U64.size_bytes(), 8);
        assert_eq!(Ty::B8.size_bytes(), 1);
        assert_eq!(Ty::B16.size_bytes(), 2);
    }

    #[test]
    fn classification() {
        assert!(Ty::F32.is_float());
        assert!(!Ty::S32.is_float());
        assert!(Ty::S64.is_signed_int());
        assert!(Ty::B32.is_unsigned_or_bits());
        assert!(Ty::U64.is_wide());
        assert!(!Ty::U32.is_wide());
    }

    #[test]
    fn display_suffixes() {
        assert_eq!(Ty::F32.to_string(), "f32");
        assert_eq!(Space::Global.to_string(), "global");
        assert_eq!(Space::Shared.to_string(), "shared");
    }
}
