//! # gpucmp-ptx — a PTX-like virtual ISA
//!
//! This crate defines the intermediate representation that the two front-end
//! compilers of `gpucmp-compiler` lower kernels into, and that the SIMT
//! interpreter of `gpucmp-sim` executes. It plays the role that NVIDIA's
//! PTX ("Parallel Thread Execution") virtual machine and ISA play in the
//! paper's development flow (step 5 of the eight-step fair-comparison model).
//!
//! The ISA is deliberately close to PTX 2.x in spirit:
//!
//! - typed virtual registers ([`Reg`]) in an unbounded register file,
//! - state spaces (`global`, `shared`, `local`, `const`, `param`) on loads
//!   and stores,
//! - the same instruction classes the paper's Table V tallies: arithmetic
//!   (`add`, `sub`, `mul`, `div`, `fma`, `mad`, `neg`, ...), logic (`and`,
//!   `or`, `xor`, `not`), shifts (`shl`, `shr`), data movement (`mov`, `cvt`,
//!   `ld.*`, `st.*`), flow control (`setp`, `selp`, `bra`) and
//!   synchronization (`bar.sync`),
//! - special registers (`%tid`, `%ntid`, `%ctaid`, `%nctaid`, `%laneid`,
//!   `%warpid`) read through `mov`,
//! - texture fetches (`tex`) against texture references bound by the host
//!   runtime.
//!
//! One deviation from real PTX: because all our kernels are produced from a
//! structured AST, divergence is expressed with explicit reconvergence
//! markers — [`Inst::Ssy`] pushes a reconvergence point and [`Inst::SyncPoint`]
//! reconverges — mirroring the `SSY`/`.S` mechanism of NVIDIA's SASS rather
//! than leaving reconvergence analysis to the simulator.
//!
//! The [`stats`] module computes the per-opcode static instruction counts
//! used to regenerate the paper's Table V.

pub mod builder;
pub mod display;
pub mod hash;
pub mod inst;
pub mod kernel;
pub mod reg;
pub mod stats;
pub mod ty;
pub mod validate;

pub use builder::KernelBuilder;
pub use hash::kernel_hash;
pub use inst::{Address, AtomOp, CmpOp, Inst, Op1, Op2, Op3, TexRef};
pub use kernel::{ConstSegment, Kernel, LabelId, Module, Param, ResolvedKernel};
pub use reg::{Operand, Reg, Special};
pub use stats::{classify, InstClass, InstStats};
pub use ty::{Space, Ty};
pub use validate::{validate_kernel, ValidateError};
