//! Registers, special registers and instruction operands.

use crate::ty::Ty;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A virtual register index.
///
/// The front-ends allocate an unbounded virtual register file; the `ptxas`
/// backend in `gpucmp-compiler` later maps virtual registers onto the
/// device's physical budget, spilling the excess to `local` memory. The
/// register's type is recorded in [`crate::Kernel::regs`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Reg(pub u32);

impl Reg {
    /// Index into the kernel's register declaration table.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%r{}", self.0)
    }
}

/// Special (read-only) registers, read via `mov`.
///
/// `%tid`/`%ntid`/`%ctaid`/`%nctaid` follow CUDA terminology; the OpenCL
/// front-end lowers `get_local_id` and friends onto the same registers (the
/// paper's Table I gives the term correspondence). `%laneid` and `%warpid`
/// are derived from the *hardware* warp/wavefront width of the executing
/// device — this distinction is what makes the paper's warp-size-dependent
/// radix-sort kernel mis-behave on 64-wide wavefront devices (Table VI "FL").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Special {
    /// Thread index within the block, x/y/z.
    TidX,
    /// Thread index within the block, y.
    TidY,
    /// Thread index within the block, z.
    TidZ,
    /// Block size, x.
    NtidX,
    /// Block size, y.
    NtidY,
    /// Block size, z.
    NtidZ,
    /// Block index within the grid, x.
    CtaidX,
    /// Block index within the grid, y.
    CtaidY,
    /// Block index within the grid, z.
    CtaidZ,
    /// Grid size in blocks, x.
    NctaidX,
    /// Grid size in blocks, y.
    NctaidY,
    /// Grid size in blocks, z.
    NctaidZ,
    /// Lane index within the hardware warp/wavefront.
    LaneId,
    /// Hardware warp/wavefront index within the block
    /// (= linear tid / hardware wavefront width).
    WarpId,
    /// The hardware warp/wavefront width of the executing device
    /// (32 on NVIDIA GPUs, 64 on ATI wavefront devices in the paper).
    WarpSize,
}

impl Special {
    /// The PTX-style name, e.g. `%tid.x`.
    pub const fn name(self) -> &'static str {
        match self {
            Special::TidX => "%tid.x",
            Special::TidY => "%tid.y",
            Special::TidZ => "%tid.z",
            Special::NtidX => "%ntid.x",
            Special::NtidY => "%ntid.y",
            Special::NtidZ => "%ntid.z",
            Special::CtaidX => "%ctaid.x",
            Special::CtaidY => "%ctaid.y",
            Special::CtaidZ => "%ctaid.z",
            Special::NctaidX => "%nctaid.x",
            Special::NctaidY => "%nctaid.y",
            Special::NctaidZ => "%nctaid.z",
            Special::LaneId => "%laneid",
            Special::WarpId => "%warpid",
            Special::WarpSize => "WARP_SZ",
        }
    }
}

impl fmt::Display for Special {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An instruction operand: a register, an immediate, or a special register.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Operand {
    /// A virtual register.
    Reg(Reg),
    /// An integer immediate (sign-extended into the operand type).
    ImmI(i64),
    /// A floating-point immediate.
    ImmF(f64),
    /// A special register.
    Special(Special),
}

impl Operand {
    /// Convenience: is this operand a register?
    pub const fn as_reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            _ => None,
        }
    }

    /// Convenience: is this operand a compile-time integer constant?
    pub const fn as_imm_i(self) -> Option<i64> {
        match self {
            Operand::ImmI(v) => Some(v),
            _ => None,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::ImmI(v)
    }
}

impl From<i32> for Operand {
    fn from(v: i32) -> Self {
        Operand::ImmI(v as i64)
    }
}

impl From<u32> for Operand {
    fn from(v: u32) -> Self {
        Operand::ImmI(v as i64)
    }
}

impl From<f32> for Operand {
    fn from(v: f32) -> Self {
        Operand::ImmF(v as f64)
    }
}

impl From<f64> for Operand {
    fn from(v: f64) -> Self {
        Operand::ImmF(v)
    }
}

impl From<Special> for Operand {
    fn from(s: Special) -> Self {
        Operand::Special(s)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::ImmI(v) => write!(f, "{v}"),
            Operand::ImmF(v) => write!(f, "{v:?}"),
            Operand::Special(s) => write!(f, "{s}"),
        }
    }
}

/// A register declaration: its scalar [`Ty`].
pub type RegDecl = Ty;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_conversions() {
        assert_eq!(Operand::from(Reg(3)).as_reg(), Some(Reg(3)));
        assert_eq!(Operand::from(7i32).as_imm_i(), Some(7));
        assert_eq!(Operand::from(7u32).as_imm_i(), Some(7));
        assert_eq!(Operand::from(1.5f32), Operand::ImmF(1.5));
        assert_eq!(Operand::Reg(Reg(1)).as_imm_i(), None);
    }

    #[test]
    fn special_names() {
        assert_eq!(Special::TidX.name(), "%tid.x");
        assert_eq!(Special::WarpId.name(), "%warpid");
        assert_eq!(Special::NctaidZ.to_string(), "%nctaid.z");
    }

    #[test]
    fn reg_display() {
        assert_eq!(Reg(12).to_string(), "%r12");
        assert_eq!(Reg(12).index(), 12);
    }
}
