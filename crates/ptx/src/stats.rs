//! Static instruction statistics — the data behind the paper's Table V.
//!
//! The paper tallies the PTX of the FFT "forward" kernel by opcode and by
//! class (Arithmetic, Logic, Shift, Data Movement, Flow Control,
//! Synchronization). [`InstStats::of_kernel`] computes the same static
//! counts for any [`Kernel`].

use crate::inst::{Inst, Op1, Op3};
use crate::kernel::Kernel;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The instruction classes of Table V.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum InstClass {
    /// `add sub mul div fma mad neg` … (plus `abs`, `min`, `max`, SFU ops).
    Arithmetic,
    /// `and or not xor`.
    Logic,
    /// `shl shr`.
    Shift,
    /// `cvt mov ld.* st.* tex`.
    DataMovement,
    /// `setp selp bra`.
    FlowControl,
    /// `bar`.
    Synchronization,
    /// `ret`, atomics, and anything Table V doesn't break out.
    Other,
}

impl InstClass {
    /// Human-readable class name as printed in Table V.
    pub const fn name(self) -> &'static str {
        match self {
            InstClass::Arithmetic => "Arithmetic",
            InstClass::Logic => "Logic",
            InstClass::Shift => "Shift",
            InstClass::DataMovement => "Data Movement",
            InstClass::FlowControl => "Flow Control",
            InstClass::Synchronization => "Synchronization",
            InstClass::Other => "Other",
        }
    }
}

impl fmt::Display for InstClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Classify one instruction and give its Table-V row mnemonic.
///
/// Returns `None` for pseudo-instructions (`Label`, `Ssy`, `SyncPoint`)
/// which have no PTX equivalent and are not counted.
pub fn classify(inst: &Inst) -> Option<(InstClass, String)> {
    let r = match inst {
        Inst::Label(_) | Inst::Ssy { .. } | Inst::SyncPoint => return None,
        Inst::Mov { .. } => (InstClass::DataMovement, "mov".to_string()),
        Inst::Cvt { .. } => (InstClass::DataMovement, "cvt".to_string()),
        Inst::Un { op, .. } => match op {
            Op1::Not => (InstClass::Logic, "not".to_string()),
            _ => (InstClass::Arithmetic, op.mnemonic().to_string()),
        },
        Inst::Bin { op, .. } => {
            if op.is_logic() {
                (InstClass::Logic, op.mnemonic().to_string())
            } else if op.is_shift() {
                (InstClass::Shift, op.mnemonic().to_string())
            } else {
                (InstClass::Arithmetic, op.mnemonic().to_string())
            }
        }
        Inst::Tern { op, .. } => (
            InstClass::Arithmetic,
            match op {
                Op3::Mad => "mad".to_string(),
                Op3::Fma => "fma".to_string(),
            },
        ),
        Inst::Setp { .. } => (InstClass::FlowControl, "setp".to_string()),
        Inst::Selp { .. } => (InstClass::FlowControl, "selp".to_string()),
        Inst::Bra { .. } => (InstClass::FlowControl, "bra".to_string()),
        Inst::Ld { space, .. } => (InstClass::DataMovement, format!("ld.{}", space.suffix())),
        Inst::St { space, .. } => (InstClass::DataMovement, format!("st.{}", space.suffix())),
        Inst::Tex { .. } => (InstClass::DataMovement, "tex".to_string()),
        Inst::Atom { space, op, .. } => (
            InstClass::Other,
            format!("atom.{}.{}", space.suffix(), op.mnemonic()),
        ),
        Inst::Bar => (InstClass::Synchronization, "bar".to_string()),
        Inst::Ret => (InstClass::Other, "ret".to_string()),
    };
    Some(r)
}

/// Static per-opcode instruction counts for one kernel.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstStats {
    /// Counts per (class, mnemonic) row, e.g. `(DataMovement, "ld.global")`.
    pub rows: BTreeMap<(InstClass, String), u64>,
}

impl InstStats {
    /// Compute the static counts of `kernel`.
    pub fn of_kernel(kernel: &Kernel) -> Self {
        let mut rows = BTreeMap::new();
        for inst in &kernel.body {
            if let Some(key) = classify(inst) {
                *rows.entry(key).or_insert(0) += 1;
            }
        }
        InstStats { rows }
    }

    /// Count of one specific mnemonic (e.g. `"mov"` or `"ld.global"`).
    pub fn count(&self, mnemonic: &str) -> u64 {
        self.rows
            .iter()
            .filter(|((_, m), _)| m == mnemonic)
            .map(|(_, c)| *c)
            .sum()
    }

    /// Sub-total for one class, as in Table V's "Sub-total" rows.
    pub fn class_total(&self, class: InstClass) -> u64 {
        self.rows
            .iter()
            .filter(|((c, _), _)| *c == class)
            .map(|(_, c)| *c)
            .sum()
    }

    /// Total instruction count.
    pub fn total(&self) -> u64 {
        self.rows.values().sum()
    }

    /// Count of loads from global memory — the paper highlights that these
    /// "time-consuming" instructions were identical across front-ends.
    pub fn ld_global(&self) -> u64 {
        self.count("ld.global")
    }

    /// Count of stores to global memory.
    pub fn st_global(&self) -> u64 {
        self.count("st.global")
    }

    /// Render rows for a side-by-side comparison of two kernels, in the
    /// layout of Table V.
    pub fn comparison_table(label_a: &str, a: &InstStats, label_b: &str, b: &InstStats) -> String {
        use std::fmt::Write as _;
        let mut keys: Vec<(InstClass, String)> =
            a.rows.keys().chain(b.rows.keys()).cloned().collect();
        keys.sort();
        keys.dedup();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<16} {:<12} {:>10} {:>10}",
            "Class", "Instruction", label_a, label_b
        );
        let mut current_class: Option<InstClass> = None;
        for (class, mnem) in &keys {
            if current_class != Some(*class) {
                if let Some(prev) = current_class {
                    let _ = writeln!(
                        out,
                        "{:<16} {:<12} {:>10} {:>10}",
                        "Sub-total",
                        "",
                        a.class_total(prev),
                        b.class_total(prev)
                    );
                }
                current_class = Some(*class);
            }
            let ca = a.rows.get(&(*class, mnem.clone())).copied().unwrap_or(0);
            let cb = b.rows.get(&(*class, mnem.clone())).copied().unwrap_or(0);
            let _ = writeln!(
                out,
                "{:<16} {:<12} {:>10} {:>10}",
                class.name(),
                mnem,
                ca,
                cb
            );
        }
        if let Some(prev) = current_class {
            let _ = writeln!(
                out,
                "{:<16} {:<12} {:>10} {:>10}",
                "Sub-total",
                "",
                a.class_total(prev),
                b.class_total(prev)
            );
        }
        let _ = writeln!(
            out,
            "{:<16} {:<12} {:>10} {:>10}",
            "Total",
            "",
            a.total(),
            b.total()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::inst::{Address, CmpOp, Op2};
    use crate::reg::Operand;
    use crate::ty::{Space, Ty};

    fn sample_kernel() -> Kernel {
        let mut b = KernelBuilder::new("s");
        let x = b.bin(Op2::Add, Ty::S32, 1i32, 2i32);
        let y = b.bin(Op2::And, Ty::B32, x, 0xffi32);
        let z = b.bin(Op2::Shl, Ty::B32, y, 2i32);
        let p = b.setp(CmpOp::Lt, Ty::S32, z, 100i32);
        let _s = b.selp(Ty::S32, 1i32, 0i32, p);
        let v = b.ld(Space::Global, Ty::F32, Address::base(Operand::ImmI(0)));
        b.st(Space::Global, Ty::F32, Address::base(Operand::ImmI(8)), v);
        b.bar();
        b.finish()
    }

    #[test]
    fn classes_match_table5_grouping() {
        let stats = InstStats::of_kernel(&sample_kernel());
        assert_eq!(stats.class_total(InstClass::Arithmetic), 1); // add
        assert_eq!(stats.class_total(InstClass::Logic), 1); // and
        assert_eq!(stats.class_total(InstClass::Shift), 1); // shl
        assert_eq!(stats.class_total(InstClass::FlowControl), 2); // setp + selp
        assert_eq!(stats.class_total(InstClass::Synchronization), 1); // bar
        assert_eq!(stats.ld_global(), 1);
        assert_eq!(stats.st_global(), 1);
    }

    #[test]
    fn count_by_mnemonic() {
        let stats = InstStats::of_kernel(&sample_kernel());
        assert_eq!(stats.count("add"), 1);
        assert_eq!(stats.count("ld.global"), 1);
        assert_eq!(stats.count("missing"), 0);
    }

    #[test]
    fn pseudo_instructions_not_counted() {
        let mut b = KernelBuilder::new("p");
        let l = b.new_label();
        b.ssy(l);
        b.place_label(l);
        b.sync();
        let k = b.finish();
        let stats = InstStats::of_kernel(&k);
        // only the implicit ret is counted
        assert_eq!(stats.total(), 1);
        assert_eq!(stats.class_total(InstClass::Other), 1);
    }

    #[test]
    fn comparison_table_renders() {
        let a = InstStats::of_kernel(&sample_kernel());
        let b = InstStats::default();
        let t = InstStats::comparison_table("CUDA", &a, "OpenCL", &b);
        assert!(t.contains("ld.global"));
        assert!(t.contains("Total"));
        assert!(t.contains("CUDA"));
    }
}
