//! Structural validation of kernels.
//!
//! The validator enforces the invariants the SIMT interpreter relies on:
//! resolvable labels, in-range registers, register/instruction type
//! agreement on definitions, and well-nested `ssy`/`sync` divergence
//! regions on every control-flow path (checked conservatively).

use crate::inst::Inst;
use crate::kernel::Kernel;
use crate::reg::Reg;
use crate::ty::Ty;
use std::fmt;

/// A validation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValidateError {
    /// Kernel name.
    pub kernel: String,
    /// Instruction index, if the error is tied to one instruction.
    pub pc: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pc {
            Some(pc) => write!(f, "kernel {}: at pc {}: {}", self.kernel, pc, self.message),
            None => write!(f, "kernel {}: {}", self.kernel, self.message),
        }
    }
}

impl std::error::Error for ValidateError {}

/// Validate a kernel; returns the first problem found.
pub fn validate_kernel(kernel: &Kernel) -> Result<(), ValidateError> {
    let err = |pc: Option<usize>, message: String| ValidateError {
        kernel: kernel.name.clone(),
        pc,
        message,
    };

    // Labels resolve and are unique.
    kernel.resolve().map_err(|message| err(None, message))?;

    if kernel.body.is_empty() {
        return Err(err(None, "empty body".into()));
    }
    if !matches!(kernel.body.last(), Some(Inst::Ret)) {
        return Err(err(None, "body must end with ret".into()));
    }

    let check_reg = |pc: usize, r: Reg| -> Result<Ty, ValidateError> {
        kernel
            .regs
            .get(r.index())
            .copied()
            .ok_or_else(|| err(Some(pc), format!("register {r} not declared")))
    };

    let mut ssy_depth: i64 = 0;
    for (pc, inst) in kernel.body.iter().enumerate() {
        // Register indices in range.
        if let Some(d) = inst.def() {
            let dty = check_reg(pc, d)?;
            // Definition type agreement.
            let expect = match inst {
                Inst::Mov { ty, .. }
                | Inst::Un { ty, .. }
                | Inst::Bin { ty, .. }
                | Inst::Tern { ty, .. }
                | Inst::Selp { ty, .. }
                | Inst::Ld { ty, .. }
                | Inst::Tex { ty, .. }
                | Inst::Atom { ty, .. } => Some(*ty),
                Inst::Cvt { dty, .. } => Some(*dty),
                Inst::Setp { .. } => Some(Ty::Pred),
                _ => None,
            };
            if let Some(expect) = expect {
                if !compatible(dty, expect) {
                    return Err(err(
                        Some(pc),
                        format!("destination {d} declared {dty} but written as {expect}"),
                    ));
                }
            }
        }
        let mut reg_err = None;
        inst.for_each_use(|r| {
            if reg_err.is_none() && kernel.regs.get(r.index()).is_none() {
                reg_err = Some(r);
            }
        });
        if let Some(r) = reg_err {
            return Err(err(Some(pc), format!("use of undeclared register {r}")));
        }

        // Predicate registers where predicates are expected.
        match inst {
            Inst::Selp { p, .. } if check_reg(pc, *p)? != Ty::Pred => {
                return Err(err(Some(pc), "selp guard must be a predicate".into()));
            }
            Inst::Bra {
                pred: Some((p, _)), ..
            } if check_reg(pc, *p)? != Ty::Pred => {
                return Err(err(Some(pc), "branch guard must be a predicate".into()));
            }
            _ => {}
        }

        // Param loads stay within declared slots: the access — at its own
        // width — must fit entirely inside the param block.
        if let Inst::Ld {
            space: crate::ty::Space::Param,
            ty,
            addr,
            ..
        } = inst
        {
            let max = kernel.params.len() as i64 * 8;
            let off = addr.offset + addr.base.as_imm_i().unwrap_or(0);
            let size = ty.size_bytes() as i64;
            if off < 0 || off + size > max {
                return Err(err(
                    Some(pc),
                    format!(
                        "ld.param of {size} bytes at byte {off} outside {} declared slots",
                        kernel.params.len()
                    ),
                ));
            }
        }

        match inst {
            Inst::Ssy { .. } => ssy_depth += 1,
            Inst::SyncPoint => {
                ssy_depth -= 1;
                if ssy_depth < 0 {
                    return Err(err(Some(pc), "sync without matching ssy".into()));
                }
            }
            _ => {}
        }
    }
    if ssy_depth != 0 {
        return Err(err(
            None,
            format!("{ssy_depth} ssy region(s) never reconverge"),
        ));
    }
    Ok(())
}

/// Whether a register declared as `decl` may be written with operand type
/// `used`. Same-width bit/int/float aliasing is allowed (PTX registers are
/// typed loosely the same way).
fn compatible(decl: Ty, used: Ty) -> bool {
    if decl == used {
        return true;
    }
    let width = |t: Ty| match t {
        Ty::Pred => 0,
        Ty::B8 => 1,
        Ty::B16 => 2,
        Ty::B32 | Ty::S32 | Ty::U32 | Ty::F32 => 4,
        Ty::B64 | Ty::S64 | Ty::U64 | Ty::F64 => 8,
    };
    width(decl) == width(used) && decl != Ty::Pred && used != Ty::Pred
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::inst::Address;
    use crate::reg::Operand;
    use crate::ty::{Space, Ty};

    #[test]
    fn valid_kernel_passes() {
        let mut b = KernelBuilder::new("ok");
        b.param("p", Ty::U64);
        let base = b.ld_param(0, Ty::U64);
        let v = b.ld(Space::Global, Ty::F32, Address::base(Operand::Reg(base)));
        b.st(
            Space::Global,
            Ty::F32,
            Address::with_offset(base.into(), 4),
            v,
        );
        let k = b.finish();
        validate_kernel(&k).unwrap();
    }

    #[test]
    fn missing_ret_fails() {
        let mut k = Kernel::new("bad");
        k.body = vec![Inst::Bar];
        assert!(validate_kernel(&k).is_err());
    }

    #[test]
    fn undeclared_register_fails() {
        let mut k = Kernel::new("bad");
        k.body = vec![
            Inst::Mov {
                ty: Ty::S32,
                d: Reg(5),
                a: Operand::ImmI(0),
            },
            Inst::Ret,
        ];
        let e = validate_kernel(&k).unwrap_err();
        assert!(e.message.contains("not declared"));
    }

    #[test]
    fn type_mismatch_fails() {
        let mut k = Kernel::new("bad");
        k.regs = vec![Ty::F64]; // 8-byte
        k.body = vec![
            Inst::Mov {
                ty: Ty::S32, // 4-byte write into 8-byte register
                d: Reg(0),
                a: Operand::ImmI(0),
            },
            Inst::Ret,
        ];
        assert!(validate_kernel(&k).is_err());
    }

    #[test]
    fn same_width_aliasing_allowed() {
        let mut k = Kernel::new("ok");
        k.regs = vec![Ty::B32];
        k.body = vec![
            Inst::Mov {
                ty: Ty::F32,
                d: Reg(0),
                a: Operand::ImmF(1.0),
            },
            Inst::Ret,
        ];
        validate_kernel(&k).unwrap();
    }

    #[test]
    fn unbalanced_ssy_fails() {
        let mut b = KernelBuilder::new("bad");
        let l = b.new_label();
        b.ssy(l);
        b.place_label(l);
        let k = b.finish();
        let e = validate_kernel(&k).unwrap_err();
        assert!(e.message.contains("never reconverge"));
    }

    #[test]
    fn sync_without_ssy_fails() {
        let mut b = KernelBuilder::new("bad");
        b.sync();
        let k = b.finish();
        assert!(validate_kernel(&k).is_err());
    }

    #[test]
    fn ld_param_with_no_declared_params_fails() {
        let mut b = KernelBuilder::new("bad");
        let _ = b.ld_param(0, Ty::U64);
        let k = b.finish();
        let e = validate_kernel(&k).unwrap_err();
        assert!(e.message.contains("outside 0 declared slots"), "{e}");
    }

    #[test]
    fn ld_param_straddling_block_end_fails() {
        // One 8-byte slot; an 8-byte load at byte 4 ends at byte 12.
        let mut b = KernelBuilder::new("bad");
        b.param("p", Ty::U64);
        let _ = b.ld(Space::Param, Ty::U64, Address::absolute(4));
        let k = b.finish();
        let e = validate_kernel(&k).unwrap_err();
        assert!(e.message.contains("ld.param of 8 bytes at byte 4"), "{e}");
    }

    #[test]
    fn ld_param_negative_offset_fails() {
        let mut b = KernelBuilder::new("bad");
        b.param("p", Ty::U64);
        let _ = b.ld(Space::Param, Ty::S32, Address::absolute(-4));
        let k = b.finish();
        assert!(validate_kernel(&k).is_err());
    }

    #[test]
    fn ld_param_filling_last_slot_passes() {
        // A 4-byte load at byte 12 of a two-slot block ends exactly at 16.
        let mut b = KernelBuilder::new("ok");
        b.param("p", Ty::U64);
        b.param("n", Ty::S32);
        let _ = b.ld(Space::Param, Ty::S32, Address::absolute(12));
        let k = b.finish();
        validate_kernel(&k).unwrap();
    }

    #[test]
    fn non_pred_branch_guard_fails() {
        let mut b = KernelBuilder::new("bad");
        let l = b.new_label();
        let r = b.reg(Ty::S32);
        b.bra_if(l, r, true);
        b.place_label(l);
        let k = b.finish();
        let e = validate_kernel(&k).unwrap_err();
        assert!(e.message.contains("predicate"));
    }
}
