//! The Performance Ratio metric (paper Eq. 1) and the similarity band.

use serde::{Deserialize, Serialize};

/// The paper's similarity band: `|1 - PR| < 0.1` means the two programming
/// models perform "similarly".
pub const SIMILARITY_BAND: f64 = 0.1;

/// A single PR measurement:
/// `PR = Performance_OpenCL / Performance_CUDA` (Eq. 1).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Pr(pub f64);

impl Pr {
    /// Build from two normalised performance values (higher = better).
    pub fn from_performance(opencl: f64, cuda: f64) -> Pr {
        Pr(opencl / cuda)
    }

    /// `|1 - PR| < 0.1` — the paper's "similar performance" criterion.
    pub fn is_similar(self) -> bool {
        (1.0 - self.0).abs() < SIMILARITY_BAND
    }

    /// OpenCL strictly better (beyond the band).
    pub fn opencl_wins(self) -> bool {
        self.0 >= 1.0 + SIMILARITY_BAND
    }

    /// CUDA strictly better (beyond the band).
    pub fn cuda_wins(self) -> bool {
        self.0 <= 1.0 - SIMILARITY_BAND
    }

    /// Verdict string for reports.
    pub fn verdict(self) -> &'static str {
        if self.is_similar() {
            "similar"
        } else if self.opencl_wins() {
            "OpenCL wins"
        } else {
            "CUDA wins"
        }
    }
}

impl std::fmt::Display for Pr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_boundaries() {
        assert!(Pr(1.0).is_similar());
        assert!(Pr(1.09).is_similar());
        assert!(Pr(0.91).is_similar());
        assert!(!Pr(1.11).is_similar());
        assert!(Pr(1.11).opencl_wins());
        assert!(Pr(0.89).cuda_wins());
        assert_eq!(Pr(3.2).verdict(), "OpenCL wins");
        assert_eq!(Pr(0.5).verdict(), "CUDA wins");
        assert_eq!(Pr(1.0).verdict(), "similar");
    }

    #[test]
    fn from_performance_direction() {
        // OpenCL 80 GB/s vs CUDA 100 GB/s -> PR = 0.8
        assert_eq!(Pr::from_performance(80.0, 100.0).0, 0.8);
    }
}
