//! # gpucmp-core — the paper's comparison methodology
//!
//! The primary contribution of *"A Comprehensive Performance Comparison of
//! CUDA and OpenCL"* (Fang, Varbanescu & Sips, ICPP 2011) is not a system
//! but a *methodology*: a normalised Performance Ratio metric, a detailed
//! attribution of every CUDA/OpenCL gap to a cause, and an eight-step
//! "fair comparison" model of the GPU application development flow.
//! This crate implements all three:
//!
//! - [`pr`] — the PR metric (Eq. 1) and the `|1 - PR| < 0.1` similarity
//!   band;
//! - [`fair`] — the eight-step model (Fig. 9): per-step build
//!   configurations, step diffs, and fairness verdicts;
//! - [`experiments`] — a registry with one entry per figure/table of the
//!   paper's evaluation, producing the same rows/series from the
//!   simulator-backed benchmark suite;
//! - [`bench_report`] — the profiled 84-run campaign behind the
//!   machine-readable `BENCH_<timestamp>.json` report that CI gates on;
//! - [`sim_speed`] — host wall-clock of the simulator's execution tiers
//!   (interpreter / pre-decoded / fused), the report's speedup matrix.

pub mod bench_report;
pub mod experiments;
pub mod fair;
pub mod pr;
pub mod sim_speed;

pub use fair::{fairness, BuildConfig, FairStep, Fairness, Role};
pub use pr::{Pr, SIMILARITY_BAND};

#[cfg(test)]
mod tests {
    use super::*;
    use experiments::*;
    use gpucmp_benchmarks::Scale;

    #[test]
    fn fig1_fig2_opencl_matches_or_beats_cuda() {
        let f1 = fig1_peak_bandwidth(Scale::Quick);
        for dev in ["GTX280", "GTX480"] {
            let pr = f1.pr(dev).unwrap();
            assert!(pr.0 >= 0.99, "{dev} bandwidth PR {pr}");
        }
        let f2 = fig2_peak_flops(Scale::Quick);
        for dev in ["GTX280", "GTX480"] {
            let pr = f2.pr(dev).unwrap();
            assert!(pr.is_similar(), "{dev} flops PR {pr}");
        }
    }

    #[test]
    fn table5_reproduces_the_papers_asymmetries() {
        use gpucmp_ptx::InstClass;
        let t = table5_ptx_stats();
        assert!(
            t.opencl.class_total(InstClass::Arithmetic) > t.cuda.class_total(InstClass::Arithmetic)
        );
        assert!(
            t.opencl.class_total(InstClass::FlowControl)
                > t.cuda.class_total(InstClass::FlowControl)
        );
        assert!(t.cuda.count("mov") > t.opencl.count("mov"));
        assert_eq!(t.cuda.ld_global(), t.opencl.ld_global());
        assert_eq!(t.cuda.count("bar"), t.opencl.count("bar"));
        // the rendered table has the paper's layout markers
        let text = t.to_string();
        assert!(text.contains("Sub-total"));
        assert!(text.contains("ld.global"));
    }

    #[test]
    fn launch_latency_gap_matches_runtime_constants() {
        let l = launch_latency();
        assert!(l.opencl_ns > l.cuda_ns);
        let diff = l.opencl_ns - l.cuda_ns;
        let expected = gpucmp_runtime::OPENCL_SUBMIT_NS - gpucmp_runtime::CUDA_SUBMIT_NS;
        assert!((diff - expected).abs() < expected * 0.2, "diff {diff}");
    }

    #[test]
    fn table6_quick_smoke() {
        // Quick-scale Table VI: RdxS must FL on the wavefront-64 devices
        // and every Cell/BE failure must be an abort, not silence.
        let t = table6_portability(Scale::Quick);
        let col = t.benches.iter().position(|&b| b == "RdxS").unwrap();
        let hd = &t.rows.iter().find(|(d, _)| *d == "HD5870").unwrap().1;
        assert_eq!(hd[col], PortCell::Fl, "RdxS on HD5870");
        let cpu = &t.rows.iter().find(|(d, _)| *d == "Intel920").unwrap().1;
        assert_eq!(cpu[col], PortCell::Fl, "RdxS on Intel920");
        // Scan and Reduce must port fine everywhere
        for name in ["Scan", "Reduce"] {
            let c = t.benches.iter().position(|&b| b == name).unwrap();
            for (dev, cells) in &t.rows {
                assert!(
                    matches!(cells[c], PortCell::Ok(_)),
                    "{name} on {dev}: {:?}",
                    cells[c]
                );
            }
        }
    }
}
