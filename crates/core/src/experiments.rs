//! The experiment registry: one function per figure/table of the paper's
//! evaluation, each returning structured data whose `Display` prints the
//! same rows/series the paper reports.

use crate::pr::Pr;
use gpucmp_benchmarks::common::{Benchmark, Scale, Verify};
use gpucmp_benchmarks::{devicemem::DeviceMemory, maxflops::MaxFlops, mxm::MxM};
use gpucmp_benchmarks::{fdtd::Fdtd, fft::Fft, md::Md, sobel::Sobel, spmv::Spmv};
use gpucmp_compiler::Api;
use gpucmp_ptx::InstStats;
use gpucmp_runtime::{ClStatus, Cuda, FaultPlan, Gpu, GpuExt, OpenCl, RtError};
use gpucmp_sim::{DeviceSpec, ExecOptions, ExecTier};
use rayon::prelude::*;
use std::fmt;

/// Simulation options for experiment runs, from the environment.
///
/// `GPUCMP_SIM_THREADS=N` simulates thread blocks on `N` host workers
/// (`0` = one per available core). Unset or unparsable means serial.
/// `GPUCMP_SIM_TIER={interp,decoded,fused}` selects the execution tier
/// (default: fused). Both are purely host-side speed knobs: every
/// reported number is bit-identical for every setting.
pub fn exec_options_from_env() -> ExecOptions {
    std::env::var("GPUCMP_SIM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map(ExecOptions::with_threads)
        .unwrap_or_default()
        .tier(ExecTier::from_env())
}

/// Run a benchmark through the CUDA runtime on `device`.
pub fn run_cuda(
    bench: &dyn Benchmark,
    device: &DeviceSpec,
) -> Result<gpucmp_benchmarks::RunOutput, RtError> {
    run_cuda_with(bench, device, None)
}

/// [`run_cuda`] with a fault-injection plan attached to the session
/// before the benchmark starts.
pub fn run_cuda_with(
    bench: &dyn Benchmark,
    device: &DeviceSpec,
    plan: Option<FaultPlan>,
) -> Result<gpucmp_benchmarks::RunOutput, RtError> {
    run_cuda_with_exec(bench, device, plan, exec_options_from_env())
}

/// [`run_cuda_with`] with explicit [`ExecOptions`] instead of the
/// environment-derived ones. Lets differential tests pin the execution
/// tier and worker count without mutating process-global state.
pub fn run_cuda_with_exec(
    bench: &dyn Benchmark,
    device: &DeviceSpec,
    plan: Option<FaultPlan>,
    exec: ExecOptions,
) -> Result<gpucmp_benchmarks::RunOutput, RtError> {
    let mut gpu = Cuda::new(device.clone())?;
    gpu.set_exec_options(exec);
    gpu.set_fault_plan(plan);
    bench.run(&mut gpu)
}

/// Run a benchmark through the OpenCL runtime on `device`.
pub fn run_opencl(
    bench: &dyn Benchmark,
    device: &DeviceSpec,
) -> Result<gpucmp_benchmarks::RunOutput, RtError> {
    run_opencl_with(bench, device, None)
}

/// [`run_opencl`] with a fault-injection plan attached to the session
/// before the benchmark starts.
pub fn run_opencl_with(
    bench: &dyn Benchmark,
    device: &DeviceSpec,
    plan: Option<FaultPlan>,
) -> Result<gpucmp_benchmarks::RunOutput, RtError> {
    run_opencl_with_exec(bench, device, plan, exec_options_from_env())
}

/// [`run_opencl_with`] with explicit [`ExecOptions`] instead of the
/// environment-derived ones.
pub fn run_opencl_with_exec(
    bench: &dyn Benchmark,
    device: &DeviceSpec,
    plan: Option<FaultPlan>,
    exec: ExecOptions,
) -> Result<gpucmp_benchmarks::RunOutput, RtError> {
    let mut gpu = OpenCl::create_any(device.clone());
    gpu.set_exec_options(exec);
    gpu.set_fault_plan(plan);
    bench.run(&mut gpu)
}

// ----------------------------------------------------------------------
// Figs 1 & 2 — peak bandwidth / peak FLOPS
// ----------------------------------------------------------------------

/// One achieved-vs-theoretical peak measurement.
#[derive(Clone, Debug)]
pub struct PeakRow {
    /// Device name.
    pub device: &'static str,
    /// API name.
    pub api: &'static str,
    /// Achieved value.
    pub achieved: f64,
    /// Theoretical peak.
    pub theoretical: f64,
}

impl PeakRow {
    /// Achieved fraction of the theoretical peak.
    pub fn fraction(&self) -> f64 {
        self.achieved / self.theoretical
    }
}

/// Result of the Fig. 1 / Fig. 2 experiments.
#[derive(Clone, Debug)]
pub struct PeakComparison {
    /// Figure title.
    pub title: &'static str,
    /// Measurement unit.
    pub unit: &'static str,
    /// Rows (device x API).
    pub rows: Vec<PeakRow>,
}

impl PeakComparison {
    /// PR (OpenCL/CUDA) for a device.
    pub fn pr(&self, device: &str) -> Option<Pr> {
        let cuda = self
            .rows
            .iter()
            .find(|r| r.device == device && r.api == "CUDA")?;
        let ocl = self
            .rows
            .iter()
            .find(|r| r.device == device && r.api == "OpenCL")?;
        Some(Pr::from_performance(ocl.achieved, cuda.achieved))
    }
}

impl fmt::Display for PeakComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        writeln!(
            f,
            "{:<10} {:<8} {:>12} {:>12} {:>8}",
            "Device", "API", self.unit, "theoretical", "fraction"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<10} {:<8} {:>12.1} {:>12.1} {:>7.1}%",
                r.device,
                r.api,
                r.achieved,
                r.theoretical,
                r.fraction() * 100.0
            )?;
        }
        Ok(())
    }
}

/// Fig. 1 — achieved vs. theoretical peak device-memory bandwidth on
/// GTX280 and GTX480, CUDA vs OpenCL.
pub fn fig1_peak_bandwidth(scale: Scale) -> PeakComparison {
    peak(scale, false)
}

/// Fig. 2 — achieved vs. theoretical peak FLOPS.
pub fn fig2_peak_flops(scale: Scale) -> PeakComparison {
    peak(scale, true)
}

fn peak(scale: Scale, flops: bool) -> PeakComparison {
    let devices = [DeviceSpec::gtx280(), DeviceSpec::gtx480()];
    let mut rows = Vec::new();
    for d in &devices {
        let theoretical = if flops {
            d.theoretical_peak_gflops()
        } else {
            d.theoretical_peak_bandwidth_gbs()
        };
        for api in ["CUDA", "OpenCL"] {
            let out = if flops {
                let b = MaxFlops::new(scale);
                if api == "CUDA" {
                    run_cuda(&b, d)
                } else {
                    run_opencl(&b, d)
                }
            } else {
                let b = DeviceMemory::new(scale);
                if api == "CUDA" {
                    run_cuda(&b, d)
                } else {
                    run_opencl(&b, d)
                }
            }
            .expect("peak benchmark must run on NVIDIA devices");
            rows.push(PeakRow {
                device: d.name,
                api,
                achieved: out.value,
                theoretical,
            });
        }
    }
    PeakComparison {
        title: if flops {
            "Fig 2: peak FLOPS (GFlops/sec)"
        } else {
            "Fig 1: peak device-memory bandwidth (GB/sec)"
        },
        unit: if flops { "GFlops/s" } else { "GB/s" },
        rows,
    }
}

// ----------------------------------------------------------------------
// Fig 3 — PR of all real-world benchmarks
// ----------------------------------------------------------------------

/// One benchmark's PR on one device.
#[derive(Clone, Debug)]
pub struct PrRow {
    /// Benchmark name.
    pub bench: &'static str,
    /// Device name.
    pub device: &'static str,
    /// CUDA metric value.
    pub cuda: f64,
    /// OpenCL metric value.
    pub opencl: f64,
    /// Metric unit.
    pub unit: &'static str,
    /// The PR (Eq. 1, computed on normalised performance).
    pub pr: Pr,
    /// Both outputs verified against the CPU reference?
    pub verified: bool,
}

/// Result of the Fig. 3 experiment.
#[derive(Clone, Debug)]
pub struct Fig3 {
    /// Rows: benchmark x device.
    pub rows: Vec<PrRow>,
}

impl Fig3 {
    /// The PR of `bench` on `device`.
    pub fn pr(&self, bench: &str, device: &str) -> Option<Pr> {
        self.rows
            .iter()
            .find(|r| r.bench == bench && r.device == device)
            .map(|r| r.pr)
    }
}

impl fmt::Display for Fig3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig 3: PR = Perf_OpenCL / Perf_CUDA (unmodified benchmarks)"
        )?;
        writeln!(
            f,
            "{:<8} {:<8} {:>12} {:>12} {:<14} {:>7}  verdict",
            "App", "Device", "CUDA", "OpenCL", "unit", "PR"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<8} {:<8} {:>12.4} {:>12.4} {:<14} {:>7.3}  {}{}",
                r.bench,
                r.device,
                r.cuda,
                r.opencl,
                r.unit,
                r.pr.0,
                r.pr.verdict(),
                if r.verified { "" } else { "  [verify FAILED]" }
            )?;
        }
        Ok(())
    }
}

/// Fig. 3 — run every real-world benchmark, unmodified, on both NVIDIA
/// GPUs with both APIs. Parallelised over (benchmark, device) pairs.
pub fn fig3_performance_ratio(scale: Scale) -> Fig3 {
    let n = gpucmp_benchmarks::real_world(scale).len();
    let pairs: Vec<(usize, &'static str)> = (0..n)
        .flat_map(|i| [(i, "GTX280"), (i, "GTX480")])
        .collect();
    let mut rows: Vec<PrRow> = pairs
        .par_iter()
        .map(|&(i, dev_name)| {
            let bench = &gpucmp_benchmarks::real_world(scale)[i];
            let device = DeviceSpec::by_name(dev_name).unwrap();
            let c = run_cuda(bench.as_ref(), &device).expect("CUDA run");
            let o = run_opencl(bench.as_ref(), &device).expect("OpenCL run");
            PrRow {
                bench: bench.name(),
                device: device.name,
                cuda: c.value,
                opencl: o.value,
                unit: c.metric.unit(),
                pr: Pr::from_performance(o.performance(), c.performance()),
                verified: c.verify.is_pass() && o.verify.is_pass(),
            }
        })
        .collect();
    // deterministic order: benchmark order, then device
    rows.sort_by_key(|r| {
        let bi = gpucmp_benchmarks::real_world(Scale::Quick)
            .iter()
            .position(|b| b.name() == r.bench)
            .unwrap_or(99);
        (bi, r.device)
    });
    Fig3 { rows }
}

// ----------------------------------------------------------------------
// Host-side parallel simulation speedup
// ----------------------------------------------------------------------

/// Host wall-clock comparison of serial vs block-parallel simulation of
/// the same launches. The simulated results (stats, timing) are
/// bit-identical; only the host time to produce them changes.
#[derive(Clone, Debug)]
pub struct ParallelSpeedup {
    /// Benchmark used for the measurement.
    pub bench: &'static str,
    /// Device simulated.
    pub device: &'static str,
    /// Thread blocks simulated per run.
    pub blocks: u64,
    /// Host wall-clock at 1 worker, ns (execution + merge).
    pub serial_ns: u64,
    /// Host wall-clock at `threads` workers, ns (execution + merge).
    pub parallel_ns: u64,
    /// Worker threads used for the parallel run.
    pub threads: usize,
    /// CPU cores available to this process; speedup is bounded by
    /// `min(threads, cores, blocks)`.
    pub host_cores: usize,
}

impl ParallelSpeedup {
    /// Serial / parallel host wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        self.serial_ns as f64 / self.parallel_ns as f64
    }
}

impl fmt::Display for ParallelSpeedup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Host-side parallel simulation ({} on {}, {} blocks/launch)",
            self.bench, self.device, self.blocks
        )?;
        writeln!(f, "  1 worker : {:>9.2} ms", self.serial_ns as f64 / 1e6)?;
        writeln!(
            f,
            "  {} workers: {:>9.2} ms",
            self.threads,
            self.parallel_ns as f64 / 1e6
        )?;
        writeln!(
            f,
            "  speedup  : {:>9.2}x (simulated reports bit-identical)",
            self.speedup()
        )?;
        if self.host_cores < self.threads {
            writeln!(
                f,
                "  note     : only {} CPU core(s) available; wall-clock gain \
                 is bounded by min(threads, cores)",
                self.host_cores
            )?;
        }
        Ok(())
    }
}

/// Measure the host wall-clock speedup of the block-parallel simulation
/// engine on a compute-heavy launch (MxM), via the per-launch
/// [`gpucmp_sim::ExecProfile`] counters. Best-of-3 per setting to damp
/// scheduler noise.
pub fn parallel_speedup(scale: Scale, threads: usize) -> ParallelSpeedup {
    let device = DeviceSpec::gtx480();
    let bench = MxM::new(scale);
    let run_with = |threads: usize| -> (u64, u64) {
        let mut best = u64::MAX;
        let mut blocks = 0;
        for _ in 0..3 {
            let mut gpu = Cuda::new(device.clone()).expect("NVIDIA device");
            gpu.set_exec_options(ExecOptions::with_threads(threads));
            bench.run(&mut gpu).expect("MxM run");
            let p = gpu.session().profile_total();
            best = best.min(p.host_exec_ns + p.host_merge_ns);
            blocks = p.blocks_simulated;
        }
        (best, blocks)
    };
    let (serial_ns, blocks) = run_with(1);
    let (parallel_ns, _) = run_with(threads);
    ParallelSpeedup {
        bench: "MxM",
        device: device.name,
        blocks,
        serial_ns,
        parallel_ns,
        threads,
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

// ----------------------------------------------------------------------
// Figs 4 & 5 — texture memory
// ----------------------------------------------------------------------

/// One texture-ablation measurement.
#[derive(Clone, Debug)]
pub struct TextureRow {
    /// Benchmark (MD or SPMV).
    pub bench: &'static str,
    /// Device.
    pub device: &'static str,
    /// CUDA GFlops with texture.
    pub with_texture: f64,
    /// CUDA GFlops without texture.
    pub without_texture: f64,
    /// OpenCL GFlops (never uses texture).
    pub opencl: f64,
}

impl TextureRow {
    /// Fraction retained after removing texture (the paper's Fig. 4 bars).
    pub fn fraction(&self) -> f64 {
        self.without_texture / self.with_texture
    }

    /// PR before removing texture (unfair comparison).
    pub fn pr_before(&self) -> Pr {
        Pr::from_performance(self.opencl, self.with_texture)
    }

    /// PR after removing texture (fair at step 4) — the paper's Fig. 5.
    pub fn pr_after(&self) -> Pr {
        Pr::from_performance(self.opencl, self.without_texture)
    }
}

/// Result of the Fig. 4/5 experiments.
#[derive(Clone, Debug)]
pub struct TextureStudy {
    /// Rows: {MD, SPMV} x {GTX280, GTX480}.
    pub rows: Vec<TextureRow>,
}

impl fmt::Display for TextureStudy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig 4: performance impact of texture memory (CUDA, GFlops/s)"
        )?;
        writeln!(
            f,
            "{:<6} {:<8} {:>10} {:>12} {:>9}",
            "App", "Device", "with tex", "without tex", "fraction"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<6} {:<8} {:>10.2} {:>12.2} {:>8.1}%",
                r.bench,
                r.device,
                r.with_texture,
                r.without_texture,
                r.fraction() * 100.0
            )?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "Fig 5: PR before/after removing texture from the CUDA version"
        )?;
        writeln!(
            f,
            "{:<6} {:<8} {:>10} {:>10}",
            "App", "Device", "PR before", "PR after"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<6} {:<8} {:>10.3} {:>10.3}",
                r.bench,
                r.device,
                r.pr_before().0,
                r.pr_after().0
            )?;
        }
        Ok(())
    }
}

/// Figs 4 & 5 — MD and SPMV with and without texture memory.
pub fn fig4_fig5_texture(scale: Scale) -> TextureStudy {
    let mut rows = Vec::new();
    for dev_name in ["GTX280", "GTX480"] {
        let device = DeviceSpec::by_name(dev_name).unwrap();
        // MD
        let with_t = run_cuda(&Md::new(scale).with_texture(true), &device).unwrap();
        let without = run_cuda(&Md::new(scale).with_texture(false), &device).unwrap();
        let ocl = run_opencl(&Md::new(scale), &device).unwrap();
        rows.push(TextureRow {
            bench: "MD",
            device: device.name,
            with_texture: with_t.value,
            without_texture: without.value,
            opencl: ocl.value,
        });
        // SPMV
        let with_t = run_cuda(&Spmv::new(scale).with_texture(true), &device).unwrap();
        let without = run_cuda(&Spmv::new(scale).with_texture(false), &device).unwrap();
        let ocl = run_opencl(&Spmv::new(scale), &device).unwrap();
        rows.push(TextureRow {
            bench: "SPMV",
            device: device.name,
            with_texture: with_t.value,
            without_texture: without.value,
            opencl: ocl.value,
        });
    }
    TextureStudy { rows }
}

// ----------------------------------------------------------------------
// Figs 6 & 7 — FDTD loop unrolling
// ----------------------------------------------------------------------

/// FDTD unroll measurements on one device (MPoints/s).
#[derive(Clone, Debug)]
pub struct UnrollRow {
    /// Device.
    pub device: &'static str,
    /// CUDA with unrolling at both points.
    pub cuda_ab: f64,
    /// CUDA with unrolling at b only.
    pub cuda_b: f64,
    /// OpenCL with unrolling at b only (the paper's shipped source).
    pub opencl_b: f64,
    /// OpenCL with unrolling at both points (the paper's "degrades
    /// sharply" configuration).
    pub opencl_ab: f64,
}

impl UnrollRow {
    /// Fig. 6: fraction retained by CUDA after removing the point-a pragma.
    pub fn fig6_fraction(&self) -> f64 {
        self.cuda_b / self.cuda_ab
    }

    /// Fig. 7 group 2: PR of the b-only builds.
    pub fn pr_b(&self) -> Pr {
        Pr::from_performance(self.opencl_b, self.cuda_b)
    }

    /// Fig. 7 group 3: OpenCL_{a,b} as a fraction of CUDA_{a,b}.
    pub fn fig7_fraction(&self) -> f64 {
        self.opencl_ab / self.cuda_ab
    }
}

/// Result of the Fig. 6/7 experiments.
#[derive(Clone, Debug)]
pub struct UnrollStudy {
    /// One row per device.
    pub rows: Vec<UnrollRow>,
}

impl fmt::Display for UnrollStudy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 6/7: FDTD loop unrolling (MPoints/s)")?;
        writeln!(
            f,
            "{:<8} {:>9} {:>9} {:>9} {:>9} | {:>11} {:>7} {:>13}",
            "Device",
            "CUDA_ab",
            "CUDA_b",
            "OpenCL_b",
            "OpenCL_ab",
            "fig6 frac",
            "PR_b",
            "OCLab/CUDAab"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<8} {:>9.0} {:>9.0} {:>9.0} {:>9.0} | {:>10.1}% {:>7.3} {:>12.1}%",
                r.device,
                r.cuda_ab,
                r.cuda_b,
                r.opencl_b,
                r.opencl_ab,
                r.fig6_fraction() * 100.0,
                r.pr_b().0,
                r.fig7_fraction() * 100.0
            )?;
        }
        Ok(())
    }
}

/// Figs 6 & 7 — the FDTD unroll matrix on both NVIDIA GPUs.
pub fn fig6_fig7_unroll(scale: Scale) -> UnrollStudy {
    let rows = ["GTX280", "GTX480"]
        .par_iter()
        .map(|dev_name| {
            let device = DeviceSpec::by_name(dev_name).unwrap();
            let cuda_ab = run_cuda(&Fdtd::new(scale).with_unroll_a(true), &device)
                .unwrap()
                .value;
            let cuda_b = run_cuda(&Fdtd::new(scale).with_unroll_a(false), &device)
                .unwrap()
                .value;
            let opencl_b = run_opencl(&Fdtd::new(scale).with_unroll_a(false), &device)
                .unwrap()
                .value;
            let opencl_ab = run_opencl(&Fdtd::new(scale).with_unroll_a(true), &device)
                .unwrap()
                .value;
            UnrollRow {
                device: device.name,
                cuda_ab,
                cuda_b,
                opencl_b,
                opencl_ab,
            }
        })
        .collect();
    UnrollStudy { rows }
}

// ----------------------------------------------------------------------
// Fig 8 — Sobel constant memory
// ----------------------------------------------------------------------

/// Sobel kernel times (seconds) with/without constant memory.
#[derive(Clone, Debug)]
pub struct SobelRow {
    /// Device.
    pub device: &'static str,
    /// Kernel time with the filter in constant memory.
    pub with_const_s: f64,
    /// Kernel time with the filter in global memory.
    pub without_const_s: f64,
}

impl SobelRow {
    /// Speedup from constant memory (the paper: ~4x on GTX280, ~1x on
    /// GTX480).
    pub fn speedup(&self) -> f64 {
        self.without_const_s / self.with_const_s
    }
}

/// Result of the Fig. 8 experiment.
#[derive(Clone, Debug)]
pub struct Fig8 {
    /// One row per device.
    pub rows: Vec<SobelRow>,
}

impl fmt::Display for Fig8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 8: Sobel kernel time with/without constant memory")?;
        writeln!(
            f,
            "{:<8} {:>12} {:>14} {:>9}",
            "Device", "const (s)", "no const (s)", "speedup"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<8} {:>12.6} {:>14.6} {:>8.2}x",
                r.device,
                r.with_const_s,
                r.without_const_s,
                r.speedup()
            )?;
        }
        Ok(())
    }
}

/// Fig. 8 — Sobel with and without constant memory on both GPUs.
pub fn fig8_sobel_constant(scale: Scale) -> Fig8 {
    let rows = ["GTX280", "GTX480"]
        .iter()
        .map(|dev_name| {
            let device = DeviceSpec::by_name(dev_name).unwrap();
            let with_c = run_cuda(&Sobel::new(scale).with_const_filter(true), &device)
                .unwrap()
                .value;
            let without = run_cuda(&Sobel::new(scale).with_const_filter(false), &device)
                .unwrap()
                .value;
            SobelRow {
                device: device.name,
                with_const_s: with_c,
                without_const_s: without,
            }
        })
        .collect();
    Fig8 { rows }
}

// ----------------------------------------------------------------------
// Table V — PTX statistics of the FFT forward kernel
// ----------------------------------------------------------------------

/// Result of the Table V experiment.
#[derive(Clone, Debug)]
pub struct Table5 {
    /// Static statistics of the CUDA front-end's PTX.
    pub cuda: InstStats,
    /// Static statistics of the OpenCL front-end's PTX.
    pub opencl: InstStats,
}

impl fmt::Display for Table5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table V: static PTX statistics, FFT \"forward\" kernel")?;
        f.write_str(&InstStats::comparison_table(
            "CUDA",
            &self.cuda,
            "OpenCL",
            &self.opencl,
        ))
    }
}

/// Table V — compile the FFT forward kernel with both front-ends and tally
/// the PTX.
pub fn table5_ptx_stats() -> Table5 {
    let def = Fft::new(Scale::Quick).kernel();
    let cap = DeviceSpec::gtx280().max_regs_per_thread;
    let c = gpucmp_compiler::compile(&def, Api::Cuda, cap).expect("CUDA compile");
    let o = gpucmp_compiler::compile(&def, Api::OpenCl, cap).expect("OpenCL compile");
    Table5 {
        cuda: c.ptx_stats,
        opencl: o.ptx_stats,
    }
}

// ----------------------------------------------------------------------
// Table VI — portability
// ----------------------------------------------------------------------

/// Outcome of running one benchmark on one non-NVIDIA device.
#[derive(Clone, Debug, PartialEq)]
pub enum PortCell {
    /// Ran and verified; metric value.
    Ok(f64),
    /// Ran to completion but produced wrong results (paper "FL").
    Fl,
    /// Aborted: a `CL_*` error or a device fault (paper "ABT").
    Abt(String),
}

impl fmt::Display for PortCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortCell::Ok(v) => {
                if *v >= 100.0 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v:.4}")
                }
            }
            PortCell::Fl => write!(f, "FL"),
            PortCell::Abt(_) => write!(f, "ABT"),
        }
    }
}

/// Result of the Table VI experiment.
#[derive(Clone, Debug)]
pub struct Table6 {
    /// Benchmark names (columns).
    pub benches: Vec<&'static str>,
    /// Rows: (device name, cells).
    pub rows: Vec<(&'static str, Vec<PortCell>)>,
}

impl fmt::Display for Table6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table VI: OpenCL portability (units as in Table II; FL = wrong results, ABT = aborted)"
        )?;
        write!(f, "{:<10}", "")?;
        for b in &self.benches {
            write!(f, "{b:>9}")?;
        }
        writeln!(f)?;
        for (dev, cells) in &self.rows {
            write!(f, "{dev:<10}")?;
            for c in cells {
                write!(f, "{:>9}", c.to_string())?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Table VI — port every real-world benchmark to the HD5870, the Intel920
/// and the Cell/BE through OpenCL.
pub fn table6_portability(scale: Scale) -> Table6 {
    let benches: Vec<&'static str> = gpucmp_benchmarks::real_world(scale)
        .iter()
        .map(|b| b.name())
        .collect();
    let device_names = ["HD5870", "Intel920", "Cell/BE"];
    let n = benches.len();
    let cells: Vec<((usize, usize), PortCell)> = (0..device_names.len())
        .flat_map(|d| (0..n).map(move |b| (d, b)))
        .collect::<Vec<_>>()
        .par_iter()
        .map(|&(d, b)| {
            let device = DeviceSpec::by_name(device_names[d]).unwrap();
            let bench = &gpucmp_benchmarks::real_world(scale)[b];
            let cell = match run_opencl(bench.as_ref(), &device) {
                Ok(out) => match out.verify {
                    Verify::Pass => PortCell::Ok(out.value),
                    Verify::Fail(_) => PortCell::Fl,
                },
                Err(RtError::Cl(ClStatus::OutOfResources)) => {
                    PortCell::Abt("CL_OUT_OF_RESOURCES".into())
                }
                Err(e) => PortCell::Abt(e.to_string()),
            };
            ((d, b), cell)
        })
        .collect();
    let mut rows: Vec<(&'static str, Vec<PortCell>)> = device_names
        .iter()
        .map(|d| (*d, vec![PortCell::Fl; n]))
        .collect();
    for ((d, b), cell) in cells {
        rows[d].1[b] = cell;
    }
    Table6 { benches, rows }
}

// ----------------------------------------------------------------------
// Section IV-B-4 — kernel launch latency
// ----------------------------------------------------------------------

/// Measured per-launch overhead of the two APIs.
#[derive(Clone, Debug)]
pub struct LaunchLatency {
    /// CUDA per-launch overhead in ns.
    pub cuda_ns: f64,
    /// OpenCL per-launch overhead in ns.
    pub opencl_ns: f64,
}

impl fmt::Display for LaunchLatency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Kernel launch overhead (Section IV-B-4)")?;
        writeln!(f, "CUDA:   {:>8.1} µs per launch", self.cuda_ns / 1000.0)?;
        writeln!(f, "OpenCL: {:>8.1} µs per launch", self.opencl_ns / 1000.0)?;
        writeln!(
            f,
            "OpenCL / CUDA ratio: {:.2}x",
            self.opencl_ns / self.cuda_ns
        )
    }
}

/// Measure per-launch overhead by timing repeated launches of a trivial
/// kernel and subtracting the in-kernel time.
pub fn launch_latency() -> LaunchLatency {
    fn measure(gpu: &mut dyn Gpu) -> f64 {
        use gpucmp_compiler::{global_id_x, DslKernel, Expr};
        use gpucmp_sim::LaunchConfig;
        let mut k = DslKernel::new("noop");
        let out = k.param_ptr("out");
        let gid = k.let_(gpucmp_ptx::Ty::S32, global_id_x());
        k.if_(Expr::from(gid).eq_(0i32), |k| {
            k.st_global(out.clone(), 0i32, gpucmp_ptx::Ty::S32, 1i32);
        });
        let def = k.finish();
        let h = gpu.build(&def).unwrap();
        let buf = gpu.malloc(64).unwrap();
        let cfg = LaunchConfig::new(1u32, 32u32).arg_ptr(buf);
        let reps = 50;
        let t0 = gpu.now_ns();
        let k0 = gpu.session().kernel_ns_total();
        for _ in 0..reps {
            gpu.launch(h, &cfg).unwrap();
        }
        let wall = gpu.now_ns() - t0;
        let kernel = gpu.session().kernel_ns_total() - k0;
        (wall - kernel) / reps as f64
    }
    let mut cuda = Cuda::new(DeviceSpec::gtx280()).unwrap();
    let mut ocl = OpenCl::create_any(DeviceSpec::gtx280());
    LaunchLatency {
        cuda_ns: measure(&mut cuda),
        opencl_ns: measure(&mut ocl),
    }
}

// ----------------------------------------------------------------------
// Everything at once
// ----------------------------------------------------------------------

/// Run every experiment and return the combined report text.
pub fn run_all(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str(&fig1_peak_bandwidth(scale).to_string());
    out.push('\n');
    out.push_str(&fig2_peak_flops(scale).to_string());
    out.push('\n');
    out.push_str(&fig3_performance_ratio(scale).to_string());
    out.push('\n');
    out.push_str(&fig4_fig5_texture(scale).to_string());
    out.push('\n');
    out.push_str(&fig6_fig7_unroll(scale).to_string());
    out.push('\n');
    out.push_str(&fig8_sobel_constant(scale).to_string());
    out.push('\n');
    out.push_str(&table5_ptx_stats().to_string());
    out.push('\n');
    out.push_str(&table6_portability(scale).to_string());
    out.push('\n');
    out.push_str(&launch_latency().to_string());
    out
}
