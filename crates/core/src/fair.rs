//! The paper's eight-step fair-comparison model (Section IV-C, Fig. 9).
//!
//! A comparison of a CUDA build and an OpenCL build is *fair* exactly when
//! all eight steps of the development flow were configured identically.
//! [`BuildConfig`] captures the per-step configuration of one build;
//! [`fairness`] diffs two of them and names the steps that differ —
//! which, per the paper, are the places any observed performance gap must
//! be attributed to.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The eight steps of the development flow (paper Fig. 9), each owned by
/// one of the three roles.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FairStep {
    /// 1. Problem description.
    ProblemDescription,
    /// 2. Algorithm translation.
    AlgorithmTranslation,
    /// 3. Implementation (host + kernel, same APIs, same timers).
    Implementation,
    /// 4. Native kernel optimisations (shared memory, vectorisation,
    ///    unrolling, texture/constant memory, coalescing).
    NativeKernelOptimizations,
    /// 5. First-stage compilation (front-end, e.g. NVOPENCC).
    FirstStageCompilation,
    /// 6. Second-stage compilation (back-end, PTXAS).
    SecondStageCompilation,
    /// 7. Program configuration (problem + algorithmic parameters).
    ProgramConfiguration,
    /// 8. Running on the hardware.
    RunningOnGpu,
}

impl FairStep {
    /// All steps in flow order.
    pub const ALL: [FairStep; 8] = [
        FairStep::ProblemDescription,
        FairStep::AlgorithmTranslation,
        FairStep::Implementation,
        FairStep::NativeKernelOptimizations,
        FairStep::FirstStageCompilation,
        FairStep::SecondStageCompilation,
        FairStep::ProgramConfiguration,
        FairStep::RunningOnGpu,
    ];

    /// Which role controls this step (paper Fig. 9: programmers own 1-4,
    /// compilers 5-6, users 7-8).
    pub const fn role(self) -> Role {
        match self {
            FairStep::ProblemDescription
            | FairStep::AlgorithmTranslation
            | FairStep::Implementation
            | FairStep::NativeKernelOptimizations => Role::Programmer,
            FairStep::FirstStageCompilation | FairStep::SecondStageCompilation => Role::Compiler,
            FairStep::ProgramConfiguration | FairStep::RunningOnGpu => Role::User,
        }
    }

    /// Human-readable step name.
    pub const fn name(self) -> &'static str {
        match self {
            FairStep::ProblemDescription => "problem description",
            FairStep::AlgorithmTranslation => "algorithm translation",
            FairStep::Implementation => "implementation",
            FairStep::NativeKernelOptimizations => "native kernel optimizations",
            FairStep::FirstStageCompilation => "first-stage compilation",
            FairStep::SecondStageCompilation => "second-stage compilation",
            FairStep::ProgramConfiguration => "program configuration",
            FairStep::RunningOnGpu => "running on GPU",
        }
    }
}

impl fmt::Display for FairStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The three roles of the development flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Role {
    /// Steps 1-4.
    Programmer,
    /// Steps 5-6.
    Compiler,
    /// Steps 7-8.
    User,
}

/// Configuration of one application build, step by step. Two builds whose
/// configurations agree on a step are "the same" at that step.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BuildConfig {
    /// Description of the problem solved (step 1).
    pub problem: String,
    /// Algorithm identity (step 2).
    pub algorithm: String,
    /// Source identity: which kernel/host sources (step 3).
    pub source: String,
    /// Native optimisations applied (step 4), e.g. `["texture", "unroll:a"]`.
    pub optimizations: Vec<String>,
    /// Front-end compiler identity (step 5).
    pub frontend: String,
    /// Back-end compiler identity (step 6).
    pub backend: String,
    /// Problem + algorithmic parameters (step 7), e.g. block size.
    pub configuration: String,
    /// Device the build ran on (step 8).
    pub device: String,
}

impl BuildConfig {
    /// Typical unmodified CUDA build of a benchmark.
    pub fn cuda(benchmark: &str, opts: &[&str], device: &str, config: &str) -> Self {
        BuildConfig {
            problem: benchmark.into(),
            algorithm: benchmark.into(),
            source: format!("{benchmark}.cu"),
            optimizations: opts.iter().map(|s| s.to_string()).collect(),
            frontend: "nvopencc".into(),
            backend: "ptxas".into(),
            configuration: config.into(),
            device: device.into(),
        }
    }

    /// Typical unmodified OpenCL build of a benchmark.
    pub fn opencl(benchmark: &str, opts: &[&str], device: &str, config: &str) -> Self {
        BuildConfig {
            problem: benchmark.into(),
            algorithm: benchmark.into(),
            source: format!("{benchmark}.cl"),
            optimizations: opts.iter().map(|s| s.to_string()).collect(),
            frontend: "oclc".into(),
            backend: "ptxas".into(),
            configuration: config.into(),
            device: device.into(),
        }
    }
}

/// Verdict of a fairness analysis.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fairness {
    /// Steps whose configurations differ, in flow order.
    pub differing: Vec<FairStep>,
}

impl Fairness {
    /// A comparison is fair when no step differs. (The paper: "a comparison
    /// ... is fair when configurations in all the eight steps ... are the
    /// same".)
    pub fn is_fair(&self) -> bool {
        self.differing.is_empty()
    }

    /// A comparison is *attributable* when the only differing steps are the
    /// compiler-owned ones — the unavoidable difference when comparing two
    /// programming models on the same device with the same source.
    pub fn only_compilers_differ(&self) -> bool {
        !self.differing.is_empty() && self.differing.iter().all(|s| s.role() == Role::Compiler)
    }
}

impl fmt::Display for Fairness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_fair() {
            write!(f, "fair (all eight steps identical)")
        } else {
            write!(f, "unfair at: ")?;
            for (i, s) in self.differing.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{s}")?;
            }
            Ok(())
        }
    }
}

/// Diff two build configurations step by step.
pub fn fairness(a: &BuildConfig, b: &BuildConfig) -> Fairness {
    let mut differing = Vec::new();
    if a.problem != b.problem {
        differing.push(FairStep::ProblemDescription);
    }
    if a.algorithm != b.algorithm {
        differing.push(FairStep::AlgorithmTranslation);
    }
    if a.source != b.source {
        differing.push(FairStep::Implementation);
    }
    {
        let mut oa = a.optimizations.clone();
        let mut ob = b.optimizations.clone();
        oa.sort();
        ob.sort();
        if oa != ob {
            differing.push(FairStep::NativeKernelOptimizations);
        }
    }
    if a.frontend != b.frontend {
        differing.push(FairStep::FirstStageCompilation);
    }
    if a.backend != b.backend {
        differing.push(FairStep::SecondStageCompilation);
    }
    if a.configuration != b.configuration {
        differing.push(FairStep::ProgramConfiguration);
    }
    if a.device != b.device {
        differing.push(FairStep::RunningOnGpu);
    }
    Fairness { differing }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_builds_are_fair() {
        let a = BuildConfig::cuda("MxM", &[], "GTX480", "block=16x16");
        let f = fairness(&a, &a.clone());
        assert!(f.is_fair());
        assert_eq!(f.to_string(), "fair (all eight steps identical)");
    }

    #[test]
    fn unmodified_paper_comparison_is_unfair_at_multiple_steps() {
        // the paper's "unmodified" MD comparison: CUDA uses texture,
        // different source files, different front-ends
        let c = BuildConfig::cuda("MD", &["texture"], "GTX280", "block=128");
        let o = BuildConfig::opencl("MD", &[], "GTX280", "block=128");
        let f = fairness(&c, &o);
        assert!(!f.is_fair());
        assert!(f.differing.contains(&FairStep::Implementation));
        assert!(f.differing.contains(&FairStep::NativeKernelOptimizations));
        assert!(f.differing.contains(&FairStep::FirstStageCompilation));
        assert!(!f.only_compilers_differ());
    }

    #[test]
    fn same_source_same_opts_leaves_only_compilers() {
        let mut c = BuildConfig::cuda("FFT", &[], "GTX480", "wg=64");
        let o = {
            let mut o = BuildConfig::opencl("FFT", &[], "GTX480", "wg=64");
            o.source = "fft_shared.krn".into();
            o
        };
        c.source = "fft_shared.krn".into();
        let f = fairness(&c, &o);
        assert!(f.only_compilers_differ());
        assert_eq!(f.differing, vec![FairStep::FirstStageCompilation]);
    }

    #[test]
    fn roles_partition_the_steps() {
        use FairStep::*;
        assert_eq!(Implementation.role(), Role::Programmer);
        assert_eq!(FirstStageCompilation.role(), Role::Compiler);
        assert_eq!(RunningOnGpu.role(), Role::User);
        assert_eq!(FairStep::ALL.len(), 8);
    }

    #[test]
    fn optimization_order_does_not_matter() {
        let a = BuildConfig::cuda("X", &["unroll", "texture"], "GTX480", "c");
        let b = BuildConfig::cuda("X", &["texture", "unroll"], "GTX480", "c");
        assert!(fairness(&a, &b).is_fair());
    }
}
