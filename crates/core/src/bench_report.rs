//! The full profiled benchmark campaign behind `BENCH_<timestamp>.json`.
//!
//! Runs all 16 benchmarks (Table II real-world + the two synthetic peaks)
//! plus the three explicit-stream variants (BFS, MxM, FDTD with
//! overlapped transfers) and the two fuzz-corpus micro-workloads
//! (AtomHist, SharedRot) on both NVIDIA devices through both APIs — 84
//! runs — collecting the per-run hardware-counter sets, then derives the
//! per-(benchmark, device) PRs with a machine-attributed *dominant
//! counter* (the profiling analogue of the paper's Section IV prose
//! explanations).
//!
//! The campaign degrades gracefully: every (benchmark, device, API)
//! triple runs in isolation (a panic or a device fault in one cannot take
//! down the rest), with a bounded retry, and a run that still fails is
//! recorded in the report as `fault-skipped` with the fault text instead
//! of silently disappearing. Under a seeded [`FaultPlan`] campaign
//! (`CampaignOptions::fault_seed`) roughly a third of the triples are
//! deliberately broken on their first attempt and recover on retry — or
//! don't, and land in the report as skips the CI gate can tell apart from
//! regressions.

use crate::experiments::{run_cuda_with, run_opencl_with};
use crate::pr::Pr;
use gpucmp_benchmarks::{Scale, Verify};
use gpucmp_runtime::FaultPlan;
use gpucmp_sim::DeviceSpec;
use gpucmp_trace::{dominant_counter, BenchReport, BenchRun, PrEntry, RUN_FAULT_SKIPPED, RUN_OK};
use rayon::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Device names the campaign covers (the paper's CUDA-capable pair).
pub const CAMPAIGN_DEVICES: [&str; 2] = ["GTX280", "GTX480"];

/// Revision of everything upstream of a campaign cell's numbers — the
/// timing model, the benchmark sources, the compiler. Bump whenever a
/// change can move any cell's output so stale rows stop cache-matching.
pub const CAMPAIGN_MODEL_REV: u32 = 1;

/// How the campaign runs: problem scale, optional seeded fault
/// injection, the per-triple retry budget, an optional result cache, and
/// an optional shard of the run matrix.
#[derive(Clone, Debug)]
pub struct CampaignOptions {
    /// Problem-size scale for every benchmark.
    pub scale: Scale,
    /// Seed for deterministic fault injection. `None` disables
    /// injection; `Some(seed)` gives each (benchmark, device, API)
    /// triple the plan [`FaultPlan::for_case`] derives for it.
    pub fault_seed: Option<u64>,
    /// Attempts per triple before it is recorded as fault-skipped
    /// (clamped to at least 1).
    pub max_attempts: u32,
    /// A previous campaign's report: any cell whose
    /// [`input_fingerprint`] matches a healthy row in it is reused
    /// (marked `cached`) instead of re-executed. Ignored under fault
    /// injection — an injection campaign must actually inject.
    pub cache_from: Option<BenchReport>,
    /// Run only the triples with `index % shards == shard` (as
    /// `(shard, shards)`); merge the partial reports with
    /// [`merge_reports`]. `None` runs everything.
    pub shard: Option<(u32, u32)>,
}

impl CampaignOptions {
    /// Fault-free campaign at `scale` with one retry.
    pub fn new(scale: Scale) -> Self {
        CampaignOptions {
            scale,
            fault_seed: None,
            max_attempts: 2,
            cache_from: None,
            shard: None,
        }
    }

    /// Like [`CampaignOptions::new`], but reads the environment:
    ///
    /// - `GPUCMP_FAULT_SEED` — enable a seeded fault-injection campaign;
    /// - `GPUCMP_FAULT_ATTEMPTS` — override the retry budget (`1` makes
    ///   every injected fault unrecoverable, exercising the
    ///   partial-report path end to end);
    /// - `GPUCMP_CACHE_FROM` — path of a previous `BENCH_*.json` to reuse
    ///   unchanged cells from (unreadable/invalid files just disable the
    ///   cache);
    /// - `GPUCMP_SHARD` — `"i/n"` runs shard `i` of `n` (0-based).
    pub fn from_env(scale: Scale) -> Self {
        let parse = |var: &str| {
            std::env::var(var)
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
        };
        let mut opts = CampaignOptions::new(scale);
        opts.fault_seed = parse("GPUCMP_FAULT_SEED");
        if let Some(n) = parse("GPUCMP_FAULT_ATTEMPTS") {
            opts.max_attempts = n.clamp(1, 16) as u32;
        }
        opts.cache_from = std::env::var("GPUCMP_CACHE_FROM")
            .ok()
            .and_then(|path| std::fs::read_to_string(path).ok())
            .and_then(|text| BenchReport::from_text(&text).ok());
        opts.shard = std::env::var("GPUCMP_SHARD").ok().and_then(|s| {
            let (i, n) = s.trim().split_once('/')?;
            let (i, n) = (i.parse::<u32>().ok()?, n.parse::<u32>().ok()?);
            (n > 0 && i < n).then_some((i, n))
        });
        opts
    }
}

/// Fingerprint of everything that determines one campaign cell's
/// numbers: the cell coordinates, the problem scale, the fault-injection
/// settings, and [`CAMPAIGN_MODEL_REV`]. FNV-1a 64, rendered as 16 hex
/// digits. Two campaigns produce the same fingerprint for a cell exactly
/// when re-running it would reproduce the same row.
pub fn input_fingerprint(opts: &CampaignOptions, bench: &str, device: &str, api: &str) -> String {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    eat(&CAMPAIGN_MODEL_REV.to_le_bytes());
    for part in [
        match opts.scale {
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        },
        bench,
        device,
        api,
    ] {
        eat(part.as_bytes());
        eat(b"|");
    }
    match opts.fault_seed {
        Some(seed) => {
            eat(&seed.to_le_bytes());
            eat(&opts.max_attempts.max(1).to_le_bytes());
        }
        None => eat(b"no-faults"),
    }
    format!("{h:016x}")
}

pub(crate) fn all_benchmarks(scale: Scale) -> Vec<Box<dyn gpucmp_benchmarks::Benchmark>> {
    let mut v = gpucmp_benchmarks::real_world(scale);
    v.extend(gpucmp_benchmarks::synthetic(scale));
    v.extend(gpucmp_benchmarks::streamed_variants(scale));
    v.extend(gpucmp_benchmarks::micro_workloads(scale));
    v
}

fn panic_text(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = p.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

/// One isolated, retried run of a (benchmark, device, API) triple.
///
/// A panic, a runtime error, or a failed output verification all count
/// as a failed attempt; after `max_attempts` the triple is reported as
/// [`RUN_FAULT_SKIPPED`] with the last failure's text and zeroed
/// metrics, never aborting the campaign.
fn run_one(opts: &CampaignOptions, i: usize, dev_name: &str, api: &str) -> BenchRun {
    let bench_name = all_benchmarks(opts.scale)[i].name().to_string();
    let case = format!("{bench_name}/{dev_name}/{api}");
    let attempts_cap = opts.max_attempts.max(1);
    let mut last_fault = String::new();
    for attempt in 0..attempts_cap {
        let plan = opts
            .fault_seed
            .map(|seed| FaultPlan::for_case(seed, &case, attempt));
        let result = catch_unwind(AssertUnwindSafe(|| {
            let bench = &all_benchmarks(opts.scale)[i];
            let device = DeviceSpec::by_name(dev_name).unwrap();
            if api == "CUDA" {
                run_cuda_with(bench.as_ref(), &device, plan.clone())
            } else {
                run_opencl_with(bench.as_ref(), &device, plan.clone())
            }
        }));
        match result {
            Ok(Ok(out)) if out.verify.is_pass() => {
                let device = DeviceSpec::by_name(dev_name).unwrap();
                let counters = out.stats.counter_set(device.warp_width);
                let sim_cycles = counters.get("issue_cycles").unwrap_or(0.0);
                return BenchRun {
                    bench: bench_name,
                    device: dev_name.to_string(),
                    api: api.to_string(),
                    value: out.value,
                    unit: out.metric.unit().to_string(),
                    verified: true,
                    wall_ns: out.wall_ns,
                    kernel_ns: out.kernel_ns,
                    launches: out.launches,
                    sim_cycles,
                    counters,
                    status: RUN_OK.to_string(),
                    fault: None,
                    attempts: attempt + 1,
                    input_hash: String::new(), // stamped by bench_report_with
                    cached: false,
                };
            }
            Ok(Ok(out)) => {
                last_fault = match &out.verify {
                    Verify::Fail(msg) => format!("output verification failed: {msg}"),
                    Verify::Pass => unreachable!(),
                };
            }
            Ok(Err(e)) => last_fault = e.to_string(),
            Err(p) => last_fault = panic_text(p),
        }
    }
    BenchRun {
        bench: bench_name,
        device: dev_name.to_string(),
        api: api.to_string(),
        value: 0.0,
        unit: String::new(),
        verified: false,
        wall_ns: 0.0,
        kernel_ns: 0.0,
        launches: 0,
        sim_cycles: 0.0,
        counters: Default::default(),
        status: RUN_FAULT_SKIPPED.to_string(),
        fault: Some(last_fault),
        attempts: attempts_cap,
        input_hash: String::new(), // stamped by bench_report_with
        cached: false,
    }
}

/// Run the whole campaign at `scale` with no fault injection.
pub fn bench_report(scale: Scale) -> BenchReport {
    bench_report_with(&CampaignOptions::new(scale))
}

/// Run the whole campaign under `opts`. Parallelised over (benchmark,
/// device, API) triples; every number — including which triples are
/// fault-skipped under a seeded plan — is deterministic for any host
/// thread count. With `opts.cache_from`, any triple whose fingerprint
/// matches a healthy cached row is reused instead of re-executed; with
/// `opts.shard`, only that slice of the matrix runs.
pub fn bench_report_with(opts: &CampaignOptions) -> BenchReport {
    let n = all_benchmarks(opts.scale).len();
    let triples: Vec<(usize, &'static str, &'static str)> = (0..n)
        .flat_map(|i| {
            CAMPAIGN_DEVICES
                .into_iter()
                .flat_map(move |d| [(i, d, "CUDA"), (i, d, "OpenCL")])
        })
        .enumerate()
        .filter(|&(idx, _)| match opts.shard {
            Some((shard, shards)) => idx as u32 % shards == shard,
            None => true,
        })
        .map(|(_, t)| t)
        .collect();
    let bench_names_once: Vec<String> = {
        let all = all_benchmarks(opts.scale);
        all.iter().map(|b| b.name().to_string()).collect()
    };
    // An injection campaign must actually inject: never serve it from
    // cache, even though the fingerprint would distinguish the seeds.
    let cache = opts
        .cache_from
        .as_ref()
        .filter(|_| opts.fault_seed.is_none());
    let mut runs: Vec<(usize, BenchRun)> = triples
        .par_iter()
        .map(|&(i, dev_name, api)| {
            let hash = input_fingerprint(opts, &bench_names_once[i], dev_name, api);
            if let Some(hit) = cache.and_then(|c| {
                c.run(&bench_names_once[i], dev_name, api)
                    .filter(|r| r.is_ok() && r.input_hash == hash)
            }) {
                let mut reused = hit.clone();
                reused.cached = true;
                return (i, reused);
            }
            let mut run = run_one(opts, i, dev_name, api);
            run.input_hash = hash;
            run.cached = false;
            (i, run)
        })
        .collect();
    // deterministic order: benchmark registry order, device, then API
    runs.sort_by(|a, b| (a.0, &a.1.device, &a.1.api).cmp(&(b.0, &b.1.device, &b.1.api)));
    let runs: Vec<BenchRun> = runs.into_iter().map(|(_, r)| r).collect();
    let prs = derive_prs(&runs);

    BenchReport {
        scale: match opts.scale {
            Scale::Quick => "quick".to_string(),
            Scale::Paper => "paper".to_string(),
        },
        fault_seed: opts.fault_seed,
        runs,
        prs,
        sim_speed: vec![],
    }
}

/// Derive the per-(benchmark, device) PR table from a run list — the
/// shared tail of a full campaign and of [`merge_reports`].
pub fn derive_prs(runs: &[BenchRun]) -> Vec<PrEntry> {
    let bench_names: Vec<String> = {
        let mut seen = Vec::new();
        for r in runs {
            if !seen.contains(&r.bench) {
                seen.push(r.bench.clone());
            }
        }
        seen
    };
    let mut prs = Vec::new();
    for bench in &bench_names {
        for dev in CAMPAIGN_DEVICES {
            let find = |api: &str| {
                runs.iter()
                    .find(|r| &r.bench == bench && r.device == dev && r.api == api)
                    .filter(|r| r.is_ok())
            };
            // A PR needs both sides; a fault-skipped run leaves a hole
            // the gate recognises through the runs table.
            let (Some(c), Some(o)) = (find("CUDA"), find("OpenCL")) else {
                continue;
            };
            let perf = |r: &BenchRun| {
                if r.unit == "sec" {
                    1.0 / r.value
                } else {
                    r.value
                }
            };
            let pr = Pr::from_performance(perf(o), perf(c));
            // Inside the paper's |1 - PR| < 0.1 similarity band the APIs
            // perform the same; attribution only explains real gaps.
            let dominant = if pr.is_similar() {
                "comparable".to_string()
            } else {
                dominant_counter(
                    &c.counters,
                    c.wall_ns,
                    c.kernel_ns,
                    &o.counters,
                    o.wall_ns,
                    o.kernel_ns,
                )
            };
            prs.push(PrEntry {
                bench: bench.clone(),
                device: dev.to_string(),
                pr: pr.0,
                dominant_counter: dominant,
            });
        }
    }
    prs
}

/// Merge sharded partial reports into one full campaign report: union
/// the run rows, restore the registry run order, and re-derive the PR
/// table over the combined runs.
///
/// The parts must be *disjoint* shards of one campaign: a
/// (bench, device, API) triple appearing in two parts — overlapping
/// `GPUCMP_SHARD` slices, or the same shard merged twice — is an error,
/// as is a scale or fault-seed disagreement. Silently deduplicating
/// would hide a mis-sharded campaign behind whichever row came first.
pub fn merge_reports(parts: &[BenchReport]) -> Result<BenchReport, String> {
    let Some(first) = parts.first() else {
        return Ok(BenchReport::default());
    };
    let scale = first.scale.clone();
    let fault_seed = first.fault_seed;
    for (i, p) in parts.iter().enumerate() {
        if p.scale != scale || p.fault_seed != fault_seed {
            return Err(format!(
                "merge_reports: shard {i} ran scale={} fault_seed={:?}, \
                 shard 0 ran scale={scale} fault_seed={fault_seed:?} — \
                 all GPUCMP_SHARD parts must come from one campaign",
                p.scale, p.fault_seed
            ));
        }
    }
    let registry: Vec<String> = {
        let s = if scale == "paper" {
            Scale::Paper
        } else {
            Scale::Quick
        };
        all_benchmarks(s)
            .iter()
            .map(|b| b.name().to_string())
            .collect()
    };
    let mut runs: Vec<BenchRun> = Vec::new();
    for p in parts {
        for r in &p.runs {
            if runs
                .iter()
                .any(|q| q.bench == r.bench && q.device == r.device && q.api == r.api)
            {
                return Err(format!(
                    "merge_reports: duplicate run {}/{}/{} — the shards \
                     overlap (check the GPUCMP_SHARD=i/n slices are \
                     disjoint and no part is merged twice)",
                    r.bench, r.device, r.api
                ));
            }
            runs.push(r.clone());
        }
    }
    let pos = |name: &str| {
        registry
            .iter()
            .position(|n| n == name)
            .unwrap_or(usize::MAX)
    };
    runs.sort_by(|a, b| {
        (pos(&a.bench), &a.device, &a.api).cmp(&(pos(&b.bench), &b.device, &b.api))
    });
    let prs = derive_prs(&runs);
    // The tier speed matrix is measured once per campaign, not per shard:
    // keep the first part's, if any.
    let sim_speed = parts
        .iter()
        .find(|p| !p.sim_speed.is_empty())
        .map(|p| p.sim_speed.clone())
        .unwrap_or_default();
    Ok(BenchReport {
        scale,
        fault_seed,
        runs,
        prs,
        sim_speed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_campaign_covers_the_full_matrix() {
        let report = bench_report(Scale::Quick);
        assert_eq!(
            report.runs.len(),
            21 * 2 * 2,
            "16 benchmarks + 3 streamed variants + 2 micros, x 2 devices x 2 APIs"
        );
        assert_eq!(report.prs.len(), 21 * 2);
        assert!(
            report.runs.iter().all(|r| r.verified),
            "all NVIDIA runs verify"
        );
        assert!(!report.is_partial());
        assert!(report.runs.iter().all(|r| r.attempts == 1));
        // every run carries a populated counter set
        assert!(report
            .runs
            .iter()
            .all(|r| r.counters.get("warp_instructions").unwrap_or(0.0) > 0.0));
        // the paper-shape invariants the CI gate enforces
        let sobel = report.pr("Sobel", "GTX280").unwrap();
        assert!(
            sobel.pr > 1.0,
            "Sobel GTX280 PR {} (OpenCL const-mem win)",
            sobel.pr
        );
        let bfs = report.pr("BFS", "GTX280").unwrap();
        assert!(
            bfs.pr < 1.0,
            "BFS GTX280 PR {} (OpenCL launch-overhead loss)",
            bfs.pr
        );
        assert_eq!(bfs.dominant_counter, "launch_overhead_ns");
        // and the report survives serialisation
        let parsed = BenchReport::from_text(&report.to_text()).unwrap();
        assert_eq!(parsed.runs.len(), report.runs.len());
        assert_eq!(parsed.scale, "quick");
        assert_eq!(parsed.fault_seed, None);
    }

    #[test]
    fn unchanged_cells_are_reused_from_cache() {
        let first = bench_report(Scale::Quick);
        assert_eq!(first.cache_hits(), 0, "a cold campaign executes everything");
        assert!(first
            .runs
            .iter()
            .all(|r| r.input_hash.len() == 16 && !r.cached));

        // Second campaign over the same inputs: every cell is a hit.
        let opts = CampaignOptions {
            cache_from: Some(first.clone()),
            ..CampaignOptions::new(Scale::Quick)
        };
        let second = bench_report_with(&opts);
        assert_eq!(second.cache_hits(), second.runs.len());
        for (a, b) in first.runs.iter().zip(&second.runs) {
            assert_eq!(a.input_hash, b.input_hash);
            assert_eq!(a.value, b.value);
            assert!(b.cached);
        }
        // The PR table is re-derived and identical.
        for (a, b) in first.prs.iter().zip(&second.prs) {
            assert_eq!(a.pr, b.pr);
            assert_eq!(a.dominant_counter, b.dominant_counter);
        }

        // A stale fingerprint forces exactly that cell to re-execute.
        let mut stale = first.clone();
        let key = (
            stale.runs[0].bench.clone(),
            stale.runs[0].device.clone(),
            stale.runs[0].api.clone(),
        );
        stale.runs[0].input_hash = "stale".into();
        let opts = CampaignOptions {
            cache_from: Some(stale),
            ..CampaignOptions::new(Scale::Quick)
        };
        let third = bench_report_with(&opts);
        assert_eq!(third.cache_hits(), third.runs.len() - 1);
        let rerun = third.run(&key.0, &key.1, &key.2).unwrap();
        assert!(!rerun.cached);
        assert_eq!(rerun.input_hash, first.runs[0].input_hash);
    }

    #[test]
    fn sharded_campaign_merges_to_the_full_matrix() {
        let full = bench_report(Scale::Quick);
        let parts: Vec<BenchReport> = (0..2)
            .map(|i| {
                let opts = CampaignOptions {
                    shard: Some((i, 2)),
                    ..CampaignOptions::new(Scale::Quick)
                };
                bench_report_with(&opts)
            })
            .collect();
        assert!(parts.iter().all(|p| p.runs.len() == 42), "half each");
        let merged = merge_reports(&parts).unwrap();
        assert_eq!(merged.runs.len(), full.runs.len());
        assert_eq!(merged.prs.len(), full.prs.len());
        for (a, b) in full.runs.iter().zip(&merged.runs) {
            assert_eq!((&a.bench, &a.device, &a.api), (&b.bench, &b.device, &b.api));
            assert_eq!(a.value, b.value);
        }
        for (a, b) in full.prs.iter().zip(&merged.prs) {
            assert_eq!(a.pr, b.pr);
        }
    }

    #[test]
    fn overlapping_shards_are_rejected_not_double_counted() {
        let shard = |i| {
            let opts = CampaignOptions {
                shard: Some((i, 2)),
                ..CampaignOptions::new(Scale::Quick)
            };
            bench_report_with(&opts)
        };
        let (a, b) = (shard(0), shard(1));

        // The same shard twice: every triple collides.
        let err = merge_reports(&[a.clone(), a.clone()]).unwrap_err();
        assert!(err.contains("duplicate run"), "{err}");
        assert!(err.contains("GPUCMP_SHARD"), "{err}");

        // Overlapping slices: a disjoint half plus a full campaign.
        let full = bench_report(Scale::Quick);
        let err = merge_reports(&[b.clone(), full]).unwrap_err();
        assert!(err.contains("duplicate run"), "{err}");

        // Shards from different campaigns don't merge either.
        let opts = CampaignOptions {
            fault_seed: Some(7),
            shard: Some((1, 2)),
            ..CampaignOptions::new(Scale::Quick)
        };
        let err = merge_reports(&[a, bench_report_with(&opts)]).unwrap_err();
        assert!(err.contains("fault_seed"), "{err}");
        assert!(merge_reports(&[b.clone(), b]).is_err());
    }

    #[test]
    fn fault_campaigns_never_serve_from_cache() {
        let clean = bench_report(Scale::Quick);
        let opts = CampaignOptions {
            fault_seed: Some(42),
            cache_from: Some(clean),
            ..CampaignOptions::new(Scale::Quick)
        };
        let report = bench_report_with(&opts);
        assert_eq!(report.cache_hits(), 0, "injection campaigns must inject");
        assert!(report.runs.iter().filter(|r| r.attempts > 1).count() > 5);
    }

    #[test]
    fn injected_faults_recover_on_retry_and_the_report_stays_complete() {
        let opts = CampaignOptions {
            fault_seed: Some(42),
            ..CampaignOptions::new(Scale::Quick)
        };
        let report = bench_report_with(&opts);
        assert_eq!(report.runs.len(), 84, "every triple is reported");
        assert_eq!(report.fault_seed, Some(42));
        // With attempt-0 injection and a clean retry, every injected
        // triple recovers: the report is complete, but the retries show.
        let retried = report.runs.iter().filter(|r| r.attempts > 1).count();
        assert!(
            retried > 5,
            "a seeded campaign injects into a sizeable minority, got {retried}"
        );
        assert!(report.runs.iter().all(|r| r.is_ok()), "retries recover all");
        assert_eq!(report.prs.len(), 42);
        // Determinism: the same seed retries exactly the same triples.
        let again = bench_report_with(&opts);
        for (a, b) in report.runs.iter().zip(&again.runs) {
            assert_eq!(a.attempts, b.attempts, "{}/{}/{}", a.bench, a.device, a.api);
            assert_eq!(a.value, b.value);
        }
    }

    #[test]
    fn unrecoverable_faults_degrade_to_partial_reports_not_aborts() {
        // One attempt only: injected triples cannot recover, so the
        // campaign must degrade to a partial report instead of dying.
        let opts = CampaignOptions {
            fault_seed: Some(42),
            max_attempts: 1,
            ..CampaignOptions::new(Scale::Quick)
        };
        let report = bench_report_with(&opts);
        assert_eq!(report.runs.len(), 84, "skips are recorded, not dropped");
        assert!(report.is_partial());
        let skipped: Vec<_> = report.runs.iter().filter(|r| !r.is_ok()).collect();
        assert!(
            skipped.len() > 5 && skipped.len() < 53,
            "about a third skip, got {}",
            skipped.len()
        );
        for r in &skipped {
            assert_eq!(r.status, RUN_FAULT_SKIPPED);
            assert!(
                r.fault.as_deref().is_some_and(|f| !f.is_empty()),
                "{}",
                r.bench
            );
            assert!(!r.verified);
        }
        // PRs exist exactly for pairs whose both runs are ok.
        let ok_pairs = report
            .prs
            .iter()
            .filter(|p| {
                ["CUDA", "OpenCL"].iter().all(|api| {
                    report
                        .run(&p.bench, &p.device, api)
                        .is_some_and(|r| r.is_ok())
                })
            })
            .count();
        assert_eq!(ok_pairs, report.prs.len());
        assert!(report.prs.len() < 42);
        // The partial report round-trips.
        let parsed = BenchReport::from_text(&report.to_text()).unwrap();
        assert!(parsed.is_partial());
        assert_eq!(
            parsed.runs.iter().filter(|r| !r.is_ok()).count(),
            skipped.len()
        );
    }
}
