//! The full profiled benchmark campaign behind `BENCH_<timestamp>.json`.
//!
//! Runs all 16 benchmarks (Table II real-world + the two synthetic peaks)
//! on both NVIDIA devices through both APIs — 64 runs — collecting the
//! per-run hardware-counter sets, then derives the per-(benchmark,
//! device) PRs with a machine-attributed *dominant counter* (the
//! profiling analogue of the paper's Section IV prose explanations).

use crate::experiments::{run_cuda, run_opencl};
use crate::pr::Pr;
use gpucmp_benchmarks::Scale;
use gpucmp_sim::DeviceSpec;
use gpucmp_trace::{dominant_counter, BenchReport, BenchRun, PrEntry};
use rayon::prelude::*;

/// Device names the campaign covers (the paper's CUDA-capable pair).
pub const CAMPAIGN_DEVICES: [&str; 2] = ["GTX280", "GTX480"];

fn all_benchmarks(scale: Scale) -> Vec<Box<dyn gpucmp_benchmarks::Benchmark>> {
    let mut v = gpucmp_benchmarks::real_world(scale);
    v.extend(gpucmp_benchmarks::synthetic(scale));
    v
}

/// Run the whole campaign at `scale`. Parallelised over (benchmark,
/// device, API) triples; every number is deterministic for any host
/// thread count.
pub fn bench_report(scale: Scale) -> BenchReport {
    let n = all_benchmarks(scale).len();
    let triples: Vec<(usize, &'static str, &'static str)> = (0..n)
        .flat_map(|i| {
            CAMPAIGN_DEVICES
                .into_iter()
                .flat_map(move |d| [(i, d, "CUDA"), (i, d, "OpenCL")])
        })
        .collect();
    let mut runs: Vec<(usize, BenchRun)> = triples
        .par_iter()
        .map(|&(i, dev_name, api)| {
            let bench = &all_benchmarks(scale)[i];
            let device = DeviceSpec::by_name(dev_name).unwrap();
            let out = if api == "CUDA" {
                run_cuda(bench.as_ref(), &device)
            } else {
                run_opencl(bench.as_ref(), &device)
            }
            .expect("campaign benchmarks must run on NVIDIA devices");
            let counters = out.stats.counter_set(device.warp_width);
            let sim_cycles = counters.get("issue_cycles").unwrap_or(0.0);
            (
                i,
                BenchRun {
                    bench: bench.name().to_string(),
                    device: dev_name.to_string(),
                    api: api.to_string(),
                    value: out.value,
                    unit: out.metric.unit().to_string(),
                    verified: out.verify.is_pass(),
                    wall_ns: out.wall_ns,
                    kernel_ns: out.kernel_ns,
                    launches: out.launches,
                    sim_cycles,
                    counters,
                },
            )
        })
        .collect();
    // deterministic order: benchmark registry order, device, then API
    runs.sort_by(|a, b| (a.0, &a.1.device, &a.1.api).cmp(&(b.0, &b.1.device, &b.1.api)));
    let runs: Vec<BenchRun> = runs.into_iter().map(|(_, r)| r).collect();

    let bench_names: Vec<String> = {
        let mut seen = Vec::new();
        for r in &runs {
            if !seen.contains(&r.bench) {
                seen.push(r.bench.clone());
            }
        }
        seen
    };
    let mut prs = Vec::new();
    for bench in &bench_names {
        for dev in CAMPAIGN_DEVICES {
            let find = |api: &str| {
                runs.iter()
                    .find(|r| &r.bench == bench && r.device == dev && r.api == api)
            };
            let (Some(c), Some(o)) = (find("CUDA"), find("OpenCL")) else {
                continue;
            };
            let perf = |r: &BenchRun| {
                if r.unit == "sec" {
                    1.0 / r.value
                } else {
                    r.value
                }
            };
            let pr = Pr::from_performance(perf(o), perf(c));
            // Inside the paper's |1 - PR| < 0.1 similarity band the APIs
            // perform the same; attribution only explains real gaps.
            let dominant = if pr.is_similar() {
                "comparable".to_string()
            } else {
                dominant_counter(
                    &c.counters,
                    c.wall_ns,
                    c.kernel_ns,
                    &o.counters,
                    o.wall_ns,
                    o.kernel_ns,
                )
            };
            prs.push(PrEntry {
                bench: bench.clone(),
                device: dev.to_string(),
                pr: pr.0,
                dominant_counter: dominant,
            });
        }
    }

    BenchReport {
        scale: match scale {
            Scale::Quick => "quick".to_string(),
            Scale::Paper => "paper".to_string(),
        },
        runs,
        prs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_campaign_covers_the_full_matrix() {
        let report = bench_report(Scale::Quick);
        assert_eq!(
            report.runs.len(),
            16 * 2 * 2,
            "16 benchmarks x 2 devices x 2 APIs"
        );
        assert_eq!(report.prs.len(), 16 * 2);
        assert!(
            report.runs.iter().all(|r| r.verified),
            "all NVIDIA runs verify"
        );
        // every run carries a populated counter set
        assert!(report
            .runs
            .iter()
            .all(|r| r.counters.get("warp_instructions").unwrap_or(0.0) > 0.0));
        // the paper-shape invariants the CI gate enforces
        let sobel = report.pr("Sobel", "GTX280").unwrap();
        assert!(
            sobel.pr > 1.0,
            "Sobel GTX280 PR {} (OpenCL const-mem win)",
            sobel.pr
        );
        let bfs = report.pr("BFS", "GTX280").unwrap();
        assert!(
            bfs.pr < 1.0,
            "BFS GTX280 PR {} (OpenCL launch-overhead loss)",
            bfs.pr
        );
        assert_eq!(bfs.dominant_counter, "launch_overhead_ns");
        // and the report survives serialisation
        let parsed = BenchReport::from_text(&report.to_text()).unwrap();
        assert_eq!(parsed.runs.len(), report.runs.len());
        assert_eq!(parsed.scale, "quick");
    }
}
