//! Host-side wall-clock of the simulator's execution tiers.
//!
//! Runs every campaign benchmark on the GTX480/CUDA cell under each
//! execution tier (interpreter, pre-decoded, fused) and records how long
//! the *host* took to simulate it, via the per-launch
//! [`gpucmp_sim::ExecProfile`] counters (execution + merge time only, so
//! host-side input generation and verification don't pollute the
//! comparison). The simulated reports are bit-identical across tiers by
//! the tier-parity contract (`crates/sim/src/dispatch.rs`); these numbers
//! are the *reason* the tiers exist.
//!
//! One [`Cuda`] session per (benchmark, tier): rep 1 pays the decode (the
//! session code cache is cold), later reps hit the cache, and the
//! min-of-reps damps scheduler noise. Serial simulation (1 worker) keeps
//! the measurement about the dispatch loop, not the block scheduler.

use crate::bench_report::all_benchmarks;
use gpucmp_benchmarks::{Benchmark, Scale};
use gpucmp_runtime::{Cuda, Gpu};
use gpucmp_sim::{DeviceSpec, ExecOptions, ExecTier};
use gpucmp_trace::SimSpeed;

/// Repetitions per (benchmark, tier); the minimum is reported.
pub const SIM_SPEED_REPS: u32 = 5;

/// Extra measurement rounds granted to rows whose first round came out
/// inverted (fused no faster than interp). Each round folds more samples
/// into the per-tier minimum, which converges on the true cost as
/// transient host noise is discarded; a tier that is *genuinely* slower
/// stays slower no matter how many samples are taken.
pub const SIM_SPEED_RETRIES: u32 = 2;

/// One run's host execution+merge time, ns, in an existing session.
fn one_run(bench: &dyn Benchmark, gpu: &mut Cuda) -> u64 {
    let p0 = gpu.session().profile_total();
    let before = p0.host_exec_ns + p0.host_merge_ns;
    bench.run(gpu).expect("sim-speed run");
    let p = gpu.session().profile_total();
    p.host_exec_ns + p.host_merge_ns - before
}

/// Host execution+merge time of one benchmark under all three tiers, ns
/// (min over `reps` runs per tier). The tiers are *interleaved* within
/// each rep — interp, decoded, fused, interp, decoded, fused, … — so an
/// ambient host slowdown lands on every tier of the affected rep instead
/// of biasing whichever tier happened to be measured during it; the
/// min-of-reps then discards the slow reps for all tiers alike.
fn time_bench(bench: &dyn Benchmark, device: &DeviceSpec, reps: u32) -> [u64; 3] {
    let tiers = [ExecTier::Interp, ExecTier::Decoded, ExecTier::Fused];
    let mut gpus: Vec<Cuda> = tiers
        .iter()
        .map(|&tier| {
            let mut gpu = Cuda::new(device.clone()).expect("NVIDIA device");
            gpu.set_exec_options(ExecOptions::serial().tier(tier));
            gpu
        })
        .collect();
    let mut best = [u64::MAX; 3];
    for _ in 0..reps.max(1) {
        for (i, gpu) in gpus.iter_mut().enumerate() {
            best[i] = best[i].min(one_run(bench, gpu));
        }
    }
    best
}

/// Measure the tier speed matrix: every campaign benchmark at `scale`,
/// GTX480 through CUDA, all three tiers, [`SIM_SPEED_REPS`] reps each.
/// Rows come back in campaign registry order.
pub fn measure_sim_speed(scale: Scale) -> Vec<SimSpeed> {
    let device = DeviceSpec::gtx480();
    all_benchmarks(scale)
        .iter()
        .map(|bench| {
            let mut best = time_bench(bench.as_ref(), &device, SIM_SPEED_REPS);
            // Noise-inverted row: fold in more samples before reporting.
            // The per-tier minima only ever tighten, so a clean first
            // round is never revisited and a real inversion survives.
            for _ in 0..SIM_SPEED_RETRIES {
                if best[2] < best[0] {
                    break;
                }
                let again = time_bench(bench.as_ref(), &device, SIM_SPEED_REPS);
                for (b, a) in best.iter_mut().zip(again) {
                    *b = (*b).min(a);
                }
            }
            let [interp_ns, decoded_ns, fused_ns] = best;
            SimSpeed {
                bench: bench.name().to_string(),
                interp_ns,
                decoded_ns,
                fused_ns,
            }
        })
        .collect()
}

/// Render the matrix as an aligned text table.
pub fn sim_speed_table(rows: &[SimSpeed]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "Benchmark", "interp (ms)", "decoded (ms)", "fused (ms)", "dec x", "fused x"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<14} {:>12.3} {:>12.3} {:>12.3} {:>8.2}x {:>8.2}x",
            r.bench,
            r.interp_ns as f64 / 1e6,
            r.decoded_ns as f64 / 1e6,
            r.fused_ns as f64 / 1e6,
            r.decoded_speedup(),
            r.fused_speedup(),
        );
    }
    out
}
