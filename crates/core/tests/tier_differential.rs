//! Differential tests of the execution tiers over the full benchmark
//! suite: the interpreter, the pre-decoded tier, and the fused tier must
//! produce bit-identical run outputs — metric values, virtual times,
//! merged counters — at any host thread count, under seeded fault
//! injection, and with the memcheck sanitizer on. These are the
//! campaign-level teeth of the per-kernel parity tests in
//! `crates/sim/tests/tiers.rs`.

use gpucmp_benchmarks::{Benchmark, Scale};
use gpucmp_core::experiments::run_cuda_with_exec;
use gpucmp_runtime::{Cuda, FaultPlan, Gpu, SessionEvent};
use gpucmp_sim::{DeviceSpec, ExecOptions, ExecStats, ExecTier};

const TIERS: [ExecTier; 3] = [ExecTier::Interp, ExecTier::Decoded, ExecTier::Fused];

fn all_benches() -> Vec<Box<dyn Benchmark>> {
    let mut v = gpucmp_benchmarks::real_world(Scale::Quick);
    v.extend(gpucmp_benchmarks::synthetic(Scale::Quick));
    v.extend(gpucmp_benchmarks::streamed_variants(Scale::Quick));
    v
}

fn opts(tier: ExecTier, threads: usize) -> ExecOptions {
    ExecOptions::with_threads(threads).tier(tier)
}

/// Everything a run reports, in a bit-comparable form.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    value: u64,
    kernel_ns: u64,
    wall_ns: u64,
    launches: u64,
    verified: bool,
    stats: ExecStats,
}

fn fingerprint(out: &gpucmp_benchmarks::RunOutput) -> Fingerprint {
    Fingerprint {
        value: out.value.to_bits(),
        kernel_ns: out.kernel_ns.to_bits(),
        wall_ns: out.wall_ns.to_bits(),
        launches: out.launches,
        verified: out.verify.is_pass(),
        stats: out.stats.clone(),
    }
}

#[test]
fn every_benchmark_is_bit_identical_across_tiers_and_thread_counts() {
    let device = DeviceSpec::gtx480();
    for bench in all_benches() {
        let base = run_cuda_with_exec(bench.as_ref(), &device, None, opts(ExecTier::Interp, 1))
            .expect("interp baseline");
        assert!(base.verify.is_pass(), "{} baseline verifies", bench.name());
        let want = fingerprint(&base);
        for tier in TIERS {
            for threads in [1usize, 8] {
                if tier == ExecTier::Interp && threads == 1 {
                    continue; // that is the baseline
                }
                let out = run_cuda_with_exec(bench.as_ref(), &device, None, opts(tier, threads))
                    .expect("tier run");
                assert_eq!(
                    fingerprint(&out),
                    want,
                    "{} under {}@{threads} diverged from the interpreter",
                    bench.name(),
                    tier.name(),
                );
            }
        }
    }
}

/// Outcome of a run under fault injection, in a tier-comparable form:
/// either the full fingerprint or the exact error text.
fn faulted_outcome(
    bench: &dyn Benchmark,
    device: &DeviceSpec,
    plan: &FaultPlan,
    tier: ExecTier,
) -> Result<Fingerprint, String> {
    run_cuda_with_exec(bench, device, Some(plan.clone()), opts(tier, 1))
        .map(|out| fingerprint(&out))
        .map_err(|e| e.to_string())
}

#[test]
fn fault_injection_outcomes_are_tier_invariant() {
    let device = DeviceSpec::gtx480();
    // A handful of seeds x the whole suite would take minutes; the
    // per-kernel fault-site parity is already pinned by the sim-level
    // tests, so a representative slice of benchmarks suffices here.
    for bench in all_benches().iter().take(6) {
        for seed in [7u64, 42] {
            let case = format!("{}/GTX480/CUDA", bench.name());
            let plan = FaultPlan::for_case(seed, &case, 0);
            let base = faulted_outcome(bench.as_ref(), &device, &plan, ExecTier::Interp);
            for tier in [ExecTier::Decoded, ExecTier::Fused] {
                let got = faulted_outcome(bench.as_ref(), &device, &plan, tier);
                assert_eq!(
                    got,
                    base,
                    "{case} seed {seed}: {} tier disagrees with the interpreter",
                    tier.name()
                );
            }
        }
    }
}

/// The memcheck sanitizer changes the dispatch path (faults are recorded
/// instead of aborting); every tier must walk it identically, down to
/// the recorded fault events on the virtual timeline.
#[test]
fn memcheck_runs_are_tier_invariant() {
    let device = DeviceSpec::gtx480();
    for bench in all_benches().iter().take(4) {
        let run_tier = |tier: ExecTier| -> (Fingerprint, Vec<String>) {
            let mut gpu = Cuda::new(device.clone()).expect("NVIDIA device");
            gpu.set_exec_options(opts(tier, 1));
            gpu.set_memcheck(true);
            gpu.set_tracing(true);
            let out = bench.run(&mut gpu).expect("memcheck run");
            let faults = gpu
                .trace_events()
                .iter()
                .filter_map(|e| match e {
                    SessionEvent::Fault { .. } => Some(format!("{e:?}")),
                    _ => None,
                })
                .collect();
            (fingerprint(&out), faults)
        };
        let base = run_tier(ExecTier::Interp);
        for tier in [ExecTier::Decoded, ExecTier::Fused] {
            assert_eq!(
                run_tier(tier),
                base,
                "{} memcheck run diverged under {}",
                bench.name(),
                tier.name()
            );
        }
    }
}
