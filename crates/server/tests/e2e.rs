//! End-to-end tests over real sockets: the full client → TCP → service
//! → virtual-GPU path, including the chaos story (one tenant faulting
//! while its neighbours keep computing bit-exact results).

use gpucmp_server::protocol::{write_frame, ErrorKind, Request, Response};
use gpucmp_server::{serve_local, Client, RetryPolicy, ServerConfig};
use std::time::Duration;

fn quick_retry(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 50,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(10),
        deadline: Duration::from_secs(10),
        seed,
    }
}

fn fill_params(ptr: u64, n: u32, v: f32) -> Vec<u64> {
    vec![ptr, n as u64, f32::to_bits(v) as u64]
}

#[test]
fn tcp_round_trip_computes() {
    let mut server = serve_local(ServerConfig {
        slots: 2,
        arena_bytes: 8 << 20,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    let s = c.open("acme", &quick_retry(1)).unwrap();
    let n = 1024u32;
    let ptr = c.alloc(s, n as u64 * 4).unwrap();
    let kernel_ns = c
        .launch(s, "fill", n / 128, 128, fill_params(ptr, n, 4.25))
        .unwrap();
    assert!(kernel_ns > 0.0);
    let data = c.read(s, ptr, n as u64 * 4).unwrap();
    assert_eq!(data.len(), n as usize * 4);
    for chunk in data.chunks_exact(4) {
        assert_eq!(f32::from_le_bytes(chunk.try_into().unwrap()), 4.25);
    }
    c.close(s).unwrap();
    let stats = c.stats().unwrap();
    assert_eq!(stats.opens, 1);
    assert_eq!(stats.closes, 1);
    assert_eq!(stats.slots_free, 2);
    server.shutdown();
}

#[test]
fn busy_backpressure_resolves_with_retry() {
    let mut server = serve_local(ServerConfig {
        slots: 1,
        arena_bytes: 4 << 20,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    let mut holder = Client::connect(addr).unwrap();
    let held = holder.open("holder", &quick_retry(2)).unwrap();

    // A second open is Busy immediately (no retry)...
    let mut waiter = Client::connect(addr).unwrap();
    let resp = waiter
        .request(&Request::Open {
            tenant: "waiter".into(),
        })
        .unwrap();
    assert!(
        matches!(
            resp,
            Response::Error {
                kind: ErrorKind::Busy,
                ..
            }
        ),
        "{resp:?}"
    );

    // ...but succeeds under retry once the holder lets go.
    let closer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(20));
        holder.close(held).unwrap();
    });
    let s = waiter.open("waiter", &quick_retry(3)).unwrap();
    closer.join().unwrap();
    waiter.close(s).unwrap();

    let stats = waiter.stats().unwrap();
    assert!(stats.busy_rejections >= 1);
    assert_eq!(stats.slots_free, 1);
    server.shutdown();
}

#[test]
fn chaos_tenant_does_not_perturb_neighbours() {
    let mut server = serve_local(ServerConfig {
        slots: 3,
        arena_bytes: 8 << 20,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    // The fault-free reference: what a lone well-behaved tenant reads
    // back.
    let reference = {
        let mut c = Client::connect(addr).unwrap();
        let s = c.open("ref", &quick_retry(7)).unwrap();
        let ptr = c.alloc(s, 512 * 4).unwrap();
        c.launch(s, "fill", 4, 128, fill_params(ptr, 512, 9.5))
            .unwrap();
        let data = c.read(s, ptr, 512 * 4).unwrap();
        c.close(s).unwrap();
        data
    };

    // Two good tenants and one chaos tenant run concurrently.
    let good = |tenant: &'static str, seed: u64| {
        std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            let s = c.open(tenant, &quick_retry(seed)).unwrap();
            let ptr = c.alloc(s, 512 * 4).unwrap();
            let mut out = Vec::new();
            for _ in 0..10 {
                c.launch(s, "fill", 4, 128, fill_params(ptr, 512, 9.5))
                    .unwrap();
                out = c.read(s, ptr, 512 * 4).unwrap();
            }
            c.close(s).unwrap();
            out
        })
    };
    let chaos = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        let s = c.open("mallory", &quick_retry(13)).unwrap();
        let ptr = c.alloc(s, 1024).unwrap();
        for _ in 0..5 {
            // Fault, observe stickiness, reset, repeat.
            let e = c.launch(s, "oob", 1, 32, vec![ptr]).unwrap_err();
            assert_eq!(e.kind(), Some(ErrorKind::DeviceFault), "{e}");
            let e = c.alloc(s, 64).unwrap_err();
            assert_eq!(e.kind(), Some(ErrorKind::ContextLost), "{e}");
            assert!(c.reset_session(s).unwrap(), "reset clears a fault");
            let _ = c.alloc(s, 1024).unwrap();
        }
        c.close(s).unwrap();
    });

    let a = good("alice", 21).join().unwrap();
    let b = good("bob", 22).join().unwrap();
    chaos.join().unwrap();

    assert_eq!(a, reference, "alice's bytes match the fault-free run");
    assert_eq!(b, reference, "bob's bytes match the fault-free run");

    let mut c = Client::connect(addr).unwrap();
    let stats = c.stats().unwrap();
    assert_eq!(stats.device_faults, 5);
    assert_eq!(stats.context_lost, 5);
    assert_eq!(stats.slots_free, 3, "every slot returned to the pool");
    assert_eq!(stats.slots, 3, "the pool never grew");
    server.shutdown();
}

#[test]
fn malformed_frame_gets_typed_error_then_hangup() {
    let mut server = serve_local(ServerConfig {
        slots: 1,
        arena_bytes: 4 << 20,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    write_frame(&mut stream, &[200, 1, 2, 3]).unwrap();
    use std::io::Read;
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).unwrap();
    // One response frame, then EOF.
    let payload = &buf[4..4 + u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize];
    match Response::decode(payload).unwrap() {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::BadRequest),
        other => panic!("{other:?}"),
    }
    assert_eq!(
        buf.len(),
        4 + payload.len(),
        "connection closed after the error"
    );
    server.shutdown();
}

#[test]
fn shutdown_severs_idle_connections() {
    let mut server = serve_local(ServerConfig {
        slots: 1,
        arena_bytes: 4 << 20,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let mut idle = Client::connect(addr).unwrap();
    let s = idle.open("idle", &quick_retry(4)).unwrap();
    // Shut down while the client still has a session and an open
    // connection: shutdown must not hang, and the next request must
    // fail at the transport level.
    server.shutdown();
    assert!(idle.request(&Request::Close { session: s }).is_err());
    assert!(Client::connect(addr).is_err(), "listener is gone");
}
