//! The wire protocol: length-prefixed frames of manually encoded
//! messages.
//!
//! Every frame is a little-endian `u32` payload length followed by the
//! payload; the first payload byte is the message tag. Encoding is
//! hand-rolled (the workspace is dependency-free) and deliberately dumb:
//! fixed-width little-endian integers, `u16`-length strings, `u32`-length
//! byte blobs. A frame longer than [`MAX_FRAME`] is a protocol error on
//! both sides — the server must never trust a client-supplied length.

use std::io::{self, Read, Write};

/// Hard ceiling on one frame's payload (16 MiB): bounds per-connection
/// buffering no matter what length prefix a client sends.
pub const MAX_FRAME: u32 = 16 << 20;

/// A client-to-server request. `session` handles come from
/// [`Response::Opened`] and die with `Close`/`Reset`-after-recycle.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Open a session for `tenant`, claiming a pooled slot.
    Open {
        /// Tenant name (quota accounting key).
        tenant: String,
    },
    /// Close a session, recycling its slot.
    Close {
        /// Session handle.
        session: u64,
    },
    /// Allocate `bytes` of device memory in the session's arena.
    Alloc {
        /// Session handle.
        session: u64,
        /// Allocation size in bytes.
        bytes: u64,
    },
    /// Host-to-device write at `ptr`.
    Write {
        /// Session handle.
        session: u64,
        /// Destination device pointer.
        ptr: u64,
        /// Bytes to copy in.
        data: Vec<u8>,
    },
    /// Device-to-host read of `bytes` from `ptr`.
    Read {
        /// Session handle.
        session: u64,
        /// Source device pointer.
        ptr: u64,
        /// Bytes to copy out.
        bytes: u64,
    },
    /// Launch a named server-registry kernel (see `crate::kernels`).
    Launch {
        /// Session handle.
        session: u64,
        /// Registry kernel name.
        kernel: String,
        /// Grid extent (1-D, in blocks).
        grid: u32,
        /// Block extent (1-D, in threads).
        block: u32,
        /// Raw 64-bit parameter slots (pointers verbatim, scalars
        /// zero/sign-extended, f32 in the low 32 bits).
        params: Vec<u64>,
    },
    /// Reset the session's context (clears a sticky fault; device memory,
    /// kernels and decoded code are discarded).
    Reset {
        /// Session handle.
        session: u64,
    },
    /// Fetch the server's counters.
    Stats,
}

/// Typed error classes: the machine-readable half of an error response.
/// `Busy` and `QuotaExceeded` are the admission-control backpressure
/// signals a client may retry; the rest are request or session state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The slot pool (or an admission queue) is at capacity — retry with
    /// backoff.
    Busy,
    /// The request would exceed the tenant's quota — shed load or close
    /// sessions; retrying without freeing anything cannot succeed.
    QuotaExceeded,
    /// The session's context is poisoned by an earlier device fault;
    /// every request but `Reset`/`Close` fails with this until reset.
    ContextLost,
    /// The launch faulted on the device; the context is now poisoned.
    DeviceFault,
    /// Device memory exhausted (arena, not quota).
    OutOfMemory,
    /// Unknown or stale session handle.
    BadSession,
    /// Launch named a kernel the server registry does not have.
    UnknownKernel,
    /// Malformed or inapplicable request.
    BadRequest,
}

impl ErrorKind {
    /// Whether a client retry can possibly succeed without the client
    /// first changing something (closing sessions, resetting).
    pub fn is_retryable(self) -> bool {
        matches!(self, ErrorKind::Busy)
    }

    fn tag(self) -> u8 {
        match self {
            ErrorKind::Busy => 0,
            ErrorKind::QuotaExceeded => 1,
            ErrorKind::ContextLost => 2,
            ErrorKind::DeviceFault => 3,
            ErrorKind::OutOfMemory => 4,
            ErrorKind::BadSession => 5,
            ErrorKind::UnknownKernel => 6,
            ErrorKind::BadRequest => 7,
        }
    }

    fn from_tag(t: u8) -> Option<Self> {
        Some(match t {
            0 => ErrorKind::Busy,
            1 => ErrorKind::QuotaExceeded,
            2 => ErrorKind::ContextLost,
            3 => ErrorKind::DeviceFault,
            4 => ErrorKind::OutOfMemory,
            5 => ErrorKind::BadSession,
            6 => ErrorKind::UnknownKernel,
            7 => ErrorKind::BadRequest,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ErrorKind::Busy => "Busy",
            ErrorKind::QuotaExceeded => "QuotaExceeded",
            ErrorKind::ContextLost => "ContextLost",
            ErrorKind::DeviceFault => "DeviceFault",
            ErrorKind::OutOfMemory => "OutOfMemory",
            ErrorKind::BadSession => "BadSession",
            ErrorKind::UnknownKernel => "UnknownKernel",
            ErrorKind::BadRequest => "BadRequest",
        })
    }
}

/// Server counters, readable over the wire (`Request::Stats`): the soak
/// harness's fault-isolation evidence and the chaos tests' assertions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Sessions opened.
    pub opens: u64,
    /// Sessions closed (slot recycles = `closes`, the pool never grows).
    pub closes: u64,
    /// Open requests rejected with `Busy` (pool exhausted).
    pub busy_rejections: u64,
    /// Requests rejected with `QuotaExceeded`.
    pub quota_rejections: u64,
    /// Kernel launches that completed.
    pub launches: u64,
    /// Launches that faulted on the device (each poisons one session).
    pub device_faults: u64,
    /// Requests bounced off a poisoned session (`ContextLost`).
    pub context_lost: u64,
    /// Session resets (client `Reset` requests plus recycle resets).
    pub resets: u64,
    /// Preallocated slots in the pool.
    pub slots: u32,
    /// Slots currently free.
    pub slots_free: u32,
}

/// A server-to-client response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Session opened.
    Opened {
        /// The new session handle.
        session: u64,
    },
    /// Session closed, slot recycled.
    Closed,
    /// Memory allocated.
    Allocated {
        /// Device pointer of the allocation.
        ptr: u64,
    },
    /// Write completed.
    Written,
    /// Read completed.
    Data {
        /// The bytes read back.
        data: Vec<u8>,
    },
    /// Launch completed.
    Launched {
        /// Kernel time on the session's virtual timeline, ns.
        kernel_ns: f64,
    },
    /// Context reset.
    ResetDone {
        /// Decoded kernels evicted from the session code cache.
        evicted: u32,
        /// Whether the reset cleared a sticky fault.
        had_fault: bool,
    },
    /// Server counters.
    Stats(ServerStats),
    /// Typed failure.
    Error {
        /// Machine-readable error class.
        kind: ErrorKind,
        /// Human-readable diagnostics.
        message: String,
    },
}

// ---- encoding helpers -------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let len = u16::try_from(s.len()).expect("string fits a u16 length");
    put_u16(out, len);
    out.extend_from_slice(s.as_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

/// Decode cursor over one frame payload.
struct Dec<'a> {
    b: &'a [u8],
}

/// A malformed frame (truncated, bad tag, bad UTF-8, trailing bytes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed frame: {}", self.0)
    }
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.b.len() < n {
            return Err(DecodeError(format!(
                "need {n} bytes, have {}",
                self.b.len()
            )));
        }
        let (head, tail) = self.b.split_at(n);
        self.b = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.u16()? as usize;
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| DecodeError("string is not UTF-8".into()))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, DecodeError> {
        let len = self.u32()?;
        if len > MAX_FRAME {
            return Err(DecodeError(format!("byte blob of {len} exceeds MAX_FRAME")));
        }
        Ok(self.take(len as usize)?.to_vec())
    }

    fn done(self) -> Result<(), DecodeError> {
        if self.b.is_empty() {
            Ok(())
        } else {
            Err(DecodeError(format!("{} trailing bytes", self.b.len())))
        }
    }
}

impl Request {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Open { tenant } => {
                out.push(0);
                put_str(&mut out, tenant);
            }
            Request::Close { session } => {
                out.push(1);
                put_u64(&mut out, *session);
            }
            Request::Alloc { session, bytes } => {
                out.push(2);
                put_u64(&mut out, *session);
                put_u64(&mut out, *bytes);
            }
            Request::Write { session, ptr, data } => {
                out.push(3);
                put_u64(&mut out, *session);
                put_u64(&mut out, *ptr);
                put_bytes(&mut out, data);
            }
            Request::Read {
                session,
                ptr,
                bytes,
            } => {
                out.push(4);
                put_u64(&mut out, *session);
                put_u64(&mut out, *ptr);
                put_u64(&mut out, *bytes);
            }
            Request::Launch {
                session,
                kernel,
                grid,
                block,
                params,
            } => {
                out.push(5);
                put_u64(&mut out, *session);
                put_str(&mut out, kernel);
                put_u32(&mut out, *grid);
                put_u32(&mut out, *block);
                out.push(u8::try_from(params.len()).expect("at most 255 params"));
                for p in params {
                    put_u64(&mut out, *p);
                }
            }
            Request::Reset { session } => {
                out.push(6);
                put_u64(&mut out, *session);
            }
            Request::Stats => out.push(7),
        }
        out
    }

    /// Decode one frame payload.
    pub fn decode(payload: &[u8]) -> Result<Request, DecodeError> {
        let mut d = Dec { b: payload };
        let req = match d.u8()? {
            0 => Request::Open { tenant: d.str()? },
            1 => Request::Close { session: d.u64()? },
            2 => Request::Alloc {
                session: d.u64()?,
                bytes: d.u64()?,
            },
            3 => Request::Write {
                session: d.u64()?,
                ptr: d.u64()?,
                data: d.bytes()?,
            },
            4 => Request::Read {
                session: d.u64()?,
                ptr: d.u64()?,
                bytes: d.u64()?,
            },
            5 => {
                let session = d.u64()?;
                let kernel = d.str()?;
                let grid = d.u32()?;
                let block = d.u32()?;
                let n = d.u8()? as usize;
                let mut params = Vec::with_capacity(n);
                for _ in 0..n {
                    params.push(d.u64()?);
                }
                Request::Launch {
                    session,
                    kernel,
                    grid,
                    block,
                    params,
                }
            }
            6 => Request::Reset { session: d.u64()? },
            7 => Request::Stats,
            t => return Err(DecodeError(format!("unknown request tag {t}"))),
        };
        d.done()?;
        Ok(req)
    }
}

impl Response {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Opened { session } => {
                out.push(0);
                put_u64(&mut out, *session);
            }
            Response::Closed => out.push(1),
            Response::Allocated { ptr } => {
                out.push(2);
                put_u64(&mut out, *ptr);
            }
            Response::Written => out.push(3),
            Response::Data { data } => {
                out.push(4);
                put_bytes(&mut out, data);
            }
            Response::Launched { kernel_ns } => {
                out.push(5);
                put_u64(&mut out, kernel_ns.to_bits());
            }
            Response::ResetDone { evicted, had_fault } => {
                out.push(6);
                put_u32(&mut out, *evicted);
                out.push(u8::from(*had_fault));
            }
            Response::Stats(s) => {
                out.push(7);
                for v in [
                    s.opens,
                    s.closes,
                    s.busy_rejections,
                    s.quota_rejections,
                    s.launches,
                    s.device_faults,
                    s.context_lost,
                    s.resets,
                ] {
                    put_u64(&mut out, v);
                }
                put_u32(&mut out, s.slots);
                put_u32(&mut out, s.slots_free);
            }
            Response::Error { kind, message } => {
                out.push(8);
                out.push(kind.tag());
                put_str(&mut out, message);
            }
        }
        out
    }

    /// Decode one frame payload.
    pub fn decode(payload: &[u8]) -> Result<Response, DecodeError> {
        let mut d = Dec { b: payload };
        let resp = match d.u8()? {
            0 => Response::Opened { session: d.u64()? },
            1 => Response::Closed,
            2 => Response::Allocated { ptr: d.u64()? },
            3 => Response::Written,
            4 => Response::Data { data: d.bytes()? },
            5 => Response::Launched {
                kernel_ns: d.f64()?,
            },
            6 => Response::ResetDone {
                evicted: d.u32()?,
                had_fault: d.u8()? != 0,
            },
            7 => Response::Stats(ServerStats {
                opens: d.u64()?,
                closes: d.u64()?,
                busy_rejections: d.u64()?,
                quota_rejections: d.u64()?,
                launches: d.u64()?,
                device_faults: d.u64()?,
                context_lost: d.u64()?,
                resets: d.u64()?,
                slots: d.u32()?,
                slots_free: d.u32()?,
            }),
            8 => {
                let kind = ErrorKind::from_tag(d.u8()?)
                    .ok_or_else(|| DecodeError("unknown error kind".into()))?;
                Response::Error {
                    kind,
                    message: d.str()?,
                }
            }
            t => return Err(DecodeError(format!("unknown response tag {t}"))),
        };
        d.done()?;
        Ok(resp)
    }
}

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "frame exceeds MAX_FRAME"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one length-prefixed frame. `Ok(None)` is a clean EOF at a frame
/// boundary (the peer hung up between messages).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside a frame header",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = vec![
            Request::Open {
                tenant: "acme".into(),
            },
            Request::Close { session: 7 },
            Request::Alloc {
                session: 7,
                bytes: 4096,
            },
            Request::Write {
                session: 7,
                ptr: 64,
                data: vec![1, 2, 3, 255],
            },
            Request::Read {
                session: 7,
                ptr: 64,
                bytes: 16,
            },
            Request::Launch {
                session: 7,
                kernel: "fill".into(),
                grid: 4,
                block: 128,
                params: vec![64, 512, 0x3f80_0000],
            },
            Request::Reset { session: 7 },
            Request::Stats,
        ];
        for req in reqs {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = vec![
            Response::Opened { session: 9 },
            Response::Closed,
            Response::Allocated { ptr: 128 },
            Response::Written,
            Response::Data {
                data: vec![0; 1000],
            },
            Response::Launched { kernel_ns: 123.5 },
            Response::ResetDone {
                evicted: 2,
                had_fault: true,
            },
            Response::Stats(ServerStats {
                opens: 1,
                closes: 2,
                busy_rejections: 3,
                quota_rejections: 4,
                launches: 5,
                device_faults: 6,
                context_lost: 7,
                resets: 8,
                slots: 9,
                slots_free: 10,
            }),
            Response::Error {
                kind: ErrorKind::QuotaExceeded,
                message: "resident bytes".into(),
            },
        ];
        for resp in resps {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[200]).is_err());
        // truncated session id
        assert!(Request::decode(&[1, 1, 2, 3]).is_err());
        // trailing garbage
        let mut p = Request::Stats.encode();
        p.push(0);
        assert!(Request::decode(&p).is_err());
        assert!(Response::decode(&[8, 200, 0, 0]).is_err());
    }

    #[test]
    fn frames_round_trip_and_bound_length() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none());

        // an adversarial length prefix is rejected before allocation
        let huge = (MAX_FRAME + 1).to_le_bytes();
        assert!(read_frame(&mut &huge[..]).is_err());
        // EOF mid-header is an error, not a silent None
        assert!(read_frame(&mut &[1u8, 0][..]).is_err());
    }

    #[test]
    fn only_busy_is_retryable() {
        for kind in [
            ErrorKind::Busy,
            ErrorKind::QuotaExceeded,
            ErrorKind::ContextLost,
            ErrorKind::DeviceFault,
            ErrorKind::OutOfMemory,
            ErrorKind::BadSession,
            ErrorKind::UnknownKernel,
            ErrorKind::BadRequest,
        ] {
            assert_eq!(kind.is_retryable(), kind == ErrorKind::Busy);
            // tags round-trip
            assert_eq!(ErrorKind::from_tag(kind.tag()), Some(kind));
        }
    }
}
