//! The TCP transport: one OS thread per connection over the frame
//! protocol, all policy delegated to [`SessionService`].
//!
//! The workspace is dependency-free (no async runtime), and the paper's
//! workloads are compute-bound simulations rather than I/O storms, so a
//! thread per connection is the right cost model: the concurrency
//! ceiling is the *slot pool*, not the connection count, and a blocked
//! connection thread costs one stack, not one session slot.
//!
//! Sessions are **not** tied to connections: a client may open a
//! session, disconnect, reconnect and keep using the handle. The price
//! is that an abandoned session holds its slot until someone closes it —
//! acceptable for a benchmarking service whose clients are harnesses,
//! and what keeps the protocol stateless per frame.

use crate::protocol::{read_frame, write_frame, ErrorKind, Request, Response};
use crate::service::{ServerConfig, SessionService};
use std::io::{self, BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Live connections, each a cloned stream handle (so shutdown can sever
/// the socket out from under a blocked reader) plus its thread.
type ConnList = Arc<Mutex<Vec<(TcpStream, JoinHandle<()>)>>>;

/// A running server: the bound address plus the machinery to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    service: Arc<SessionService>,
    stop: Arc<AtomicBool>,
    accept_join: Option<JoinHandle<()>>,
    conns: ConnList,
}

/// Bind `127.0.0.1:0` (or a caller-chosen port via `addr`) and serve
/// `cfg` until [`ServerHandle::shutdown`].
pub fn serve(cfg: ServerConfig, addr: &str) -> io::Result<ServerHandle> {
    let service = SessionService::new(cfg).map_err(io::Error::other)?;
    let listener = TcpListener::bind(addr)?;
    Ok(serve_on(Arc::new(service), listener))
}

fn serve_on(service: Arc<SessionService>, listener: TcpListener) -> ServerHandle {
    let addr = listener.local_addr().expect("bound listener has an addr");
    let stop = Arc::new(AtomicBool::new(false));
    let conns: ConnList = Arc::new(Mutex::new(Vec::new()));
    let accept_join = {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        let conns = Arc::clone(&conns);
        std::thread::Builder::new()
            .name("gpucmp-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let Ok(peer) = stream.try_clone() else {
                        continue;
                    };
                    let service = Arc::clone(&service);
                    let join = std::thread::Builder::new()
                        .name("gpucmp-conn".into())
                        .spawn(move || serve_conn(&service, stream))
                        .expect("spawn connection thread");
                    conns.lock().unwrap().push((peer, join));
                }
            })
            .expect("spawn accept thread")
    };
    ServerHandle {
        addr,
        service,
        stop,
        accept_join: Some(accept_join),
        conns,
    }
}

/// Serve one connection: read a frame, decode, handle, reply; repeat
/// until the peer hangs up or sends garbage. A malformed frame gets a
/// typed `BadRequest` *response* before the connection closes, so a
/// confused client sees why instead of a bare hangup.
fn serve_conn(service: &SessionService, stream: TcpStream) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    while let Ok(Some(payload)) = read_frame(&mut reader) {
        let (resp, fatal) = match Request::decode(&payload) {
            Ok(req) => (service.handle(req), false),
            Err(e) => (
                Response::Error {
                    kind: ErrorKind::BadRequest,
                    message: e.to_string(),
                },
                true,
            ),
        };
        if write_frame(&mut writer, &resp.encode()).is_err() || fatal {
            break;
        }
    }
    // Close the TCP connection for real: the accept loop keeps a cloned
    // handle for shutdown, so dropping our copies alone would leave the
    // peer waiting for an EOF that never comes.
    let _ = writer.get_ref().shutdown(Shutdown::Both);
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service behind the transport, for in-process inspection
    /// (stats, pool, harvested traces).
    pub fn service(&self) -> &SessionService {
        &self.service
    }

    /// Stop accepting, sever every live connection and join all server
    /// threads. Idempotent.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(j) = self.accept_join.take() {
            let _ = j.join();
        }
        // Sever connections so their threads see EOF and exit.
        let conns = std::mem::take(&mut *self.conns.lock().unwrap());
        for (stream, join) in conns {
            let _ = stream.shutdown(Shutdown::Both);
            let _ = join.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serve on an OS-assigned localhost port — the harness entry point.
pub fn serve_local(cfg: ServerConfig) -> io::Result<ServerHandle> {
    serve(cfg, "127.0.0.1:0")
}

/// A connection-level error from the client's point of view.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server replied with a typed error.
    Server {
        /// Machine-readable class.
        kind: ErrorKind,
        /// Server diagnostics.
        message: String,
    },
    /// The server replied with a different response than the request
    /// calls for (protocol bug).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Server { kind, message } => write!(f, "{kind}: {message}"),
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// The typed error kind, if the server sent one.
    pub fn kind(&self) -> Option<ErrorKind> {
        match self {
            ClientError::Server { kind, .. } => Some(*kind),
            _ => None,
        }
    }
}
