//! `gpucmp-server` — a multi-tenant session service over the virtual
//! GPUs.
//!
//! The simulator's sessions already have CUDA's sticky-fault semantics
//! (one faulting kernel poisons *its* context and nothing else); this
//! crate puts a server in front of them and makes the isolation story a
//! service contract:
//!
//! - [`pool`] — a wasmtime-style **pooling allocator**: every session
//!   slot and its device-memory arena is allocated at startup and
//!   recycled on session close. Steady state never allocates, and the
//!   pool size is the hard ceiling behind `Busy` backpressure.
//! - [`service`] — **admission control and per-tenant quotas** (open
//!   sessions, resident device bytes, in-flight launches, and a
//!   per-launch instruction budget enforced by the device watchdog),
//!   all violations surfacing as *typed* errors, never hangs.
//! - [`protocol`] — a dependency-free length-prefixed wire protocol
//!   with typed error classes; only [`protocol::ErrorKind::Busy`] is
//!   retryable.
//! - [`server`] — a thread-per-connection TCP front end.
//! - [`client`] — a blocking client with deadline-aware, *seeded*
//!   exponential-backoff retry (deterministic under a fixed seed).
//! - [`kernels`] — the server-side kernel registry: tenants launch
//!   vetted kernels by name; `spin` and `oob` exist as chaos vectors
//!   for watchdog and fault-isolation testing.

pub mod client;
pub mod kernels;
pub mod pool;
pub mod protocol;
pub mod server;
pub mod service;

pub use client::{Client, RetryPolicy};
pub use protocol::{ErrorKind, Request, Response, ServerStats};
pub use server::{serve, serve_local, ClientError, ServerHandle};
pub use service::{ServerConfig, SessionService, TenantQuota, TenantTrace};
