//! The server-side kernel registry.
//!
//! Clients launch kernels *by name* instead of shipping kernel source
//! over the wire: the registry is the server's attack-surface boundary
//! (a tenant can only run code the operator vetted) and keeps the
//! protocol free of compiler types. Each slot compiles a registry kernel
//! on first use and reuses the handle — plus the session's own decoded
//! code cache — until the slot is recycled.
//!
//! Two entries exist for chaos testing: `spin` burns instruction budget
//! (a runaway tenant; trips the watchdog under a per-tenant
//! instruction-budget cap) and `oob` stores far outside its buffer (a
//! buggy tenant; faults the context). Both poison *only* the launching
//! session.

use gpucmp_compiler::{global_id_x, ld_global, DslKernel, Expr, KernelDef};
use gpucmp_ptx::Ty;

/// Names the registry serves, in a stable order.
pub const KERNEL_NAMES: [&str; 4] = ["fill", "saxpy", "spin", "oob"];

/// Build the registry kernel `name`, or `None` if unknown.
///
/// Parameter conventions (all launches are 1-D; params are raw 64-bit
/// slots):
///
/// | name    | params                                        |
/// |---------|-----------------------------------------------|
/// | `fill`  | out ptr, n (s32), value (f32 bits)            |
/// | `saxpy` | x ptr, y ptr, a (f32 bits), n (s32)           |
/// | `spin`  | out ptr, iters (s32)                          |
/// | `oob`   | out ptr (stores ~256 MiB past the arena)      |
pub fn kernel_def(name: &str) -> Option<KernelDef> {
    match name {
        "fill" => {
            let mut k = DslKernel::new("fill");
            let out = k.param_ptr("out");
            let n = k.param("n", Ty::S32);
            let value = k.param("value", Ty::F32);
            let gid = k.let_(Ty::S32, global_id_x());
            k.if_(Expr::from(gid).lt(n), |k| {
                k.st_global(out.clone(), gid, Ty::F32, value.clone());
            });
            Some(k.finish())
        }
        "saxpy" => {
            let mut k = DslKernel::new("saxpy");
            let x = k.param_ptr("x");
            let y = k.param_ptr("y");
            let a = k.param("a", Ty::F32);
            let n = k.param("n", Ty::S32);
            let gid = k.let_(Ty::S32, global_id_x());
            k.if_(Expr::from(gid).lt(n), |k| {
                let xv = k.let_(Ty::F32, ld_global(x.clone(), gid, Ty::F32));
                let yv = k.let_(Ty::F32, ld_global(y.clone(), gid, Ty::F32));
                k.st_global(y.clone(), gid, Ty::F32, a.clone() * xv + Expr::from(yv));
            });
            Some(k.finish())
        }
        "spin" => {
            // `iters` additions per thread; thread 0 publishes the sum so
            // the loop has an observable effect and cannot be elided.
            let mut k = DslKernel::new("spin");
            let out = k.param_ptr("out");
            let iters = k.param("iters", Ty::S32);
            let gid = k.let_(Ty::S32, global_id_x());
            let acc = k.let_(Ty::S32, 0i32);
            let i = k.let_(Ty::S32, 0i32);
            k.while_(Expr::from(i).lt(iters), |k| {
                k.assign(acc, Expr::from(acc) + i);
                k.assign(i, Expr::from(i) + 1i32);
            });
            k.if_(Expr::from(gid).eq_(0i32), |k| {
                k.st_global(out.clone(), 0i32, Ty::S32, acc);
            });
            Some(k.finish())
        }
        "oob" => {
            // Index 1<<26 f32 elements past the base: a ~256 MiB offset,
            // past the 192 MiB arena of every device model, so the store
            // faults regardless of the allocation it was aimed at.
            let mut k = DslKernel::new("oob");
            let out = k.param_ptr("out");
            let gid = k.let_(Ty::S32, global_id_x());
            k.st_global(out.clone(), Expr::from(gid) + (1i32 << 26), Ty::F32, 1.0f32);
            Some(k.finish())
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpucmp_runtime::{Cuda, Gpu, GpuExt, RtError};
    use gpucmp_sim::{DeviceSpec, LaunchConfig};

    #[test]
    fn every_registry_kernel_compiles() {
        for name in KERNEL_NAMES {
            let def = kernel_def(name).unwrap();
            let mut gpu = Cuda::new(DeviceSpec::gtx480()).unwrap();
            gpu.build(&def).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        assert!(kernel_def("nope").is_none());
    }

    #[test]
    fn fill_and_saxpy_compute() {
        let mut gpu = Cuda::new(DeviceSpec::gtx480()).unwrap();
        let fill = gpu.build(&kernel_def("fill").unwrap()).unwrap();
        let saxpy = gpu.build(&kernel_def("saxpy").unwrap()).unwrap();
        let x = gpu.alloc::<f32>(100).unwrap();
        let y = gpu.alloc::<f32>(100).unwrap();
        let fill_cfg = |buf, v: f32| {
            LaunchConfig::builder()
                .grid(1u32)
                .block(128u32)
                .arg_ptr(buf)
                .arg_i32(100)
                .arg_f32(v)
                .build()
        };
        gpu.launch(fill, fill_cfg(x, 2.0)).unwrap();
        gpu.launch(fill, fill_cfg(y, 1.0)).unwrap();
        let cfg = LaunchConfig::builder()
            .grid(1u32)
            .block(128u32)
            .arg_ptr(x)
            .arg_ptr(y)
            .arg_f32(3.0)
            .arg_i32(100)
            .build();
        gpu.launch(saxpy, &cfg).unwrap();
        assert_eq!(gpu.d2h_buf(&y).unwrap(), vec![7.0f32; 100]);
    }

    #[test]
    fn spin_respects_budget_and_oob_faults() {
        let mut gpu = Cuda::new(DeviceSpec::gtx480()).unwrap();
        let spin = gpu.build(&kernel_def("spin").unwrap()).unwrap();
        let out = gpu.alloc::<i32>(4).unwrap();
        let cfg = LaunchConfig::builder()
            .grid(1u32)
            .block(32u32)
            .arg_ptr(out)
            .arg_i32(1_000_000)
            .inst_budget(10_000)
            .build();
        let e = gpu.launch(spin, &cfg).unwrap_err();
        assert!(
            matches!(
                e.device_fault().map(|f| &f.kind),
                Some(gpucmp_sim::FaultKind::Watchdog { .. })
            ),
            "{e}"
        );
        gpu.reset();

        let oob = gpu.build(&kernel_def("oob").unwrap()).unwrap();
        let out = gpu.alloc::<f32>(4).unwrap();
        let cfg = LaunchConfig::builder()
            .grid(1u32)
            .block(32u32)
            .arg_ptr(out)
            .build();
        let e = gpu.launch(oob, &cfg).unwrap_err();
        assert!(matches!(e, RtError::DeviceFault { .. }), "{e}");
        assert!(e.is_sticky());
    }
}
