//! The client: a blocking connection plus deadline-aware retry.
//!
//! The retry loop only ever retries [`ErrorKind::Busy`] — the one error
//! class where waiting can help (a slot may free up). Quota violations,
//! lost contexts and bad requests are returned immediately: retrying
//! them without changing anything cannot succeed, and hammering a
//! poisoned session is exactly the anti-pattern the typed errors exist
//! to prevent.
//!
//! Backoff is exponential with *seeded* jitter (a splitmix64 stream), so
//! a soak run under a fixed seed replays the same retry schedule — the
//! same determinism discipline the simulator itself follows.

use crate::protocol::{read_frame, write_frame, Request, Response, ServerStats};
use crate::server::ClientError;
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Exponential-backoff retry schedule for `Busy` rejections.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Give up after this many attempts (1 = no retry).
    pub max_attempts: u32,
    /// Delay before the first retry; doubles each attempt.
    pub base_delay: Duration,
    /// Ceiling on any single delay.
    pub max_delay: Duration,
    /// Total time budget across all attempts; when the *next* sleep
    /// would cross it, the last response is returned instead.
    pub deadline: Duration,
    /// Jitter seed: the same seed replays the same schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(250),
            deadline: Duration::from_secs(5),
            seed: 0x9E37_79B9,
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// Delay before retry number `attempt` (0-based): `base * 2^attempt`
    /// capped at `max_delay`, scaled by a jitter factor in `[0.5, 1.0)`
    /// drawn from the seeded stream.
    fn delay(&self, attempt: u32, jitter: &mut u64) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_delay);
        let frac = (splitmix64(jitter) >> 11) as f64 / (1u64 << 53) as f64;
        exp.mul_f64(0.5 + frac / 2.0)
    }
}

/// A blocking client connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Send one request and wait for its response. No retry.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.writer, &req.encode())?;
        let payload = read_frame(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        Response::decode(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Send a request, retrying `Busy` rejections per `policy`. Returns
    /// the first non-`Busy` response, or the final `Busy` once attempts
    /// or the deadline run out.
    pub fn request_with_retry(
        &mut self,
        req: &Request,
        policy: &RetryPolicy,
    ) -> io::Result<Response> {
        let start = Instant::now();
        let mut jitter = policy.seed;
        for attempt in 0..policy.max_attempts {
            let resp = self.request(req)?;
            let retryable = matches!(&resp, Response::Error { kind, .. } if kind.is_retryable());
            if !retryable || attempt + 1 == policy.max_attempts {
                return Ok(resp);
            }
            let delay = policy.delay(attempt, &mut jitter);
            if start.elapsed() + delay > policy.deadline {
                return Ok(resp);
            }
            std::thread::sleep(delay);
        }
        unreachable!("loop returns on the last attempt");
    }

    // ---- typed conveniences -------------------------------------------

    /// Open a session, retrying `Busy` per `policy`.
    pub fn open(&mut self, tenant: &str, policy: &RetryPolicy) -> Result<u64, ClientError> {
        match self.request_with_retry(
            &Request::Open {
                tenant: tenant.into(),
            },
            policy,
        )? {
            Response::Opened { session } => Ok(session),
            other => Err(unexpected("Opened", other)),
        }
    }

    /// Close a session.
    pub fn close(&mut self, session: u64) -> Result<(), ClientError> {
        match self.request(&Request::Close { session })? {
            Response::Closed => Ok(()),
            other => Err(unexpected("Closed", other)),
        }
    }

    /// Allocate device memory; returns the device pointer.
    pub fn alloc(&mut self, session: u64, bytes: u64) -> Result<u64, ClientError> {
        match self.request(&Request::Alloc { session, bytes })? {
            Response::Allocated { ptr } => Ok(ptr),
            other => Err(unexpected("Allocated", other)),
        }
    }

    /// Host-to-device write.
    pub fn write(&mut self, session: u64, ptr: u64, data: Vec<u8>) -> Result<(), ClientError> {
        match self.request(&Request::Write { session, ptr, data })? {
            Response::Written => Ok(()),
            other => Err(unexpected("Written", other)),
        }
    }

    /// Device-to-host read.
    pub fn read(&mut self, session: u64, ptr: u64, bytes: u64) -> Result<Vec<u8>, ClientError> {
        match self.request(&Request::Read {
            session,
            ptr,
            bytes,
        })? {
            Response::Data { data } => Ok(data),
            other => Err(unexpected("Data", other)),
        }
    }

    /// Launch a registry kernel; returns the modelled kernel time, ns.
    pub fn launch(
        &mut self,
        session: u64,
        kernel: &str,
        grid: u32,
        block: u32,
        params: Vec<u64>,
    ) -> Result<f64, ClientError> {
        match self.request(&Request::Launch {
            session,
            kernel: kernel.into(),
            grid,
            block,
            params,
        })? {
            Response::Launched { kernel_ns } => Ok(kernel_ns),
            other => Err(unexpected("Launched", other)),
        }
    }

    /// Reset the session's context; returns whether a fault was cleared.
    pub fn reset_session(&mut self, session: u64) -> Result<bool, ClientError> {
        match self.request(&Request::Reset { session })? {
            Response::ResetDone { had_fault, .. } => Ok(had_fault),
            other => Err(unexpected("ResetDone", other)),
        }
    }

    /// Fetch the server counters.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected("Stats", other)),
        }
    }
}

fn unexpected(wanted: &str, got: Response) -> ClientError {
    match got {
        Response::Error { kind, message } => ClientError::Server { kind, message },
        other => ClientError::Protocol(format!("expected {wanted}, got {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_bounded_and_growing() {
        let p = RetryPolicy {
            base_delay: Duration::from_millis(4),
            max_delay: Duration::from_millis(100),
            ..RetryPolicy::default()
        };
        let mut j1 = p.seed;
        let mut j2 = p.seed;
        for attempt in 0..10 {
            let a = p.delay(attempt, &mut j1);
            let b = p.delay(attempt, &mut j2);
            assert_eq!(a, b, "same seed, same schedule");
            assert!(a <= p.max_delay, "capped");
            assert!(a >= p.base_delay / 2, "never collapses to zero");
        }
        // A different seed gives a different schedule (with overwhelming
        // probability for 10 draws).
        let mut j3 = p.seed ^ 0xDEAD_BEEF;
        let same = (0..10).all(|i| {
            let mut j = p.seed;
            for _ in 0..i {
                splitmix64(&mut j);
            }
            p.delay(i, &mut j) == p.delay(i, &mut j3)
        });
        assert!(!same);
    }
}
