//! The pooling session allocator.
//!
//! Wasmtime-style: every session slot — including its device-memory
//! arena — is allocated once, when the pool is built, and *recycled*
//! (reset, not freed) when a session ends. Steady-state operation does
//! no per-request allocation of arenas or sessions, and the pool size is
//! the hard concurrency ceiling behind the server's `Busy` backpressure:
//! when the free list is empty, opens are rejected, never queued
//! unboundedly.
//!
//! Slot reuse is observable: each slot's session counts its resets
//! ([`gpucmp_runtime::Session::resets`]) and the pool counts recycles,
//! so tests can assert that N session churns over a k-slot pool touched
//! exactly k slots and freed nothing.

use gpucmp_runtime::{Cuda, KernelHandle};
use gpucmp_sim::DeviceSpec;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Mutable state of one slot, held under the slot's lock: the session
/// itself plus the per-slot kernel-handle cache (registry name → built
/// handle; invalidated on recycle because reset invalidates handles).
#[derive(Debug)]
pub struct SlotState {
    /// The slot's virtual-GPU context.
    pub gpu: Cuda,
    /// Built registry kernels of the *current* session generation.
    pub kernels: HashMap<&'static str, KernelHandle>,
    /// Handle of the session currently occupying the slot (0 = free).
    /// Every session operation re-checks this under the slot lock, which
    /// closes the race where a request still holding a session entry
    /// lands on a slot that was concurrently closed — and possibly
    /// re-opened for another tenant. A stale handle is a typed
    /// `BadSession`, never a cross-tenant access.
    pub session_id: u64,
}

/// One preallocated session slot.
#[derive(Debug)]
pub struct Slot {
    /// Stable index in the pool (= identity for reuse assertions).
    pub index: usize,
    state: Mutex<SlotState>,
}

impl Slot {
    /// Lock the slot's state. Requests to one session serialise here;
    /// requests to different sessions run on different slots in
    /// parallel. A poisoned mutex (a panicked request thread) is
    /// recovered — the slot's next user sees session state, not a
    /// permanently wedged slot.
    pub fn lock(&self) -> MutexGuard<'_, SlotState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Fixed-size pool of preallocated session slots.
#[derive(Debug)]
pub struct SlotPool {
    slots: Vec<Arc<Slot>>,
    free: Mutex<Vec<usize>>,
    recycles: AtomicU64,
}

impl SlotPool {
    /// Build a pool of `n` slots on `device`, each with an
    /// `arena_bytes`-byte device-memory arena, all allocated now.
    pub fn new(
        n: usize,
        device: DeviceSpec,
        arena_bytes: u64,
    ) -> Result<Self, gpucmp_runtime::RtError> {
        let mut slots = Vec::with_capacity(n);
        for index in 0..n {
            slots.push(Arc::new(Slot {
                index,
                state: Mutex::new(SlotState {
                    gpu: Cuda::with_arena(device.clone(), arena_bytes)?,
                    kernels: HashMap::new(),
                    session_id: 0,
                }),
            }));
        }
        Ok(SlotPool {
            slots,
            // LIFO free list: the hottest slot (warm caches) goes out first.
            free: Mutex::new((0..n).rev().collect()),
            recycles: AtomicU64::new(0),
        })
    }

    /// Total slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Currently free slots.
    pub fn free_count(&self) -> usize {
        self.free.lock().unwrap().len()
    }

    /// Total recycles (slot returns) so far.
    pub fn recycles(&self) -> u64 {
        self.recycles.load(Ordering::Relaxed)
    }

    /// Claim a free slot, or `None` when the pool is exhausted — the
    /// caller turns that into a typed `Busy` rejection.
    pub fn claim(&self) -> Option<Arc<Slot>> {
        let index = self.free.lock().unwrap().pop()?;
        Some(Arc::clone(&self.slots[index]))
    }

    /// Recycle a slot: reset its session (wiping tenant state — memory,
    /// kernels, decoded code, faults) and return it to the free list.
    pub fn recycle(&self, slot: &Arc<Slot>) {
        {
            let mut st = slot.lock();
            st.gpu.session_mut().reset();
            st.kernels.clear();
            st.session_id = 0;
        }
        let mut free = self.free.lock().unwrap();
        debug_assert!(!free.contains(&slot.index), "double recycle");
        free.push(slot.index);
        self.recycles.fetch_add(1, Ordering::Relaxed);
    }
}

// The Gpu trait is used through SlotState.
use gpucmp_runtime::Gpu as _;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustion_and_recycle() {
        let pool = SlotPool::new(2, DeviceSpec::gtx480(), 1 << 20).unwrap();
        assert_eq!(pool.capacity(), 2);
        assert_eq!(pool.free_count(), 2);
        let a = pool.claim().unwrap();
        let b = pool.claim().unwrap();
        assert!(pool.claim().is_none(), "pool exhausted");
        assert_eq!(pool.free_count(), 0);
        pool.recycle(&a);
        assert_eq!(pool.free_count(), 1);
        let c = pool.claim().unwrap();
        assert_eq!(c.index, a.index, "LIFO reuse of the recycled slot");
        pool.recycle(&b);
        pool.recycle(&c);
        assert_eq!(pool.recycles(), 3);
    }

    #[test]
    fn recycle_resets_the_session() {
        let pool = SlotPool::new(1, DeviceSpec::gtx480(), 1 << 20).unwrap();
        let slot = pool.claim().unwrap();
        {
            let mut st = slot.lock();
            st.gpu.malloc(4096).unwrap();
            assert_eq!(st.gpu.session().gmem.live_bytes(), 4096);
        }
        pool.recycle(&slot);
        let slot = pool.claim().unwrap();
        let st = slot.lock();
        assert_eq!(st.gpu.session().gmem.live_bytes(), 0, "memory wiped");
        assert_eq!(st.gpu.session().resets(), 1, "reuse is observable");
        assert!(st.kernels.is_empty());
    }
}
