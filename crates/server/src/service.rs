//! The multi-tenant session service: protocol-level requests in, typed
//! responses out, independent of any transport.
//!
//! One [`SessionService`] owns a [`SlotPool`](crate::pool::SlotPool) and
//! maps wire-level session handles onto pooled slots. All policy lives
//! here:
//!
//! - **Admission control** — an `Open` when the pool is exhausted is a
//!   typed [`ErrorKind::Busy`] rejection, never an unbounded queue. The
//!   pool size is the server's hard concurrency ceiling.
//! - **Per-tenant quotas** — sessions, resident device bytes and
//!   in-flight launches are checked *at enqueue*; a violation is a typed
//!   [`ErrorKind::QuotaExceeded`]. The per-launch instruction budget is
//!   enforced *on the device*: every session gets
//!   [`Session::set_inst_budget_cap`](gpucmp_runtime::Session::set_inst_budget_cap),
//!   so a runaway kernel trips the watchdog and poisons only its own
//!   session.
//! - **Fault isolation** — a device fault makes one session's context
//!   sticky-lost (CUDA semantics); sibling sessions, including the same
//!   tenant's, are untouched. `Reset` clears the fault in place; `Close`
//!   recycles the slot through a full reset.
//!
//! Locking: `sessions` map → `tenants` map → slot mutex, in that order,
//! never reversed. Slot state carries the owning session handle and every
//! operation re-checks it under the slot lock, so a handle that raced
//! with `Close` fails as [`ErrorKind::BadSession`] instead of touching a
//! recycled (possibly re-opened) slot.

use crate::kernels;
use crate::pool::{Slot, SlotPool};
use crate::protocol::{ErrorKind, Request, Response, ServerStats, MAX_FRAME};
use gpucmp_runtime::{Gpu, RtError, SessionEvent};
use gpucmp_sim::{DevPtr, DeviceSpec, LaunchConfig};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Per-tenant resource ceilings, applied at enqueue time.
#[derive(Clone, Copy, Debug)]
pub struct TenantQuota {
    /// Concurrent open sessions.
    pub max_sessions: u32,
    /// Total resident device bytes across the tenant's sessions.
    pub max_resident_bytes: u64,
    /// Concurrent in-flight launches across the tenant's sessions.
    pub max_inflight_launches: u32,
    /// Per-launch instruction budget (watchdog), `None` = uncapped.
    pub inst_budget: Option<u64>,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota {
            max_sessions: 4,
            max_resident_bytes: 256 << 20,
            max_inflight_launches: 8,
            inst_budget: Some(50_000_000),
        }
    }
}

/// Server construction parameters.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Simulated device every slot runs on (must be NVIDIA — the pool is
    /// CUDA-backed).
    pub device: DeviceSpec,
    /// Preallocated session slots (= max concurrent sessions).
    pub slots: usize,
    /// Device-memory arena per slot, bytes.
    pub arena_bytes: u64,
    /// Quota applied to every tenant.
    pub quota: TenantQuota,
    /// Record per-session trace events, harvested on `Close`/`Reset`
    /// into per-(tenant, session) streams (see
    /// [`SessionService::take_traces`]).
    pub trace: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            device: DeviceSpec::gtx480(),
            slots: 4,
            arena_bytes: 64 << 20,
            quota: TenantQuota::default(),
            trace: false,
        }
    }
}

/// One live session: its tenant (quota key) and its slot.
struct SessionEntry {
    tenant: String,
    slot: Arc<Slot>,
    /// Device bytes this session holds against the tenant's quota.
    resident: AtomicU64,
}

/// Mutable per-tenant usage, under the `tenants` lock.
#[derive(Default)]
struct TenantUsage {
    sessions: u32,
    resident: u64,
    inflight: u32,
}

/// A harvested per-session trace stream, tagged with its tenant.
pub struct TenantTrace {
    /// Tenant that owned the session.
    pub tenant: String,
    /// Wire-level session handle.
    pub session: u64,
    /// The session's recorded events (virtual timeline).
    pub events: Vec<SessionEvent>,
}

#[derive(Default)]
struct Counters {
    opens: AtomicU64,
    closes: AtomicU64,
    busy_rejections: AtomicU64,
    quota_rejections: AtomicU64,
    launches: AtomicU64,
    device_faults: AtomicU64,
    context_lost: AtomicU64,
    resets: AtomicU64,
}

/// The transport-independent session service.
pub struct SessionService {
    cfg: ServerConfig,
    pool: SlotPool,
    sessions: Mutex<HashMap<u64, Arc<SessionEntry>>>,
    tenants: Mutex<HashMap<String, TenantUsage>>,
    next_session: AtomicU64,
    counters: Counters,
    traces: Mutex<Vec<TenantTrace>>,
}

fn err(kind: ErrorKind, message: impl Into<String>) -> Response {
    Response::Error {
        kind,
        message: message.into(),
    }
}

impl SessionService {
    /// Build the service, preallocating the whole slot pool up front.
    pub fn new(cfg: ServerConfig) -> Result<Self, RtError> {
        let pool = SlotPool::new(cfg.slots, cfg.device.clone(), cfg.arena_bytes)?;
        Ok(SessionService {
            cfg,
            pool,
            sessions: Mutex::new(HashMap::new()),
            tenants: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
            counters: Counters::default(),
            traces: Mutex::new(Vec::new()),
        })
    }

    /// The slot pool (for reuse assertions in tests and the soak bench).
    pub fn pool(&self) -> &SlotPool {
        &self.pool
    }

    /// Drain the trace streams harvested so far.
    pub fn take_traces(&self) -> Vec<TenantTrace> {
        std::mem::take(&mut self.traces.lock().unwrap())
    }

    /// Current counters (same numbers `Request::Stats` returns).
    pub fn stats(&self) -> ServerStats {
        let c = &self.counters;
        ServerStats {
            opens: c.opens.load(Ordering::Relaxed),
            closes: c.closes.load(Ordering::Relaxed),
            busy_rejections: c.busy_rejections.load(Ordering::Relaxed),
            quota_rejections: c.quota_rejections.load(Ordering::Relaxed),
            launches: c.launches.load(Ordering::Relaxed),
            device_faults: c.device_faults.load(Ordering::Relaxed),
            context_lost: c.context_lost.load(Ordering::Relaxed),
            resets: c.resets.load(Ordering::Relaxed),
            slots: self.pool.capacity() as u32,
            slots_free: self.pool.free_count() as u32,
        }
    }

    /// Handle one request. This is the single entry point the TCP layer
    /// (and tests) drive; it never panics on hostile input and never
    /// blocks on anything but the short internal locks.
    pub fn handle(&self, req: Request) -> Response {
        match req {
            Request::Open { tenant } => self.open(tenant),
            Request::Close { session } => self.close(session),
            Request::Alloc { session, bytes } => self.alloc(session, bytes),
            Request::Write { session, ptr, data } => self.write(session, ptr, &data),
            Request::Read {
                session,
                ptr,
                bytes,
            } => self.read(session, ptr, bytes),
            Request::Launch {
                session,
                kernel,
                grid,
                block,
                params,
            } => self.launch(session, &kernel, grid, block, &params),
            Request::Reset { session } => self.reset(session),
            Request::Stats => Response::Stats(self.stats()),
        }
    }

    fn open(&self, tenant: String) -> Response {
        if tenant.is_empty() {
            return err(ErrorKind::BadRequest, "tenant name must be non-empty");
        }
        // Reserve the tenant's session quota first (cheap to undo), then
        // claim a slot.
        {
            let mut tenants = self.tenants.lock().unwrap();
            let usage = tenants.entry(tenant.clone()).or_default();
            if usage.sessions >= self.cfg.quota.max_sessions {
                drop(tenants);
                self.counters
                    .quota_rejections
                    .fetch_add(1, Ordering::Relaxed);
                return err(
                    ErrorKind::QuotaExceeded,
                    format!(
                        "tenant {tenant:?} already has {} open sessions (max {})",
                        self.cfg.quota.max_sessions, self.cfg.quota.max_sessions
                    ),
                );
            }
            usage.sessions += 1;
        }
        let Some(slot) = self.pool.claim() else {
            self.release_session_count(&tenant);
            self.counters
                .busy_rejections
                .fetch_add(1, Ordering::Relaxed);
            return err(
                ErrorKind::Busy,
                format!("all {} session slots are in use", self.pool.capacity()),
            );
        };
        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        {
            let mut st = slot.lock();
            debug_assert_eq!(st.session_id, 0, "claimed slot was not free");
            st.session_id = id;
            let session = st.gpu.session_mut();
            session.set_inst_budget_cap(self.cfg.quota.inst_budget);
            session.set_tracing(self.cfg.trace);
        }
        let entry = Arc::new(SessionEntry {
            tenant,
            slot,
            resident: AtomicU64::new(0),
        });
        self.sessions.lock().unwrap().insert(id, entry);
        self.counters.opens.fetch_add(1, Ordering::Relaxed);
        Response::Opened { session: id }
    }

    fn close(&self, id: u64) -> Response {
        // Removing the map entry is the linearization point: exactly one
        // closer wins, and no new lookups can reach the slot.
        let Some(entry) = self.sessions.lock().unwrap().remove(&id) else {
            return err(ErrorKind::BadSession, format!("no session {id}"));
        };
        self.harvest_trace(&entry, id);
        // Release the tenant's quota before the (comparatively slow)
        // recycle reset.
        let resident = entry.resident.swap(0, Ordering::Relaxed);
        {
            let mut tenants = self.tenants.lock().unwrap();
            if let Some(usage) = tenants.get_mut(&entry.tenant) {
                usage.sessions = usage.sessions.saturating_sub(1);
                usage.resident = usage.resident.saturating_sub(resident);
            }
        }
        // recycle() resets the session and zeroes `session_id` under the
        // slot lock; a racing request that still holds this entry will
        // see the mismatch and get `BadSession`.
        self.pool.recycle(&entry.slot);
        self.counters.closes.fetch_add(1, Ordering::Relaxed);
        self.counters.resets.fetch_add(1, Ordering::Relaxed);
        Response::Closed
    }

    fn alloc(&self, id: u64, bytes: u64) -> Response {
        let Some(entry) = self.session_entry(id) else {
            return err(ErrorKind::BadSession, format!("no session {id}"));
        };
        if bytes == 0 {
            return err(ErrorKind::BadRequest, "zero-byte allocation");
        }
        // Reserve quota optimistically, release on failure.
        {
            let mut tenants = self.tenants.lock().unwrap();
            let usage = tenants.entry(entry.tenant.clone()).or_default();
            if usage.resident.saturating_add(bytes) > self.cfg.quota.max_resident_bytes {
                let resident = usage.resident;
                drop(tenants);
                self.counters
                    .quota_rejections
                    .fetch_add(1, Ordering::Relaxed);
                return err(
                    ErrorKind::QuotaExceeded,
                    format!(
                        "alloc of {bytes} B would put tenant {:?} over its \
                         resident-byte quota ({resident} of {} B in use)",
                        entry.tenant, self.cfg.quota.max_resident_bytes
                    ),
                );
            }
            usage.resident += bytes;
        }
        let result = {
            let mut st = entry.slot.lock();
            if st.session_id != id {
                None
            } else {
                Some(st.gpu.malloc(bytes))
            }
        };
        match result {
            None => {
                self.release_resident(&entry.tenant, bytes);
                err(ErrorKind::BadSession, format!("session {id} was closed"))
            }
            Some(Ok(ptr)) => {
                entry.resident.fetch_add(bytes, Ordering::Relaxed);
                Response::Allocated { ptr: ptr.0 }
            }
            Some(Err(e)) => {
                self.release_resident(&entry.tenant, bytes);
                self.rt_error(e)
            }
        }
    }

    fn write(&self, id: u64, ptr: u64, data: &[u8]) -> Response {
        self.with_session(id, |gpu| {
            gpu.h2d(DevPtr(ptr), data).map(|()| Response::Written)
        })
    }

    fn read(&self, id: u64, ptr: u64, bytes: u64) -> Response {
        // Bound the response frame before touching the device: the reply
        // needs tag + length + payload to fit in MAX_FRAME.
        if bytes.saturating_add(16) > MAX_FRAME as u64 {
            return err(
                ErrorKind::BadRequest,
                format!("read of {bytes} B cannot fit one response frame"),
            );
        }
        self.with_session(id, |gpu| {
            let mut data = vec![0u8; bytes as usize];
            gpu.d2h(DevPtr(ptr), &mut data)?;
            Ok(Response::Data { data })
        })
    }

    fn launch(&self, id: u64, kernel: &str, grid: u32, block: u32, params: &[u64]) -> Response {
        let Some(entry) = self.session_entry(id) else {
            return err(ErrorKind::BadSession, format!("no session {id}"));
        };
        if grid == 0 || block == 0 {
            return err(ErrorKind::BadRequest, "grid and block must be non-zero");
        }
        let Some(def) = kernels::kernel_def(kernel) else {
            return err(
                ErrorKind::UnknownKernel,
                format!(
                    "no kernel {kernel:?} in the registry (have: {})",
                    kernels::KERNEL_NAMES.join(", ")
                ),
            );
        };
        // In-flight launch quota: reserve, launch, release.
        {
            let mut tenants = self.tenants.lock().unwrap();
            let usage = tenants.entry(entry.tenant.clone()).or_default();
            if usage.inflight >= self.cfg.quota.max_inflight_launches {
                drop(tenants);
                self.counters
                    .quota_rejections
                    .fetch_add(1, Ordering::Relaxed);
                return err(
                    ErrorKind::QuotaExceeded,
                    format!(
                        "tenant {:?} already has {} launches in flight (max {})",
                        entry.tenant,
                        self.cfg.quota.max_inflight_launches,
                        self.cfg.quota.max_inflight_launches
                    ),
                );
            }
            usage.inflight += 1;
        }
        let response = (|| {
            let mut st = entry.slot.lock();
            if st.session_id != id {
                return err(ErrorKind::BadSession, format!("session {id} was closed"));
            }
            let handle = match st.kernels.get(kernel) {
                Some(h) => *h,
                None => {
                    // Registry names are 'static; cache the handle for
                    // the rest of this session generation.
                    let name = kernels::KERNEL_NAMES
                        .iter()
                        .find(|n| **n == kernel)
                        .expect("kernel_def implies a registry name");
                    match st.gpu.build(&def) {
                        Ok(h) => {
                            st.kernels.insert(name, h);
                            h
                        }
                        Err(e) => return self.rt_error(e),
                    }
                }
            };
            let mut b = LaunchConfig::builder().grid(grid).block(block);
            for p in params {
                b = b.arg_raw(*p);
            }
            match st.gpu.launch_config(handle, &b.build()) {
                Ok(outcome) => {
                    self.counters.launches.fetch_add(1, Ordering::Relaxed);
                    Response::Launched {
                        kernel_ns: outcome.report.kernel_ns(),
                    }
                }
                Err(e) => self.rt_error(e),
            }
        })();
        let mut tenants = self.tenants.lock().unwrap();
        if let Some(usage) = tenants.get_mut(&entry.tenant) {
            usage.inflight = usage.inflight.saturating_sub(1);
        }
        response
    }

    fn reset(&self, id: u64) -> Response {
        let Some(entry) = self.session_entry(id) else {
            return err(ErrorKind::BadSession, format!("no session {id}"));
        };
        self.harvest_trace(&entry, id);
        let result = {
            let mut st = entry.slot.lock();
            if st.session_id != id {
                None
            } else {
                st.kernels.clear();
                Some(st.gpu.session_mut().reset())
            }
        };
        let Some(report) = result else {
            return err(ErrorKind::BadSession, format!("session {id} was closed"));
        };
        // Device memory is gone; hand the bytes back to the quota.
        let resident = entry.resident.swap(0, Ordering::Relaxed);
        self.release_resident(&entry.tenant, resident);
        self.counters.resets.fetch_add(1, Ordering::Relaxed);
        Response::ResetDone {
            evicted: report.evicted_kernels as u32,
            had_fault: report.fault.is_some(),
        }
    }

    // ---- internals ----------------------------------------------------

    fn session_entry(&self, id: u64) -> Option<Arc<SessionEntry>> {
        self.sessions.lock().unwrap().get(&id).cloned()
    }

    /// Run `f` on the session's context under the slot lock, after the
    /// stale-handle check.
    fn with_session(
        &self,
        id: u64,
        f: impl FnOnce(&mut gpucmp_runtime::Cuda) -> Result<Response, RtError>,
    ) -> Response {
        let Some(entry) = self.session_entry(id) else {
            return err(ErrorKind::BadSession, format!("no session {id}"));
        };
        let mut st = entry.slot.lock();
        if st.session_id != id {
            return err(ErrorKind::BadSession, format!("session {id} was closed"));
        }
        match f(&mut st.gpu) {
            Ok(resp) => resp,
            Err(e) => self.rt_error(e),
        }
    }

    /// Harvest the session's trace stream (if tracing) before a reset or
    /// recycle discards it.
    fn harvest_trace(&self, entry: &SessionEntry, id: u64) {
        if !self.cfg.trace {
            return;
        }
        let events = {
            let st = entry.slot.lock();
            if st.session_id != id {
                return;
            }
            st.gpu.session().trace_events().to_vec()
        };
        if !events.is_empty() {
            self.traces.lock().unwrap().push(TenantTrace {
                tenant: entry.tenant.clone(),
                session: id,
                events,
            });
        }
    }

    fn release_session_count(&self, tenant: &str) {
        let mut tenants = self.tenants.lock().unwrap();
        if let Some(usage) = tenants.get_mut(tenant) {
            usage.sessions = usage.sessions.saturating_sub(1);
        }
    }

    fn release_resident(&self, tenant: &str, bytes: u64) {
        let mut tenants = self.tenants.lock().unwrap();
        if let Some(usage) = tenants.get_mut(tenant) {
            usage.resident = usage.resident.saturating_sub(bytes);
        }
    }

    /// Map a runtime error onto the wire's typed error classes, counting
    /// the fault-isolation signals.
    fn rt_error(&self, e: RtError) -> Response {
        let kind = match &e {
            RtError::ContextLost { .. } => {
                self.counters.context_lost.fetch_add(1, Ordering::Relaxed);
                ErrorKind::ContextLost
            }
            RtError::DeviceFault { .. } => {
                self.counters.device_faults.fetch_add(1, Ordering::Relaxed);
                ErrorKind::DeviceFault
            }
            RtError::OutOfMemory { .. } => ErrorKind::OutOfMemory,
            _ => ErrorKind::BadRequest,
        };
        err(kind, e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service(slots: usize, quota: TenantQuota) -> SessionService {
        SessionService::new(ServerConfig {
            slots,
            arena_bytes: 8 << 20,
            quota,
            ..ServerConfig::default()
        })
        .unwrap()
    }

    fn open(svc: &SessionService, tenant: &str) -> u64 {
        match svc.handle(Request::Open {
            tenant: tenant.into(),
        }) {
            Response::Opened { session } => session,
            other => panic!("open failed: {other:?}"),
        }
    }

    fn error_kind(resp: Response) -> ErrorKind {
        match resp {
            Response::Error { kind, .. } => kind,
            other => panic!("expected an error, got {other:?}"),
        }
    }

    #[test]
    fn pool_exhaustion_is_typed_busy() {
        let svc = service(2, TenantQuota::default());
        // Distinct tenants so the session quota cannot interfere.
        let _a = open(&svc, "a");
        let _b = open(&svc, "b");
        let resp = svc.handle(Request::Open { tenant: "c".into() });
        assert_eq!(error_kind(resp), ErrorKind::Busy);
        let s = svc.stats();
        assert_eq!(s.busy_rejections, 1);
        assert_eq!(s.slots_free, 0);
    }

    #[test]
    fn session_quota_is_typed_quota_exceeded() {
        let svc = service(
            8,
            TenantQuota {
                max_sessions: 2,
                ..TenantQuota::default()
            },
        );
        let _a = open(&svc, "t");
        let b = open(&svc, "t");
        let resp = svc.handle(Request::Open { tenant: "t".into() });
        assert_eq!(error_kind(resp), ErrorKind::QuotaExceeded);
        // Closing frees the quota slot.
        assert_eq!(svc.handle(Request::Close { session: b }), Response::Closed);
        let _c = open(&svc, "t");
        assert_eq!(svc.stats().quota_rejections, 1);
    }

    #[test]
    fn resident_byte_quota_enforced_at_enqueue() {
        let svc = service(
            2,
            TenantQuota {
                max_resident_bytes: 1 << 20,
                ..TenantQuota::default()
            },
        );
        let s = open(&svc, "t");
        let resp = svc.handle(Request::Alloc {
            session: s,
            bytes: 1 << 19,
        });
        assert!(matches!(resp, Response::Allocated { .. }), "{resp:?}");
        let resp = svc.handle(Request::Alloc {
            session: s,
            bytes: (1 << 19) + 1,
        });
        assert_eq!(error_kind(resp), ErrorKind::QuotaExceeded);
        // Reset releases the resident bytes.
        assert!(matches!(
            svc.handle(Request::Reset { session: s }),
            Response::ResetDone { .. }
        ));
        let resp = svc.handle(Request::Alloc {
            session: s,
            bytes: 1 << 20,
        });
        assert!(matches!(resp, Response::Allocated { .. }), "{resp:?}");
    }

    #[test]
    fn full_request_cycle_computes() {
        let svc = service(1, TenantQuota::default());
        let s = open(&svc, "t");
        let n = 256u32;
        let ptr = match svc.handle(Request::Alloc {
            session: s,
            bytes: n as u64 * 4,
        }) {
            Response::Allocated { ptr } => ptr,
            other => panic!("{other:?}"),
        };
        let resp = svc.handle(Request::Launch {
            session: s,
            kernel: "fill".into(),
            grid: n / 128,
            block: 128,
            params: vec![ptr, n as u64, f32::to_bits(2.5) as u64],
        });
        assert!(matches!(resp, Response::Launched { kernel_ns } if kernel_ns > 0.0));
        let data = match svc.handle(Request::Read {
            session: s,
            ptr,
            bytes: n as u64 * 4,
        }) {
            Response::Data { data } => data,
            other => panic!("{other:?}"),
        };
        for chunk in data.chunks_exact(4) {
            assert_eq!(f32::from_le_bytes(chunk.try_into().unwrap()), 2.5);
        }
        // Write a few bytes back and read them out again.
        let resp = svc.handle(Request::Write {
            session: s,
            ptr,
            data: vec![1, 2, 3, 4],
        });
        assert_eq!(resp, Response::Written);
        match svc.handle(Request::Read {
            session: s,
            ptr,
            bytes: 4,
        }) {
            Response::Data { data } => assert_eq!(data, vec![1, 2, 3, 4]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fault_poisons_one_session_only() {
        let svc = service(2, TenantQuota::default());
        let bad = open(&svc, "mallory");
        let good = open(&svc, "alice");
        let ptr = |svc: &SessionService, s| match svc.handle(Request::Alloc {
            session: s,
            bytes: 1024,
        }) {
            Response::Allocated { ptr } => ptr,
            other => panic!("{other:?}"),
        };
        let bad_ptr = ptr(&svc, bad);
        let good_ptr = ptr(&svc, good);

        // mallory's out-of-bounds launch faults and poisons her context.
        let resp = svc.handle(Request::Launch {
            session: bad,
            kernel: "oob".into(),
            grid: 1,
            block: 32,
            params: vec![bad_ptr],
        });
        assert_eq!(error_kind(resp), ErrorKind::DeviceFault);
        // Sticky: further requests bounce with ContextLost...
        let resp = svc.handle(Request::Alloc {
            session: bad,
            bytes: 64,
        });
        assert_eq!(error_kind(resp), ErrorKind::ContextLost);
        // ...while alice's session is untouched.
        let resp = svc.handle(Request::Launch {
            session: good,
            kernel: "fill".into(),
            grid: 1,
            block: 128,
            params: vec![good_ptr, 128, f32::to_bits(1.0) as u64],
        });
        assert!(matches!(resp, Response::Launched { .. }), "{resp:?}");

        // Reset clears the fault in place.
        match svc.handle(Request::Reset { session: bad }) {
            Response::ResetDone { had_fault, .. } => assert!(had_fault),
            other => panic!("{other:?}"),
        }
        let resp = svc.handle(Request::Alloc {
            session: bad,
            bytes: 64,
        });
        assert!(matches!(resp, Response::Allocated { .. }), "{resp:?}");

        let s = svc.stats();
        assert_eq!(s.device_faults, 1);
        assert_eq!(s.context_lost, 1);
    }

    #[test]
    fn runaway_kernel_trips_per_tenant_watchdog() {
        let svc = service(
            1,
            TenantQuota {
                inst_budget: Some(10_000),
                ..TenantQuota::default()
            },
        );
        let s = open(&svc, "t");
        let ptr = match svc.handle(Request::Alloc {
            session: s,
            bytes: 64,
        }) {
            Response::Allocated { ptr } => ptr,
            other => panic!("{other:?}"),
        };
        let resp = svc.handle(Request::Launch {
            session: s,
            kernel: "spin".into(),
            grid: 1,
            block: 32,
            params: vec![ptr, 1_000_000],
        });
        assert_eq!(error_kind(resp), ErrorKind::DeviceFault);
        assert_eq!(
            error_kind(svc.handle(Request::Alloc {
                session: s,
                bytes: 64
            })),
            ErrorKind::ContextLost
        );
    }

    #[test]
    fn stale_handles_fail_typed_after_close_and_reopen() {
        let svc = service(1, TenantQuota::default());
        let old = open(&svc, "a");
        assert_eq!(
            svc.handle(Request::Close { session: old }),
            Response::Closed
        );
        // The slot is re-used by a new session; the old handle must not
        // reach it.
        let new = open(&svc, "b");
        assert_ne!(old, new);
        for resp in [
            svc.handle(Request::Alloc {
                session: old,
                bytes: 64,
            }),
            svc.handle(Request::Close { session: old }),
            svc.handle(Request::Launch {
                session: old,
                kernel: "fill".into(),
                grid: 1,
                block: 32,
                params: vec![],
            }),
        ] {
            assert_eq!(error_kind(resp), ErrorKind::BadSession);
        }
        // The new session still works.
        assert!(matches!(
            svc.handle(Request::Alloc {
                session: new,
                bytes: 64
            }),
            Response::Allocated { .. }
        ));
    }

    #[test]
    fn unknown_kernel_and_bad_requests_are_typed() {
        let svc = service(1, TenantQuota::default());
        let s = open(&svc, "t");
        assert_eq!(
            error_kind(svc.handle(Request::Launch {
                session: s,
                kernel: "rootkit".into(),
                grid: 1,
                block: 32,
                params: vec![],
            })),
            ErrorKind::UnknownKernel
        );
        assert_eq!(
            error_kind(svc.handle(Request::Launch {
                session: s,
                kernel: "fill".into(),
                grid: 0,
                block: 32,
                params: vec![],
            })),
            ErrorKind::BadRequest
        );
        assert_eq!(
            error_kind(svc.handle(Request::Read {
                session: s,
                ptr: 0,
                bytes: u64::MAX,
            })),
            ErrorKind::BadRequest
        );
        assert_eq!(
            error_kind(svc.handle(Request::Open { tenant: "".into() })),
            ErrorKind::BadRequest
        );
        // Arena OOM (not quota): ask for more than the 8 MiB slot arena
        // but less than the 256 MiB resident quota.
        assert_eq!(
            error_kind(svc.handle(Request::Alloc {
                session: s,
                bytes: 32 << 20,
            })),
            ErrorKind::OutOfMemory
        );
    }

    #[test]
    fn churn_reuses_slots_without_growth() {
        let svc = service(2, TenantQuota::default());
        for i in 0..100 {
            let s = open(&svc, &format!("tenant-{}", i % 5));
            assert_eq!(svc.handle(Request::Close { session: s }), Response::Closed);
        }
        assert_eq!(svc.pool().capacity(), 2, "pool never grows");
        assert_eq!(svc.pool().free_count(), 2, "all slots returned");
        assert_eq!(svc.pool().recycles(), 100);
        let s = svc.stats();
        assert_eq!((s.opens, s.closes), (100, 100));
    }

    #[test]
    fn traces_are_harvested_per_tenant_session() {
        let svc = SessionService::new(ServerConfig {
            slots: 1,
            arena_bytes: 8 << 20,
            trace: true,
            ..ServerConfig::default()
        })
        .unwrap();
        let s = open(&svc, "traced");
        let ptr = match svc.handle(Request::Alloc {
            session: s,
            bytes: 512,
        }) {
            Response::Allocated { ptr } => ptr,
            other => panic!("{other:?}"),
        };
        svc.handle(Request::Write {
            session: s,
            ptr,
            data: vec![0; 512],
        });
        svc.handle(Request::Launch {
            session: s,
            kernel: "fill".into(),
            grid: 1,
            block: 128,
            params: vec![ptr, 128, 0],
        });
        svc.handle(Request::Close { session: s });
        let traces = svc.take_traces();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].tenant, "traced");
        assert_eq!(traces[0].session, s);
        assert!(!traces[0].events.is_empty());
        assert!(svc.take_traces().is_empty(), "take drains");
    }
}
