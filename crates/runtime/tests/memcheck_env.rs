//! `GPUCMP_MEMCHECK` environment opt-in. Kept in its own integration-test
//! binary (own process) because it mutates process-global environment.

use gpucmp_runtime::{Cuda, Gpu};
use gpucmp_sim::DeviceSpec;

#[test]
fn env_var_enables_memcheck_and_programmatic_override_wins() {
    std::env::set_var("GPUCMP_MEMCHECK", "1");
    let mut gpu = Cuda::new(DeviceSpec::gtx480()).unwrap();
    assert!(gpu.session().memcheck(), "GPUCMP_MEMCHECK=1 turns it on");
    gpu.set_memcheck(false);
    assert!(!gpu.session().memcheck(), "programmatic override wins");

    std::env::set_var("GPUCMP_MEMCHECK", "0");
    let gpu = Cuda::new(DeviceSpec::gtx480()).unwrap();
    assert!(!gpu.session().memcheck(), "0 means off");

    std::env::remove_var("GPUCMP_MEMCHECK");
    let gpu = Cuda::new(DeviceSpec::gtx480()).unwrap();
    assert!(!gpu.session().memcheck(), "unset means off");
}
