//! Runtime-level fault semantics: CUDA-style sticky context errors,
//! memcheck reporting through `LaunchReport`/`SessionEvent`, deterministic
//! fault injection, and transfer-length validation.

use gpucmp_compiler::{global_id_x, DslKernel, KernelDef};
use gpucmp_ptx::Ty;
use gpucmp_runtime::inject::FaultPlan;
use gpucmp_runtime::{Cuda, Gpu, GpuExt, RtError, SessionEvent};
use gpucmp_sim::{DeviceSpec, FaultKind, LaunchConfig};

/// out[gid] = 1.0 with no bounds guard: launched over more threads than
/// the buffer holds, it walks off the end of the allocation.
fn unguarded_fill() -> KernelDef {
    let mut k = DslKernel::new("unguarded_fill");
    let out = k.param_ptr("out");
    let gid = k.let_(Ty::S32, global_id_x());
    k.st_global(out.clone(), gid, Ty::F32, 1.0f32);
    k.finish()
}

/// A bounded fill kernel that cannot fault.
fn guarded_fill() -> KernelDef {
    let mut k = DslKernel::new("fill");
    let out = k.param_ptr("out");
    let n = k.param("n", Ty::S32);
    let gid = k.let_(Ty::S32, global_id_x());
    k.if_(gpucmp_compiler::Expr::from(gid).lt(n), |k| {
        k.st_global(out.clone(), gid, Ty::F32, 2.0f32);
    });
    k.finish()
}

#[test]
fn oob_launch_faults_with_diagnostics_and_poisons_the_context() {
    let mut gpu = Cuda::new(DeviceSpec::gtx480()).unwrap();
    let h = gpu.build(&unguarded_fill()).unwrap();
    // Point the kernel at the last 4 bytes of the arena: thread 0 writes
    // in bounds, thread 1 is the first off the end of the device.
    let cap = gpu.session().gmem.capacity();
    let bad = gpucmp_sim::DevPtr(cap - 4);
    let cfg = LaunchConfig::new(1u32, 64u32).arg_ptr(bad);
    let err = gpu.launch(h, &cfg).unwrap_err();
    match &err {
        RtError::DeviceFault { kernel, fault } => {
            assert_eq!(kernel, "unguarded_fill");
            assert!(
                matches!(fault.kind, FaultKind::OutOfBounds { .. }),
                "{fault}"
            );
            let site = fault.site.expect("OOB carries a site");
            assert_eq!(site.block, [0, 0, 0]);
            assert_eq!(site.thread, [1, 0, 0]);
        }
        e => panic!("expected DeviceFault, got {e}"),
    }

    // Sticky: every subsequent call fails with ContextLost until reset.
    assert!(gpu.fault().is_some());
    for e in [
        gpu.launch(h, &cfg).unwrap_err(),
        gpu.malloc(64).unwrap_err(),
        gpu.h2d_t::<f32>(bad, &[0.0]).unwrap_err(),
        gpu.d2h_t::<f32>(bad, 1).unwrap_err(),
    ] {
        let msg = e.to_string();
        assert!(matches!(e, RtError::ContextLost { .. }), "{msg}");
        assert!(msg.contains("out-of-bounds"), "origin survives: {msg}");
    }

    // Reset restores a working context (and invalidates old handles).
    gpu.reset();
    assert!(gpu.fault().is_none());
    let h = gpu.build(&guarded_fill()).unwrap();
    let buf = gpu.alloc::<f32>(64).unwrap();
    let cfg = LaunchConfig::new(1u32, 64u32).arg_ptr(buf).arg_i32(64);
    gpu.launch(h, &cfg).unwrap();
    assert_eq!(gpu.d2h_buf(&buf).unwrap(), vec![2.0f32; 64]);
}

#[test]
fn memcheck_reports_faults_without_aborting_or_poisoning() {
    let mut gpu = Cuda::new(DeviceSpec::gtx480()).unwrap();
    gpu.set_memcheck(true);
    gpu.set_tracing(true);
    let h = gpu.build(&unguarded_fill()).unwrap();
    let buf = gpu.alloc::<f32>(32).unwrap();
    // 64 threads into a 32-element buffer: the upper half is outside the
    // allocation — recorded and dropped, not fatal.
    let cfg = LaunchConfig::new(1u32, 64u32).arg_ptr(buf);
    let out = gpu.launch(h, &cfg).unwrap();
    assert_eq!(out.report.faults.len(), 32);
    let first = &out.report.faults[0];
    assert!(first.kind.is_access_fault(), "{first}");
    assert_eq!(first.site.unwrap().thread, [32, 0, 0]);

    // Context stays healthy; in-bounds writes landed.
    assert!(gpu.fault().is_none());
    assert_eq!(gpu.d2h_buf(&buf).unwrap(), vec![1.0f32; 32]);

    // The faults reached the trace stream for chrome-trace export.
    let fault_events = gpu
        .trace_events()
        .iter()
        .filter(|e| matches!(e, SessionEvent::Fault { .. }))
        .count();
    assert_eq!(fault_events, 32);
}

#[test]
fn transfer_lengths_are_validated_against_the_allocation() {
    let mut gpu = Cuda::new(DeviceSpec::gtx480()).unwrap();
    let buf = gpu.alloc::<f32>(16).unwrap();

    let e = gpu.d2h_t::<f32>(buf.ptr(), 32).unwrap_err();
    assert!(
        matches!(
            e,
            RtError::TransferSize {
                op: "d2h",
                requested: 128,
                available: 64,
            }
        ),
        "{e}"
    );

    let e = gpu.h2d_t::<f32>(buf.ptr(), &[0.0f32; 17]).unwrap_err();
    assert!(matches!(e, RtError::TransferSize { op: "h2d", .. }), "{e}");

    let e = gpu.h2d_buf(&buf, &[0.0f32; 17]).unwrap_err();
    assert!(
        matches!(e, RtError::TransferSize { op: "h2d_buf", .. }),
        "{e}"
    );

    // None of these poison the context; exact-size transfers still work.
    assert!(gpu.fault().is_none());
    gpu.h2d_buf(&buf, &[3.0f32; 16]).unwrap();
    assert_eq!(gpu.d2h_buf(&buf).unwrap(), vec![3.0f32; 16]);
}

#[test]
fn injected_malloc_and_h2d_failures_are_precise_and_transient() {
    let mut gpu = Cuda::new(DeviceSpec::gtx480()).unwrap();
    gpu.set_fault_plan(Some(FaultPlan::none().with_fail_malloc(1).with_fail_h2d(0)));
    let a = gpu.alloc::<f32>(8).unwrap(); // malloc #0 passes
    let e = gpu.alloc::<f32>(8).unwrap_err(); // malloc #1 fails by plan
    assert_eq!(
        e,
        RtError::Injected {
            op: "malloc",
            nth: 1
        }
    );
    let _b = gpu.alloc::<f32>(8).unwrap(); // malloc #2 passes again

    let e = gpu.h2d_buf(&a, &[1.0f32; 8]).unwrap_err(); // h2d #0 fails
    assert_eq!(e, RtError::Injected { op: "h2d", nth: 0 });
    gpu.h2d_buf(&a, &[1.0f32; 8]).unwrap(); // h2d #1 passes

    // Injected API failures are not sticky.
    assert!(gpu.fault().is_none());
}

#[test]
fn injected_transfer_corruption_flips_exactly_one_byte() {
    let mut gpu = Cuda::new(DeviceSpec::gtx480()).unwrap();
    gpu.set_fault_plan(Some(FaultPlan::none().with_corrupt_h2d(0)));
    let buf = gpu.alloc::<u8>(64).unwrap();
    let data = vec![0xAAu8; 64];
    gpu.h2d_buf(&buf, &data).unwrap();
    let back = gpu.d2h_buf(&buf).unwrap();
    let diffs: Vec<usize> = (0..64).filter(|&i| back[i] != data[i]).collect();
    assert_eq!(diffs, vec![32], "one byte, in the middle, flipped");
    assert_eq!(back[32], 0xAB);
}

#[test]
fn starved_launch_budget_raises_a_sticky_watchdog_fault() {
    let mut gpu = Cuda::new(DeviceSpec::gtx480()).unwrap();
    gpu.set_fault_plan(Some(FaultPlan::none().with_starve_launch(1, 8)));
    let h = gpu.build(&guarded_fill()).unwrap();
    let buf = gpu.alloc::<f32>(256).unwrap();
    let cfg = LaunchConfig::new(4u32, 64u32).arg_ptr(buf).arg_i32(256);
    gpu.launch(h, &cfg).unwrap(); // launch #0 runs normally
    let e = gpu.launch(h, &cfg).unwrap_err(); // launch #1 starved
    match &e {
        RtError::DeviceFault { kernel, fault } => {
            assert_eq!(kernel, "fill");
            assert!(
                matches!(fault.kind, FaultKind::Watchdog { budget: 8 }),
                "{fault}"
            );
        }
        e => panic!("expected watchdog DeviceFault, got {e}"),
    }
    // A watchdog via injection is a real device fault: sticky.
    assert!(matches!(
        gpu.launch(h, &cfg).unwrap_err(),
        RtError::ContextLost { .. }
    ));
    gpu.reset();
    assert!(gpu.fault().is_none());
}

#[test]
fn injected_launch_rejection_is_not_sticky() {
    let mut gpu = Cuda::new(DeviceSpec::gtx480()).unwrap();
    gpu.set_fault_plan(Some(FaultPlan::none().with_fail_launch(0)));
    let h = gpu.build(&guarded_fill()).unwrap();
    let buf = gpu.alloc::<f32>(64).unwrap();
    let cfg = LaunchConfig::new(1u32, 64u32).arg_ptr(buf).arg_i32(64);
    let e = gpu.launch(h, &cfg).unwrap_err();
    assert_eq!(
        e,
        RtError::Injected {
            op: "launch",
            nth: 0
        }
    );
    assert!(gpu.fault().is_none());
    gpu.launch(h, &cfg).unwrap();
}

#[test]
fn aborting_fault_lands_on_the_trace_timeline() {
    let mut gpu = Cuda::new(DeviceSpec::gtx480()).unwrap();
    gpu.set_tracing(true);
    let h = gpu.build(&unguarded_fill()).unwrap();
    let cap = gpu.session().gmem.capacity();
    let cfg = LaunchConfig::new(1u32, 64u32).arg_ptr(gpucmp_sim::DevPtr(cap - 4));
    gpu.launch(h, &cfg).unwrap_err();
    let faults: Vec<_> = gpu
        .trace_events()
        .iter()
        .filter_map(|e| match e {
            SessionEvent::Fault {
                kernel,
                desc,
                pc,
                thread,
                ..
            } => Some((kernel.clone(), desc.clone(), *pc, *thread)),
            _ => None,
        })
        .collect();
    assert_eq!(faults.len(), 1);
    let (kernel, desc, pc, thread) = &faults[0];
    assert_eq!(kernel, "unguarded_fill");
    assert!(desc.contains("out-of-bounds"), "{desc}");
    assert!(pc.is_some());
    assert_eq!(*thread, Some([1, 0, 0]));
}
