//! Concurrent fault isolation: N threads drive independent sessions on
//! the same device model while a fault plan poisons exactly one of them
//! mid-run. The poisoned session must fail sticky-and-typed until reset;
//! every *other* session's result fingerprint must be bit-identical to a
//! fault-free serial run — the runtime-level guarantee the multi-tenant
//! server builds its isolation contract on.

use gpucmp_compiler::{global_id_x, ld_global, DslKernel, Expr, KernelDef};
use gpucmp_ptx::Ty;
use gpucmp_runtime::inject::FaultPlan;
use gpucmp_runtime::{Cuda, Gpu, GpuExt, RtError};
use gpucmp_sim::{DeviceSpec, LaunchConfig};

const N_THREADS: u64 = 4;
const N_ELEMS: u32 = 512;
const ITERS: u32 = 8;

/// out[i] = in[i] * 3 + bias, guarded.
fn mad_kernel() -> KernelDef {
    let mut k = DslKernel::new("mad");
    let input = k.param_ptr("in");
    let out = k.param_ptr("out");
    let bias = k.param("bias", Ty::S32);
    let n = k.param("n", Ty::S32);
    let gid = k.let_(Ty::S32, global_id_x());
    k.if_(Expr::from(gid).lt(n), |k| {
        let v = k.let_(Ty::S32, ld_global(input.clone(), gid, Ty::S32));
        k.st_global(
            out.clone(),
            gid,
            Ty::S32,
            Expr::from(v) * 3i32 + bias.clone(),
        );
    });
    k.finish()
}

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// Run one session's full workload and fingerprint every readback.
/// Deterministic in `seed`; independent of sibling sessions.
fn run_session(seed: u64) -> u64 {
    let mut gpu = Cuda::new(DeviceSpec::gtx480()).unwrap();
    let h = gpu.build(&mad_kernel()).unwrap();
    let input = gpu.alloc::<i32>(N_ELEMS as usize).unwrap();
    let out = gpu.alloc::<i32>(N_ELEMS as usize).unwrap();
    let data: Vec<i32> = (0..N_ELEMS as i32).map(|i| i ^ seed as i32).collect();
    gpu.h2d_t(input.into(), &data).unwrap();
    let mut fp = 0xCBF2_9CE4_8422_2325u64;
    for iter in 0..ITERS {
        let cfg = LaunchConfig::builder()
            .grid(N_ELEMS / 128)
            .block(128u32)
            .arg_ptr(input)
            .arg_ptr(out)
            .arg_i32(seed as i32 + iter as i32)
            .arg_i32(N_ELEMS as i32)
            .build();
        let outcome = gpu.launch(h, &cfg).unwrap();
        let bytes = gpu.d2h_buf(&out).unwrap();
        for v in &bytes {
            fnv1a(&mut fp, &v.to_le_bytes());
        }
        fnv1a(
            &mut fp,
            &outcome.report.stats.lane_instructions.to_le_bytes(),
        );
    }
    fp
}

#[test]
fn poisoned_session_does_not_perturb_concurrent_siblings() {
    // Fault-free serial baseline.
    let baseline: Vec<u64> = (0..N_THREADS).map(run_session).collect();

    // Same workloads, now concurrent, with one extra session being
    // starved into a watchdog fault mid-run by its fault plan.
    let workers: Vec<_> = (0..N_THREADS)
        .map(|seed| std::thread::spawn(move || run_session(seed)))
        .collect();
    let victim = std::thread::spawn(|| {
        let mut gpu = Cuda::new(DeviceSpec::gtx480()).unwrap();
        // Launch index 1 (the second launch) runs under a 1-instruction
        // budget: a guaranteed watchdog fault, injected deterministically.
        gpu.set_fault_plan(Some(FaultPlan::none().with_starve_launch(1, 1)));
        let h = gpu.build(&mad_kernel()).unwrap();
        let input = gpu.alloc::<i32>(N_ELEMS as usize).unwrap();
        let out = gpu.alloc::<i32>(N_ELEMS as usize).unwrap();
        gpu.h2d_t(input.into(), &vec![7i32; N_ELEMS as usize])
            .unwrap();
        let cfg = LaunchConfig::builder()
            .grid(N_ELEMS / 128)
            .block(128u32)
            .arg_ptr(input)
            .arg_ptr(out)
            .arg_i32(1)
            .arg_i32(N_ELEMS as i32)
            .build();
        gpu.launch(h, &cfg).unwrap();
        let err = gpu.launch(h, &cfg).unwrap_err();
        assert!(
            matches!(err, RtError::DeviceFault { .. }),
            "starved launch faults: {err}"
        );
        // Sticky until reset, typed the whole way down.
        for e in [
            gpu.launch(h, &cfg).unwrap_err(),
            gpu.malloc(64).unwrap_err(),
            gpu.d2h_buf(&out).unwrap_err(),
        ] {
            assert!(matches!(e, RtError::ContextLost { .. }), "{e}");
        }
        let report = gpu.reset();
        assert!(report.fault.is_some(), "reset clears the recorded fault");
    });

    let concurrent: Vec<u64> = workers
        .into_iter()
        .map(|w| w.join().expect("worker thread"))
        .collect();
    victim.join().expect("victim thread");

    assert_eq!(
        concurrent, baseline,
        "sibling fingerprints must be bit-identical to the fault-free run"
    );
}

#[test]
fn victim_recovers_to_baseline_after_reset() {
    let expect = run_session(3);
    let mut gpu = Cuda::new(DeviceSpec::gtx480()).unwrap();
    gpu.set_fault_plan(Some(FaultPlan::none().with_starve_launch(0, 1)));
    let h = gpu.build(&mad_kernel()).unwrap();
    let buf = gpu.alloc::<i32>(4).unwrap();
    let cfg = LaunchConfig::builder()
        .grid(1u32)
        .block(32u32)
        .arg_ptr(buf)
        .arg_ptr(buf)
        .arg_i32(0)
        .arg_i32(4)
        .build();
    assert!(gpu.launch(h, &cfg).is_err(), "first launch is starved");
    gpu.reset();
    // A recycled context with the plan disarmed reproduces the exact
    // fault-free fingerprint — the server's recycle-then-reuse path.
    gpu.set_fault_plan(None);
    drop(gpu);
    assert_eq!(run_session(3), expect);
}
