//! The per-session pre-decoded code cache: one decode per distinct kernel,
//! keyed by content hash, surviving rebuilds — and evicted wholesale by
//! [`gpucmp_runtime::Session::reset`] so a recycled context starts cold.

use gpucmp_compiler::{global_id_x, DslKernel, KernelDef};
use gpucmp_ptx::Ty;
use gpucmp_runtime::{Cuda, Gpu, GpuExt};
use gpucmp_sim::{DeviceSpec, ExecOptions, ExecTier, LaunchConfig};

fn fill_kernel(name: &str, value: f32) -> KernelDef {
    let mut k = DslKernel::new(name);
    let out = k.param_ptr("out");
    let n = k.param("n", Ty::S32);
    let gid = k.let_(Ty::S32, global_id_x());
    k.if_(gpucmp_compiler::Expr::from(gid).lt(n), |k| {
        k.st_global(out.clone(), gid, Ty::F32, value);
    });
    k.finish()
}

#[test]
fn one_decode_per_distinct_kernel_per_session() {
    let mut gpu = Cuda::new(DeviceSpec::gtx480()).unwrap();
    gpu.set_exec_options(ExecOptions::serial().tier(ExecTier::Fused));
    let buf = gpu.alloc::<f32>(256).unwrap();
    let cfg = LaunchConfig::new(2u32, 128u32).arg_ptr(buf).arg_i32(256);

    let a = gpu.build(&fill_kernel("fill", 1.0)).unwrap();
    for _ in 0..5 {
        gpu.launch(a, &cfg).unwrap();
    }
    assert_eq!(gpu.session().decode_count(), 1, "one decode for 5 launches");

    // Rebuilding the identical kernel hits the cache via the content hash.
    let a2 = gpu.build(&fill_kernel("fill", 1.0)).unwrap();
    gpu.launch(a2, &cfg).unwrap();
    assert_eq!(gpu.session().decode_count(), 1, "rebuild reuses the decode");

    // A genuinely different kernel decodes once more.
    let b = gpu.build(&fill_kernel("fill2", 3.0)).unwrap();
    gpu.launch(b, &cfg).unwrap();
    gpu.launch(b, &cfg).unwrap();
    assert_eq!(gpu.session().decode_count(), 2);
    assert_eq!(gpu.session().code_cache_len(), 2);
    assert_eq!(gpu.d2h_buf(&buf).unwrap(), vec![3.0f32; 256]);
}

#[test]
fn context_reset_evicts_code_cache() {
    let mut gpu = Cuda::new(DeviceSpec::gtx480()).unwrap();
    gpu.set_exec_options(ExecOptions::serial().tier(ExecTier::Fused));
    let h = gpu.build(&fill_kernel("fill", 2.0)).unwrap();
    let buf = gpu.alloc::<f32>(64).unwrap();
    let cfg = LaunchConfig::new(1u32, 64u32).arg_ptr(buf).arg_i32(64);
    gpu.launch(h, &cfg).unwrap();
    assert_eq!(gpu.session().decode_count(), 1);
    assert_eq!(gpu.session().code_cache_len(), 1);

    let report = gpu.reset();
    assert_eq!(report.evicted_kernels, 1, "reset reports the eviction");
    assert_eq!(gpu.session().resets(), 1);
    assert_eq!(gpu.session().code_cache_len(), 0, "cache starts cold");

    // Same kernel content after reset must be decoded afresh: a recycled
    // (pooled) session cannot replay a stale decode from a previous
    // context generation, even for identical content hashes.
    let h = gpu.build(&fill_kernel("fill", 2.0)).unwrap();
    let buf = gpu.alloc::<f32>(64).unwrap();
    let cfg = LaunchConfig::new(1u32, 64u32).arg_ptr(buf).arg_i32(64);
    gpu.launch(h, &cfg).unwrap();
    assert_eq!(gpu.session().decode_count(), 2, "reset evicts the cache");
    assert_eq!(gpu.session().code_cache_len(), 1);
    assert_eq!(gpu.d2h_buf(&buf).unwrap(), vec![2.0f32; 64]);
}

#[test]
fn interp_tier_never_decodes() {
    let mut gpu = Cuda::new(DeviceSpec::gtx480()).unwrap();
    gpu.set_exec_options(ExecOptions::serial().tier(ExecTier::Interp));
    let h = gpu.build(&fill_kernel("fill", 4.0)).unwrap();
    let buf = gpu.alloc::<f32>(64).unwrap();
    let cfg = LaunchConfig::new(1u32, 64u32).arg_ptr(buf).arg_i32(64);
    gpu.launch(h, &cfg).unwrap();
    assert_eq!(gpu.session().decode_count(), 0);
    assert_eq!(gpu.session().code_cache_len(), 0);
    assert_eq!(gpu.d2h_buf(&buf).unwrap(), vec![4.0f32; 64]);
}
