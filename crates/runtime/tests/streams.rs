//! Stream/event semantics over the virtual timeline: overlap beats the
//! serial schedule, the schedule is bit-identical for any simulation
//! thread count and any dependency-equivalent enqueue interleaving,
//! cross-stream events order data correctly, faults poison per-stream,
//! and `reset` accounts for cancelled pending work.

use gpucmp_compiler::{global_id_x, DslKernel, KernelDef};
use gpucmp_ptx::Ty;
use gpucmp_runtime::{Cuda, Event, Gpu, GpuExt, RtError, Stream};
use gpucmp_sim::{DevPtr, DeviceSpec, ExecOptions, FaultKind, LaunchConfig};

const N: usize = 4096;

/// out[gid] = in[gid] * 2 with a bounds guard.
fn double_kernel() -> KernelDef {
    let mut k = DslKernel::new("double");
    let inp = k.param_ptr("in");
    let out = k.param_ptr("out");
    let n = k.param("n", Ty::S32);
    let gid = k.let_(Ty::S32, global_id_x());
    k.if_(gpucmp_compiler::Expr::from(gid).lt(n), |k| {
        let v = k.let_(
            Ty::F32,
            gpucmp_compiler::ld_global(inp.clone(), gid, Ty::F32),
        );
        k.st_global(
            out.clone(),
            gid,
            Ty::F32,
            gpucmp_compiler::Expr::from(v) + gpucmp_compiler::Expr::from(v),
        );
    });
    k.finish()
}

/// Unguarded store used to raise a real device fault.
fn unguarded_fill() -> KernelDef {
    let mut k = DslKernel::new("unguarded_fill");
    let out = k.param_ptr("out");
    let gid = k.let_(Ty::S32, global_id_x());
    k.st_global(out.clone(), gid, Ty::F32, 1.0f32);
    k.finish()
}

/// Enqueue `items` upload→kernel→readback chains round-robin over
/// `streams`, then synchronise; returns the device end time and every
/// chain's readback.
fn pipeline(gpu: &mut Cuda, streams: &[Stream], items: usize) -> (f64, Vec<Vec<f32>>) {
    let h = gpu.build(&double_kernel()).unwrap();
    let bufs: Vec<_> = (0..items)
        .map(|_| (gpu.alloc::<f32>(N).unwrap(), gpu.alloc::<f32>(N).unwrap()))
        .collect();
    let mut evs = Vec::new();
    for (i, (a, b)) in bufs.iter().enumerate() {
        let st = streams[i % streams.len()];
        let data: Vec<f32> = (0..N).map(|j| (i * N + j) as f32).collect();
        gpu.enqueue_h2d_buf(st, a, &data).unwrap();
        let cfg = LaunchConfig::new((N as u32).div_ceil(128), 128u32)
            .arg_ptr(*a)
            .arg_ptr(*b)
            .arg_i32(N as i32);
        gpu.enqueue_launch(st, h, cfg).unwrap();
        evs.push(gpu.enqueue_d2h_buf(st, b).unwrap());
    }
    let end = gpu.device_synchronize().unwrap();
    let outs = evs
        .into_iter()
        .map(|ev| gpu.take_readback_t::<f32>(ev).unwrap())
        .collect();
    (end, outs)
}

#[test]
fn two_streams_finish_strictly_earlier_than_one() {
    let mut serial = Cuda::new(DeviceSpec::gtx480()).unwrap();
    let s1 = serial.create_stream();
    let (end_serial, out_serial) = pipeline(&mut serial, &[s1], 4);

    let mut piped = Cuda::new(DeviceSpec::gtx480()).unwrap();
    let streams = [piped.create_stream(), piped.create_stream()];
    let (end_piped, out_piped) = pipeline(&mut piped, &streams, 4);

    // Same data either way…
    assert_eq!(out_serial, out_piped);
    for (i, o) in out_piped.iter().enumerate() {
        assert_eq!(o[0], (i * N) as f32 * 2.0);
        assert_eq!(o[N - 1], (i * N + N - 1) as f32 * 2.0);
    }
    // …but the two-stream run overlaps transfers with compute.
    assert!(
        end_piped < end_serial,
        "2 streams {end_piped} ns should beat 1 stream {end_serial} ns"
    );
}

#[test]
fn schedule_is_bit_identical_across_sim_thread_counts() {
    let run = |threads: usize| {
        let mut gpu = Cuda::new(DeviceSpec::gtx480()).unwrap();
        gpu.set_exec_options(ExecOptions::with_threads(threads));
        let streams = [gpu.create_stream(), gpu.create_stream()];
        pipeline(&mut gpu, &streams, 4)
    };
    let (end1, out1) = run(1);
    let (end8, out8) = run(8);
    assert_eq!(out1, out8, "results are bit-identical");
    assert_eq!(
        end1.to_bits(),
        end8.to_bits(),
        "the timeline end is bit-identical: {end1} vs {end8}"
    );
}

#[test]
fn dependency_equivalent_enqueue_orders_produce_identical_timelines() {
    // Two interleavings of the same per-stream programs (B's launch
    // waits on A's upload in both): every event must complete at the
    // same virtual instant regardless of host enqueue order.
    let run = |a_first: bool| {
        let mut gpu = Cuda::new(DeviceSpec::gtx480()).unwrap();
        let h = gpu.build(&double_kernel()).unwrap();
        let (sa, sb) = (gpu.create_stream(), gpu.create_stream());
        let a_in = gpu.alloc::<f32>(N).unwrap();
        let a_out = gpu.alloc::<f32>(N).unwrap();
        let b_out = gpu.alloc::<f32>(N).unwrap();
        let data = vec![3.0f32; N];
        let cfg = |inp: DevPtr, out: DevPtr| {
            LaunchConfig::new((N as u32).div_ceil(128), 128u32)
                .arg_ptr(inp)
                .arg_ptr(out)
                .arg_i32(N as i32)
        };
        let up: Event;
        let (ka, kb);
        if a_first {
            up = gpu.enqueue_h2d_buf(sa, &a_in, &data).unwrap();
            ka = gpu
                .enqueue_launch(sa, h, cfg(a_in.ptr(), a_out.ptr()))
                .unwrap()
                .0;
            gpu.stream_wait_event(sb, up).unwrap();
            kb = gpu
                .enqueue_launch(sb, h, cfg(a_in.ptr(), b_out.ptr()))
                .unwrap()
                .0;
        } else {
            up = gpu.enqueue_h2d_buf(sa, &a_in, &data).unwrap();
            gpu.stream_wait_event(sb, up).unwrap();
            kb = gpu
                .enqueue_launch(sb, h, cfg(a_in.ptr(), b_out.ptr()))
                .unwrap()
                .0;
            ka = gpu
                .enqueue_launch(sa, h, cfg(a_in.ptr(), a_out.ptr()))
                .unwrap()
                .0;
        }
        let t_up = gpu.event_synchronize(up).unwrap();
        let t_ka = gpu.event_synchronize(ka).unwrap();
        let t_kb = gpu.event_synchronize(kb).unwrap();
        let t_end = gpu.device_synchronize().unwrap();
        (t_up, t_ka, t_kb, t_end)
    };
    let x = run(true);
    let y = run(false);
    assert_eq!(x, y, "interleaving changed the timeline");
    // The consumer really ran after the upload it waited on.
    assert!(x.2 > x.0, "kb {x:?} must end after the upload");
}

#[test]
fn cross_stream_event_orders_data_correctly() {
    let mut gpu = Cuda::new(DeviceSpec::gtx480()).unwrap();
    let h = gpu.build(&double_kernel()).unwrap();
    let (producer, consumer) = (gpu.create_stream(), gpu.create_stream());
    let a = gpu.alloc::<f32>(N).unwrap();
    let b = gpu.alloc::<f32>(N).unwrap();
    let data: Vec<f32> = (0..N).map(|i| i as f32).collect();
    let up = gpu.enqueue_h2d_buf(producer, &a, &data).unwrap();
    gpu.stream_wait_event(consumer, up).unwrap();
    let cfg = LaunchConfig::new((N as u32).div_ceil(128), 128u32)
        .arg_ptr(a)
        .arg_ptr(b)
        .arg_i32(N as i32);
    let (k_ev, _) = gpu.enqueue_launch(consumer, h, cfg).unwrap();
    let down = gpu.enqueue_d2h_buf(consumer, &b).unwrap();
    let t_up = gpu.event_synchronize(up).unwrap();
    let t_k = gpu.event_synchronize(k_ev).unwrap();
    assert!(
        t_k > t_up,
        "consumer kernel starts after the producer upload"
    );
    let got = gpu.take_readback_t::<f32>(down).unwrap();
    assert!(got.iter().enumerate().all(|(i, &v)| v == 2.0 * i as f32));
    // The clock is monotonic and synchronisation never rewinds it.
    assert!(gpu.now_ns() >= t_k);
}

#[test]
fn take_readback_is_single_shot() {
    let mut gpu = Cuda::new(DeviceSpec::gtx480()).unwrap();
    let st = gpu.create_stream();
    let buf = gpu.alloc::<f32>(8).unwrap();
    gpu.enqueue_h2d_buf(st, &buf, &[7.0f32; 8]).unwrap();
    let ev = gpu.enqueue_d2h_buf(st, &buf).unwrap();
    assert_eq!(gpu.take_readback_t::<f32>(ev).unwrap(), vec![7.0f32; 8]);
    let err = gpu.take_readback_t::<f32>(ev).unwrap_err();
    assert!(matches!(err, RtError::BadEvent(_)), "{err}");
}

#[test]
fn waiting_on_a_never_enqueued_event_is_an_error() {
    // An Event from one session carries a (stream, seq) that the other
    // session never enqueued.
    let mut gpu1 = Cuda::new(DeviceSpec::gtx480()).unwrap();
    let s1 = gpu1.create_stream();
    let buf = gpu1.alloc::<f32>(8).unwrap();
    gpu1.enqueue_h2d_buf(s1, &buf, &[0.0f32; 8]).unwrap();
    let foreign = gpu1.enqueue_d2h_buf(s1, &buf).unwrap();

    let mut gpu2 = Cuda::new(DeviceSpec::gtx480()).unwrap();
    let s2 = gpu2.create_stream();
    let err = gpu2.stream_wait_event(s2, foreign).unwrap_err();
    assert!(matches!(err, RtError::BadEvent(_)), "{err}");
}

#[test]
fn stream_fault_poisons_the_context_and_names_the_stream() {
    let mut gpu = Cuda::new(DeviceSpec::gtx480()).unwrap();
    let h = gpu.build(&unguarded_fill()).unwrap();
    let healthy = gpu.create_stream();
    let faulty = gpu.create_stream();
    // Aim past the end of the arena so thread 1 faults.
    let cap = gpu.session().gmem.capacity();
    let bad = DevPtr(cap - 4);
    let cfg = LaunchConfig::new(1u32, 64u32).arg_ptr(bad);
    let err = gpu.enqueue_launch(faulty, h, cfg).unwrap_err();
    match &err {
        RtError::DeviceFault { fault, .. } => {
            assert!(matches!(fault.kind, FaultKind::OutOfBounds { .. }))
        }
        e => panic!("expected DeviceFault, got {e}"),
    }
    // The error is pinned to the stream that carried the launch…
    assert!(gpu
        .stream_error(faulty)
        .is_some_and(|e| e.contains("out-of-bounds")));
    assert_eq!(gpu.stream_error(healthy), None);
    // …and the context is lost as a whole (CUDA sticky semantics).
    assert!(gpu.fault().is_some());
    let buf = DevPtr(0);
    let e = gpu.enqueue_h2d_t(healthy, buf, &[0.0f32]).unwrap_err();
    assert!(matches!(e, RtError::ContextLost { .. }), "{e}");
}

#[test]
fn reset_cancels_pending_stream_work_and_reports_it() {
    let mut gpu = Cuda::new(DeviceSpec::gtx480()).unwrap();
    let h = gpu.build(&double_kernel()).unwrap();
    let bad_h = gpu.build(&unguarded_fill()).unwrap();
    let (s1, s2) = (gpu.create_stream(), gpu.create_stream());
    let a = gpu.alloc::<f32>(N).unwrap();
    let b = gpu.alloc::<f32>(N).unwrap();
    // Three ops pending on s1 (one a staged readback), one on s2.
    gpu.enqueue_h2d_buf(s1, &a, &vec![1.0f32; N]).unwrap();
    let cfg = LaunchConfig::new((N as u32).div_ceil(128), 128u32)
        .arg_ptr(a)
        .arg_ptr(b)
        .arg_i32(N as i32);
    gpu.enqueue_launch(s1, h, cfg).unwrap();
    let orphan = gpu.enqueue_d2h_buf(s1, &b).unwrap();
    gpu.enqueue_h2d_buf(s2, &b, &vec![2.0f32; N]).unwrap();
    assert_eq!(gpu.session().pending_ops(), 4);

    // A faulting launch poisons the context with the work still queued.
    let cap = gpu.session().gmem.capacity();
    let cfg_bad = LaunchConfig::new(1u32, 64u32).arg_ptr(DevPtr(cap - 4));
    gpu.launch(bad_h, &cfg_bad).unwrap_err();
    assert_eq!(gpu.session().pending_ops(), 4, "fault leaves work queued");

    let report = gpu.reset();
    assert!(report.lost_work());
    assert_eq!(report.cancelled_ops, 4);
    assert_eq!(report.cancelled_by_stream, vec![(1, 3), (2, 1)]);
    assert_eq!(report.dropped_readbacks, 1);
    assert!(report
        .fault
        .as_deref()
        .is_some_and(|f| f.contains("out-of-bounds")));
    let text = report.to_string();
    assert!(text.contains("4 pending op(s)"), "{text}");

    // The cancelled readback is gone and the context works again.
    let e = gpu.take_readback_t::<f32>(orphan).unwrap_err();
    assert!(matches!(e, RtError::BadEvent(_)), "{e}");
    assert_eq!(gpu.session().pending_ops(), 0);
    let buf = gpu.alloc::<f32>(8).unwrap();
    gpu.h2d_buf(&buf, &[5.0f32; 8]).unwrap();
    assert_eq!(gpu.d2h_buf(&buf).unwrap(), vec![5.0f32; 8]);

    // A clean session's reset reports no lost work.
    let mut clean = Cuda::new(DeviceSpec::gtx480()).unwrap();
    let r = clean.reset();
    assert!(!r.lost_work());
    assert_eq!(r.cancelled_ops, 0);
    assert_eq!(r.fault, None);
}

#[test]
fn sync_api_is_sugar_over_the_default_stream() {
    // The synchronous calls must cost exactly what an explicit
    // enqueue-on-default-stream + event-synchronise costs.
    let data = vec![4.0f32; N];
    let run_sync = |gpu: &mut Cuda| {
        let h = gpu.build(&double_kernel()).unwrap();
        let a = gpu.alloc::<f32>(N).unwrap();
        let b = gpu.alloc::<f32>(N).unwrap();
        gpu.h2d_buf(&a, &data).unwrap();
        let cfg = LaunchConfig::new((N as u32).div_ceil(128), 128u32)
            .arg_ptr(a)
            .arg_ptr(b)
            .arg_i32(N as i32);
        gpu.launch(h, &cfg).unwrap();
        let out = gpu.d2h_buf(&b).unwrap();
        (gpu.now_ns(), out)
    };
    let run_explicit = |gpu: &mut Cuda| {
        let h = gpu.build(&double_kernel()).unwrap();
        let a = gpu.alloc::<f32>(N).unwrap();
        let b = gpu.alloc::<f32>(N).unwrap();
        let ev = gpu.enqueue_h2d_buf(Stream::DEFAULT, &a, &data).unwrap();
        gpu.event_synchronize(ev).unwrap();
        let cfg = LaunchConfig::new((N as u32).div_ceil(128), 128u32)
            .arg_ptr(a)
            .arg_ptr(b)
            .arg_i32(N as i32);
        let (kev, _) = gpu.enqueue_launch(Stream::DEFAULT, h, cfg).unwrap();
        gpu.event_synchronize(kev).unwrap();
        let ev = gpu.enqueue_d2h_buf(Stream::DEFAULT, &b).unwrap();
        let out = gpu.take_readback_t::<f32>(ev).unwrap();
        (gpu.now_ns(), out)
    };
    let mut g1 = Cuda::new(DeviceSpec::gtx480()).unwrap();
    let mut g2 = Cuda::new(DeviceSpec::gtx480()).unwrap();
    let (t1, o1) = run_sync(&mut g1);
    let (t2, o2) = run_explicit(&mut g2);
    assert_eq!(o1, o2);
    assert_eq!(t1.to_bits(), t2.to_bits(), "{t1} vs {t2}");
}
