//! Runtime error types, including the OpenCL status codes the paper's
//! portability study runs into (`CL_OUT_OF_RESOURCES` on the Cell/BE) and
//! the CUDA-style sticky device faults added by the robustness layer.

use gpucmp_sim::{DeviceFault, SimError};
use std::fmt;

/// OpenCL-style status codes (subset used by the benchmarks).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClStatus {
    /// `CL_SUCCESS`.
    Success,
    /// `CL_DEVICE_NOT_FOUND` — no device of the requested
    /// `CL_DEVICE_TYPE_*` on the platform.
    DeviceNotFound,
    /// `CL_INVALID_WORK_GROUP_SIZE`.
    InvalidWorkGroupSize,
    /// `CL_OUT_OF_RESOURCES` — what the Cell/BE returns from
    /// `clEnqueueNDRangeKernel` for kernels whose registers + local store
    /// don't fit an SPE (paper Table VI "ABT").
    OutOfResources,
    /// `CL_BUILD_PROGRAM_FAILURE`.
    BuildProgramFailure,
    /// `CL_MEM_OBJECT_ALLOCATION_FAILURE`.
    MemObjectAllocationFailure,
}

impl ClStatus {
    /// The OpenCL constant name.
    pub const fn name(self) -> &'static str {
        match self {
            ClStatus::Success => "CL_SUCCESS",
            ClStatus::DeviceNotFound => "CL_DEVICE_NOT_FOUND",
            ClStatus::InvalidWorkGroupSize => "CL_INVALID_WORK_GROUP_SIZE",
            ClStatus::OutOfResources => "CL_OUT_OF_RESOURCES",
            ClStatus::BuildProgramFailure => "CL_BUILD_PROGRAM_FAILURE",
            ClStatus::MemObjectAllocationFailure => "CL_MEM_OBJECT_ALLOCATION_FAILURE",
        }
    }
}

impl fmt::Display for ClStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A host-API error.
#[derive(Clone, Debug, PartialEq)]
pub enum RtError {
    /// The simulated device faulted during a kernel. Carries the kernel
    /// name and the full simulator diagnostics (fault kind + PC + thread
    /// coordinates). CUDA semantics: this error is *sticky* — the context
    /// rejects further work until [`crate::Session::reset`].
    DeviceFault {
        /// Name of the faulting kernel (empty if unknown).
        kernel: String,
        /// The simulator's diagnostics.
        fault: DeviceFault,
    },
    /// The context was poisoned by an earlier device fault; every call
    /// fails with this until the session is reset.
    ContextLost {
        /// Display of the original fault that poisoned the context.
        origin: String,
    },
    /// Device memory allocation failed.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes still available in the arena.
        available: u64,
    },
    /// A host↔device transfer was sized against the wrong allocation.
    TransferSize {
        /// Which operation (`"h2d"`, `"d2h"`, `"h2d_buf"`, ...).
        op: &'static str,
        /// Bytes the caller asked to move.
        requested: u64,
        /// Bytes actually available in the target allocation.
        available: u64,
    },
    /// A deliberately injected failure from an active
    /// [`crate::inject::FaultPlan`] (fault-injection campaigns only).
    Injected {
        /// Which operation was failed (`"malloc"`, `"h2d"`, `"launch"`).
        op: &'static str,
        /// Zero-based index of the failed call within its operation class.
        nth: u64,
    },
    /// Another simulator error (launch-setup validation and the like).
    Sim(SimError),
    /// Kernel compilation failed.
    Compile(String),
    /// An OpenCL status other than success.
    Cl(ClStatus),
    /// CUDA used on a non-NVIDIA device.
    WrongVendor(&'static str),
    /// Invalid kernel handle.
    BadHandle,
    /// Invalid stream handle (from another session, or invalidated by
    /// [`crate::Session::reset`]).
    BadStream,
    /// Invalid event handle, or an event used where its op type does not
    /// apply (e.g. taking the readback of a non-d2h event).
    BadEvent(&'static str),
}

impl RtError {
    /// The device-fault diagnostics, if this error carries any.
    pub fn device_fault(&self) -> Option<&DeviceFault> {
        match self {
            RtError::DeviceFault { fault, .. } => Some(fault),
            RtError::Sim(e) => e.fault(),
            _ => None,
        }
    }

    /// Whether this error poisons the context (CUDA sticky semantics):
    /// device faults do, API-level validation errors do not.
    pub fn is_sticky(&self) -> bool {
        matches!(self, RtError::DeviceFault { .. })
    }
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::DeviceFault { kernel, fault } => {
                if kernel.is_empty() {
                    write!(f, "{fault}")
                } else {
                    write!(f, "kernel `{kernel}`: {fault}")
                }
            }
            RtError::ContextLost { origin } => write!(
                f,
                "context lost to an earlier device fault ({origin}); \
                 call Session::reset() before launching again"
            ),
            RtError::OutOfMemory {
                requested,
                available,
            } => write!(
                f,
                "device out of memory: requested {requested} bytes, \
                 {available} available"
            ),
            RtError::TransferSize {
                op,
                requested,
                available,
            } => write!(
                f,
                "{op}: transfer of {requested} bytes exceeds the \
                 {available} bytes of the target allocation"
            ),
            RtError::Injected { op, nth } => {
                write!(f, "injected fault: {op} call #{nth} failed by plan")
            }
            RtError::Sim(e) => write!(f, "device error: {e}"),
            RtError::Compile(m) => write!(f, "build failed: {m}"),
            RtError::Cl(s) => write!(f, "{s}"),
            RtError::WrongVendor(d) => {
                write!(f, "CUDA is only available on NVIDIA devices, not {d}")
            }
            RtError::BadHandle => write!(f, "invalid kernel handle"),
            RtError::BadStream => write!(f, "invalid stream handle"),
            RtError::BadEvent(what) => write!(f, "invalid event: {what}"),
        }
    }
}

impl std::error::Error for RtError {}

impl From<SimError> for RtError {
    fn from(e: SimError) -> Self {
        match e {
            SimError::OutOfMemory {
                requested,
                available,
            } => RtError::OutOfMemory {
                requested,
                available,
            },
            SimError::Fault(fault) => RtError::DeviceFault {
                kernel: String::new(),
                fault,
            },
            other => RtError::Sim(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpucmp_sim::FaultKind;

    #[test]
    fn status_names() {
        assert_eq!(ClStatus::OutOfResources.to_string(), "CL_OUT_OF_RESOURCES");
        assert_eq!(ClStatus::Success.name(), "CL_SUCCESS");
    }

    #[test]
    fn sim_fault_becomes_sticky_device_fault() {
        let e: RtError = SimError::from(FaultKind::DivByZero).into();
        assert!(matches!(e, RtError::DeviceFault { .. }));
        assert!(e.is_sticky());
        assert!(e.to_string().contains("division"));
    }

    #[test]
    fn sim_oom_maps_to_rt_oom() {
        let e: RtError = SimError::OutOfMemory {
            requested: 100,
            available: 10,
        }
        .into();
        assert_eq!(
            e,
            RtError::OutOfMemory {
                requested: 100,
                available: 10
            }
        );
        assert!(!e.is_sticky());
    }

    #[test]
    fn context_lost_names_the_origin_and_the_cure() {
        let e = RtError::ContextLost {
            origin: "device fault: watchdog".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("watchdog"));
        assert!(msg.contains("reset"));
    }
}
