//! Runtime error types, including the OpenCL status codes the paper's
//! portability study runs into (`CL_OUT_OF_RESOURCES` on the Cell/BE).

use gpucmp_sim::SimError;
use std::fmt;

/// OpenCL-style status codes (subset used by the benchmarks).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClStatus {
    /// `CL_SUCCESS`.
    Success,
    /// `CL_DEVICE_NOT_FOUND` — no device of the requested
    /// `CL_DEVICE_TYPE_*` on the platform.
    DeviceNotFound,
    /// `CL_INVALID_WORK_GROUP_SIZE`.
    InvalidWorkGroupSize,
    /// `CL_OUT_OF_RESOURCES` — what the Cell/BE returns from
    /// `clEnqueueNDRangeKernel` for kernels whose registers + local store
    /// don't fit an SPE (paper Table VI "ABT").
    OutOfResources,
    /// `CL_BUILD_PROGRAM_FAILURE`.
    BuildProgramFailure,
    /// `CL_MEM_OBJECT_ALLOCATION_FAILURE`.
    MemObjectAllocationFailure,
}

impl ClStatus {
    /// The OpenCL constant name.
    pub const fn name(self) -> &'static str {
        match self {
            ClStatus::Success => "CL_SUCCESS",
            ClStatus::DeviceNotFound => "CL_DEVICE_NOT_FOUND",
            ClStatus::InvalidWorkGroupSize => "CL_INVALID_WORK_GROUP_SIZE",
            ClStatus::OutOfResources => "CL_OUT_OF_RESOURCES",
            ClStatus::BuildProgramFailure => "CL_BUILD_PROGRAM_FAILURE",
            ClStatus::MemObjectAllocationFailure => "CL_MEM_OBJECT_ALLOCATION_FAILURE",
        }
    }
}

impl fmt::Display for ClStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A host-API error.
#[derive(Clone, Debug, PartialEq)]
pub enum RtError {
    /// The simulated device faulted.
    Sim(SimError),
    /// Kernel compilation failed.
    Compile(String),
    /// An OpenCL status other than success.
    Cl(ClStatus),
    /// CUDA used on a non-NVIDIA device.
    WrongVendor(&'static str),
    /// Invalid kernel handle.
    BadHandle,
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::Sim(e) => write!(f, "device fault: {e}"),
            RtError::Compile(m) => write!(f, "build failed: {m}"),
            RtError::Cl(s) => write!(f, "{s}"),
            RtError::WrongVendor(d) => {
                write!(f, "CUDA is only available on NVIDIA devices, not {d}")
            }
            RtError::BadHandle => write!(f, "invalid kernel handle"),
        }
    }
}

impl std::error::Error for RtError {}

impl From<SimError> for RtError {
    fn from(e: SimError) -> Self {
        RtError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_names() {
        assert_eq!(ClStatus::OutOfResources.to_string(), "CL_OUT_OF_RESOURCES");
        assert_eq!(ClStatus::Success.name(), "CL_SUCCESS");
    }

    #[test]
    fn sim_error_wraps() {
        let e: RtError = SimError::DivByZero.into();
        assert!(matches!(e, RtError::Sim(_)));
        assert!(e.to_string().contains("division"));
    }
}
